#!/usr/bin/env python3
"""Perf-regression gate over the figure benches' JSON output.

Compares the *simulated* metrics — which are deterministic for a fixed
seed, so any drift is a real behavioral change, not runner noise —
of freshly produced BENCH_*.json files against the baselines committed
under bench/baselines/.

Gated metrics, matched by full JSON path:
  - attestations_per_sim_sec  (higher is better)
  - sim_makespan_sec, sim_seconds  (lower is better)
  - records_replayed, records_quarantined  (lower is better; both are
    sim-deterministic recovery SLO metrics from bench_recovery)
  - legacy_frame_bytes, tagged_frame_bytes  (lower is better; exact
    encoded sizes from bench_codec — deterministic, so run the codec
    gate with a tight --tolerance and regenerate
    bench/baselines/codec/ in any PR that intentionally evolves the
    schema)
  - sim_detect_p50_ms, sim_detect_p99_ms  (lower is better; simulated
    TCB-rollback detection latency from bench_faults' rollback leg)
  - migrations_per_rollback  (higher is better; completed forced
    migrations per quarantined host from the same leg)

Wall-clock metrics (any leaf key starting with ``wall_``) are
runner-dependent, so they WARN instead of failing: drift is printed
for the log but never trips the gate. Direction for wall metrics is
inferred from the name: ``*_per_sec`` is higher-is-better, everything
else (elapsed seconds) is lower-is-better.

A metric regressing by more than --tolerance (default 15%) fails the
gate. Per-metric overrides loosen or tighten individual paths or keys:

  --override sim_makespan_sec=0.30          # every leaf with this key
  --override 'soak.sim_makespan_sec=0.05'   # one exact JSON path

A baseline metric missing from the fresh run fails too: that means the
bench's shape changed and the baseline must be regenerated (rerun the
bench and copy its JSON over the baseline in the same PR).

Usage:
  check_bench_regression.py --baseline-dir bench/baselines \
                            --current-dir build/bench \
                            [--tolerance 0.15] [--override KEY=TOL ...]
"""

import argparse
import json
import pathlib
import sys

HIGHER_IS_BETTER = {"attestations_per_sim_sec",
                    # Rollback response yield (bench_faults): each
                    # quarantined host must shed its VMs; a drop means
                    # the controller stopped force-migrating victims.
                    "migrations_per_rollback"}
LOWER_IS_BETTER = {"sim_makespan_sec", "sim_seconds",
                   "records_replayed", "records_quarantined",
                   # Codec bytes-on-wire (bench_codec): encoded sizes
                   # feed the simulated transfer-time arithmetic, so
                   # growth is a behavioral regression, not noise.
                   "legacy_frame_bytes", "tagged_frame_bytes",
                   # TCB-rollback detection latency (bench_faults):
                   # simulated time from attestation issue to the
                   # customer holding a TcbRollback verdict.
                   "sim_detect_p50_ms", "sim_detect_p99_ms"}
WALL_PREFIX = "wall_"


def gated_class(key):
    """Return 'fail', 'warn' or None for a leaf key."""
    if key in HIGHER_IS_BETTER or key in LOWER_IS_BETTER:
        return "fail"
    if key.startswith(WALL_PREFIX):
        return "warn"
    return None


def higher_is_better(key):
    if key in HIGHER_IS_BETTER:
        return True
    if key in LOWER_IS_BETTER:
        return False
    # Wall metrics: rates up, elapsed times down.
    return key.endswith("_per_sec")


def walk(node, path=""):
    """Yield (json_path, key, value) for every gated numeric leaf."""
    if isinstance(node, dict):
        for key, value in node.items():
            here = f"{path}.{key}" if path else key
            if gated_class(key) is not None:
                if isinstance(value, (int, float)):
                    yield here, key, float(value)
            else:
                yield from walk(value, here)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from walk(value, f"{path}[{i}]")


def tolerance_for(path, key, default, overrides):
    """Exact-path override wins over key override wins over default."""
    if path in overrides:
        return overrides[path]
    if key in overrides:
        return overrides[key]
    return default


def compare(name, baseline, current, tolerance, overrides):
    failures = []
    warnings = []
    checked = 0
    current_leaves = {p: v for p, _, v in walk(current)}
    for path, key, base in walk(baseline):
        if path not in current_leaves:
            failures.append(
                f"{name}: {path} missing from fresh run "
                f"(bench shape changed? regenerate the baseline)")
            continue
        cur = current_leaves[path]
        checked += 1
        if base == 0:
            continue
        if higher_is_better(key):
            drift = (base - cur) / base
            direction = "throughput drop"
        else:
            drift = (cur - base) / base
            direction = "slowdown"
        tol = tolerance_for(path, key, tolerance, overrides)
        if drift > tol:
            message = (f"{name}: {path} {direction} {100 * drift:.1f}% "
                       f"(baseline {base:.4g}, current {cur:.4g}, "
                       f"tolerance {100 * tol:.0f}%)")
            if gated_class(key) == "warn":
                warnings.append(message)
            else:
                failures.append(message)
    return checked, failures, warnings


def parse_overrides(pairs):
    overrides = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"bad --override '{pair}': expected KEY=TOL")
        try:
            overrides[key] = float(value)
        except ValueError:
            raise SystemExit(
                f"bad --override '{pair}': '{value}' is not a number")
    return overrides


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline-dir", required=True, type=pathlib.Path)
    ap.add_argument("--current-dir", required=True, type=pathlib.Path)
    ap.add_argument("--tolerance", type=float, default=0.15)
    ap.add_argument("--override", action="append", default=[],
                    metavar="KEY=TOL",
                    help="per-metric tolerance: a leaf key "
                         "(sim_makespan_sec=0.3) or an exact JSON path "
                         "(soak.sim_makespan_sec=0.05); repeatable")
    args = ap.parse_args()
    overrides = parse_overrides(args.override)

    baselines = sorted(args.baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"no BENCH_*.json baselines in {args.baseline_dir}",
              file=sys.stderr)
        return 2

    total = 0
    all_failures = []
    all_warnings = []
    for basefile in baselines:
        curfile = args.current_dir / basefile.name
        if not curfile.exists():
            all_failures.append(
                f"{basefile.name}: not produced by this run "
                f"(expected {curfile})")
            continue
        with open(basefile) as f:
            baseline = json.load(f)
        with open(curfile) as f:
            current = json.load(f)
        checked, failures, warnings = compare(
            basefile.name, baseline, current, args.tolerance, overrides)
        total += checked
        all_failures.extend(failures)
        all_warnings.extend(warnings)
        status = "FAIL" if failures else "ok"
        print(f"{basefile.name}: {checked} metrics checked, {status}")

    if all_warnings:
        print("\nwall-clock drift (runner-dependent, not gated):")
        for warning in all_warnings:
            print(f"  WARN {warning}")

    if all_failures:
        print("\nperf gate FAILED:", file=sys.stderr)
        for failure in all_failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nperf gate passed: {total} metrics within tolerance "
          f"(default {100 * args.tolerance:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
