#!/usr/bin/env python3
"""Perf-regression gate over the figure benches' JSON output.

Compares the *simulated* metrics — which are deterministic for a fixed
seed, so any drift is a real behavioral change, not runner noise —
of freshly produced BENCH_*.json files against the baselines committed
under bench/baselines/. Wall-clock fields are ignored by design.

Gated metrics, matched by full JSON path:
  - attestations_per_sim_sec  (higher is better)
  - sim_makespan_sec, sim_seconds  (lower is better)

A metric regressing by more than --tolerance (default 15%) fails the
gate. A baseline metric missing from the fresh run fails too: that
means the bench's shape changed and the baseline must be regenerated
(rerun the bench and copy its JSON over the baseline in the same PR).

Usage:
  check_bench_regression.py --baseline-dir bench/baselines \
                            --current-dir build/bench [--tolerance 0.15]
"""

import argparse
import json
import pathlib
import sys

HIGHER_IS_BETTER = {"attestations_per_sim_sec"}
LOWER_IS_BETTER = {"sim_makespan_sec", "sim_seconds"}


def walk(node, path=""):
    """Yield (json_path, value) for every gated numeric leaf."""
    if isinstance(node, dict):
        for key, value in node.items():
            here = f"{path}.{key}" if path else key
            if key in HIGHER_IS_BETTER or key in LOWER_IS_BETTER:
                if isinstance(value, (int, float)):
                    yield here, key, float(value)
            else:
                yield from walk(value, here)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from walk(value, f"{path}[{i}]")


def compare(name, baseline, current, tolerance):
    failures = []
    checked = 0
    current_leaves = {p: v for p, _, v in walk(current)}
    for path, key, base in walk(baseline):
        if path not in current_leaves:
            failures.append(
                f"{name}: {path} missing from fresh run "
                f"(bench shape changed? regenerate the baseline)")
            continue
        cur = current_leaves[path]
        checked += 1
        if base == 0:
            continue
        if key in HIGHER_IS_BETTER:
            drift = (base - cur) / base
            direction = "throughput drop"
        else:
            drift = (cur - base) / base
            direction = "slowdown"
        if drift > tolerance:
            failures.append(
                f"{name}: {path} {direction} {100 * drift:.1f}% "
                f"(baseline {base:.4g}, current {cur:.4g}, "
                f"tolerance {100 * tolerance:.0f}%)")
    return checked, failures


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline-dir", required=True, type=pathlib.Path)
    ap.add_argument("--current-dir", required=True, type=pathlib.Path)
    ap.add_argument("--tolerance", type=float, default=0.15)
    args = ap.parse_args()

    baselines = sorted(args.baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"no BENCH_*.json baselines in {args.baseline_dir}",
              file=sys.stderr)
        return 2

    total = 0
    all_failures = []
    for basefile in baselines:
        curfile = args.current_dir / basefile.name
        if not curfile.exists():
            all_failures.append(
                f"{basefile.name}: not produced by this run "
                f"(expected {curfile})")
            continue
        with open(basefile) as f:
            baseline = json.load(f)
        with open(curfile) as f:
            current = json.load(f)
        checked, failures = compare(basefile.name, baseline, current,
                                    args.tolerance)
        total += checked
        all_failures.extend(failures)
        status = "FAIL" if failures else "ok"
        print(f"{basefile.name}: {checked} metrics checked, {status}")

    if all_failures:
        print("\nperf gate FAILED:", file=sys.stderr)
        for failure in all_failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nperf gate passed: {total} simulated metrics within "
          f"{100 * args.tolerance:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
