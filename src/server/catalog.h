/**
 * @file
 * VM flavors and images.
 *
 * The paper's evaluation (Figure 9) launches "three VM images (cirros,
 * fedora and ubuntu) with three VM flavors (small, medium and large)".
 * Flavors fix the resource grant (vCPUs, RAM, disk); images fix the
 * bytes fetched and booted. Sizes are chosen so the simulated launch,
 * suspension and migration times land in the ranges of Figures 9 and
 * 11 on a 1 Gbps fabric.
 */

#ifndef MONATT_SERVER_CATALOG_H
#define MONATT_SERVER_CATALOG_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace monatt::server
{

/** A VM flavor: the resource grant. */
struct VmFlavor
{
    std::string name;
    std::uint32_t vcpus = 1;
    std::uint64_t ramMb = 512;
    std::uint64_t diskGb = 10;
};

/** A VM image. */
struct VmImage
{
    std::string name;
    std::uint64_t sizeMb = 25;
    Bytes content; //!< Representative content (hashed for integrity).
};

/** small / medium / large. */
const std::vector<VmFlavor> &flavorCatalog();

/** Look up a flavor. @throws std::out_of_range when unknown. */
const VmFlavor &flavor(const std::string &name);

/** cirros / fedora / ubuntu. */
const std::vector<VmImage> &imageCatalog();

/** Look up an image. @throws std::out_of_range when unknown. */
const VmImage &image(const std::string &name);

} // namespace monatt::server

#endif // MONATT_SERVER_CATALOG_H
