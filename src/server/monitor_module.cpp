#include "server/monitor_module.h"

#include "hypervisor/monitors.h"

namespace monatt::server
{

using hypervisor::DomainId;
using proto::Measurement;
using proto::MeasurementType;

MonitorModule::MonitorModule(hypervisor::Hypervisor &hv,
                             tpm::TrustModule &tm)
    : hyp(hv), trust(tm)
{
}

bool
MonitorModule::isWindowed(MeasurementType t)
{
    return t == MeasurementType::UsageIntervalHistogram ||
           t == MeasurementType::CpuMeasure;
}

std::string
MonitorModule::bankName(MeasurementType t, DomainId dom)
{
    return measurementTypeName(t) + ":" + std::to_string(dom);
}

Result<Measurement>
MonitorModule::collectStatic(MeasurementType t, DomainId dom)
{
    using R = Result<Measurement>;
    Measurement m;
    m.type = t;

    switch (t) {
      case MeasurementType::PlatformPcrs: {
        hypervisor::IntegrityMeasurementUnit imu(trust.tpmDevice());
        m.digest = imu.hypervisorPcr();
        append(m.digest, imu.hostOsPcr());
        return R::ok(std::move(m));
      }
      case MeasurementType::VmImageDigest: {
        if (!hyp.hasDomain(dom))
            return R::error("VmImageDigest: unknown domain");
        m.digest = hyp.domain(dom).imageDigest;
        return R::ok(std::move(m));
      }
      case MeasurementType::TaskListVmi: {
        if (!hyp.hasDomain(dom))
            return R::error("TaskListVmi: unknown domain");
        m.strings = hypervisor::VmIntrospectionTool::probeTaskList(
            hyp.domain(dom));
        return R::ok(std::move(m));
      }
      case MeasurementType::TaskListGuest: {
        if (!hyp.hasDomain(dom))
            return R::error("TaskListGuest: unknown domain");
        m.strings = hypervisor::VmIntrospectionTool::queryGuest(
            hyp.domain(dom));
        return R::ok(std::move(m));
      }
      case MeasurementType::AuditLogDigest: {
        if (!hyp.hasDomain(dom))
            return R::error("AuditLogDigest: unknown domain");
        const hypervisor::GuestOs &os = hyp.domain(dom).guestOs;
        m.digest = os.auditLogHead();
        m.values = {os.auditLogLength()};
        return R::ok(std::move(m));
      }
      default:
        return R::error("collectStatic: windowed type " +
                        measurementTypeName(t));
    }
}

void
MonitorModule::beginWindow(DomainId dom, SimTime now)
{
    hyp.profiler().startWindow(dom, now);
}

Result<Measurement>
MonitorModule::finishWindow(MeasurementType t, DomainId dom, SimTime now)
{
    using R = Result<Measurement>;
    if (!isWindowed(t))
        return R::error("finishWindow: static type");

    hyp.profiler().stopWindow(dom, now);

    Measurement m;
    m.type = t;
    m.windowLength = hyp.profiler().windowLength(dom, now);

    const std::string bank = bankName(t, dom);
    if (t == MeasurementType::UsageIntervalHistogram) {
        // Write per-bin counts into the 30 programmable TERs, then
        // read the bank back — the signed values come from the Trust
        // Module, not from hypervisor memory.
        trust.defineBank(bank, kUsageIntervalBins);
        const Histogram h = hyp.profiler().intervalHistogram(
            dom, kUsageIntervalBins, 30.0);
        for (std::size_t i = 0; i < kUsageIntervalBins; ++i)
            trust.writeRegister(bank, i, h.counts()[i]);
        m.values = trust.readBank(bank);
    } else {
        trust.defineBank(bank, 1);
        trust.writeRegister(
            bank, 0,
            static_cast<std::uint64_t>(hyp.profiler().windowRuntime(dom)));
        m.values = trust.readBank(bank);
    }
    return R::ok(std::move(m));
}

} // namespace monatt::server
