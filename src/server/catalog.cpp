#include "server/catalog.h"

#include <stdexcept>

namespace monatt::server
{

const std::vector<VmFlavor> &
flavorCatalog()
{
    static const std::vector<VmFlavor> flavors = {
        {"small", 1, 512, 10},
        {"medium", 2, 1024, 20},
        {"large", 4, 2048, 40},
    };
    return flavors;
}

const VmFlavor &
flavor(const std::string &name)
{
    for (const VmFlavor &f : flavorCatalog()) {
        if (f.name == name)
            return f;
    }
    throw std::out_of_range("unknown flavor: " + name);
}

const std::vector<VmImage> &
imageCatalog()
{
    static const std::vector<VmImage> images = [] {
        std::vector<VmImage> out;
        for (const auto &[name, sizeMb] :
             {std::pair<const char *, std::uint64_t>{"cirros", 25},
              {"fedora", 230},
              {"ubuntu", 700}}) {
            VmImage img;
            img.name = name;
            img.sizeMb = sizeMb;
            img.content = toBytes(std::string(name) + "-image-v1.0");
            out.push_back(std::move(img));
        }
        return out;
    }();
    return images;
}

const VmImage &
image(const std::string &name)
{
    for (const VmImage &img : imageCatalog()) {
        if (img.name == name)
            return img;
    }
    throw std::out_of_range("unknown image: " + name);
}

} // namespace monatt::server
