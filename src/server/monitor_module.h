/**
 * @file
 * The server-side Monitor Module (Figure 2).
 *
 * Aggregates the hypervisor-level monitors into the measurement
 * vocabulary of the protocol: static measurements (PCR values, image
 * digests, task lists) read immediately; windowed measurements (CPU
 * usage intervals for §4.4, CPU_measure for §4.5) collected over a
 * measurement window, written into Trust Evidence Register banks in
 * the Trust Module, and read back from there — the path the paper
 * draws as Monitor Module → Trust Evidence Registers → Crypto Engine.
 */

#ifndef MONATT_SERVER_MONITOR_MODULE_H
#define MONATT_SERVER_MONITOR_MODULE_H

#include <string>

#include "hypervisor/hypervisor.h"
#include "proto/measurement.h"
#include "tpm/trust_module.h"

namespace monatt::server
{

/** Number of usage-interval Trust Evidence Registers (§4.4.2). */
constexpr std::size_t kUsageIntervalBins = 30;

/** The Monitor Module. */
class MonitorModule
{
  public:
    MonitorModule(hypervisor::Hypervisor &hv, tpm::TrustModule &tm);

    /** True when this type needs a measurement window. */
    static bool isWindowed(proto::MeasurementType t);

    /**
     * Collect a static measurement for the domain now.
     * Returns an error for windowed types or unknown domains.
     */
    Result<proto::Measurement> collectStatic(proto::MeasurementType t,
                                             hypervisor::DomainId dom);

    /** Open the profiling window for a domain (windowed types). */
    void beginWindow(hypervisor::DomainId dom, SimTime now);

    /**
     * Close the window and materialize a windowed measurement:
     * histogram counts (or CPU_measure) are first written into a TER
     * bank in the Trust Module, then read back into the Measurement.
     */
    Result<proto::Measurement> finishWindow(proto::MeasurementType t,
                                            hypervisor::DomainId dom,
                                            SimTime now);

    /** TER bank name used for a domain's windowed measurements. */
    static std::string bankName(proto::MeasurementType t,
                                hypervisor::DomainId dom);

  private:
    hypervisor::Hypervisor &hyp;
    tpm::TrustModule &trust;
};

} // namespace monatt::server

#endif // MONATT_SERVER_MONITOR_MODULE_H
