/**
 * @file
 * The Cloud Server — the attester of the CloudMonatt architecture.
 *
 * One instance models one physical machine in the data center: the
 * Type-I hypervisor with guest domains, the hardware Trust Module,
 * the Monitor Module, and the host-VM software stack — the
 * Attestation Client (oat client in the prototype, §6.3) and the
 * Management Client (nova compute).
 *
 * The attestation path follows the eight functional steps of
 * Figure 2: (1) the Attestation Client takes a measurement request;
 * (2) it invokes the Monitor Module to collect; (3) the Trust Module
 * generates a fresh per-session attestation key pair, signed by the
 * identity key and certified by the privacy CA; (4,5) measurements
 * land in Trust Evidence Registers; (6) the Crypto Engine signs the
 * quote; (7,8) the signed response returns to the Attestation
 * Server.
 */

#ifndef MONATT_SERVER_CLOUD_SERVER_H
#define MONATT_SERVER_CLOUD_SERVER_H

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "hypervisor/hypervisor.h"
#include "net/secure_endpoint.h"
#include "proto/messages.h"
#include "proto/timing_model.h"
#include "server/catalog.h"
#include "server/monitor_module.h"
#include "sim/event_queue.h"
#include "sim/rollback_faults.h"
#include "tpm/trust_module.h"

namespace monatt::server
{

/** Static configuration of one cloud server. */
struct CloudServerConfig
{
    std::string id;
    std::string controllerId = "cloud-controller";

    /**
     * Every controller shard allowed to command this server. Under a
     * sharded control plane a VM's owning shard (any of them) sends
     * the launch/terminate/suspend/resume/migrate commands. Empty =
     * just controllerId.
     */
    std::set<std::string> controllerIds;
    std::string attestationServerId = "attestation-server";
    std::string pcaId = "privacy-ca";

    /**
     * All Attestation Servers allowed to request measurements. Under
     * controller failover a request for a VM hosted here may arrive
     * from any AS in the cloud, not just the cluster's primary. Empty
     * = just attestationServerId.
     */
    std::set<std::string> attestorIds;

    /** Retransmission knobs (pCA round trip, handshakes). */
    proto::ReliabilityModel reliability;

    /** Security properties this server can monitor (the capability
     * table the controller's property_filter consults). */
    std::set<proto::SecurityProperty> capabilities;

    /** Physical resources (testbed: quad core, 32 GB). */
    int pcpus = 4;
    std::uint64_t totalRamMb = 32768;
    std::uint64_t totalDiskGb = 500;

    hypervisor::CreditScheduler::Params sched;
    Bytes hypervisorCode;
    Bytes hostOsCode;

    /**
     * Firmware TCB version of this host's platform stack, measured
     * into the TcbVersion measurement when an Attestation Server
     * requests it (minimum-TCB policy, DESIGN.md §18). A rolled-back
     * host reports the attacker's downgraded version instead.
     */
    std::uint64_t firmwareVersion = 2;

    proto::TimingModel timing;
    std::size_t identityKeyBits = 512;
    std::size_t aikBits = 512;

    /**
     * Ablation knob: when nonzero, measurement collection pauses the
     * attested VM for this long (an intercepting monitor), instead of
     * the paper's non-intrusive collection at VM switch ("the VMM
     * Profile Tool does not intercept the VM's execution", §7.1.2).
     */
    SimTime intrusivePause = 0;

    /**
     * Number of MeasureResponses one attestation session {AVKs, ASKs}
     * may serve before the Trust Module rotates it. 1 reproduces the
     * paper's fresh-key-per-attestation flow; larger values amortize
     * AIK generation and the pCA round trip across periodic rounds
     * (the Attestation Server's certificate cache then verifies the
     * chain once per AVK session instead of once per response).
     */
    std::uint64_t aikReuseLimit = 16;

    /**
     * Fan-in batching window for Trust Module crypto. Attestation-key
     * preparations (and, independently, quote signatures) maturing
     * within the window of the first one run as one batch on the
     * compute plane; handles, labels and sends stay serial in arrival
     * order. 0 still batches work maturing at the same simulated
     * timestamp — batch composition depends only on sim time.
     */
    SimTime batchWindow = 0;

    /**
     * Pre-generated identity keys (must equal
     * deriveIdentityKeys(id, seed, identityKeyBits)) and TPM
     * endorsement key (must equal TrustModule::deriveTpmKey); empty
     * derives them in the constructor. Cloud construction uses these
     * to fan per-server keygen out across the compute plane.
     */
    std::optional<crypto::RsaKeyPair> presetIdentityKeys;
    std::optional<crypto::RsaKeyPair> presetTpmKey;

    /**
     * Wire codec this node speaks (DESIGN.md �17). Legacy is the
     * canonical default; Tagged is the schema-evolvable opt-in.
     * Received frames always decode by their own self-described
     * format.
     */
    proto::WireContext wire;
};

/** A hosted VM's record on the server. */
struct HostedVm
{
    std::string vid;
    hypervisor::DomainId domain = -1;
    std::uint32_t vcpus = 1;
    std::uint64_t ramMb = 0;
    std::uint64_t diskGb = 0;
    std::uint64_t imageSizeMb = 0;
    Bytes image;
    int weight = 256;
    bool suspended = false;
};

/** The cloud server. */
class CloudServer
{
  public:
    CloudServer(sim::EventQueue &eq, net::Network &network,
                net::KeyDirectory &directory, CloudServerConfig config,
                std::uint64_t seed);

    /** Deterministic identity-key derivation (see presetIdentityKeys). */
    static crypto::RsaKeyPair deriveIdentityKeys(const std::string &id,
                                                 std::uint64_t seed,
                                                 std::size_t bits);

    /** The Trust Module entropy seed used for a given server id/seed
     * (feeds TrustModule::deriveTpmKey for preset generation). */
    static Bytes entropySeed(const std::string &id, std::uint64_t seed);

    /** Boot the platform: measure software into the TPM, start the
     * scheduler, publish the identity key. */
    void boot();

    /** Node id. */
    const std::string &id() const { return cfg.id; }

    /** Identity public key VKs. */
    const crypto::RsaPublicKey &identityPublic() const
    {
        return trust.identityPublic();
    }

    /** Supported monitoring capabilities. */
    const std::set<proto::SecurityProperty> &capabilities() const
    {
        return cfg.capabilities;
    }

    /** Resources still free. */
    std::uint64_t freeRamMb() const;
    std::uint64_t freeDiskGb() const;

    /** The hypervisor (tests/benches install workloads through it). */
    hypervisor::Hypervisor &hypervisor() { return hyp; }

    /** The Trust Module. */
    tpm::TrustModule &trustModule() { return trust; }

    /** The Monitor Module. */
    MonitorModule &monitorModule() { return monitor; }

    /** True when the named VM is hosted here. */
    bool hasVm(const std::string &vid) const
    {
        return vms.count(vid) != 0;
    }

    /** Hosted VM record. @throws std::out_of_range when absent. */
    const HostedVm &vm(const std::string &vid) const;

    /** Hypervisor domain of a hosted VM. */
    hypervisor::DomainId domainOf(const std::string &vid) const;

    /** Guest OS of a hosted VM (attack injection in tests). */
    hypervisor::GuestOs &guestOs(const std::string &vid);

    /** Number of hosted VMs. */
    std::size_t vmCount() const { return vms.size(); }

    const CloudServerConfig &config() const { return cfg; }

    /**
     * Simulate a crash of the management plane: detach from the
     * network and drop all volatile attestation state (in-flight
     * sessions, queues, dedup caches). Hosted VMs keep running — the
     * hypervisor is below the crashing software stack.
     */
    void crash();

    /** Rejoin the network after a crash. */
    void restart();

    /** True while attached to the network. */
    bool isUp() const { return endpoint.attached(); }

    /** Wire codec this node emits (mixed-version tests flip it at
     * runtime to simulate a rolling upgrade). */
    const proto::WireContext &wireContext() const { return cfg.wire; }
    void setWireContext(const proto::WireContext &ctx) { cfg.wire = ctx; }

    /**
     * Install the TCB-rollback attacker model (nullptr = honest
     * host). Wired by core::Cloud when a fault plan is installed; the
     * attack behaviors apply only inside [activeFrom, activeUntil).
     */
    void setRollbackFaults(const sim::RollbackFaultModel *model,
                           SimTime activeFrom = 0,
                           SimTime activeUntil = kTimeNever)
    {
        rollbackFaults = model;
        rollbackActiveFrom = activeFrom;
        rollbackActiveUntil = activeUntil;
    }

    /** The TCB version this host currently reports (the downgraded
     * build while a rollback attack is active). */
    std::uint64_t effectiveTcbVersion() const;

  private:
    struct PendingAttestation
    {
        proto::MeasureRequest request;
        net::NodeId requester; //!< AS to answer (failover-aware).
        tpm::SessionHandle session = 0;
        std::string sessionLabel;
        Bytes certificate;
        bool haveCert = false;
        proto::MeasurementSet m;
        bool measured = false;
        bool queued = false; //!< Already in the quote-sign batch.
        Bytes certRequestBytes;      //!< For identical pCA retries.
        int certRetries = 0;
        sim::EventId certTimer = 0; //!< 0 = none pending.
    };

    void handleMessage(const net::NodeId &from, const Bytes &plaintext);

    /** Pack an outgoing message in this node's configured format. */
    template <typename M>
    Bytes pack(proto::MessageKind kind, const M &msg) const
    {
        return proto::packFor(cfg.wire, kind, msg);
    }

    /** Format of the frame currently being dispatched (set by
     * handleMessage before the synchronous handler call). */
    proto::WireFormat rxFormat_ = proto::WireFormat::Legacy;

    void onMeasureRequest(const net::NodeId &from, const Bytes &body);
    void onCertResponse(const Bytes &body);
    void onLaunchVm(const net::NodeId &from, const Bytes &body);
    void onTerminateVm(const net::NodeId &from, const Bytes &body);
    void onSuspendVm(const net::NodeId &from, const Bytes &body);
    void onResumeVm(const net::NodeId &from, const Bytes &body);
    void onMigrateOut(const net::NodeId &from, const Bytes &body);
    void onMigrateIn(const net::NodeId &from, const Bytes &body);
    void onMigrateInAck(const net::NodeId &from, const Bytes &body);

    void collectMeasurements(std::uint64_t requestId);
    void finishMeasurements(std::uint64_t requestId);
    void maybeRespond(std::uint64_t requestId);
    void flushAikPrep();
    void flushQuoteBatch();
    hypervisor::DomainId createVmDomain(const proto::LaunchVm &req);

    /** Drop a pending attestation's hold on a Trust Module session;
     * ends the session once it is neither in flight nor cached. */
    void releaseSession(tpm::SessionHandle handle);

    /** Install a freshly certified session as the reusable AVK. */
    void cacheAikSession(const PendingAttestation &pa);

    /** True when `from` is an authorized Attestation Server. */
    bool isAttestor(const net::NodeId &from) const;

    /** True when `from` is a controller shard we obey. */
    bool isController(const net::NodeId &from) const;

    /** Arm the pCA retransmission timer for a pending attestation. */
    void scheduleCertRetry(std::uint64_t requestId);

    /** Cancel a pending attestation's pCA retry timer (if armed). */
    void cancelCertTimer(PendingAttestation &pa);

    /** Remember a sent MeasureResponse for idempotent retransmission. */
    void rememberResponse(std::uint64_t requestId, Bytes encoded);

    sim::EventQueue &events;
    CloudServerConfig cfg;
    tpm::TrustModule trust;
    hypervisor::Hypervisor hyp;
    MonitorModule monitor;
    net::SecureEndpoint endpoint;

    /**
     * The reusable attestation session: one certified {AVKs, ASKs}
     * serving up to aikReuseLimit responses. `remaining` counts the
     * responses it may still serve; `handle` stays open in the Trust
     * Module while cached or in flight.
     */
    struct AikSessionCache
    {
        tpm::SessionHandle handle = 0;
        std::string label;
        Bytes certificate;
        std::uint64_t remaining = 0;
    };

    std::map<std::string, HostedVm> vms;
    std::map<std::uint64_t, PendingAttestation> pending;
    std::map<std::string, std::uint64_t> certToRequest;

    /**
     * Recently answered MeasureRequests: requestId -> encoded signed
     * response. A retransmitted request is answered from here so the
     * TPM never re-executes a quote for the same (requestId, nonce3).
     * Bounded FIFO.
     */
    std::map<std::uint64_t, Bytes> responseCache;
    std::deque<std::uint64_t> responseOrder;
    static constexpr std::size_t kResponseCacheSize = 64;
    AikSessionCache aikCache;
    /** In-flight uses per Trust Module session handle. */
    std::map<tpm::SessionHandle, std::size_t> sessionRefs;

    /** Fan-in batches (see CloudServerConfig::batchWindow). */
    std::vector<std::uint64_t> aikPrepQueue;
    bool aikFlushScheduled = false;
    std::vector<std::uint64_t> quoteQueue;
    bool quoteFlushScheduled = false;

    /** Pending migration: vid -> controller that asked. */
    std::map<std::string, net::NodeId> migrations;

    // --- TCB-rollback attacker hooks (sim/rollback_faults.h) -------

    /** True when the attacker model is armed for `now`. */
    bool rollbackActive() const;

    /**
     * Last honestly-sent measurement content per vid — the stale
     * evidence a compromised host re-signs for fresh challenges.
     * Volatile attacker state (cleared with the rest on crash).
     */
    struct StaleStash
    {
        proto::MeasurementRequestList rm;
        proto::MeasurementSet m;
        Bytes nonce3;
    };
    std::map<std::string, StaleStash> staleStash;

    const sim::RollbackFaultModel *rollbackFaults = nullptr;
    SimTime rollbackActiveFrom = 0;
    SimTime rollbackActiveUntil = kTimeNever;

    std::uint64_t allocatedRamMb = 0;
    std::uint64_t allocatedDiskGb = 0;
    std::uint64_t sessionCounter = 0;
    int nextPcpu = 0;
};

} // namespace monatt::server

#endif // MONATT_SERVER_CLOUD_SERVER_H
