#include "server/cloud_server.h"

#include <stdexcept>

#include "common/logging.h"
#include "crypto/sha256.h"
#include "sim/worker_pool.h"

namespace monatt::server
{

using proto::MessageKind;
using proto::packMessage;
using proto::unpackMessage;

namespace
{

hypervisor::HypervisorConfig
makeHvConfig(const CloudServerConfig &cfg)
{
    hypervisor::HypervisorConfig hc;
    hc.numPCpus = cfg.pcpus;
    hc.sched = cfg.sched;
    hc.hypervisorCode = cfg.hypervisorCode;
    hc.hostOsCode = cfg.hostOsCode;
    return hc;
}

} // namespace

crypto::RsaKeyPair
CloudServer::deriveIdentityKeys(const std::string &id, std::uint64_t seed,
                                std::size_t bits)
{
    Bytes material = toBytes("server-identity:" + id);
    for (int i = 0; i < 8; ++i)
        material.push_back(static_cast<std::uint8_t>(seed >> (8 * i)));
    crypto::HmacDrbg drbg(material);
    Rng rng = drbg.forkRng();
    return crypto::rsaGenerateKeyPair(bits, rng);
}

Bytes
CloudServer::entropySeed(const std::string &id, std::uint64_t seed)
{
    Bytes material = toBytes("server-entropy:" + id);
    for (int i = 0; i < 8; ++i)
        material.push_back(static_cast<std::uint8_t>(seed >> (8 * i)));
    return material;
}

CloudServer::CloudServer(sim::EventQueue &eq, net::Network &network,
                         net::KeyDirectory &directory,
                         CloudServerConfig config, std::uint64_t seed)
    : events(eq), cfg(std::move(config)),
      trust(cfg.id,
            cfg.presetIdentityKeys
                ? *std::move(cfg.presetIdentityKeys)
                : deriveIdentityKeys(cfg.id, seed, cfg.identityKeyBits),
            entropySeed(cfg.id, seed), cfg.aikBits,
            std::move(cfg.presetTpmKey)),
      hyp(eq, makeHvConfig(cfg)), monitor(hyp, trust),
      endpoint(network, cfg.id, trust.identityKeyPair(), directory,
               entropySeed(cfg.id, seed ^ 0x5eedULL))
{
    endpoint.onMessage([this](const net::NodeId &from, const Bytes &msg) {
        handleMessage(from, msg);
    });
    endpoint.setReliability(net::EndpointReliability{
        cfg.reliability.enabled, cfg.reliability.handshakeRto,
        cfg.reliability.handshakeRetryLimit});
}

void
CloudServer::boot()
{
    hyp.boot(trust.tpmDevice());
}

std::uint64_t
CloudServer::freeRamMb() const
{
    return cfg.totalRamMb - allocatedRamMb;
}

std::uint64_t
CloudServer::freeDiskGb() const
{
    return cfg.totalDiskGb - allocatedDiskGb;
}

const HostedVm &
CloudServer::vm(const std::string &vid) const
{
    const auto it = vms.find(vid);
    if (it == vms.end())
        throw std::out_of_range("CloudServer: unknown VM " + vid);
    return it->second;
}

hypervisor::DomainId
CloudServer::domainOf(const std::string &vid) const
{
    return vm(vid).domain;
}

hypervisor::GuestOs &
CloudServer::guestOs(const std::string &vid)
{
    return hyp.domain(domainOf(vid)).guestOs;
}

void
CloudServer::handleMessage(const net::NodeId &from, const Bytes &plaintext)
{
    auto unpacked = unpackMessage(plaintext);
    if (!unpacked) {
        MONATT_LOG(Warn, "server") << cfg.id << ": bad message from "
                                   << from;
        return;
    }
    const auto &[kind, format, body] = unpacked.value();
    rxFormat_ = format;
    switch (kind) {
      case MessageKind::MeasureRequest:
        onMeasureRequest(from, body);
        break;
      case MessageKind::CertResponse:
        onCertResponse(body);
        break;
      case MessageKind::LaunchVm:
        onLaunchVm(from, body);
        break;
      case MessageKind::TerminateVm:
        onTerminateVm(from, body);
        break;
      case MessageKind::SuspendVm:
        onSuspendVm(from, body);
        break;
      case MessageKind::ResumeVm:
        onResumeVm(from, body);
        break;
      case MessageKind::MigrateOut:
        onMigrateOut(from, body);
        break;
      case MessageKind::MigrateIn:
        onMigrateIn(from, body);
        break;
      case MessageKind::MigrateInAck:
        onMigrateInAck(from, body);
        break;
      default:
        MONATT_LOG(Warn, "server")
            << cfg.id << ": unexpected message kind from " << from;
        break;
    }
}

bool
CloudServer::isAttestor(const net::NodeId &from) const
{
    if (cfg.attestorIds.empty())
        return from == cfg.attestationServerId;
    return cfg.attestorIds.count(from) != 0;
}

bool
CloudServer::isController(const net::NodeId &from) const
{
    if (cfg.controllerIds.empty())
        return from == cfg.controllerId;
    return cfg.controllerIds.count(from) != 0;
}

void
CloudServer::onMeasureRequest(const net::NodeId &from, const Bytes &body)
{
    // Only an authorized Attestation Server may request measurements.
    if (!isAttestor(from)) {
        MONATT_LOG(Warn, "server")
            << cfg.id << ": measurement request from non-AS " << from;
        return;
    }
    auto req = proto::decodeAs<proto::MeasureRequest>(rxFormat_, body);
    if (!req)
        return;

    const std::uint64_t id = req.value().requestId;

    // Idempotent receive: a retransmitted request must not re-run the
    // measurement or re-execute the quote. In flight -> the original
    // response will answer it; already answered -> replay the cached
    // signed response verbatim.
    if (pending.count(id))
        return;
    const auto cached = responseCache.find(id);
    if (cached != responseCache.end()) {
        endpoint.sendSecure(from,
                            packMessage(MessageKind::MeasureResponse,
                                        Bytes(cached->second)));
        return;
    }

    PendingAttestation pa;
    pa.request = req.take();
    pa.requester = from;

    // Reuse the cached AVK session when it has responses left: the
    // reservation happens now (credit consumed, session pinned) so
    // concurrent requests cannot oversubscribe it, and the AIK
    // generation plus pCA round trip are skipped entirely.
    const bool reuseAik =
        cfg.aikReuseLimit > 1 && aikCache.remaining > 0;
    if (reuseAik) {
        --aikCache.remaining;
        ++sessionRefs[aikCache.handle];
        pa.session = aikCache.handle;
        pa.sessionLabel = aikCache.label;
        pa.certificate = aikCache.certificate;
        pa.haveCert = true;
    }
    pending[id] = std::move(pa);

    if (reuseAik) {
        events.scheduleAfter(cfg.timing.serverProcessing, [this, id] {
            collectMeasurements(id);
        }, "server.attest.prep");
        return;
    }

    // Step 3 of Figure 2: generate the session attestation key (the
    // dominant local cost) and have it certified by the privacy CA.
    // Requests whose prep matures within the batch window share one
    // Trust Module fan-out.
    const SimTime prep =
        cfg.timing.serverProcessing + cfg.timing.aikGeneration;
    events.scheduleAfter(prep, [this, id] {
        aikPrepQueue.push_back(id);
        if (!aikFlushScheduled) {
            aikFlushScheduled = true;
            events.scheduleAfter(cfg.batchWindow,
                                 [this] { flushAikPrep(); },
                                 "server.aik.flush");
        }
    }, "server.attest.prep");
}

void
CloudServer::flushAikPrep()
{
    aikFlushScheduled = false;
    std::vector<std::uint64_t> batch;
    batch.swap(aikPrepQueue);

    std::vector<std::uint64_t> live;
    live.reserve(batch.size());
    for (std::uint64_t id : batch) {
        if (pending.count(id))
            live.push_back(id);
    }

    // Key generation for the whole batch on the compute plane; handle
    // assignment inside stays serial, so session handles and the DRBG
    // stream match n sequential beginSession() calls.
    const std::vector<tpm::AttestationSessionInfo> sessions =
        trust.beginSessions(live.size());

    // Serial tail in arrival order: labels (RNG draws), certification
    // requests and measurement kick-off.
    for (std::size_t i = 0; i < live.size(); ++i) {
        const std::uint64_t id = live[i];
        const tpm::AttestationSessionInfo &session = sessions[i];
        PendingAttestation &pa = pending.at(id);

        pa.session = session.handle;
        ++sessionRefs[pa.session];
        pa.sessionLabel =
            "aik-" + std::to_string(++sessionCounter) + "@" +
            toHex(trust.randomBytes(4));

        proto::CertRequest creq;
        creq.serverId = cfg.id;
        creq.sessionLabel = pa.sessionLabel;
        creq.avk = session.attestationKey.encode();
        creq.avkSignature = session.attestationKeySignature;
        certToRequest[pa.sessionLabel] = id;
        pa.certRequestBytes =
            pack(MessageKind::CertRequest, creq);
        endpoint.sendSecure(cfg.pcaId, Bytes(pa.certRequestBytes));
        if (cfg.reliability.enabled)
            scheduleCertRetry(id);

        collectMeasurements(id);
    }
}

void
CloudServer::scheduleCertRetry(std::uint64_t requestId)
{
    PendingAttestation &pa = pending.at(requestId);
    const SimTime delay = cfg.reliability.backoff(
        cfg.reliability.certRto, pa.certRetries);
    pa.certTimer = events.scheduleAfter(delay, [this, requestId] {
        auto it = pending.find(requestId);
        if (it == pending.end() || it->second.haveCert)
            return;
        PendingAttestation &p = it->second;
        p.certTimer = 0;
        if (p.certRetries >= cfg.reliability.certRetryLimit) {
            MONATT_LOG(Warn, "server")
                << cfg.id << ": pCA unreachable, abandoning request "
                << requestId;
            certToRequest.erase(p.sessionLabel);
            releaseSession(p.session);
            pending.erase(it);
            // The pCA may have crashed and restarted: force a fresh
            // handshake before the next certification attempt.
            endpoint.resetPeer(cfg.pcaId);
            return;
        }
        ++p.certRetries;
        // Identical retransmission: the pCA's dedup cache answers a
        // duplicate with the already-issued certificate.
        endpoint.sendSecure(cfg.pcaId, Bytes(p.certRequestBytes));
        scheduleCertRetry(requestId);
    }, "server.cert.retry");
}

void
CloudServer::cancelCertTimer(PendingAttestation &pa)
{
    if (pa.certTimer != 0) {
        events.cancel(pa.certTimer);
        pa.certTimer = 0;
    }
}

void
CloudServer::rememberResponse(std::uint64_t requestId, Bytes encoded)
{
    if (responseCache.emplace(requestId, std::move(encoded)).second) {
        responseOrder.push_back(requestId);
        while (responseOrder.size() > kResponseCacheSize) {
            responseCache.erase(responseOrder.front());
            responseOrder.pop_front();
        }
    }
}

void
CloudServer::releaseSession(tpm::SessionHandle handle)
{
    if (handle == 0)
        return;
    auto it = sessionRefs.find(handle);
    if (it != sessionRefs.end() && it->second > 0)
        --it->second;
    const bool inFlight = it != sessionRefs.end() && it->second > 0;
    if (!inFlight && handle != aikCache.handle) {
        trust.endSession(handle);
        if (it != sessionRefs.end())
            sessionRefs.erase(it);
    }
}

void
CloudServer::cacheAikSession(const PendingAttestation &pa)
{
    if (cfg.aikReuseLimit <= 1)
        return;
    const tpm::SessionHandle old = aikCache.handle;
    aikCache.handle = pa.session;
    aikCache.label = pa.sessionLabel;
    aikCache.certificate = pa.certificate;
    aikCache.remaining = cfg.aikReuseLimit - 1;
    if (old != 0 && old != aikCache.handle) {
        // The rotated-out session dies once its in-flight users drain.
        const auto it = sessionRefs.find(old);
        if (it == sessionRefs.end() || it->second == 0) {
            trust.endSession(old);
            sessionRefs.erase(old);
        }
    }
}

void
CloudServer::collectMeasurements(std::uint64_t requestId)
{
    auto it = pending.find(requestId);
    if (it == pending.end())
        return;
    PendingAttestation &pa = it->second;

    bool windowed = false;
    for (proto::MeasurementType t : pa.request.rm)
        windowed |= MonitorModule::isWindowed(t);

    const bool haveVm = hasVm(pa.request.vid);
    if (haveVm && cfg.intrusivePause > 0) {
        // Intercepting monitor (ablation): freeze the VM while the
        // collection primitive runs.
        const hypervisor::DomainId dom = domainOf(pa.request.vid);
        hyp.pauseDomain(dom);
        events.scheduleAfter(cfg.intrusivePause, [this, dom] {
            if (hyp.hasDomain(dom))
                hyp.resumeDomain(dom);
        }, "server.intrusive.resume");
    }
    if (windowed && haveVm) {
        monitor.beginWindow(domainOf(pa.request.vid), events.now());
        const SimTime window = pa.request.window > 0 ? pa.request.window
                                                     : cfg.timing.runtimeWindow;
        events.scheduleAfter(window, [this, requestId] {
            finishMeasurements(requestId);
        }, "server.attest.window");
    } else {
        events.scheduleAfter(cfg.timing.staticCollection,
                             [this, requestId] {
            finishMeasurements(requestId);
        }, "server.attest.static");
    }
}

void
CloudServer::finishMeasurements(std::uint64_t requestId)
{
    auto it = pending.find(requestId);
    if (it == pending.end())
        return;
    PendingAttestation &pa = it->second;

    const bool haveVm = hasVm(pa.request.vid);
    for (proto::MeasurementType t : pa.request.rm) {
        Result<proto::Measurement> m =
            Result<proto::Measurement>::error("vm not hosted");
        if (t == proto::MeasurementType::TcbVersion) {
            // Platform firmware version, measured at boot into the
            // TPM-backed platform state. A rolled-back host reports
            // the downgraded version; the evidence is still validly
            // signed — only the AS minimum-TCB floor catches it.
            proto::Measurement tm;
            tm.type = t;
            tm.values.push_back(effectiveTcbVersion());
            m = Result<proto::Measurement>::ok(std::move(tm));
        } else if (MonitorModule::isWindowed(t)) {
            if (haveVm) {
                m = monitor.finishWindow(t, domainOf(pa.request.vid),
                                         events.now());
            }
        } else if (haveVm || t == proto::MeasurementType::PlatformPcrs) {
            const hypervisor::DomainId dom =
                haveVm ? domainOf(pa.request.vid) : -1;
            m = monitor.collectStatic(t, dom);
        }
        if (m) {
            pa.m.items.push_back(m.take());
        } else {
            MONATT_LOG(Warn, "server")
                << cfg.id << ": measurement "
                << proto::measurementTypeName(t)
                << " failed: " << m.errorMessage();
        }
    }
    pa.measured = true;
    maybeRespond(requestId);
}

void
CloudServer::onCertResponse(const Bytes &body)
{
    auto resp = proto::decodeAs<proto::CertResponse>(rxFormat_, body);
    if (!resp)
        return;
    const auto labelIt = certToRequest.find(resp.value().sessionLabel);
    if (labelIt == certToRequest.end())
        return;
    const std::uint64_t requestId = labelIt->second;
    certToRequest.erase(labelIt);

    auto it = pending.find(requestId);
    if (it == pending.end())
        return;
    cancelCertTimer(it->second);
    if (!resp.value().ok) {
        MONATT_LOG(Warn, "server")
            << cfg.id << ": pCA refused certification: "
            << resp.value().error;
        releaseSession(it->second.session);
        pending.erase(it);
        return;
    }
    it->second.certificate = resp.take().certificate;
    it->second.haveCert = true;
    cacheAikSession(it->second);
    maybeRespond(requestId);
}

void
CloudServer::maybeRespond(std::uint64_t requestId)
{
    auto it = pending.find(requestId);
    if (it == pending.end())
        return;
    PendingAttestation &pa = it->second;
    if (!pa.haveCert || !pa.measured || pa.queued)
        return;

    pa.queued = true;
    quoteQueue.push_back(requestId);
    if (!quoteFlushScheduled) {
        quoteFlushScheduled = true;
        events.scheduleAfter(cfg.batchWindow,
                             [this] { flushQuoteBatch(); },
                             "server.quote.flush");
    }
}

void
CloudServer::flushQuoteBatch()
{
    quoteFlushScheduled = false;
    std::vector<std::uint64_t> batch;
    batch.swap(quoteQueue);

    // Serial pre-pass, in arrival order: assemble the responses.
    struct Item
    {
        std::uint64_t id = 0;
        tpm::SessionHandle session = 0;
        net::NodeId requester;
        proto::MeasureResponse resp;
        Result<Bytes> sig = Result<Bytes>::error("not signed");
    };
    std::vector<Item> items;
    items.reserve(batch.size());
    for (std::uint64_t id : batch) {
        const auto it = pending.find(id);
        if (it == pending.end())
            continue;
        const PendingAttestation &pa = it->second;
        Item item;
        item.id = id;
        item.session = pa.session;
        item.requester = pa.requester;
        item.resp.requestId = id;
        item.resp.vid = pa.request.vid;
        item.resp.rm = pa.request.rm;
        item.resp.m = pa.m;
        item.resp.nonce3 = pa.request.nonce3;

        // Stale-quote replay attack: a compromised host answers a
        // fresh challenge with evidence captured before a rollback,
        // re-signed under the current session so signature and quote
        // checks pass. The replay keeps the *stale* nonce3 — the AS
        // freshness check is the only thing that can catch this.
        auto stashIt = staleStash.find(item.resp.vid);
        if (rollbackActive() && rollbackFaults->replaysStale(cfg.id) &&
            stashIt != staleStash.end()) {
            item.resp.rm = stashIt->second.rm;
            item.resp.m = stashIt->second.m;
            item.resp.nonce3 = stashIt->second.nonce3;
        } else {
            staleStash[item.resp.vid] = StaleStash{
                item.resp.rm, item.resp.m, item.resp.nonce3};
        }
        item.resp.quote3 = proto::MeasureResponse::quoteInput(
            item.resp.vid, item.resp.rm, item.resp.m, item.resp.nonce3);
        item.resp.certificate = pa.certificate;
        if (const proto::Measurement *tv =
                item.resp.m.find(proto::MeasurementType::TcbVersion);
            tv != nullptr && !tv->values.empty()) {
            // Unsigned diagnostic mirror of the measured TCB version
            // (wire v3); appraisers only ever trust the signed copy.
            item.resp.tcbVersion = tv->values[0];
        }
        items.push_back(std::move(item));
    }

    // Quote signatures (step 6 of Figure 2) are pure compute against
    // open sessions; no session is created or ended until the serial
    // tail below.
    sim::WorkerPool::global().parallelFor(
        items.size(), [&](std::size_t i) {
            items[i].sig = trust.signWithSession(
                items[i].session, items[i].resp.signedPortion());
        });

    // Serial tail in arrival order: session release and sends. The
    // dedup cache holds the canonical legacy body (cache hits resend
    // legacy-framed); the fresh send uses this node's wire format.
    for (Item &item : items) {
        releaseSession(item.session);
        pending.erase(item.id);
        if (!item.sig)
            continue;
        item.resp.signature = item.sig.take();
        rememberResponse(item.id, item.resp.encode());
        endpoint.sendSecure(item.requester,
                            pack(MessageKind::MeasureResponse,
                                 item.resp));
    }
}

void
CloudServer::crash()
{
    if (!endpoint.attached())
        return;
    MONATT_LOG(Info, "server") << cfg.id << ": crash (management plane)";
    endpoint.detach();
    // Volatile attestation state dies with the host software stack.
    // Hosted VMs keep running: the hypervisor sits below the crashing
    // Attestation/Management Clients.
    for (auto &[id, pa] : pending) {
        cancelCertTimer(pa);
        if (pa.session != 0 && pa.session != aikCache.handle)
            trust.endSession(pa.session);
    }
    if (aikCache.handle != 0)
        trust.endSession(aikCache.handle);
    aikCache = AikSessionCache{};
    pending.clear();
    certToRequest.clear();
    sessionRefs.clear();
    aikPrepQueue.clear();
    quoteQueue.clear();
    responseCache.clear();
    responseOrder.clear();
    migrations.clear();
    staleStash.clear();
}

bool
CloudServer::rollbackActive() const
{
    if (rollbackFaults == nullptr || !rollbackFaults->enabled())
        return false;
    const SimTime now = events.now();
    return now >= rollbackActiveFrom && now < rollbackActiveUntil;
}

std::uint64_t
CloudServer::effectiveTcbVersion() const
{
    if (rollbackActive() && rollbackFaults->rollsBack(cfg.id))
        return rollbackFaults->rollbackVersion();
    return cfg.firmwareVersion;
}

void
CloudServer::restart()
{
    if (endpoint.attached())
        return;
    MONATT_LOG(Info, "server") << cfg.id << ": restart";
    endpoint.attach();
}

hypervisor::DomainId
CloudServer::createVmDomain(const proto::LaunchVm &req)
{
    const int pcpu = nextPcpu;
    nextPcpu = (nextPcpu + 1) % cfg.pcpus;
    const hypervisor::DomainId dom = hyp.createDomain(
        req.name, static_cast<int>(req.numVcpus), pcpu, req.image,
        req.weight);
    // Baseline guest services; tests add workloads/malware on top.
    hyp.domain(dom).guestOs.startProcess("init");
    hyp.domain(dom).guestOs.startProcess("sshd");
    return dom;
}

void
CloudServer::onLaunchVm(const net::NodeId &from, const Bytes &body)
{
    auto reqR = proto::decodeAs<proto::LaunchVm>(rxFormat_, body);
    if (!reqR || !isController(from))
        return;
    const proto::LaunchVm req = reqR.take();

    auto nack = [&](const std::string &why) {
        proto::LaunchVmAck ack;
        ack.vid = req.vid;
        ack.ok = false;
        ack.error = why;
        endpoint.sendSecure(from, pack(MessageKind::LaunchVmAck, ack));
    };

    if (vms.count(req.vid)) {
        nack("vid already hosted");
        return;
    }
    if (req.ramMb > freeRamMb() || req.diskGb > freeDiskGb()) {
        nack("insufficient resources");
        return;
    }

    allocatedRamMb += req.ramMb;
    allocatedDiskGb += req.diskGb;

    // Spawning: stage the image and boot.
    const SimTime spawn = cfg.timing.spawnTime(req.imageSizeMb, req.ramMb);
    events.scheduleAfter(spawn, [this, req, from] {
        // Measure the image before launch (phase two of §4.2.2).
        hypervisor::IntegrityMeasurementUnit imu(trust.tpmDevice());
        const Bytes digest = imu.measureVmImage(req.image);

        HostedVm hosted;
        hosted.vid = req.vid;
        hosted.domain = createVmDomain(req);
        hosted.vcpus = req.numVcpus;
        hosted.ramMb = req.ramMb;
        hosted.diskGb = req.diskGb;
        hosted.imageSizeMb = req.imageSizeMb;
        hosted.image = req.image;
        hosted.weight = req.weight;
        vms[req.vid] = std::move(hosted);

        proto::LaunchVmAck ack;
        ack.vid = req.vid;
        ack.ok = true;
        ack.imageDigest = digest;
        endpoint.sendSecure(from, pack(MessageKind::LaunchVmAck, ack));
    }, "server.spawn");
}

void
CloudServer::onTerminateVm(const net::NodeId &from, const Bytes &body)
{
    auto cmdR = proto::decodeAs<proto::VmCommand>(rxFormat_, body);
    if (!cmdR || !isController(from))
        return;
    const proto::VmCommand cmd = cmdR.take();

    proto::VmCommandAck ack;
    ack.vid = cmd.vid;
    if (!hasVm(cmd.vid)) {
        ack.ok = false;
        ack.error = "unknown vm";
        endpoint.sendSecure(from, pack(MessageKind::TerminateVmAck, ack));
        return;
    }

    const HostedVm &hosted = vms[cmd.vid];
    const SimTime cost = cfg.timing.terminateTime(hosted.ramMb);
    events.scheduleAfter(cost, [this, cmd, from] {
        auto it = vms.find(cmd.vid);
        if (it != vms.end()) {
            hyp.destroyDomain(it->second.domain);
            allocatedRamMb -= it->second.ramMb;
            allocatedDiskGb -= it->second.diskGb;
            vms.erase(it);
        }
        proto::VmCommandAck ack;
        ack.vid = cmd.vid;
        ack.ok = true;
        endpoint.sendSecure(from, pack(MessageKind::TerminateVmAck, ack));
    }, "server.terminate");
}

void
CloudServer::onSuspendVm(const net::NodeId &from, const Bytes &body)
{
    auto cmdR = proto::decodeAs<proto::VmCommand>(rxFormat_, body);
    if (!cmdR || !isController(from))
        return;
    const proto::VmCommand cmd = cmdR.take();

    proto::VmCommandAck ack;
    ack.vid = cmd.vid;
    if (!hasVm(cmd.vid)) {
        ack.ok = false;
        ack.error = "unknown vm";
        endpoint.sendSecure(from, pack(MessageKind::SuspendVmAck, ack));
        return;
    }

    HostedVm &hosted = vms[cmd.vid];
    // Pause immediately; the ack arrives once the state save is done.
    hyp.pauseDomain(hosted.domain);
    hosted.suspended = true;
    const SimTime cost = cfg.timing.suspendTime(hosted.ramMb);
    events.scheduleAfter(cost, [this, cmd, from] {
        proto::VmCommandAck ack;
        ack.vid = cmd.vid;
        ack.ok = true;
        endpoint.sendSecure(from, pack(MessageKind::SuspendVmAck, ack));
    }, "server.suspend");
}

void
CloudServer::onResumeVm(const net::NodeId &from, const Bytes &body)
{
    auto cmdR = proto::decodeAs<proto::VmCommand>(rxFormat_, body);
    if (!cmdR || !isController(from))
        return;
    const proto::VmCommand cmd = cmdR.take();

    proto::VmCommandAck ack;
    ack.vid = cmd.vid;
    if (!hasVm(cmd.vid) || !vms[cmd.vid].suspended) {
        ack.ok = false;
        ack.error = "unknown or not suspended vm";
        endpoint.sendSecure(from, pack(MessageKind::ResumeVmAck, ack));
        return;
    }

    const SimTime cost = cfg.timing.resumeTime(vms[cmd.vid].ramMb);
    events.scheduleAfter(cost, [this, cmd, from] {
        auto it = vms.find(cmd.vid);
        if (it != vms.end() && it->second.suspended) {
            hyp.resumeDomain(it->second.domain);
            it->second.suspended = false;
        }
        proto::VmCommandAck ack;
        ack.vid = cmd.vid;
        ack.ok = true;
        endpoint.sendSecure(from, pack(MessageKind::ResumeVmAck, ack));
    }, "server.resume");
}

void
CloudServer::onMigrateOut(const net::NodeId &from, const Bytes &body)
{
    auto cmdR = proto::decodeAs<proto::MigrateOut>(rxFormat_, body);
    if (!cmdR || !isController(from))
        return;
    const proto::MigrateOut cmd = cmdR.take();

    if (!hasVm(cmd.vid)) {
        proto::VmCommandAck ack;
        ack.vid = cmd.vid;
        ack.ok = false;
        ack.error = "unknown vm";
        endpoint.sendSecure(from, pack(MessageKind::MigrateOutAck, ack));
        return;
    }

    HostedVm &hosted = vms[cmd.vid];
    // Stop-and-copy migration: pause, ship RAM + image, resume there.
    hyp.pauseDomain(hosted.domain);
    hosted.suspended = true;
    migrations[cmd.vid] = from;

    proto::MigrateIn mig;
    mig.vid = hosted.vid;
    mig.name = hyp.domain(hosted.domain).name;
    mig.numVcpus = hosted.vcpus;
    mig.ramMb = hosted.ramMb;
    mig.diskGb = hosted.diskGb;
    mig.imageSizeMb = hosted.imageSizeMb;
    mig.image = hosted.image;
    mig.weight = hosted.weight;
    // Guest memory moves verbatim: visible and rootkit-hidden
    // processes and the audit log all survive the move.
    const hypervisor::GuestOs &srcOs = hyp.domain(hosted.domain).guestOs;
    for (const hypervisor::Process &proc : srcOs.processes()) {
        if (proc.hidden)
            mig.hiddenTasks.push_back(proc.name);
        else
            mig.guestTasks.push_back(proc.name);
    }
    mig.auditEntries = srcOs.auditLogEntries();

    // The RAM copy dominates: charge it to the wire.
    const std::uint64_t ramBytes = hosted.ramMb * 1024 * 1024;
    endpoint.sendSecure(cmd.targetServer,
                        pack(MessageKind::MigrateIn, mig),
                        ramBytes);
}

void
CloudServer::onMigrateIn(const net::NodeId &from, const Bytes &body)
{
    auto migR = proto::decodeAs<proto::MigrateIn>(rxFormat_, body);
    if (!migR)
        return;
    const proto::MigrateIn mig = migR.take();

    proto::VmCommandAck ack;
    ack.vid = mig.vid;
    if (vms.count(mig.vid) || mig.ramMb > freeRamMb() ||
        mig.diskGb > freeDiskGb()) {
        ack.ok = false;
        ack.error = "cannot accept migration";
        endpoint.sendSecure(from, pack(MessageKind::MigrateInAck, ack));
        return;
    }

    allocatedRamMb += mig.ramMb;
    allocatedDiskGb += mig.diskGb;

    events.scheduleAfter(cfg.timing.migrationResume, [this, mig, from] {
        hypervisor::IntegrityMeasurementUnit imu(trust.tpmDevice());
        imu.measureVmImage(mig.image);

        proto::LaunchVm launch;
        launch.vid = mig.vid;
        launch.name = mig.name;
        launch.numVcpus = mig.numVcpus;
        launch.image = mig.image;
        launch.weight = mig.weight;

        HostedVm hosted;
        hosted.vid = mig.vid;
        hosted.domain = createVmDomain(launch);
        hosted.vcpus = mig.numVcpus;
        hosted.ramMb = mig.ramMb;
        hosted.diskGb = mig.diskGb;
        hosted.imageSizeMb = mig.imageSizeMb;
        hosted.image = mig.image;
        hosted.weight = mig.weight;
        vms[mig.vid] = std::move(hosted);

        // Restore carried guest state exactly.
        hypervisor::GuestOs &os = guestOs(mig.vid);
        for (const std::string &task : mig.guestTasks) {
            if (task != "init" && task != "sshd")
                os.startProcess(task);
        }
        for (const std::string &task : mig.hiddenTasks)
            os.injectHiddenMalware(task);
        for (const std::string &entry : mig.auditEntries)
            os.appendAuditEvent(entry);

        proto::VmCommandAck ack;
        ack.vid = mig.vid;
        ack.ok = true;
        endpoint.sendSecure(from, pack(MessageKind::MigrateInAck, ack));
    }, "server.migrate.in");
}

void
CloudServer::onMigrateInAck(const net::NodeId &from, const Bytes &body)
{
    (void)from;
    auto ackR = proto::decodeAs<proto::VmCommandAck>(rxFormat_, body);
    if (!ackR)
        return;
    const proto::VmCommandAck ack = ackR.take();

    const auto migIt = migrations.find(ack.vid);
    if (migIt == migrations.end())
        return;
    const net::NodeId controller = migIt->second;
    migrations.erase(migIt);

    proto::VmCommandAck out;
    out.vid = ack.vid;
    if (ack.ok) {
        // Tear down the source copy.
        auto it = vms.find(ack.vid);
        if (it != vms.end()) {
            hyp.destroyDomain(it->second.domain);
            allocatedRamMb -= it->second.ramMb;
            allocatedDiskGb -= it->second.diskGb;
            vms.erase(it);
        }
        out.ok = true;
    } else {
        // Migration failed: resume locally.
        auto it = vms.find(ack.vid);
        if (it != vms.end() && it->second.suspended) {
            hyp.resumeDomain(it->second.domain);
            it->second.suspended = false;
        }
        out.ok = false;
        out.error = "target rejected migration: " + ack.error;
    }
    endpoint.sendSecure(controller, pack(MessageKind::MigrateOutAck, out));
}

} // namespace monatt::server
