/**
 * @file
 * The hardware Trust Module of Figure 2.
 *
 * "We define a new hardware Trust Module... responsible for server
 * authentication using the Identity Key, crypto operations using the
 * Crypto Engine, Key Generation and Random Number generation (RNG)
 * blocks, and secure measurement storage using the Trust Evidence
 * Registers."
 *
 * The Trust Evidence Registers (TERs) are "analogous to the
 * performance counters used for evaluating the system's performance,
 * except that they measure aspects of the system's security". Banks
 * of named registers are defined per monitoring mechanism — e.g. the
 * covert-channel detector of §4.4.2 uses a 30-register bank counting
 * CPU-usage-interval occurrences, the availability monitor of §4.5.2
 * uses a single register holding CPU_measure.
 *
 * For each attestation session the module generates a fresh
 * attestation key pair {AVKs, ASKs} (§3.4.2), signs the public half
 * with the long-term identity key SKs for pCA certification, and signs
 * measurement quotes with ASKs. The private identity key never leaves
 * the module — expressed here by the class exposing only sign/decrypt
 * operations, never the key material.
 */

#ifndef MONATT_TPM_TRUST_MODULE_H
#define MONATT_TPM_TRUST_MODULE_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/drbg.h"
#include "crypto/rsa.h"
#include "tpm/tpm_emulator.h"

namespace monatt::tpm
{

/** Handle to an open attestation session inside the Trust Module. */
using SessionHandle = std::uint64_t;

/** Public artifacts of a freshly created attestation session. */
struct AttestationSessionInfo
{
    SessionHandle handle = 0;
    crypto::RsaPublicKey attestationKey;  //!< AVKs.
    Bytes attestationKeySignature;        //!< [AVKs]SKs, for the pCA.
};

/** The Trust Module. */
class TrustModule
{
  public:
    /**
     * @param serverId Owning server's id (goes into signed blobs).
     * @param identityKey Long-term {VKs, SKs}; conceptually inserted
     *        into the tamper-proof register at deployment (§3.4.2).
     * @param entropySeed Seed for the RNG block.
     * @param sessionKeyBits Modulus size for per-session AIKs.
     * @param presetTpmKey Pre-derived endorsement key (must equal
     *        deriveTpmKey(serverId, entropySeed)); empty derives it
     *        here.
     */
    TrustModule(std::string serverId, crypto::RsaKeyPair identityKey,
                const Bytes &entropySeed, std::size_t sessionKeyBits = 512,
                std::optional<crypto::RsaKeyPair> presetTpmKey = {});

    /**
     * Deterministic endorsement-key derivation for a server id and
     * entropy seed. Exposed so Cloud construction can pre-generate the
     * keys of many servers on the compute plane and hand them in via
     * the preset parameter below; deriving inline or via preset yields
     * byte-identical keys.
     */
    static crypto::RsaKeyPair deriveTpmKey(const std::string &serverId,
                                           const Bytes &entropySeed);

    /** Public identity key VKs. */
    const crypto::RsaPublicKey &identityPublic() const
    {
        return identity.pub;
    }

    /** Sign with the long-term identity key SKs. */
    Bytes signWithIdentity(const Bytes &message) const;

    /** Decrypt a blob encrypted to VKs (for channel handshakes). */
    Result<Bytes> decryptWithIdentity(const Bytes &cipher) const;

    /** Identity key pair view for SSL handshakes (private half stays
     * inside the module; the channel layer only calls sign/decrypt
     * through this reference). */
    const crypto::RsaKeyPair &identityKeyPair() const { return identity; }

    /** RNG block: generate `n` random bytes (nonces etc.). */
    Bytes randomBytes(std::size_t n);

    // --- Trust Evidence Registers ------------------------------------

    /** Define (or redefine, zeroed) a named bank of `count` TERs. */
    void defineBank(const std::string &bank, std::size_t count);

    /** True when the named bank exists. */
    bool hasBank(const std::string &bank) const;

    /** Write one register. @throws std::out_of_range on bad address. */
    void writeRegister(const std::string &bank, std::size_t index,
                       std::uint64_t value);

    /** Add `delta` to one register. */
    void incrementRegister(const std::string &bank, std::size_t index,
                           std::uint64_t delta = 1);

    /** Read one register. */
    std::uint64_t readRegister(const std::string &bank,
                               std::size_t index) const;

    /** Read a whole bank. @throws std::out_of_range on unknown bank. */
    const std::vector<std::uint64_t> &readBank(
        const std::string &bank) const;

    /** Zero a bank. */
    void clearBank(const std::string &bank);

    // --- Attestation sessions ----------------------------------------

    /**
     * Create a fresh attestation session: generates {AVKs, ASKs} and
     * the identity signature over AVKs (step 3 in Figure 2).
     */
    AttestationSessionInfo beginSession();

    /**
     * Create `n` fresh attestation sessions at once. The RNG forks and
     * handle assignment happen serially in order (the DRBG stream and
     * the handles are identical to n beginSession() calls), while the
     * pure per-session work — key generation, Montgomery context
     * compilation, the identity signature over AVKs — fans out across
     * the compute plane. Results are returned in submission order.
     */
    std::vector<AttestationSessionInfo> beginSessions(std::size_t n);

    /** Sign a measurement blob with the session's ASKs (step 6). */
    Result<Bytes> signWithSession(SessionHandle handle,
                                  const Bytes &message) const;

    /** Discard a session's private key. */
    void endSession(SessionHandle handle);

    /** Number of currently open sessions. */
    std::size_t openSessions() const { return sessions.size(); }

    /** The embedded TPM device (used by the Integrity Measurement
     * Unit for PCR-based boot measurements). */
    TpmEmulator &tpmDevice() { return tpmDev; }
    const TpmEmulator &tpmDevice() const { return tpmDev; }

  private:
    /** An open session: the key pair plus its compiled Montgomery
     * constants, derived once at beginSession so every quote signed
     * during the session skips the per-operation precomputation. */
    struct SessionKey
    {
        crypto::RsaKeyPair keys;
        crypto::RsaPrivateContext ctx;
    };

    std::string server;
    crypto::RsaKeyPair identity;
    /** Compiled identity key: periodic attestation rounds sign and
     * decrypt through this instead of re-deriving constants. */
    crypto::RsaPrivateContext identityCtx;
    crypto::HmacDrbg drbg;
    std::size_t aikBits;
    TpmEmulator tpmDev;
    std::map<std::string, std::vector<std::uint64_t>> banks;
    std::map<SessionHandle, SessionKey> sessions;
    SessionHandle nextHandle = 1;
};

} // namespace monatt::tpm

#endif // MONATT_TPM_TRUST_MODULE_H
