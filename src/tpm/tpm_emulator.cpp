#include "tpm/tpm_emulator.h"

#include <stdexcept>

#include "common/codec.h"
#include "crypto/sha256.h"

namespace monatt::tpm
{

Bytes
TpmQuote::signedPortion() const
{
    ByteWriter w;
    w.putString("tpm-quote");
    w.putU32(static_cast<std::uint32_t>(pcrIndices.size()));
    for (std::size_t i = 0; i < pcrIndices.size(); ++i) {
        w.putU32(pcrIndices[i]);
        w.putBytes(pcrValues[i]);
    }
    w.putBytes(nonce);
    return w.take();
}

Bytes
TpmQuote::encode() const
{
    ByteWriter w;
    w.putU32(static_cast<std::uint32_t>(pcrIndices.size()));
    for (std::size_t i = 0; i < pcrIndices.size(); ++i) {
        w.putU32(pcrIndices[i]);
        w.putBytes(pcrValues[i]);
    }
    w.putBytes(nonce);
    w.putBytes(signature);
    return w.take();
}

Result<TpmQuote>
TpmQuote::decode(const Bytes &data)
{
    using R = Result<TpmQuote>;
    ByteReader r(data);
    auto count = r.getU32();
    if (!count)
        return R::error("TpmQuote: bad count");
    if (count.value() > kNumPcrs)
        return R::error("TpmQuote: too many PCRs");
    TpmQuote q;
    for (std::uint32_t i = 0; i < count.value(); ++i) {
        auto idx = r.getU32();
        auto val = r.getBytes();
        if (!idx || !val)
            return R::error("TpmQuote: truncated PCR entry");
        q.pcrIndices.push_back(idx.value());
        q.pcrValues.push_back(val.take());
    }
    auto nonce = r.getBytes();
    auto sig = r.getBytes();
    if (!nonce || !sig || !r.atEnd())
        return R::error("TpmQuote: truncated trailer");
    q.nonce = nonce.take();
    q.signature = sig.take();
    return R::ok(std::move(q));
}

TpmEmulator::TpmEmulator(crypto::RsaKeyPair endorsementKey)
    : ek(std::move(endorsementKey)),
      pcrs(kNumPcrs, Bytes(crypto::kSha256DigestSize, 0x00))
{
}

void
TpmEmulator::extend(std::uint32_t index, const Bytes &data)
{
    if (index >= kNumPcrs)
        throw std::out_of_range("TpmEmulator::extend: bad PCR index");
    const Bytes dataDigest = crypto::Sha256::hash(data);
    pcrs[index] = crypto::Sha256::hashConcat({&pcrs[index], &dataDigest});
}

const Bytes &
TpmEmulator::pcrRead(std::uint32_t index) const
{
    if (index >= kNumPcrs)
        throw std::out_of_range("TpmEmulator::pcrRead: bad PCR index");
    return pcrs[index];
}

void
TpmEmulator::reset()
{
    for (auto &pcr : pcrs)
        pcr.assign(crypto::kSha256DigestSize, 0x00);
}

TpmQuote
TpmEmulator::quote(const std::vector<std::uint32_t> &indices,
                   const Bytes &nonce) const
{
    TpmQuote q;
    q.pcrIndices = indices;
    for (std::uint32_t idx : indices)
        q.pcrValues.push_back(pcrRead(idx));
    q.nonce = nonce;
    q.signature = crypto::rsaSign(ek.priv, q.signedPortion());
    return q;
}

bool
TpmEmulator::verifyQuote(const TpmQuote &q,
                         const crypto::RsaPublicKey &ekPub)
{
    if (q.pcrIndices.size() != q.pcrValues.size())
        return false;
    return crypto::rsaVerify(ekPub, q.signedPortion(), q.signature);
}

void
TpmEmulator::nvWrite(std::uint32_t slot, const Bytes &data)
{
    nvram[slot] = data;
}

Result<Bytes>
TpmEmulator::nvRead(std::uint32_t slot) const
{
    const auto it = nvram.find(slot);
    if (it == nvram.end())
        return Result<Bytes>::error("TpmEmulator::nvRead: empty slot");
    return Result<Bytes>::ok(it->second);
}

} // namespace monatt::tpm
