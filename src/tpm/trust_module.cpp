#include "tpm/trust_module.h"

#include <stdexcept>

#include "sim/worker_pool.h"

namespace monatt::tpm
{

namespace
{

Bytes
drbgSeed(const Bytes &entropySeed, const crypto::RsaKeyPair &identity)
{
    Bytes seed = entropySeed;
    append(seed, identity.pub.encode());
    return seed;
}

} // namespace

crypto::RsaKeyPair
TrustModule::deriveTpmKey(const std::string &serverId,
                          const Bytes &entropySeed)
{
    Bytes seed = toBytes("tpm-ek:" + serverId);
    append(seed, entropySeed);
    crypto::HmacDrbg drbg(seed);
    Rng rng = drbg.forkRng();
    return crypto::rsaGenerateKeyPair(512, rng);
}

TrustModule::TrustModule(std::string serverId,
                         crypto::RsaKeyPair identityKey,
                         const Bytes &entropySeed,
                         std::size_t sessionKeyBits,
                         std::optional<crypto::RsaKeyPair> presetTpmKey)
    : server(std::move(serverId)), identity(std::move(identityKey)),
      identityCtx(identity.priv), drbg(drbgSeed(entropySeed, identity)),
      aikBits(sessionKeyBits),
      tpmDev(presetTpmKey ? std::move(*presetTpmKey)
                          : deriveTpmKey(server, entropySeed))
{
}

Bytes
TrustModule::signWithIdentity(const Bytes &message) const
{
    return crypto::rsaSign(identityCtx, message);
}

Result<Bytes>
TrustModule::decryptWithIdentity(const Bytes &cipher) const
{
    return crypto::rsaDecrypt(identityCtx, cipher);
}

Bytes
TrustModule::randomBytes(std::size_t n)
{
    return drbg.generate(n);
}

void
TrustModule::defineBank(const std::string &bank, std::size_t count)
{
    banks[bank].assign(count, 0);
}

bool
TrustModule::hasBank(const std::string &bank) const
{
    return banks.count(bank) != 0;
}

void
TrustModule::writeRegister(const std::string &bank, std::size_t index,
                           std::uint64_t value)
{
    auto it = banks.find(bank);
    if (it == banks.end() || index >= it->second.size())
        throw std::out_of_range("TrustModule: bad TER address " + bank);
    it->second[index] = value;
}

void
TrustModule::incrementRegister(const std::string &bank, std::size_t index,
                               std::uint64_t delta)
{
    auto it = banks.find(bank);
    if (it == banks.end() || index >= it->second.size())
        throw std::out_of_range("TrustModule: bad TER address " + bank);
    it->second[index] += delta;
}

std::uint64_t
TrustModule::readRegister(const std::string &bank, std::size_t index) const
{
    const auto it = banks.find(bank);
    if (it == banks.end() || index >= it->second.size())
        throw std::out_of_range("TrustModule: bad TER address " + bank);
    return it->second[index];
}

const std::vector<std::uint64_t> &
TrustModule::readBank(const std::string &bank) const
{
    const auto it = banks.find(bank);
    if (it == banks.end())
        throw std::out_of_range("TrustModule: unknown TER bank " + bank);
    return it->second;
}

void
TrustModule::clearBank(const std::string &bank)
{
    auto it = banks.find(bank);
    if (it == banks.end())
        throw std::out_of_range("TrustModule: unknown TER bank " + bank);
    std::fill(it->second.begin(), it->second.end(), 0);
}

AttestationSessionInfo
TrustModule::beginSession()
{
    return beginSessions(1).front();
}

std::vector<AttestationSessionInfo>
TrustModule::beginSessions(std::size_t n)
{
    // Serial pre-pass: the DRBG is stateful, so the per-session RNGs
    // fork in submission order regardless of the pool size.
    std::vector<Rng> rngs;
    rngs.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        rngs.push_back(drbg.forkRng());

    // Parallel phase: pure per-session compute against a private RNG —
    // keygen, context compilation, identity signature (identityCtx is
    // const and shared read-only).
    struct Generated
    {
        crypto::RsaKeyPair aik;
        std::optional<crypto::RsaPrivateContext> ctx;
        Bytes signature;
    };
    auto generated = sim::WorkerPool::global().map<Generated>(
        n, [&](std::size_t i) {
            Generated g;
            g.aik = crypto::rsaGenerateKeyPair(aikBits, rngs[i]);
            g.ctx.emplace(g.aik.priv);
            g.signature = signWithIdentity(g.aik.pub.encode());
            return g;
        });

    // Serial post-pass: handles and session-table inserts in order.
    std::vector<AttestationSessionInfo> out;
    out.reserve(n);
    for (Generated &g : generated) {
        AttestationSessionInfo info;
        info.handle = nextHandle++;
        info.attestationKey = g.aik.pub;
        info.attestationKeySignature = std::move(g.signature);
        sessions.emplace(info.handle,
                         SessionKey{std::move(g.aik),
                                    std::move(*g.ctx)});
        out.push_back(std::move(info));
    }
    return out;
}

Result<Bytes>
TrustModule::signWithSession(SessionHandle handle,
                             const Bytes &message) const
{
    const auto it = sessions.find(handle);
    if (it == sessions.end())
        return Result<Bytes>::error("TrustModule: unknown session");
    return Result<Bytes>::ok(crypto::rsaSign(it->second.ctx, message));
}

void
TrustModule::endSession(SessionHandle handle)
{
    sessions.erase(handle);
}

} // namespace monatt::tpm
