#include "tpm/trust_module.h"

#include <stdexcept>

namespace monatt::tpm
{

namespace
{

Bytes
drbgSeed(const Bytes &entropySeed, const crypto::RsaKeyPair &identity)
{
    Bytes seed = entropySeed;
    append(seed, identity.pub.encode());
    return seed;
}

crypto::RsaKeyPair
deriveTpmKey(const std::string &serverId, const Bytes &entropySeed)
{
    Bytes seed = toBytes("tpm-ek:" + serverId);
    append(seed, entropySeed);
    crypto::HmacDrbg drbg(seed);
    Rng rng = drbg.forkRng();
    return crypto::rsaGenerateKeyPair(512, rng);
}

} // namespace

TrustModule::TrustModule(std::string serverId,
                         crypto::RsaKeyPair identityKey,
                         const Bytes &entropySeed,
                         std::size_t sessionKeyBits)
    : server(std::move(serverId)), identity(std::move(identityKey)),
      identityCtx(identity.priv), drbg(drbgSeed(entropySeed, identity)),
      aikBits(sessionKeyBits), tpmDev(deriveTpmKey(server, entropySeed))
{
}

Bytes
TrustModule::signWithIdentity(const Bytes &message) const
{
    return crypto::rsaSign(identityCtx, message);
}

Result<Bytes>
TrustModule::decryptWithIdentity(const Bytes &cipher) const
{
    return crypto::rsaDecrypt(identityCtx, cipher);
}

Bytes
TrustModule::randomBytes(std::size_t n)
{
    return drbg.generate(n);
}

void
TrustModule::defineBank(const std::string &bank, std::size_t count)
{
    banks[bank].assign(count, 0);
}

bool
TrustModule::hasBank(const std::string &bank) const
{
    return banks.count(bank) != 0;
}

void
TrustModule::writeRegister(const std::string &bank, std::size_t index,
                           std::uint64_t value)
{
    auto it = banks.find(bank);
    if (it == banks.end() || index >= it->second.size())
        throw std::out_of_range("TrustModule: bad TER address " + bank);
    it->second[index] = value;
}

void
TrustModule::incrementRegister(const std::string &bank, std::size_t index,
                               std::uint64_t delta)
{
    auto it = banks.find(bank);
    if (it == banks.end() || index >= it->second.size())
        throw std::out_of_range("TrustModule: bad TER address " + bank);
    it->second[index] += delta;
}

std::uint64_t
TrustModule::readRegister(const std::string &bank, std::size_t index) const
{
    const auto it = banks.find(bank);
    if (it == banks.end() || index >= it->second.size())
        throw std::out_of_range("TrustModule: bad TER address " + bank);
    return it->second[index];
}

const std::vector<std::uint64_t> &
TrustModule::readBank(const std::string &bank) const
{
    const auto it = banks.find(bank);
    if (it == banks.end())
        throw std::out_of_range("TrustModule: unknown TER bank " + bank);
    return it->second;
}

void
TrustModule::clearBank(const std::string &bank)
{
    auto it = banks.find(bank);
    if (it == banks.end())
        throw std::out_of_range("TrustModule: unknown TER bank " + bank);
    std::fill(it->second.begin(), it->second.end(), 0);
}

AttestationSessionInfo
TrustModule::beginSession()
{
    Rng keyRng = drbg.forkRng();
    crypto::RsaKeyPair aik = crypto::rsaGenerateKeyPair(aikBits, keyRng);

    AttestationSessionInfo info;
    info.handle = nextHandle++;
    info.attestationKey = aik.pub;
    info.attestationKeySignature = signWithIdentity(aik.pub.encode());
    crypto::RsaPrivateContext ctx(aik.priv);
    sessions.emplace(info.handle,
                     SessionKey{std::move(aik), std::move(ctx)});
    return info;
}

Result<Bytes>
TrustModule::signWithSession(SessionHandle handle,
                             const Bytes &message) const
{
    const auto it = sessions.find(handle);
    if (it == sessions.end())
        return Result<Bytes>::error("TrustModule: unknown session");
    return Result<Bytes>::ok(crypto::rsaSign(it->second.ctx, message));
}

void
TrustModule::endSession(SessionHandle handle)
{
    sessions.erase(handle);
}

} // namespace monatt::tpm
