#include "tpm/certificate.h"

#include "common/codec.h"

namespace monatt::tpm
{

Bytes
Certificate::encodeTbs() const
{
    ByteWriter w;
    w.putString("monatt-cert-v1");
    w.putString(subject);
    w.putBytes(subjectKey);
    w.putString(issuer);
    w.putU64(serial);
    return w.take();
}

Bytes
Certificate::encode() const
{
    ByteWriter w;
    w.putString(subject);
    w.putBytes(subjectKey);
    w.putString(issuer);
    w.putU64(serial);
    w.putBytes(signature);
    return w.take();
}

Result<Certificate>
Certificate::decode(const Bytes &data)
{
    using R = Result<Certificate>;
    ByteReader r(data);
    auto subject = r.getString();
    auto subjectKey = r.getBytes();
    auto issuer = r.getString();
    auto serial = r.getU64();
    auto signature = r.getBytes();
    if (!subject || !subjectKey || !issuer || !serial || !signature ||
        !r.atEnd()) {
        return R::error("Certificate: malformed encoding");
    }
    Certificate cert;
    cert.subject = subject.take();
    cert.subjectKey = subjectKey.take();
    cert.issuer = issuer.take();
    cert.serial = serial.value();
    cert.signature = signature.take();
    return R::ok(std::move(cert));
}

bool
Certificate::verify(const crypto::RsaPublicKey &issuerKey) const
{
    return crypto::rsaVerify(issuerKey, encodeTbs(), signature);
}

bool
Certificate::verify(const crypto::RsaPublicContext &issuerCtx) const
{
    return crypto::rsaVerify(issuerCtx, encodeTbs(), signature);
}

Result<crypto::RsaPublicKey>
Certificate::publicKey() const
{
    return crypto::RsaPublicKey::decode(subjectKey);
}

Certificate
issueCertificate(const std::string &subject,
                 const crypto::RsaPublicKey &subjectKey,
                 const std::string &issuer, std::uint64_t serial,
                 const crypto::RsaPrivateKey &issuerKey)
{
    Certificate cert;
    cert.subject = subject;
    cert.subjectKey = subjectKey.encode();
    cert.issuer = issuer;
    cert.serial = serial;
    cert.signature = crypto::rsaSign(issuerKey, cert.encodeTbs());
    return cert;
}

Certificate
issueCertificate(const std::string &subject,
                 const crypto::RsaPublicKey &subjectKey,
                 const std::string &issuer, std::uint64_t serial,
                 const crypto::RsaPrivateContext &issuerCtx)
{
    Certificate cert;
    cert.subject = subject;
    cert.subjectKey = subjectKey.encode();
    cert.issuer = issuer;
    cert.serial = serial;
    cert.signature = crypto::rsaSign(issuerCtx, cert.encodeTbs());
    return cert;
}

} // namespace monatt::tpm
