/**
 * @file
 * Software TPM emulator.
 *
 * The paper's prototype "integrated the TPM-emulator [39] and
 * leveraged it to emulate the functions of the Trust Module in the
 * hardware". This class is that emulator: a PCR bank with the TCG
 * extend semantics (PCR <- H(PCR || H(data))), small NVRAM, an
 * endorsement key, and quote generation (a signed hash over selected
 * PCR values and a caller nonce — the TCG "Quote" the paper borrows
 * its terminology from).
 */

#ifndef MONATT_TPM_TPM_EMULATOR_H
#define MONATT_TPM_TPM_EMULATOR_H

#include <cstdint>
#include <map>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/rsa.h"

namespace monatt::tpm
{

/** Number of PCRs, as in TPM 1.2. */
constexpr std::size_t kNumPcrs = 24;

/** A quote: selected PCR values bound to a nonce, signed by the EK. */
struct TpmQuote
{
    std::vector<std::uint32_t> pcrIndices;
    std::vector<Bytes> pcrValues;
    Bytes nonce;
    Bytes signature; //!< EK signature over the quote digest input.

    /** The exact bytes the signature covers. */
    Bytes signedPortion() const;

    /** Serialize for transport. */
    Bytes encode() const;

    /** Parse; error on malformed input. */
    static Result<TpmQuote> decode(const Bytes &data);
};

/** Software TPM. */
class TpmEmulator
{
  public:
    /**
     * @param endorsementKey The device's burned-in key pair.
     */
    explicit TpmEmulator(crypto::RsaKeyPair endorsementKey);

    /** Extend PCR `index` with `data` (TCG semantics). */
    void extend(std::uint32_t index, const Bytes &data);

    /** Read a PCR value. @throws std::out_of_range on a bad index. */
    const Bytes &pcrRead(std::uint32_t index) const;

    /** Reset all PCRs to zero (platform reboot). */
    void reset();

    /** Produce a signed quote over the selected PCRs and `nonce`. */
    TpmQuote quote(const std::vector<std::uint32_t> &indices,
                   const Bytes &nonce) const;

    /**
     * Verify a quote against an expected EK public key. Checks the
     * signature only; the caller compares PCR values against its
     * reference database.
     */
    static bool verifyQuote(const TpmQuote &q,
                            const crypto::RsaPublicKey &ekPub);

    /** Endorsement public key. */
    const crypto::RsaPublicKey &endorsementPublic() const
    {
        return ek.pub;
    }

    /** Write a small NVRAM slot. */
    void nvWrite(std::uint32_t slot, const Bytes &data);

    /** Read an NVRAM slot; error when the slot was never written. */
    Result<Bytes> nvRead(std::uint32_t slot) const;

  private:
    crypto::RsaKeyPair ek;
    std::vector<Bytes> pcrs;
    std::map<std::uint32_t, Bytes> nvram;
};

} // namespace monatt::tpm

#endif // MONATT_TPM_TPM_EMULATOR_H
