/**
 * @file
 * Public-key certificates.
 *
 * §3.2.3: the privacy Certificate Authority "may be a separate trusted
 * server already used by the cloud provider for standard certification
 * of public-key certificates that bind a public key to a given
 * machine". Certificates here bind a subject name to an RSA public
 * key under an issuer signature. The pCA issues one for each
 * per-session attestation key AVKs (§3.4.2), which lets the
 * Attestation Server authenticate a cloud server "anonymously" —
 * the certificate names the session, not the machine.
 */

#ifndef MONATT_TPM_CERTIFICATE_H
#define MONATT_TPM_CERTIFICATE_H

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/rsa.h"

namespace monatt::tpm
{

/** A signed binding of subject name to public key. */
struct Certificate
{
    std::string subject;   //!< Named key (e.g. "aik-session-17").
    Bytes subjectKey;      //!< Encoded RsaPublicKey.
    std::string issuer;    //!< Issuing authority id.
    std::uint64_t serial = 0;
    Bytes signature;       //!< Issuer signature over encodeTbs().

    /** The to-be-signed portion. */
    Bytes encodeTbs() const;

    /** Full serialization including the signature. */
    Bytes encode() const;

    /** Parse; error on malformed input. */
    static Result<Certificate> decode(const Bytes &data);

    /** Check the issuer signature. */
    bool verify(const crypto::RsaPublicKey &issuerKey) const;

    /** Check the issuer signature through a compiled issuer key (the
     * Attestation Server keeps one per pCA across sessions). */
    bool verify(const crypto::RsaPublicContext &issuerCtx) const;

    /** Decode the subject public key. */
    Result<crypto::RsaPublicKey> publicKey() const;
};

/** Create and sign a certificate. */
Certificate issueCertificate(const std::string &subject,
                             const crypto::RsaPublicKey &subjectKey,
                             const std::string &issuer,
                             std::uint64_t serial,
                             const crypto::RsaPrivateKey &issuerKey);

/** issueCertificate through a precomputed issuer signing context (the
 * pCA signs every certificate with the same key). */
Certificate issueCertificate(const std::string &subject,
                             const crypto::RsaPublicKey &subjectKey,
                             const std::string &issuer,
                             std::uint64_t serial,
                             const crypto::RsaPrivateContext &issuerCtx);

} // namespace monatt::tpm

#endif // MONATT_TPM_CERTIFICATE_H
