#include "verif/deduction.h"

namespace monatt::verif
{

void
KnowledgeBase::observe(const TermPtr &term)
{
    known.insert(term);
}

void
KnowledgeBase::makePublic(const TermPtr &nameTerm)
{
    known.insert(nameTerm);
}

bool
KnowledgeBase::inKnown(const TermPtr &t) const
{
    return known.count(t) != 0;
}

void
KnowledgeBase::saturate()
{
    // Analysis to fixpoint. The synthesis side (building keys from
    // derivable parts to unlock more decryption) is folded in by
    // consulting canDerive for key positions — sound here because
    // canDerive itself only uses the current `known` set plus
    // synthesis, and we iterate until nothing changes.
    bool changed = true;
    while (changed) {
        changed = false;
        std::vector<TermPtr> discovered;
        for (const TermPtr &t : known) {
            switch (t->kind()) {
              case TermKind::Pair:
                discovered.push_back(t->children()[0]);
                discovered.push_back(t->children()[1]);
                break;
              case TermKind::SEnc:
                if (canDerive(t->children()[0]))
                    discovered.push_back(t->children()[1]);
                break;
              case TermKind::AEnc: {
                // aenc(pub(n), body): need the private name n.
                const TermPtr &key = t->children()[0];
                if (key->kind() == TermKind::Pub &&
                    canDerive(key->children()[0])) {
                    discovered.push_back(t->children()[1]);
                }
                break;
              }
              case TermKind::Sign:
                // Signatures do not provide confidentiality.
                discovered.push_back(t->children()[1]);
                break;
              default:
                break;
            }
        }
        for (const TermPtr &t : discovered) {
            if (known.insert(t).second)
                changed = true;
        }
    }
}

bool
KnowledgeBase::canDerive(const TermPtr &goal) const
{
    std::set<std::string> inProgress;
    return deriveRec(goal, inProgress);
}

bool
KnowledgeBase::deriveRec(const TermPtr &goal,
                         std::set<std::string> &inProgress) const
{
    if (inKnown(goal))
        return true;
    if (!inProgress.insert(goal->repr()).second)
        return false; // Cycle guard.

    bool ok = false;
    switch (goal->kind()) {
      case TermKind::Name:
        ok = false; // Fresh names are underivable unless known.
        break;
      case TermKind::Pub:
        // Public keys are published by the certificate infrastructure.
        ok = true;
        break;
      case TermKind::Pair:
        ok = deriveRec(goal->children()[0], inProgress) &&
             deriveRec(goal->children()[1], inProgress);
        break;
      case TermKind::SEnc:
      case TermKind::AEnc:
      case TermKind::Sign:
        ok = deriveRec(goal->children()[0], inProgress) &&
             deriveRec(goal->children()[1], inProgress);
        break;
      case TermKind::Hash:
        ok = deriveRec(goal->children()[0], inProgress);
        break;
    }
    inProgress.erase(goal->repr());
    return ok;
}

} // namespace monatt::verif
