#include "verif/protocol_model.h"

namespace monatt::verif
{

namespace
{

/** Model of one SSL-like channel establishment: the initiator sends a
 * premaster under the responder's identity key, both contribute public
 * nonces, and the session key is a hash of all three. Returns the
 * session key; the observable handshake terms are appended to `wire`. */
TermPtr
establishChannel(const std::string &tag, const TermPtr &responderPriv,
                 std::vector<TermPtr> &wire)
{
    const TermPtr premaster = Term::name("pm-" + tag);
    const TermPtr clientNonce = Term::name("nc-" + tag);
    const TermPtr serverNonce = Term::name("ns-" + tag);

    // ClientHello: nonce in the clear, premaster under the responder's
    // public identity key (the nonces are public by construction).
    wire.push_back(clientNonce);
    wire.push_back(Term::aenc(Term::pub(responderPriv), premaster));
    // ServerHello: nonce in the clear.
    wire.push_back(serverNonce);

    return Term::hash(Term::tuple({premaster, clientNonce, serverNonce}));
}

} // namespace

ProtocolModel::ProtocolModel(std::set<LeakableSecret> leaks)
{
    // Long-term identity keys (private halves).
    skCust = Term::name("SKcust");
    skC = Term::name("SKc");
    skA = Term::name("SKa");
    skS = Term::name("SKs");
    askS = Term::name("ASKs");
    skPca = Term::name("SKpca");

    // Protocol payload secrets and nonces. The paper's property 2
    // demands secrecy of P, M and R, so the model treats them as
    // values that travel only inside the encrypted channels.
    propP = Term::name("P");
    measM = Term::name("M");
    reportR = Term::name("R");
    n1 = Term::name("N1");
    n2 = Term::name("N2");
    n3 = Term::name("N3");

    const TermPtr vid = Term::name("Vid");
    const TermPtr serverId = Term::name("I");
    kb.makePublic(vid);
    kb.makePublic(serverId);
    // A payload of the attacker's choosing, used by the forgery and
    // injection queries.
    kb.makePublic(Term::name("attacker-payload"));

    std::vector<TermPtr> wire;

    // SSL channel establishment for the three hops of Figure 3.
    kx = establishChannel("x", skC, wire);  // customer -> controller
    ky = establishChannel("y", skA, wire);  // controller -> attestor
    kz = establishChannel("z", skS, wire);  // attestor -> cloud server

    // (Vid, P, N1) under Kx.
    wire.push_back(Term::senc(kx, Term::tuple({vid, propP, n1})));

    // (Vid, I, P, N2) under Ky.
    wire.push_back(
        Term::senc(ky, Term::tuple({vid, serverId, propP, n2})));

    // (Vid, rM, N3) under Kz (rM stands in for the list derived from
    // P; it is protocol metadata, modeled as P here).
    wire.push_back(Term::senc(kz, Term::tuple({vid, propP, n3})));

    // Session attestation key provisioning: [AVKs]SKs to the pCA and
    // the pCA's certificate for AVKs. Public halves are modeled via
    // pub(ASKs).
    wire.push_back(Term::sign(skS, Term::pub(askS)));
    wire.push_back(Term::sign(skPca, Term::pub(askS)));

    // ([Vid, rM, M, N3, Q3]ASKs) under Kz, where
    // Q3 = H(Vid || rM || M || N3).
    const TermPtr q3 =
        Term::hash(Term::tuple({vid, propP, measM, n3}));
    wire.push_back(Term::senc(
        kz, Term::sign(askS,
                       Term::tuple({vid, propP, measM, n3, q3}))));

    // ([Vid, I, P, R, N2, Q2]SKa) under Ky.
    const TermPtr q2 =
        Term::hash(Term::tuple({vid, serverId, propP, reportR, n2}));
    wire.push_back(Term::senc(
        ky, Term::sign(skA, Term::tuple({vid, serverId, propP, reportR,
                                         n2, q2}))));

    // ([Vid, P, R, N1, Q1]SKc) under Kx.
    const TermPtr q1 =
        Term::hash(Term::tuple({vid, propP, reportR, n1}));
    wire.push_back(Term::senc(
        kx, Term::sign(skC, Term::tuple({vid, propP, reportR, n1, q1}))));

    // The Dolev-Yao attacker observes the entire wire.
    for (const TermPtr &t : wire)
        kb.observe(t);

    // Deliberate leaks (checker validation).
    for (LeakableSecret leak : leaks) {
        switch (leak) {
          case LeakableSecret::SessionKeyKx:
            kb.observe(kx);
            break;
          case LeakableSecret::SessionKeyKy:
            kb.observe(ky);
            break;
          case LeakableSecret::SessionKeyKz:
            kb.observe(kz);
            break;
          case LeakableSecret::ServerIdentityKey:
            kb.observe(skS);
            break;
          case LeakableSecret::AttestorIdentityKey:
            kb.observe(skA);
            break;
          case LeakableSecret::ControllerIdentityKey:
            kb.observe(skC);
            break;
          case LeakableSecret::SessionSigningKey:
            kb.observe(askS);
            break;
        }
    }

    kb.saturate();
}

VerificationOutcome
ProtocolModel::secret(const std::string &label, const TermPtr &term) const
{
    VerificationOutcome out;
    out.property = "secrecy: " + label;
    out.holds = !kb.canDerive(term);
    out.detail = out.holds ? "attacker cannot derive " + label
                           : "ATTACK: attacker derives " + label;
    return out;
}

VerificationOutcome
ProtocolModel::unforgeable(const std::string &label,
                           const TermPtr &witness) const
{
    VerificationOutcome out;
    out.property = label;
    out.holds = !kb.canDerive(witness);
    out.detail = out.holds
                     ? "attacker cannot synthesize an acceptable message"
                     : "ATTACK: attacker forges an acceptable message";
    return out;
}

std::vector<VerificationOutcome>
ProtocolModel::secrecyOfKeys() const
{
    return {
        secret("Kx", kx),          secret("Ky", ky),
        secret("Kz", kz),          secret("SKcust", skCust),
        secret("SKc", skC),        secret("SKa", skA),
        secret("SKs", skS),        secret("ASKs", askS),
    };
}

std::vector<VerificationOutcome>
ProtocolModel::secrecyOfPayloads() const
{
    return {
        secret("P (security properties)", propP),
        secret("M (measurements)", measM),
        secret("R (attestation report)", reportR),
    };
}

std::vector<VerificationOutcome>
ProtocolModel::integrityOfPayloads() const
{
    // Integrity (property 3): to modify P, M or R undetected the
    // attacker must produce a signature over a payload of his choice
    // under the corresponding key. Witness terms use a fresh
    // attacker-chosen payload.
    const TermPtr chosen = Term::name("attacker-payload");
    std::vector<VerificationOutcome> out;
    out.push_back(unforgeable(
        "integrity: M (forge [*]ASKs)", Term::sign(askS, chosen)));
    out.push_back(unforgeable(
        "integrity: R at controller (forge [*]SKa)",
        Term::sign(skA, chosen)));
    out.push_back(unforgeable(
        "integrity: R at customer (forge [*]SKc)",
        Term::sign(skC, chosen)));
    return out;
}

std::vector<VerificationOutcome>
ProtocolModel::authentication() const
{
    // Authentication correspondences (properties 4-6): each receiving
    // side accepts only messages protected under the hop's session key
    // (for requests) or carrying the peer's signature (for reports).
    // The attacker defeats authentication iff it can synthesize any
    // acceptable message on that hop.
    const TermPtr chosen = Term::name("attacker-payload");
    std::vector<VerificationOutcome> out;
    out.push_back(unforgeable(
        "authentication: customer <-> controller (inject under Kx)",
        Term::senc(kx, chosen)));
    out.push_back(unforgeable(
        "authentication: controller <-> attestation server (inject "
        "under Ky)",
        Term::senc(ky, chosen)));
    out.push_back(unforgeable(
        "authentication: attestation server <-> cloud server (inject "
        "under Kz)",
        Term::senc(kz, chosen)));
    return out;
}

std::vector<VerificationOutcome>
ProtocolModel::verifyAll() const
{
    std::vector<VerificationOutcome> all;
    for (auto group :
         {secrecyOfKeys(), secrecyOfPayloads(), integrityOfPayloads(),
          authentication()}) {
        all.insert(all.end(), group.begin(), group.end());
    }
    return all;
}

} // namespace monatt::verif
