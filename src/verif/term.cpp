#include "verif/term.h"

namespace monatt::verif
{

namespace
{

const char *
kindTag(TermKind k)
{
    switch (k) {
      case TermKind::Name:
        return "n";
      case TermKind::Pub:
        return "pub";
      case TermKind::Pair:
        return "pair";
      case TermKind::SEnc:
        return "senc";
      case TermKind::AEnc:
        return "aenc";
      case TermKind::Sign:
        return "sign";
      case TermKind::Hash:
        return "h";
    }
    return "?";
}

} // namespace

Term::Term(TermKind kind, std::string atom, std::vector<TermPtr> children)
    : kind_(kind), atom_(std::move(atom)), children_(std::move(children))
{
    repr_ = kindTag(kind_);
    repr_ += "(";
    if (kind_ == TermKind::Name) {
        repr_ += atom_;
    } else {
        for (std::size_t i = 0; i < children_.size(); ++i) {
            if (i)
                repr_ += ",";
            repr_ += children_[i]->repr();
        }
    }
    repr_ += ")";
}

bool
Term::equals(const Term &other) const
{
    return repr_ == other.repr_;
}

TermPtr
Term::make(TermKind kind, std::string atom, std::vector<TermPtr> children)
{
    return TermPtr(new Term(kind, std::move(atom), std::move(children)));
}

TermPtr
Term::name(const std::string &n)
{
    return make(TermKind::Name, n, {});
}

TermPtr
Term::pub(const TermPtr &n)
{
    return make(TermKind::Pub, {}, {n});
}

TermPtr
Term::pair(const TermPtr &a, const TermPtr &b)
{
    return make(TermKind::Pair, {}, {a, b});
}

TermPtr
Term::tuple(const std::vector<TermPtr> &parts)
{
    if (parts.empty())
        return name("unit");
    TermPtr out = parts.back();
    for (std::size_t i = parts.size() - 1; i-- > 0;)
        out = pair(parts[i], out);
    return out;
}

TermPtr
Term::senc(const TermPtr &key, const TermPtr &body)
{
    return make(TermKind::SEnc, {}, {key, body});
}

TermPtr
Term::aenc(const TermPtr &pubkey, const TermPtr &body)
{
    return make(TermKind::AEnc, {}, {pubkey, body});
}

TermPtr
Term::sign(const TermPtr &privkey, const TermPtr &body)
{
    return make(TermKind::Sign, {}, {privkey, body});
}

TermPtr
Term::hash(const TermPtr &body)
{
    return make(TermKind::Hash, {}, {body});
}

} // namespace monatt::verif
