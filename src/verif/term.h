/**
 * @file
 * Symbolic term algebra for protocol verification.
 *
 * §7.2.2 verifies the Figure-3 protocol with ProVerif. This module is
 * the corresponding substrate here: protocol messages are symbolic
 * terms over a standard Dolev-Yao signature — atomic names, pairing,
 * symmetric/asymmetric encryption, signatures and hashing — with
 * perfect-cryptography semantics (a ciphertext reveals nothing
 * without the key; a signature cannot be produced without the signing
 * key; hashes are one way).
 *
 * Terms are immutable, hash-consed values: structural equality is
 * pointer-independent and cheap, which the deduction engine's
 * fixpoint relies on.
 */

#ifndef MONATT_VERIF_TERM_H
#define MONATT_VERIF_TERM_H

#include <memory>
#include <string>
#include <vector>

namespace monatt::verif
{

/** Term constructors. */
enum class TermKind
{
    Name,  //!< Atomic name (key, nonce, payload).
    Pub,   //!< Public half of the key named by child 0.
    Pair,  //!< (child 0, child 1).
    SEnc,  //!< Symmetric encryption: key child 0, body child 1.
    AEnc,  //!< Asymmetric encryption: pubkey child 0, body child 1.
    Sign,  //!< Signature: private key child 0, body child 1.
    Hash,  //!< One-way hash of child 0.
};

class Term;

/** Shared immutable term handle. */
using TermPtr = std::shared_ptr<const Term>;

/** A symbolic term. */
class Term
{
  public:
    TermKind kind() const { return kind_; }

    /** Atom text (Name only). */
    const std::string &atom() const { return atom_; }

    /** Sub-terms. */
    const std::vector<TermPtr> &children() const { return children_; }

    /** Structural equality. */
    bool equals(const Term &other) const;

    /** Canonical string form (used for hashing and debugging). */
    const std::string &repr() const { return repr_; }

    // --- Factories -----------------------------------------------------

    /** Atomic name. */
    static TermPtr name(const std::string &n);

    /** Public key of the key pair named `n`. */
    static TermPtr pub(const TermPtr &n);

    /** Pair. */
    static TermPtr pair(const TermPtr &a, const TermPtr &b);

    /** Right-nested tuple of >= 1 terms. */
    static TermPtr tuple(const std::vector<TermPtr> &parts);

    /** Symmetric encryption. */
    static TermPtr senc(const TermPtr &key, const TermPtr &body);

    /** Asymmetric encryption under a public key. */
    static TermPtr aenc(const TermPtr &pubkey, const TermPtr &body);

    /** Signature under a private key. */
    static TermPtr sign(const TermPtr &privkey, const TermPtr &body);

    /** Hash. */
    static TermPtr hash(const TermPtr &body);

  private:
    Term(TermKind kind, std::string atom, std::vector<TermPtr> children);

    static TermPtr make(TermKind kind, std::string atom,
                        std::vector<TermPtr> children);

    TermKind kind_;
    std::string atom_;
    std::vector<TermPtr> children_;
    std::string repr_;
};

/** Ordering/equality on TermPtr by canonical form (for std::set). */
struct TermLess
{
    bool
    operator()(const TermPtr &a, const TermPtr &b) const
    {
        return a->repr() < b->repr();
    }
};

} // namespace monatt::verif

#endif // MONATT_VERIF_TERM_H
