/**
 * @file
 * Dolev-Yao attacker deduction.
 *
 * The attacker of §3.3 "is able to eavesdrop as well as falsify the
 * attestation messages". Its capability is the standard deduction
 * system:
 *
 *   analysis   — split pairs; decrypt senc with a derivable key;
 *                decrypt aenc with the derivable private key; read
 *                the body out of a signature (signatures do not hide).
 *   synthesis  — build pairs; encrypt/sign/hash with derivable parts;
 *                public keys of any name are derivable.
 *
 * The KnowledgeBase saturates the analysis rules to a fixpoint, then
 * answers derivability queries by recursive synthesis over the
 * saturated set.
 */

#ifndef MONATT_VERIF_DEDUCTION_H
#define MONATT_VERIF_DEDUCTION_H

#include <set>
#include <vector>

#include "verif/term.h"

namespace monatt::verif
{

/** The attacker's knowledge. */
class KnowledgeBase
{
  public:
    /** Add an observed message (e.g. one wiretapped datagram). */
    void observe(const TermPtr &term);

    /** Mark a name as public (identities, public constants). */
    void makePublic(const TermPtr &nameTerm);

    /** Saturate the analysis rules. Call after the last observe(). */
    void saturate();

    /**
     * Can the attacker derive `goal` (analysis + synthesis)?
     * Requires a prior saturate().
     */
    bool canDerive(const TermPtr &goal) const;

    /** Number of distinct analyzed terms (diagnostics). */
    std::size_t knownTerms() const { return known.size(); }

  private:
    bool inKnown(const TermPtr &t) const;
    bool deriveRec(const TermPtr &goal,
                   std::set<std::string> &inProgress) const;

    std::set<TermPtr, TermLess> known;
};

} // namespace monatt::verif

#endif // MONATT_VERIF_DEDUCTION_H
