/**
 * @file
 * Symbolic model of the Figure-3 attestation protocol and the §7.2.2
 * security queries.
 *
 * The model mirrors the implementation: three SSL-like channels whose
 * session keys Kx/Ky/Kz derive from premasters transported under the
 * receivers' identity keys; the measurement response signed by the
 * per-session ASKs whose public half is pCA-certified; the report
 * signed hop by hop with SKa and SKc; nonces N1/N2/N3 inside the
 * encrypted payloads.
 *
 * Verified properties (numbering from the paper):
 *   1  secrecy of Kx, Ky, Kz and of SKcust, SKc, SKa, SKs, ASKs;
 *   2  secrecy of P, M, R;
 *   3  integrity of P, M, R (reduced to unforgeability of the MAC/
 *      signature keys protecting them, witnessed by forgery queries);
 *   4  customer <-> Cloud Controller authentication;
 *   5  Cloud Controller <-> Attestation Server authentication;
 *   6  Attestation Server <-> Cloud Server authentication.
 *
 * Each authentication property is checked as a correspondence (the
 * accepting side's acceptance pattern demands a signature or an
 * encryption the attacker cannot synthesize) plus an injection query
 * (the attacker cannot derive any acceptable forged message).
 *
 * The checker is validated against itself: verifyProtocol() with a
 * `leak` set deliberately hands secrets to the attacker and must
 * report the corresponding properties as broken — guarding against a
 * vacuously-passing model.
 */

#ifndef MONATT_VERIF_PROTOCOL_MODEL_H
#define MONATT_VERIF_PROTOCOL_MODEL_H

#include <set>
#include <string>
#include <vector>

#include "verif/deduction.h"
#include "verif/term.h"

namespace monatt::verif
{

/** One verified property. */
struct VerificationOutcome
{
    std::string property; //!< e.g. "secrecy: Kz".
    bool holds = false;
    std::string detail;
};

/** Secrets that can be deliberately leaked for checker validation. */
enum class LeakableSecret
{
    SessionKeyKx,
    SessionKeyKy,
    SessionKeyKz,
    ServerIdentityKey,   //!< SKs.
    AttestorIdentityKey, //!< SKa.
    ControllerIdentityKey, //!< SKc.
    SessionSigningKey,   //!< ASKs.
};

/** The symbolic protocol model. */
class ProtocolModel
{
  public:
    /** Build the honest protocol trace and attacker knowledge. */
    explicit ProtocolModel(std::set<LeakableSecret> leaks = {});

    /** Run all §7.2.2 queries. */
    std::vector<VerificationOutcome> verifyAll() const;

    /** Individual query groups. */
    std::vector<VerificationOutcome> secrecyOfKeys() const;
    std::vector<VerificationOutcome> secrecyOfPayloads() const;
    std::vector<VerificationOutcome> integrityOfPayloads() const;
    std::vector<VerificationOutcome> authentication() const;

    /** The attacker knowledge (for tests). */
    const KnowledgeBase &attacker() const { return kb; }

  private:
    VerificationOutcome secret(const std::string &label,
                               const TermPtr &term) const;
    VerificationOutcome unforgeable(const std::string &label,
                                    const TermPtr &witness) const;

    KnowledgeBase kb;

    // Long-term private names.
    TermPtr skCust, skC, skA, skS, askS, skPca;
    // Session keys and premasters.
    TermPtr kx, ky, kz;
    // Payload secrets.
    TermPtr propP, measM, reportR;
    // Nonces.
    TermPtr n1, n2, n3;
};

} // namespace monatt::verif

#endif // MONATT_VERIF_PROTOCOL_MODEL_H
