/**
 * @file
 * Byte-buffer primitives shared by every CloudMonatt module.
 *
 * All wire formats, hash inputs and key material in the library are
 * carried as `monatt::Bytes`. The helpers here are deliberately small:
 * hex round-tripping for debugging/fixtures, concatenation for building
 * hash preimages, and a constant-time comparison for authenticator
 * checks (MACs, quotes) where a short-circuiting memcmp would leak the
 * match length through timing.
 */

#ifndef MONATT_COMMON_BYTES_H
#define MONATT_COMMON_BYTES_H

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace monatt
{

/** Raw byte buffer used for all key material, messages and digests. */
using Bytes = std::vector<std::uint8_t>;

/** Encode a buffer as a lowercase hex string. */
std::string toHex(const Bytes &data);

/**
 * Decode a hex string (upper or lower case) into bytes.
 *
 * @param hex Hex string; must have even length and only hex digits.
 * @return Decoded bytes.
 * @throws std::invalid_argument on malformed input.
 */
Bytes fromHex(std::string_view hex);

/** Convert an ASCII string into a byte buffer (no terminator). */
Bytes toBytes(std::string_view text);

/** Convert a byte buffer holding ASCII text back into a string. */
std::string toString(const Bytes &data);

/** Concatenate any number of buffers into a fresh buffer. */
Bytes concat(std::initializer_list<const Bytes *> parts);

/** Append `src` to `dst` in place. */
void append(Bytes &dst, const Bytes &src);

/**
 * Constant-time equality check.
 *
 * Runs in time dependent only on the buffer lengths, never on the
 * position of the first mismatching byte.
 */
bool constantTimeEqual(const Bytes &a, const Bytes &b);

/** XOR `b` into `a` elementwise; buffers must have equal size. */
void xorInPlace(Bytes &a, const Bytes &b);

} // namespace monatt

#endif // MONATT_COMMON_BYTES_H
