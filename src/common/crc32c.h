/**
 * @file
 * CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) —
 * the checksum used by iSCSI, ext4 metadata, LevelDB/RocksDB log
 * frames and Btrfs. The simulated StableStore frames every journal
 * record and seals every checkpoint snapshot with it so replay can
 * tell a torn or bit-rotted frame from an intact one.
 *
 * Table-driven software implementation (no SSE4.2 dependency): one
 * 8-entry-of-256 slice-by-1 table, byte at a time. Journal payloads
 * are small control-plane records, so throughput is not a concern;
 * determinism and zero dependencies are.
 */

#ifndef MONATT_COMMON_CRC32C_H
#define MONATT_COMMON_CRC32C_H

#include <cstddef>
#include <cstdint>

namespace monatt
{

/** CRC32C of `data[0..n)` continuing from `seed` (a prior crc32c
 * return value). Pass 0 to start a fresh checksum. */
std::uint32_t crc32c(std::uint32_t seed, const std::uint8_t *data,
                     std::size_t n);

/** One-shot CRC32C of a byte range. */
inline std::uint32_t
crc32c(const std::uint8_t *data, std::size_t n)
{
    return crc32c(0, data, n);
}

/** Fold a little-endian u64 into a running CRC32C (for framing
 * fixed-width header fields without materializing a buffer). */
std::uint32_t crc32cU64(std::uint32_t seed, std::uint64_t v);

} // namespace monatt

#endif // MONATT_COMMON_CRC32C_H
