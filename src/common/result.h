/**
 * @file
 * Lightweight Result type for fallible operations.
 *
 * CloudMonatt distinguishes protocol-level failures (bad signature,
 * stale nonce, unknown VM) from programming errors. The former are
 * values — `Result<T>` — so callers must inspect them; the latter are
 * exceptions/assertions. This mirrors the paper's requirement that a
 * failed verification step produces an explicit negative attestation
 * outcome rather than an abort.
 */

#ifndef MONATT_COMMON_RESULT_H
#define MONATT_COMMON_RESULT_H

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace monatt
{

/**
 * Result of a fallible operation: either a value or an error string.
 */
template <typename T>
class Result
{
  public:
    /** Construct a success result. */
    static Result
    ok(T value)
    {
        Result r;
        r.val = std::move(value);
        return r;
    }

    /** Construct a failure result carrying a diagnostic message. */
    static Result
    error(std::string message)
    {
        Result r;
        r.err = std::move(message);
        return r;
    }

    /** True when the operation succeeded. */
    bool isOk() const { return val.has_value(); }

    /** Convenience operator mirroring isOk(). */
    explicit operator bool() const { return isOk(); }

    /** Access the value; throws std::logic_error on failure results. */
    const T &
    value() const
    {
        if (!val)
            throw std::logic_error("Result::value() on error: " + err);
        return *val;
    }

    /** Mutable access to the value. */
    T &
    value()
    {
        if (!val)
            throw std::logic_error("Result::value() on error: " + err);
        return *val;
    }

    /** Move the value out; throws std::logic_error on failure results. */
    T
    take()
    {
        if (!val)
            throw std::logic_error("Result::take() on error: " + err);
        T out = std::move(*val);
        val.reset();
        return out;
    }

    /** Diagnostic message; empty for success results. */
    const std::string &errorMessage() const { return err; }

  private:
    Result() = default;

    std::optional<T> val;
    std::string err;
};

/** Result specialization for operations with no payload. */
class Status
{
  public:
    /** Construct a success status. */
    static Status
    ok()
    {
        return Status(true, {});
    }

    /** Construct a failure status carrying a diagnostic message. */
    static Status
    error(std::string message)
    {
        return Status(false, std::move(message));
    }

    /** True when the operation succeeded. */
    bool isOk() const { return success; }

    /** Convenience operator mirroring isOk(). */
    explicit operator bool() const { return success; }

    /** Diagnostic message; empty for success. */
    const std::string &errorMessage() const { return err; }

  private:
    Status(bool s, std::string e) : success(s), err(std::move(e)) {}

    bool success;
    std::string err;
};

} // namespace monatt

#endif // MONATT_COMMON_RESULT_H
