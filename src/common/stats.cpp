#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace monatt
{

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(xs.size()));
}

double
median(std::vector<double> xs)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    const std::size_t n = xs.size();
    if (n % 2 == 1)
        return xs[n / 2];
    return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lowBound(lo), highBound(hi), bucket(bins, 0)
{
    if (bins == 0 || hi <= lo)
        throw std::invalid_argument("Histogram: bad bounds/bins");
}

void
Histogram::add(double x)
{
    const double width = (highBound - lowBound) /
                         static_cast<double>(bucket.size());
    std::int64_t idx = static_cast<std::int64_t>((x - lowBound) / width);
    if (idx < 0)
        idx = 0;
    if (idx >= static_cast<std::int64_t>(bucket.size()))
        idx = static_cast<std::int64_t>(bucket.size()) - 1;
    ++bucket[static_cast<std::size_t>(idx)];
    ++n;
}

void
Histogram::addCount(std::size_t bin, std::uint64_t count)
{
    if (bin >= bucket.size())
        throw std::out_of_range("Histogram::addCount: bad bin");
    bucket[bin] += count;
    n += count;
}

std::vector<double>
Histogram::distribution() const
{
    std::vector<double> out(bucket.size(), 0.0);
    if (n == 0)
        return out;
    for (std::size_t i = 0; i < bucket.size(); ++i)
        out[i] = static_cast<double>(bucket[i]) / static_cast<double>(n);
    return out;
}

double
Histogram::binCenter(std::size_t i) const
{
    const double width = (highBound - lowBound) /
                         static_cast<double>(bucket.size());
    return lowBound + width * (static_cast<double>(i) + 0.5);
}

void
Histogram::clear()
{
    std::fill(bucket.begin(), bucket.end(), 0);
    n = 0;
}

std::vector<Peak>
findPeaks(const std::vector<double> &dist, double minMass)
{
    std::vector<Peak> peaks;
    const std::size_t n = dist.size();
    for (std::size_t i = 0; i < n; ++i) {
        const double left = i > 0 ? dist[i - 1] : 0.0;
        const double right = i + 1 < n ? dist[i + 1] : 0.0;
        // Strict local maximum against the right neighbor breaks ties
        // between equal adjacent bins in favor of the leftmost.
        if (dist[i] >= left && dist[i] > right && dist[i] > 0.0) {
            const double neighborhood = left + dist[i] + right;
            if (neighborhood >= minMass)
                peaks.push_back(Peak{i, neighborhood});
        }
    }
    return peaks;
}

KMeans1DResult
kMeans2(const std::vector<double> &values,
        const std::vector<double> &weights, int iterations)
{
    if (values.size() != weights.size() || values.empty())
        throw std::invalid_argument("kMeans2: bad input sizes");

    double lo = values[0], hi = values[0];
    for (double v : values) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    double c0 = lo, c1 = hi;
    if (c0 == c1)
        c1 = c0 + 1.0;

    std::vector<int> assign(values.size(), 0);
    for (int it = 0; it < iterations; ++it) {
        double sum0 = 0, w0 = 0, sum1 = 0, w1 = 0;
        for (std::size_t i = 0; i < values.size(); ++i) {
            const double d0 = std::abs(values[i] - c0);
            const double d1 = std::abs(values[i] - c1);
            assign[i] = d1 < d0 ? 1 : 0;
            if (assign[i] == 0) {
                sum0 += values[i] * weights[i];
                w0 += weights[i];
            } else {
                sum1 += values[i] * weights[i];
                w1 += weights[i];
            }
        }
        if (w0 > 0)
            c0 = sum0 / w0;
        if (w1 > 0)
            c1 = sum1 / w1;
    }

    double wTotal = 0, w0 = 0, w1 = 0, var = 0;
    for (std::size_t i = 0; i < values.size(); ++i) {
        wTotal += weights[i];
        const double c = assign[i] == 0 ? c0 : c1;
        var += weights[i] * (values[i] - c) * (values[i] - c);
        (assign[i] == 0 ? w0 : w1) += weights[i];
    }

    KMeans1DResult res;
    res.centroid[0] = std::min(c0, c1);
    res.centroid[1] = std::max(c0, c1);
    // Keep masses aligned with the sorted centroids.
    if (c0 <= c1) {
        res.mass[0] = wTotal > 0 ? w0 / wTotal : 0;
        res.mass[1] = wTotal > 0 ? w1 / wTotal : 0;
    } else {
        res.mass[0] = wTotal > 0 ? w1 / wTotal : 0;
        res.mass[1] = wTotal > 0 ? w0 / wTotal : 0;
    }
    res.withinVariance = wTotal > 0 ? var / wTotal : 0;
    res.separation = res.centroid[1] - res.centroid[0];
    return res;
}

} // namespace monatt
