#include "common/crc32c.h"

#include <array>

namespace monatt
{

namespace
{

/** 256-entry table for the reflected Castagnoli polynomial, built at
 * static-init time (constexpr, so no thread-safety concerns). */
constexpr std::array<std::uint32_t, 256>
buildTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i)
    {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

constexpr std::array<std::uint32_t, 256> kTable = buildTable();

} // namespace

std::uint32_t
crc32c(std::uint32_t seed, const std::uint8_t *data, std::size_t n)
{
    std::uint32_t c = ~seed;
    for (std::size_t i = 0; i < n; ++i)
        c = kTable[(c ^ data[i]) & 0xff] ^ (c >> 8);
    return ~c;
}

std::uint32_t
crc32cU64(std::uint32_t seed, std::uint64_t v)
{
    std::uint8_t bytes[8];
    for (int i = 0; i < 8; ++i)
        bytes[i] = static_cast<std::uint8_t>(v >> (8 * i));
    return crc32c(seed, bytes, 8);
}

} // namespace monatt
