#include "common/wire.h"

#include <cstring>

namespace monatt::wire
{

void
appendVarint(Bytes &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

std::size_t
varintSize(std::uint64_t v)
{
    std::size_t n = 1;
    while (v >= 0x80) {
        ++n;
        v >>= 7;
    }
    return n;
}

void
WireWriter::tag(std::uint32_t field, WireType type)
{
    appendVarint(buf, (static_cast<std::uint64_t>(field) << 3) |
                          static_cast<std::uint64_t>(type));
}

void
WireWriter::putVarint(std::uint32_t field, std::uint64_t v)
{
    tag(field, WireType::Varint);
    appendVarint(buf, v);
}

void
WireWriter::putSigned(std::uint32_t field, std::int64_t v)
{
    putVarint(field, zigzagEncode(v));
}

void
WireWriter::putBool(std::uint32_t field, bool v)
{
    putVarint(field, v ? 1 : 0);
}

void
WireWriter::putFixed64(std::uint32_t field, std::uint64_t v)
{
    tag(field, WireType::I64);
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
WireWriter::putDouble(std::uint32_t field, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    putFixed64(field, bits);
}

void
WireWriter::putLen(std::uint32_t field, const Bytes &v)
{
    tag(field, WireType::Len);
    appendVarint(buf, v.size());
    buf.insert(buf.end(), v.begin(), v.end());
}

void
WireWriter::putString(std::uint32_t field, const std::string &v)
{
    tag(field, WireType::Len);
    appendVarint(buf, v.size());
    buf.insert(buf.end(), v.begin(), v.end());
}

double
WireField::asDouble() const
{
    double v;
    std::memcpy(&v, &varint, sizeof(v));
    return v;
}

Result<std::uint64_t>
WireReader::nextVarint()
{
    using R = Result<std::uint64_t>;
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < kMaxVarintBytes; ++i) {
        if (pos >= buf.size())
            return R::error("truncated varint");
        const std::uint8_t byte = buf[pos++];
        // Byte 10 may only contribute the final bit of a u64.
        if (i == kMaxVarintBytes - 1 && (byte & 0xFE) != 0)
            return R::error("varint overflows 64 bits");
        v |= static_cast<std::uint64_t>(byte & 0x7F) << (7 * i);
        if ((byte & 0x80) == 0)
            return R::ok(v);
    }
    return R::error("varint longer than 10 bytes");
}

Result<WireField>
WireReader::next()
{
    using R = Result<WireField>;
    auto tag = nextVarint();
    if (!tag)
        return R::error("bad tag: " + tag.errorMessage());
    const std::uint64_t raw = tag.value();
    const std::uint64_t number = raw >> 3;
    const std::uint64_t type = raw & 0x7;
    if (number == 0)
        return R::error("field number 0");
    if (number > 0xFFFFFFFFu)
        return R::error("field number overflows u32");

    WireField f;
    f.number = static_cast<std::uint32_t>(number);
    switch (type) {
      case 0: {
        auto v = nextVarint();
        if (!v)
            return R::error("field " + std::to_string(f.number) + ": " +
                            v.errorMessage());
        f.type = WireType::Varint;
        f.varint = v.value();
        return R::ok(std::move(f));
      }
      case 1: {
        if (remaining() < 8)
            return R::error("field " + std::to_string(f.number) +
                            ": truncated i64");
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(buf[pos + i]) << (8 * i);
        pos += 8;
        f.type = WireType::I64;
        f.varint = v;
        return R::ok(std::move(f));
      }
      case 2: {
        auto len = nextVarint();
        if (!len)
            return R::error("field " + std::to_string(f.number) + ": " +
                            len.errorMessage());
        // Check before allocating: an over-long length prefix must be
        // a clean error, never an attempted huge allocation.
        if (len.value() > remaining())
            return R::error("field " + std::to_string(f.number) +
                            ": length prefix past end of buffer");
        const std::size_t n = static_cast<std::size_t>(len.value());
        f.type = WireType::Len;
        f.bytes.assign(buf.begin() + pos, buf.begin() + pos + n);
        pos += n;
        return R::ok(std::move(f));
      }
      default:
        return R::error("field " + std::to_string(f.number) +
                        ": unsupported wire type " + std::to_string(type));
    }
}

} // namespace monatt::wire
