/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component in the simulator (scheduler jitter,
 * workload burst lengths, nonce generation in tests) draws from an
 * explicitly seeded Xoshiro256** generator so that simulations and
 * benchmarks are bit-for-bit reproducible. Security-grade randomness
 * (keys, nonces in the crypto layer) goes through crypto::HmacDrbg,
 * which is itself seeded deterministically in tests and from this
 * generator in simulations.
 */

#ifndef MONATT_COMMON_RNG_H
#define MONATT_COMMON_RNG_H

#include <cstdint>

#include "common/bytes.h"

namespace monatt
{

/**
 * Xoshiro256** deterministic PRNG.
 *
 * Small, fast, high-quality generator; state is seeded via SplitMix64
 * from a single 64-bit seed so distinct seeds give decorrelated
 * streams.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x1234abcd5678efULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound), bound > 0, without modulo bias. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Gaussian sample via Box-Muller, mean/stddev parameterized. */
    double nextGaussian(double mean, double stddev);

    /** Exponentially distributed sample with the given mean. */
    double nextExponential(double mean);

    /** Bernoulli trial with probability p of returning true. */
    bool nextBool(double p = 0.5);

    /** Fill and return a buffer of `n` pseudo-random bytes. */
    Bytes nextBytes(std::size_t n);

    /** Fork an independent child stream (for per-component RNGs). */
    Rng fork();

  private:
    std::uint64_t state[4];
    bool haveSpareGaussian = false;
    double spareGaussian = 0.0;
};

} // namespace monatt

#endif // MONATT_COMMON_RNG_H
