#include "common/rng.h"

#include <cmath>

namespace monatt
{

namespace
{

std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : state)
        word = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
    const std::uint64_t t = state[1] << 17;
    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);
    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBounded(span));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::nextGaussian(double mean, double stddev)
{
    if (haveSpareGaussian) {
        haveSpareGaussian = false;
        return mean + stddev * spareGaussian;
    }
    double u, v, s;
    do {
        u = 2.0 * nextDouble() - 1.0;
        v = 2.0 * nextDouble() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spareGaussian = v * mul;
    haveSpareGaussian = true;
    return mean + stddev * u * mul;
}

double
Rng::nextExponential(double mean)
{
    double u;
    do {
        u = nextDouble();
    } while (u == 0.0);
    return -mean * std::log(u);
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

Bytes
Rng::nextBytes(std::size_t n)
{
    Bytes out(n);
    std::size_t i = 0;
    while (i < n) {
        std::uint64_t word = next();
        for (int b = 0; b < 8 && i < n; ++b, ++i) {
            out[i] = static_cast<std::uint8_t>(word & 0xff);
            word >>= 8;
        }
    }
    return out;
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace monatt
