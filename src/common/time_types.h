/**
 * @file
 * Simulated-time types.
 *
 * All simulated time in CloudMonatt is carried as a 64-bit count of
 * microseconds (`SimTime`). Helper constructors keep call sites
 * readable (`msec(30)` instead of `30'000`). Wall-clock time never
 * appears inside the simulator; benchmarks convert SimTime to seconds
 * only when printing.
 */

#ifndef MONATT_COMMON_TIME_TYPES_H
#define MONATT_COMMON_TIME_TYPES_H

#include <cstdint>

namespace monatt
{

/** Simulated time / duration, in microseconds. */
using SimTime = std::int64_t;

/** Sentinel for "no deadline / never". */
constexpr SimTime kTimeNever = INT64_MAX;

/** Microseconds. */
constexpr SimTime
usec(std::int64_t n)
{
    return n;
}

/** Milliseconds. */
constexpr SimTime
msec(std::int64_t n)
{
    return n * 1000;
}

/** Seconds. */
constexpr SimTime
seconds(std::int64_t n)
{
    return n * 1000 * 1000;
}

/** Minutes. */
constexpr SimTime
minutes(std::int64_t n)
{
    return n * 60 * 1000 * 1000;
}

/** Convert a SimTime duration to floating-point seconds (for output). */
constexpr double
toSeconds(SimTime t)
{
    return static_cast<double>(t) / 1e6;
}

/** Convert a SimTime duration to floating-point milliseconds. */
constexpr double
toMillis(SimTime t)
{
    return static_cast<double>(t) / 1e3;
}

/** Convert floating-point seconds into SimTime (rounding to usec). */
constexpr SimTime
fromSeconds(double s)
{
    return static_cast<SimTime>(s * 1e6);
}

} // namespace monatt

#endif // MONATT_COMMON_TIME_TYPES_H
