#include "common/codec.h"

#include <cstring>

namespace monatt
{

void
ByteWriter::putU8(std::uint8_t v)
{
    buf.push_back(v);
}

void
ByteWriter::putU16(std::uint16_t v)
{
    buf.push_back(static_cast<std::uint8_t>(v));
    buf.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
ByteWriter::putU32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
ByteWriter::putU64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
ByteWriter::putI64(std::int64_t v)
{
    putU64(static_cast<std::uint64_t>(v));
}

void
ByteWriter::putDouble(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(bits);
}

void
ByteWriter::putBytes(const Bytes &v)
{
    putU32(static_cast<std::uint32_t>(v.size()));
    buf.insert(buf.end(), v.begin(), v.end());
}

void
ByteWriter::putString(const std::string &v)
{
    putU32(static_cast<std::uint32_t>(v.size()));
    buf.insert(buf.end(), v.begin(), v.end());
}

void
ByteWriter::putRaw(const Bytes &v)
{
    buf.insert(buf.end(), v.begin(), v.end());
}

Result<std::uint8_t>
ByteReader::getU8()
{
    if (remaining() < 1)
        return Result<std::uint8_t>::error("truncated u8");
    return Result<std::uint8_t>::ok(buf[pos++]);
}

Result<std::uint16_t>
ByteReader::getU16()
{
    if (remaining() < 2)
        return Result<std::uint16_t>::error("truncated u16");
    std::uint16_t v = static_cast<std::uint16_t>(buf[pos]) |
                      static_cast<std::uint16_t>(buf[pos + 1]) << 8;
    pos += 2;
    return Result<std::uint16_t>::ok(v);
}

Result<std::uint32_t>
ByteReader::getU32()
{
    if (remaining() < 4)
        return Result<std::uint32_t>::error("truncated u32");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(buf[pos + i]) << (8 * i);
    pos += 4;
    return Result<std::uint32_t>::ok(v);
}

Result<std::uint64_t>
ByteReader::getU64()
{
    if (remaining() < 8)
        return Result<std::uint64_t>::error("truncated u64");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(buf[pos + i]) << (8 * i);
    pos += 8;
    return Result<std::uint64_t>::ok(v);
}

Result<std::int64_t>
ByteReader::getI64()
{
    auto r = getU64();
    if (!r)
        return Result<std::int64_t>::error(r.errorMessage());
    return Result<std::int64_t>::ok(static_cast<std::int64_t>(r.value()));
}

Result<double>
ByteReader::getDouble()
{
    auto r = getU64();
    if (!r)
        return Result<double>::error(r.errorMessage());
    double v;
    std::uint64_t bits = r.value();
    std::memcpy(&v, &bits, sizeof(v));
    return Result<double>::ok(v);
}

Result<Bytes>
ByteReader::getBytes()
{
    auto len = getU32();
    if (!len)
        return Result<Bytes>::error("truncated length prefix");
    if (remaining() < len.value())
        return Result<Bytes>::error("truncated byte field");
    Bytes out(buf.begin() + pos, buf.begin() + pos + len.value());
    pos += len.value();
    return Result<Bytes>::ok(std::move(out));
}

Result<std::string>
ByteReader::getString()
{
    auto r = getBytes();
    if (!r)
        return Result<std::string>::error(r.errorMessage());
    const Bytes &b = r.value();
    return Result<std::string>::ok(std::string(b.begin(), b.end()));
}

Result<Bytes>
ByteReader::getRaw(std::size_t n)
{
    if (remaining() < n)
        return Result<Bytes>::error("truncated raw field");
    Bytes out(buf.begin() + pos, buf.begin() + pos + n);
    pos += n;
    return Result<Bytes>::ok(std::move(out));
}

} // namespace monatt
