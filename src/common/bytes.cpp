#include "common/bytes.h"

#include <stdexcept>

namespace monatt
{

namespace
{

const char *kHexDigits = "0123456789abcdef";

int
hexNibble(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    throw std::invalid_argument("fromHex: non-hex character");
}

} // namespace

std::string
toHex(const Bytes &data)
{
    std::string out;
    out.reserve(data.size() * 2);
    for (std::uint8_t byte : data) {
        out.push_back(kHexDigits[byte >> 4]);
        out.push_back(kHexDigits[byte & 0x0f]);
    }
    return out;
}

Bytes
fromHex(std::string_view hex)
{
    if (hex.size() % 2 != 0)
        throw std::invalid_argument("fromHex: odd-length input");
    Bytes out;
    out.reserve(hex.size() / 2);
    for (std::size_t i = 0; i < hex.size(); i += 2) {
        int hi = hexNibble(hex[i]);
        int lo = hexNibble(hex[i + 1]);
        out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
    }
    return out;
}

Bytes
toBytes(std::string_view text)
{
    return Bytes(text.begin(), text.end());
}

std::string
toString(const Bytes &data)
{
    return std::string(data.begin(), data.end());
}

Bytes
concat(std::initializer_list<const Bytes *> parts)
{
    std::size_t total = 0;
    for (const Bytes *part : parts)
        total += part->size();
    Bytes out;
    out.reserve(total);
    for (const Bytes *part : parts)
        out.insert(out.end(), part->begin(), part->end());
    return out;
}

void
append(Bytes &dst, const Bytes &src)
{
    dst.insert(dst.end(), src.begin(), src.end());
}

bool
constantTimeEqual(const Bytes &a, const Bytes &b)
{
    if (a.size() != b.size())
        return false;
    std::uint8_t acc = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc |= static_cast<std::uint8_t>(a[i] ^ b[i]);
    return acc == 0;
}

void
xorInPlace(Bytes &a, const Bytes &b)
{
    if (a.size() != b.size())
        throw std::invalid_argument("xorInPlace: size mismatch");
    for (std::size_t i = 0; i < a.size(); ++i)
        a[i] ^= b[i];
}

} // namespace monatt
