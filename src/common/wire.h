/**
 * @file
 * Tag/wire-type primitive codec (the protobuf wire discipline).
 *
 * One level below the schema layer in proto/wire_schema.h: this file
 * knows nothing about CloudMonatt messages, only about the three wire
 * types and how tagged fields are framed:
 *
 *   tag   = varint((field_number << 3) | wire_type)
 *   VARINT: base-128 little-endian varint payload (zigzag for signed)
 *   I64:    8 fixed bytes, little-endian (doubles, fixed64)
 *   LEN:    varint length prefix + that many raw bytes (strings,
 *           byte buffers, nested messages, packed lists)
 *
 * The reader is built for schema evolution: WireReader::next() yields
 * every field in order, fully decoded or skipped, so a decoder that
 * does not recognize a field number simply ignores it (unknown-field
 * skip) and a decoder that never sees a field keeps its default
 * (missing-field default). Skipping is iterative — a LEN field is
 * skipped by advancing past its payload without recursing — so deeply
 * nested hostile input cannot exhaust the stack. All failures are
 * clean decode errors (attack indicators), never UB: varints are
 * capped at 10 bytes, LEN prefixes are checked against the remaining
 * buffer before any allocation, and field number 0 is rejected.
 */

#ifndef MONATT_COMMON_WIRE_H
#define MONATT_COMMON_WIRE_H

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/result.h"

namespace monatt::wire
{

/** The three wire types (tag low 3 bits). */
enum class WireType : std::uint8_t
{
    Varint = 0, //!< Base-128 varint (bools, enums, zigzag signed).
    I64 = 1,    //!< 8 bytes little-endian (doubles, fixed64).
    Len = 2,    //!< Length-prefixed bytes (strings, nested messages).
};

/** Largest encoded varint (10 bytes covers any u64). */
inline constexpr std::size_t kMaxVarintBytes = 10;

/** Zigzag-map a signed value so small magnitudes encode small. */
constexpr std::uint64_t
zigzagEncode(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

/** Inverse of zigzagEncode. */
constexpr std::int64_t
zigzagDecode(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

/** Append a bare varint (no tag) to a buffer. */
void appendVarint(Bytes &out, std::uint64_t v);

/** Encoded size of a bare varint. */
std::size_t varintSize(std::uint64_t v);

/** Append-only tagged-field encoder. */
class WireWriter
{
  public:
    /** Pre-size the output buffer (optimization only; never shrinks). */
    void reserve(std::size_t bytes) { buf.reserve(bytes); }

    /** Append tag (field, type); payload follows via the put* calls. */
    void tag(std::uint32_t field, WireType type);

    /** field:VARINT = v. */
    void putVarint(std::uint32_t field, std::uint64_t v);

    /** field:VARINT = zigzag(v) — signed values stay short. */
    void putSigned(std::uint32_t field, std::int64_t v);

    /** field:VARINT = 0/1. */
    void putBool(std::uint32_t field, bool v);

    /** field:I64 = 8 fixed little-endian bytes. */
    void putFixed64(std::uint32_t field, std::uint64_t v);

    /** field:I64 = IEEE-754 bit pattern. */
    void putDouble(std::uint32_t field, double v);

    /** field:LEN = length-prefixed bytes (also nested messages). */
    void putLen(std::uint32_t field, const Bytes &v);

    /** field:LEN = length-prefixed UTF-8/ASCII string. */
    void putString(std::uint32_t field, const std::string &v);

    /** Finished buffer (borrowed; valid until the next mutation). */
    const Bytes &data() const { return buf; }

    /** Move the finished buffer out. */
    Bytes take() { return std::move(buf); }

  private:
    Bytes buf;
};

/** One decoded field as surfaced by WireReader::next(). */
struct WireField
{
    std::uint32_t number = 0; //!< Field number (never 0).
    WireType type = WireType::Varint;
    std::uint64_t varint = 0; //!< VARINT payload or I64 bits.
    Bytes bytes;              //!< LEN payload (copied out).

    /** Signed view of a VARINT payload (zigzag). */
    std::int64_t asSigned() const { return zigzagDecode(varint); }

    /** Bool view of a VARINT payload. */
    bool asBool() const { return varint != 0; }

    /** Double view of an I64 payload. */
    double asDouble() const;

    /** String view of a LEN payload. */
    std::string asString() const
    {
        return std::string(bytes.begin(), bytes.end());
    }
};

/**
 * Sequential tagged-field decoder. Iterate with next() until atEnd();
 * any error is terminal for the buffer. The reader decodes every
 * field it encounters regardless of whether the caller recognizes the
 * number — unknown-field skip is the caller ignoring the WireField.
 */
class WireReader
{
  public:
    /** Wrap a buffer; the reader does not own the memory. */
    explicit WireReader(const Bytes &data) : buf(data) {}

    /** Decode the next field; error on any malformed byte. */
    Result<WireField> next();

    /** Bare varint at the cursor (for packed list payloads). */
    Result<std::uint64_t> nextVarint();

    /** Bytes not yet consumed. */
    std::size_t remaining() const { return buf.size() - pos; }

    /** True when the whole buffer has been consumed. */
    bool atEnd() const { return pos == buf.size(); }

  private:
    const Bytes &buf;
    std::size_t pos = 0;
};

} // namespace monatt::wire

#endif // MONATT_COMMON_WIRE_H
