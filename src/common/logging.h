/**
 * @file
 * Minimal leveled logging for library diagnostics.
 *
 * The library never prints by default (level Off in tests/benches);
 * examples turn on Info to narrate protocol flow. fatal() mirrors
 * gem5's convention: unrecoverable user-facing configuration errors
 * throw; internal invariant violations use assert/panic().
 */

#ifndef MONATT_COMMON_LOGGING_H
#define MONATT_COMMON_LOGGING_H

#include <sstream>
#include <string>

namespace monatt
{

/** Log severity levels, increasing in importance. */
enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/** Global log configuration (process wide; not thread safe by design —
 * the simulator is single threaded). */
class Logger
{
  public:
    /** Set the minimum level that is emitted. */
    static void setLevel(LogLevel level) { minLevel() = level; }

    /** Current minimum level. */
    static LogLevel level() { return minLevel(); }

    /** Emit one log line if `level` is enabled. */
    static void log(LogLevel level, const std::string &component,
                    const std::string &message);

  private:
    static LogLevel &minLevel();
};

/** Stream-style log statement builder used by the MONATT_LOG macro. */
class LogStatement
{
  public:
    LogStatement(LogLevel level, std::string component)
        : lvl(level), comp(std::move(component))
    {}

    ~LogStatement() { Logger::log(lvl, comp, buffer.str()); }

    template <typename T>
    LogStatement &
    operator<<(const T &value)
    {
        buffer << value;
        return *this;
    }

  private:
    LogLevel lvl;
    std::string comp;
    std::ostringstream buffer;
};

} // namespace monatt

/** Emit a log line: MONATT_LOG(Info, "controller") << "launched " << id; */
#define MONATT_LOG(lvl_, component_) \
    if (::monatt::Logger::level() > ::monatt::LogLevel::lvl_) {} \
    else ::monatt::LogStatement(::monatt::LogLevel::lvl_, component_)

#endif // MONATT_COMMON_LOGGING_H
