/**
 * @file
 * Canonical fixed-width binary codec (the frozen byte layouts).
 *
 * Every byte layout the paper's security argument pins — quote hash
 * preimages (Q1/Q2/Q3), signed portions, certificates, StableStore
 * snapshot containers — is serialized through ByteWriter/ByteReader
 * so the exact bytes that get hashed, signed and MAC'd are well
 * defined and never drift. Integers are little-endian fixed width;
 * variable-length fields carry a u32 length prefix. ByteReader is
 * strict: any truncated or over-long message is a decode error, which
 * the protocol layer treats as an attack indicator.
 *
 * These layouts are deliberately *not* evolvable: there is no field
 * tagging, so adding or removing a field is a flag-day change. The
 * transport encoding that tolerates schema drift (rolling upgrades,
 * mixed-version fleets) is the tagged codec in common/wire.h +
 * proto/wire_schema.h; it reuses these canonical layouts wherever a
 * signature or golden digest depends on them. See DESIGN.md §17 for
 * the split.
 */

#ifndef MONATT_COMMON_CODEC_H
#define MONATT_COMMON_CODEC_H

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/result.h"

namespace monatt
{

/** Append-only binary encoder. */
class ByteWriter
{
  public:
    /**
     * Pre-size the output buffer when the encoded size is known (or
     * cheaply bounded) up front, avoiding growth reallocations on the
     * hot send path. Purely an optimization; never shrinks.
     */
    void reserve(std::size_t bytes) { buf.reserve(bytes); }

    /** Append a single byte. */
    void putU8(std::uint8_t v);

    /** Append a 16-bit little-endian integer. */
    void putU16(std::uint16_t v);

    /** Append a 32-bit little-endian integer. */
    void putU32(std::uint32_t v);

    /** Append a 64-bit little-endian integer. */
    void putU64(std::uint64_t v);

    /** Append a 64-bit signed integer (two's complement). */
    void putI64(std::int64_t v);

    /** Append an IEEE-754 double (bit pattern, little-endian). */
    void putDouble(double v);

    /** Append a length-prefixed byte buffer. */
    void putBytes(const Bytes &v);

    /** Append a length-prefixed UTF-8/ASCII string. */
    void putString(const std::string &v);

    /** Append raw bytes with no length prefix (for fixed-size fields). */
    void putRaw(const Bytes &v);

    /**
     * Finished buffer, borrowed: a reference into the writer, valid
     * until the next append or take(). Callers needing an owned copy
     * must copy explicitly (or use take() to move the buffer out).
     */
    const Bytes &data() const { return buf; }

    /** Move the finished buffer out. */
    Bytes take() { return std::move(buf); }

  private:
    Bytes buf;
};

/** Strict sequential binary decoder. */
class ByteReader
{
  public:
    /** Wrap a buffer; the reader does not own the memory. */
    explicit ByteReader(const Bytes &data) : buf(data) {}

    Result<std::uint8_t> getU8();
    Result<std::uint16_t> getU16();
    Result<std::uint32_t> getU32();
    Result<std::uint64_t> getU64();
    Result<std::int64_t> getI64();
    Result<double> getDouble();

    /** Read a length-prefixed byte buffer. */
    Result<Bytes> getBytes();

    /** Read a length-prefixed string. */
    Result<std::string> getString();

    /** Read exactly n raw bytes (no prefix). */
    Result<Bytes> getRaw(std::size_t n);

    /** Bytes not yet consumed. */
    std::size_t remaining() const { return buf.size() - pos; }

    /** True when the whole buffer has been consumed. */
    bool atEnd() const { return pos == buf.size(); }

  private:
    const Bytes &buf;
    std::size_t pos = 0;
};

} // namespace monatt

#endif // MONATT_COMMON_CODEC_H
