#include "common/logging.h"

#include <cstdio>

namespace monatt
{

LogLevel &
Logger::minLevel()
{
    static LogLevel level = LogLevel::Off;
    return level;
}

void
Logger::log(LogLevel level, const std::string &component,
            const std::string &message)
{
    if (level < minLevel())
        return;
    static const char *names[] = {"DEBUG", "INFO", "WARN", "ERROR"};
    const int idx = static_cast<int>(level);
    if (idx < 0 || idx > 3)
        return;
    std::fprintf(stderr, "[%s] %s: %s\n", names[idx], component.c_str(),
                 message.c_str());
}

} // namespace monatt
