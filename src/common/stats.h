/**
 * @file
 * Statistics utilities used by the Property Interpretation Module.
 *
 * The covert-channel interpreter of §4.4.3 works on a 30-bin histogram
 * of CPU-usage intervals and clusters it ("The Attestation Server can
 * use machine learning techniques to cluster the covert-channel
 * results and benign results"). This file provides the histogram,
 * summary statistics, peak detection and a 1-D k-means used for that
 * clustering, plus small helpers shared by benches.
 */

#ifndef MONATT_COMMON_STATS_H
#define MONATT_COMMON_STATS_H

#include <cstdint>
#include <vector>

namespace monatt
{

/** Arithmetic mean of a sample; 0 for empty input. */
double mean(const std::vector<double> &xs);

/** Population standard deviation; 0 for fewer than two samples. */
double stddev(const std::vector<double> &xs);

/** Median (by copy-and-sort); 0 for empty input. */
double median(std::vector<double> xs);

/**
 * Fixed-width histogram over [lo, hi) with `bins` buckets.
 *
 * Samples below lo clamp into the first bucket, samples at or above hi
 * clamp into the last — matching the paper's Trust Evidence Register
 * semantics where interval (29,30] also absorbs full-slice runs.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    /** Record one sample. */
    void add(double x);

    /** Record a pre-binned count (used when loading TER values). */
    void addCount(std::size_t bin, std::uint64_t count);

    /** Raw per-bin counts. */
    const std::vector<std::uint64_t> &counts() const { return bucket; }

    /** Total number of samples. */
    std::uint64_t total() const { return n; }

    /** Per-bin probability masses (empty-safe: all zeros). */
    std::vector<double> distribution() const;

    /** Center value of bin i. */
    double binCenter(std::size_t i) const;

    /** Number of bins. */
    std::size_t size() const { return bucket.size(); }

    /** Reset all counts to zero. */
    void clear();

  private:
    double lowBound;
    double highBound;
    std::vector<std::uint64_t> bucket;
    std::uint64_t n = 0;
};

/** A detected peak in a distribution. */
struct Peak
{
    std::size_t bin;   //!< Bin index of the local maximum.
    double mass;       //!< Probability mass of the peak's neighborhood.
};

/**
 * Find local maxima in a probability distribution.
 *
 * A bin is a peak when it is a local maximum and its 1-neighborhood
 * mass is at least `minMass`. Adjacent qualifying bins merge into one
 * peak.
 */
std::vector<Peak> findPeaks(const std::vector<double> &dist,
                            double minMass);

/** Result of a 1-D 2-means clustering. */
struct KMeans1DResult
{
    double centroid[2];       //!< Sorted ascending.
    double mass[2];           //!< Fraction of samples per cluster.
    double withinVariance;    //!< Mean within-cluster squared deviation.
    double separation;        //!< |c1 - c0|.
};

/**
 * Weighted 1-D k-means with k=2.
 *
 * @param values Sample positions (e.g. histogram bin centers).
 * @param weights Sample weights (e.g. bin masses); same length.
 * @param iterations Lloyd iterations (small k, converges fast).
 */
KMeans1DResult kMeans2(const std::vector<double> &values,
                       const std::vector<double> &weights,
                       int iterations = 32);

} // namespace monatt

#endif // MONATT_COMMON_STATS_H
