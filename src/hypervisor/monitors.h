/**
 * @file
 * The monitors of the server's Monitor Module (Figure 2).
 *
 * "The Monitor Module contains different types of monitors to provide
 * comprehensive and rich security measurements": here the VMM Profile
 * Tool (per-VM CPU accounting and usage-interval histograms — the
 * measurement source for §4.4's covert-channel detection and §4.5's
 * availability monitoring), the VM Introspection Tool (task lists read
 * from guest memory, §4.3), the hardware Performance Monitor Unit
 * (synthetic event counters), and the Integrity Measurement Unit
 * (accumulated boot-time hashes in TPM PCRs, §4.2).
 */

#ifndef MONATT_HYPERVISOR_MONITORS_H
#define MONATT_HYPERVISOR_MONITORS_H

#include <cstdint>
#include <map>
#include <vector>

#include "common/stats.h"
#include "common/time_types.h"
#include "hypervisor/domain.h"
#include "hypervisor/scheduler.h"
#include "tpm/tpm_emulator.h"

namespace monatt::hypervisor
{

/**
 * VMM Profile Tool.
 *
 * §4.5.2: "it observes the transitions of each virtual CPU on each
 * physical core, and keeps record of the virtual running time for the
 * attested VM". Fed by the scheduler's run hook; supports measurement
 * windows per domain and produces both the CPU_measure total and the
 * per-interval histogram samples the covert-channel detector needs.
 */
class VmmProfileTool
{
  public:
    /** Scheduler hook entry point: one completed run interval. */
    void recordRun(VCpuId vcpu, DomainId domain, SimTime start,
                   SimTime end);

    /** Open a measurement window for a domain. */
    void startWindow(DomainId domain, SimTime now);

    /** Close the window; samples stay readable until the next start. */
    void stopWindow(DomainId domain, SimTime now);

    /** Total virtual running time within the window (CPU_measure). */
    SimTime windowRuntime(DomainId domain) const;

    /** Wall-clock length of the (closed or still open) window. */
    SimTime windowLength(DomainId domain, SimTime now) const;

    /**
     * Usage-interval samples (milliseconds) within the window.
     * Contiguous run intervals of the same domain are merged, so a
     * burst split by an instantaneous preempt-resume counts once.
     */
    const std::vector<double> &windowIntervals(DomainId domain) const;

    /**
     * Bin the window's usage intervals into a histogram, the form the
     * Trust Evidence Registers hold: `bins` buckets over (0, spanMs].
     */
    Histogram intervalHistogram(DomainId domain, std::size_t bins = 30,
                                double spanMs = 30.0) const;

    /** Lifetime (not window) runtime of a domain. */
    SimTime totalRuntime(DomainId domain) const;

  private:
    struct DomainWindow
    {
        bool open = false;
        SimTime windowStart = 0;
        SimTime windowEnd = 0;
        SimTime runtime = 0;
        SimTime lifetimeRuntime = 0;
        std::vector<double> intervals; // ms
        SimTime openIntervalStart = 0;
        SimTime lastEnd = -1;
        bool intervalOpen = false;
    };

    void closeOpenInterval(DomainWindow &w);

    std::map<DomainId, DomainWindow> windows;
    static const std::vector<double> kNoIntervals;
};

/**
 * VM Introspection Tool.
 *
 * §4.3.2: "The VM Introspection Tool located in the hypervisor's
 * Monitor Module can probe into the target VM's memory region to
 * obtain the running tasks list". Operates on the hypervisor's
 * Domain records, i.e. outside and isolated from the guest.
 */
class VmIntrospectionTool
{
  public:
    /** True task list, reconstructed from guest memory. */
    static std::vector<std::string> probeTaskList(const Domain &domain);

    /** What the guest itself would report (for comparison). */
    static std::vector<std::string> queryGuest(const Domain &domain);
};

/**
 * Hardware Performance Monitor Unit (synthetic).
 *
 * Derives per-domain event counts from scheduler accounting: cycles at
 * the testbed's 3.3 GHz, instructions at a nominal IPC. Present to
 * model the paper's point that existing hardware counters feed the
 * Monitor Module.
 */
class PerformanceMonitorUnit
{
  public:
    struct Counters
    {
        std::uint64_t cycles = 0;
        std::uint64_t instructions = 0;
    };

    /** Convert a domain's runtime into event counts. */
    static Counters fromRuntime(SimTime runtime, double ghz = 3.3,
                                double ipc = 1.2);
};

/**
 * Integrity Measurement Unit.
 *
 * §4.2.2: "accumulated cryptographic hashes of the software that is
 * loaded onto the system, in the order that they are loaded",
 * extended into TPM PCRs — hypervisor into PCR 0, host OS into PCR 1,
 * VM images into PCR 10.
 */
class IntegrityMeasurementUnit
{
  public:
    static constexpr std::uint32_t kPcrHypervisor = 0;
    static constexpr std::uint32_t kPcrHostOs = 1;
    static constexpr std::uint32_t kPcrVmImage = 10;

    explicit IntegrityMeasurementUnit(tpm::TpmEmulator &tpm) : dev(tpm) {}

    /** Measure platform software at boot (phase one of §4.2.2). */
    void measureBoot(const Bytes &hypervisorCode, const Bytes &hostOsCode);

    /** Measure a VM image before launch (phase two); returns digest. */
    Bytes measureVmImage(const Bytes &image);

    /** Current platform configuration digests (PCR values). */
    Bytes hypervisorPcr() const;
    Bytes hostOsPcr() const;
    Bytes vmImagePcr() const;

  private:
    tpm::TpmEmulator &dev;
};

} // namespace monatt::hypervisor

#endif // MONATT_HYPERVISOR_MONITORS_H
