/**
 * @file
 * Xen-like credit scheduler.
 *
 * Models the mechanism both attacks in §4 exploit:
 *
 *  - Credits: "each VM receives some credits periodically, and the
 *    running VM pays out credits" (§4.5.1). An accounting pass every
 *    30 ms distributes credits by weight; a sampling tick every 10 ms
 *    debits the vCPU that happens to be running at the tick instant —
 *    the *sampled* debiting is the real Xen flaw that lets an attacker
 *    who sleeps across tick boundaries keep its credits while the
 *    victim absorbs every debit.
 *
 *  - Priorities: BOOST > UNDER > OVER. "when a VM is woken up by
 *    certain interrupts, it always gets higher priority to take over
 *    the CPU" — a vCPU waking with positive credits enters BOOST and
 *    preempts lower-priority running vCPUs. Inter-processor
 *    interrupts (IPIs) between a domain's own vCPUs are the wakeup
 *    vehicle both the covert-channel sender (§4.4.1) and the
 *    availability attacker (§4.5.1) use.
 *
 * vCPU workloads are pluggable Behavior objects that produce
 * burst/block plans; the scheduler executes them on the shared
 * discrete-event queue, supports preemption mid-burst, and reports
 * every completed run interval through a hook (consumed by the VMM
 * Profile Tool in monitors.h).
 */

#ifndef MONATT_HYPERVISOR_SCHEDULER_H
#define MONATT_HYPERVISOR_SCHEDULER_H

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/time_types.h"
#include "sim/event_queue.h"

namespace monatt::hypervisor
{

/** vCPU identifier (index into the scheduler's vCPU table). */
using VCpuId = int;

/** Domain identifier (assigned by the Hypervisor facade). */
using DomainId = int;

/** Scheduling priority, best first. */
enum class Priority { Boost = 0, Under = 1, Over = 2 };

/** vCPU run state. */
enum class VCpuState { Runnable, Running, Blocked };

/** Information available to a Behavior when planning its next burst. */
struct BehaviorContext
{
    SimTime now;                //!< Current simulated time.
    SimTime nextTick;           //!< Time of the next sampling tick.
    SimTime tickPeriod;         //!< Sampling tick period.
    SimTime cumulativeRuntime;  //!< This vCPU's total CPU time so far.
    Rng *rng;                   //!< Per-scheduler deterministic RNG.
};

/** One planned burst of CPU work and what follows it. */
struct BurstPlan
{
    /** CPU time to consume (may be delivered across preemptions). */
    SimTime burst = 0;

    /**
     * After the burst: sleep this long. 0 = yield (stay runnable),
     * kTimeNever = block until an external wake (e.g. an IPI).
     */
    SimTime blockFor = 0;

    /** IPIs to send when the burst completes. */
    std::vector<VCpuId> ipiTargets;

    /** Whether a timer wake from blockFor counts as an interrupt wake
     * (eligible for BOOST). True for Xen timer/event-channel wakes. */
    bool wakeIsInterrupt = true;

    /** Optional notification fired when the burst completes. */
    std::function<void(SimTime)> onComplete;
};

/** Pluggable vCPU workload. */
class Behavior
{
  public:
    virtual ~Behavior() = default;

    /** Produce the next burst plan. Called when the vCPU has no
     * outstanding plan (after completing one, or on first dispatch). */
    virtual BurstPlan next(const BehaviorContext &ctx) = 0;
};

/** Per-vCPU statistics. */
struct VCpuStats
{
    SimTime runtime = 0;       //!< Total CPU time received.
    std::uint64_t wakes = 0;
    std::uint64_t boosts = 0;  //!< Wakes that earned BOOST priority.
    std::uint64_t preemptions = 0;
    std::uint64_t dispatches = 0;
    std::uint64_t ticksAbsorbed = 0; //!< Sampling ticks that hit it.
};

/** The credit scheduler. */
class CreditScheduler
{
  public:
    /** Tunables (defaults follow Xen's credit scheduler). */
    struct Params
    {
        SimTime tickPeriod = msec(10);     //!< Debit sampling period.
        SimTime accountPeriod = msec(30);  //!< Credit refill period.
        SimTime slice = msec(30);          //!< Max uninterrupted slice.
        int creditPool = 300;              //!< Credits per pCPU/period.
        int tickDebit = 100;               //!< Debit per sampled tick.
        int creditCap = 300;               //!< Per-vCPU credit ceiling.
        int creditFloor = -300;            //!< Per-vCPU credit floor.
        bool boostEnabled = true;          //!< BOOST on interrupt wake.

        /**
         * Defense knob: charge credits for the exact CPU time consumed
         * instead of sampling whoever runs at tick instants. Closes
         * the tick-dodging loophole the availability attack exploits
         * (the fix that eventually became Xen's precise accounting).
         */
        bool exactAccounting = false;
    };

    /** Hook reporting each completed run interval of a vCPU. */
    using RunHook =
        std::function<void(VCpuId, DomainId, SimTime start, SimTime end)>;

    CreditScheduler(sim::EventQueue &eq, Params params,
                    std::uint64_t rngSeed = 0xc10d);

    /** Add a physical CPU; returns its index. */
    int addPCpu();

    /**
     * Add a vCPU pinned to `pcpu` with scheduling `weight`.
     * The vCPU starts Blocked with no wake pending (idle) until
     * start() or wake().
     */
    VCpuId addVCpu(DomainId domain, int pcpu, int weight = 256);

    /** Install the workload for a vCPU. */
    void setBehavior(VCpuId vcpu, std::unique_ptr<Behavior> behavior);

    /**
     * Begin scheduling: arms tick/accounting timers and wakes every
     * vCPU that has a behavior installed.
     */
    void start();

    /** Wake a vCPU; `interrupt` wakes are BOOST-eligible. */
    void wake(VCpuId vcpu, bool interrupt);

    /** Send an IPI from one vCPU to another (interrupt wake). */
    void sendIpi(VCpuId from, VCpuId to);

    /** Block a vCPU permanently (e.g. domain shutdown). */
    void retire(VCpuId vcpu);

    /** Force-block a vCPU, keeping its workload (domain pause). */
    void suspend(VCpuId vcpu);

    /** Undo suspend(); the vCPU wakes immediately. */
    void resume(VCpuId vcpu);

    /** Per-vCPU statistics. */
    const VCpuStats &stats(VCpuId vcpu) const;

    /** Owning domain of a vCPU. */
    DomainId domainOf(VCpuId vcpu) const;

    /** Current credits (for tests/diagnostics). */
    int credits(VCpuId vcpu) const;

    /** Live effective priority (for tests/diagnostics). */
    Priority effectivePriority(VCpuId vcpu) const;

    /** Run state. */
    VCpuState state(VCpuId vcpu) const;

    /** Install the run-interval hook (VMM Profile Tool). */
    void setRunHook(RunHook hook) { runHook = std::move(hook); }

    /** Time of the next sampling tick. */
    SimTime nextTickTime() const { return nextTick; }

    /** Total busy time of a pCPU. */
    SimTime pcpuBusyTime(int pcpu) const;

    sim::EventQueue &eventQueue() { return events; }

    const Params &params() const { return cfg; }

  private:
    struct VCpu
    {
        DomainId domain = -1;
        int pcpu = 0;
        int weight = 256;
        VCpuState state = VCpuState::Blocked;
        int credits = 0;
        bool boosted = false;
        SimTime runStart = 0;
        SimTime remainingBurst = 0;
        bool havePlan = false;
        BurstPlan plan;
        bool wakePending = false;
        sim::EventId wakeEvent = 0;
        std::unique_ptr<Behavior> behavior;
        bool suspended = false;
        bool ranSinceAccounting = false;
        SimTime runtimeSinceAccounting = 0;
        VCpuStats counters;
    };

    struct PCpu
    {
        VCpuId current = -1;
        std::deque<VCpuId> runqueue;
        bool stopPending = false;
        sim::EventId stopEvent = 0;
        SimTime sliceEnd = 0;
        SimTime busyTime = 0;
    };

    void enqueue(VCpuId id);
    void dispatch(int pcpu);
    void armStop(int pcpu);
    void accountSegment(int pcpu);
    void executePlanEnd(VCpuId id);
    void onStopEvent(int pcpu);
    void preemptCurrent(int pcpu);
    void obtainPlan(VCpuId id);
    void tick();
    void accounting();
    Priority effPrio(const VCpu &v) const;
    VCpuId pickNext(PCpu &p);

    sim::EventQueue &events;
    Params cfg;
    Rng rng;
    std::vector<VCpu> vcpus;
    std::vector<PCpu> pcpus;
    RunHook runHook;
    SimTime nextTick = 0;
    bool started = false;
};

} // namespace monatt::hypervisor

#endif // MONATT_HYPERVISOR_SCHEDULER_H
