#include "hypervisor/monitors.h"

#include <algorithm>

#include "crypto/sha256.h"

namespace monatt::hypervisor
{

const std::vector<double> VmmProfileTool::kNoIntervals;

void
VmmProfileTool::closeOpenInterval(DomainWindow &w)
{
    if (!w.intervalOpen)
        return;
    const double ms = toMillis(w.lastEnd - w.openIntervalStart);
    if (ms > 0)
        w.intervals.push_back(ms);
    w.intervalOpen = false;
}

void
VmmProfileTool::recordRun(VCpuId vcpu, DomainId domain, SimTime start,
                          SimTime end)
{
    (void)vcpu;
    DomainWindow &w = windows[domain];
    w.lifetimeRuntime += end - start;
    if (!w.open)
        return;

    // Clip to the window.
    const SimTime s = std::max(start, w.windowStart);
    if (end <= s)
        return;
    w.runtime += end - s;

    if (w.intervalOpen && s == w.lastEnd) {
        // Contiguous with the previous run: extend it.
        w.lastEnd = end;
    } else {
        closeOpenInterval(w);
        w.openIntervalStart = s;
        w.lastEnd = end;
        w.intervalOpen = true;
    }
}

void
VmmProfileTool::startWindow(DomainId domain, SimTime now)
{
    DomainWindow &w = windows[domain];
    w.open = true;
    w.windowStart = now;
    w.windowEnd = now;
    w.runtime = 0;
    w.intervals.clear();
    w.intervalOpen = false;
    w.lastEnd = -1;
}

void
VmmProfileTool::stopWindow(DomainId domain, SimTime now)
{
    const auto it = windows.find(domain);
    if (it == windows.end())
        return;
    DomainWindow &w = it->second;
    closeOpenInterval(w);
    w.open = false;
    w.windowEnd = now;
}

SimTime
VmmProfileTool::windowRuntime(DomainId domain) const
{
    const auto it = windows.find(domain);
    return it == windows.end() ? 0 : it->second.runtime;
}

SimTime
VmmProfileTool::windowLength(DomainId domain, SimTime now) const
{
    const auto it = windows.find(domain);
    if (it == windows.end())
        return 0;
    const DomainWindow &w = it->second;
    return (w.open ? now : w.windowEnd) - w.windowStart;
}

const std::vector<double> &
VmmProfileTool::windowIntervals(DomainId domain) const
{
    const auto it = windows.find(domain);
    return it == windows.end() ? kNoIntervals : it->second.intervals;
}

Histogram
VmmProfileTool::intervalHistogram(DomainId domain, std::size_t bins,
                                  double spanMs) const
{
    Histogram h(0.0, spanMs, bins);
    for (double ms : windowIntervals(domain))
        h.add(ms);
    return h;
}

SimTime
VmmProfileTool::totalRuntime(DomainId domain) const
{
    const auto it = windows.find(domain);
    return it == windows.end() ? 0 : it->second.lifetimeRuntime;
}

std::vector<std::string>
VmIntrospectionTool::probeTaskList(const Domain &domain)
{
    return domain.guestOs.memoryTruthTasks();
}

std::vector<std::string>
VmIntrospectionTool::queryGuest(const Domain &domain)
{
    return domain.guestOs.guestReportedTasks();
}

PerformanceMonitorUnit::Counters
PerformanceMonitorUnit::fromRuntime(SimTime runtime, double ghz,
                                    double ipc)
{
    Counters c;
    const double usecs = static_cast<double>(runtime);
    c.cycles = static_cast<std::uint64_t>(usecs * ghz * 1000.0);
    c.instructions = static_cast<std::uint64_t>(
        static_cast<double>(c.cycles) * ipc);
    return c;
}

void
IntegrityMeasurementUnit::measureBoot(const Bytes &hypervisorCode,
                                      const Bytes &hostOsCode)
{
    dev.extend(kPcrHypervisor, hypervisorCode);
    dev.extend(kPcrHostOs, hostOsCode);
}

Bytes
IntegrityMeasurementUnit::measureVmImage(const Bytes &image)
{
    dev.extend(kPcrVmImage, image);
    return crypto::Sha256::hash(image);
}

Bytes
IntegrityMeasurementUnit::hypervisorPcr() const
{
    return dev.pcrRead(kPcrHypervisor);
}

Bytes
IntegrityMeasurementUnit::hostOsPcr() const
{
    return dev.pcrRead(kPcrHostOs);
}

Bytes
IntegrityMeasurementUnit::vmImagePcr() const
{
    return dev.pcrRead(kPcrVmImage);
}

} // namespace monatt::hypervisor
