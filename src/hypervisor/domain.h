/**
 * @file
 * Domains (VMs) and the guest OS model.
 *
 * A Domain is the hypervisor's view of one virtual machine: its vCPUs,
 * its image, and a GuestOs model carrying a process table. The process
 * table supports the rootkit semantics behind the runtime-integrity
 * case study (§4.3): malware injected with `hidden = true` is omitted
 * from the guest-reported task list (the compromised OS lies to its
 * user) but remains visible to the hypervisor-level VM Introspection
 * Tool, which reads the "memory truth" — exactly the discrepancy the
 * Attestation Server's interpreter flags.
 */

#ifndef MONATT_HYPERVISOR_DOMAIN_H
#define MONATT_HYPERVISOR_DOMAIN_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "hypervisor/scheduler.h"

namespace monatt::hypervisor
{

/** One process inside a guest OS. */
struct Process
{
    std::uint32_t pid = 0;
    std::string name;
    bool hidden = false; //!< Rootkit-style: hidden from guest queries.
};

/** Guest operating-system model. */
class GuestOs
{
  public:
    /** Start a (visible) process; returns its pid. */
    std::uint32_t startProcess(const std::string &name);

    /** Inject malware that hides itself from guest-level queries. */
    std::uint32_t injectHiddenMalware(const std::string &name);

    /** Kill a process by pid; true when it existed. */
    bool killProcess(std::uint32_t pid);

    /**
     * The task list as the (possibly compromised) guest OS reports it
     * to its own user: hidden processes are omitted.
     */
    std::vector<std::string> guestReportedTasks() const;

    /**
     * The true task list as reconstructed from guest memory by a
     * hypervisor-level introspection tool: nothing can hide.
     */
    std::vector<std::string> memoryTruthTasks() const;

    /** All process records (for tests). */
    const std::vector<Process> &processes() const { return table; }

    // --- Append-only audit log (hash chain) --------------------------

    /** Append an audit event; extends the hash chain head. */
    void appendAuditEvent(const std::string &event);

    /** Hash-chain head over all audit entries. */
    const Bytes &auditLogHead() const { return auditHead; }

    /** Raw audit entries (migration state transfer). */
    const std::vector<std::string> &auditLogEntries() const
    {
        return auditLog;
    }

    /** Number of audit entries. */
    std::uint64_t auditLogLength() const { return auditCount; }

    /**
     * Attack injection: truncate the log to `keep` entries and
     * recompute the chain — what malware does to hide its tracks.
     */
    void truncateAuditLog(std::uint64_t keep);

  private:
    void rebuildAuditChain();

    std::vector<Process> table;
    std::uint32_t nextPid = 100;
    std::vector<std::string> auditLog;
    Bytes auditHead = Bytes(32, 0x00);
    std::uint64_t auditCount = 0;
};

/** The hypervisor's record of one VM. */
struct Domain
{
    DomainId id = -1;
    std::string name;
    std::vector<VCpuId> vcpus;
    Bytes imageDigest;    //!< SHA-256 of the launched image.
    GuestOs guestOs;
    bool running = true;
};

} // namespace monatt::hypervisor

#endif // MONATT_HYPERVISOR_DOMAIN_H
