#include "hypervisor/hypervisor.h"

#include <stdexcept>

#include "crypto/sha256.h"
#include "hypervisor/monitors.h"

namespace monatt::hypervisor
{

Hypervisor::Hypervisor(sim::EventQueue &eq, HypervisorConfig cfg)
    : events(eq), config(std::move(cfg)), sched(eq, config.sched)
{
    for (int i = 0; i < config.numPCpus; ++i)
        sched.addPCpu();
    sched.setRunHook([this](VCpuId vcpu, DomainId domain, SimTime start,
                            SimTime end) {
        profileTool.recordRun(vcpu, domain, start, end);
    });
}

void
Hypervisor::boot(tpm::TpmEmulator &tpm)
{
    if (isBooted)
        return;
    IntegrityMeasurementUnit imu(tpm);
    imu.measureBoot(config.hypervisorCode, config.hostOsCode);
    sched.start();
    isBooted = true;
}

DomainId
Hypervisor::createDomain(const std::string &name, int numVcpus, int pcpu,
                         const Bytes &image, int weight)
{
    if (numVcpus <= 0)
        throw std::invalid_argument("createDomain: need >= 1 vCPU");

    Domain dom;
    dom.id = nextDomain++;
    dom.name = name;
    dom.imageDigest = crypto::Sha256::hash(image);
    for (int i = 0; i < numVcpus; ++i)
        dom.vcpus.push_back(sched.addVCpu(dom.id, pcpu, weight));
    const DomainId id = dom.id;
    domains.emplace(id, std::move(dom));
    return id;
}

void
Hypervisor::destroyDomain(DomainId id)
{
    Domain &dom = domain(id);
    for (VCpuId vcpu : dom.vcpus)
        sched.retire(vcpu);
    domains.erase(id);
}

void
Hypervisor::pauseDomain(DomainId id)
{
    Domain &dom = domain(id);
    for (VCpuId vcpu : dom.vcpus)
        sched.suspend(vcpu);
    dom.running = false;
}

void
Hypervisor::resumeDomain(DomainId id)
{
    Domain &dom = domain(id);
    for (VCpuId vcpu : dom.vcpus)
        sched.resume(vcpu);
    dom.running = true;
}

void
Hypervisor::setBehavior(DomainId id, int vcpuIndex,
                        std::unique_ptr<Behavior> behavior)
{
    Domain &dom = domain(id);
    if (vcpuIndex < 0 ||
        vcpuIndex >= static_cast<int>(dom.vcpus.size())) {
        throw std::out_of_range("setBehavior: bad vCPU index");
    }
    sched.setBehavior(dom.vcpus[vcpuIndex], std::move(behavior));
}

Domain &
Hypervisor::domain(DomainId id)
{
    const auto it = domains.find(id);
    if (it == domains.end())
        throw std::out_of_range("Hypervisor: unknown domain");
    return it->second;
}

const Domain &
Hypervisor::domain(DomainId id) const
{
    const auto it = domains.find(id);
    if (it == domains.end())
        throw std::out_of_range("Hypervisor: unknown domain");
    return it->second;
}

std::vector<DomainId>
Hypervisor::domainIds() const
{
    std::vector<DomainId> ids;
    ids.reserve(domains.size());
    for (const auto &[id, dom] : domains)
        ids.push_back(id);
    return ids;
}

void
Hypervisor::corruptHypervisorCode()
{
    if (config.hypervisorCode.empty())
        config.hypervisorCode.push_back(0xff);
    else
        config.hypervisorCode[0] ^= 0xff;
}

void
Hypervisor::corruptHostOsCode()
{
    if (config.hostOsCode.empty())
        config.hostOsCode.push_back(0xff);
    else
        config.hostOsCode[0] ^= 0xff;
}

} // namespace monatt::hypervisor
