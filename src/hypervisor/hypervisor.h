/**
 * @file
 * The Type-I hypervisor facade (Figure 2's Xen-like stack).
 *
 * Owns the credit scheduler, the domain table, the guest OS models and
 * the hypervisor-level monitors, and exposes the operations the host
 * VM's management/monitoring stack performs: domain lifecycle
 * (create / pause / resume / destroy), behavior installation on vCPUs,
 * introspection, and the platform software blobs whose hashes the
 * Integrity Measurement Unit extends into PCRs at boot. Attack
 * injection points (corrupting the platform software, injecting guest
 * malware) model the example attacks of §4.2.1 and §4.3.1.
 */

#ifndef MONATT_HYPERVISOR_HYPERVISOR_H
#define MONATT_HYPERVISOR_HYPERVISOR_H

#include <map>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "hypervisor/domain.h"
#include "hypervisor/monitors.h"
#include "hypervisor/scheduler.h"
#include "sim/event_queue.h"

namespace monatt::hypervisor
{

/** Hypervisor configuration. */
struct HypervisorConfig
{
    int numPCpus = 4;               //!< Quad-core, as in the testbed.
    CreditScheduler::Params sched;  //!< Scheduler tunables.
    Bytes hypervisorCode;           //!< Platform software blob.
    Bytes hostOsCode;               //!< Host VM (Dom0) software blob.
};

/** The hypervisor. */
class Hypervisor
{
  public:
    Hypervisor(sim::EventQueue &eq, HypervisorConfig config);

    /** Boot: measure platform software into the given TPM and start
     * the scheduler. Call once. */
    void boot(tpm::TpmEmulator &tpm);

    /** True after boot(). */
    bool booted() const { return isBooted; }

    /**
     * Create a domain with `numVcpus` vCPUs pinned to `pcpu`.
     *
     * @param image VM image contents (hashed into the domain record).
     * @return The new domain id.
     */
    DomainId createDomain(const std::string &name, int numVcpus,
                          int pcpu, const Bytes &image, int weight = 256);

    /** Destroy a domain: retire its vCPUs, drop its record. */
    void destroyDomain(DomainId id);

    /** Pause (block) all vCPUs of a domain. */
    void pauseDomain(DomainId id);

    /** Resume a paused domain. */
    void resumeDomain(DomainId id);

    /** Install a workload on one of a domain's vCPUs. */
    void setBehavior(DomainId id, int vcpuIndex,
                     std::unique_ptr<Behavior> behavior);

    /** Domain accessors. @throws std::out_of_range on unknown id. */
    Domain &domain(DomainId id);
    const Domain &domain(DomainId id) const;

    /** True when the domain exists. */
    bool hasDomain(DomainId id) const { return domains.count(id) != 0; }

    /** All live domain ids. */
    std::vector<DomainId> domainIds() const;

    /** The scheduler (for pinning decisions and diagnostics). */
    CreditScheduler &scheduler() { return sched; }
    const CreditScheduler &scheduler() const { return sched; }

    /** The VMM Profile Tool (wired to the scheduler's run hook). */
    VmmProfileTool &profiler() { return profileTool; }
    const VmmProfileTool &profiler() const { return profileTool; }

    /** Platform software blobs (measured at boot). */
    const Bytes &hypervisorCode() const { return config.hypervisorCode; }
    const Bytes &hostOsCode() const { return config.hostOsCode; }

    /**
     * Attack injection: corrupt the platform software in storage, as
     * in §4.2.1 ("software entities could have been corrupted during
     * storage or network transmission"). Only affects measurements
     * taken at subsequent boots.
     */
    void corruptHypervisorCode();
    void corruptHostOsCode();

    /** Number of physical CPUs. */
    int numPCpus() const { return config.numPCpus; }

    sim::EventQueue &eventQueue() { return events; }

  private:
    sim::EventQueue &events;
    HypervisorConfig config;
    CreditScheduler sched;
    VmmProfileTool profileTool;
    std::map<DomainId, Domain> domains;
    DomainId nextDomain = 1;
    bool isBooted = false;
};

} // namespace monatt::hypervisor

#endif // MONATT_HYPERVISOR_HYPERVISOR_H
