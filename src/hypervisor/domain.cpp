#include "hypervisor/domain.h"

#include <algorithm>

#include "crypto/sha256.h"

namespace monatt::hypervisor
{

std::uint32_t
GuestOs::startProcess(const std::string &name)
{
    const std::uint32_t pid = nextPid++;
    table.push_back(Process{pid, name, /*hidden=*/false});
    return pid;
}

std::uint32_t
GuestOs::injectHiddenMalware(const std::string &name)
{
    const std::uint32_t pid = nextPid++;
    table.push_back(Process{pid, name, /*hidden=*/true});
    return pid;
}

bool
GuestOs::killProcess(std::uint32_t pid)
{
    const auto it = std::find_if(table.begin(), table.end(),
                                 [pid](const Process &p) {
                                     return p.pid == pid;
                                 });
    if (it == table.end())
        return false;
    table.erase(it);
    return true;
}

std::vector<std::string>
GuestOs::guestReportedTasks() const
{
    std::vector<std::string> out;
    for (const Process &p : table) {
        if (!p.hidden)
            out.push_back(p.name);
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<std::string>
GuestOs::memoryTruthTasks() const
{
    std::vector<std::string> out;
    for (const Process &p : table)
        out.push_back(p.name);
    std::sort(out.begin(), out.end());
    return out;
}

void
GuestOs::appendAuditEvent(const std::string &event)
{
    auditLog.push_back(event);
    const Bytes entry = toBytes(event);
    auditHead = crypto::Sha256::hashConcat({&auditHead, &entry});
    ++auditCount;
}

void
GuestOs::truncateAuditLog(std::uint64_t keep)
{
    if (keep >= auditLog.size())
        return;
    auditLog.resize(keep);
    rebuildAuditChain();
}

void
GuestOs::rebuildAuditChain()
{
    auditHead.assign(32, 0x00);
    auditCount = 0;
    for (const std::string &event : auditLog) {
        const Bytes entry = toBytes(event);
        auditHead = crypto::Sha256::hashConcat({&auditHead, &entry});
        ++auditCount;
    }
}

} // namespace monatt::hypervisor
