#include "hypervisor/scheduler.h"

#include <algorithm>
#include <stdexcept>

namespace monatt::hypervisor
{

CreditScheduler::CreditScheduler(sim::EventQueue &eq, Params params,
                                 std::uint64_t rngSeed)
    : events(eq), cfg(params), rng(rngSeed)
{
}

int
CreditScheduler::addPCpu()
{
    pcpus.emplace_back();
    return static_cast<int>(pcpus.size()) - 1;
}

VCpuId
CreditScheduler::addVCpu(DomainId domain, int pcpu, int weight)
{
    if (pcpu < 0 || pcpu >= static_cast<int>(pcpus.size()))
        throw std::out_of_range("addVCpu: bad pCPU index");
    VCpu v;
    v.domain = domain;
    v.pcpu = pcpu;
    v.weight = weight;
    v.credits = cfg.creditCap / 2;
    vcpus.push_back(std::move(v));
    return static_cast<VCpuId>(vcpus.size()) - 1;
}

void
CreditScheduler::setBehavior(VCpuId vcpu, std::unique_ptr<Behavior> b)
{
    vcpus.at(vcpu).behavior = std::move(b);
    if (started)
        wake(vcpu, /*interrupt=*/false);
}

void
CreditScheduler::start()
{
    if (started)
        return;
    started = true;

    nextTick = events.now() + cfg.tickPeriod;
    events.schedule(nextTick, [this] { tick(); }, "sched.tick");
    events.scheduleAfter(cfg.accountPeriod, [this] { accounting(); },
                         "sched.account");

    for (VCpuId id = 0; id < static_cast<VCpuId>(vcpus.size()); ++id) {
        if (vcpus[id].behavior)
            wake(id, /*interrupt=*/false);
    }
}

Priority
CreditScheduler::effPrio(const VCpu &v) const
{
    if (v.boosted && v.credits > 0)
        return Priority::Boost;
    return v.credits > 0 ? Priority::Under : Priority::Over;
}

void
CreditScheduler::enqueue(VCpuId id)
{
    VCpu &v = vcpus[id];
    if (v.suspended) {
        v.state = VCpuState::Blocked;
        return;
    }
    v.state = VCpuState::Runnable;
    pcpus[v.pcpu].runqueue.push_back(id);
}

VCpuId
CreditScheduler::pickNext(PCpu &p)
{
    if (p.runqueue.empty())
        return -1;
    auto best = p.runqueue.begin();
    for (auto it = std::next(best); it != p.runqueue.end(); ++it) {
        if (effPrio(vcpus[*it]) < effPrio(vcpus[*best]))
            best = it; // Strictly better priority; FIFO within class.
    }
    const VCpuId id = *best;
    p.runqueue.erase(best);
    return id;
}

void
CreditScheduler::obtainPlan(VCpuId id)
{
    VCpu &v = vcpus[id];
    BehaviorContext ctx;
    ctx.now = events.now();
    ctx.nextTick = nextTick;
    ctx.tickPeriod = cfg.tickPeriod;
    ctx.cumulativeRuntime = v.counters.runtime;
    ctx.rng = &rng;
    v.plan = v.behavior->next(ctx);
    if (v.plan.burst < 0)
        v.plan.burst = 0;
    // A plan that neither runs nor blocks would spin the scheduler;
    // force a minimal burst instead.
    if (v.plan.burst == 0 && v.plan.blockFor == 0)
        v.plan.burst = usec(100);
    v.remainingBurst = v.plan.burst;
    v.havePlan = true;
}

void
CreditScheduler::dispatch(int pcpu)
{
    PCpu &p = pcpus[pcpu];
    while (p.current == -1) {
        const VCpuId id = pickNext(p);
        if (id == -1)
            return; // pCPU idles; a wake re-dispatches.
        VCpu &v = vcpus[id];
        if (!v.behavior) {
            v.state = VCpuState::Blocked;
            continue;
        }
        if (!v.havePlan) {
            obtainPlan(id);
            if (v.remainingBurst <= 0) {
                // Zero-length burst: the plan only blocks / signals;
                // execute its follow-up without occupying the CPU.
                // (obtainPlan guarantees blockFor != 0 here.)
                executePlanEnd(id);
                continue;
            }
        }
        p.current = id;
        v.state = VCpuState::Running;
        v.runStart = events.now();
        p.sliceEnd = events.now() + cfg.slice;
        ++v.counters.dispatches;
        armStop(pcpu);
        return;
    }
}

void
CreditScheduler::armStop(int pcpu)
{
    PCpu &p = pcpus[pcpu];
    const VCpu &v = vcpus[p.current];
    const SimTime stopAt =
        std::min(p.sliceEnd, events.now() + v.remainingBurst);
    p.stopPending = true;
    p.stopEvent = events.schedule(stopAt, [this, pcpu] {
        pcpus[pcpu].stopPending = false;
        onStopEvent(pcpu);
    }, "sched.stop");
}

void
CreditScheduler::accountSegment(int pcpu)
{
    PCpu &p = pcpus[pcpu];
    VCpu &v = vcpus[p.current];
    const SimTime now = events.now();
    const SimTime ran = now - v.runStart;
    if (ran > 0) {
        v.counters.runtime += ran;
        v.remainingBurst -= ran;
        v.ranSinceAccounting = true;
        v.runtimeSinceAccounting += ran;
        p.busyTime += ran;
        if (runHook)
            runHook(p.current, v.domain, v.runStart, now);
    }
    v.runStart = now;
}

void
CreditScheduler::executePlanEnd(VCpuId id)
{
    VCpu &v = vcpus[id];
    v.havePlan = false;
    const BurstPlan plan = std::move(v.plan);
    v.plan = BurstPlan{};

    if (plan.onComplete)
        plan.onComplete(events.now());

    v.state = VCpuState::Blocked;
    if (plan.blockFor != kTimeNever) {
        v.wakePending = true;
        const bool asInterrupt = plan.wakeIsInterrupt;
        v.wakeEvent = events.scheduleAfter(
            plan.blockFor, [this, id, asInterrupt] {
                vcpus[id].wakePending = false;
                wake(id, asInterrupt);
            }, "sched.wake");
    }
    for (VCpuId target : plan.ipiTargets)
        sendIpi(id, target);
}

void
CreditScheduler::onStopEvent(int pcpu)
{
    PCpu &p = pcpus[pcpu];
    const VCpuId id = p.current;
    if (id == -1)
        return;
    VCpu &v = vcpus[id];
    accountSegment(pcpu);
    const SimTime now = events.now();

    if (v.remainingBurst > 0) {
        // Slice expired mid-burst: rotate to the runqueue tail. BOOST
        // is spent once the vCPU has run.
        v.boosted = false;
        ++v.counters.preemptions;
        p.current = -1;
        enqueue(id);
        dispatch(pcpu);
        return;
    }

    // Burst complete.
    if (v.plan.blockFor == 0) {
        // The workload stays runnable: like a real CPU-bound task it
        // keeps the pCPU until its slice expires. Send the plan's
        // IPIs first — a boosted wakee may preempt us.
        v.havePlan = false;
        const BurstPlan plan = std::move(v.plan);
        v.plan = BurstPlan{};
        if (plan.onComplete)
            plan.onComplete(now);
        for (VCpuId target : plan.ipiTargets)
            sendIpi(id, target);
        if (p.current != id)
            return; // An IPI wakee preempted us.
        if (now >= p.sliceEnd) {
            v.boosted = false;
            ++v.counters.preemptions;
            p.current = -1;
            enqueue(id);
            dispatch(pcpu);
            return;
        }
        obtainPlan(id);
        if (v.remainingBurst <= 0) {
            // Replacement plan immediately blocks: deschedule.
            p.current = -1;
            executePlanEnd(id);
            dispatch(pcpu);
            return;
        }
        armStop(pcpu);
        return;
    }

    // The vCPU blocks; executePlanEnd consumes the plan (completion
    // callback, wake timer, IPIs).
    v.boosted = false;
    p.current = -1;
    executePlanEnd(id);
    dispatch(pcpu);
}

void
CreditScheduler::preemptCurrent(int pcpu)
{
    PCpu &p = pcpus[pcpu];
    const VCpuId id = p.current;
    if (id == -1)
        return;
    VCpu &v = vcpus[id];
    if (p.stopPending) {
        events.cancel(p.stopEvent);
        p.stopPending = false;
    }
    accountSegment(pcpu);
    v.boosted = false;
    ++v.counters.preemptions;
    p.current = -1;
    enqueue(id);
    dispatch(pcpu);
}

void
CreditScheduler::wake(VCpuId id, bool interrupt)
{
    VCpu &v = vcpus.at(id);
    if (!v.behavior || v.suspended)
        return;
    if (v.state != VCpuState::Blocked) {
        // Already runnable/running: the event is latched — a pending
        // interrupt still boosts a queued vCPU with credits, as Xen
        // processes pending event channels when the vCPU next runs.
        if (v.state == VCpuState::Runnable && interrupt &&
            cfg.boostEnabled && v.credits > 0 && !v.boosted) {
            v.boosted = true;
            ++v.counters.boosts;
        }
        return;
    }

    if (v.wakePending) {
        events.cancel(v.wakeEvent);
        v.wakePending = false;
    }

    ++v.counters.wakes;
    v.boosted = cfg.boostEnabled && interrupt && v.credits > 0;
    if (v.boosted)
        ++v.counters.boosts;
    enqueue(id);

    PCpu &p = pcpus[v.pcpu];
    if (p.current == -1) {
        dispatch(v.pcpu);
    } else if (effPrio(v) < effPrio(vcpus[p.current])) {
        // Higher-priority wake preempts the running vCPU now.
        preemptCurrent(v.pcpu);
    }
}

void
CreditScheduler::sendIpi(VCpuId from, VCpuId to)
{
    (void)from;
    wake(to, /*interrupt=*/true);
}

void
CreditScheduler::retire(VCpuId id)
{
    VCpu &v = vcpus.at(id);
    if (v.wakePending) {
        events.cancel(v.wakeEvent);
        v.wakePending = false;
    }
    PCpu &p = pcpus[v.pcpu];
    if (p.current == id)
        preemptCurrent(v.pcpu);
    // Remove from the runqueue if queued.
    auto it = std::find(p.runqueue.begin(), p.runqueue.end(), id);
    if (it != p.runqueue.end())
        p.runqueue.erase(it);
    v.state = VCpuState::Blocked;
    v.behavior.reset();
    v.havePlan = false;
}

void
CreditScheduler::suspend(VCpuId id)
{
    VCpu &v = vcpus.at(id);
    if (v.suspended)
        return;
    v.suspended = true;
    if (v.wakePending) {
        events.cancel(v.wakeEvent);
        v.wakePending = false;
    }
    PCpu &p = pcpus[v.pcpu];
    if (p.current == id) {
        // Deschedule; enqueue() diverts a suspended vCPU to Blocked.
        preemptCurrent(v.pcpu);
    } else {
        auto it = std::find(p.runqueue.begin(), p.runqueue.end(), id);
        if (it != p.runqueue.end())
            p.runqueue.erase(it);
        v.state = VCpuState::Blocked;
    }
}

void
CreditScheduler::resume(VCpuId id)
{
    VCpu &v = vcpus.at(id);
    if (!v.suspended)
        return;
    v.suspended = false;
    if (v.state == VCpuState::Blocked)
        wake(id, /*interrupt=*/false);
}

void
CreditScheduler::tick()
{
    // Sampled debiting: only the vCPU running at this instant pays.
    // This is the exploitable property: an attacker sleeping across
    // tick boundaries is never sampled. With exactAccounting the
    // debit happens in accounting() proportional to time consumed.
    if (cfg.exactAccounting) {
        nextTick = events.now() + cfg.tickPeriod;
        events.schedule(nextTick, [this] { tick(); }, "sched.tick");
        return;
    }
    for (auto &p : pcpus) {
        if (p.current == -1)
            continue;
        VCpu &v = vcpus[p.current];
        v.credits = std::max(v.credits - cfg.tickDebit, cfg.creditFloor);
        ++v.counters.ticksAbsorbed;
        if (v.credits <= 0)
            v.boosted = false;
    }
    nextTick = events.now() + cfg.tickPeriod;
    events.schedule(nextTick, [this] { tick(); }, "sched.tick");
}

void
CreditScheduler::accounting()
{
    // Distribute the credit pool among active vCPUs by weight. An
    // "active" vCPU is one that can still run: not blocked forever.
    // A vCPU is active when it can still run or has consumed CPU in
    // the closing period — Xen's active/inactive marking, which is
    // what lets an attacker that naps across ticks keep earning.
    const auto isActive = [](const VCpu &v) {
        return v.behavior &&
               (v.state != VCpuState::Blocked || v.wakePending ||
                v.ranSinceAccounting);
    };

    if (cfg.exactAccounting) {
        // Debit exactly what was consumed: creditPool credits buy one
        // pCPU-period of CPU time. Account the still-running tail too
        // (runHook sees a segment boundary here, which the profiler's
        // contiguous-interval merging absorbs).
        for (int pc = 0; pc < static_cast<int>(pcpus.size()); ++pc) {
            if (pcpus[pc].current != -1)
                accountSegment(pc);
        }
        for (VCpu &v : vcpus) {
            const std::int64_t debit =
                static_cast<std::int64_t>(cfg.creditPool) *
                v.runtimeSinceAccounting / cfg.accountPeriod;
            v.credits = std::max<int>(
                v.credits - static_cast<int>(debit), cfg.creditFloor);
            if (v.credits <= 0)
                v.boosted = false;
            v.runtimeSinceAccounting = 0;
        }
    }

    std::int64_t totalWeight = 0;
    for (const VCpu &v : vcpus) {
        if (isActive(v))
            totalWeight += v.weight;
    }

    if (totalWeight > 0) {
        const std::int64_t pool =
            static_cast<std::int64_t>(cfg.creditPool) *
            static_cast<std::int64_t>(pcpus.size());
        for (VCpu &v : vcpus) {
            if (!isActive(v))
                continue;
            const int share =
                static_cast<int>(pool * v.weight / totalWeight);
            v.credits = std::min(v.credits + share, cfg.creditCap);
        }
    }
    for (VCpu &v : vcpus)
        v.ranSinceAccounting = false;
    events.scheduleAfter(cfg.accountPeriod, [this] { accounting(); },
                         "sched.account");
}

const VCpuStats &
CreditScheduler::stats(VCpuId vcpu) const
{
    return vcpus.at(vcpu).counters;
}

DomainId
CreditScheduler::domainOf(VCpuId vcpu) const
{
    return vcpus.at(vcpu).domain;
}

int
CreditScheduler::credits(VCpuId vcpu) const
{
    return vcpus.at(vcpu).credits;
}

Priority
CreditScheduler::effectivePriority(VCpuId vcpu) const
{
    return effPrio(vcpus.at(vcpu));
}

VCpuState
CreditScheduler::state(VCpuId vcpu) const
{
    return vcpus.at(vcpu).state;
}

SimTime
CreditScheduler::pcpuBusyTime(int pcpu) const
{
    const PCpu &p = pcpus.at(pcpu);
    SimTime busy = p.busyTime;
    if (p.current != -1)
        busy += events.now() - vcpus[p.current].runStart;
    return busy;
}

} // namespace monatt::hypervisor
