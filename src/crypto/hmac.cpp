#include "crypto/hmac.h"

#include <stdexcept>

#include "crypto/sha256.h"

namespace monatt::crypto
{

Bytes
hmacSha256(const Bytes &key, const Bytes &data)
{
    constexpr std::size_t blockSize = 64;

    Bytes k = key;
    if (k.size() > blockSize)
        k = Sha256::hash(k);
    k.resize(blockSize, 0x00);

    Bytes ipad(blockSize), opad(blockSize);
    for (std::size_t i = 0; i < blockSize; ++i) {
        ipad[i] = k[i] ^ 0x36;
        opad[i] = k[i] ^ 0x5c;
    }

    Sha256 inner;
    inner.update(ipad);
    inner.update(data);
    const Bytes innerDigest = inner.digest();

    Sha256 outer;
    outer.update(opad);
    outer.update(innerDigest);
    return outer.digest();
}

Bytes
hkdfExtract(const Bytes &salt, const Bytes &ikm)
{
    if (salt.empty())
        return hmacSha256(Bytes(kSha256DigestSize, 0x00), ikm);
    return hmacSha256(salt, ikm);
}

Bytes
hkdfExpand(const Bytes &prk, const Bytes &info, std::size_t length)
{
    if (length > 255 * kSha256DigestSize)
        throw std::invalid_argument("hkdfExpand: length too large");

    Bytes out;
    Bytes t;
    std::uint8_t counter = 1;
    while (out.size() < length) {
        Bytes block = t;
        append(block, info);
        block.push_back(counter++);
        t = hmacSha256(prk, block);
        append(out, t);
    }
    out.resize(length);
    return out;
}

Bytes
hkdf(const Bytes &salt, const Bytes &ikm, const Bytes &info,
     std::size_t length)
{
    return hkdfExpand(hkdfExtract(salt, ikm), info, length);
}

} // namespace monatt::crypto
