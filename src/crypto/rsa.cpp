#include "crypto/rsa.h"

#include <stdexcept>

#include "common/codec.h"
#include "crypto/sha256.h"

namespace monatt::crypto
{

namespace
{

/**
 * DER-style prefix identifying SHA-256 inside the EMSA padding, as in
 * PKCS#1 v1.5 (RFC 8017 §9.2 notes).
 */
const Bytes kSha256Prefix = {
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65,
    0x03, 0x04, 0x02, 0x01, 0x05, 0x00, 0x04, 0x20,
};

/** Build the EMSA-PKCS1-v1_5 encoded message of length emLen. */
Bytes
emsaEncode(const Bytes &digest, std::size_t emLen)
{
    const std::size_t tLen = kSha256Prefix.size() + digest.size();
    if (emLen < tLen + 11)
        throw std::invalid_argument("emsaEncode: modulus too small");
    Bytes em;
    em.reserve(emLen);
    em.push_back(0x00);
    em.push_back(0x01);
    em.insert(em.end(), emLen - tLen - 3, 0xff);
    em.push_back(0x00);
    em.insert(em.end(), kSha256Prefix.begin(), kSha256Prefix.end());
    em.insert(em.end(), digest.begin(), digest.end());
    return em;
}

} // namespace

Bytes
RsaPublicKey::encode() const
{
    ByteWriter w;
    w.putBytes(n.toBytes());
    w.putBytes(e.toBytes());
    return w.take();
}

Result<RsaPublicKey>
RsaPublicKey::decode(const Bytes &data)
{
    ByteReader r(data);
    auto nBytes = r.getBytes();
    if (!nBytes)
        return Result<RsaPublicKey>::error("RsaPublicKey: bad modulus");
    auto eBytes = r.getBytes();
    if (!eBytes)
        return Result<RsaPublicKey>::error("RsaPublicKey: bad exponent");
    if (!r.atEnd())
        return Result<RsaPublicKey>::error("RsaPublicKey: trailing bytes");
    RsaPublicKey key;
    key.n = BigUint::fromBytes(nBytes.value());
    key.e = BigUint::fromBytes(eBytes.value());
    if (key.n.isZero() || key.e.isZero())
        return Result<RsaPublicKey>::error("RsaPublicKey: zero component");
    return Result<RsaPublicKey>::ok(std::move(key));
}

BigUint
RsaPrivateKey::decryptRaw(const BigUint &c) const
{
    if (p.isZero() || q.isZero()) {
        // No CRT components available: plain exponentiation.
        return c.modExp(d, n);
    }
    // CRT: m1 = c^dP mod p, m2 = c^dQ mod q,
    // h = qInv (m1 - m2) mod p, m = m2 + h q.
    const BigUint m1 = (c % p).modExp(dP, p);
    const BigUint m2 = (c % q).modExp(dQ, q);
    BigUint diff;
    if (m1 >= m2)
        diff = m1 - m2;
    else
        diff = p - ((m2 - m1) % p);
    const BigUint h = (qInv * diff) % p;
    return m2 + h * q;
}

RsaPublicContext::RsaPublicContext(const RsaPublicKey &key) : pub(key)
{
    if (pub.n.isOdd() && modExpEngine() == ModExpEngine::Montgomery)
        mont.emplace(pub.n);
}

BigUint
RsaPublicContext::encryptRaw(const BigUint &value) const
{
    if (mont)
        return mont->modExp(value, pub.e);
    return value.modExp(pub.e, pub.n);
}

RsaPrivateContext::RsaPrivateContext(const RsaPrivateKey &key) : priv(key)
{
    if (modExpEngine() != ModExpEngine::Montgomery)
        return;
    if (!priv.p.isZero() && priv.p.isOdd() && !priv.q.isZero() &&
        priv.q.isOdd()) {
        montP.emplace(priv.p);
        montQ.emplace(priv.q);
    }
    if (priv.n.isOdd())
        montN.emplace(priv.n);
}

BigUint
RsaPrivateContext::decryptRaw(const BigUint &c) const
{
    if (!montP || !montQ) {
        if (montN)
            return montN->modExp(c, priv.d);
        return priv.decryptRaw(c);
    }
    const BigUint m1 = montP->modExp(c, priv.dP);
    const BigUint m2 = montQ->modExp(c, priv.dQ);
    BigUint diff;
    if (m1 >= m2)
        diff = m1 - m2;
    else
        diff = priv.p - ((m2 - m1) % priv.p);
    const BigUint h = (priv.qInv * diff) % priv.p;
    return m2 + h * priv.q;
}

RsaKeyPair
rsaGenerateKeyPair(std::size_t modulusBits, Rng &rng)
{
    if (modulusBits < 256 || modulusBits % 2 != 0)
        throw std::invalid_argument("rsaGenerateKeyPair: bad key size");

    const BigUint e = BigUint::fromU64(65537);
    const BigUint one = BigUint::fromU64(1);

    for (;;) {
        BigUint p = BigUint::generatePrime(modulusBits / 2, rng);
        BigUint q = BigUint::generatePrime(modulusBits / 2, rng);
        if (p == q)
            continue;
        if (p < q)
            std::swap(p, q);

        const BigUint n = p * q;
        if (n.bitLength() != modulusBits)
            continue;

        const BigUint pMinus1 = p - one;
        const BigUint qMinus1 = q - one;
        const BigUint phi = pMinus1 * qMinus1;
        if (BigUint::gcd(e, phi) != one)
            continue;

        RsaKeyPair pair;
        pair.pub.n = n;
        pair.pub.e = e;
        pair.priv.n = n;
        pair.priv.d = e.modInverse(phi);
        pair.priv.p = p;
        pair.priv.q = q;
        pair.priv.dP = pair.priv.d % pMinus1;
        pair.priv.dQ = pair.priv.d % qMinus1;
        pair.priv.qInv = q.modInverse(p);
        return pair;
    }
}

Bytes
rsaSign(const RsaPrivateKey &key, const Bytes &message)
{
    const std::size_t k = (key.n.bitLength() + 7) / 8;
    const Bytes em = emsaEncode(Sha256::hash(message), k);
    const BigUint m = BigUint::fromBytes(em);
    return key.decryptRaw(m).toBytes(k);
}

Bytes
rsaSign(const RsaPrivateContext &ctx, const Bytes &message)
{
    const std::size_t k = (ctx.key().n.bitLength() + 7) / 8;
    const Bytes em = emsaEncode(Sha256::hash(message), k);
    const BigUint m = BigUint::fromBytes(em);
    return ctx.decryptRaw(m).toBytes(k);
}

bool
rsaVerify(const RsaPublicKey &key, const Bytes &message,
          const Bytes &signature)
{
    const std::size_t k = key.modulusBytes();
    if (signature.size() != k)
        return false;
    const BigUint s = BigUint::fromBytes(signature);
    if (s >= key.n)
        return false;
    const Bytes em = s.modExp(key.e, key.n).toBytes(k);
    Bytes expected;
    try {
        expected = emsaEncode(Sha256::hash(message), k);
    } catch (const std::invalid_argument &) {
        return false;
    }
    return constantTimeEqual(em, expected);
}

bool
rsaVerify(const RsaPublicContext &ctx, const Bytes &message,
          const Bytes &signature)
{
    const RsaPublicKey &key = ctx.key();
    const std::size_t k = key.modulusBytes();
    if (signature.size() != k)
        return false;
    const BigUint s = BigUint::fromBytes(signature);
    if (s >= key.n)
        return false;
    const Bytes em = ctx.encryptRaw(s).toBytes(k);
    Bytes expected;
    try {
        expected = emsaEncode(Sha256::hash(message), k);
    } catch (const std::invalid_argument &) {
        return false;
    }
    return constantTimeEqual(em, expected);
}

namespace
{

/** EME-PKCS1-v1_5: 00 || 02 || nonzero padding || 00 || message. */
Result<Bytes>
emePad(const Bytes &message, std::size_t k, Rng &rng)
{
    if (message.size() + 11 > k)
        return Result<Bytes>::error("rsaEncrypt: message too long");
    Bytes em;
    em.reserve(k);
    em.push_back(0x00);
    em.push_back(0x02);
    const std::size_t padLen = k - message.size() - 3;
    for (std::size_t i = 0; i < padLen; ++i) {
        std::uint8_t b;
        do {
            b = static_cast<std::uint8_t>(rng.next() & 0xff);
        } while (b == 0);
        em.push_back(b);
    }
    em.push_back(0x00);
    em.insert(em.end(), message.begin(), message.end());
    return Result<Bytes>::ok(std::move(em));
}

/** Strip EME-PKCS1-v1_5 padding from a decrypted block. */
Result<Bytes>
emeUnpad(const Bytes &em)
{
    if (em.size() < 11 || em[0] != 0x00 || em[1] != 0x02)
        return Result<Bytes>::error("rsaDecrypt: bad padding");
    std::size_t sep = 2;
    while (sep < em.size() && em[sep] != 0x00)
        ++sep;
    if (sep == em.size() || sep < 10)
        return Result<Bytes>::error("rsaDecrypt: bad padding");
    return Result<Bytes>::ok(Bytes(em.begin() + sep + 1, em.end()));
}

} // namespace

Result<Bytes>
rsaEncrypt(const RsaPublicKey &key, const Bytes &message, Rng &rng)
{
    const std::size_t k = key.modulusBytes();
    auto em = emePad(message, k, rng);
    if (!em)
        return em;
    const BigUint m = BigUint::fromBytes(em.value());
    return Result<Bytes>::ok(m.modExp(key.e, key.n).toBytes(k));
}

Result<Bytes>
rsaEncrypt(const RsaPublicContext &ctx, const Bytes &message, Rng &rng)
{
    const std::size_t k = ctx.key().modulusBytes();
    auto em = emePad(message, k, rng);
    if (!em)
        return em;
    const BigUint m = BigUint::fromBytes(em.value());
    return Result<Bytes>::ok(ctx.encryptRaw(m).toBytes(k));
}

Result<Bytes>
rsaDecrypt(const RsaPrivateKey &key, const Bytes &cipher)
{
    const std::size_t k = (key.n.bitLength() + 7) / 8;
    if (cipher.size() != k)
        return Result<Bytes>::error("rsaDecrypt: bad ciphertext length");
    const BigUint c = BigUint::fromBytes(cipher);
    if (c >= key.n)
        return Result<Bytes>::error("rsaDecrypt: ciphertext out of range");
    return emeUnpad(key.decryptRaw(c).toBytes(k));
}

Result<Bytes>
rsaDecrypt(const RsaPrivateContext &ctx, const Bytes &cipher)
{
    const RsaPrivateKey &key = ctx.key();
    const std::size_t k = (key.n.bitLength() + 7) / 8;
    if (cipher.size() != k)
        return Result<Bytes>::error("rsaDecrypt: bad ciphertext length");
    const BigUint c = BigUint::fromBytes(cipher);
    if (c >= key.n)
        return Result<Bytes>::error("rsaDecrypt: ciphertext out of range");
    return emeUnpad(ctx.decryptRaw(c).toBytes(k));
}

} // namespace monatt::crypto
