/**
 * @file
 * HMAC-DRBG (NIST SP 800-90A) deterministic random bit generator.
 *
 * The Trust Module of Figure 2 contains an RNG block used to generate
 * nonces and per-session attestation keys. We model it as an
 * HMAC-SHA-256 DRBG: cryptographically strong expansion from a seed,
 * deterministic under a fixed seed so simulations stay reproducible,
 * reseedable with fresh entropy.
 */

#ifndef MONATT_CRYPTO_DRBG_H
#define MONATT_CRYPTO_DRBG_H

#include "common/bytes.h"
#include "common/rng.h"

namespace monatt::crypto
{

/** HMAC-SHA-256 based DRBG. */
class HmacDrbg
{
  public:
    /** Instantiate from seed material (entropy || nonce || personal). */
    explicit HmacDrbg(const Bytes &seedMaterial);

    /** Mix additional entropy into the state. */
    void reseed(const Bytes &entropy);

    /** Generate `n` pseudo-random bytes. */
    Bytes generate(std::size_t n);

    /** Adapter: expose the DRBG through the common Rng interface by
     * producing a freshly seeded deterministic Rng. */
    Rng forkRng();

  private:
    void update(const Bytes &providedData);

    Bytes key;
    Bytes value;
};

} // namespace monatt::crypto

#endif // MONATT_CRYPTO_DRBG_H
