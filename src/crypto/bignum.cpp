#include "crypto/bignum.h"

#include <algorithm>
#include <stdexcept>

namespace monatt::crypto
{

namespace
{

/** Small primes for trial division during prime generation. */
constexpr std::uint32_t kSmallPrimes[] = {
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223,
    227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293,
    307, 311, 313, 317, 331, 337, 347, 349, 353, 359, 367, 373, 379, 383,
    389, 397, 401, 409, 419, 421, 431, 433, 439, 443, 449, 457, 461, 463,
};

} // namespace

void
BigUint::trim()
{
    while (!limb.empty() && limb.back() == 0)
        limb.pop_back();
}

BigUint
BigUint::fromU64(std::uint64_t v)
{
    BigUint out;
    if (v & 0xffffffffULL)
        out.limb.push_back(static_cast<std::uint32_t>(v));
    else if (v >> 32)
        out.limb.push_back(0);
    if (v >> 32)
        out.limb.push_back(static_cast<std::uint32_t>(v >> 32));
    out.trim();
    return out;
}

BigUint
BigUint::fromBytes(const Bytes &be)
{
    BigUint out;
    out.limb.assign((be.size() + 3) / 4, 0);
    for (std::size_t i = 0; i < be.size(); ++i) {
        // Byte i counted from the end is bits [8*i, 8*i+8).
        const std::size_t fromEnd = be.size() - 1 - i;
        out.limb[fromEnd / 4] |=
            static_cast<std::uint32_t>(be[i]) << (8 * (fromEnd % 4));
    }
    out.trim();
    return out;
}

BigUint
BigUint::fromHexString(const std::string &hex)
{
    std::string padded = hex;
    if (padded.size() % 2 == 1)
        padded.insert(padded.begin(), '0');
    return fromBytes(fromHex(padded));
}

Bytes
BigUint::toBytes(std::size_t width) const
{
    const std::size_t minBytes = (bitLength() + 7) / 8;
    const std::size_t outSize = width == 0 ? std::max<std::size_t>(minBytes, 1)
                                           : width;
    if (width != 0 && minBytes > width)
        throw std::invalid_argument("BigUint::toBytes: width too small");

    Bytes out(outSize, 0);
    for (std::size_t i = 0; i < minBytes; ++i) {
        const std::uint32_t word = limb[i / 4];
        out[outSize - 1 - i] =
            static_cast<std::uint8_t>(word >> (8 * (i % 4)));
    }
    return out;
}

std::string
BigUint::toHexString() const
{
    if (isZero())
        return "0";
    std::string s = toHex(toBytes());
    const std::size_t firstNonZero = s.find_first_not_of('0');
    return s.substr(firstNonZero);
}

BigUint
BigUint::randomWithBits(std::size_t bits, Rng &rng)
{
    if (bits == 0)
        return BigUint();
    BigUint out;
    out.limb.assign((bits + 31) / 32, 0);
    for (auto &word : out.limb)
        word = static_cast<std::uint32_t>(rng.next());
    // Clear bits above the requested width, then force the MSB.
    const std::size_t topBit = (bits - 1) % 32;
    std::uint32_t &top = out.limb.back();
    if (topBit != 31)
        top &= (1u << (topBit + 1)) - 1;
    top |= 1u << topBit;
    out.trim();
    return out;
}

BigUint
BigUint::randomBelow(const BigUint &bound, Rng &rng)
{
    const BigUint two = fromU64(2);
    if (bound <= two)
        throw std::invalid_argument("randomBelow: bound too small");
    const std::size_t bits = bound.bitLength();
    for (;;) {
        BigUint candidate;
        candidate.limb.assign((bits + 31) / 32, 0);
        for (auto &word : candidate.limb)
            word = static_cast<std::uint32_t>(rng.next());
        const std::size_t topBit = (bits - 1) % 32;
        if (topBit != 31)
            candidate.limb.back() &= (1u << (topBit + 1)) - 1;
        candidate.trim();
        if (candidate >= two && candidate < bound)
            return candidate;
    }
}

std::size_t
BigUint::bitLength() const
{
    if (limb.empty())
        return 0;
    std::size_t bits = (limb.size() - 1) * 32;
    std::uint32_t top = limb.back();
    while (top) {
        ++bits;
        top >>= 1;
    }
    return bits;
}

bool
BigUint::bit(std::size_t i) const
{
    const std::size_t word = i / 32;
    if (word >= limb.size())
        return false;
    return (limb[word] >> (i % 32)) & 1;
}

int
BigUint::compare(const BigUint &a, const BigUint &b)
{
    if (a.limb.size() != b.limb.size())
        return a.limb.size() < b.limb.size() ? -1 : 1;
    for (std::size_t i = a.limb.size(); i-- > 0;) {
        if (a.limb[i] != b.limb[i])
            return a.limb[i] < b.limb[i] ? -1 : 1;
    }
    return 0;
}

BigUint
BigUint::operator+(const BigUint &o) const
{
    BigUint out;
    const std::size_t n = std::max(limb.size(), o.limb.size());
    out.limb.assign(n + 1, 0);
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t sum = carry;
        if (i < limb.size())
            sum += limb[i];
        if (i < o.limb.size())
            sum += o.limb[i];
        out.limb[i] = static_cast<std::uint32_t>(sum);
        carry = sum >> 32;
    }
    out.limb[n] = static_cast<std::uint32_t>(carry);
    out.trim();
    return out;
}

BigUint
BigUint::operator-(const BigUint &o) const
{
    if (*this < o)
        throw std::underflow_error("BigUint subtraction underflow");
    BigUint out;
    out.limb.assign(limb.size(), 0);
    std::int64_t borrow = 0;
    for (std::size_t i = 0; i < limb.size(); ++i) {
        std::int64_t diff = static_cast<std::int64_t>(limb[i]) - borrow;
        if (i < o.limb.size())
            diff -= o.limb[i];
        if (diff < 0) {
            diff += 1LL << 32;
            borrow = 1;
        } else {
            borrow = 0;
        }
        out.limb[i] = static_cast<std::uint32_t>(diff);
    }
    out.trim();
    return out;
}

BigUint
BigUint::operator*(const BigUint &o) const
{
    if (isZero() || o.isZero())
        return BigUint();
    BigUint out;
    out.limb.assign(limb.size() + o.limb.size(), 0);
    for (std::size_t i = 0; i < limb.size(); ++i) {
        std::uint64_t carry = 0;
        const std::uint64_t a = limb[i];
        for (std::size_t j = 0; j < o.limb.size(); ++j) {
            std::uint64_t cur = out.limb[i + j] + a * o.limb[j] + carry;
            out.limb[i + j] = static_cast<std::uint32_t>(cur);
            carry = cur >> 32;
        }
        std::size_t k = i + o.limb.size();
        while (carry) {
            std::uint64_t cur = out.limb[k] + carry;
            out.limb[k] = static_cast<std::uint32_t>(cur);
            carry = cur >> 32;
            ++k;
        }
    }
    out.trim();
    return out;
}

std::pair<BigUint, BigUint>
BigUint::divmod(const BigUint &num, const BigUint &den)
{
    if (den.isZero())
        throw std::domain_error("BigUint division by zero");
    if (num < den)
        return {BigUint(), num};
    if (den.limb.size() == 1) {
        // Fast single-limb path.
        const std::uint64_t d = den.limb[0];
        BigUint q;
        q.limb.assign(num.limb.size(), 0);
        std::uint64_t rem = 0;
        for (std::size_t i = num.limb.size(); i-- > 0;) {
            const std::uint64_t cur = (rem << 32) | num.limb[i];
            q.limb[i] = static_cast<std::uint32_t>(cur / d);
            rem = cur % d;
        }
        q.trim();
        return {q, fromU64(rem)};
    }

    // Knuth Algorithm D. Normalize so the divisor's top limb has its
    // high bit set.
    int shift = 0;
    std::uint32_t top = den.limb.back();
    while (!(top & 0x80000000u)) {
        top <<= 1;
        ++shift;
    }
    const BigUint u = num.shiftLeft(shift);
    const BigUint v = den.shiftLeft(shift);
    const std::size_t n = v.limb.size();
    const std::size_t m = u.limb.size() >= n ? u.limb.size() - n : 0;

    std::vector<std::uint32_t> un(u.limb);
    un.resize(u.limb.size() + 1, 0);
    const std::vector<std::uint32_t> &vn = v.limb;

    BigUint q;
    q.limb.assign(m + 1, 0);

    for (std::size_t j = m + 1; j-- > 0;) {
        const std::uint64_t numerator =
            (static_cast<std::uint64_t>(un[j + n]) << 32) | un[j + n - 1];
        std::uint64_t qhat = numerator / vn[n - 1];
        std::uint64_t rhat = numerator % vn[n - 1];

        while (qhat >= (1ULL << 32) ||
               qhat * vn[n - 2] > ((rhat << 32) | un[j + n - 2])) {
            --qhat;
            rhat += vn[n - 1];
            if (rhat >= (1ULL << 32))
                break;
        }

        // Multiply-and-subtract qhat * v from un[j .. j+n].
        std::int64_t borrow = 0;
        std::uint64_t carry = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t product = qhat * vn[i] + carry;
            carry = product >> 32;
            std::int64_t t = static_cast<std::int64_t>(un[i + j]) -
                             static_cast<std::int64_t>(product &
                                                       0xffffffffULL) -
                             borrow;
            if (t < 0) {
                t += 1LL << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            un[i + j] = static_cast<std::uint32_t>(t);
        }
        std::int64_t t = static_cast<std::int64_t>(un[j + n]) -
                         static_cast<std::int64_t>(carry) - borrow;
        if (t < 0) {
            // qhat was one too large: add v back once.
            t += 1LL << 32;
            --qhat;
            std::uint64_t addCarry = 0;
            for (std::size_t i = 0; i < n; ++i) {
                const std::uint64_t sum =
                    static_cast<std::uint64_t>(un[i + j]) + vn[i] + addCarry;
                un[i + j] = static_cast<std::uint32_t>(sum);
                addCarry = sum >> 32;
            }
            t += static_cast<std::int64_t>(addCarry);
            t &= 0xffffffffLL;
        }
        un[j + n] = static_cast<std::uint32_t>(t);
        q.limb[j] = static_cast<std::uint32_t>(qhat);
    }
    q.trim();

    BigUint r;
    r.limb.assign(un.begin(), un.begin() + n);
    r.trim();
    return {q, r.shiftRight(shift)};
}

BigUint
BigUint::operator/(const BigUint &o) const
{
    return divmod(*this, o).first;
}

BigUint
BigUint::operator%(const BigUint &o) const
{
    return divmod(*this, o).second;
}

BigUint
BigUint::shiftLeft(std::size_t bits) const
{
    if (isZero() || bits == 0)
        return *this;
    const std::size_t words = bits / 32;
    const std::size_t rem = bits % 32;
    BigUint out;
    out.limb.assign(limb.size() + words + 1, 0);
    for (std::size_t i = 0; i < limb.size(); ++i) {
        out.limb[i + words] |= limb[i] << rem;
        if (rem)
            out.limb[i + words + 1] |=
                static_cast<std::uint32_t>(
                    static_cast<std::uint64_t>(limb[i]) >> (32 - rem));
    }
    out.trim();
    return out;
}

BigUint
BigUint::shiftRight(std::size_t bits) const
{
    const std::size_t words = bits / 32;
    const std::size_t rem = bits % 32;
    if (words >= limb.size())
        return BigUint();
    BigUint out;
    out.limb.assign(limb.size() - words, 0);
    for (std::size_t i = 0; i < out.limb.size(); ++i) {
        out.limb[i] = limb[i + words] >> rem;
        if (rem && i + words + 1 < limb.size())
            out.limb[i] |= static_cast<std::uint32_t>(
                static_cast<std::uint64_t>(limb[i + words + 1])
                << (32 - rem));
    }
    out.trim();
    return out;
}

namespace
{
ModExpEngine gModExpEngine = ModExpEngine::Montgomery;
} // namespace

ModExpEngine
modExpEngine() noexcept
{
    return gModExpEngine;
}

void
setModExpEngine(ModExpEngine engine) noexcept
{
    gModExpEngine = engine;
}

BigUint
BigUint::modExp(const BigUint &exp, const BigUint &m) const
{
    if (m.isZero())
        throw std::domain_error("modExp: zero modulus");
    if (m == fromU64(1))
        return BigUint();
    if (!m.isOdd() || gModExpEngine == ModExpEngine::Legacy)
        return modExpLegacy(exp, m);
    return MontgomeryContext(m).modExp(*this, exp);
}

BigUint
BigUint::modExp(const BigUint &exp, const MontgomeryContext &ctx) const
{
    return ctx.modExp(*this, exp);
}

BigUint
BigUint::modExpLegacy(const BigUint &exp, const BigUint &m) const
{
    if (m.isZero())
        throw std::domain_error("modExp: zero modulus");
    const BigUint one = fromU64(1);
    if (m == one)
        return BigUint();

    BigUint result = one;
    BigUint base = *this % m;
    const std::size_t bits = exp.bitLength();
    for (std::size_t i = 0; i < bits; ++i) {
        if (exp.bit(i))
            result = (result * base) % m;
        base = (base * base) % m;
    }
    return result;
}

MontgomeryContext::MontgomeryContext(const BigUint &modulus) : m(modulus)
{
    if (m.isZero() || !m.isOdd())
        throw std::domain_error(
            "MontgomeryContext: modulus must be odd and nonzero");

    n = m.limb;
    const std::size_t k = n.size();

    // n' = -n^-1 mod 2^32 via Newton iteration: starting from x = n0
    // (correct mod 8 for odd n0), each step doubles the valid bits.
    const std::uint32_t n0 = n[0];
    std::uint32_t inv = n0;
    for (int i = 0; i < 5; ++i)
        inv *= 2 - n0 * inv;
    nPrime = static_cast<std::uint32_t>(0) - inv;

    // R mod n and R^2 mod n, R = 2^(32k), via one shift and division.
    const BigUint r = BigUint::fromU64(1).shiftLeft(32 * k);
    BigUint rMod = r % m;
    BigUint rrMod = (rMod * rMod) % m;
    rModN = std::move(rMod.limb);
    rModN.resize(k, 0);
    rrModN = std::move(rrMod.limb);
    rrModN.resize(k, 0);
}

void
MontgomeryContext::montMul(const Limbs &a, const Limbs &b, Limbs &out) const
{
    const std::size_t k = n.size();
    Limbs t(k + 2, 0);

    for (std::size_t i = 0; i < k; ++i) {
        // t += a[i] * b.
        const std::uint64_t ai = a[i];
        std::uint64_t carry = 0;
        for (std::size_t j = 0; j < k; ++j) {
            const std::uint64_t cur = t[j] + ai * b[j] + carry;
            t[j] = static_cast<std::uint32_t>(cur);
            carry = cur >> 32;
        }
        std::uint64_t cur = t[k] + carry;
        t[k] = static_cast<std::uint32_t>(cur);
        t[k + 1] = static_cast<std::uint32_t>(cur >> 32);

        // t = (t + mFac * n) / 2^32; mFac chosen so t becomes
        // divisible by the word base.
        const std::uint32_t mFac = t[0] * nPrime;
        cur = t[0] + static_cast<std::uint64_t>(mFac) * n[0];
        carry = cur >> 32;
        for (std::size_t j = 1; j < k; ++j) {
            cur = t[j] + static_cast<std::uint64_t>(mFac) * n[j] + carry;
            t[j - 1] = static_cast<std::uint32_t>(cur);
            carry = cur >> 32;
        }
        cur = static_cast<std::uint64_t>(t[k]) + carry;
        t[k - 1] = static_cast<std::uint32_t>(cur);
        t[k] = t[k + 1] + static_cast<std::uint32_t>(cur >> 32);
        t[k + 1] = 0;
    }

    // Result is in t[0..k] and is < 2n; one conditional subtract.
    bool geq = t[k] != 0;
    if (!geq) {
        geq = true;
        for (std::size_t i = k; i-- > 0;) {
            if (t[i] != n[i]) {
                geq = t[i] > n[i];
                break;
            }
        }
    }
    out.assign(t.begin(), t.begin() + static_cast<std::ptrdiff_t>(k));
    if (geq) {
        std::int64_t borrow = 0;
        for (std::size_t i = 0; i < k; ++i) {
            std::int64_t diff = static_cast<std::int64_t>(out[i]) -
                                static_cast<std::int64_t>(n[i]) - borrow;
            if (diff < 0) {
                diff += 1LL << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out[i] = static_cast<std::uint32_t>(diff);
        }
    }
}

MontgomeryContext::Limbs
MontgomeryContext::toMont(const BigUint &value) const
{
    Limbs v = value.limb;
    v.resize(n.size(), 0);
    Limbs out;
    montMul(v, rrModN, out);
    return out;
}

BigUint
MontgomeryContext::fromMont(const Limbs &value) const
{
    Limbs oneLimb(n.size(), 0);
    oneLimb[0] = 1;
    BigUint out;
    montMul(value, oneLimb, out.limb);
    out.trim();
    return out;
}

BigUint
MontgomeryContext::modExp(const BigUint &base, const BigUint &exp) const
{
    if (m == BigUint::fromU64(1))
        return BigUint();
    if (exp.isZero())
        return BigUint::fromU64(1);

    const std::size_t bits = exp.bitLength();

    // Fixed window sized to the exponent: the table costs 2^w - 2
    // products, each window costs w squarings plus at most one product.
    const std::size_t w =
        bits > 512 ? 5 : bits > 128 ? 4 : bits > 24 ? 3 : bits > 8 ? 2 : 1;

    const Limbs x = toMont(base % m);
    std::vector<Limbs> table(std::size_t(1) << w);
    table[0] = rModN;
    table[1] = x;
    for (std::size_t i = 2; i < table.size(); ++i)
        montMul(table[i - 1], x, table[i]);

    const std::size_t chunks = (bits + w - 1) / w;
    Limbs acc;
    Limbs tmp;
    for (std::size_t c = chunks; c-- > 0;) {
        std::size_t digit = 0;
        for (std::size_t b = 0; b < w; ++b) {
            const std::size_t bitIndex = c * w + b;
            if (bitIndex < bits && exp.bit(bitIndex))
                digit |= std::size_t(1) << b;
        }
        if (c + 1 == chunks) {
            acc = table[digit];
            continue;
        }
        for (std::size_t s = 0; s < w; ++s) {
            montMul(acc, acc, tmp);
            acc.swap(tmp);
        }
        if (digit != 0) {
            montMul(acc, table[digit], tmp);
            acc.swap(tmp);
        }
    }
    return fromMont(acc);
}

BigUint
BigUint::gcd(BigUint a, BigUint b)
{
    while (!b.isZero()) {
        BigUint r = a % b;
        a = b;
        b = r;
    }
    return a;
}

BigUint
BigUint::modInverse(const BigUint &m) const
{
    // Extended Euclid on (m, a) tracking only the coefficient of a,
    // with signs managed explicitly since BigUint is unsigned.
    BigUint r0 = m, r1 = *this % m;
    BigUint t0 = BigUint(), t1 = fromU64(1);
    bool t0Neg = false, t1Neg = false;

    while (!r1.isZero()) {
        auto [q, r2] = divmod(r0, r1);
        // t2 = t0 - q * t1 with sign tracking.
        const BigUint qt1 = q * t1;
        BigUint t2;
        bool t2Neg;
        if (t0Neg == t1Neg) {
            // Same sign: t0 - q*t1 may flip sign.
            if (t0 >= qt1) {
                t2 = t0 - qt1;
                t2Neg = t0Neg;
            } else {
                t2 = qt1 - t0;
                t2Neg = !t0Neg;
            }
        } else {
            // Opposite signs: magnitudes add, sign follows t0.
            t2 = t0 + qt1;
            t2Neg = t0Neg;
        }
        r0 = r1;
        r1 = r2;
        t0 = t1;
        t0Neg = t1Neg;
        t1 = t2;
        t1Neg = t2Neg;
    }

    if (r0 != fromU64(1))
        throw std::domain_error("modInverse: not invertible");
    if (t0Neg)
        return m - (t0 % m);
    return t0 % m;
}

bool
BigUint::isProbablePrime(Rng &rng, int rounds) const
{
    const BigUint one = fromU64(1);
    const BigUint two = fromU64(2);
    const BigUint three = fromU64(3);
    if (*this < two)
        return false;
    if (*this == two || *this == three)
        return true;
    if (!isOdd())
        return false;

    for (std::uint32_t p : kSmallPrimes) {
        const BigUint bp = fromU64(p);
        if (*this == bp)
            return true;
        if ((*this % bp).isZero())
            return false;
    }

    // Write n-1 = d * 2^s with d odd.
    const BigUint nMinus1 = *this - one;
    BigUint d = nMinus1;
    std::size_t s = 0;
    while (!d.isOdd()) {
        d = d.shiftRight(1);
        ++s;
    }

    for (int round = 0; round < rounds; ++round) {
        const BigUint a = randomBelow(nMinus1, rng);
        BigUint x = a.modExp(d, *this);
        if (x == one || x == nMinus1)
            continue;
        bool witness = true;
        for (std::size_t i = 0; i + 1 < s; ++i) {
            x = (x * x) % *this;
            if (x == nMinus1) {
                witness = false;
                break;
            }
        }
        if (witness)
            return false;
    }
    return true;
}

BigUint
BigUint::generatePrime(std::size_t bits, Rng &rng)
{
    if (bits < 8)
        throw std::invalid_argument("generatePrime: too few bits");
    for (;;) {
        BigUint candidate = randomWithBits(bits, rng);
        if (!candidate.isOdd())
            candidate = candidate + fromU64(1);
        if (candidate.bitLength() != bits)
            continue;
        if (candidate.isProbablePrime(rng))
            return candidate;
    }
}

} // namespace monatt::crypto
