/**
 * @file
 * AES-128 (FIPS 197) block cipher and CTR mode, from scratch.
 *
 * AES-128-CTR is the record encryption on the SSL-like channels of
 * §3.4.1: after the handshake, each direction of a channel encrypts
 * message payloads under its session key (the Kx/Ky/Kz of Figure 3)
 * with a per-record counter block, then authenticates the ciphertext
 * with HMAC (encrypt-then-MAC). Verified against FIPS 197 / NIST
 * SP 800-38A test vectors.
 */

#ifndef MONATT_CRYPTO_AES_H
#define MONATT_CRYPTO_AES_H

#include <cstdint>

#include "common/bytes.h"

namespace monatt::crypto
{

/** AES block size in bytes. */
constexpr std::size_t kAesBlockSize = 16;

/** AES-128 key size in bytes. */
constexpr std::size_t kAes128KeySize = 16;

/** AES-128 with a precomputed key schedule. */
class Aes128
{
  public:
    /** Expand a 16-byte key. @throws std::invalid_argument on size. */
    explicit Aes128(const Bytes &key);

    /** Encrypt one 16-byte block in place. */
    void encryptBlock(std::uint8_t block[kAesBlockSize]) const;

    /**
     * CTR-mode keystream transform (encrypt == decrypt).
     *
     * The counter block is nonce (12 bytes) || 32-bit big-endian block
     * counter starting at 0.
     *
     * @param nonce 12-byte per-message nonce.
     * @param data Input buffer.
     * @return Transformed buffer of the same length.
     */
    Bytes ctrTransform(const Bytes &nonce, const Bytes &data) const;

  private:
    std::uint8_t roundKeys[176]; // 11 round keys x 16 bytes.
};

} // namespace monatt::crypto

#endif // MONATT_CRYPTO_AES_H
