/**
 * @file
 * HMAC-SHA-256 (RFC 2104) and HKDF (RFC 5869), from scratch.
 *
 * HMAC authenticates every record on the SSL-like secure channels of
 * §3.4.1 and underpins the HMAC-DRBG used by the Trust Module's RNG.
 * HKDF expands the master secret negotiated during the channel
 * handshake into the directional encryption and MAC keys (the Kx, Ky,
 * Kz session keys of Figure 3). Verified against RFC 4231/5869 test
 * vectors.
 */

#ifndef MONATT_CRYPTO_HMAC_H
#define MONATT_CRYPTO_HMAC_H

#include "common/bytes.h"

namespace monatt::crypto
{

/** Compute HMAC-SHA-256 over `data` with `key`. */
Bytes hmacSha256(const Bytes &key, const Bytes &data);

/** HKDF-Extract: PRK = HMAC(salt, ikm). */
Bytes hkdfExtract(const Bytes &salt, const Bytes &ikm);

/** HKDF-Expand: derive `length` bytes from PRK with context `info`. */
Bytes hkdfExpand(const Bytes &prk, const Bytes &info, std::size_t length);

/** One-shot HKDF (extract + expand). */
Bytes hkdf(const Bytes &salt, const Bytes &ikm, const Bytes &info,
           std::size_t length);

} // namespace monatt::crypto

#endif // MONATT_CRYPTO_HMAC_H
