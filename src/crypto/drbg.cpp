#include "crypto/drbg.h"

#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace monatt::crypto
{

HmacDrbg::HmacDrbg(const Bytes &seedMaterial)
    : key(kSha256DigestSize, 0x00), value(kSha256DigestSize, 0x01)
{
    update(seedMaterial);
}

void
HmacDrbg::update(const Bytes &providedData)
{
    Bytes data = value;
    data.push_back(0x00);
    append(data, providedData);
    key = hmacSha256(key, data);
    value = hmacSha256(key, value);
    if (!providedData.empty()) {
        data = value;
        data.push_back(0x01);
        append(data, providedData);
        key = hmacSha256(key, data);
        value = hmacSha256(key, value);
    }
}

void
HmacDrbg::reseed(const Bytes &entropy)
{
    update(entropy);
}

Bytes
HmacDrbg::generate(std::size_t n)
{
    Bytes out;
    out.reserve(n);
    while (out.size() < n) {
        value = hmacSha256(key, value);
        append(out, value);
    }
    out.resize(n);
    update({});
    return out;
}

Rng
HmacDrbg::forkRng()
{
    const Bytes seed = generate(8);
    std::uint64_t s = 0;
    for (int i = 0; i < 8; ++i)
        s |= static_cast<std::uint64_t>(seed[i]) << (8 * i);
    return Rng(s);
}

} // namespace monatt::crypto
