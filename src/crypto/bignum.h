/**
 * @file
 * Arbitrary-precision unsigned integers for RSA.
 *
 * A small big-integer implementation (little-endian 32-bit limbs,
 * schoolbook multiplication, Knuth Algorithm-D division) sized for the
 * 512-2048 bit moduli used by CloudMonatt's identity and attestation
 * keys. Not constant time — the simulated adversary is the Dolev-Yao
 * network attacker of §3.3, not a local timing attacker on the Trust
 * Module, which the paper assumes is protected hardware.
 */

#ifndef MONATT_CRYPTO_BIGNUM_H
#define MONATT_CRYPTO_BIGNUM_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"

namespace monatt::crypto
{

/** Arbitrary-precision unsigned integer. */
class BigUint
{
  public:
    /** Zero. */
    BigUint() = default;

    /** From a 64-bit value. */
    static BigUint fromU64(std::uint64_t v);

    /** From big-endian bytes (leading zeros allowed). */
    static BigUint fromBytes(const Bytes &be);

    /** From a hex string (for test fixtures). */
    static BigUint fromHexString(const std::string &hex);

    /**
     * To big-endian bytes.
     * @param width Pad with leading zeros to this width; 0 = minimal.
     * @throws std::invalid_argument if the value needs more bytes.
     */
    Bytes toBytes(std::size_t width = 0) const;

    /** Lowercase hex (minimal, "0" for zero). */
    std::string toHexString() const;

    /** Uniform random value with exactly `bits` bits (MSB set). */
    static BigUint randomWithBits(std::size_t bits, Rng &rng);

    /** Uniform random value in [2, bound-1]. */
    static BigUint randomBelow(const BigUint &bound, Rng &rng);

    bool isZero() const { return limb.empty(); }
    bool isOdd() const { return !limb.empty() && (limb[0] & 1); }

    /** Number of significant bits (0 for zero). */
    std::size_t bitLength() const;

    /** Value of bit i (0 = LSB). */
    bool bit(std::size_t i) const;

    /** Three-way comparison: -1, 0, +1. */
    static int compare(const BigUint &a, const BigUint &b);

    bool operator==(const BigUint &o) const { return compare(*this, o) == 0; }
    bool operator!=(const BigUint &o) const { return compare(*this, o) != 0; }
    bool operator<(const BigUint &o) const { return compare(*this, o) < 0; }
    bool operator<=(const BigUint &o) const { return compare(*this, o) <= 0; }
    bool operator>(const BigUint &o) const { return compare(*this, o) > 0; }
    bool operator>=(const BigUint &o) const { return compare(*this, o) >= 0; }

    BigUint operator+(const BigUint &o) const;

    /** Subtraction; @throws std::underflow_error when o > *this. */
    BigUint operator-(const BigUint &o) const;

    BigUint operator*(const BigUint &o) const;

    /** Quotient and remainder; @throws std::domain_error on /0. */
    static std::pair<BigUint, BigUint> divmod(const BigUint &num,
                                              const BigUint &den);

    BigUint operator/(const BigUint &o) const;
    BigUint operator%(const BigUint &o) const;

    /** Left shift by `bits`. */
    BigUint shiftLeft(std::size_t bits) const;

    /** Right shift by `bits`. */
    BigUint shiftRight(std::size_t bits) const;

    /** (this ^ exp) mod m, square-and-multiply. */
    BigUint modExp(const BigUint &exp, const BigUint &m) const;

    /** Greatest common divisor. */
    static BigUint gcd(BigUint a, BigUint b);

    /**
     * Modular inverse of *this mod m.
     * @throws std::domain_error when no inverse exists.
     */
    BigUint modInverse(const BigUint &m) const;

    /** Miller-Rabin probabilistic primality test. */
    bool isProbablePrime(Rng &rng, int rounds = 24) const;

    /** Generate a random probable prime with exactly `bits` bits. */
    static BigUint generatePrime(std::size_t bits, Rng &rng);

  private:
    void trim();

    /** Little-endian 32-bit limbs; empty == zero. */
    std::vector<std::uint32_t> limb;
};

} // namespace monatt::crypto

#endif // MONATT_CRYPTO_BIGNUM_H
