/**
 * @file
 * Arbitrary-precision unsigned integers for RSA.
 *
 * A small big-integer implementation (little-endian 32-bit limbs,
 * schoolbook multiplication, Knuth Algorithm-D division) sized for the
 * 512-2048 bit moduli used by CloudMonatt's identity and attestation
 * keys. Not constant time — the simulated adversary is the Dolev-Yao
 * network attacker of §3.3, not a local timing attacker on the Trust
 * Module, which the paper assumes is protected hardware.
 */

#ifndef MONATT_CRYPTO_BIGNUM_H
#define MONATT_CRYPTO_BIGNUM_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"

namespace monatt::crypto
{

class MontgomeryContext;

/**
 * Process-wide modular-exponentiation engine selector. Montgomery is
 * the default; Legacy forces the division-based ladder everywhere
 * (BigUint::modExp routes to modExpLegacy and the RSA key contexts
 * skip Montgomery precomputation). Exists for the before/after figure
 * benches and differential tests — production code never changes it.
 */
enum class ModExpEngine
{
    Montgomery,
    Legacy,
};

/** The currently selected engine. */
ModExpEngine modExpEngine() noexcept;

/** Select the engine (not thread-safe; set before spinning up work). */
void setModExpEngine(ModExpEngine engine) noexcept;

/** Arbitrary-precision unsigned integer. */
class BigUint
{
  public:
    /** Zero. */
    BigUint() = default;

    /** From a 64-bit value. */
    static BigUint fromU64(std::uint64_t v);

    /** From big-endian bytes (leading zeros allowed). */
    static BigUint fromBytes(const Bytes &be);

    /** From a hex string (for test fixtures). */
    static BigUint fromHexString(const std::string &hex);

    /**
     * To big-endian bytes.
     * @param width Pad with leading zeros to this width; 0 = minimal.
     * @throws std::invalid_argument if the value needs more bytes.
     */
    Bytes toBytes(std::size_t width = 0) const;

    /** Lowercase hex (minimal, "0" for zero). */
    std::string toHexString() const;

    /** Uniform random value with exactly `bits` bits (MSB set). */
    static BigUint randomWithBits(std::size_t bits, Rng &rng);

    /** Uniform random value in [2, bound-1]. */
    static BigUint randomBelow(const BigUint &bound, Rng &rng);

    bool isZero() const { return limb.empty(); }
    bool isOdd() const { return !limb.empty() && (limb[0] & 1); }

    /** Number of significant bits (0 for zero). */
    std::size_t bitLength() const;

    /** Value of bit i (0 = LSB). */
    bool bit(std::size_t i) const;

    /** Three-way comparison: -1, 0, +1. */
    static int compare(const BigUint &a, const BigUint &b);

    bool operator==(const BigUint &o) const { return compare(*this, o) == 0; }
    bool operator!=(const BigUint &o) const { return compare(*this, o) != 0; }
    bool operator<(const BigUint &o) const { return compare(*this, o) < 0; }
    bool operator<=(const BigUint &o) const { return compare(*this, o) <= 0; }
    bool operator>(const BigUint &o) const { return compare(*this, o) > 0; }
    bool operator>=(const BigUint &o) const { return compare(*this, o) >= 0; }

    BigUint operator+(const BigUint &o) const;

    /** Subtraction; @throws std::underflow_error when o > *this. */
    BigUint operator-(const BigUint &o) const;

    BigUint operator*(const BigUint &o) const;

    /** Quotient and remainder; @throws std::domain_error on /0. */
    static std::pair<BigUint, BigUint> divmod(const BigUint &num,
                                              const BigUint &den);

    BigUint operator/(const BigUint &o) const;
    BigUint operator%(const BigUint &o) const;

    /** Left shift by `bits`. */
    BigUint shiftLeft(std::size_t bits) const;

    /** Right shift by `bits`. */
    BigUint shiftRight(std::size_t bits) const;

    /**
     * (this ^ exp) mod m.
     *
     * Odd moduli route through a Montgomery-multiplication fixed-window
     * ladder (a one-shot MontgomeryContext); even moduli fall back to
     * the division-based square-and-multiply ladder. Callers that
     * exponentiate repeatedly under one modulus should build a
     * MontgomeryContext once and use the context overload.
     */
    BigUint modExp(const BigUint &exp, const BigUint &m) const;

    /** (this ^ exp) mod ctx.modulus(), reusing precomputed constants. */
    BigUint modExp(const BigUint &exp, const MontgomeryContext &ctx) const;

    /**
     * The original division-based square-and-multiply ladder. Kept as
     * the reference implementation for differential tests and the
     * old-vs-new benchmark; new code should call modExp.
     */
    BigUint modExpLegacy(const BigUint &exp, const BigUint &m) const;

    /** Greatest common divisor. */
    static BigUint gcd(BigUint a, BigUint b);

    /**
     * Modular inverse of *this mod m.
     * @throws std::domain_error when no inverse exists.
     */
    BigUint modInverse(const BigUint &m) const;

    /** Miller-Rabin probabilistic primality test. */
    bool isProbablePrime(Rng &rng, int rounds = 24) const;

    /** Generate a random probable prime with exactly `bits` bits. */
    static BigUint generatePrime(std::size_t bits, Rng &rng);

  private:
    friend class MontgomeryContext;

    void trim();

    /** Little-endian 32-bit limbs; empty == zero. */
    std::vector<std::uint32_t> limb;
};

/**
 * Precomputed constants for Montgomery modular arithmetic under one
 * fixed odd modulus n: the word inverse n' = -n^-1 mod 2^32, R mod n
 * and R^2 mod n for R = 2^(32*k). Exponentiation runs a fixed-window
 * ladder over CIOS Montgomery products, replacing the per-step Knuth
 * division of the legacy ladder with word-level reductions.
 *
 * RSA moduli, primes and CRT factors are always odd, so every protocol
 * exponentiation qualifies. Construction costs one division (for
 * R^2 mod n); the per-key context caches in the Trust Module, the
 * secure channels and the Attestation Server exist to pay it once per
 * key instead of once per operation.
 */
class MontgomeryContext
{
  public:
    /** @throws std::domain_error when `modulus` is even or zero. */
    explicit MontgomeryContext(const BigUint &modulus);

    const BigUint &modulus() const { return m; }

    /** (base ^ exp) mod modulus(). */
    BigUint modExp(const BigUint &base, const BigUint &exp) const;

  private:
    using Limbs = std::vector<std::uint32_t>;

    /** out = a * b * R^-1 mod n (CIOS). All vectors are k limbs. */
    void montMul(const Limbs &a, const Limbs &b, Limbs &out) const;

    /** Convert into / out of the Montgomery domain. */
    Limbs toMont(const BigUint &value) const;
    BigUint fromMont(const Limbs &value) const;

    BigUint m;
    Limbs n;                  //!< Modulus limbs (size k).
    Limbs rModN;              //!< R mod n (1 in Montgomery form).
    Limbs rrModN;             //!< R^2 mod n.
    std::uint32_t nPrime = 0; //!< -n^-1 mod 2^32.
};

} // namespace monatt::crypto

#endif // MONATT_CRYPTO_BIGNUM_H
