/**
 * @file
 * SHA-256 (FIPS 180-4), implemented from scratch.
 *
 * SHA-256 is the single hash used throughout CloudMonatt: PCR extend
 * operations in the TPM emulator, the quote values Q1/Q2/Q3 of the
 * Figure-3 protocol (Q = H(Vid || rM || M || N)), measurement digests
 * in the Integrity Measurement Unit, and as the compression function
 * inside HMAC and HMAC-DRBG. Verified against the FIPS test vectors
 * in tests/crypto/sha256_test.cpp.
 */

#ifndef MONATT_CRYPTO_SHA256_H
#define MONATT_CRYPTO_SHA256_H

#include <cstdint>

#include "common/bytes.h"

namespace monatt::crypto
{

/** Digest size in bytes. */
constexpr std::size_t kSha256DigestSize = 32;

/** Incremental SHA-256 context. */
class Sha256
{
  public:
    Sha256();

    /** Absorb more input. */
    void update(const Bytes &data);

    /** Absorb raw memory. */
    void update(const std::uint8_t *data, std::size_t len);

    /** Finalize and return the 32-byte digest; context becomes reset. */
    Bytes digest();

    /** One-shot convenience. */
    static Bytes hash(const Bytes &data);

    /** Hash the concatenation of several buffers. */
    static Bytes hashConcat(std::initializer_list<const Bytes *> parts);

  private:
    void processBlock(const std::uint8_t *block);
    void reset();

    std::uint32_t state[8];
    std::uint64_t totalBits;
    std::uint8_t buffer[64];
    std::size_t bufferLen;
};

} // namespace monatt::crypto

#endif // MONATT_CRYPTO_SHA256_H
