#include "core/cloud.h"

#include <stdexcept>

#include "common/logging.h"
#include "crypto/sha256.h"
#include "server/catalog.h"
#include "sim/worker_pool.h"

namespace monatt::core
{

Bytes
expectedBootPcr(const Bytes &code)
{
    const Bytes zero(crypto::kSha256DigestSize, 0x00);
    const Bytes codeDigest = crypto::Sha256::hash(code);
    return crypto::Sha256::hashConcat({&zero, &codeDigest});
}

Bytes
expectedPlatformDigest(const Bytes &hypervisorCode, const Bytes &hostOsCode)
{
    Bytes digest = expectedBootPcr(hypervisorCode);
    append(digest, expectedBootPcr(hostOsCode));
    return digest;
}

Cloud::Cloud(CloudConfig config)
    : cfg(std::move(config)), fabric(eventQueue)
{
    sim::WorkerPool::configureGlobal(cfg.computeThreads);
    fabric.setDefaultLink(cfg.link);

    // Pre-generate every entity's long-term keys on the compute plane:
    // the derivations are independent and deterministic per entity, so
    // fanning them out changes construction wall-clock only, never the
    // keys (each equals what the entity would derive inline).
    const int numAs = std::max(cfg.numAttestationServers, 1);
    std::vector<std::string> asIds(static_cast<std::size_t>(numAs));
    for (int i = 0; i < numAs; ++i) {
        asIds[static_cast<std::size_t>(i)] =
            i == 0 ? "attestation-server"
                   : "attestation-server-" + std::to_string(i + 1);
    }
    std::vector<std::string> serverIds(
        static_cast<std::size_t>(cfg.numServers));
    for (int i = 0; i < cfg.numServers; ++i)
        serverIds[static_cast<std::size_t>(i)] =
            "server-" + std::to_string(i + 1);

    // Controller shards. Shard 0 keeps the classic id and key seed so
    // a 1-shard deployment is bit-identical to the pre-sharding cloud.
    const int numShards = std::max(cfg.controllerShards, 1);
    std::vector<std::string> shardIds(static_cast<std::size_t>(numShards));
    std::vector<std::uint64_t> shardSeeds(
        static_cast<std::size_t>(numShards));
    for (int k = 0; k < numShards; ++k) {
        const auto idx = static_cast<std::size_t>(k);
        shardIds[idx] = k == 0 ? "cloud-controller"
                               : "controller-shard-" + std::to_string(k);
        shardSeeds[idx] =
            cfg.seed ^
            (0x3 + static_cast<std::uint64_t>(k) * 0x100000ULL);
    }

    // Every controller node id (all replicas of all shards): the
    // servers and Attestation Servers must accept commands from any
    // replica that may become leader.
    const int numReplicas = std::max(cfg.controllerReplicas, 1);
    std::vector<std::string> controllerNodeIds;
    controllerNodeIds.reserve(shardIds.size() *
                              static_cast<std::size_t>(numReplicas));
    for (const std::string &base : shardIds) {
        for (int r = 0; r < numReplicas; ++r)
            controllerNodeIds.push_back(controller::replicaId(base, r));
    }

    crypto::RsaKeyPair pcaKeys;
    std::vector<crypto::RsaKeyPair> asKeys(asIds.size());
    std::vector<crypto::RsaKeyPair> ccKeys(shardIds.size());
    std::vector<crypto::RsaKeyPair> serverKeys(serverIds.size());
    std::vector<crypto::RsaKeyPair> tpmKeys(serverIds.size());

    std::vector<std::function<void()>> keygen;
    keygen.push_back([&] {
        pcaKeys = attestation::PrivacyCa::deriveKeys("privacy-ca",
                                                     cfg.seed ^ 0x1);
    });
    for (std::size_t i = 0; i < asIds.size(); ++i) {
        keygen.push_back([&, i] {
            asKeys[i] = attestation::AttestationServer::deriveIdentityKeys(
                asIds[i], cfg.seed ^ (0x2 + i * 0x1000),
                cfg.identityKeyBits);
        });
    }
    for (std::size_t k = 0; k < shardIds.size(); ++k) {
        keygen.push_back([&, k] {
            ccKeys[k] = controller::CloudController::deriveIdentityKeys(
                shardIds[k], shardSeeds[k], cfg.identityKeyBits);
        });
    }
    for (std::size_t i = 0; i < serverIds.size(); ++i) {
        const std::uint64_t seed = cfg.seed + 100 + i;
        keygen.push_back([&, i, seed] {
            serverKeys[i] = server::CloudServer::deriveIdentityKeys(
                serverIds[i], seed, cfg.identityKeyBits);
        });
        keygen.push_back([&, i, seed] {
            tpmKeys[i] = tpm::TrustModule::deriveTpmKey(
                serverIds[i],
                server::CloudServer::entropySeed(serverIds[i], seed));
        });
    }
    sim::WorkerPool::global().parallelFor(
        keygen.size(), [&](std::size_t i) { keygen[i](); });

    // Trusted infrastructure entities.
    pca = std::make_unique<attestation::PrivacyCa>(
        eventQueue, fabric, keyDirectory, "privacy-ca", cfg.timing,
        cfg.seed ^ 0x1, cfg.cryptoBatchWindow, std::move(pcaKeys));
    pca->setDurable(cfg.durableControlPlane);
    pca->setIssuedCacheCapacity(cfg.dedupCacheCapacity);
    pca->setCheckpointPolicy(cfg.checkpointPolicy);
    pca->setWireContext(cfg.wire);
    keyDirectory.publish("privacy-ca", pca->publicKey());

    for (int i = 0; i < numAs; ++i) {
        attestation::AttestationServerConfig asCfg;
        if (i > 0)
            asCfg.id = asIds[static_cast<std::size_t>(i)];
        asCfg.timing = cfg.timing;
        asCfg.reliability = cfg.reliability;
        asCfg.controllerIds.insert(controllerNodeIds.begin(),
                                   controllerNodeIds.end());
        asCfg.identityKeyBits = cfg.identityKeyBits;
        asCfg.enableVerificationCaches = cfg.enableAttestationCaches;
        asCfg.batchWindow = cfg.cryptoBatchWindow;
        asCfg.durable = cfg.durableControlPlane;
        asCfg.checkpointPolicy = cfg.checkpointPolicy;
        asCfg.reportCacheCapacity = cfg.dedupCacheCapacity;
        asCfg.tcbPolicy.fleetFloor = cfg.minimumTcbVersion;
        asCfg.tcbPolicy.propertyFloors = cfg.tcbPropertyFloors;
        asCfg.wire = cfg.wire;
        asCfg.presetIdentityKeys =
            std::move(asKeys[static_cast<std::size_t>(i)]);
        auto as = std::make_unique<attestation::AttestationServer>(
            eventQueue, fabric, keyDirectory, asCfg,
            cfg.seed ^ (0x2 + static_cast<std::uint64_t>(i) * 0x1000));
        keyDirectory.publish(as->id(), as->identityPublic());
        attestors.push_back(std::move(as));
    }

    std::vector<controller::CloudControllerConfig> shardConfigs;
    shardConfigs.reserve(shardIds.size());
    for (std::size_t k = 0; k < shardIds.size(); ++k) {
        controller::CloudControllerConfig ccCfg;
        ccCfg.id = shardIds[k];
        ccCfg.timing = cfg.timing;
        ccCfg.reliability = cfg.reliability;
        ccCfg.attestorIds = asIds;
        ccCfg.identityKeyBits = cfg.identityKeyBits;
        ccCfg.batchWindow = cfg.cryptoBatchWindow;
        ccCfg.durable = cfg.durableControlPlane;
        ccCfg.checkpointPolicy = cfg.checkpointPolicy;
        ccCfg.relayCacheCapacity = cfg.dedupCacheCapacity;
        ccCfg.wire = cfg.wire;
        ccCfg.presetIdentityKeys = std::move(ccKeys[k]);
        shardConfigs.push_back(std::move(ccCfg));
    }
    controlPlane = std::make_unique<controller::ControllerFabric>(
        eventQueue, fabric, keyDirectory, std::move(shardConfigs),
        shardSeeds, cfg.controllerRingVirtualNodes, numReplicas,
        cfg.controllerElection);
    for (std::size_t i = 0; i < controlPlane->numNodes(); ++i) {
        controller::CloudController &node = controlPlane->node(i);
        keyDirectory.publish(node.id(), node.identityPublic());
    }

    // Flavor definitions shared with the servers' catalog.
    for (const server::VmFlavor &f : server::flavorCatalog())
        controlPlane->addFlavor(f.name, f.vcpus, f.ramMb, f.diskGb);

    // Known-good catalog image digests for the IMA-style appraiser.
    for (auto &as : attestors) {
        for (const server::VmImage &img : server::imageCatalog())
            as->addKnownGoodImage(crypto::Sha256::hash(img.content));
    }

    // Cloud servers.
    std::set<proto::SecurityProperty> caps = cfg.serverCapabilities;
    if (caps.empty()) {
        for (proto::SecurityProperty p : proto::allProperties())
            caps.insert(p);
    }

    for (int i = 0; i < cfg.numServers; ++i) {
        attestation::AttestationServer &clusterAs =
            *attestors[static_cast<std::size_t>(i) % attestors.size()];
        server::CloudServerConfig scfg;
        scfg.id = "server-" + std::to_string(i + 1);
        scfg.controllerId = controlPlane->shard(0).id();
        scfg.controllerIds.insert(controllerNodeIds.begin(),
                                  controllerNodeIds.end());
        scfg.attestationServerId = clusterAs.id();
        scfg.pcaId = pca->id();
        scfg.capabilities = caps;
        scfg.pcpus = cfg.serverPcpus;
        scfg.sched = cfg.sched;
        scfg.hypervisorCode = cfg.hypervisorCode;
        scfg.hostOsCode = cfg.hostOsCode;
        scfg.firmwareVersion = cfg.serverFirmwareVersion;
        scfg.timing = cfg.timing;
        scfg.reliability = cfg.reliability;
        scfg.attestorIds.insert(asIds.begin(), asIds.end());
        scfg.identityKeyBits = cfg.identityKeyBits;
        scfg.aikBits = cfg.aikBits;
        scfg.intrusivePause = cfg.serverIntrusivePause;
        scfg.aikReuseLimit =
            cfg.enableAttestationCaches ? cfg.aikReuseLimit : 1;
        scfg.batchWindow = cfg.cryptoBatchWindow;
        scfg.wire = cfg.wire;
        scfg.presetIdentityKeys =
            std::move(serverKeys[static_cast<std::size_t>(i)]);
        scfg.presetTpmKey = std::move(tpmKeys[static_cast<std::size_t>(i)]);

        auto srv = std::make_unique<server::CloudServer>(
            eventQueue, fabric, keyDirectory, scfg,
            cfg.seed + 100 + static_cast<std::uint64_t>(i));
        keyDirectory.publish(srv->id(), srv->identityPublic());

        controller::ServerRecord record;
        record.id = srv->id();
        record.capabilities = caps;
        record.totalRamMb = scfg.totalRamMb;
        record.totalDiskGb = scfg.totalDiskGb;
        controlPlane->addServerRecord(record);

        // Every AS gets every server's reference data: under failover
        // any attestor may be asked to appraise any server.
        attestation::ServerReference ref;
        ref.expectedPlatformDigest =
            expectedPlatformDigest(cfg.hypervisorCode, cfg.hostOsCode);
        for (auto &as : attestors)
            as->setServerReference(srv->id(), ref);
        controlPlane->assignAttestationCluster(srv->id(), clusterAs.id());

        srv->boot();
        servers.push_back(std::move(srv));
    }
}

Customer &
Cloud::addCustomer(const std::string &id)
{
    std::vector<std::vector<std::string>> groups;
    groups.reserve(controlPlane->numShards());
    for (std::size_t k = 0; k < controlPlane->numShards(); ++k)
        groups.push_back(controlPlane->groupIds(k));
    auto customer = std::make_unique<Customer>(
        eventQueue, fabric, keyDirectory, id,
        controlPlane->shard(0).id(),
        cfg.seed + 10000 + customers.size(), cfg.reliability,
        &controlPlane->ring(), std::move(groups));
    customer->setWireContext(cfg.wire);
    keyDirectory.publish(id, customer->identityPublic());
    customers.push_back(std::move(customer));
    return *customers.back();
}

server::CloudServer &
Cloud::server(std::size_t index)
{
    return *servers.at(index);
}

server::CloudServer *
Cloud::serverById(const std::string &id)
{
    for (auto &srv : servers) {
        if (srv->id() == id)
            return srv.get();
    }
    return nullptr;
}

server::CloudServer *
Cloud::serverHosting(const std::string &vid)
{
    for (auto &srv : servers) {
        if (srv->hasVm(vid))
            return srv.get();
    }
    return nullptr;
}

void
Cloud::installFaultPlan(const sim::FaultPlanConfig &planConfig)
{
    plan = std::make_unique<sim::FaultPlan>(planConfig);
    fabric.setFaultPlan(plan.get());
    // Arm the disk-side axes on every durable store (nullptr when no
    // storage axis is configured: the stores keep the clean path).
    const sim::StorageFaultModel *storage = plan->storage();
    for (std::size_t i = 0; i < controlPlane->numNodes(); ++i)
        controlPlane->node(i).setStorageFaults(storage);
    for (auto &as : attestors)
        as->setStorageFaults(storage);
    pca->setStorageFaults(storage);
    // Arm the TCB-rollback attacker on every server's measurement
    // path (nullptr when no rollback axis is configured).
    const sim::RollbackFaultModel *rollback = plan->rollback();
    for (auto &srv : servers) {
        srv->setRollbackFaults(rollback, planConfig.activeFrom,
                               planConfig.activeUntil);
    }
    plan->installCrashSchedule(
        eventQueue,
        [this](const std::string &node) {
            const Status st = crashNode(node);
            if (!st)
                MONATT_LOG(Warn, "cloud") << st.errorMessage();
        },
        [this](const std::string &node) {
            const Status st = restartNode(node);
            if (!st)
                MONATT_LOG(Warn, "cloud") << st.errorMessage();
        });
}

Status
Cloud::crashNode(const std::string &node)
{
    if (server::CloudServer *srv = serverById(node)) {
        srv->crash();
        return Status::ok();
    }
    for (auto &as : attestors) {
        if (as->id() == node) {
            as->crash();
            return Status::ok();
        }
    }
    if (controller::CloudController *shard =
            controlPlane->shardById(node)) {
        shard->crash();
        return Status::ok();
    }
    if (node == pca->id()) {
        pca->crash();
        return Status::ok();
    }
    return Status::error("crash scheduled for unknown node \"" + node +
                         "\": no server, attestor, controller shard "
                         "replica or pCA has that id");
}

Status
Cloud::restartNode(const std::string &node)
{
    if (server::CloudServer *srv = serverById(node)) {
        srv->restart();
        return Status::ok();
    }
    for (auto &as : attestors) {
        if (as->id() == node) {
            as->restart();
            return Status::ok();
        }
    }
    if (controller::CloudController *shard =
            controlPlane->shardById(node)) {
        shard->restart();
        return Status::ok();
    }
    if (node == pca->id()) {
        pca->restart();
        return Status::ok();
    }
    return Status::error("restart scheduled for unknown node \"" + node +
                         "\": no server, attestor, controller shard "
                         "replica or pCA has that id");
}

Status
Cloud::setNodeWireContext(const std::string &node,
                          const proto::WireContext &ctx)
{
    if (server::CloudServer *srv = serverById(node)) {
        srv->setWireContext(ctx);
        return Status::ok();
    }
    for (auto &as : attestors) {
        if (as->id() == node) {
            as->setWireContext(ctx);
            return Status::ok();
        }
    }
    if (controller::CloudController *shard =
            controlPlane->shardById(node)) {
        shard->setWireContext(ctx);
        return Status::ok();
    }
    if (node == pca->id()) {
        pca->setWireContext(ctx);
        return Status::ok();
    }
    for (auto &customer : customers) {
        if (customer->id() == node) {
            customer->setWireContext(ctx);
            return Status::ok();
        }
    }
    return Status::error("wire-context switch for unknown node \"" +
                         node +
                         "\": no server, attestor, controller shard "
                         "replica, pCA or customer has that id");
}

void
Cloud::runFor(SimTime duration)
{
    eventQueue.advance(duration);
}

bool
Cloud::runUntil(const std::function<bool()> &predicate, SimTime timeout)
{
    const SimTime deadline = eventQueue.now() + timeout;
    for (;;) {
        if (predicate())
            return true;
        const SimTime next = eventQueue.nextEventTime();
        if (next == kTimeNever || next > deadline) {
            // Nothing (in time) left to run; settle the clock.
            if (deadline > eventQueue.now())
                eventQueue.run(deadline);
            return predicate();
        }
        eventQueue.runOne();
    }
}

Result<std::string>
Cloud::launchVm(Customer &customer, const std::string &name,
                const std::string &imageName,
                const std::string &flavorName,
                const std::vector<proto::SecurityProperty> &properties,
                SimTime timeout)
{
    const server::VmImage &img = server::image(imageName);
    return launchVmWithImage(customer, name, imageName, flavorName,
                             properties, img.content, img.sizeMb,
                             timeout);
}

Result<std::string>
Cloud::launchVmWithImage(
    Customer &customer, const std::string &name,
    const std::string &imageName, const std::string &flavorName,
    const std::vector<proto::SecurityProperty> &properties,
    const Bytes &imageContent, std::uint64_t imageSizeMb, SimTime timeout)
{
    const std::uint64_t requestId = customer.requestLaunch(
        name, imageName, flavorName, properties, imageContent,
        imageSizeMb);

    const bool done = runUntil(
        [&] {
            const LaunchOutcome *outcome =
                customer.launchOutcome(requestId);
            return outcome && outcome->done;
        },
        timeout);
    if (!done)
        return Result<std::string>::error("launch timed out");

    const LaunchOutcome *outcome = customer.launchOutcome(requestId);
    if (!outcome->ok)
        return Result<std::string>::error(outcome->error);
    return Result<std::string>::ok(outcome->vid);
}

namespace
{

/** True once a request left the Pending state. */
bool
attestSettled(const Customer &customer, std::uint64_t requestId)
{
    return customer.outcomeFor(requestId).state !=
           AttestationOutcome::Pending;
}

/** Map a settled request to the blocking-helper result. */
Result<VerifiedReport>
attestResult(const Customer &customer, std::uint64_t requestId)
{
    const auto reports = customer.reportsFor(requestId);
    if (!reports.empty())
        return Result<VerifiedReport>::ok(*reports.front());
    const AttestOutcomeRecord rec = customer.outcomeFor(requestId);
    switch (rec.state) {
      case AttestationOutcome::Pending:
        return Result<VerifiedReport>::error("attestation timed out");
      case AttestationOutcome::Unreachable:
        return Result<VerifiedReport>::error(
            rec.reason.empty() ? "attestation service unreachable"
                               : rec.reason);
      default:
        return Result<VerifiedReport>::error(
            rec.reason.empty() ? "attestation failed" : rec.reason);
    }
}

} // namespace

Result<VerifiedReport>
Cloud::attestOnce(Customer &customer, const std::string &vid,
                  const std::vector<proto::SecurityProperty> &properties,
                  SimTime timeout)
{
    const std::uint64_t requestId =
        customer.runtimeAttestCurrent(vid, properties);
    runUntil([&] { return attestSettled(customer, requestId); }, timeout);
    return attestResult(customer, requestId);
}

std::vector<Result<VerifiedReport>>
Cloud::attestMany(Customer &customer,
                  const std::vector<std::string> &vids,
                  const std::vector<proto::SecurityProperty> &properties,
                  SimTime timeout)
{
    // Issue every request before running the simulation, so the whole
    // fan-out is in flight concurrently and the entities' batching
    // windows see it as overlapping work.
    std::vector<std::uint64_t> requestIds;
    requestIds.reserve(vids.size());
    for (const std::string &vid : vids)
        requestIds.push_back(customer.runtimeAttestCurrent(vid, properties));

    runUntil(
        [&] {
            for (std::uint64_t id : requestIds) {
                if (!attestSettled(customer, id))
                    return false;
            }
            return true;
        },
        timeout);

    std::vector<Result<VerifiedReport>> results;
    results.reserve(vids.size());
    for (std::uint64_t id : requestIds)
        results.push_back(attestResult(customer, id));
    return results;
}

void
Cloud::provisionVmReference(const std::string &vid,
                            attestation::VmReference ref)
{
    for (auto &as : attestors)
        as->setVmReference(vid, ref);
}

} // namespace monatt::core
