/**
 * @file
 * The Cloud facade: a complete CloudMonatt deployment in one object.
 *
 * Wires the four entities of Figure 1 over the simulated network:
 * customers, the Cloud Controller, the Attestation Server (plus the
 * privacy CA), and a configurable number of secure cloud servers.
 * Handles the trusted provisioning the paper assumes exists: identity
 * keys published to the certificate infrastructure, server capability
 * records in the controller's database, flavor definitions, known-good
 * platform digests and catalog image digests in the Attestation
 * Server's database.
 *
 * Blocking helpers (launchVm, attestOnce) drive the event queue until
 * the asynchronous protocol completes — they are conveniences for
 * tests, examples and benches; everything underneath is genuinely
 * message driven.
 */

#ifndef MONATT_CORE_CLOUD_H
#define MONATT_CORE_CLOUD_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "attestation/attestation_server.h"
#include "attestation/privacy_ca.h"
#include "controller/cloud_controller.h"
#include "controller/controller_fabric.h"
#include "core/customer.h"
#include "net/network.h"
#include "net/secure_endpoint.h"
#include "server/cloud_server.h"
#include "sim/checkpoint_policy.h"
#include "sim/event_queue.h"
#include "sim/fault_plan.h"

namespace monatt::core
{

/** Deployment configuration. */
struct CloudConfig
{
    int numServers = 2;

    /** Attestation Servers; servers are assigned round-robin to
     * clusters (§3.2.3 scalability). */
    int numAttestationServers = 1;
    std::uint64_t seed = 20150613;
    proto::TimingModel timing;
    net::LinkParams link; //!< 1 Gbps, 100 us by default.
    hypervisor::CreditScheduler::Params sched;
    int serverPcpus = 4;

    /** Capabilities granted to every server; empty = all four. */
    std::set<proto::SecurityProperty> serverCapabilities;

    /** Pristine platform software (measured at boot). */
    Bytes hypervisorCode = toBytes("xen-4.2.1-pristine");
    Bytes hostOsCode = toBytes("dom0-linux-3.11-pristine");

    /**
     * Firmware TCB version every server boots with (reported in the
     * TcbVersion measurement when an AS demands it). A rolled-back
     * host reports the fault plan's downgraded version instead.
     */
    std::uint64_t serverFirmwareVersion = 2;

    /**
     * Minimum-TCB policy installed on every Attestation Server
     * (DESIGN.md §18): 0 (the default) disarms the policy and keeps
     * legacy golden traces byte-identical; a positive floor makes the
     * AS demand the TcbVersion measurement and fail any property with
     * TcbRollback when the host's firmware is below it (or when a
     * stale quote is replayed). Per-property overrides beat the floor.
     */
    std::uint64_t minimumTcbVersion = 0;
    std::map<proto::SecurityProperty, std::uint64_t> tcbPropertyFloors;

    std::size_t identityKeyBits = 512;
    std::size_t aikBits = 512;

    /** Ablation: intercepting measurement collection (see
     * server::CloudServerConfig::intrusivePause). */
    SimTime serverIntrusivePause = 0;

    /**
     * Attestation fast-path caches: AVK session reuse on the servers
     * (server::CloudServerConfig::aikReuseLimit) plus certificate
     * verification memoization on the Attestation Servers. Disabling
     * reproduces the paper's fresh-key-per-attestation flow on every
     * round.
     */
    bool enableAttestationCaches = true;
    std::uint64_t aikReuseLimit = 16;

    /**
     * Worker threads for the deterministic compute plane (the global
     * sim::WorkerPool): 0 = one per hardware thread, 1 = legacy
     * serial execution. The MONATT_THREADS environment variable
     * overrides this value. Any setting yields bit-identical
     * simulations — the pool only runs pure compute and results are
     * always joined in submission order.
     */
    std::size_t computeThreads = 0;

    /**
     * Fan-in batching window for attestation crypto at every entity
     * (servers, attestation servers, pCA, controller). Work maturing
     * within the window of the first item runs as one compute-plane
     * batch. 0 still batches same-timestamp work; composition depends
     * only on simulated time, never on the host thread count.
     */
    SimTime cryptoBatchWindow = 0;

    /**
     * End-to-end reliability layer: retransmission timers, receive-side
     * dedup, AS failover, terminal verdicts. On by default in the full
     * deployment; fault-free runs are unperturbed because every timer
     * is schedule-then-cancel (see proto::ReliabilityModel).
     */
    proto::ReliabilityModel reliability =
        proto::ReliabilityModel::enabledDefaults();

    /**
     * Durable control plane: the controller, Attestation Servers and
     * pCA journal their recoverable state to write-ahead StableStores
     * and replay it on restart. Journal writes cost zero simulated
     * time and recovery only runs after a crash, so clean-wire runs
     * are byte-identical either way (bench_recovery A/Bs this knob).
     */
    bool durableControlPlane = true;

    /** Journal-compaction triggers (count / size / age) passed to
     * every durable entity. */
    sim::CheckpointPolicyConfig checkpointPolicy;

    /**
     * Controller shards behind the consistent-hash fabric. 1 (the
     * default) reproduces the classic single Cloud Controller
     * bit-for-bit: same node id, same key seed, same vid/attest-id
     * spaces, same message bytes. Larger values split VM ownership
     * across independent shards (each with its own journal, dedup
     * cache and adaptive RTO state); customers route every request to
     * the owning shard client-side via the ring.
     */
    int controllerShards = 1;

    /** Virtual nodes per shard on the ownership ring. */
    int controllerRingVirtualNodes =
        controller::HashRing::kDefaultVirtualNodes;

    /**
     * Replicas per controller shard. 1 (the default) runs each shard
     * as the classic unreplicated controller, bit-identical to the
     * pre-replication cloud. Larger values give every shard a replica
     * group: the leader streams its journal to the followers and
     * releases externally visible output only once a majority holds
     * it durably; when a leader crashes, a follower wins a
     * deterministic election and resumes from the mirrored journal.
     * Replica 0 keeps the shard's base id; replica r is
     * "<base-id>-replica-<r>". Only base ids sit on the ownership
     * ring, so replica failures never remap VM ownership. Forces the
     * durable control plane on (the journal is what streams).
     */
    int controllerReplicas = 1;

    /**
     * Replication heartbeat / election tuning (heartbeatInterval,
     * electionTimeoutMin/Max). Election timeouts are drawn
     * deterministically per (replica, round), so a fixed seed elects
     * the same leader every run. Ignored at controllerReplicas = 1.
     */
    controller::ElectionTuning controllerElection;

    /**
     * Bound for every receive-side dedup cache (controller relay
     * cache, AS report cache, pCA issued-certificate cache). FIFO
     * eviction, deterministic order; tests shrink it to force
     * eviction.
     */
    std::size_t dedupCacheCapacity = 128;

    /**
     * Wire codec every node emits (DESIGN.md §17). Legacy (the
     * default) is the canonical fixed-width encoding and keeps all
     * golden traces bit-identical; Tagged switches nodes to the
     * schema-evolvable tag||value codec. Frames are self-describing,
     * so a mixed fleet interoperates without negotiation — flip
     * individual nodes at runtime with setNodeWireContext() to
     * simulate a rolling codec upgrade.
     */
    proto::WireContext wire;
};

/** The deployment. */
class Cloud
{
  public:
    explicit Cloud(CloudConfig config = {});

    /** Create (and register) a customer. */
    Customer &addCustomer(const std::string &id);

    // --- Entity access -------------------------------------------------

    /** Shard 0 — the classic controller (id "cloud-controller"). */
    controller::CloudController &controller()
    {
        return controlPlane->shard(0);
    }

    /** The sharded control plane. */
    controller::ControllerFabric &controllerFabric()
    {
        return *controlPlane;
    }

    /** The controller shard owning a VM id. */
    controller::CloudController &controllerFor(const std::string &vid)
    {
        return controlPlane->ownerOf(vid);
    }

    /** The first (default) attestation server. */
    attestation::AttestationServer &attestationServer()
    {
        return *attestors.front();
    }

    /** Attestation server by cluster index. */
    attestation::AttestationServer &attestationServer(std::size_t index)
    {
        return *attestors.at(index);
    }

    std::size_t numAttestationServers() const { return attestors.size(); }
    attestation::PrivacyCa &privacyCa() { return *pca; }
    server::CloudServer &server(std::size_t index);
    server::CloudServer *serverById(const std::string &id);
    std::size_t numServers() const { return servers.size(); }

    /** The server currently hosting a VM (nullptr when none). */
    server::CloudServer *serverHosting(const std::string &vid);

    sim::EventQueue &events() { return eventQueue; }
    net::Network &network() { return fabric; }
    net::KeyDirectory &directory() { return keyDirectory; }
    const CloudConfig &config() const { return cfg; }

    // --- Fault injection -----------------------------------------------

    /**
     * Install a deterministic fault plan on the fabric and schedule
     * its crash/restart events (CloudServer and AttestationServer ids
     * resolve to real teardown/rejoin; other ids are ignored). Call
     * before driving the simulation. Passing a default-constructed
     * config effectively disables fault injection.
     */
    void installFaultPlan(const sim::FaultPlanConfig &planConfig);

    /** The installed plan (nullptr when none). */
    const sim::FaultPlan *faultPlan() const { return plan.get(); }

    /**
     * Crash / restart one node by id (used by the crash schedule;
     * public so tests can script outages directly). Resolves cloud
     * servers, Attestation Servers, controller shards and the pCA.
     *
     * @return An error naming the node when it matches no entity —
     *   a silently ignored typo in a fault plan would otherwise turn
     *   a chaos test into a clean-wire run.
     */
    Status crashNode(const std::string &node);
    Status restartNode(const std::string &node);

    /**
     * Switch one node's emitted wire format at runtime (rolling
     * codec upgrade simulation). Resolves cloud servers, Attestation
     * Servers, controller shard replicas, the pCA and customers. The
     * node keeps decoding both formats — only what it sends (and,
     * for durable entities, what it journals) changes.
     */
    Status setNodeWireContext(const std::string &node,
                              const proto::WireContext &ctx);

    /** Convenience: restart every crashed controller shard (each
     * replays its own journal). */
    void restartController() { controlPlane->restartAll(); }

    // --- Simulation driving --------------------------------------------

    /** Advance simulated time by `duration`. */
    void runFor(SimTime duration);

    /**
     * Run until `predicate` becomes true or `timeout` elapses.
     * @return True when the predicate fired.
     */
    bool runUntil(const std::function<bool()> &predicate, SimTime timeout);

    // --- Blocking conveniences ------------------------------------------

    /**
     * Launch a VM from the standard catalog and wait for the outcome.
     *
     * @return The vid on success.
     */
    Result<std::string> launchVm(
        Customer &customer, const std::string &name,
        const std::string &imageName, const std::string &flavorName,
        const std::vector<proto::SecurityProperty> &properties,
        SimTime timeout = seconds(120));

    /** Launch with custom image content (e.g. a tampered image). */
    Result<std::string> launchVmWithImage(
        Customer &customer, const std::string &name,
        const std::string &imageName, const std::string &flavorName,
        const std::vector<proto::SecurityProperty> &properties,
        const Bytes &imageContent, std::uint64_t imageSizeMb,
        SimTime timeout = seconds(120));

    /** One-shot attestation; waits for the verified report. */
    Result<VerifiedReport> attestOnce(
        Customer &customer, const std::string &vid,
        const std::vector<proto::SecurityProperty> &properties,
        SimTime timeout = seconds(120));

    /**
     * Fan out one-shot attestations for all `vids` at once and wait
     * until every verified report arrived (or `timeout` simulated time
     * passed). The concurrent requests exercise the batched crypto
     * paths end to end: AIK preparation, pCA certification, quote
     * signing, verification and report relay all fan in. Results are
     * returned in `vids` order.
     */
    std::vector<Result<VerifiedReport>> attestMany(
        Customer &customer, const std::vector<std::string> &vids,
        const std::vector<proto::SecurityProperty> &properties,
        SimTime timeout = seconds(120));

    /** Register per-VM reference data with the Attestation Server. */
    void provisionVmReference(const std::string &vid,
                              attestation::VmReference ref);

  private:
    CloudConfig cfg;
    sim::EventQueue eventQueue;
    net::Network fabric;
    net::KeyDirectory keyDirectory;

    std::unique_ptr<attestation::PrivacyCa> pca;
    std::vector<std::unique_ptr<attestation::AttestationServer>> attestors;
    std::unique_ptr<controller::ControllerFabric> controlPlane;
    std::vector<std::unique_ptr<server::CloudServer>> servers;
    std::vector<std::unique_ptr<Customer>> customers;
    std::unique_ptr<sim::FaultPlan> plan;
};

/** Expected PCR value after one extend of `code` over a zero PCR. */
Bytes expectedBootPcr(const Bytes &code);

/** Expected PCR0 || PCR1 platform digest for pristine software. */
Bytes expectedPlatformDigest(const Bytes &hypervisorCode,
                             const Bytes &hostOsCode);

} // namespace monatt::core

#endif // MONATT_CORE_CLOUD_H
