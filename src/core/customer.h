/**
 * @file
 * The Cloud Customer — initiator and end-verifier (§3.2.1).
 *
 * Exposes the public API of Table 1:
 *
 *   startup_attest_current(Vid, P, N)
 *   runtime_attest_current(Vid, P, N)
 *   runtime_attest_periodic(Vid, P, freq, N)
 *   stop_attest_periodic(Vid, P, N)
 *
 * plus VM leasing. Every attestation request carries a fresh nonce
 * N1; every received report is verified end to end — the controller's
 * identity signature SKc over [Vid, P, R, N1, Q1], the recomputed
 * quote Q1 = H(Vid || P || R || N1), and the nonce binding to an
 * outstanding request — before it is surfaced to the application.
 * Reports failing any check are counted and discarded: the customer
 * cannot be fed a forged attestation result.
 */

#ifndef MONATT_CORE_CUSTOMER_H
#define MONATT_CORE_CUSTOMER_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/secure_endpoint.h"
#include "proto/messages.h"
#include "proto/timing_model.h"
#include "sim/event_queue.h"

namespace monatt::controller
{
class HashRing;
}

namespace monatt::core
{

/**
 * Terminal state of one attestation request. Every request reaches a
 * definitive state: a verified report (Verified/Degraded), an explicit
 * controller failure (Failed/Unreachable), or a local retransmission
 * give-up (Unreachable). Nothing hangs in Pending forever while the
 * reliability layer is enabled.
 */
enum class AttestationOutcome : std::uint8_t
{
    Pending = 0,     //!< Still in flight (or reliability disabled).
    Verified = 1,    //!< Report arrived and verified end to end.
    Degraded = 2,    //!< Verified, but some property came back Unknown.
    Unreachable = 3, //!< Service did not answer within the budget.
    Failed = 4,      //!< Controller refused (unknown VM, not placed...).
    TcbRollback = 5, //!< Verified, and the appraiser condemned the
                     //!< host's firmware as stale (rollback/replay).
};

/** Outcome plus the human-readable reason for terminal failures. */
struct AttestOutcomeRecord
{
    AttestationOutcome state = AttestationOutcome::Pending;
    std::string reason;
};

/** A report that passed end-to-end verification. */
struct VerifiedReport
{
    std::uint64_t requestId = 0;
    proto::AttestationReport report;
    std::vector<proto::SecurityProperty> properties;
    SimTime receivedAt = 0;
};

/** Outcome of a launch request. */
struct LaunchOutcome
{
    bool done = false;
    bool ok = false;
    std::string vid;
    std::string error;
};

/** Customer statistics. */
struct CustomerStats
{
    std::uint64_t reportsVerified = 0;
    std::uint64_t reportsRejected = 0;
    std::uint64_t requestRetries = 0;       //!< AttestRequest resends.
    std::uint64_t requestsUnreachable = 0;  //!< Gave up waiting.
    std::uint64_t requestsFailed = 0;       //!< Controller said no.
};

/** The customer entity. */
class Customer
{
  public:
    /**
     * `controllerRing` is the control plane's consistent-hash
     * ownership ring (non-owning, must outlive the customer): when
     * set, every request is routed client-side to the shard owning
     * its VM id and replies are accepted from any shard. nullptr (or
     * a ring of one node) reproduces the classic single-controller
     * behaviour against `controllerId`.
     *
     * `controllerGroups` lists each shard's replica group (member ids
     * in replica-index order, index 0 = the base id the ring routes
     * to). When a group has more than one member the customer
     * discovers the current leader: NotLeader redirects and
     * leader-signed replies update a per-group leader hint, and the
     * retransmission timer rotates through the group members until one
     * answers. Empty groups (or all-singleton groups) reproduce the
     * classic fixed-target behaviour byte for byte.
     */
    Customer(sim::EventQueue &eq, net::Network &network,
             net::KeyDirectory &directory, std::string id,
             std::string controllerId, std::uint64_t seed,
             proto::ReliabilityModel reliabilityModel = {},
             const controller::HashRing *controllerRing = nullptr,
             std::vector<std::vector<std::string>> controllerGroups = {});

    const std::string &id() const { return self; }

    /** Identity public key VKcust. */
    const crypto::RsaPublicKey &identityPublic() const
    {
        return keys.pub;
    }

    /**
     * Lease a VM (nova api boot + the security-property extension of
     * §6.1). Returns the request id; poll launchOutcome() after
     * running the simulation.
     */
    std::uint64_t requestLaunch(
        const std::string &name, const std::string &imageName,
        const std::string &flavorName,
        const std::vector<proto::SecurityProperty> &properties,
        const Bytes &image, std::uint64_t imageSizeMb);

    /** Table 1: startup_attest_current(Vid, P, N). */
    std::uint64_t startupAttestCurrent(
        const std::string &vid,
        const std::vector<proto::SecurityProperty> &properties);

    /** Table 1: runtime_attest_current(Vid, P, N). */
    std::uint64_t runtimeAttestCurrent(
        const std::string &vid,
        const std::vector<proto::SecurityProperty> &properties);

    /** Table 1: runtime_attest_periodic(Vid, P, freq, N).
     * @param period Fixed period; <= 0 requests random intervals. */
    std::uint64_t runtimeAttestPeriodic(
        const std::string &vid,
        const std::vector<proto::SecurityProperty> &properties,
        SimTime period);

    /** Table 1: stop_attest_periodic(Vid, P, N). */
    std::uint64_t stopAttestPeriodic(
        const std::string &vid,
        const std::vector<proto::SecurityProperty> &properties);

    /** Launch outcome for a request id; nullptr until a response. */
    const LaunchOutcome *launchOutcome(std::uint64_t requestId) const;

    /** All verified reports, in arrival order. */
    const std::vector<VerifiedReport> &reports() const
    {
        return verifiedReports;
    }

    /** Verified reports for one request id. */
    std::vector<const VerifiedReport *> reportsFor(
        std::uint64_t requestId) const;

    /** Most recent verified report for a VM; nullptr when none. */
    const VerifiedReport *lastReportFor(const std::string &vid) const;

    /** Terminal (or Pending) outcome of an attestation request. */
    AttestOutcomeRecord outcomeFor(std::uint64_t requestId) const;

    const CustomerStats &stats() const { return counters; }

    /** Wire codec this node emits (DESIGN.md §17); received frames
     * always decode by their own self-described format. */
    const proto::WireContext &wireContext() const { return wire_; }
    void setWireContext(const proto::WireContext &ctx) { wire_ = ctx; }

  private:
    struct PendingAttest
    {
        std::string vid;
        Bytes nonce1;
        std::vector<proto::SecurityProperty> properties;
        bool periodic = false;
        Bytes packed;                //!< For identical retransmission.
        std::string target;          //!< Controller shard handling it.
        int retries = 0;
        sim::EventId retryTimer = 0; //!< 0 = none pending.
    };

    struct PendingLaunchSend
    {
        Bytes packed;     //!< For identical resend on redirect.
        std::string base; //!< Shard (group) the launch is routed to.
    };

    void handleMessage(const net::NodeId &from, const Bytes &plaintext);

    /** Pack an outgoing message in this node's configured format. */
    template <typename M>
    Bytes pack(proto::MessageKind kind, const M &msg) const
    {
        return proto::packFor(wire_, kind, msg);
    }

    proto::WireContext wire_;
    /** Format of the frame currently being dispatched. */
    proto::WireFormat rxFormat_ = proto::WireFormat::Legacy;

    void onLaunchResponse(const Bytes &body);
    void onReportToCustomer(const net::NodeId &from, const Bytes &body);
    void onAttestFailure(const Bytes &body);
    void onNotLeader(const net::NodeId &from, const Bytes &body);
    std::uint64_t sendAttest(const std::string &vid,
                             std::vector<proto::SecurityProperty> props,
                             proto::AttestMode mode, SimTime period);

    /** Arm the request retransmission timer. */
    void scheduleRequestRetry(std::uint64_t requestId);
    void requestRetryFired(std::uint64_t requestId);

    /** Owning controller shard for a VM id (ring routing); the single
     * configured controller when no ring is attached. */
    const std::string &shardFor(const std::string &vid) const;

    /** Shard handling a launch request (no vid exists yet; routed by a
     * per-request key so launches spread across shards). */
    const std::string &launchShardFor(std::uint64_t requestId,
                                      const std::string &name) const;

    /** True when `node` is a controller shard we accept replies from. */
    bool isController(const net::NodeId &node) const;

    /** Replica group of a shard base id; nullptr when unreplicated. */
    const std::vector<std::string> *groupFor(
        const std::string &base) const;

    /** Base (group) id of a controller node; `node` itself when it is
     * not a known replica. */
    const std::string &baseOf(const net::NodeId &node) const;

    /** Send target for a shard: the hinted leader, else the base. */
    const std::string &routeTo(const std::string &base) const;

    /** Compiled per-shard controller key, rebuilt on rotation. */
    const crypto::RsaPublicContext &controllerContext(
        const std::string &shardId, const crypto::RsaPublicKey &key);

    sim::EventQueue &events;
    std::string self;
    std::string controller;
    const controller::HashRing *ring; //!< nullptr = unsharded plane.
    crypto::RsaKeyPair keys;
    const net::KeyDirectory &dir;
    net::SecureEndpoint endpoint;
    crypto::HmacDrbg nonceDrbg;
    /** Compiled relay-verification keys, one per controller shard. */
    std::map<std::string, crypto::RsaPublicContext> ccCtx;

    /** Replica groups, base id → member ids (empty = unreplicated). */
    std::map<std::string, std::vector<std::string>> groups;
    /** Member id → its group's base id. */
    std::map<std::string, std::string> memberGroup;
    /** Discovered leader per group base id (absent = use the base). */
    std::map<std::string, std::string> leaderHint;
    /** Launch requests kept resendable for NotLeader redirects. */
    std::map<std::uint64_t, PendingLaunchSend> pendingLaunchSends;

    proto::ReliabilityModel reliability;
    std::map<std::uint64_t, LaunchOutcome> launches;
    std::map<std::uint64_t, PendingAttest> pendingAttests;
    std::map<std::uint64_t, AttestOutcomeRecord> outcomes;
    std::vector<VerifiedReport> verifiedReports;
    std::map<std::string, std::size_t> lastReportIndex;

    std::uint64_t nextRequest = 1;
    CustomerStats counters;
};

} // namespace monatt::core

#endif // MONATT_CORE_CUSTOMER_H
