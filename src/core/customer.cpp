#include "core/customer.h"

#include "common/logging.h"
#include "controller/hash_ring.h"

namespace monatt::core
{

using proto::AttestMode;
using proto::AttestRequest;
using proto::MessageKind;
using proto::ReportToCustomer;

namespace
{

crypto::RsaKeyPair
makeKeys(const std::string &id, std::uint64_t seed)
{
    Bytes material = toBytes("customer-identity:" + id);
    for (int i = 0; i < 8; ++i)
        material.push_back(static_cast<std::uint8_t>(seed >> (8 * i)));
    crypto::HmacDrbg drbg(material);
    Rng rng = drbg.forkRng();
    return crypto::rsaGenerateKeyPair(512, rng);
}

Bytes
endpointSeed(const std::string &id, std::uint64_t seed)
{
    Bytes material = toBytes("customer-endpoint:" + id);
    for (int i = 0; i < 8; ++i)
        material.push_back(static_cast<std::uint8_t>(seed >> (8 * i)));
    return material;
}

} // namespace

Customer::Customer(sim::EventQueue &eq, net::Network &network,
                   net::KeyDirectory &directory, std::string id,
                   std::string controllerId, std::uint64_t seed,
                   proto::ReliabilityModel reliabilityModel,
                   const controller::HashRing *controllerRing,
                   std::vector<std::vector<std::string>> controllerGroups)
    : events(eq), self(std::move(id)), controller(std::move(controllerId)),
      ring(controllerRing), keys(makeKeys(self, seed)), dir(directory),
      endpoint(network, self, keys, directory, endpointSeed(self, seed)),
      nonceDrbg(toBytes("customer-nonces:" + self)),
      reliability(reliabilityModel)
{
    // All-singleton groups carry no routing information: drop to the
    // classic fixed-target path so an unreplicated plane stays
    // byte-identical whether or not groups were passed.
    bool replicated = false;
    for (const std::vector<std::string> &group : controllerGroups)
        replicated |= group.size() > 1;
    if (replicated) {
        for (std::vector<std::string> &group : controllerGroups) {
            if (group.empty())
                continue;
            const std::string base = group.front();
            for (const std::string &member : group)
                memberGroup[member] = base;
            groups[base] = std::move(group);
        }
    }

    endpoint.onMessage([this](const net::NodeId &from, const Bytes &msg) {
        if (isController(from))
            handleMessage(from, msg);
    });
    endpoint.setReliability(net::EndpointReliability{
        reliability.enabled, reliability.handshakeRto,
        reliability.handshakeRetryLimit});
}

const std::string &
Customer::shardFor(const std::string &vid) const
{
    if (ring == nullptr || ring->empty())
        return controller;
    return ring->owner(vid);
}

const std::string &
Customer::launchShardFor(std::uint64_t requestId,
                         const std::string &name) const
{
    if (ring == nullptr || ring->empty())
        return controller;
    return ring->owner("launch:" + self + ":" +
                       std::to_string(requestId) + ":" + name);
}

bool
Customer::isController(const net::NodeId &node) const
{
    if (node == controller)
        return true;
    if (memberGroup.count(node) != 0)
        return true;
    return ring != nullptr && ring->contains(node);
}

const std::vector<std::string> *
Customer::groupFor(const std::string &base) const
{
    const auto it = groups.find(base);
    return it == groups.end() ? nullptr : &it->second;
}

const std::string &
Customer::baseOf(const net::NodeId &node) const
{
    const auto it = memberGroup.find(node);
    return it == memberGroup.end() ? node : it->second;
}

const std::string &
Customer::routeTo(const std::string &base) const
{
    const auto it = leaderHint.find(base);
    return it == leaderHint.end() ? base : it->second;
}

std::uint64_t
Customer::requestLaunch(
    const std::string &name, const std::string &imageName,
    const std::string &flavorName,
    const std::vector<proto::SecurityProperty> &properties,
    const Bytes &image, std::uint64_t imageSizeMb)
{
    const std::uint64_t requestId = nextRequest++;
    proto::LaunchRequest req;
    req.requestId = requestId;
    req.name = name;
    req.imageName = imageName;
    req.flavorName = flavorName;
    req.properties = properties;
    req.image = image;
    req.imageSizeMb = imageSizeMb;

    launches[requestId] = LaunchOutcome{};
    const std::string &base = launchShardFor(requestId, name);
    Bytes packed = pack(MessageKind::LaunchRequest, req);
    if (!groups.empty())
        pendingLaunchSends[requestId] = PendingLaunchSend{packed, base};
    endpoint.sendSecure(routeTo(base), std::move(packed));
    return requestId;
}

std::uint64_t
Customer::sendAttest(const std::string &vid,
                     std::vector<proto::SecurityProperty> props,
                     AttestMode mode, SimTime period)
{
    const std::uint64_t requestId = nextRequest++;
    AttestRequest req;
    req.requestId = requestId;
    req.vid = vid;
    req.properties = props;
    req.nonce1 = nonceDrbg.generate(16);
    req.mode = mode;
    req.period = period;

    Bytes packed = pack(MessageKind::AttestRequest, req);

    const std::string &target = shardFor(vid);
    PendingAttest pending;
    pending.vid = vid;
    pending.nonce1 = req.nonce1;
    pending.properties = std::move(props);
    pending.periodic = mode == AttestMode::RuntimePeriodic;
    pending.packed = packed;
    pending.target = target;
    pendingAttests[requestId] = std::move(pending);
    outcomes[requestId] = AttestOutcomeRecord{};

    endpoint.sendSecure(routeTo(target), std::move(packed));

    // Only one-shot requests retransmit: a periodic stream is kept
    // alive by its own reports, and StopPeriodic is idempotent
    // fire-and-forget with no reply to wait for.
    const bool oneShot = mode == AttestMode::StartupOneTime ||
                         mode == AttestMode::RuntimeOneTime;
    if (reliability.enabled && oneShot)
        scheduleRequestRetry(requestId);
    return requestId;
}

void
Customer::scheduleRequestRetry(std::uint64_t requestId)
{
    const auto it = pendingAttests.find(requestId);
    if (it == pendingAttests.end())
        return;
    PendingAttest &pending = it->second;
    const SimTime delay =
        reliability.backoff(reliability.customerRto, pending.retries);
    pending.retryTimer = events.scheduleAfter(
        delay, [this, requestId] { requestRetryFired(requestId); },
        "customer.attest.retry");
}

void
Customer::requestRetryFired(std::uint64_t requestId)
{
    const auto it = pendingAttests.find(requestId);
    if (it == pendingAttests.end())
        return;
    PendingAttest &pending = it->second;
    pending.retryTimer = 0;
    const std::string &base =
        pending.target.empty() ? controller : pending.target;
    std::string target = routeTo(base);
    if (pending.retries < reliability.customerRetryLimit) {
        ++pending.retries;
        ++counters.requestRetries;
        // Rotate retransmissions through the replica group starting
        // from the hinted leader: if the hint is stale (leader died
        // without a successor yet) the resend eventually lands on
        // whichever replica wins the election, which answers — or
        // redirects via NotLeader.
        if (const std::vector<std::string> *group = groupFor(base)) {
            std::size_t start = 0;
            for (std::size_t i = 0; i < group->size(); ++i) {
                if ((*group)[i] == target) {
                    start = i;
                    break;
                }
            }
            target = (*group)[(start +
                               static_cast<std::size_t>(pending.retries)) %
                              group->size()];
        }
        // Identical plaintext; the controller shard dedups on
        // (customer, request id), so at most one protocol run is
        // triggered.
        endpoint.sendSecure(target, Bytes(pending.packed));
        scheduleRequestRetry(requestId);
        return;
    }
    ++counters.requestsUnreachable;
    outcomes[requestId] =
        AttestOutcomeRecord{AttestationOutcome::Unreachable,
                            "no response from cloud controller"};
    MONATT_LOG(Warn, "customer")
        << self << ": attestation request " << requestId
        << " unreachable after " << pending.retries << " retries";
    pendingAttests.erase(it);
    // The controller shard may have crashed and restarted: force a
    // fresh handshake before the next request instead of sealing under
    // session keys it no longer holds.
    endpoint.resetPeer(target);
}

std::uint64_t
Customer::startupAttestCurrent(
    const std::string &vid,
    const std::vector<proto::SecurityProperty> &properties)
{
    return sendAttest(vid, properties, AttestMode::StartupOneTime, 0);
}

std::uint64_t
Customer::runtimeAttestCurrent(
    const std::string &vid,
    const std::vector<proto::SecurityProperty> &properties)
{
    return sendAttest(vid, properties, AttestMode::RuntimeOneTime, 0);
}

std::uint64_t
Customer::runtimeAttestPeriodic(
    const std::string &vid,
    const std::vector<proto::SecurityProperty> &properties,
    SimTime period)
{
    return sendAttest(vid, properties, AttestMode::RuntimePeriodic,
                      period);
}

std::uint64_t
Customer::stopAttestPeriodic(
    const std::string &vid,
    const std::vector<proto::SecurityProperty> &properties)
{
    // Drop local periodic state so late reports are not accepted
    // indefinitely; the stop command races any in-flight round, which
    // is inherent to the protocol.
    for (auto it = pendingAttests.begin(); it != pendingAttests.end();) {
        if (it->second.vid == vid && it->second.periodic)
            it = pendingAttests.erase(it);
        else
            ++it;
    }
    return sendAttest(vid, properties, AttestMode::StopPeriodic, 0);
}

const LaunchOutcome *
Customer::launchOutcome(std::uint64_t requestId) const
{
    const auto it = launches.find(requestId);
    return it == launches.end() ? nullptr : &it->second;
}

std::vector<const VerifiedReport *>
Customer::reportsFor(std::uint64_t requestId) const
{
    std::vector<const VerifiedReport *> out;
    for (const VerifiedReport &r : verifiedReports) {
        if (r.requestId == requestId)
            out.push_back(&r);
    }
    return out;
}

const VerifiedReport *
Customer::lastReportFor(const std::string &vid) const
{
    const auto it = lastReportIndex.find(vid);
    return it == lastReportIndex.end() ? nullptr
                                       : &verifiedReports[it->second];
}

AttestOutcomeRecord
Customer::outcomeFor(std::uint64_t requestId) const
{
    const auto it = outcomes.find(requestId);
    return it == outcomes.end() ? AttestOutcomeRecord{} : it->second;
}

void
Customer::handleMessage(const net::NodeId &from, const Bytes &plaintext)
{
    auto unpacked = proto::unpackMessage(plaintext);
    if (!unpacked)
        return;
    const auto &[kind, format, body] = unpacked.value();
    rxFormat_ = format;
    // Substantive replies only ever come from a group's leader (the
    // output gate holds them back on every other replica), so any of
    // them is an authenticated leader sighting.
    if (!groups.empty() && kind != MessageKind::NotLeader) {
        const auto it = memberGroup.find(from);
        if (it != memberGroup.end())
            leaderHint[it->second] = from;
    }
    switch (kind) {
      case MessageKind::LaunchResponse:
        onLaunchResponse(body);
        break;
      case MessageKind::ReportToCustomer:
        onReportToCustomer(from, body);
        break;
      case MessageKind::AttestFailure:
        onAttestFailure(body);
        break;
      case MessageKind::NotLeader:
        onNotLeader(from, body);
        break;
      default:
        break;
    }
}

void
Customer::onNotLeader(const net::NodeId &from, const Bytes &body)
{
    auto msgR = proto::decodeAs<proto::NotLeader>(rxFormat_, body);
    if (!msgR)
        return;
    const proto::NotLeader msg = msgR.take();
    const auto git = memberGroup.find(from);
    if (git == memberGroup.end())
        return;
    const std::string &base = git->second;

    // Adopt the sender's leader hint when it names a member of the
    // same group; an empty or foreign hint just clears a stale one.
    if (!msg.leaderId.empty() && memberGroup.count(msg.leaderId) != 0 &&
        memberGroup.at(msg.leaderId) == base)
        leaderHint[base] = msg.leaderId;
    else if (routeTo(base) == from)
        leaderHint.erase(base);

    // Resend immediately only when the redirect actually changed the
    // route (loop guard — a hintless group waits for the retry timer).
    const std::string &target = routeTo(base);
    if (target == from)
        return;
    if (msg.isLaunch) {
        const auto it = pendingLaunchSends.find(msg.requestId);
        if (it != pendingLaunchSends.end())
            endpoint.sendSecure(target, Bytes(it->second.packed));
        return;
    }
    const auto it = pendingAttests.find(msg.requestId);
    if (it != pendingAttests.end())
        endpoint.sendSecure(target, Bytes(it->second.packed));
}

void
Customer::onAttestFailure(const Bytes &body)
{
    // Authenticated by the secure channel: handleMessage only accepts
    // traffic from the controller. A failure is a definitive verdict,
    // never a verified health statement.
    auto failR = proto::decodeAs<proto::AttestFailure>(rxFormat_, body);
    if (!failR)
        return;
    const proto::AttestFailure fail = failR.take();
    const auto it = pendingAttests.find(fail.requestId);
    if (it == pendingAttests.end())
        return; // Already terminal (late duplicate).
    if (it->second.retryTimer != 0)
        events.cancel(it->second.retryTimer);
    pendingAttests.erase(it);

    const bool unreachable =
        fail.outcome == proto::FailureOutcome::Unreachable;
    if (unreachable)
        ++counters.requestsUnreachable;
    else
        ++counters.requestsFailed;
    outcomes[fail.requestId] = AttestOutcomeRecord{
        unreachable ? AttestationOutcome::Unreachable
                    : AttestationOutcome::Failed,
        fail.reason};
    MONATT_LOG(Warn, "customer")
        << self << ": attestation " << fail.requestId
        << " failed: " << fail.reason;
}

void
Customer::onLaunchResponse(const Bytes &body)
{
    auto respR = proto::decodeAs<proto::LaunchResponse>(rxFormat_, body);
    if (!respR)
        return;
    const proto::LaunchResponse resp = respR.take();
    pendingLaunchSends.erase(resp.requestId);
    auto it = launches.find(resp.requestId);
    if (it == launches.end())
        return;
    it->second.done = true;
    it->second.ok = resp.ok;
    it->second.vid = resp.vid;
    it->second.error = resp.error;
}

const crypto::RsaPublicContext &
Customer::controllerContext(const std::string &shardId,
                            const crypto::RsaPublicKey &key)
{
    const auto it = ccCtx.find(shardId);
    if (it == ccCtx.end() || !(it->second.key() == key)) {
        if (it != ccCtx.end())
            ccCtx.erase(it);
        return ccCtx.emplace(shardId, crypto::RsaPublicContext(key))
            .first->second;
    }
    return it->second;
}

void
Customer::onReportToCustomer(const net::NodeId &from, const Bytes &body)
{
    auto msgR = proto::decodeAs<ReportToCustomer>(rxFormat_, body);
    if (!msgR) {
        ++counters.reportsRejected;
        return;
    }
    const ReportToCustomer msg = msgR.take();

    const auto it = pendingAttests.find(msg.requestId);
    if (it == pendingAttests.end()) {
        ++counters.reportsRejected;
        return;
    }
    const PendingAttest &pending = it->second;

    // End-to-end verification: the signature of the controller shard
    // this request was routed to, quote, nonce. With replica groups
    // the signer is whichever replica of that shard currently leads —
    // require group membership, then verify under the sender's key.
    const std::string &base =
        pending.target.empty() ? controller : pending.target;
    const std::string &signer = groups.empty() ? base : from;
    if (!groups.empty() && baseOf(from) != base) {
        ++counters.reportsRejected;
        return;
    }
    auto ccKey = dir.lookup(signer);
    const Bytes expectedQ1 = ReportToCustomer::quoteInput(
        msg.vid, msg.properties, msg.report, msg.nonce1);
    if (!ccKey ||
        !crypto::rsaVerify(controllerContext(signer, ccKey.value()),
                           msg.signedPortion(), msg.signature) ||
        !constantTimeEqual(expectedQ1, msg.quote1) ||
        !constantTimeEqual(msg.nonce1, pending.nonce1) ||
        msg.vid != pending.vid) {
        ++counters.reportsRejected;
        MONATT_LOG(Warn, "customer")
            << self << ": rejected unverifiable report for " << msg.vid;
        return;
    }

    ++counters.reportsVerified;
    VerifiedReport verified;
    verified.requestId = msg.requestId;
    verified.report = msg.report;
    verified.properties = msg.properties;
    verified.receivedAt = events.now();
    verifiedReports.push_back(std::move(verified));
    lastReportIndex[msg.vid] = verifiedReports.size() - 1;

    if (it->second.retryTimer != 0) {
        events.cancel(it->second.retryTimer);
        it->second.retryTimer = 0;
    }
    bool degraded = false;
    bool rollback = false;
    for (const proto::PropertyResult &pr : msg.report.results) {
        degraded |= pr.status == proto::HealthStatus::Unknown;
        rollback |= pr.status == proto::HealthStatus::TcbRollback;
    }
    // A rollback verdict outranks Degraded: the report verified end to
    // end and the appraiser affirmatively condemned the host firmware.
    outcomes[msg.requestId] = AttestOutcomeRecord{
        rollback    ? AttestationOutcome::TcbRollback
        : degraded  ? AttestationOutcome::Degraded
                    : AttestationOutcome::Verified,
        {}};

    if (!pending.periodic)
        pendingAttests.erase(it);
}

} // namespace monatt::core
