/**
 * @file
 * The two cloud attacks designed in the paper.
 *
 * 1. CPU-based covert channel (§4.4.1): "The sender VM can occupy the
 *    CPU for different amounts of time, to indicate different
 *    information (e.g. long CPU usage indicates a '1' while short CPU
 *    usage signals a '0')". A helper vCPU IPIs the main sender vCPU
 *    once per frame; the main vCPU — woken with BOOST priority —
 *    preempts the co-resident receiver and holds the CPU for a
 *    bit-dependent duration. The receiver (a SpinnerProgram on the
 *    same pCPU) infers the bit from the gap in its own execution.
 *
 * 2. CPU availability attack (§4.5.1): "launch a VM with multiple
 *    vCPUs and use them to keep sending and receiving Inter Processor
 *    Interrupts (IPIs) to each other, so one of the attacker's vCPUs
 *    always has the highest priority". The hog vCPU runs up to just
 *    before each sampling tick (so the victim, not the attacker,
 *    absorbs every credit debit), IPIs the trigger vCPU, and sleeps
 *    across the tick; the trigger wakes just after the tick and IPIs
 *    the hog back — which re-enters with BOOST and starves the
 *    victim.
 */

#ifndef MONATT_WORKLOADS_ATTACKS_H
#define MONATT_WORKLOADS_ATTACKS_H

#include <memory>
#include <vector>

#include "hypervisor/hypervisor.h"
#include "hypervisor/scheduler.h"

namespace monatt::workloads
{

/** Covert-channel timing parameters. */
struct CovertChannelParams
{
    SimTime shortBit = msec(5);   //!< CPU occupancy signalling "0".
    SimTime longBit = msec(24);   //!< CPU occupancy signalling "1".
    SimTime framePeriod = msec(40); //!< One bit per frame.

    /** High-bandwidth preset used for the Figure 4 trace (~200 bps). */
    static CovertChannelParams fastPreset();

    /** Detection-oriented preset matching Figure 5's two peaks near
     * 5 ms and 24 ms. */
    static CovertChannelParams detectPreset();

    /** Raw channel bandwidth in bits per second. */
    double bandwidthBps() const
    {
        return 1e6 / static_cast<double>(framePeriod);
    }
};

/** Shared sender state: the message being transmitted. */
struct CovertMessage
{
    std::vector<bool> bits;
    std::size_t nextBit = 0;

    bool done() const { return nextBit >= bits.size(); }
};

/**
 * The sender's main vCPU: sleeps until the helper's IPI, then occupies
 * the CPU for a bit-dependent time.
 */
class CovertSenderMain : public hypervisor::Behavior
{
  public:
    CovertSenderMain(std::shared_ptr<CovertMessage> message,
                     CovertChannelParams params);

    hypervisor::BurstPlan next(const hypervisor::BehaviorContext &ctx)
        override;

  private:
    std::shared_ptr<CovertMessage> msg;
    CovertChannelParams cfg;
    bool firstCall = true;
};

/**
 * The sender's helper vCPU: wakes once per frame and IPIs the main
 * vCPU (giving it BOOST priority so it preempts the receiver).
 */
class CovertSenderHelper : public hypervisor::Behavior
{
  public:
    CovertSenderHelper(hypervisor::VCpuId mainVcpu,
                       std::shared_ptr<CovertMessage> message,
                       CovertChannelParams params);

    hypervisor::BurstPlan next(const hypervisor::BehaviorContext &ctx)
        override;

  private:
    hypervisor::VCpuId target;
    std::shared_ptr<CovertMessage> msg;
    CovertChannelParams cfg;
};

/**
 * Install a covert-channel sender on a 2-vCPU domain.
 *
 * @param hv The hypervisor.
 * @param domain A domain with at least two vCPUs (main = 0, helper = 1).
 * @param message The bits to transmit (shared for progress queries).
 * @param params Channel timing.
 */
void installCovertSender(hypervisor::Hypervisor &hv,
                         hypervisor::DomainId domain,
                         std::shared_ptr<CovertMessage> message,
                         CovertChannelParams params);

/**
 * Decode a covert message from the receiver's observed execution gaps.
 *
 * @param gaps Gap lengths (ms) in the receiver's execution.
 * @param params Channel timing (threshold = midpoint of bit lengths).
 * @return Decoded bits (gaps too short to be signal are skipped).
 */
std::vector<bool> decodeFromGaps(const std::vector<double> &gaps,
                                 const CovertChannelParams &params);

/** Availability-attack tuning. */
struct AvailabilityAttackParams
{
    SimTime tickGuard = usec(300);  //!< Stop this early before a tick.
    SimTime triggerRun = usec(50);  //!< Trigger vCPU's token burst.
    SimTime triggerSleep = usec(600); //!< Sleep across the tick.
};

/** The hog vCPU: owns the CPU between ticks, never gets sampled. */
class AvailabilityHog : public hypervisor::Behavior
{
  public:
    AvailabilityHog(hypervisor::VCpuId triggerVcpu,
                    AvailabilityAttackParams params);

    hypervisor::BurstPlan next(const hypervisor::BehaviorContext &ctx)
        override;

  private:
    hypervisor::VCpuId trigger;
    AvailabilityAttackParams cfg;
};

/** The trigger vCPU: carries the wakeup across the sampling tick. */
class AvailabilityTrigger : public hypervisor::Behavior
{
  public:
    AvailabilityTrigger(hypervisor::VCpuId hogVcpu,
                        AvailabilityAttackParams params);

    hypervisor::BurstPlan next(const hypervisor::BehaviorContext &ctx)
        override;

  private:
    hypervisor::VCpuId hog;
    AvailabilityAttackParams cfg;
    bool firstCall = true;
    bool phaseCarry = false;
};

/** Install the availability attack on a 2-vCPU domain (hog = vCPU 0,
 * trigger = vCPU 1). */
void installAvailabilityAttack(hypervisor::Hypervisor &hv,
                               hypervisor::DomainId domain,
                               AvailabilityAttackParams params = {});

} // namespace monatt::workloads

#endif // MONATT_WORKLOADS_ATTACKS_H
