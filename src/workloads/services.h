/**
 * @file
 * Cloud service workload models.
 *
 * The six co-runner services of Figures 6, 7 and 10 — Database, File,
 * Web, App, Stream, Mail — modeled as burst/wait processes. What
 * matters for the paper's results is only their CPU- vs I/O-bound
 * character: "When the attacker is I/O-bound (File, Stream or Mail
 * servers), the attacker does not consume much CPU... When the
 * attacker runs CPU-bound tasks (Database, Web or App servers), the
 * victim's execution time is doubled since it can get a fair share of
 * 50% of the CPU quota."
 */

#ifndef MONATT_WORKLOADS_SERVICES_H
#define MONATT_WORKLOADS_SERVICES_H

#include <memory>
#include <string>
#include <vector>

#include "hypervisor/scheduler.h"

namespace monatt::workloads
{

/** Burst/wait parameters of a service. */
struct ServiceProfile
{
    std::string name;
    SimTime burstMean;   //!< CPU burst length (Gaussian mean).
    SimTime burstStddev;
    SimTime waitMean;    //!< I/O wait between bursts (exponential mean).
    bool cpuBound;       //!< Classification, for reporting.
};

/** A service workload driven by a ServiceProfile. */
class ServiceWorkload : public hypervisor::Behavior
{
  public:
    explicit ServiceWorkload(ServiceProfile profile);

    hypervisor::BurstPlan next(const hypervisor::BehaviorContext &ctx)
        override;

    /** CPU time consumed so far (work completed, for Figure 10). */
    SimTime workDone() const { return consumed; }

  private:
    ServiceProfile prof;
    SimTime consumed = 0;
};

/** The catalog of the six cloud services. */
const std::vector<ServiceProfile> &serviceCatalog();

/** Look up a profile by name. @throws std::out_of_range when absent. */
const ServiceProfile &serviceProfile(const std::string &name);

/** Instantiate the workload for a named service. */
std::unique_ptr<ServiceWorkload> makeService(const std::string &name);

} // namespace monatt::workloads

#endif // MONATT_WORKLOADS_SERVICES_H
