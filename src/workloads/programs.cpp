#include "workloads/programs.h"

namespace monatt::workloads
{

CpuBoundProgram::CpuBoundProgram(SimTime totalWork,
                                 std::function<void(SimTime)> onComplete,
                                 bool repeat)
    : work(totalWork), remaining(totalWork), done(std::move(onComplete)),
      loop(repeat)
{
}

hypervisor::BurstPlan
CpuBoundProgram::next(const hypervisor::BehaviorContext &ctx)
{
    (void)ctx;
    hypervisor::BurstPlan plan;
    if (remaining <= 0) {
        plan.blockFor = kTimeNever;
        return plan;
    }

    // Chunked so the scheduler re-plans at slice granularity; the
    // program never blocks between chunks.
    const SimTime chunk = std::min(remaining, msec(10));
    remaining -= chunk;
    plan.burst = chunk;
    plan.blockFor = 0;
    if (remaining <= 0) {
        auto callback = done;
        plan.onComplete = [this, callback](SimTime t) {
            if (callback)
                callback(t);
            if (loop)
                remaining = work;
        };
        if (!loop)
            plan.blockFor = kTimeNever;
    }
    return plan;
}

hypervisor::BurstPlan
SpinnerProgram::next(const hypervisor::BehaviorContext &ctx)
{
    (void)ctx;
    hypervisor::BurstPlan plan;
    plan.burst = msec(10);
    plan.blockFor = 0;
    return plan;
}

hypervisor::BurstPlan
IdleProgram::next(const hypervisor::BehaviorContext &ctx)
{
    (void)ctx;
    hypervisor::BurstPlan plan;
    plan.burst = 0;
    plan.blockFor = kTimeNever;
    return plan;
}

const std::vector<VictimProgramSpec> &
victimPrograms()
{
    // CPU demands scaled for simulation speed; relative execution time
    // is invariant to the absolute demand once steady state is
    // reached.
    static const std::vector<VictimProgramSpec> specs = {
        {"bzip2", seconds(3)},
        {"hmmer", seconds(4)},
        {"astar", seconds(3) + msec(500)},
    };
    return specs;
}

} // namespace monatt::workloads
