#include "workloads/services.h"

#include <stdexcept>

namespace monatt::workloads
{

ServiceWorkload::ServiceWorkload(ServiceProfile profile)
    : prof(std::move(profile))
{
}

hypervisor::BurstPlan
ServiceWorkload::next(const hypervisor::BehaviorContext &ctx)
{
    hypervisor::BurstPlan plan;
    const double burst = ctx.rng->nextGaussian(
        static_cast<double>(prof.burstMean),
        static_cast<double>(prof.burstStddev));
    plan.burst = std::max<SimTime>(static_cast<SimTime>(burst), usec(50));
    plan.blockFor = std::max<SimTime>(
        static_cast<SimTime>(ctx.rng->nextExponential(
            static_cast<double>(prof.waitMean))),
        usec(50));
    plan.wakeIsInterrupt = true; // I/O completion interrupt.
    const SimTime credit = plan.burst;
    plan.onComplete = [this, credit](SimTime) { consumed += credit; };
    return plan;
}

const std::vector<ServiceProfile> &
serviceCatalog()
{
    static const std::vector<ServiceProfile> catalog = {
        // CPU-bound services: long bursts, negligible waits.
        {"database", msec(15), msec(3), msec(1), true},
        {"web", msec(10), msec(2), msec(1), true},
        {"app", msec(20), msec(4), msec(2), true},
        // I/O-bound services: sub-millisecond bursts, long waits.
        {"file", usec(800), usec(200), msec(15), false},
        {"stream", usec(1200), usec(300), msec(10), false},
        {"mail", usec(600), usec(200), msec(25), false},
    };
    return catalog;
}

const ServiceProfile &
serviceProfile(const std::string &name)
{
    for (const ServiceProfile &p : serviceCatalog()) {
        if (p.name == name)
            return p;
    }
    throw std::out_of_range("serviceProfile: unknown service " + name);
}

std::unique_ptr<ServiceWorkload>
makeService(const std::string &name)
{
    return std::make_unique<ServiceWorkload>(serviceProfile(name));
}

} // namespace monatt::workloads
