#include "workloads/attacks.h"

#include <algorithm>
#include <stdexcept>

namespace monatt::workloads
{

CovertChannelParams
CovertChannelParams::fastPreset()
{
    CovertChannelParams p;
    p.shortBit = msec(1);
    p.longBit = msec(3);
    p.framePeriod = msec(5);
    return p;
}

CovertChannelParams
CovertChannelParams::detectPreset()
{
    CovertChannelParams p;
    p.shortBit = msec(5);
    p.longBit = msec(24);
    p.framePeriod = msec(40);
    return p;
}

CovertSenderMain::CovertSenderMain(std::shared_ptr<CovertMessage> message,
                                   CovertChannelParams params)
    : msg(std::move(message)), cfg(params)
{
}

hypervisor::BurstPlan
CovertSenderMain::next(const hypervisor::BehaviorContext &ctx)
{
    (void)ctx;
    hypervisor::BurstPlan plan;
    if (firstCall || msg->done()) {
        // Wait for the helper's per-frame IPI.
        firstCall = false;
        plan.burst = 0;
        plan.blockFor = kTimeNever;
        return plan;
    }
    const bool bit = msg->bits[msg->nextBit++];
    plan.burst = bit ? cfg.longBit : cfg.shortBit;
    plan.blockFor = kTimeNever;
    return plan;
}

CovertSenderHelper::CovertSenderHelper(
    hypervisor::VCpuId mainVcpu, std::shared_ptr<CovertMessage> message,
    CovertChannelParams params)
    : target(mainVcpu), msg(std::move(message)), cfg(params)
{
}

hypervisor::BurstPlan
CovertSenderHelper::next(const hypervisor::BehaviorContext &ctx)
{
    (void)ctx;
    hypervisor::BurstPlan plan;
    if (msg->done()) {
        plan.burst = 0;
        plan.blockFor = kTimeNever;
        return plan;
    }
    // A token burst, then kick the main vCPU and sleep one frame. The
    // IPI arrives at burst end, so the main vCPU wakes with BOOST and
    // immediately preempts the co-resident receiver.
    plan.burst = usec(20);
    plan.ipiTargets.push_back(target);
    plan.blockFor = cfg.framePeriod - usec(20);
    plan.wakeIsInterrupt = true;
    return plan;
}

void
installCovertSender(hypervisor::Hypervisor &hv,
                    hypervisor::DomainId domain,
                    std::shared_ptr<CovertMessage> message,
                    CovertChannelParams params)
{
    const auto &vcpus = hv.domain(domain).vcpus;
    if (vcpus.size() < 2)
        throw std::invalid_argument(
            "installCovertSender: sender domain needs 2 vCPUs");
    hv.setBehavior(domain, 0,
                   std::make_unique<CovertSenderMain>(message, params));
    hv.setBehavior(domain, 1,
                   std::make_unique<CovertSenderHelper>(vcpus[0], message,
                                                        params));
}

std::vector<bool>
decodeFromGaps(const std::vector<double> &gaps,
               const CovertChannelParams &params)
{
    const double threshold =
        toMillis(params.shortBit + params.longBit) / 2.0;
    const double noiseFloor = toMillis(params.shortBit) * 0.5;
    std::vector<bool> bits;
    for (double gap : gaps) {
        if (gap < noiseFloor)
            continue; // Scheduler noise, not a signal frame.
        bits.push_back(gap > threshold);
    }
    return bits;
}

AvailabilityHog::AvailabilityHog(hypervisor::VCpuId triggerVcpu,
                                 AvailabilityAttackParams params)
    : trigger(triggerVcpu), cfg(params)
{
}

hypervisor::BurstPlan
AvailabilityHog::next(const hypervisor::BehaviorContext &ctx)
{
    hypervisor::BurstPlan plan;
    // Run up to just before the next sampling tick so the debit lands
    // on whoever runs across the tick (the victim), never on us.
    SimTime until = ctx.nextTick - cfg.tickGuard;
    if (until - ctx.now < usec(100)) {
        // Too close to the tick: aim for the one after.
        until += ctx.tickPeriod;
    }
    plan.burst = until - ctx.now;
    plan.ipiTargets.push_back(trigger);
    plan.blockFor = kTimeNever; // The trigger IPIs us back.
    return plan;
}

AvailabilityTrigger::AvailabilityTrigger(hypervisor::VCpuId hogVcpu,
                                         AvailabilityAttackParams params)
    : hog(hogVcpu), cfg(params)
{
}

hypervisor::BurstPlan
AvailabilityTrigger::next(const hypervisor::BehaviorContext &ctx)
{
    (void)ctx;
    hypervisor::BurstPlan plan;
    if (firstCall) {
        // Bootstrap the cycle as if the hog had just IPI'd us.
        firstCall = false;
        phaseCarry = true;
        plan.burst = cfg.triggerRun;
        plan.blockFor = cfg.triggerSleep;
        plan.wakeIsInterrupt = true;
        return plan;
    }
    if (phaseCarry) {
        // Woken by the timer just after the tick: hand the CPU back to
        // the hog (IPI wake => BOOST) and wait for its next IPI.
        phaseCarry = false;
        plan.burst = cfg.triggerRun;
        plan.ipiTargets.push_back(hog);
        plan.blockFor = kTimeNever;
        return plan;
    }
    // Woken by the hog's IPI just before the tick: sleep across it.
    phaseCarry = true;
    plan.burst = cfg.triggerRun;
    plan.blockFor = cfg.triggerSleep;
    plan.wakeIsInterrupt = true;
    return plan;
}

void
installAvailabilityAttack(hypervisor::Hypervisor &hv,
                          hypervisor::DomainId domain,
                          AvailabilityAttackParams params)
{
    const auto &vcpus = hv.domain(domain).vcpus;
    if (vcpus.size() < 2)
        throw std::invalid_argument(
            "installAvailabilityAttack: attacker domain needs 2 vCPUs");
    hv.setBehavior(domain, 0,
                   std::make_unique<AvailabilityHog>(vcpus[1], params));
    hv.setBehavior(domain, 1,
                   std::make_unique<AvailabilityTrigger>(vcpus[0],
                                                         params));
}

} // namespace monatt::workloads
