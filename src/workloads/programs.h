/**
 * @file
 * Victim program workloads.
 *
 * Stand-ins for the SPEC2006 CPU-bound programs (bzip2, hmmer, astar)
 * the paper's victim VM runs in Figure 6: each needs a fixed amount of
 * CPU time and never blocks, so its completion wall-clock time divided
 * by its CPU demand is exactly the "relative execution time" the
 * figure reports.
 */

#ifndef MONATT_WORKLOADS_PROGRAMS_H
#define MONATT_WORKLOADS_PROGRAMS_H

#include <functional>
#include <memory>
#include <string>

#include "hypervisor/scheduler.h"

namespace monatt::workloads
{

/**
 * A CPU-bound program: consumes `totalWork` of CPU time in yield-free
 * chunks, reports completion, then optionally repeats.
 */
class CpuBoundProgram : public hypervisor::Behavior
{
  public:
    /**
     * @param totalWork CPU time the program needs.
     * @param onComplete Called (with the completion time) when the
     *        work is done.
     * @param repeat Restart the program after completion.
     */
    CpuBoundProgram(SimTime totalWork,
                    std::function<void(SimTime)> onComplete = nullptr,
                    bool repeat = false);

    hypervisor::BurstPlan next(const hypervisor::BehaviorContext &ctx)
        override;

  private:
    SimTime work;
    SimTime remaining;
    std::function<void(SimTime)> done;
    bool loop;
};

/**
 * An infinite CPU spinner (used as the covert-channel receiver's
 * probe: it wants the CPU constantly, so every gap in its execution
 * is time the co-resident sender stole — the receiver "can measure
 * its own execution time, to infer the sender VM's CPU activity").
 */
class SpinnerProgram : public hypervisor::Behavior
{
  public:
    hypervisor::BurstPlan next(const hypervisor::BehaviorContext &ctx)
        override;
};

/** Idle workload: blocks forever (the "Idle" column of Figure 6). */
class IdleProgram : public hypervisor::Behavior
{
  public:
    hypervisor::BurstPlan next(const hypervisor::BehaviorContext &ctx)
        override;
};

/** Named victim programs of Figure 6 with their CPU demands. */
struct VictimProgramSpec
{
    std::string name;
    SimTime cpuDemand;
};

/** The three victim programs (bzip2, hmmer, astar). */
const std::vector<VictimProgramSpec> &victimPrograms();

} // namespace monatt::workloads

#endif // MONATT_WORKLOADS_PROGRAMS_H
