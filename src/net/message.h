/**
 * @file
 * Network message envelope.
 *
 * Every datagram on the simulated cloud network is an Envelope: source
 * and destination node ids, a logical channel tag, a sequence number
 * and an opaque payload. The payload of protocol messages is a sealed
 * SecureChannel record; the envelope header itself is deliberately
 * unauthenticated — exactly the part of the message the Dolev-Yao
 * adversary of §3.3 is free to observe and forge, so tests can check
 * that all real protection comes from the cryptographic layers above.
 */

#ifndef MONATT_NET_MESSAGE_H
#define MONATT_NET_MESSAGE_H

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/result.h"

namespace monatt::net
{

/** Node identifier on the simulated network. */
using NodeId = std::string;

/** One datagram. */
struct Envelope
{
    NodeId src;
    NodeId dst;
    std::string channel; //!< Logical channel tag (e.g. "attest").
    std::uint64_t seq = 0;
    Bytes payload;

    /**
     * Bulk payload size in bytes, modeled but not materialized: a VM
     * image fetch or a migration RAM copy is gigabytes on the wire —
     * this field charges the link's bandwidth for those bytes without
     * allocating them.
     */
    std::uint64_t bulkBytes = 0;

    /** Serialize to wire bytes. */
    Bytes encode() const;

    /** Parse from wire bytes; error on malformed input. */
    static Result<Envelope> decode(const Bytes &wire);

    /** Total wire size in bytes (for bandwidth modeling). */
    std::size_t wireSize() const;
};

} // namespace monatt::net

#endif // MONATT_NET_MESSAGE_H
