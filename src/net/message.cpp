#include "net/message.h"

#include "common/codec.h"

namespace monatt::net
{

Bytes
Envelope::encode() const
{
    ByteWriter w;
    w.reserve(src.size() + dst.size() + channel.size() + payload.size() +
              4 * 4 + 2 * 8);
    w.putString(src);
    w.putString(dst);
    w.putString(channel);
    w.putU64(seq);
    w.putBytes(payload);
    w.putU64(bulkBytes);
    return w.take();
}

Result<Envelope>
Envelope::decode(const Bytes &wire)
{
    ByteReader r(wire);
    Envelope env;
    auto src = r.getString();
    auto dst = r.getString();
    auto channel = r.getString();
    auto seq = r.getU64();
    auto payload = r.getBytes();
    auto bulk = r.getU64();
    if (!src || !dst || !channel || !seq || !payload || !bulk ||
        !r.atEnd()) {
        return Result<Envelope>::error("Envelope: malformed wire bytes");
    }
    env.bulkBytes = bulk.value();
    env.src = src.take();
    env.dst = dst.take();
    env.channel = channel.take();
    env.seq = seq.value();
    env.payload = payload.take();
    return Result<Envelope>::ok(std::move(env));
}

std::size_t
Envelope::wireSize() const
{
    return src.size() + dst.size() + channel.size() + 8 + 16 +
           payload.size() + bulkBytes;
}

} // namespace monatt::net
