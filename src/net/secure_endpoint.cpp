#include "net/secure_endpoint.h"

#include "common/logging.h"

namespace monatt::net
{

namespace
{

/** Channel tags: "ssl-hello:<initiator>", "ssl-accept:<initiator>",
 * "data-out:<initiator>" (initiator→responder data),
 * "data-back:<initiator>" (responder→initiator data). */
const char *kHelloTag = "ssl-hello";
const char *kAcceptTag = "ssl-accept";
const char *kDataOutTag = "data-out";
const char *kDataBackTag = "data-back";

} // namespace

void
KeyDirectory::publish(const NodeId &id, const crypto::RsaPublicKey &key)
{
    keys[id] = key;
}

Result<crypto::RsaPublicKey>
KeyDirectory::lookup(const NodeId &id) const
{
    const auto it = keys.find(id);
    if (it == keys.end())
        return Result<crypto::RsaPublicKey>::error(
            "KeyDirectory: unknown node " + id);
    return Result<crypto::RsaPublicKey>::ok(it->second);
}

SecureEndpoint::SecureEndpoint(Network &network, NodeId id,
                               crypto::RsaKeyPair identityKeys,
                               const KeyDirectory &directory,
                               const Bytes &drbgSeed)
    : net(network), self(std::move(id)), keys(std::move(identityKeys)),
      ownCtx(keys.priv), dir(directory), drbg(drbgSeed)
{
    net.registerNode(self, [this](const Envelope &env) {
        handleDatagram(env);
    });
}

SecureEndpoint::~SecureEndpoint()
{
    if (isAttached)
        net.unregisterNode(self);
}

void
SecureEndpoint::detach()
{
    if (!isAttached)
        return;
    net.unregisterNode(self);
    isAttached = false;
    for (auto &[peer, oc] : outbound) {
        if (oc.retryTimer != 0)
            net.eventQueue().cancel(oc.retryTimer);
    }
    // Crash semantics: every session secret and queued plaintext is
    // volatile and dies with the process. Identity keys (disk) and
    // compiled peer public keys (public data) survive.
    outbound.clear();
    inbound.clear();
}

void
SecureEndpoint::resetPeer(const NodeId &peer)
{
    const auto it = outbound.find(peer);
    if (it == outbound.end())
        return;
    if (it->second.state == OutboundChannel::State::Handshaking) {
        failOutbound(peer);
        return;
    }
    if (it->second.retryTimer != 0)
        net.eventQueue().cancel(it->second.retryTimer);
    outbound.erase(it);
}

void
SecureEndpoint::attach()
{
    if (isAttached)
        return;
    isAttached = true;
    net.registerNode(self, [this](const Envelope &env) {
        handleDatagram(env);
    });
}

const crypto::RsaPublicContext &
SecureEndpoint::peerContext(const NodeId &peer,
                            const crypto::RsaPublicKey &key)
{
    auto it = peerContexts.find(peer);
    if (it != peerContexts.end()) {
        // The directory may re-publish a rotated key; recompile.
        if (!(it->second.key() == key))
            it->second = crypto::RsaPublicContext(key);
        return it->second;
    }
    return peerContexts.emplace(peer, crypto::RsaPublicContext(key))
        .first->second;
}

void
SecureEndpoint::transmit(const NodeId &peer, const std::string &channelTag,
                         Bytes payload, std::uint64_t bulkBytes)
{
    Envelope env;
    env.src = self;
    env.dst = peer;
    env.channel = channelTag;
    env.seq = ++seq;
    env.payload = std::move(payload);
    env.bulkBytes = bulkBytes;
    ++counters.sent;
    net.send(std::move(env));
}

void
SecureEndpoint::sendSecure(const NodeId &peer, Bytes plaintext,
                           std::uint64_t bulkBytes)
{
    auto it = outbound.find(peer);
    if (it == outbound.end()) {
        // Start a handshake and queue the message.
        auto serverKey = dir.lookup(peer);
        if (!serverKey) {
            MONATT_LOG(Error, "endpoint")
                << self << ": cannot reach unknown peer " << peer;
            return;
        }
        OutboundChannel oc;
        oc.handshake = std::make_unique<ClientHandshake>(
            self, peer, keys, serverKey.value(), drbg, &ownCtx,
            &peerContext(peer, serverKey.value()));
        oc.queue.emplace_back(std::move(plaintext), bulkBytes);
        oc.helloBytes = oc.handshake->helloMessage();
        Bytes hello = oc.helloBytes;
        auto &slot = outbound.emplace(peer, std::move(oc)).first->second;
        if (reliability.enabled)
            scheduleHelloRetry(peer, slot);
        transmit(peer, kHelloTag, std::move(hello), 0);
        return;
    }

    OutboundChannel &oc = it->second;
    if (oc.state == OutboundChannel::State::Handshaking) {
        oc.queue.emplace_back(std::move(plaintext), bulkBytes);
        return;
    }
    transmit(peer, kDataOutTag, oc.channel.seal(plaintext), bulkBytes);
}

bool
SecureEndpoint::channelOpen(const NodeId &peer) const
{
    const auto it = outbound.find(peer);
    return it != outbound.end() &&
           it->second.state == OutboundChannel::State::Open;
}

void
SecureEndpoint::handleDatagram(const Envelope &env)
{
    if (env.channel == kHelloTag) {
        handleHello(env);
    } else if (env.channel == kAcceptTag) {
        handleAccept(env);
    } else if (env.channel == kDataOutTag) {
        // Peer-initiated channel, inbound data.
        handleData(env, /*inbound=*/true);
    } else if (env.channel == kDataBackTag) {
        // Our channel, reply data.
        handleData(env, /*inbound=*/false);
    } else {
        MONATT_LOG(Warn, "endpoint")
            << self << ": unknown channel tag " << env.channel;
    }
}

void
SecureEndpoint::handleHello(const Envelope &env)
{
    // Idempotent accept: a duplicated or retransmitted hello must not
    // replace the channel it already produced (that would invalidate
    // records sealed under the first accept) nor draw fresh DRBG
    // output. Retransmit the cached accept instead.
    const auto known = inbound.find(env.src);
    if (known != inbound.end() && known->second.lastHello == env.payload) {
        transmit(env.src, kAcceptTag, Bytes(known->second.cachedAccept),
                 0);
        return;
    }

    auto clientKey = dir.lookup(env.src);
    if (!clientKey) {
        ++counters.rejectedHandshakes;
        return;
    }
    ServerHandshake hs(self, keys, drbg, &ownCtx);
    auto accepted = hs.accept(env.payload, clientKey.value(),
                              &peerContext(env.src, clientKey.value()));
    if (!accepted) {
        ++counters.rejectedHandshakes;
        MONATT_LOG(Warn, "endpoint")
            << self << ": rejected handshake from " << env.src << ": "
            << accepted.errorMessage();
        return;
    }
    // The envelope src header is attacker-controlled, but accept()
    // verified the hello's signature against env.src's published key,
    // so a forged src would have failed verification above.
    // A *different* hello from a known peer means the peer lost its
    // session state (e.g. it crashed and restarted) and is
    // re-handshaking. Our own outbound channel to it — sealed against
    // the peer's discarded keys — is equally stale: drop an Open one
    // so the next send renegotiates instead of producing records the
    // peer can only reject. An in-progress handshake is left alone
    // (its accept is still in flight and will complete normally).
    if (known != inbound.end()) {
        const auto out = outbound.find(env.src);
        if (out != outbound.end() &&
            out->second.state == OutboundChannel::State::Open)
            outbound.erase(out);
    }
    InboundChannel ic;
    ic.channel = std::move(accepted.value().channel);
    ic.lastHello = env.payload;
    ic.cachedAccept = accepted.value().reply;
    inbound[env.src] = std::move(ic);
    transmit(env.src, kAcceptTag, std::move(accepted.value().reply), 0);
}

void
SecureEndpoint::handleAccept(const Envelope &env)
{
    auto it = outbound.find(env.src);
    if (it == outbound.end() ||
        it->second.state != OutboundChannel::State::Handshaking) {
        ++counters.rejectedHandshakes;
        return;
    }
    OutboundChannel &oc = it->second;
    auto channel = oc.handshake->finish(env.payload);
    if (!channel) {
        ++counters.rejectedHandshakes;
        MONATT_LOG(Warn, "endpoint")
            << self << ": handshake with " << env.src
            << " failed: " << channel.errorMessage();
        // A corrupted accept consumed the handshake state: re-initiate
        // from scratch (fresh hello) instead of silently discarding
        // the queued plaintexts, up to the retry budget.
        if (reliability.enabled &&
            oc.attempts < reliability.handshakeRetryLimit) {
            if (oc.retryTimer != 0) {
                net.eventQueue().cancel(oc.retryTimer);
                oc.retryTimer = 0;
            }
            ++oc.attempts;
            ++counters.handshakeRetries;
            auto serverKey = dir.lookup(env.src);
            if (serverKey) {
                oc.handshake = std::make_unique<ClientHandshake>(
                    self, env.src, keys, serverKey.value(), drbg,
                    &ownCtx, &peerContext(env.src, serverKey.value()));
                oc.helloBytes = oc.handshake->helloMessage();
                scheduleHelloRetry(env.src, oc);
                transmit(env.src, kHelloTag, Bytes(oc.helloBytes), 0);
                return;
            }
        }
        failOutbound(env.src);
        return;
    }
    if (oc.retryTimer != 0) {
        net.eventQueue().cancel(oc.retryTimer);
        oc.retryTimer = 0;
    }
    oc.channel = channel.take();
    oc.handshake.reset();
    oc.state = OutboundChannel::State::Open;
    for (auto &[plaintext, bulk] : oc.queue) {
        Bytes sealed = oc.channel.seal(plaintext);
        transmit(env.src, kDataOutTag, std::move(sealed), bulk);
    }
    oc.queue.clear();
}

void
SecureEndpoint::scheduleHelloRetry(const NodeId &peer, OutboundChannel &oc)
{
    const int shift = oc.attempts < 6 ? oc.attempts : 6;
    const SimTime delay = reliability.handshakeRto << shift;
    oc.retryTimer = net.eventQueue().scheduleAfter(
        delay, [this, peer] { helloRetryFired(peer); },
        "endpoint.helloRetry");
}

void
SecureEndpoint::helloRetryFired(const NodeId &peer)
{
    const auto it = outbound.find(peer);
    if (it == outbound.end() ||
        it->second.state != OutboundChannel::State::Handshaking)
        return;
    OutboundChannel &oc = it->second;
    oc.retryTimer = 0;
    if (oc.attempts >= reliability.handshakeRetryLimit) {
        failOutbound(peer);
        return;
    }
    ++oc.attempts;
    ++counters.handshakeRetries;
    // Identical retransmission of the cached hello: no DRBG draws, so
    // the responder's dedup cache recognizes it and replays the same
    // accept.
    scheduleHelloRetry(peer, oc);
    transmit(peer, kHelloTag, Bytes(oc.helloBytes), 0);
}

void
SecureEndpoint::failOutbound(const NodeId &peer)
{
    const auto it = outbound.find(peer);
    if (it == outbound.end())
        return;
    OutboundChannel &oc = it->second;
    if (oc.retryTimer != 0) {
        net.eventQueue().cancel(oc.retryTimer);
        oc.retryTimer = 0;
    }
    const std::size_t lost = oc.queue.size();
    ++counters.handshakeFailures;
    counters.deliveryFailures += lost;
    MONATT_LOG(Warn, "endpoint")
        << self << ": handshake with " << peer << " abandoned, " << lost
        << " queued message(s) undeliverable";
    outbound.erase(it);
    if (deliveryFailure_)
        deliveryFailure_(peer, lost);
}

void
SecureEndpoint::handleData(const Envelope &env, bool inboundChannel)
{
    SecureChannel *channel = nullptr;
    if (inboundChannel) {
        auto it = inbound.find(env.src);
        if (it != inbound.end())
            channel = &it->second.channel;
    } else {
        auto it = outbound.find(env.src);
        if (it != outbound.end() &&
            it->second.state == OutboundChannel::State::Open) {
            channel = &it->second.channel;
        }
    }
    if (!channel) {
        ++counters.rejectedRecords;
        MONATT_LOG(Warn, "endpoint")
            << self << ": data on unestablished channel from "
            << env.src;
        return;
    }

    auto plaintext = channel->open(env.payload);
    if (!plaintext) {
        ++counters.rejectedRecords;
        MONATT_LOG(Warn, "endpoint")
            << self << ": rejected record from " << env.src << ": "
            << plaintext.errorMessage();
        return;
    }
    ++counters.received;
    if (handler_)
        handler_(env.src, plaintext.value());
}

} // namespace monatt::net
