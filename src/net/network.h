/**
 * @file
 * Simulated cloud network fabric.
 *
 * Models the data-center LAN of the paper's testbed ("on-board dual
 * Gigabit network adapter with 1 Gbps speed"): point-to-point delivery
 * with per-link latency and bandwidth, driven by the discrete-event
 * queue. An optional adversary hook sits on the wire and may observe,
 * modify, drop, delay, replay or inject datagrams — the active
 * Dolev-Yao attacker of §3.3 ("an active adversary who has full
 * control of the network between different servers").
 */

#ifndef MONATT_NET_NETWORK_H
#define MONATT_NET_NETWORK_H

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "common/time_types.h"
#include "net/message.h"
#include "sim/event_queue.h"
#include "sim/fault_plan.h"

namespace monatt::net
{

/** Per-link characteristics. */
struct LinkParams
{
    SimTime latency = usec(100);       //!< One-way propagation delay.
    double megabitsPerSecond = 1000.0; //!< 1 Gbps default (paper).
};

/** Counters exposed for evaluation and debugging. */
struct NetworkStats
{
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t droppedByAdversary = 0;
    std::uint64_t modifiedByAdversary = 0;
    std::uint64_t injected = 0;
    std::uint64_t undeliverable = 0;
    std::uint64_t bytesSent = 0;

    // Fault-plan effects (distinct from the adversary counters).
    std::uint64_t droppedByFault = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t delayedByFault = 0;
    std::uint64_t partitioned = 0;
};

/**
 * The simulated network.
 *
 * Nodes register a receive handler under a NodeId. send() schedules
 * delivery after the link's latency plus serialization time. The
 * adversary hook — when installed — sees every datagram before
 * delivery and decides its fate.
 */
class Network
{
  public:
    using Handler = std::function<void(const Envelope &)>;

    /**
     * Adversary verdicts: return the (possibly modified) envelope to
     * forward it, or std::nullopt to drop it. The hook may also call
     * inject() to add extra datagrams (replays, forgeries).
     */
    using AdversaryHook =
        std::function<std::optional<Envelope>(const Envelope &)>;

    explicit Network(sim::EventQueue &eq) : events(eq) {}

    /** Register (or replace) the receive handler for a node. */
    void registerNode(const NodeId &id, Handler handler);

    /** Remove a node; in-flight datagrams to it become undeliverable. */
    void unregisterNode(const NodeId &id);

    /** Configure the link between two nodes (symmetric). */
    void setLink(const NodeId &a, const NodeId &b, LinkParams params);

    /** Default parameters for unconfigured links. */
    void setDefaultLink(LinkParams params) { defaultLink = params; }

    /**
     * Send a datagram from env.src to env.dst.
     *
     * Passes through the adversary hook (if any), then schedules
     * delivery on the event queue.
     */
    void send(Envelope env);

    /** Adversary-side injection: bypasses the hook (it is the hook). */
    void inject(Envelope env);

    /** Install or clear (nullptr) the wire adversary. */
    void setAdversary(AdversaryHook hook) { adversary = std::move(hook); }

    /**
     * Install or clear (nullptr) a deterministic fault plan. The plan
     * composes with the adversary: the adversary hook sees datagrams
     * first (it models an attacker at the sender's switch), then the
     * fault plan decides loss/partition/delay/duplication. Not owned;
     * must outlive the network or be cleared first.
     */
    void setFaultPlan(const sim::FaultPlan *plan) { faults = plan; }

    /** Serialization+propagation delay for a datagram of `bytes`. */
    SimTime transferTime(const NodeId &a, const NodeId &b,
                         std::size_t bytes) const;

    const NetworkStats &stats() const { return counters; }

    sim::EventQueue &eventQueue() { return events; }

  private:
    void deliver(Envelope env, SimTime extraDelay = 0);
    const LinkParams &linkBetween(const NodeId &a, const NodeId &b) const;

    sim::EventQueue &events;
    std::map<NodeId, Handler> nodes;
    std::map<std::pair<NodeId, NodeId>, LinkParams> links;
    LinkParams defaultLink;
    AdversaryHook adversary;
    const sim::FaultPlan *faults = nullptr;
    NetworkStats counters;
};

} // namespace monatt::net

#endif // MONATT_NET_NETWORK_H
