/**
 * @file
 * Simulated cloud network fabric.
 *
 * Models the data-center LAN of the paper's testbed ("on-board dual
 * Gigabit network adapter with 1 Gbps speed"): point-to-point delivery
 * with per-link latency and bandwidth, driven by the discrete-event
 * queue. An optional adversary hook sits on the wire and may observe,
 * modify, drop, delay, replay or inject datagrams — the active
 * Dolev-Yao attacker of §3.3 ("an active adversary who has full
 * control of the network between different servers").
 */

#ifndef MONATT_NET_NETWORK_H
#define MONATT_NET_NETWORK_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/time_types.h"
#include "net/message.h"
#include "sim/event_queue.h"
#include "sim/fault_plan.h"

namespace monatt::net
{

/** Per-link characteristics. */
struct LinkParams
{
    SimTime latency = usec(100);       //!< One-way propagation delay.
    double megabitsPerSecond = 1000.0; //!< 1 Gbps default (paper).
};

/** Counters exposed for evaluation and debugging. */
struct NetworkStats
{
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t droppedByAdversary = 0;
    std::uint64_t modifiedByAdversary = 0;
    std::uint64_t injected = 0;
    std::uint64_t undeliverable = 0;
    std::uint64_t bytesSent = 0;

    // Fault-plan effects (distinct from the adversary counters).
    std::uint64_t droppedByFault = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t delayedByFault = 0;
    std::uint64_t partitioned = 0;

    // Send-deliver slab: envelope slots and recycled payload buffers.
    // At steady state reuses dominate and allocs stay flat at the
    // in-flight high-water mark.
    std::uint64_t envelopeAllocs = 0; //!< fresh slab slots created
    std::uint64_t envelopeReuses = 0; //!< slots served from the free list
    std::uint64_t bufferAllocs = 0;   //!< takeBuffer() pool misses
    std::uint64_t bufferReuses = 0;   //!< takeBuffer() pool hits
};

/**
 * The simulated network.
 *
 * Nodes register a receive handler under a NodeId. send() schedules
 * delivery after the link's latency plus serialization time. The
 * adversary hook — when installed — sees every datagram before
 * delivery and decides its fate.
 */
class Network
{
  public:
    using Handler = std::function<void(const Envelope &)>;

    /**
     * Adversary verdicts: return the (possibly modified) envelope to
     * forward it, or std::nullopt to drop it. The hook may also call
     * inject() to add extra datagrams (replays, forgeries).
     */
    using AdversaryHook =
        std::function<std::optional<Envelope>(const Envelope &)>;

    explicit Network(sim::EventQueue &eq) : events(eq) {}

    /** Register (or replace) the receive handler for a node. */
    void registerNode(const NodeId &id, Handler handler);

    /** Remove a node; in-flight datagrams to it become undeliverable. */
    void unregisterNode(const NodeId &id);

    /** Configure the link between two nodes (symmetric). */
    void setLink(const NodeId &a, const NodeId &b, LinkParams params);

    /** Default parameters for unconfigured links. */
    void setDefaultLink(LinkParams params) { defaultLink = params; }

    /**
     * Send a datagram from env.src to env.dst.
     *
     * Passes through the adversary hook (if any), then schedules
     * delivery on the event queue.
     */
    void send(Envelope env);

    /** Adversary-side injection: bypasses the hook (it is the hook). */
    void inject(Envelope env);

    /** Install or clear (nullptr) the wire adversary. */
    void setAdversary(AdversaryHook hook) { adversary = std::move(hook); }

    /**
     * Install or clear (nullptr) a deterministic fault plan. The plan
     * composes with the adversary: the adversary hook sees datagrams
     * first (it models an attacker at the sender's switch), then the
     * fault plan decides loss/partition/delay/duplication. Not owned;
     * must outlive the network or be cleared first.
     */
    void setFaultPlan(const sim::FaultPlan *plan) { faults = plan; }

    /** Serialization+propagation delay for a datagram of `bytes`. */
    SimTime transferTime(const NodeId &a, const NodeId &b,
                         std::size_t bytes) const;

    /**
     * Borrow a payload buffer from the recycle pool (empty, with the
     * retained capacity of a previously delivered datagram when one is
     * available). Purely an allocation-churn optimization: senders on
     * hot paths build payloads in a recycled buffer instead of a fresh
     * vector; the buffer flows back into the pool after delivery.
     */
    Bytes takeBuffer(std::size_t reserveHint = 0);

    /** Return a buffer to the recycle pool (bounded; excess is freed). */
    void recycleBuffer(Bytes buffer);

    const NetworkStats &stats() const { return counters; }

    sim::EventQueue &eventQueue() { return events; }

  private:
    void deliver(Envelope env, SimTime extraDelay = 0);
    void deliverCopy(const Envelope &env, SimTime extraDelay);
    void scheduleDelivery(Envelope *slot, SimTime extraDelay);
    void dispatch(Envelope *slot);
    Envelope *acquireSlot();
    void releaseSlot(Envelope *slot);
    const LinkParams &linkBetween(const NodeId &a, const NodeId &b) const;

    sim::EventQueue &events;
    std::map<NodeId, Handler> nodes;
    std::map<std::pair<NodeId, NodeId>, LinkParams> links;
    LinkParams defaultLink;
    AdversaryHook adversary;
    const sim::FaultPlan *faults = nullptr;
    NetworkStats counters;

    /**
     * Envelope slab for the send-deliver path. Every in-flight
     * datagram rides in a pooled Envelope slot, so the delivery
     * callback captures 16 bytes (this + slot pointer) and stays in
     * the event kernel's inline storage — the old per-datagram
     * std::function heap block is gone. The slab owns every slot it
     * ever created (free or in flight), so envelopes pending on a
     * torn-down event queue are still reclaimed.
     */
    std::vector<std::unique_ptr<Envelope>> envelopeSlab;
    std::vector<Envelope *> freeEnvelopes;
    std::vector<Bytes> bufferPool; //!< Recycled payload buffers.

    /** Pool bounds: keep slack memory proportional to real traffic. */
    static constexpr std::size_t kMaxPooledBuffers = 4096;
    static constexpr std::size_t kMinRecycledCapacity = 16;
};

} // namespace monatt::net

#endif // MONATT_NET_NETWORK_H
