/**
 * @file
 * SSL-like authenticated secure channel.
 *
 * §3.4.1: "the CloudMonatt architecture expects the customer, Cloud
 * Controller, Attestation Server and secure Cloud Servers to implement
 * the SSL protocol. Our contribution is defining the contents of the
 * SSL messages...". This module is that SSL substrate: a two-message
 * handshake that (a) authenticates both endpoints with their long-term
 * RSA identity key pairs, (b) transports a fresh premaster secret
 * under the server's public key, and (c) derives the symmetric session
 * keys of Figure 3 (Kx between customer and controller, Ky between
 * controller and attestation server, Kz between attestation server and
 * cloud server). After the handshake, records are protected with
 * AES-128-CTR and HMAC-SHA-256 (encrypt-then-MAC) with strictly
 * increasing sequence numbers for replay protection.
 */

#ifndef MONATT_NET_SECURE_CHANNEL_H
#define MONATT_NET_SECURE_CHANNEL_H

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/drbg.h"
#include "crypto/rsa.h"

namespace monatt::net
{

/**
 * An established, directional secure channel endpoint.
 *
 * Each party holds one SecureChannel; the pair shares a session id and
 * mirrored directional keys. Not copyable across trust domains in the
 * real system — here, produced only by the handshake classes below.
 */
class SecureChannel
{
  public:
    /** Unestablished channel; seal/open fail until a handshake runs. */
    SecureChannel() = default;

    /** True when the handshake completed. */
    bool established() const { return ready; }

    /** 16-byte session identifier shared by both endpoints. */
    const Bytes &sessionId() const { return sid; }

    /**
     * Encrypt-then-MAC a payload into a record.
     * @throws std::logic_error when the channel is not established.
     */
    Bytes seal(const Bytes &plaintext);

    /**
     * Verify and decrypt a record.
     *
     * Fails on MAC mismatch, wrong session, malformed framing, or a
     * non-increasing sequence number (replay).
     */
    Result<Bytes> open(const Bytes &record);

    /** Records sealed so far. */
    std::uint64_t sealedCount() const { return sendSeq; }

  private:
    friend class ClientHandshake;
    friend class ServerHandshake;

    Bytes macInput(std::uint8_t direction, std::uint64_t seq,
                   const Bytes &ciphertext) const;

    /** Derive session id + directional keys from handshake secrets. */
    static void derive(SecureChannel &ch, const Bytes &premaster,
                       const Bytes &clientNonce, const Bytes &serverNonce,
                       bool isClient);

    Bytes sid;
    Bytes sendEncKey, sendMacKey;
    Bytes recvEncKey, recvMacKey;
    std::uint8_t sendDirection = 0;
    std::uint8_t recvDirection = 0;
    std::uint64_t sendSeq = 0;
    std::uint64_t lastRecvSeq = 0;
    bool sawRecv = false;
    bool ready = false;
};

/**
 * Client (initiator) side of the handshake.
 *
 * Usage: build, send helloMessage() to the server, feed the reply to
 * finish() to obtain the established channel.
 */
class ClientHandshake
{
  public:
    /**
     * @param clientId This endpoint's node id.
     * @param serverId The peer's node id.
     * @param clientKeys This endpoint's long-term identity key pair.
     * @param serverPub The peer's long-term public identity key
     *                  (obtained from the cloud's certificate
     *                  infrastructure).
     * @param drbg Randomness source for nonce and premaster.
     * @param clientCtx Optional compiled client signing key; when set
     *        (it must outlive the handshake) the hello signature
     *        reuses its Montgomery constants.
     * @param serverCtx Optional compiled peer key, reused for the
     *        premaster encryption and the ServerHello verification.
     */
    ClientHandshake(std::string clientId, std::string serverId,
                    const crypto::RsaKeyPair &clientKeys,
                    const crypto::RsaPublicKey &serverPub,
                    crypto::HmacDrbg &drbg,
                    const crypto::RsaPrivateContext *clientCtx = nullptr,
                    const crypto::RsaPublicContext *serverCtx = nullptr);

    /** The ClientHello message to transmit. */
    const Bytes &helloMessage() const { return hello; }

    /** Process the ServerHello; on success yields the channel. */
    Result<SecureChannel> finish(const Bytes &serverHello);

  private:
    std::string client;
    std::string server;
    const crypto::RsaPublicKey serverPublic;
    const crypto::RsaPublicContext *serverCtx_;
    Bytes clientNonce;
    Bytes premaster;
    Bytes hello;
    Bytes transcriptHash;
};

/** Server (responder) side of the handshake. */
class ServerHandshake
{
  public:
    /**
     * @param ownCtx Optional compiled private key (must outlive the
     *        handshake); lets every accept() on this endpoint reuse
     *        one set of Montgomery constants for the premaster
     *        decryption and the ServerHello signature.
     */
    ServerHandshake(std::string serverId,
                    const crypto::RsaKeyPair &serverKeys,
                    crypto::HmacDrbg &drbg,
                    const crypto::RsaPrivateContext *ownCtx = nullptr);

    /** Result of a successful accept(). */
    struct Accepted
    {
        Bytes reply;           //!< ServerHello to send back.
        SecureChannel channel; //!< Established channel.
        std::string clientId;  //!< Authenticated peer id.
    };

    /**
     * Verify a ClientHello and produce the ServerHello.
     *
     * @param clientHello The received ClientHello.
     * @param expectedClientPub The client's public identity key, as
     *        known to this server via the cloud's key infrastructure —
     *        a hello signed by any other key is rejected.
     * @param clientCtx Optional compiled form of expectedClientPub,
     *        reused for the hello signature check.
     */
    Result<Accepted> accept(
        const Bytes &clientHello,
        const crypto::RsaPublicKey &expectedClientPub,
        const crypto::RsaPublicContext *clientCtx = nullptr);

  private:
    std::string server;
    const crypto::RsaKeyPair keys;
    crypto::HmacDrbg &rng;
    const crypto::RsaPrivateContext *ownCtx_;
};

} // namespace monatt::net

#endif // MONATT_NET_SECURE_CHANNEL_H
