#include "net/network.h"

#include "common/logging.h"

namespace monatt::net
{

void
Network::registerNode(const NodeId &id, Handler handler)
{
    nodes[id] = std::move(handler);
}

void
Network::unregisterNode(const NodeId &id)
{
    nodes.erase(id);
}

void
Network::setLink(const NodeId &a, const NodeId &b, LinkParams params)
{
    const auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
    links[key] = params;
}

const LinkParams &
Network::linkBetween(const NodeId &a, const NodeId &b) const
{
    const auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
    const auto it = links.find(key);
    return it == links.end() ? defaultLink : it->second;
}

SimTime
Network::transferTime(const NodeId &a, const NodeId &b,
                      std::size_t bytes) const
{
    const LinkParams &link = linkBetween(a, b);
    // bits / (Mbit/s) = microseconds.
    const double serialization =
        static_cast<double>(bytes) * 8.0 / link.megabitsPerSecond;
    return link.latency + static_cast<SimTime>(serialization);
}

void
Network::send(Envelope env)
{
    ++counters.sent;
    counters.bytesSent += env.wireSize();

    if (adversary) {
        const Bytes original = env.encode();
        std::optional<Envelope> verdict = adversary(env);
        if (!verdict) {
            ++counters.droppedByAdversary;
            MONATT_LOG(Debug, "net") << "adversary dropped " << env.channel
                                     << " " << env.src << "->" << env.dst;
            return;
        }
        if (verdict->encode() != original)
            ++counters.modifiedByAdversary;
        env = std::move(*verdict);
    }

    SimTime extraDelay = 0;
    if (faults) {
        const sim::FaultDecision d = faults->decide(
            env.src, env.dst, env.channel, env.seq, events.now());
        if (d.partitioned) {
            ++counters.partitioned;
            MONATT_LOG(Debug, "net")
                << "partition ate " << env.channel << " " << env.src
                << "->" << env.dst;
            return;
        }
        if (d.drop) {
            ++counters.droppedByFault;
            MONATT_LOG(Debug, "net")
                << "fault dropped " << env.channel << " " << env.src
                << "->" << env.dst;
            return;
        }
        if (d.extraDelay > 0) {
            ++counters.delayedByFault;
            extraDelay = d.extraDelay;
        }
        for (int i = 0; i < d.duplicates; ++i) {
            ++counters.duplicated;
            deliverCopy(env, extraDelay);
        }
    }
    deliver(std::move(env), extraDelay);
}

void
Network::inject(Envelope env)
{
    ++counters.injected;
    deliver(std::move(env));
}

Envelope *
Network::acquireSlot()
{
    if (freeEnvelopes.empty()) {
        ++counters.envelopeAllocs;
        envelopeSlab.push_back(std::make_unique<Envelope>());
        return envelopeSlab.back().get();
    }
    ++counters.envelopeReuses;
    Envelope *slot = freeEnvelopes.back();
    freeEnvelopes.pop_back();
    return slot;
}

void
Network::releaseSlot(Envelope *slot)
{
    recycleBuffer(std::move(slot->payload));
    slot->payload = Bytes();
    slot->src.clear();
    slot->dst.clear();
    slot->channel.clear();
    slot->seq = 0;
    slot->bulkBytes = 0;
    freeEnvelopes.push_back(slot);
}

Bytes
Network::takeBuffer(std::size_t reserveHint)
{
    Bytes out;
    if (!bufferPool.empty()) {
        ++counters.bufferReuses;
        out = std::move(bufferPool.back());
        bufferPool.pop_back();
    } else {
        ++counters.bufferAllocs;
    }
    if (reserveHint > 0)
        out.reserve(reserveHint);
    return out;
}

void
Network::recycleBuffer(Bytes buffer)
{
    if (buffer.capacity() < kMinRecycledCapacity ||
        bufferPool.size() >= kMaxPooledBuffers)
        return;
    buffer.clear();
    bufferPool.push_back(std::move(buffer));
}

void
Network::scheduleDelivery(Envelope *slot, SimTime extraDelay)
{
    const SimTime delay =
        transferTime(slot->src, slot->dst, slot->wireSize()) + extraDelay;
    events.scheduleAfter(delay, [this, slot] { dispatch(slot); },
                         "net.deliver");
}

void
Network::dispatch(Envelope *slot)
{
    const auto it = nodes.find(slot->dst);
    if (it == nodes.end()) {
        ++counters.undeliverable;
        MONATT_LOG(Warn, "net") << "undeliverable datagram to "
                                << slot->dst;
    } else {
        ++counters.delivered;
        it->second(*slot);
    }
    releaseSlot(slot);
}

void
Network::deliver(Envelope env, SimTime extraDelay)
{
    Envelope *slot = acquireSlot();
    // Park the slot's retained payload capacity before the move-assign
    // would free it; the sender's buffers then travel zero-copy.
    recycleBuffer(std::move(slot->payload));
    *slot = std::move(env);
    scheduleDelivery(slot, extraDelay);
}

void
Network::deliverCopy(const Envelope &env, SimTime extraDelay)
{
    // Duplicate deliveries (fault plan) copy field-wise into the
    // slot's retained buffers instead of allocating a fresh Envelope.
    Envelope *slot = acquireSlot();
    slot->src = env.src;
    slot->dst = env.dst;
    slot->channel = env.channel;
    slot->seq = env.seq;
    slot->bulkBytes = env.bulkBytes;
    slot->payload.assign(env.payload.begin(), env.payload.end());
    scheduleDelivery(slot, extraDelay);
}

} // namespace monatt::net
