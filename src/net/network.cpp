#include "net/network.h"

#include "common/logging.h"

namespace monatt::net
{

void
Network::registerNode(const NodeId &id, Handler handler)
{
    nodes[id] = std::move(handler);
}

void
Network::unregisterNode(const NodeId &id)
{
    nodes.erase(id);
}

void
Network::setLink(const NodeId &a, const NodeId &b, LinkParams params)
{
    const auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
    links[key] = params;
}

const LinkParams &
Network::linkBetween(const NodeId &a, const NodeId &b) const
{
    const auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
    const auto it = links.find(key);
    return it == links.end() ? defaultLink : it->second;
}

SimTime
Network::transferTime(const NodeId &a, const NodeId &b,
                      std::size_t bytes) const
{
    const LinkParams &link = linkBetween(a, b);
    // bits / (Mbit/s) = microseconds.
    const double serialization =
        static_cast<double>(bytes) * 8.0 / link.megabitsPerSecond;
    return link.latency + static_cast<SimTime>(serialization);
}

void
Network::send(Envelope env)
{
    ++counters.sent;
    counters.bytesSent += env.wireSize();

    if (adversary) {
        const Bytes original = env.encode();
        std::optional<Envelope> verdict = adversary(env);
        if (!verdict) {
            ++counters.droppedByAdversary;
            MONATT_LOG(Debug, "net") << "adversary dropped " << env.channel
                                     << " " << env.src << "->" << env.dst;
            return;
        }
        if (verdict->encode() != original)
            ++counters.modifiedByAdversary;
        env = std::move(*verdict);
    }

    SimTime extraDelay = 0;
    if (faults) {
        const sim::FaultDecision d = faults->decide(
            env.src, env.dst, env.channel, env.seq, events.now());
        if (d.partitioned) {
            ++counters.partitioned;
            MONATT_LOG(Debug, "net")
                << "partition ate " << env.channel << " " << env.src
                << "->" << env.dst;
            return;
        }
        if (d.drop) {
            ++counters.droppedByFault;
            MONATT_LOG(Debug, "net")
                << "fault dropped " << env.channel << " " << env.src
                << "->" << env.dst;
            return;
        }
        if (d.extraDelay > 0) {
            ++counters.delayedByFault;
            extraDelay = d.extraDelay;
        }
        for (int i = 0; i < d.duplicates; ++i) {
            ++counters.duplicated;
            deliver(env, extraDelay);
        }
    }
    deliver(std::move(env), extraDelay);
}

void
Network::inject(Envelope env)
{
    ++counters.injected;
    deliver(std::move(env));
}

void
Network::deliver(Envelope env, SimTime extraDelay)
{
    const SimTime delay =
        transferTime(env.src, env.dst, env.wireSize()) + extraDelay;
    events.scheduleAfter(delay, [this, env = std::move(env)]() {
        const auto it = nodes.find(env.dst);
        if (it == nodes.end()) {
            ++counters.undeliverable;
            MONATT_LOG(Warn, "net") << "undeliverable datagram to "
                                    << env.dst;
            return;
        }
        ++counters.delivered;
        it->second(env);
    }, "net.deliver");
}

} // namespace monatt::net
