/**
 * @file
 * SecureEndpoint: an entity's network identity plus its managed
 * secure channels.
 *
 * Each CloudMonatt entity (customer, Cloud Controller, Attestation
 * Server, privacy CA, each Cloud Server) owns one SecureEndpoint. It
 * registers the entity on the simulated network, establishes
 * SSL-like channels lazily (one per ordered peer pair, so crossed
 * handshakes never conflict), queues outbound messages while a
 * handshake is in flight, and delivers authenticated-decrypted
 * plaintexts to the entity's message handler. Peer identity keys come
 * from a KeyDirectory — the certificate infrastructure the paper
 * assumes ("this is minimally what is required for SSL support, and
 * is already present in all cloud servers").
 */

#ifndef MONATT_NET_SECURE_ENDPOINT_H
#define MONATT_NET_SECURE_ENDPOINT_H

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "crypto/drbg.h"
#include "crypto/rsa.h"
#include "net/network.h"
#include "net/secure_channel.h"

namespace monatt::net
{

/** Trusted directory of long-term identity public keys. */
class KeyDirectory
{
  public:
    /** Register (or replace) a node's public identity key. */
    void publish(const NodeId &id, const crypto::RsaPublicKey &key);

    /** Look up a key; error when the node is unknown. */
    Result<crypto::RsaPublicKey> lookup(const NodeId &id) const;

    /** True when the node has a published key. */
    bool has(const NodeId &id) const { return keys.count(id) != 0; }

  private:
    std::map<NodeId, crypto::RsaPublicKey> keys;
};

/** Per-endpoint delivery statistics (attack-visible effects). */
struct EndpointStats
{
    std::uint64_t sent = 0;
    std::uint64_t received = 0;
    std::uint64_t rejectedRecords = 0;   //!< MAC/replay/decode failures.
    std::uint64_t rejectedHandshakes = 0;
};

/** An entity's secure network attachment. */
class SecureEndpoint
{
  public:
    /** Plaintext delivery: (peer id, message bytes). */
    using MessageHandler =
        std::function<void(const NodeId &, const Bytes &)>;

    /**
     * @param network The fabric to attach to.
     * @param id This entity's node id.
     * @param identityKeys Long-term identity key pair.
     * @param directory Shared key directory (must outlive this).
     * @param drbgSeed Seed for this endpoint's randomness.
     */
    SecureEndpoint(Network &network, NodeId id,
                   crypto::RsaKeyPair identityKeys,
                   const KeyDirectory &directory, const Bytes &drbgSeed);

    ~SecureEndpoint();

    SecureEndpoint(const SecureEndpoint &) = delete;
    SecureEndpoint &operator=(const SecureEndpoint &) = delete;

    /** Install the plaintext message handler. */
    void onMessage(MessageHandler handler)
    {
        handler_ = std::move(handler);
    }

    /**
     * Send `plaintext` to `peer` over a secure channel, establishing
     * one first if needed (messages queue during the handshake).
     * Takes the plaintext by value so callers can move freshly encoded
     * buffers all the way into the sealed envelope without a copy.
     *
     * @param bulkBytes Size of modeled bulk data accompanying the
     *        message (charged to link bandwidth).
     */
    void sendSecure(const NodeId &peer, Bytes plaintext,
                    std::uint64_t bulkBytes = 0);

    /** This endpoint's node id. */
    const NodeId &id() const { return self; }

    /** Delivery statistics. */
    const EndpointStats &stats() const { return counters; }

    /** True when a channel to `peer` (initiated by us) is open. */
    bool channelOpen(const NodeId &peer) const;

  private:
    struct OutboundChannel
    {
        enum class State { Handshaking, Open } state = State::Handshaking;
        std::unique_ptr<ClientHandshake> handshake;
        SecureChannel channel;
        std::deque<std::pair<Bytes, std::uint64_t>> queue;
    };

    void handleDatagram(const Envelope &env);
    void handleHello(const Envelope &env);
    void handleAccept(const Envelope &env);
    void handleData(const Envelope &env, bool inbound);
    void transmit(const NodeId &peer, const std::string &channelTag,
                  Bytes payload, std::uint64_t bulkBytes);

    /** Compiled peer identity key, built lazily and reused across
     * every handshake with that peer. */
    const crypto::RsaPublicContext &peerContext(
        const NodeId &peer, const crypto::RsaPublicKey &key);

    Network &net;
    NodeId self;
    crypto::RsaKeyPair keys;
    /** Compiled own identity key, shared by every handshake this
     * endpoint runs (session-key signature context reuse). */
    crypto::RsaPrivateContext ownCtx;
    const KeyDirectory &dir;
    crypto::HmacDrbg drbg;
    MessageHandler handler_;

    /** Per-peer compiled public keys. */
    std::map<NodeId, crypto::RsaPublicContext> peerContexts;

    /** Channels we initiated, keyed by peer. */
    std::map<NodeId, OutboundChannel> outbound;

    /** Channels peers initiated toward us, keyed by peer. */
    std::map<NodeId, SecureChannel> inbound;

    std::uint64_t seq = 0;
    EndpointStats counters;
};

} // namespace monatt::net

#endif // MONATT_NET_SECURE_ENDPOINT_H
