/**
 * @file
 * SecureEndpoint: an entity's network identity plus its managed
 * secure channels.
 *
 * Each CloudMonatt entity (customer, Cloud Controller, Attestation
 * Server, privacy CA, each Cloud Server) owns one SecureEndpoint. It
 * registers the entity on the simulated network, establishes
 * SSL-like channels lazily (one per ordered peer pair, so crossed
 * handshakes never conflict), queues outbound messages while a
 * handshake is in flight, and delivers authenticated-decrypted
 * plaintexts to the entity's message handler. Peer identity keys come
 * from a KeyDirectory — the certificate infrastructure the paper
 * assumes ("this is minimally what is required for SSL support, and
 * is already present in all cloud servers").
 */

#ifndef MONATT_NET_SECURE_ENDPOINT_H
#define MONATT_NET_SECURE_ENDPOINT_H

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "crypto/drbg.h"
#include "crypto/rsa.h"
#include "net/network.h"
#include "net/secure_channel.h"

namespace monatt::net
{

/** Trusted directory of long-term identity public keys. */
class KeyDirectory
{
  public:
    /** Register (or replace) a node's public identity key. */
    void publish(const NodeId &id, const crypto::RsaPublicKey &key);

    /** Look up a key; error when the node is unknown. */
    Result<crypto::RsaPublicKey> lookup(const NodeId &id) const;

    /** True when the node has a published key. */
    bool has(const NodeId &id) const { return keys.count(id) != 0; }

  private:
    std::map<NodeId, crypto::RsaPublicKey> keys;
};

/** Per-endpoint delivery statistics (attack-visible effects). */
struct EndpointStats
{
    std::uint64_t sent = 0;
    std::uint64_t received = 0;
    std::uint64_t rejectedRecords = 0;   //!< MAC/replay/decode failures.
    std::uint64_t rejectedHandshakes = 0;
    std::uint64_t handshakeRetries = 0;  //!< Hello retransmissions.
    std::uint64_t handshakeFailures = 0; //!< Budgets exhausted.
    std::uint64_t deliveryFailures = 0;  //!< Plaintexts surfaced as lost.
};

/**
 * Handshake reliability knobs. Disabled by default so a bare endpoint
 * behaves exactly as before; entities enable it from the cloud-wide
 * proto::ReliabilityModel. Retry timers are schedule-then-cancel: on a
 * fault-free run every timer is cancelled before firing, so enabling
 * this does not perturb deterministic runs.
 */
struct EndpointReliability
{
    bool enabled = false;
    SimTime handshakeRto = msec(250);
    int handshakeRetryLimit = 5;
};

/** An entity's secure network attachment. */
class SecureEndpoint
{
  public:
    /** Plaintext delivery: (peer id, message bytes). */
    using MessageHandler =
        std::function<void(const NodeId &, const Bytes &)>;

    /** Delivery failure: (peer id, number of plaintexts lost). */
    using DeliveryFailureHandler =
        std::function<void(const NodeId &, std::size_t)>;

    /**
     * @param network The fabric to attach to.
     * @param id This entity's node id.
     * @param identityKeys Long-term identity key pair.
     * @param directory Shared key directory (must outlive this).
     * @param drbgSeed Seed for this endpoint's randomness.
     */
    SecureEndpoint(Network &network, NodeId id,
                   crypto::RsaKeyPair identityKeys,
                   const KeyDirectory &directory, const Bytes &drbgSeed);

    ~SecureEndpoint();

    SecureEndpoint(const SecureEndpoint &) = delete;
    SecureEndpoint &operator=(const SecureEndpoint &) = delete;

    /** Install the plaintext message handler. */
    void onMessage(MessageHandler handler)
    {
        handler_ = std::move(handler);
    }

    /**
     * Install a handler invoked when queued plaintexts are abandoned
     * after the handshake retry budget is exhausted (previously they
     * were silently discarded).
     */
    void onDeliveryFailure(DeliveryFailureHandler handler)
    {
        deliveryFailure_ = std::move(handler);
    }

    /** Configure handshake retransmission. */
    void setReliability(EndpointReliability r) { reliability = r; }

    /**
     * Forget the outbound channel to `peer` so the next send
     * re-handshakes from scratch. Entities call this when higher-level
     * retry budgets point at a dead peer: a crashed-and-restarted peer
     * loses its session keys, so records sealed under the old channel
     * would be rejected forever. Queued plaintexts of an in-flight
     * handshake are surfaced through the delivery-failure handler.
     */
    void resetPeer(const NodeId &peer);

    /**
     * Simulate a crash of this entity: unregister from the network and
     * drop all volatile channel state (open channels, in-flight
     * handshakes, queued plaintexts, handshake caches). Long-term
     * identity keys survive — they live on disk.
     */
    void detach();

    /** Rejoin the network after a crash (fresh channel state). */
    void attach();

    /** True while attached to the network. */
    bool attached() const { return isAttached; }

    /**
     * Send `plaintext` to `peer` over a secure channel, establishing
     * one first if needed (messages queue during the handshake).
     * Takes the plaintext by value so callers can move freshly encoded
     * buffers all the way into the sealed envelope without a copy.
     *
     * @param bulkBytes Size of modeled bulk data accompanying the
     *        message (charged to link bandwidth).
     */
    void sendSecure(const NodeId &peer, Bytes plaintext,
                    std::uint64_t bulkBytes = 0);

    /** This endpoint's node id. */
    const NodeId &id() const { return self; }

    /** Delivery statistics. */
    const EndpointStats &stats() const { return counters; }

    /** True when a channel to `peer` (initiated by us) is open. */
    bool channelOpen(const NodeId &peer) const;

  private:
    struct OutboundChannel
    {
        enum class State { Handshaking, Open } state = State::Handshaking;
        std::unique_ptr<ClientHandshake> handshake;
        SecureChannel channel;
        std::deque<std::pair<Bytes, std::uint64_t>> queue;
        Bytes helloBytes;            //!< For identical retransmission.
        int attempts = 0;            //!< Retries performed so far.
        sim::EventId retryTimer = 0; //!< 0 = none pending.
    };

    /** A peer-initiated channel plus its handshake-dedup cache. */
    struct InboundChannel
    {
        SecureChannel channel;
        Bytes lastHello;    //!< Payload that produced this channel.
        Bytes cachedAccept; //!< Reply to retransmit on duplicate hello.
    };

    void handleDatagram(const Envelope &env);
    void handleHello(const Envelope &env);
    void handleAccept(const Envelope &env);
    void handleData(const Envelope &env, bool inbound);
    void transmit(const NodeId &peer, const std::string &channelTag,
                  Bytes payload, std::uint64_t bulkBytes);

    /** Arm (or re-arm) the hello retransmission timer for `peer`. */
    void scheduleHelloRetry(const NodeId &peer, OutboundChannel &oc);

    /** Timer body: resend the cached hello or give up. */
    void helloRetryFired(const NodeId &peer);

    /** Exhausted budget: surface queued plaintexts as lost. */
    void failOutbound(const NodeId &peer);

    /** Compiled peer identity key, built lazily and reused across
     * every handshake with that peer. */
    const crypto::RsaPublicContext &peerContext(
        const NodeId &peer, const crypto::RsaPublicKey &key);

    Network &net;
    NodeId self;
    crypto::RsaKeyPair keys;
    /** Compiled own identity key, shared by every handshake this
     * endpoint runs (session-key signature context reuse). */
    crypto::RsaPrivateContext ownCtx;
    const KeyDirectory &dir;
    crypto::HmacDrbg drbg;
    MessageHandler handler_;
    DeliveryFailureHandler deliveryFailure_;
    EndpointReliability reliability;
    bool isAttached = true;

    /** Per-peer compiled public keys. */
    std::map<NodeId, crypto::RsaPublicContext> peerContexts;

    /** Channels we initiated, keyed by peer. */
    std::map<NodeId, OutboundChannel> outbound;

    /** Channels peers initiated toward us, keyed by peer. */
    std::map<NodeId, InboundChannel> inbound;

    std::uint64_t seq = 0;
    EndpointStats counters;
};

} // namespace monatt::net

#endif // MONATT_NET_SECURE_ENDPOINT_H
