#include "net/secure_channel.h"

#include <stdexcept>

#include "common/codec.h"
#include "crypto/aes.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace monatt::net
{

namespace
{

constexpr std::uint8_t kDirClientToServer = 0x01;
constexpr std::uint8_t kDirServerToClient = 0x02;
const char *kKdfInfo = "monatt-ssl-v1";

/** Hash of the signed portion of a ClientHello. */
Bytes
clientTranscript(const std::string &clientId, const std::string &serverId,
                 const Bytes &clientNonce, const Bytes &clientPub,
                 const Bytes &encPremaster)
{
    ByteWriter w;
    w.putString("client-hello");
    w.putString(clientId);
    w.putString(serverId);
    w.putBytes(clientNonce);
    w.putBytes(clientPub);
    w.putBytes(encPremaster);
    return crypto::Sha256::hash(w.data());
}

/** Hash of the signed portion of a ServerHello. */
Bytes
serverTranscript(const Bytes &clientTranscriptHash,
                 const Bytes &serverNonce)
{
    ByteWriter w;
    w.putString("server-hello");
    w.putBytes(clientTranscriptHash);
    w.putBytes(serverNonce);
    return crypto::Sha256::hash(w.data());
}


/** 12-byte CTR nonce derived from the record sequence number. */
Bytes
seqNonce(std::uint64_t seq)
{
    Bytes nonce(12, 0x00);
    for (int i = 0; i < 8; ++i)
        nonce[4 + i] = static_cast<std::uint8_t>(seq >> (8 * i));
    return nonce;
}

} // namespace

Bytes
SecureChannel::macInput(std::uint8_t direction, std::uint64_t seq,
                        const Bytes &ciphertext) const
{
    ByteWriter w;
    w.reserve(sid.size() + ciphertext.size() + 2 * 4 + 1 + 8);
    w.putBytes(sid);
    w.putU8(direction);
    w.putU64(seq);
    w.putBytes(ciphertext);
    return w.take();
}

void
SecureChannel::derive(SecureChannel &ch, const Bytes &premaster,
                      const Bytes &clientNonce, const Bytes &serverNonce,
                      bool isClient)
{
    Bytes salt = clientNonce;
    append(salt, serverNonce);
    const Bytes material = crypto::hkdf(salt, premaster,
                                        toBytes(kKdfInfo), 16 + 96);
    ch.sid = Bytes(material.begin(), material.begin() + 16);
    const Bytes c2sEnc(material.begin() + 16, material.begin() + 32);
    const Bytes c2sMac(material.begin() + 32, material.begin() + 64);
    const Bytes s2cEnc(material.begin() + 64, material.begin() + 80);
    const Bytes s2cMac(material.begin() + 80, material.begin() + 112);

    if (isClient) {
        ch.sendEncKey = c2sEnc;
        ch.sendMacKey = c2sMac;
        ch.recvEncKey = s2cEnc;
        ch.recvMacKey = s2cMac;
        ch.sendDirection = kDirClientToServer;
        ch.recvDirection = kDirServerToClient;
    } else {
        ch.sendEncKey = s2cEnc;
        ch.sendMacKey = s2cMac;
        ch.recvEncKey = c2sEnc;
        ch.recvMacKey = c2sMac;
        ch.sendDirection = kDirServerToClient;
        ch.recvDirection = kDirClientToServer;
    }
    ch.ready = true;
}

Bytes
SecureChannel::seal(const Bytes &plaintext)
{
    if (!ready)
        throw std::logic_error("SecureChannel::seal: not established");

    const std::uint64_t seq = ++sendSeq;
    const crypto::Aes128 aes(sendEncKey);
    const Bytes ciphertext = aes.ctrTransform(seqNonce(seq), plaintext);
    const Bytes mac = crypto::hmacSha256(
        sendMacKey, macInput(sendDirection, seq, ciphertext));

    ByteWriter w;
    w.reserve(8 + 4 + ciphertext.size() + mac.size());
    w.putU64(seq);
    w.putBytes(ciphertext);
    w.putRaw(mac);
    return w.take();
}

Result<Bytes>
SecureChannel::open(const Bytes &record)
{
    if (!ready)
        return Result<Bytes>::error("channel not established");

    ByteReader r(record);
    auto seq = r.getU64();
    auto ciphertext = r.getBytes();
    if (!seq || !ciphertext)
        return Result<Bytes>::error("malformed record framing");
    auto mac = r.getRaw(crypto::kSha256DigestSize);
    if (!mac || !r.atEnd())
        return Result<Bytes>::error("malformed record MAC");

    const Bytes expected = crypto::hmacSha256(
        recvMacKey, macInput(recvDirection, seq.value(),
                             ciphertext.value()));
    if (!constantTimeEqual(expected, mac.value()))
        return Result<Bytes>::error("record MAC verification failed");

    // Replay / reorder protection: sequence must strictly increase.
    if (sawRecv && seq.value() <= lastRecvSeq)
        return Result<Bytes>::error("replayed or reordered record");
    lastRecvSeq = seq.value();
    sawRecv = true;

    const crypto::Aes128 aes(recvEncKey);
    return Result<Bytes>::ok(
        aes.ctrTransform(seqNonce(seq.value()), ciphertext.value()));
}

ClientHandshake::ClientHandshake(std::string clientId,
                                 std::string serverId,
                                 const crypto::RsaKeyPair &clientKeys,
                                 const crypto::RsaPublicKey &serverPub,
                                 crypto::HmacDrbg &drbg,
                                 const crypto::RsaPrivateContext *clientCtx,
                                 const crypto::RsaPublicContext *serverCtx)
    : client(std::move(clientId)), server(std::move(serverId)),
      serverPublic(serverPub), serverCtx_(serverCtx)
{
    clientNonce = drbg.generate(32);
    premaster = drbg.generate(32);

    Rng padRng = drbg.forkRng();
    auto encPremaster =
        serverCtx_ ? crypto::rsaEncrypt(*serverCtx_, premaster, padRng)
                   : crypto::rsaEncrypt(serverPublic, premaster, padRng);
    if (!encPremaster)
        throw std::logic_error("ClientHandshake: premaster encryption "
                               "failed: " + encPremaster.errorMessage());

    const Bytes clientPub = clientKeys.pub.encode();
    transcriptHash = clientTranscript(client, server, clientNonce,
                                      clientPub, encPremaster.value());
    const Bytes signature =
        clientCtx ? crypto::rsaSign(*clientCtx, transcriptHash)
                  : crypto::rsaSign(clientKeys.priv, transcriptHash);

    ByteWriter w;
    w.putString(client);
    w.putBytes(clientNonce);
    w.putBytes(clientPub);
    w.putBytes(encPremaster.value());
    w.putBytes(signature);
    hello = w.take();
}

Result<SecureChannel>
ClientHandshake::finish(const Bytes &serverHello)
{
    ByteReader r(serverHello);
    auto serverNonce = r.getBytes();
    auto signature = r.getBytes();
    auto verifyData = r.getBytes();
    if (!serverNonce || !signature || !verifyData || !r.atEnd())
        return Result<SecureChannel>::error("malformed ServerHello");

    const Bytes toSign = serverTranscript(transcriptHash,
                                          serverNonce.value());
    const bool sigOk =
        serverCtx_ ? crypto::rsaVerify(*serverCtx_, toSign,
                                       signature.value())
                   : crypto::rsaVerify(serverPublic, toSign,
                                       signature.value());
    if (!sigOk)
        return Result<SecureChannel>::error(
            "server identity signature verification failed");

    SecureChannel channel;
    SecureChannel::derive(channel, premaster, clientNonce,
                          serverNonce.value(), /*isClient=*/true);

    // Check the server's key-confirmation MAC: proves the server could
    // actually decrypt the premaster (not just sign a transcript).
    const Bytes expected = crypto::hmacSha256(
        channel.recvMacKey, toBytes("server-finished"));
    if (!constantTimeEqual(expected, verifyData.value()))
        return Result<SecureChannel>::error(
            "server key-confirmation failed");

    return Result<SecureChannel>::ok(std::move(channel));
}

ServerHandshake::ServerHandshake(std::string serverId,
                                 const crypto::RsaKeyPair &serverKeys,
                                 crypto::HmacDrbg &drbg,
                                 const crypto::RsaPrivateContext *ownCtx)
    : server(std::move(serverId)), keys(serverKeys), rng(drbg),
      ownCtx_(ownCtx)
{
}

Result<ServerHandshake::Accepted>
ServerHandshake::accept(const Bytes &clientHello,
                        const crypto::RsaPublicKey &expectedClientPub,
                        const crypto::RsaPublicContext *clientCtx)
{
    using R = Result<Accepted>;

    ByteReader r(clientHello);
    auto clientId = r.getString();
    auto clientNonce = r.getBytes();
    auto clientPub = r.getBytes();
    auto encPremaster = r.getBytes();
    auto signature = r.getBytes();
    if (!clientId || !clientNonce || !clientPub || !encPremaster ||
        !signature || !r.atEnd()) {
        return R::error("malformed ClientHello");
    }

    auto claimedPub = crypto::RsaPublicKey::decode(clientPub.value());
    if (!claimedPub)
        return R::error("ClientHello: bad public key encoding");
    if (!(claimedPub.value() == expectedClientPub))
        return R::error("ClientHello: unexpected client identity key");

    const Bytes transcript = clientTranscript(
        clientId.value(), server, clientNonce.value(), clientPub.value(),
        encPremaster.value());
    const bool sigOk =
        clientCtx ? crypto::rsaVerify(*clientCtx, transcript,
                                      signature.value())
                  : crypto::rsaVerify(expectedClientPub, transcript,
                                      signature.value());
    if (!sigOk)
        return R::error("client identity signature verification failed");

    auto premaster =
        ownCtx_ ? crypto::rsaDecrypt(*ownCtx_, encPremaster.value())
                : crypto::rsaDecrypt(keys.priv, encPremaster.value());
    if (!premaster)
        return R::error("premaster decryption failed");

    const Bytes serverNonce = rng.generate(32);
    const Bytes toSign = serverTranscript(transcript, serverNonce);
    const Bytes serverSig = ownCtx_ ? crypto::rsaSign(*ownCtx_, toSign)
                                    : crypto::rsaSign(keys.priv, toSign);

    Accepted out;
    SecureChannel::derive(out.channel, premaster.value(),
                          clientNonce.value(), serverNonce,
                          /*isClient=*/false);
    out.clientId = clientId.value();

    const Bytes verifyData = crypto::hmacSha256(
        out.channel.sendMacKey, toBytes("server-finished"));

    ByteWriter w;
    w.putBytes(serverNonce);
    w.putBytes(serverSig);
    w.putBytes(verifyData);
    out.reply = w.take();
    return R::ok(std::move(out));
}

} // namespace monatt::net
