#include "proto/measurement.h"

#include "common/codec.h"
#include "common/wire.h"

namespace monatt::proto
{

std::string
measurementTypeName(MeasurementType t)
{
    switch (t) {
      case MeasurementType::PlatformPcrs:
        return "platform-pcrs";
      case MeasurementType::VmImageDigest:
        return "vm-image-digest";
      case MeasurementType::TaskListVmi:
        return "task-list-vmi";
      case MeasurementType::TaskListGuest:
        return "task-list-guest";
      case MeasurementType::UsageIntervalHistogram:
        return "usage-interval-histogram";
      case MeasurementType::CpuMeasure:
        return "cpu-measure";
      case MeasurementType::AuditLogDigest:
        return "audit-log-digest";
      case MeasurementType::TcbVersion:
        return "tcb-version";
    }
    return "unknown";
}

Bytes
Measurement::encode() const
{
    ByteWriter w;
    w.putU8(static_cast<std::uint8_t>(type));
    w.putU32(static_cast<std::uint32_t>(strings.size()));
    for (const std::string &s : strings)
        w.putString(s);
    w.putU32(static_cast<std::uint32_t>(values.size()));
    for (std::uint64_t v : values)
        w.putU64(v);
    w.putBytes(digest);
    w.putI64(windowLength);
    return w.take();
}

Result<Measurement>
Measurement::decode(const Bytes &data)
{
    using R = Result<Measurement>;
    ByteReader r(data);
    Measurement m;
    auto type = r.getU8();
    if (!type)
        return R::error("Measurement: missing type");
    m.type = static_cast<MeasurementType>(type.value());

    auto numStrings = r.getU32();
    if (!numStrings || numStrings.value() > 100000)
        return R::error("Measurement: bad string count");
    for (std::uint32_t i = 0; i < numStrings.value(); ++i) {
        auto s = r.getString();
        if (!s)
            return R::error("Measurement: truncated string");
        m.strings.push_back(s.take());
    }

    auto numValues = r.getU32();
    if (!numValues || numValues.value() > 1000000)
        return R::error("Measurement: bad value count");
    for (std::uint32_t i = 0; i < numValues.value(); ++i) {
        auto v = r.getU64();
        if (!v)
            return R::error("Measurement: truncated value");
        m.values.push_back(v.value());
    }

    auto digest = r.getBytes();
    auto window = r.getI64();
    if (!digest || !window || !r.atEnd())
        return R::error("Measurement: truncated trailer");
    m.digest = digest.take();
    m.windowLength = window.value();
    return R::ok(std::move(m));
}

Bytes
Measurement::encodeTagged() const
{
    wire::WireWriter w;
    w.putVarint(1, static_cast<std::uint64_t>(type));
    for (const std::string &s : strings)
        w.putString(2, s);
    if (!values.empty()) {
        Bytes packed;
        for (std::uint64_t v : values)
            wire::appendVarint(packed, v);
        w.putLen(3, packed);
    }
    if (!digest.empty())
        w.putLen(4, digest);
    if (windowLength != 0)
        w.putSigned(5, windowLength);
    return w.take();
}

Result<Measurement>
Measurement::decodeTagged(const Bytes &data)
{
    using R = Result<Measurement>;
    wire::WireReader r(data);
    Measurement m;
    while (!r.atEnd()) {
        auto f = r.next();
        if (!f)
            return R::error("Measurement: " + f.errorMessage());
        const wire::WireField &fld = f.value();
        switch (fld.number) {
          case 1:
            if (fld.type == wire::WireType::Varint)
                m.type = static_cast<MeasurementType>(fld.varint);
            break;
          case 2:
            if (fld.type == wire::WireType::Len) {
                if (m.strings.size() >= 100000)
                    return R::error("Measurement: bad string count");
                m.strings.push_back(fld.asString());
            }
            break;
          case 3:
            if (fld.type == wire::WireType::Len) {
                wire::WireReader packed(fld.bytes);
                while (!packed.atEnd()) {
                    auto v = packed.nextVarint();
                    if (!v)
                        return R::error("Measurement: " +
                                        v.errorMessage());
                    if (m.values.size() >= 1000000)
                        return R::error("Measurement: bad value count");
                    m.values.push_back(v.value());
                }
            }
            break;
          case 4:
            if (fld.type == wire::WireType::Len)
                m.digest = fld.bytes;
            break;
          case 5:
            if (fld.type == wire::WireType::Varint)
                m.windowLength = fld.asSigned();
            break;
          default:
            break; // Unknown field: skip.
        }
    }
    return R::ok(std::move(m));
}

bool
Measurement::operator==(const Measurement &o) const
{
    return type == o.type && strings == o.strings && values == o.values &&
           digest == o.digest && windowLength == o.windowLength;
}

const Measurement *
MeasurementSet::find(MeasurementType t) const
{
    for (const Measurement &m : items) {
        if (m.type == t)
            return &m;
    }
    return nullptr;
}

Bytes
MeasurementSet::encode() const
{
    ByteWriter w;
    w.putU32(static_cast<std::uint32_t>(items.size()));
    for (const Measurement &m : items)
        w.putBytes(m.encode());
    return w.take();
}

Result<MeasurementSet>
MeasurementSet::decode(const Bytes &data)
{
    using R = Result<MeasurementSet>;
    ByteReader r(data);
    auto count = r.getU32();
    if (!count || count.value() > 1000)
        return R::error("MeasurementSet: bad count");
    MeasurementSet set;
    for (std::uint32_t i = 0; i < count.value(); ++i) {
        auto blob = r.getBytes();
        if (!blob)
            return R::error("MeasurementSet: truncated item");
        auto m = Measurement::decode(blob.value());
        if (!m)
            return R::error("MeasurementSet: " + m.errorMessage());
        set.items.push_back(m.take());
    }
    if (!r.atEnd())
        return R::error("MeasurementSet: trailing bytes");
    return R::ok(std::move(set));
}

Bytes
MeasurementSet::encodeTagged() const
{
    wire::WireWriter w;
    for (const Measurement &m : items)
        w.putLen(1, m.encodeTagged());
    return w.take();
}

Result<MeasurementSet>
MeasurementSet::decodeTagged(const Bytes &data)
{
    using R = Result<MeasurementSet>;
    wire::WireReader r(data);
    MeasurementSet set;
    while (!r.atEnd()) {
        auto f = r.next();
        if (!f)
            return R::error("MeasurementSet: " + f.errorMessage());
        const wire::WireField &fld = f.value();
        if (fld.number == 1 && fld.type == wire::WireType::Len) {
            if (set.items.size() >= 1000)
                return R::error("MeasurementSet: bad count");
            auto m = Measurement::decodeTagged(fld.bytes);
            if (!m)
                return R::error("MeasurementSet: " + m.errorMessage());
            set.items.push_back(m.take());
        }
    }
    return R::ok(std::move(set));
}

bool
MeasurementSet::operator==(const MeasurementSet &o) const
{
    return items == o.items;
}

Bytes
encodeRequestList(const MeasurementRequestList &rm)
{
    ByteWriter w;
    w.putU32(static_cast<std::uint32_t>(rm.size()));
    for (MeasurementType t : rm)
        w.putU8(static_cast<std::uint8_t>(t));
    return w.take();
}

Result<MeasurementRequestList>
decodeRequestList(const Bytes &data)
{
    using R = Result<MeasurementRequestList>;
    ByteReader r(data);
    auto count = r.getU32();
    if (!count || count.value() > 100)
        return R::error("rM: bad count");
    MeasurementRequestList rm;
    for (std::uint32_t i = 0; i < count.value(); ++i) {
        auto t = r.getU8();
        if (!t)
            return R::error("rM: truncated");
        rm.push_back(static_cast<MeasurementType>(t.value()));
    }
    if (!r.atEnd())
        return R::error("rM: trailing bytes");
    return R::ok(std::move(rm));
}

Bytes
encodeRequestListPacked(const MeasurementRequestList &rm)
{
    Bytes out;
    for (MeasurementType t : rm)
        wire::appendVarint(out, static_cast<std::uint64_t>(t));
    return out;
}

Result<MeasurementRequestList>
decodeRequestListPacked(const Bytes &data)
{
    using R = Result<MeasurementRequestList>;
    wire::WireReader r(data);
    MeasurementRequestList rm;
    while (!r.atEnd()) {
        auto t = r.nextVarint();
        if (!t)
            return R::error("rM: " + t.errorMessage());
        if (rm.size() >= 100)
            return R::error("rM: bad count");
        rm.push_back(static_cast<MeasurementType>(t.value()));
    }
    return R::ok(std::move(rm));
}

MeasurementRequestList
measurementsForProperty(SecurityProperty p)
{
    switch (p) {
      case SecurityProperty::StartupIntegrity:
        return {MeasurementType::PlatformPcrs,
                MeasurementType::VmImageDigest};
      case SecurityProperty::RuntimeIntegrity:
        return {MeasurementType::TaskListVmi,
                MeasurementType::TaskListGuest};
      case SecurityProperty::CovertChannelFreedom:
        return {MeasurementType::UsageIntervalHistogram};
      case SecurityProperty::CpuAvailability:
        return {MeasurementType::CpuMeasure};
      case SecurityProperty::AuditLogIntegrity:
        return {MeasurementType::AuditLogDigest};
    }
    return {};
}

} // namespace monatt::proto
