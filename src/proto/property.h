/**
 * @file
 * Security properties and health verdicts.
 *
 * §4: "A healthy VM satisfies the security properties the customer
 * requested for his leased VM." The four properties here are the
 * paper's four case studies; the architecture treats the set as open
 * (the Attestation Server's interpreter registry in
 * attestation/interpreters.h accepts new entries), matching §4.1's
 * "CloudMonatt is flexible enough to support a variety of detection
 * mechanisms".
 */

#ifndef MONATT_PROTO_PROPERTY_H
#define MONATT_PROTO_PROPERTY_H

#include <cstdint>
#include <string>
#include <vector>

namespace monatt::proto
{

/** The security properties a customer can request monitoring for. */
enum class SecurityProperty : std::uint8_t
{
    StartupIntegrity = 1,       //!< §4.2: platform + VM image hashes.
    RuntimeIntegrity = 2,       //!< §4.3: VMI task-list cross-check.
    CovertChannelFreedom = 3,   //!< §4.4: CPU usage-interval analysis.
    CpuAvailability = 4,        //!< §4.5: SLA CPU-share verification.

    /**
     * Extension beyond the paper's four case studies, built on the
     * "logging, auditing and provenance mechanisms" §4 says the
     * architecture can integrate: the guest's append-only audit log
     * is measured as a hash chain; the Attestation Server compares
     * successive measurements to detect truncation or rewriting.
     */
    AuditLogIntegrity = 5,
};

/** All defined properties. */
const std::vector<SecurityProperty> &allProperties();

/** Human-readable property name. */
std::string propertyName(SecurityProperty p);

/** Parse a property name; throws std::invalid_argument when unknown. */
SecurityProperty propertyFromName(const std::string &name);

/** The appraisal outcome for one property. */
enum class HealthStatus : std::uint8_t
{
    Healthy = 0,      //!< Property held over the measured window.
    Compromised = 1,  //!< Property violated.
    Unknown = 2,      //!< Could not be determined (e.g. no data).

    /**
     * The evidence itself is stale: the host's firmware TCB version
     * is below the verifier's minimum-TCB floor, or the quote was a
     * replay of pre-upgrade measurements ("Insecure Until Proven
     * Updated", Buhren et al.). Distinct from Compromised — the
     * measured content may look healthy, but a downgraded TCB cannot
     * be trusted to have measured honestly.
     */
    TcbRollback = 3,
};

/** Human-readable status name. */
std::string healthStatusName(HealthStatus s);

} // namespace monatt::proto

#endif // MONATT_PROTO_PROPERTY_H
