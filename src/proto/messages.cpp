#include "proto/messages.h"

#include "common/codec.h"
#include "crypto/sha256.h"

namespace monatt::proto
{

namespace
{

void
putProperties(ByteWriter &w, const std::vector<SecurityProperty> &props)
{
    w.putU32(static_cast<std::uint32_t>(props.size()));
    for (SecurityProperty p : props)
        w.putU8(static_cast<std::uint8_t>(p));
}

bool
getProperties(ByteReader &r, std::vector<SecurityProperty> &props)
{
    auto count = r.getU32();
    if (!count || count.value() > 64)
        return false;
    for (std::uint32_t i = 0; i < count.value(); ++i) {
        auto p = r.getU8();
        if (!p)
            return false;
        props.push_back(static_cast<SecurityProperty>(p.value()));
    }
    return true;
}

Bytes
encodeProperties(const std::vector<SecurityProperty> &props)
{
    ByteWriter w;
    putProperties(w, props);
    return w.take();
}

} // namespace

Bytes
packMessage(MessageKind kind, const Bytes &body)
{
    ByteWriter w;
    w.reserve(1 + 4 + body.size());
    w.putU8(static_cast<std::uint8_t>(kind));
    w.putBytes(body);
    return w.take();
}

Bytes
packMessageTagged(MessageKind kind, const Bytes &body)
{
    Bytes out;
    out.reserve(2 + wire::varintSize(body.size()) + body.size());
    out.push_back(kTaggedFrameMarker);
    out.push_back(static_cast<std::uint8_t>(kind));
    wire::appendVarint(out, body.size());
    out.insert(out.end(), body.begin(), body.end());
    return out;
}

Result<UnpackedMessage>
unpackMessage(const Bytes &framed)
{
    using R = Result<UnpackedMessage>;
    if (!framed.empty() && framed[0] == kTaggedFrameMarker) {
        if (framed.size() < 2)
            return R::error("malformed tagged frame");
        UnpackedMessage m;
        m.kind = static_cast<MessageKind>(framed[1]);
        m.format = WireFormat::Tagged;
        std::size_t pos = 2;
        std::uint64_t len = 0;
        int shift = 0;
        bool complete = false;
        while (pos < framed.size() && shift < 64) {
            const std::uint8_t b = framed[pos++];
            len |= static_cast<std::uint64_t>(b & 0x7F) << shift;
            if ((b & 0x80) == 0) {
                complete = true;
                break;
            }
            shift += 7;
        }
        if (!complete || len != framed.size() - pos)
            return R::error("malformed tagged frame");
        m.body.assign(framed.begin() + static_cast<std::ptrdiff_t>(pos),
                      framed.end());
        return R::ok(std::move(m));
    }
    ByteReader r(framed);
    auto kind = r.getU8();
    auto body = r.getBytes();
    if (!kind || !body || !r.atEnd())
        return R::error("malformed message frame");
    UnpackedMessage m;
    m.kind = static_cast<MessageKind>(kind.value());
    m.format = WireFormat::Legacy;
    m.body = body.take();
    return R::ok(std::move(m));
}

Bytes
AttestRequest::encode() const
{
    ByteWriter w;
    w.putU64(requestId);
    w.putString(vid);
    putProperties(w, properties);
    w.putBytes(nonce1);
    w.putU8(static_cast<std::uint8_t>(mode));
    w.putI64(period);
    return w.take();
}

Result<AttestRequest>
AttestRequest::decode(const Bytes &data)
{
    using R = Result<AttestRequest>;
    ByteReader r(data);
    AttestRequest m;
    auto id = r.getU64();
    auto vid = r.getString();
    if (!id || !vid || !getProperties(r, m.properties))
        return R::error("AttestRequest: malformed");
    auto nonce = r.getBytes();
    auto mode = r.getU8();
    auto period = r.getI64();
    if (!nonce || !mode || !period || !r.atEnd())
        return R::error("AttestRequest: truncated");
    m.requestId = id.value();
    m.vid = vid.take();
    m.nonce1 = nonce.take();
    m.mode = static_cast<AttestMode>(mode.value());
    m.period = period.value();
    return R::ok(std::move(m));
}

Bytes
AttestForward::encode() const
{
    ByteWriter w;
    w.putU64(requestId);
    w.putString(vid);
    w.putString(serverId);
    putProperties(w, properties);
    w.putBytes(nonce2);
    w.putU8(static_cast<std::uint8_t>(mode));
    w.putI64(period);
    return w.take();
}

Result<AttestForward>
AttestForward::decode(const Bytes &data)
{
    using R = Result<AttestForward>;
    ByteReader r(data);
    AttestForward m;
    auto id = r.getU64();
    auto vid = r.getString();
    auto server = r.getString();
    if (!id || !vid || !server || !getProperties(r, m.properties))
        return R::error("AttestForward: malformed");
    auto nonce = r.getBytes();
    auto mode = r.getU8();
    auto period = r.getI64();
    if (!nonce || !mode || !period || !r.atEnd())
        return R::error("AttestForward: truncated");
    m.requestId = id.value();
    m.vid = vid.take();
    m.serverId = server.take();
    m.nonce2 = nonce.take();
    m.mode = static_cast<AttestMode>(mode.value());
    m.period = period.value();
    return R::ok(std::move(m));
}

Bytes
MeasureRequest::encode() const
{
    ByteWriter w;
    w.putU64(requestId);
    w.putString(vid);
    w.putBytes(encodeRequestList(rm));
    w.putBytes(nonce3);
    w.putI64(window);
    return w.take();
}

Result<MeasureRequest>
MeasureRequest::decode(const Bytes &data)
{
    using R = Result<MeasureRequest>;
    ByteReader r(data);
    auto id = r.getU64();
    auto vid = r.getString();
    auto rmBlob = r.getBytes();
    auto nonce = r.getBytes();
    auto window = r.getI64();
    if (!id || !vid || !rmBlob || !nonce || !window || !r.atEnd())
        return R::error("MeasureRequest: malformed");
    auto rm = decodeRequestList(rmBlob.value());
    if (!rm)
        return R::error("MeasureRequest: " + rm.errorMessage());
    MeasureRequest m;
    m.requestId = id.value();
    m.vid = vid.take();
    m.rm = rm.take();
    m.nonce3 = nonce.take();
    m.window = window.value();
    return R::ok(std::move(m));
}

Bytes
MeasureResponse::quoteInput(const std::string &vid,
                            const MeasurementRequestList &rm,
                            const MeasurementSet &m, const Bytes &nonce3)
{
    ByteWriter w;
    w.putString("Q3");
    w.putString(vid);
    w.putBytes(encodeRequestList(rm));
    w.putBytes(m.encode());
    w.putBytes(nonce3);
    return crypto::Sha256::hash(w.data());
}

Bytes
MeasureResponse::signedPortion() const
{
    ByteWriter w;
    w.putString("measure-response");
    w.putU64(requestId);
    w.putString(vid);
    w.putBytes(encodeRequestList(rm));
    w.putBytes(m.encode());
    w.putBytes(nonce3);
    w.putBytes(quote3);
    return w.take();
}

Bytes
MeasureResponse::encode() const
{
    ByteWriter w;
    w.putU64(requestId);
    w.putString(vid);
    w.putBytes(encodeRequestList(rm));
    w.putBytes(m.encode());
    w.putBytes(nonce3);
    w.putBytes(quote3);
    w.putBytes(signature);
    w.putBytes(certificate);
    return w.take();
}

Result<MeasureResponse>
MeasureResponse::decode(const Bytes &data)
{
    using R = Result<MeasureResponse>;
    ByteReader r(data);
    auto id = r.getU64();
    auto vid = r.getString();
    auto rmBlob = r.getBytes();
    auto mBlob = r.getBytes();
    auto nonce = r.getBytes();
    auto quote = r.getBytes();
    auto sig = r.getBytes();
    auto cert = r.getBytes();
    if (!id || !vid || !rmBlob || !mBlob || !nonce || !quote || !sig ||
        !cert || !r.atEnd()) {
        return R::error("MeasureResponse: malformed");
    }
    auto rm = decodeRequestList(rmBlob.value());
    auto m = MeasurementSet::decode(mBlob.value());
    if (!rm || !m)
        return R::error("MeasureResponse: bad rM or M");
    MeasureResponse out;
    out.requestId = id.value();
    out.vid = vid.take();
    out.rm = rm.take();
    out.m = m.take();
    out.nonce3 = nonce.take();
    out.quote3 = quote.take();
    out.signature = sig.take();
    out.certificate = cert.take();
    return R::ok(std::move(out));
}

bool
AttestationReport::allHealthy() const
{
    if (results.empty())
        return false;
    for (const PropertyResult &pr : results) {
        if (pr.status != HealthStatus::Healthy)
            return false;
    }
    return true;
}

const PropertyResult *
AttestationReport::find(SecurityProperty p) const
{
    for (const PropertyResult &pr : results) {
        if (pr.property == p)
            return &pr;
    }
    return nullptr;
}

Bytes
AttestationReport::encode() const
{
    ByteWriter w;
    w.putString(vid);
    w.putU32(static_cast<std::uint32_t>(results.size()));
    for (const PropertyResult &pr : results) {
        w.putU8(static_cast<std::uint8_t>(pr.property));
        w.putU8(static_cast<std::uint8_t>(pr.status));
        w.putString(pr.detail);
    }
    w.putI64(issuedAt);
    return w.take();
}

Result<AttestationReport>
AttestationReport::decode(const Bytes &data)
{
    using R = Result<AttestationReport>;
    ByteReader r(data);
    AttestationReport rep;
    auto vid = r.getString();
    auto count = r.getU32();
    if (!vid || !count || count.value() > 64)
        return R::error("AttestationReport: malformed");
    rep.vid = vid.take();
    for (std::uint32_t i = 0; i < count.value(); ++i) {
        auto prop = r.getU8();
        auto status = r.getU8();
        auto detail = r.getString();
        if (!prop || !status || !detail)
            return R::error("AttestationReport: truncated result");
        PropertyResult pr;
        pr.property = static_cast<SecurityProperty>(prop.value());
        pr.status = static_cast<HealthStatus>(status.value());
        pr.detail = detail.take();
        rep.results.push_back(std::move(pr));
    }
    auto at = r.getI64();
    if (!at || !r.atEnd())
        return R::error("AttestationReport: truncated");
    rep.issuedAt = at.value();
    return R::ok(std::move(rep));
}

Bytes
ReportToController::quoteInput(const std::string &vid,
                               const std::string &serverId,
                               const std::vector<SecurityProperty> &props,
                               const AttestationReport &report,
                               const Bytes &nonce2)
{
    ByteWriter w;
    w.putString("Q2");
    w.putString(vid);
    w.putString(serverId);
    w.putBytes(encodeProperties(props));
    w.putBytes(report.encode());
    w.putBytes(nonce2);
    return crypto::Sha256::hash(w.data());
}

Bytes
ReportToController::signedPortion() const
{
    ByteWriter w;
    w.putString("report-to-controller");
    w.putU64(requestId);
    w.putString(vid);
    w.putString(serverId);
    putProperties(w, properties);
    w.putBytes(report.encode());
    w.putBytes(nonce2);
    w.putBytes(quote2);
    return w.take();
}

Bytes
ReportToController::encode() const
{
    ByteWriter w;
    w.putU64(requestId);
    w.putString(vid);
    w.putString(serverId);
    putProperties(w, properties);
    w.putBytes(report.encode());
    w.putBytes(nonce2);
    w.putBytes(quote2);
    w.putBytes(signature);
    return w.take();
}

Result<ReportToController>
ReportToController::decode(const Bytes &data)
{
    using R = Result<ReportToController>;
    ByteReader r(data);
    ReportToController m;
    auto id = r.getU64();
    auto vid = r.getString();
    auto server = r.getString();
    if (!id || !vid || !server || !getProperties(r, m.properties))
        return R::error("ReportToController: malformed");
    auto repBlob = r.getBytes();
    auto nonce = r.getBytes();
    auto quote = r.getBytes();
    auto sig = r.getBytes();
    if (!repBlob || !nonce || !quote || !sig || !r.atEnd())
        return R::error("ReportToController: truncated");
    auto rep = AttestationReport::decode(repBlob.value());
    if (!rep)
        return R::error("ReportToController: bad report");
    m.requestId = id.value();
    m.vid = vid.take();
    m.serverId = server.take();
    m.report = rep.take();
    m.nonce2 = nonce.take();
    m.quote2 = quote.take();
    m.signature = sig.take();
    return R::ok(std::move(m));
}

Bytes
ReportToCustomer::quoteInput(const std::string &vid,
                             const std::vector<SecurityProperty> &props,
                             const AttestationReport &report,
                             const Bytes &nonce1)
{
    ByteWriter w;
    w.putString("Q1");
    w.putString(vid);
    w.putBytes(encodeProperties(props));
    w.putBytes(report.encode());
    w.putBytes(nonce1);
    return crypto::Sha256::hash(w.data());
}

Bytes
ReportToCustomer::signedPortion() const
{
    ByteWriter w;
    w.putString("report-to-customer");
    w.putU64(requestId);
    w.putString(vid);
    putProperties(w, properties);
    w.putBytes(report.encode());
    w.putBytes(nonce1);
    w.putBytes(quote1);
    w.putU8(finalPeriodic ? 1 : 0);
    return w.take();
}

Bytes
ReportToCustomer::encode() const
{
    ByteWriter w;
    w.putU64(requestId);
    w.putString(vid);
    putProperties(w, properties);
    w.putBytes(report.encode());
    w.putBytes(nonce1);
    w.putBytes(quote1);
    w.putBytes(signature);
    w.putU8(finalPeriodic ? 1 : 0);
    return w.take();
}

Result<ReportToCustomer>
ReportToCustomer::decode(const Bytes &data)
{
    using R = Result<ReportToCustomer>;
    ByteReader r(data);
    ReportToCustomer m;
    auto id = r.getU64();
    auto vid = r.getString();
    if (!id || !vid || !getProperties(r, m.properties))
        return R::error("ReportToCustomer: malformed");
    auto repBlob = r.getBytes();
    auto nonce = r.getBytes();
    auto quote = r.getBytes();
    auto sig = r.getBytes();
    auto fin = r.getU8();
    if (!repBlob || !nonce || !quote || !sig || !fin || !r.atEnd())
        return R::error("ReportToCustomer: truncated");
    auto rep = AttestationReport::decode(repBlob.value());
    if (!rep)
        return R::error("ReportToCustomer: bad report");
    m.requestId = id.value();
    m.vid = vid.take();
    m.report = rep.take();
    m.nonce1 = nonce.take();
    m.quote1 = quote.take();
    m.signature = sig.take();
    m.finalPeriodic = fin.value() != 0;
    return R::ok(std::move(m));
}

Bytes
CertRequest::encode() const
{
    ByteWriter w;
    w.putString(serverId);
    w.putString(sessionLabel);
    w.putBytes(avk);
    w.putBytes(avkSignature);
    return w.take();
}

Result<CertRequest>
CertRequest::decode(const Bytes &data)
{
    using R = Result<CertRequest>;
    ByteReader r(data);
    auto server = r.getString();
    auto label = r.getString();
    auto avk = r.getBytes();
    auto sig = r.getBytes();
    if (!server || !label || !avk || !sig || !r.atEnd())
        return R::error("CertRequest: malformed");
    CertRequest m;
    m.serverId = server.take();
    m.sessionLabel = label.take();
    m.avk = avk.take();
    m.avkSignature = sig.take();
    return R::ok(std::move(m));
}

Bytes
CertResponse::encode() const
{
    ByteWriter w;
    w.putString(sessionLabel);
    w.putU8(ok ? 1 : 0);
    w.putString(error);
    w.putBytes(certificate);
    return w.take();
}

Result<CertResponse>
CertResponse::decode(const Bytes &data)
{
    using R = Result<CertResponse>;
    ByteReader r(data);
    auto label = r.getString();
    auto ok = r.getU8();
    auto error = r.getString();
    auto cert = r.getBytes();
    if (!label || !ok || !error || !cert || !r.atEnd())
        return R::error("CertResponse: malformed");
    CertResponse m;
    m.sessionLabel = label.take();
    m.ok = ok.value() != 0;
    m.error = error.take();
    m.certificate = cert.take();
    return R::ok(std::move(m));
}

Bytes
AttestFailure::encode() const
{
    ByteWriter w;
    w.putU64(requestId);
    w.putString(vid);
    w.putU8(static_cast<std::uint8_t>(outcome));
    w.putString(reason);
    return w.take();
}

Result<AttestFailure>
AttestFailure::decode(const Bytes &data)
{
    using R = Result<AttestFailure>;
    ByteReader r(data);
    auto id = r.getU64();
    auto vid = r.getString();
    auto outcome = r.getU8();
    auto reason = r.getString();
    if (!id || !vid || !outcome || !reason || !r.atEnd())
        return R::error("AttestFailure: malformed");
    if (outcome.value() !=
            static_cast<std::uint8_t>(FailureOutcome::Unreachable) &&
        outcome.value() !=
            static_cast<std::uint8_t>(FailureOutcome::Failed))
        return R::error("AttestFailure: bad outcome");
    AttestFailure m;
    m.requestId = id.value();
    m.vid = vid.take();
    m.outcome = static_cast<FailureOutcome>(outcome.value());
    m.reason = reason.take();
    return R::ok(std::move(m));
}

Bytes
LaunchVm::encode() const
{
    ByteWriter w;
    w.putString(vid);
    w.putString(name);
    w.putU32(numVcpus);
    w.putU64(ramMb);
    w.putU64(diskGb);
    w.putU64(imageSizeMb);
    w.putBytes(image);
    w.putI64(weight);
    return w.take();
}

Result<LaunchVm>
LaunchVm::decode(const Bytes &data)
{
    using R = Result<LaunchVm>;
    ByteReader r(data);
    auto vid = r.getString();
    auto name = r.getString();
    auto vcpus = r.getU32();
    auto ram = r.getU64();
    auto disk = r.getU64();
    auto imgSize = r.getU64();
    auto image = r.getBytes();
    auto weight = r.getI64();
    if (!vid || !name || !vcpus || !ram || !disk || !imgSize || !image ||
        !weight || !r.atEnd()) {
        return R::error("LaunchVm: malformed");
    }
    LaunchVm m;
    m.vid = vid.take();
    m.name = name.take();
    m.numVcpus = vcpus.value();
    m.ramMb = ram.value();
    m.diskGb = disk.value();
    m.imageSizeMb = imgSize.value();
    m.image = image.take();
    m.weight = static_cast<int>(weight.value());
    return R::ok(std::move(m));
}

Bytes
LaunchVmAck::encode() const
{
    ByteWriter w;
    w.putString(vid);
    w.putU8(ok ? 1 : 0);
    w.putString(error);
    w.putBytes(imageDigest);
    return w.take();
}

Result<LaunchVmAck>
LaunchVmAck::decode(const Bytes &data)
{
    using R = Result<LaunchVmAck>;
    ByteReader r(data);
    auto vid = r.getString();
    auto ok = r.getU8();
    auto error = r.getString();
    auto digest = r.getBytes();
    if (!vid || !ok || !error || !digest || !r.atEnd())
        return R::error("LaunchVmAck: malformed");
    LaunchVmAck m;
    m.vid = vid.take();
    m.ok = ok.value() != 0;
    m.error = error.take();
    m.imageDigest = digest.take();
    return R::ok(std::move(m));
}

Bytes
VmCommand::encode() const
{
    ByteWriter w;
    w.putString(vid);
    return w.take();
}

Result<VmCommand>
VmCommand::decode(const Bytes &data)
{
    ByteReader r(data);
    auto vid = r.getString();
    if (!vid || !r.atEnd())
        return Result<VmCommand>::error("VmCommand: malformed");
    VmCommand m;
    m.vid = vid.take();
    return Result<VmCommand>::ok(std::move(m));
}

Bytes
VmCommandAck::encode() const
{
    ByteWriter w;
    w.putString(vid);
    w.putU8(ok ? 1 : 0);
    w.putString(error);
    return w.take();
}

Result<VmCommandAck>
VmCommandAck::decode(const Bytes &data)
{
    using R = Result<VmCommandAck>;
    ByteReader r(data);
    auto vid = r.getString();
    auto ok = r.getU8();
    auto error = r.getString();
    if (!vid || !ok || !error || !r.atEnd())
        return R::error("VmCommandAck: malformed");
    VmCommandAck m;
    m.vid = vid.take();
    m.ok = ok.value() != 0;
    m.error = error.take();
    return R::ok(std::move(m));
}

Bytes
LaunchRequest::encode() const
{
    ByteWriter w;
    w.putU64(requestId);
    w.putString(name);
    w.putString(imageName);
    w.putString(flavorName);
    putProperties(w, properties);
    w.putBytes(image);
    w.putU64(imageSizeMb);
    return w.take();
}

Result<LaunchRequest>
LaunchRequest::decode(const Bytes &data)
{
    using R = Result<LaunchRequest>;
    ByteReader r(data);
    LaunchRequest m;
    auto id = r.getU64();
    auto name = r.getString();
    auto image = r.getString();
    auto flavor = r.getString();
    if (!id || !name || !image || !flavor ||
        !getProperties(r, m.properties)) {
        return R::error("LaunchRequest: malformed");
    }
    auto content = r.getBytes();
    auto sizeMb = r.getU64();
    if (!content || !sizeMb || !r.atEnd())
        return R::error("LaunchRequest: truncated");
    m.requestId = id.value();
    m.name = name.take();
    m.imageName = image.take();
    m.flavorName = flavor.take();
    m.image = content.take();
    m.imageSizeMb = sizeMb.value();
    return R::ok(std::move(m));
}

Bytes
LaunchResponse::encode() const
{
    ByteWriter w;
    w.putU64(requestId);
    w.putString(vid);
    w.putU8(ok ? 1 : 0);
    w.putString(error);
    return w.take();
}

Result<LaunchResponse>
LaunchResponse::decode(const Bytes &data)
{
    using R = Result<LaunchResponse>;
    ByteReader r(data);
    auto id = r.getU64();
    auto vid = r.getString();
    auto ok = r.getU8();
    auto error = r.getString();
    if (!id || !vid || !ok || !error || !r.atEnd())
        return R::error("LaunchResponse: malformed");
    LaunchResponse m;
    m.requestId = id.value();
    m.vid = vid.take();
    m.ok = ok.value() != 0;
    m.error = error.take();
    return R::ok(std::move(m));
}

Bytes
ReplicateEntries::encode() const
{
    ByteWriter w;
    w.putU64(round);
    w.putString(leaderId);
    w.putU64(prevLsn);
    w.putU32(static_cast<std::uint32_t>(records.size()));
    for (const ReplicatedRecord &rec : records) {
        w.putU64(rec.lsn);
        w.putU16(rec.type);
        w.putBytes(rec.payload);
    }
    w.putU64(commitLsn);
    w.putU8(hasSnapshot ? 1 : 0);
    w.putBytes(snapshot);
    w.putU64(snapshotLsn);
    return w.take();
}

Result<ReplicateEntries>
ReplicateEntries::decode(const Bytes &data)
{
    using R = Result<ReplicateEntries>;
    ByteReader r(data);
    auto round = r.getU64();
    auto leader = r.getString();
    auto prev = r.getU64();
    auto count = r.getU32();
    if (!round || !leader || !prev || !count)
        return R::error("ReplicateEntries: malformed");
    ReplicateEntries m;
    m.round = round.value();
    m.leaderId = leader.take();
    m.prevLsn = prev.value();
    m.records.reserve(count.value());
    for (std::uint32_t i = 0; i < count.value(); ++i) {
        auto lsn = r.getU64();
        auto type = r.getU16();
        auto payload = r.getBytes();
        if (!lsn || !type || !payload)
            return R::error("ReplicateEntries: truncated record");
        ReplicatedRecord rec;
        rec.lsn = lsn.value();
        rec.type = type.value();
        rec.payload = payload.take();
        m.records.push_back(std::move(rec));
    }
    auto commit = r.getU64();
    auto hasSnap = r.getU8();
    auto snap = r.getBytes();
    auto snapLsn = r.getU64();
    if (!commit || !hasSnap || !snap || !snapLsn || !r.atEnd())
        return R::error("ReplicateEntries: malformed");
    m.commitLsn = commit.value();
    m.hasSnapshot = hasSnap.value() != 0;
    m.snapshot = snap.take();
    m.snapshotLsn = snapLsn.value();
    return R::ok(std::move(m));
}

Bytes
ReplicateAck::encode() const
{
    ByteWriter w;
    w.putU64(round);
    w.putU64(lastLsn);
    return w.take();
}

Result<ReplicateAck>
ReplicateAck::decode(const Bytes &data)
{
    using R = Result<ReplicateAck>;
    ByteReader r(data);
    auto round = r.getU64();
    auto last = r.getU64();
    if (!round || !last || !r.atEnd())
        return R::error("ReplicateAck: malformed");
    ReplicateAck m;
    m.round = round.value();
    m.lastLsn = last.value();
    return R::ok(std::move(m));
}

Bytes
VoteRequest::encode() const
{
    ByteWriter w;
    w.putU64(round);
    w.putU64(lastLogRound);
    w.putU64(lastLsn);
    w.putU8(prevote ? 1 : 0);
    return w.take();
}

Result<VoteRequest>
VoteRequest::decode(const Bytes &data)
{
    using R = Result<VoteRequest>;
    ByteReader r(data);
    auto round = r.getU64();
    auto logRound = r.getU64();
    auto lastLsn = r.getU64();
    auto prevote = r.getU8();
    if (!round || !logRound || !lastLsn || !prevote || !r.atEnd())
        return R::error("VoteRequest: malformed");
    VoteRequest m;
    m.round = round.value();
    m.lastLogRound = logRound.value();
    m.lastLsn = lastLsn.value();
    m.prevote = prevote.value() != 0;
    return R::ok(std::move(m));
}

Bytes
VoteGrant::encode() const
{
    ByteWriter w;
    w.putU64(round);
    w.putU8(prevote ? 1 : 0);
    return w.take();
}

Result<VoteGrant>
VoteGrant::decode(const Bytes &data)
{
    using R = Result<VoteGrant>;
    ByteReader r(data);
    auto round = r.getU64();
    auto prevote = r.getU8();
    if (!round || !prevote || !r.atEnd())
        return R::error("VoteGrant: malformed");
    VoteGrant m;
    m.round = round.value();
    m.prevote = prevote.value() != 0;
    return R::ok(std::move(m));
}

Bytes
NotLeader::encode() const
{
    ByteWriter w;
    w.putU64(requestId);
    w.putU8(isLaunch ? 1 : 0);
    w.putString(leaderId);
    w.putU64(round);
    return w.take();
}

Result<NotLeader>
NotLeader::decode(const Bytes &data)
{
    using R = Result<NotLeader>;
    ByteReader r(data);
    auto id = r.getU64();
    auto launch = r.getU8();
    auto leader = r.getString();
    auto round = r.getU64();
    if (!id || !launch || !leader || !round || !r.atEnd())
        return R::error("NotLeader: malformed");
    NotLeader m;
    m.requestId = id.value();
    m.isLaunch = launch.value() != 0;
    m.leaderId = leader.take();
    m.round = round.value();
    return R::ok(std::move(m));
}

Bytes
MigrateOut::encode() const
{
    ByteWriter w;
    w.putString(vid);
    w.putString(targetServer);
    return w.take();
}

Result<MigrateOut>
MigrateOut::decode(const Bytes &data)
{
    using R = Result<MigrateOut>;
    ByteReader r(data);
    auto vid = r.getString();
    auto target = r.getString();
    if (!vid || !target || !r.atEnd())
        return R::error("MigrateOut: malformed");
    MigrateOut m;
    m.vid = vid.take();
    m.targetServer = target.take();
    return R::ok(std::move(m));
}

Bytes
MigrateIn::encode() const
{
    ByteWriter w;
    w.putString(vid);
    w.putString(name);
    w.putU32(numVcpus);
    w.putU64(ramMb);
    w.putU64(diskGb);
    w.putU64(imageSizeMb);
    w.putBytes(image);
    w.putI64(weight);
    w.putU32(static_cast<std::uint32_t>(guestTasks.size()));
    for (const std::string &t : guestTasks)
        w.putString(t);
    w.putU32(static_cast<std::uint32_t>(hiddenTasks.size()));
    for (const std::string &t : hiddenTasks)
        w.putString(t);
    w.putU32(static_cast<std::uint32_t>(auditEntries.size()));
    for (const std::string &t : auditEntries)
        w.putString(t);
    return w.take();
}

Result<MigrateIn>
MigrateIn::decode(const Bytes &data)
{
    using R = Result<MigrateIn>;
    ByteReader r(data);
    auto vid = r.getString();
    auto name = r.getString();
    auto vcpus = r.getU32();
    auto ram = r.getU64();
    auto disk = r.getU64();
    auto imgSize = r.getU64();
    auto image = r.getBytes();
    auto weight = r.getI64();
    auto taskCount = r.getU32();
    if (!vid || !name || !vcpus || !ram || !disk || !imgSize || !image ||
        !weight || !taskCount || taskCount.value() > 100000) {
        return R::error("MigrateIn: malformed");
    }
    MigrateIn m;
    m.vid = vid.take();
    m.name = name.take();
    m.numVcpus = vcpus.value();
    m.ramMb = ram.value();
    m.diskGb = disk.value();
    m.imageSizeMb = imgSize.value();
    m.image = image.take();
    m.weight = static_cast<int>(weight.value());
    for (std::uint32_t i = 0; i < taskCount.value(); ++i) {
        auto t = r.getString();
        if (!t)
            return R::error("MigrateIn: truncated task");
        m.guestTasks.push_back(t.take());
    }
    auto hiddenCount = r.getU32();
    if (!hiddenCount || hiddenCount.value() > 100000)
        return R::error("MigrateIn: bad hidden count");
    for (std::uint32_t i = 0; i < hiddenCount.value(); ++i) {
        auto t = r.getString();
        if (!t)
            return R::error("MigrateIn: truncated hidden task");
        m.hiddenTasks.push_back(t.take());
    }
    auto auditCount = r.getU32();
    if (!auditCount || auditCount.value() > 1000000)
        return R::error("MigrateIn: bad audit count");
    for (std::uint32_t i = 0; i < auditCount.value(); ++i) {
        auto t = r.getString();
        if (!t)
            return R::error("MigrateIn: truncated audit entry");
        m.auditEntries.push_back(t.take());
    }
    if (!r.atEnd())
        return R::error("MigrateIn: trailing bytes");
    return R::ok(std::move(m));
}

} // namespace monatt::proto
