/**
 * @file
 * Schema layer for the tagged wire format: versions, per-node wire
 * context, and the field-number registry.
 *
 * CloudMonatt carries every message in one of two encodings:
 *
 *   Legacy — the canonical fixed-width layout in common/codec.h.
 *            Frozen forever; quote preimages, signed portions and
 *            golden trace digests are defined over these bytes.
 *   Tagged — protobuf-style tag||value fields (common/wire.h) that
 *            tolerate schema drift: decoders skip unknown field
 *            numbers and default missing ones, so nodes on different
 *            schema versions interoperate during a rolling upgrade.
 *
 * Frames are self-describing: a tagged frame opens with
 * kTaggedFrameMarker (0xC1, not a valid legacy MessageKind byte), so a
 * receiver decodes whatever arrives regardless of its own WireContext.
 * The WireContext only chooses what a node *sends* (and how it encodes
 * its own journal payloads).
 *
 * Field-numbering rules (enforced by wireSchemas() + the conformance
 * tests):
 *   - numbers start at 1 in struct declaration order; 0 is invalid
 *   - a number is never reused or retyped once released
 *   - new fields take fresh numbers with `since` = the version that
 *     introduced them; senderBuild uses the reserved number 15 in
 *     every attest-chain message
 *   - lists of small enums are packed varints in one LEN field;
 *     repeated strings/messages repeat their field number
 */

#ifndef MONATT_PROTO_WIRE_SCHEMA_H
#define MONATT_PROTO_WIRE_SCHEMA_H

#include <cstdint>
#include <vector>

#include "common/wire.h"

namespace monatt::proto
{

/** On-wire encoding a node uses for the frames it sends. */
enum class WireFormat : std::uint8_t
{
    Legacy = 0, //!< Fixed-width canonical layout (default).
    Tagged = 1, //!< Tag/wire-type schema-evolvable layout.
};

/** First released tagged schema. */
inline constexpr std::uint32_t kWireV1 = 1;

/** Adds senderBuild (field 15) to the attest-chain messages. */
inline constexpr std::uint32_t kWireV2 = 2;

/** Adds tcbVersion (field 9) to quotes and property reports. */
inline constexpr std::uint32_t kWireV3 = 3;

/** The schema version this build encodes by default. */
inline constexpr std::uint32_t kWireVersionLatest = kWireV3;

/**
 * Per-node wire settings: which encoding this node emits and which
 * schema version it encodes at. Decoding is always format-agnostic
 * (frames self-describe) and version-tolerant (skip/default).
 */
struct WireContext
{
    WireFormat format = WireFormat::Legacy;
    std::uint32_t version = kWireVersionLatest;
};

/**
 * First byte of a tagged message frame. Legacy frames start with the
 * MessageKind byte (1..54), so 0xC1 unambiguously marks the format.
 */
inline constexpr std::uint8_t kTaggedFrameMarker = 0xC1;

/**
 * OR'd into the u16 StableStore record type when the journal payload
 * is tagged-encoded. Dispatching on the type word (not by sniffing
 * payload bytes, which can legitimately start with anything) keeps
 * recovery unambiguous across a node's format changes. The CRC32C
 * record framing itself is unchanged.
 */
inline constexpr std::uint16_t kTaggedJournalBit = 0x100;

/** Reserved field number for senderBuild in attest-chain messages. */
inline constexpr std::uint32_t kSenderBuildField = 15;

/** One declared field of a tagged message schema. */
struct FieldSpec
{
    std::uint32_t number;
    wire::WireType type;
    const char *name;
    std::uint32_t since; //!< Schema version that introduced the field.
};

/** The declared tagged schema of one MessageKind. */
struct MessageSchema
{
    std::uint8_t kind; //!< MessageKind value (avoids a header cycle).
    const char *name;
    std::vector<FieldSpec> fields;
};

/**
 * Every released tagged message schema, in MessageKind order. The
 * encoders in messages.cpp are hand-written against this table; the
 * conformance tests cross-check both (golden bytes catch an encoder
 * drifting, schema invariants catch the table drifting).
 */
const std::vector<MessageSchema> &wireSchemas();

/** Schema for a MessageKind value; nullptr when the kind is unknown. */
const MessageSchema *schemaFor(std::uint8_t kind);

} // namespace monatt::proto

#endif // MONATT_PROTO_WIRE_SCHEMA_H
