#include "proto/property.h"

#include <stdexcept>

namespace monatt::proto
{

const std::vector<SecurityProperty> &
allProperties()
{
    static const std::vector<SecurityProperty> all = {
        SecurityProperty::StartupIntegrity,
        SecurityProperty::RuntimeIntegrity,
        SecurityProperty::CovertChannelFreedom,
        SecurityProperty::CpuAvailability,
        SecurityProperty::AuditLogIntegrity,
    };
    return all;
}

std::string
propertyName(SecurityProperty p)
{
    switch (p) {
      case SecurityProperty::StartupIntegrity:
        return "startup-integrity";
      case SecurityProperty::RuntimeIntegrity:
        return "runtime-integrity";
      case SecurityProperty::CovertChannelFreedom:
        return "covert-channel-freedom";
      case SecurityProperty::CpuAvailability:
        return "cpu-availability";
      case SecurityProperty::AuditLogIntegrity:
        return "audit-log-integrity";
    }
    return "unknown";
}

SecurityProperty
propertyFromName(const std::string &name)
{
    for (SecurityProperty p : allProperties()) {
        if (propertyName(p) == name)
            return p;
    }
    throw std::invalid_argument("unknown security property: " + name);
}

std::string
healthStatusName(HealthStatus s)
{
    switch (s) {
      case HealthStatus::Healthy:
        return "healthy";
      case HealthStatus::Compromised:
        return "compromised";
      case HealthStatus::Unknown:
        return "unknown";
      case HealthStatus::TcbRollback:
        return "tcb-rollback";
    }
    return "invalid";
}

} // namespace monatt::proto
