/**
 * @file
 * The CloudMonatt protocol messages (Figure 3) plus the cloud
 * management commands.
 *
 * Every message has a canonical byte encoding; the attestation
 * messages additionally define the exact quote inputs:
 *
 *   Q3 = H(Vid || rM || M  || N3)   signed by ASKs (cloud server)
 *   Q2 = H(Vid || I  || P || R || N2) signed by SKa (attestation server)
 *   Q1 = H(Vid || P  || R || N1)    signed by SKc (cloud controller)
 *
 * Messages travel as `kind || body` plaintexts inside SecureChannel
 * records; the signatures survive the hop-by-hop channel so a
 * customer verifies a chain rooted at the place of collection.
 */

#ifndef MONATT_PROTO_MESSAGES_H
#define MONATT_PROTO_MESSAGES_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/time_types.h"
#include "proto/measurement.h"
#include "proto/property.h"
#include "proto/wire_schema.h"

namespace monatt::proto
{

/** Message discriminator. */
enum class MessageKind : std::uint8_t
{
    AttestRequest = 1,
    AttestForward = 2,
    MeasureRequest = 3,
    MeasureResponse = 4,
    ReportToController = 5,
    ReportToCustomer = 6,
    CertRequest = 7,
    CertResponse = 8,
    AttestFailure = 9,
    LaunchVm = 20,
    LaunchVmAck = 21,
    TerminateVm = 22,
    TerminateVmAck = 23,
    SuspendVm = 24,
    SuspendVmAck = 25,
    ResumeVm = 26,
    ResumeVmAck = 27,
    MigrateIn = 28,
    MigrateInAck = 29,
    MigrateOut = 30,
    MigrateOutAck = 31,
    LaunchRequest = 40,
    LaunchResponse = 41,
    ReplicateEntries = 50,
    ReplicateAck = 51,
    VoteRequest = 52,
    VoteGrant = 53,
    NotLeader = 54,
};

/** Frame a legacy-encoded body: kind u8 || u32 length || body. */
Bytes packMessage(MessageKind kind, const Bytes &body);

/** Frame a tagged body: 0xC1 || kind u8 || varint length || body. */
Bytes packMessageTagged(MessageKind kind, const Bytes &body);

/** A received frame split into its parts. */
struct UnpackedMessage
{
    MessageKind kind{};
    WireFormat format = WireFormat::Legacy; //!< How `body` is encoded.
    Bytes body;
};

/**
 * Split a framed message. Frames self-describe (tagged frames open
 * with kTaggedFrameMarker), so the receiver needs no negotiation: the
 * returned format says which decoder applies to `body`.
 */
Result<UnpackedMessage> unpackMessage(const Bytes &framed);

/** Encode + frame a message per the sender's wire context. */
template <typename M>
Bytes
packFor(const WireContext &ctx, MessageKind kind, const M &msg)
{
    if (ctx.format == WireFormat::Tagged)
        return packMessageTagged(kind, msg.encodeTagged(ctx));
    return packMessage(kind, msg.encode());
}

/** Decode a message body in whichever format the frame declared. */
template <typename M>
Result<M>
decodeAs(WireFormat format, const Bytes &body)
{
    if (format == WireFormat::Tagged)
        return M::decodeTagged(body);
    return M::decode(body);
}

/** Attestation modes (Table 1). */
enum class AttestMode : std::uint8_t
{
    StartupOneTime = 0,  //!< startup_attest_current
    RuntimeOneTime = 1,  //!< runtime_attest_current
    RuntimePeriodic = 2, //!< runtime_attest_periodic
    StopPeriodic = 3,    //!< stop_attest_periodic
};

/** Customer → Cloud Controller (the (Vid, P, N1) of Figure 3). */
struct AttestRequest
{
    std::uint64_t requestId = 0;
    std::string vid;
    std::vector<SecurityProperty> properties;
    Bytes nonce1;
    AttestMode mode = AttestMode::RuntimeOneTime;
    SimTime period = 0; //!< For periodic mode.
    std::uint32_t senderBuild = 0; //!< v2+ metadata (0 = pre-v2 peer).

    Bytes encode() const;
    static Result<AttestRequest> decode(const Bytes &data);
    Bytes encodeTagged(const WireContext &ctx) const;
    static Result<AttestRequest> decodeTagged(const Bytes &data);
};

/** Cloud Controller → Attestation Server ((Vid, I, P, N2)). */
struct AttestForward
{
    std::uint64_t requestId = 0;
    std::string vid;
    std::string serverId; //!< I: the server hosting Vid.
    std::vector<SecurityProperty> properties;
    Bytes nonce2;
    AttestMode mode = AttestMode::RuntimeOneTime;
    SimTime period = 0;
    std::uint32_t senderBuild = 0; //!< v2+ metadata (0 = pre-v2 peer).

    Bytes encode() const;
    static Result<AttestForward> decode(const Bytes &data);
    Bytes encodeTagged(const WireContext &ctx) const;
    static Result<AttestForward> decodeTagged(const Bytes &data);
};

/** Attestation Server → Cloud Server ((Vid, rM, N3)). */
struct MeasureRequest
{
    std::uint64_t requestId = 0;
    std::string vid;
    MeasurementRequestList rm;
    Bytes nonce3;
    SimTime window = 0; //!< Collection window for runtime measurements.
    std::uint32_t senderBuild = 0; //!< v2+ metadata (0 = pre-v2 peer).

    Bytes encode() const;
    static Result<MeasureRequest> decode(const Bytes &data);
    Bytes encodeTagged(const WireContext &ctx) const;
    static Result<MeasureRequest> decodeTagged(const Bytes &data);
};

/** Cloud Server → Attestation Server ([Vid, rM, M, N3, Q3]_ASKs). */
struct MeasureResponse
{
    std::uint64_t requestId = 0;
    std::string vid;
    MeasurementRequestList rm;
    MeasurementSet m;
    Bytes nonce3;
    Bytes quote3;
    Bytes signature;   //!< By the session attestation key ASKs.
    Bytes certificate; //!< pCA certificate for AVKs.

    /** Q3 = H(Vid || rM || M || N3). */
    static Bytes quoteInput(const std::string &vid,
                            const MeasurementRequestList &rm,
                            const MeasurementSet &m, const Bytes &nonce3);

    /** The bytes the ASKs signature covers. */
    Bytes signedPortion() const;

    Bytes encode() const;
    static Result<MeasureResponse> decode(const Bytes &data);
    Bytes encodeTagged(const WireContext &ctx) const;
    static Result<MeasureResponse> decodeTagged(const Bytes &data);

    std::uint32_t senderBuild = 0; //!< v2+ metadata; not signed.

    /** v3+ metadata: the host TCB version this quote vouches for (a
     * mirror of the signed TcbVersion measurement, for diagnostics
     * and wire-level skew tests; the AS trusts only the signed copy
     * inside `m`). Not signed; 0 = pre-v3 peer. */
    std::uint64_t tcbVersion = 0;
};

/** One property's appraisal in a report. */
struct PropertyResult
{
    SecurityProperty property{};
    HealthStatus status = HealthStatus::Unknown;
    std::string detail;

    bool operator==(const PropertyResult &o) const
    {
        return property == o.property && status == o.status &&
               detail == o.detail;
    }
};

/** The attestation report R. */
struct AttestationReport
{
    std::string vid;
    std::vector<PropertyResult> results;
    SimTime issuedAt = 0;

    /** True when every appraised property is Healthy. */
    bool allHealthy() const;

    /** Result for a property; nullptr when absent. */
    const PropertyResult *find(SecurityProperty p) const;

    Bytes encode() const;
    static Result<AttestationReport> decode(const Bytes &data);
    Bytes encodeTagged(const WireContext &ctx) const;
    static Result<AttestationReport> decodeTagged(const Bytes &data);

    bool operator==(const AttestationReport &o) const
    {
        return vid == o.vid && results == o.results &&
               issuedAt == o.issuedAt;
    }
};

/** Attestation Server → Cloud Controller ([Vid, I, P, R, N2, Q2]_SKa). */
struct ReportToController
{
    std::uint64_t requestId = 0;
    std::string vid;
    std::string serverId;
    std::vector<SecurityProperty> properties;
    AttestationReport report;
    Bytes nonce2;
    Bytes quote2;
    Bytes signature; //!< By the attestation server's identity key SKa.

    /** Q2 = H(Vid || I || P || R || N2). */
    static Bytes quoteInput(const std::string &vid,
                            const std::string &serverId,
                            const std::vector<SecurityProperty> &props,
                            const AttestationReport &report,
                            const Bytes &nonce2);

    Bytes signedPortion() const;

    Bytes encode() const;
    static Result<ReportToController> decode(const Bytes &data);
    Bytes encodeTagged(const WireContext &ctx) const;
    static Result<ReportToController> decodeTagged(const Bytes &data);

    std::uint32_t senderBuild = 0; //!< v2+ metadata; not signed.

    /** v3+ metadata: appraised host TCB version (0 = pre-v3 peer or
     * no TCB evidence). Not signed. */
    std::uint64_t tcbVersion = 0;
};

/** Cloud Controller → Customer ([Vid, P, R, N1, Q1]_SKc). */
struct ReportToCustomer
{
    std::uint64_t requestId = 0;
    std::string vid;
    std::vector<SecurityProperty> properties;
    AttestationReport report;
    Bytes nonce1;
    Bytes quote1;
    Bytes signature; //!< By the controller's identity key SKc.
    bool finalPeriodic = false; //!< Last report of a periodic stream.

    /** Q1 = H(Vid || P || R || N1). */
    static Bytes quoteInput(const std::string &vid,
                            const std::vector<SecurityProperty> &props,
                            const AttestationReport &report,
                            const Bytes &nonce1);

    Bytes signedPortion() const;

    Bytes encode() const;
    static Result<ReportToCustomer> decode(const Bytes &data);
    Bytes encodeTagged(const WireContext &ctx) const;
    static Result<ReportToCustomer> decodeTagged(const Bytes &data);

    std::uint32_t senderBuild = 0; //!< v2+ metadata; not signed.

    /** v3+ metadata: appraised host TCB version (0 = pre-v3 peer or
     * no TCB evidence). Not signed. */
    std::uint64_t tcbVersion = 0;
};

/** Terminal non-verdicts for an attestation request. */
enum class FailureOutcome : std::uint8_t
{
    Unreachable = 1, //!< Retries/failover exhausted; no AS answered.
    Failed = 2,      //!< The request was rejected (see reason).
};

/**
 * Cloud Controller → Customer: the attestation cannot produce a
 * report. Travels over the controller's authenticated channel, so the
 * customer knows the verdict is the controller's and not forged —
 * there is no quote chain to verify because no measurement happened.
 */
struct AttestFailure
{
    std::uint64_t requestId = 0;
    std::string vid;
    FailureOutcome outcome = FailureOutcome::Failed;
    std::string reason;

    Bytes encode() const;
    static Result<AttestFailure> decode(const Bytes &data);
    Bytes encodeTagged(const WireContext &ctx) const;
    static Result<AttestFailure> decodeTagged(const Bytes &data);
};

/** Cloud Server → privacy CA: certify a fresh AVKs. */
struct CertRequest
{
    std::string serverId;
    std::string sessionLabel; //!< Anonymous subject for the cert.
    Bytes avk;                //!< Encoded session public key.
    Bytes avkSignature;       //!< [AVKs]_SKs.

    Bytes encode() const;
    static Result<CertRequest> decode(const Bytes &data);
    Bytes encodeTagged(const WireContext &ctx) const;
    static Result<CertRequest> decodeTagged(const Bytes &data);
};

/** privacy CA → Cloud Server. */
struct CertResponse
{
    std::string sessionLabel;
    bool ok = false;
    std::string error;
    Bytes certificate;

    Bytes encode() const;
    static Result<CertResponse> decode(const Bytes &data);
    Bytes encodeTagged(const WireContext &ctx) const;
    static Result<CertResponse> decodeTagged(const Bytes &data);
};

// --- Cloud management commands (Controller <-> Cloud Server) ---------

/** Launch a VM on a server. */
struct LaunchVm
{
    std::string vid;
    std::string name;
    std::uint32_t numVcpus = 1;
    std::uint64_t ramMb = 512;
    std::uint64_t diskGb = 1;
    std::uint64_t imageSizeMb = 0; //!< For transfer/boot timing.
    Bytes image;                   //!< Representative image content.
    int weight = 256;

    Bytes encode() const;
    static Result<LaunchVm> decode(const Bytes &data);
    Bytes encodeTagged(const WireContext &ctx) const;
    static Result<LaunchVm> decodeTagged(const Bytes &data);
};

/** Launch acknowledgement. */
struct LaunchVmAck
{
    std::string vid;
    bool ok = false;
    std::string error;
    Bytes imageDigest; //!< Measured by the IMU before launch.

    Bytes encode() const;
    static Result<LaunchVmAck> decode(const Bytes &data);
    Bytes encodeTagged(const WireContext &ctx) const;
    static Result<LaunchVmAck> decodeTagged(const Bytes &data);
};

/** Simple per-VM command (terminate/suspend/resume). */
struct VmCommand
{
    std::string vid;

    Bytes encode() const;
    static Result<VmCommand> decode(const Bytes &data);
    Bytes encodeTagged(const WireContext &ctx) const;
    static Result<VmCommand> decodeTagged(const Bytes &data);
};

/** Simple per-VM acknowledgement. */
struct VmCommandAck
{
    std::string vid;
    bool ok = false;
    std::string error;

    Bytes encode() const;
    static Result<VmCommandAck> decode(const Bytes &data);
    Bytes encodeTagged(const WireContext &ctx) const;
    static Result<VmCommandAck> decodeTagged(const Bytes &data);
};

/** Customer → Cloud Controller: lease a VM (nova api boot). */
struct LaunchRequest
{
    std::uint64_t requestId = 0;
    std::string name;
    std::string imageName;
    std::string flavorName;
    std::vector<SecurityProperty> properties; //!< Required monitoring.
    Bytes image; //!< Image content as supplied (may be customized).
    std::uint64_t imageSizeMb = 0;

    Bytes encode() const;
    static Result<LaunchRequest> decode(const Bytes &data);
    Bytes encodeTagged(const WireContext &ctx) const;
    static Result<LaunchRequest> decodeTagged(const Bytes &data);
};

/** Cloud Controller → Customer: launch outcome. */
struct LaunchResponse
{
    std::uint64_t requestId = 0;
    std::string vid;   //!< Assigned VM id (empty on failure).
    bool ok = false;
    std::string error;

    Bytes encode() const;
    static Result<LaunchResponse> decode(const Bytes &data);
    Bytes encodeTagged(const WireContext &ctx) const;
    static Result<LaunchResponse> decodeTagged(const Bytes &data);
};

/** One replicated journal record as it travels on the wire. */
struct ReplicatedRecord
{
    std::uint64_t lsn = 0;
    std::uint16_t type = 0;
    Bytes payload;
};

/**
 * Shard leader → follower: journal suffix + commit cursor. An empty
 * record vector is the heartbeat; `hasSnapshot` folds a full state
 * snapshot in when the follower is too far behind to catch up from
 * the journal alone.
 */
struct ReplicateEntries
{
    std::uint64_t round = 0;     //!< Leader's election round.
    std::string leaderId;
    std::uint64_t prevLsn = 0;   //!< LSN immediately before records[0].
    std::vector<ReplicatedRecord> records;
    std::uint64_t commitLsn = 0; //!< Majority-durable cursor.
    bool hasSnapshot = false;
    Bytes snapshot;
    std::uint64_t snapshotLsn = 0;

    Bytes encode() const;
    static Result<ReplicateEntries> decode(const Bytes &data);
    Bytes encodeTagged(const WireContext &ctx) const;
    static Result<ReplicateEntries> decodeTagged(const Bytes &data);
};

/** Follower → leader: cumulative durable-LSN acknowledgement. */
struct ReplicateAck
{
    std::uint64_t round = 0;
    std::uint64_t lastLsn = 0; //!< Highest contiguously durable LSN.

    Bytes encode() const;
    static Result<ReplicateAck> decode(const Bytes &data);
    Bytes encodeTagged(const WireContext &ctx) const;
    static Result<ReplicateAck> decodeTagged(const Bytes &data);
};

/** Candidate → group: request a vote for `round`. */
struct VoteRequest
{
    std::uint64_t round = 0;
    std::uint64_t lastLogRound = 0; //!< Round of the last mirrored entry.
    std::uint64_t lastLsn = 0;      //!< Candidate's last durable LSN.
    bool prevote = false;           //!< Probe only: no round is spent.

    Bytes encode() const;
    static Result<VoteRequest> decode(const Bytes &data);
    Bytes encodeTagged(const WireContext &ctx) const;
    static Result<VoteRequest> decodeTagged(const Bytes &data);
};

/** Voter → candidate: the (pre)vote for `round` is granted. */
struct VoteGrant
{
    std::uint64_t round = 0;
    bool prevote = false;

    Bytes encode() const;
    static Result<VoteGrant> decode(const Bytes &data);
    Bytes encodeTagged(const WireContext &ctx) const;
    static Result<VoteGrant> decodeTagged(const Bytes &data);
};

/**
 * Replica → customer: this node is not the group leader. Carries the
 * replica's current leader hint (may be empty mid-election) so the
 * customer can re-route the identified request.
 */
struct NotLeader
{
    std::uint64_t requestId = 0;
    bool isLaunch = false; //!< Launch vs attestation request id space.
    std::string leaderId;  //!< Best-known leader, empty if unknown.
    std::uint64_t round = 0;

    Bytes encode() const;
    static Result<NotLeader> decode(const Bytes &data);
    Bytes encodeTagged(const WireContext &ctx) const;
    static Result<NotLeader> decodeTagged(const Bytes &data);
};

/** Cloud Controller → source server: migrate a VM away. */
struct MigrateOut
{
    std::string vid;
    std::string targetServer;

    Bytes encode() const;
    static Result<MigrateOut> decode(const Bytes &data);
    Bytes encodeTagged(const WireContext &ctx) const;
    static Result<MigrateOut> decodeTagged(const Bytes &data);
};

/** Source server → target server: VM state for migration. */
struct MigrateIn
{
    std::string vid;
    std::string name;
    std::uint32_t numVcpus = 1;
    std::uint64_t ramMb = 512;
    std::uint64_t diskGb = 1;
    std::uint64_t imageSizeMb = 0;
    Bytes image;
    int weight = 256;
    std::vector<std::string> guestTasks;  //!< Visible process state.
    std::vector<std::string> hiddenTasks; //!< Rootkit-hidden processes
                                          //!< (memory moves verbatim).
    std::vector<std::string> auditEntries; //!< Audit log contents.

    Bytes encode() const;
    static Result<MigrateIn> decode(const Bytes &data);
    Bytes encodeTagged(const WireContext &ctx) const;
    static Result<MigrateIn> decodeTagged(const Bytes &data);
};

} // namespace monatt::proto

#endif // MONATT_PROTO_MESSAGES_H
