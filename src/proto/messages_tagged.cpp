/**
 * @file
 * Tagged-field codecs for every protocol message.
 *
 * Field numbers follow the registry in wire_schema.cpp. Encoders omit
 * a field when it equals the default-constructed member value, so the
 * decoders — which start from a default-constructed struct and fill
 * in whatever fields arrive — reconstruct the same message; that same
 * rule is what gives new decoders sensible values for fields an old
 * encoder never heard of. Unknown field numbers (and known numbers
 * arriving with an unexpected wire type, which a future schema may
 * legitimately produce) are skipped, never errors. Malformed *bytes*
 * — truncated varints, over-long LEN prefixes — remain hard decode
 * errors, i.e. attack indicators, exactly like the legacy codec.
 */

#include "proto/messages.h"

#include "common/wire.h"

namespace monatt::proto
{

namespace
{

using wire::WireField;
using wire::WireReader;
using wire::WireType;
using wire::WireWriter;

Bytes
packedProperties(const std::vector<SecurityProperty> &props)
{
    Bytes out;
    for (SecurityProperty p : props)
        wire::appendVarint(out, static_cast<std::uint64_t>(p));
    return out;
}

bool
unpackProperties(const Bytes &packed, std::vector<SecurityProperty> &out)
{
    WireReader r(packed);
    while (!r.atEnd()) {
        auto v = r.nextVarint();
        if (!v || out.size() >= 64)
            return false;
        out.push_back(static_cast<SecurityProperty>(v.value()));
    }
    return true;
}

/** putLen only when non-empty (the omit-default rule for buffers). */
void
putOpt(WireWriter &w, std::uint32_t field, const Bytes &v)
{
    if (!v.empty())
        w.putLen(field, v);
}

void
putOpt(WireWriter &w, std::uint32_t field, const std::string &v)
{
    if (!v.empty())
        w.putString(field, v);
}

void
putOpt(WireWriter &w, std::uint32_t field, std::uint64_t v)
{
    if (v != 0)
        w.putVarint(field, v);
}

void
putOptSigned(WireWriter &w, std::uint32_t field, std::int64_t v)
{
    if (v != 0)
        w.putSigned(field, v);
}

void
putOpt(WireWriter &w, std::uint32_t field, bool v)
{
    if (v)
        w.putBool(field, v);
}

} // namespace

Bytes
AttestRequest::encodeTagged(const WireContext &ctx) const
{
    WireWriter w;
    putOpt(w, 1, requestId);
    putOpt(w, 2, vid);
    if (!properties.empty())
        w.putLen(3, packedProperties(properties));
    putOpt(w, 4, nonce1);
    if (mode != AttestMode::RuntimeOneTime)
        w.putVarint(5, static_cast<std::uint64_t>(mode));
    putOptSigned(w, 6, period);
    if (ctx.version >= kWireV2)
        putOpt(w, kSenderBuildField, std::uint64_t{senderBuild});
    return w.take();
}

Result<AttestRequest>
AttestRequest::decodeTagged(const Bytes &data)
{
    using R = Result<AttestRequest>;
    WireReader r(data);
    AttestRequest m;
    while (!r.atEnd()) {
        auto f = r.next();
        if (!f)
            return R::error("AttestRequest: " + f.errorMessage());
        const WireField &fld = f.value();
        switch (fld.number) {
          case 1:
            if (fld.type == WireType::Varint)
                m.requestId = fld.varint;
            break;
          case 2:
            if (fld.type == WireType::Len)
                m.vid = fld.asString();
            break;
          case 3:
            if (fld.type == WireType::Len &&
                !unpackProperties(fld.bytes, m.properties))
                return R::error("AttestRequest: bad properties");
            break;
          case 4:
            if (fld.type == WireType::Len)
                m.nonce1 = fld.bytes;
            break;
          case 5:
            if (fld.type == WireType::Varint)
                m.mode = static_cast<AttestMode>(fld.varint);
            break;
          case 6:
            if (fld.type == WireType::Varint)
                m.period = fld.asSigned();
            break;
          case kSenderBuildField:
            if (fld.type == WireType::Varint)
                m.senderBuild = static_cast<std::uint32_t>(fld.varint);
            break;
          default:
            break;
        }
    }
    return R::ok(std::move(m));
}

Bytes
AttestForward::encodeTagged(const WireContext &ctx) const
{
    WireWriter w;
    putOpt(w, 1, requestId);
    putOpt(w, 2, vid);
    putOpt(w, 3, serverId);
    if (!properties.empty())
        w.putLen(4, packedProperties(properties));
    putOpt(w, 5, nonce2);
    if (mode != AttestMode::RuntimeOneTime)
        w.putVarint(6, static_cast<std::uint64_t>(mode));
    putOptSigned(w, 7, period);
    if (ctx.version >= kWireV2)
        putOpt(w, kSenderBuildField, std::uint64_t{senderBuild});
    return w.take();
}

Result<AttestForward>
AttestForward::decodeTagged(const Bytes &data)
{
    using R = Result<AttestForward>;
    WireReader r(data);
    AttestForward m;
    while (!r.atEnd()) {
        auto f = r.next();
        if (!f)
            return R::error("AttestForward: " + f.errorMessage());
        const WireField &fld = f.value();
        switch (fld.number) {
          case 1:
            if (fld.type == WireType::Varint)
                m.requestId = fld.varint;
            break;
          case 2:
            if (fld.type == WireType::Len)
                m.vid = fld.asString();
            break;
          case 3:
            if (fld.type == WireType::Len)
                m.serverId = fld.asString();
            break;
          case 4:
            if (fld.type == WireType::Len &&
                !unpackProperties(fld.bytes, m.properties))
                return R::error("AttestForward: bad properties");
            break;
          case 5:
            if (fld.type == WireType::Len)
                m.nonce2 = fld.bytes;
            break;
          case 6:
            if (fld.type == WireType::Varint)
                m.mode = static_cast<AttestMode>(fld.varint);
            break;
          case 7:
            if (fld.type == WireType::Varint)
                m.period = fld.asSigned();
            break;
          case kSenderBuildField:
            if (fld.type == WireType::Varint)
                m.senderBuild = static_cast<std::uint32_t>(fld.varint);
            break;
          default:
            break;
        }
    }
    return R::ok(std::move(m));
}

Bytes
MeasureRequest::encodeTagged(const WireContext &ctx) const
{
    WireWriter w;
    putOpt(w, 1, requestId);
    putOpt(w, 2, vid);
    if (!rm.empty())
        w.putLen(3, encodeRequestListPacked(rm));
    putOpt(w, 4, nonce3);
    putOptSigned(w, 5, window);
    if (ctx.version >= kWireV2)
        putOpt(w, kSenderBuildField, std::uint64_t{senderBuild});
    return w.take();
}

Result<MeasureRequest>
MeasureRequest::decodeTagged(const Bytes &data)
{
    using R = Result<MeasureRequest>;
    WireReader r(data);
    MeasureRequest m;
    while (!r.atEnd()) {
        auto f = r.next();
        if (!f)
            return R::error("MeasureRequest: " + f.errorMessage());
        const WireField &fld = f.value();
        switch (fld.number) {
          case 1:
            if (fld.type == WireType::Varint)
                m.requestId = fld.varint;
            break;
          case 2:
            if (fld.type == WireType::Len)
                m.vid = fld.asString();
            break;
          case 3:
            if (fld.type == WireType::Len) {
                auto rm = decodeRequestListPacked(fld.bytes);
                if (!rm)
                    return R::error("MeasureRequest: " +
                                    rm.errorMessage());
                m.rm = rm.take();
            }
            break;
          case 4:
            if (fld.type == WireType::Len)
                m.nonce3 = fld.bytes;
            break;
          case 5:
            if (fld.type == WireType::Varint)
                m.window = fld.asSigned();
            break;
          case kSenderBuildField:
            if (fld.type == WireType::Varint)
                m.senderBuild = static_cast<std::uint32_t>(fld.varint);
            break;
          default:
            break;
        }
    }
    return R::ok(std::move(m));
}

Bytes
MeasureResponse::encodeTagged(const WireContext &ctx) const
{
    WireWriter w;
    putOpt(w, 1, requestId);
    putOpt(w, 2, vid);
    if (!rm.empty())
        w.putLen(3, encodeRequestListPacked(rm));
    if (!m.items.empty())
        w.putLen(4, m.encodeTagged());
    putOpt(w, 5, nonce3);
    putOpt(w, 6, quote3);
    putOpt(w, 7, signature);
    putOpt(w, 8, certificate);
    if (ctx.version >= kWireV3)
        putOpt(w, 9, tcbVersion);
    if (ctx.version >= kWireV2)
        putOpt(w, kSenderBuildField, std::uint64_t{senderBuild});
    return w.take();
}

Result<MeasureResponse>
MeasureResponse::decodeTagged(const Bytes &data)
{
    using R = Result<MeasureResponse>;
    WireReader r(data);
    MeasureResponse out;
    while (!r.atEnd()) {
        auto f = r.next();
        if (!f)
            return R::error("MeasureResponse: " + f.errorMessage());
        const WireField &fld = f.value();
        switch (fld.number) {
          case 1:
            if (fld.type == WireType::Varint)
                out.requestId = fld.varint;
            break;
          case 2:
            if (fld.type == WireType::Len)
                out.vid = fld.asString();
            break;
          case 3:
            if (fld.type == WireType::Len) {
                auto rm = decodeRequestListPacked(fld.bytes);
                if (!rm)
                    return R::error("MeasureResponse: " +
                                    rm.errorMessage());
                out.rm = rm.take();
            }
            break;
          case 4:
            if (fld.type == WireType::Len) {
                auto m = MeasurementSet::decodeTagged(fld.bytes);
                if (!m)
                    return R::error("MeasureResponse: " +
                                    m.errorMessage());
                out.m = m.take();
            }
            break;
          case 5:
            if (fld.type == WireType::Len)
                out.nonce3 = fld.bytes;
            break;
          case 6:
            if (fld.type == WireType::Len)
                out.quote3 = fld.bytes;
            break;
          case 7:
            if (fld.type == WireType::Len)
                out.signature = fld.bytes;
            break;
          case 8:
            if (fld.type == WireType::Len)
                out.certificate = fld.bytes;
            break;
          case 9:
            if (fld.type == WireType::Varint)
                out.tcbVersion = fld.varint;
            break;
          case kSenderBuildField:
            if (fld.type == WireType::Varint)
                out.senderBuild = static_cast<std::uint32_t>(fld.varint);
            break;
          default:
            break;
        }
    }
    return R::ok(std::move(out));
}

Bytes
AttestationReport::encodeTagged(const WireContext &) const
{
    WireWriter w;
    putOpt(w, 1, vid);
    for (const PropertyResult &pr : results) {
        // Nested PropertyResult: 1 property, 2 status, 3 detail. The
        // property and status always travel (Unknown vs absent must
        // stay distinguishable in a health verdict).
        WireWriter nested;
        nested.putVarint(1, static_cast<std::uint64_t>(pr.property));
        nested.putVarint(2, static_cast<std::uint64_t>(pr.status));
        putOpt(nested, 3, pr.detail);
        w.putLen(2, nested.data());
    }
    putOptSigned(w, 3, issuedAt);
    return w.take();
}

Result<AttestationReport>
AttestationReport::decodeTagged(const Bytes &data)
{
    using R = Result<AttestationReport>;
    WireReader r(data);
    AttestationReport rep;
    while (!r.atEnd()) {
        auto f = r.next();
        if (!f)
            return R::error("AttestationReport: " + f.errorMessage());
        const WireField &fld = f.value();
        switch (fld.number) {
          case 1:
            if (fld.type == WireType::Len)
                rep.vid = fld.asString();
            break;
          case 2:
            if (fld.type == WireType::Len) {
                if (rep.results.size() >= 64)
                    return R::error("AttestationReport: bad count");
                WireReader nr(fld.bytes);
                PropertyResult pr;
                while (!nr.atEnd()) {
                    auto nf = nr.next();
                    if (!nf)
                        return R::error("AttestationReport: " +
                                        nf.errorMessage());
                    const WireField &n = nf.value();
                    if (n.number == 1 && n.type == WireType::Varint)
                        pr.property =
                            static_cast<SecurityProperty>(n.varint);
                    else if (n.number == 2 && n.type == WireType::Varint)
                        pr.status = static_cast<HealthStatus>(n.varint);
                    else if (n.number == 3 && n.type == WireType::Len)
                        pr.detail = n.asString();
                }
                rep.results.push_back(std::move(pr));
            }
            break;
          case 3:
            if (fld.type == WireType::Varint)
                rep.issuedAt = fld.asSigned();
            break;
          default:
            break;
        }
    }
    return R::ok(std::move(rep));
}

Bytes
ReportToController::encodeTagged(const WireContext &ctx) const
{
    WireWriter w;
    putOpt(w, 1, requestId);
    putOpt(w, 2, vid);
    putOpt(w, 3, serverId);
    if (!properties.empty())
        w.putLen(4, packedProperties(properties));
    w.putLen(5, report.encodeTagged(ctx));
    putOpt(w, 6, nonce2);
    putOpt(w, 7, quote2);
    putOpt(w, 8, signature);
    if (ctx.version >= kWireV3)
        putOpt(w, 9, tcbVersion);
    if (ctx.version >= kWireV2)
        putOpt(w, kSenderBuildField, std::uint64_t{senderBuild});
    return w.take();
}

Result<ReportToController>
ReportToController::decodeTagged(const Bytes &data)
{
    using R = Result<ReportToController>;
    WireReader r(data);
    ReportToController m;
    while (!r.atEnd()) {
        auto f = r.next();
        if (!f)
            return R::error("ReportToController: " + f.errorMessage());
        const WireField &fld = f.value();
        switch (fld.number) {
          case 1:
            if (fld.type == WireType::Varint)
                m.requestId = fld.varint;
            break;
          case 2:
            if (fld.type == WireType::Len)
                m.vid = fld.asString();
            break;
          case 3:
            if (fld.type == WireType::Len)
                m.serverId = fld.asString();
            break;
          case 4:
            if (fld.type == WireType::Len &&
                !unpackProperties(fld.bytes, m.properties))
                return R::error("ReportToController: bad properties");
            break;
          case 5:
            if (fld.type == WireType::Len) {
                auto rep = AttestationReport::decodeTagged(fld.bytes);
                if (!rep)
                    return R::error("ReportToController: " +
                                    rep.errorMessage());
                m.report = rep.take();
            }
            break;
          case 6:
            if (fld.type == WireType::Len)
                m.nonce2 = fld.bytes;
            break;
          case 7:
            if (fld.type == WireType::Len)
                m.quote2 = fld.bytes;
            break;
          case 8:
            if (fld.type == WireType::Len)
                m.signature = fld.bytes;
            break;
          case 9:
            if (fld.type == WireType::Varint)
                m.tcbVersion = fld.varint;
            break;
          case kSenderBuildField:
            if (fld.type == WireType::Varint)
                m.senderBuild = static_cast<std::uint32_t>(fld.varint);
            break;
          default:
            break;
        }
    }
    return R::ok(std::move(m));
}

Bytes
ReportToCustomer::encodeTagged(const WireContext &ctx) const
{
    WireWriter w;
    putOpt(w, 1, requestId);
    putOpt(w, 2, vid);
    if (!properties.empty())
        w.putLen(3, packedProperties(properties));
    w.putLen(4, report.encodeTagged(ctx));
    putOpt(w, 5, nonce1);
    putOpt(w, 6, quote1);
    putOpt(w, 7, signature);
    putOpt(w, 8, finalPeriodic);
    if (ctx.version >= kWireV3)
        putOpt(w, 9, tcbVersion);
    if (ctx.version >= kWireV2)
        putOpt(w, kSenderBuildField, std::uint64_t{senderBuild});
    return w.take();
}

Result<ReportToCustomer>
ReportToCustomer::decodeTagged(const Bytes &data)
{
    using R = Result<ReportToCustomer>;
    WireReader r(data);
    ReportToCustomer m;
    while (!r.atEnd()) {
        auto f = r.next();
        if (!f)
            return R::error("ReportToCustomer: " + f.errorMessage());
        const WireField &fld = f.value();
        switch (fld.number) {
          case 1:
            if (fld.type == WireType::Varint)
                m.requestId = fld.varint;
            break;
          case 2:
            if (fld.type == WireType::Len)
                m.vid = fld.asString();
            break;
          case 3:
            if (fld.type == WireType::Len &&
                !unpackProperties(fld.bytes, m.properties))
                return R::error("ReportToCustomer: bad properties");
            break;
          case 4:
            if (fld.type == WireType::Len) {
                auto rep = AttestationReport::decodeTagged(fld.bytes);
                if (!rep)
                    return R::error("ReportToCustomer: " +
                                    rep.errorMessage());
                m.report = rep.take();
            }
            break;
          case 5:
            if (fld.type == WireType::Len)
                m.nonce1 = fld.bytes;
            break;
          case 6:
            if (fld.type == WireType::Len)
                m.quote1 = fld.bytes;
            break;
          case 7:
            if (fld.type == WireType::Len)
                m.signature = fld.bytes;
            break;
          case 8:
            if (fld.type == WireType::Varint)
                m.finalPeriodic = fld.asBool();
            break;
          case 9:
            if (fld.type == WireType::Varint)
                m.tcbVersion = fld.varint;
            break;
          case kSenderBuildField:
            if (fld.type == WireType::Varint)
                m.senderBuild = static_cast<std::uint32_t>(fld.varint);
            break;
          default:
            break;
        }
    }
    return R::ok(std::move(m));
}

Bytes
AttestFailure::encodeTagged(const WireContext &) const
{
    WireWriter w;
    putOpt(w, 1, requestId);
    putOpt(w, 2, vid);
    if (outcome != FailureOutcome::Failed)
        w.putVarint(3, static_cast<std::uint64_t>(outcome));
    putOpt(w, 4, reason);
    return w.take();
}

Result<AttestFailure>
AttestFailure::decodeTagged(const Bytes &data)
{
    using R = Result<AttestFailure>;
    WireReader r(data);
    AttestFailure m;
    while (!r.atEnd()) {
        auto f = r.next();
        if (!f)
            return R::error("AttestFailure: " + f.errorMessage());
        const WireField &fld = f.value();
        switch (fld.number) {
          case 1:
            if (fld.type == WireType::Varint)
                m.requestId = fld.varint;
            break;
          case 2:
            if (fld.type == WireType::Len)
                m.vid = fld.asString();
            break;
          case 3:
            if (fld.type == WireType::Varint) {
                if (fld.varint != static_cast<std::uint64_t>(
                                      FailureOutcome::Unreachable) &&
                    fld.varint != static_cast<std::uint64_t>(
                                      FailureOutcome::Failed))
                    return R::error("AttestFailure: bad outcome");
                m.outcome = static_cast<FailureOutcome>(fld.varint);
            }
            break;
          case 4:
            if (fld.type == WireType::Len)
                m.reason = fld.asString();
            break;
          default:
            break;
        }
    }
    return R::ok(std::move(m));
}

Bytes
CertRequest::encodeTagged(const WireContext &) const
{
    WireWriter w;
    putOpt(w, 1, serverId);
    putOpt(w, 2, sessionLabel);
    putOpt(w, 3, avk);
    putOpt(w, 4, avkSignature);
    return w.take();
}

Result<CertRequest>
CertRequest::decodeTagged(const Bytes &data)
{
    using R = Result<CertRequest>;
    WireReader r(data);
    CertRequest m;
    while (!r.atEnd()) {
        auto f = r.next();
        if (!f)
            return R::error("CertRequest: " + f.errorMessage());
        const WireField &fld = f.value();
        if (fld.type != WireType::Len)
            continue;
        switch (fld.number) {
          case 1:
            m.serverId = fld.asString();
            break;
          case 2:
            m.sessionLabel = fld.asString();
            break;
          case 3:
            m.avk = fld.bytes;
            break;
          case 4:
            m.avkSignature = fld.bytes;
            break;
          default:
            break;
        }
    }
    return R::ok(std::move(m));
}

Bytes
CertResponse::encodeTagged(const WireContext &) const
{
    WireWriter w;
    putOpt(w, 1, sessionLabel);
    putOpt(w, 2, ok);
    putOpt(w, 3, error);
    putOpt(w, 4, certificate);
    return w.take();
}

Result<CertResponse>
CertResponse::decodeTagged(const Bytes &data)
{
    using R = Result<CertResponse>;
    WireReader r(data);
    CertResponse m;
    while (!r.atEnd()) {
        auto f = r.next();
        if (!f)
            return R::error("CertResponse: " + f.errorMessage());
        const WireField &fld = f.value();
        switch (fld.number) {
          case 1:
            if (fld.type == WireType::Len)
                m.sessionLabel = fld.asString();
            break;
          case 2:
            if (fld.type == WireType::Varint)
                m.ok = fld.asBool();
            break;
          case 3:
            if (fld.type == WireType::Len)
                m.error = fld.asString();
            break;
          case 4:
            if (fld.type == WireType::Len)
                m.certificate = fld.bytes;
            break;
          default:
            break;
        }
    }
    return R::ok(std::move(m));
}

Bytes
LaunchVm::encodeTagged(const WireContext &) const
{
    WireWriter w;
    putOpt(w, 1, vid);
    putOpt(w, 2, name);
    if (numVcpus != 1)
        w.putVarint(3, numVcpus);
    if (ramMb != 512)
        w.putVarint(4, ramMb);
    if (diskGb != 1)
        w.putVarint(5, diskGb);
    putOpt(w, 6, imageSizeMb);
    putOpt(w, 7, image);
    if (weight != 256)
        w.putSigned(8, weight);
    return w.take();
}

Result<LaunchVm>
LaunchVm::decodeTagged(const Bytes &data)
{
    using R = Result<LaunchVm>;
    WireReader r(data);
    LaunchVm m;
    while (!r.atEnd()) {
        auto f = r.next();
        if (!f)
            return R::error("LaunchVm: " + f.errorMessage());
        const WireField &fld = f.value();
        switch (fld.number) {
          case 1:
            if (fld.type == WireType::Len)
                m.vid = fld.asString();
            break;
          case 2:
            if (fld.type == WireType::Len)
                m.name = fld.asString();
            break;
          case 3:
            if (fld.type == WireType::Varint)
                m.numVcpus = static_cast<std::uint32_t>(fld.varint);
            break;
          case 4:
            if (fld.type == WireType::Varint)
                m.ramMb = fld.varint;
            break;
          case 5:
            if (fld.type == WireType::Varint)
                m.diskGb = fld.varint;
            break;
          case 6:
            if (fld.type == WireType::Varint)
                m.imageSizeMb = fld.varint;
            break;
          case 7:
            if (fld.type == WireType::Len)
                m.image = fld.bytes;
            break;
          case 8:
            if (fld.type == WireType::Varint)
                m.weight = static_cast<int>(fld.asSigned());
            break;
          default:
            break;
        }
    }
    return R::ok(std::move(m));
}

Bytes
LaunchVmAck::encodeTagged(const WireContext &) const
{
    WireWriter w;
    putOpt(w, 1, vid);
    putOpt(w, 2, ok);
    putOpt(w, 3, error);
    putOpt(w, 4, imageDigest);
    return w.take();
}

Result<LaunchVmAck>
LaunchVmAck::decodeTagged(const Bytes &data)
{
    using R = Result<LaunchVmAck>;
    WireReader r(data);
    LaunchVmAck m;
    while (!r.atEnd()) {
        auto f = r.next();
        if (!f)
            return R::error("LaunchVmAck: " + f.errorMessage());
        const WireField &fld = f.value();
        switch (fld.number) {
          case 1:
            if (fld.type == WireType::Len)
                m.vid = fld.asString();
            break;
          case 2:
            if (fld.type == WireType::Varint)
                m.ok = fld.asBool();
            break;
          case 3:
            if (fld.type == WireType::Len)
                m.error = fld.asString();
            break;
          case 4:
            if (fld.type == WireType::Len)
                m.imageDigest = fld.bytes;
            break;
          default:
            break;
        }
    }
    return R::ok(std::move(m));
}

Bytes
VmCommand::encodeTagged(const WireContext &) const
{
    WireWriter w;
    putOpt(w, 1, vid);
    return w.take();
}

Result<VmCommand>
VmCommand::decodeTagged(const Bytes &data)
{
    using R = Result<VmCommand>;
    WireReader r(data);
    VmCommand m;
    while (!r.atEnd()) {
        auto f = r.next();
        if (!f)
            return R::error("VmCommand: " + f.errorMessage());
        const WireField &fld = f.value();
        if (fld.number == 1 && fld.type == WireType::Len)
            m.vid = fld.asString();
    }
    return R::ok(std::move(m));
}

Bytes
VmCommandAck::encodeTagged(const WireContext &) const
{
    WireWriter w;
    putOpt(w, 1, vid);
    putOpt(w, 2, ok);
    putOpt(w, 3, error);
    return w.take();
}

Result<VmCommandAck>
VmCommandAck::decodeTagged(const Bytes &data)
{
    using R = Result<VmCommandAck>;
    WireReader r(data);
    VmCommandAck m;
    while (!r.atEnd()) {
        auto f = r.next();
        if (!f)
            return R::error("VmCommandAck: " + f.errorMessage());
        const WireField &fld = f.value();
        switch (fld.number) {
          case 1:
            if (fld.type == WireType::Len)
                m.vid = fld.asString();
            break;
          case 2:
            if (fld.type == WireType::Varint)
                m.ok = fld.asBool();
            break;
          case 3:
            if (fld.type == WireType::Len)
                m.error = fld.asString();
            break;
          default:
            break;
        }
    }
    return R::ok(std::move(m));
}

Bytes
LaunchRequest::encodeTagged(const WireContext &) const
{
    WireWriter w;
    putOpt(w, 1, requestId);
    putOpt(w, 2, name);
    putOpt(w, 3, imageName);
    putOpt(w, 4, flavorName);
    if (!properties.empty())
        w.putLen(5, packedProperties(properties));
    putOpt(w, 6, image);
    putOpt(w, 7, imageSizeMb);
    return w.take();
}

Result<LaunchRequest>
LaunchRequest::decodeTagged(const Bytes &data)
{
    using R = Result<LaunchRequest>;
    WireReader r(data);
    LaunchRequest m;
    while (!r.atEnd()) {
        auto f = r.next();
        if (!f)
            return R::error("LaunchRequest: " + f.errorMessage());
        const WireField &fld = f.value();
        switch (fld.number) {
          case 1:
            if (fld.type == WireType::Varint)
                m.requestId = fld.varint;
            break;
          case 2:
            if (fld.type == WireType::Len)
                m.name = fld.asString();
            break;
          case 3:
            if (fld.type == WireType::Len)
                m.imageName = fld.asString();
            break;
          case 4:
            if (fld.type == WireType::Len)
                m.flavorName = fld.asString();
            break;
          case 5:
            if (fld.type == WireType::Len &&
                !unpackProperties(fld.bytes, m.properties))
                return R::error("LaunchRequest: bad properties");
            break;
          case 6:
            if (fld.type == WireType::Len)
                m.image = fld.bytes;
            break;
          case 7:
            if (fld.type == WireType::Varint)
                m.imageSizeMb = fld.varint;
            break;
          default:
            break;
        }
    }
    return R::ok(std::move(m));
}

Bytes
LaunchResponse::encodeTagged(const WireContext &) const
{
    WireWriter w;
    putOpt(w, 1, requestId);
    putOpt(w, 2, vid);
    putOpt(w, 3, ok);
    putOpt(w, 4, error);
    return w.take();
}

Result<LaunchResponse>
LaunchResponse::decodeTagged(const Bytes &data)
{
    using R = Result<LaunchResponse>;
    WireReader r(data);
    LaunchResponse m;
    while (!r.atEnd()) {
        auto f = r.next();
        if (!f)
            return R::error("LaunchResponse: " + f.errorMessage());
        const WireField &fld = f.value();
        switch (fld.number) {
          case 1:
            if (fld.type == WireType::Varint)
                m.requestId = fld.varint;
            break;
          case 2:
            if (fld.type == WireType::Len)
                m.vid = fld.asString();
            break;
          case 3:
            if (fld.type == WireType::Varint)
                m.ok = fld.asBool();
            break;
          case 4:
            if (fld.type == WireType::Len)
                m.error = fld.asString();
            break;
          default:
            break;
        }
    }
    return R::ok(std::move(m));
}

Bytes
ReplicateEntries::encodeTagged(const WireContext &) const
{
    WireWriter w;
    putOpt(w, 1, round);
    putOpt(w, 2, leaderId);
    putOpt(w, 3, prevLsn);
    for (const ReplicatedRecord &rec : records) {
        WireWriter nested;
        putOpt(nested, 1, rec.lsn);
        putOpt(nested, 2, std::uint64_t{rec.type});
        putOpt(nested, 3, rec.payload);
        w.putLen(4, nested.data());
    }
    putOpt(w, 5, commitLsn);
    putOpt(w, 6, hasSnapshot);
    putOpt(w, 7, snapshot);
    putOpt(w, 8, snapshotLsn);
    return w.take();
}

Result<ReplicateEntries>
ReplicateEntries::decodeTagged(const Bytes &data)
{
    using R = Result<ReplicateEntries>;
    WireReader r(data);
    ReplicateEntries m;
    while (!r.atEnd()) {
        auto f = r.next();
        if (!f)
            return R::error("ReplicateEntries: " + f.errorMessage());
        const WireField &fld = f.value();
        switch (fld.number) {
          case 1:
            if (fld.type == WireType::Varint)
                m.round = fld.varint;
            break;
          case 2:
            if (fld.type == WireType::Len)
                m.leaderId = fld.asString();
            break;
          case 3:
            if (fld.type == WireType::Varint)
                m.prevLsn = fld.varint;
            break;
          case 4:
            if (fld.type == WireType::Len) {
                WireReader nr(fld.bytes);
                ReplicatedRecord rec;
                while (!nr.atEnd()) {
                    auto nf = nr.next();
                    if (!nf)
                        return R::error("ReplicateEntries: " +
                                        nf.errorMessage());
                    const WireField &n = nf.value();
                    if (n.number == 1 && n.type == WireType::Varint)
                        rec.lsn = n.varint;
                    else if (n.number == 2 && n.type == WireType::Varint)
                        rec.type = static_cast<std::uint16_t>(n.varint);
                    else if (n.number == 3 && n.type == WireType::Len)
                        rec.payload = n.bytes;
                }
                m.records.push_back(std::move(rec));
            }
            break;
          case 5:
            if (fld.type == WireType::Varint)
                m.commitLsn = fld.varint;
            break;
          case 6:
            if (fld.type == WireType::Varint)
                m.hasSnapshot = fld.asBool();
            break;
          case 7:
            if (fld.type == WireType::Len)
                m.snapshot = fld.bytes;
            break;
          case 8:
            if (fld.type == WireType::Varint)
                m.snapshotLsn = fld.varint;
            break;
          default:
            break;
        }
    }
    return R::ok(std::move(m));
}

Bytes
ReplicateAck::encodeTagged(const WireContext &) const
{
    WireWriter w;
    putOpt(w, 1, round);
    putOpt(w, 2, lastLsn);
    return w.take();
}

Result<ReplicateAck>
ReplicateAck::decodeTagged(const Bytes &data)
{
    using R = Result<ReplicateAck>;
    WireReader r(data);
    ReplicateAck m;
    while (!r.atEnd()) {
        auto f = r.next();
        if (!f)
            return R::error("ReplicateAck: " + f.errorMessage());
        const WireField &fld = f.value();
        if (fld.type != WireType::Varint)
            continue;
        if (fld.number == 1)
            m.round = fld.varint;
        else if (fld.number == 2)
            m.lastLsn = fld.varint;
    }
    return R::ok(std::move(m));
}

Bytes
VoteRequest::encodeTagged(const WireContext &) const
{
    WireWriter w;
    putOpt(w, 1, round);
    putOpt(w, 2, lastLogRound);
    putOpt(w, 3, lastLsn);
    putOpt(w, 4, prevote);
    return w.take();
}

Result<VoteRequest>
VoteRequest::decodeTagged(const Bytes &data)
{
    using R = Result<VoteRequest>;
    WireReader r(data);
    VoteRequest m;
    while (!r.atEnd()) {
        auto f = r.next();
        if (!f)
            return R::error("VoteRequest: " + f.errorMessage());
        const WireField &fld = f.value();
        if (fld.type != WireType::Varint)
            continue;
        switch (fld.number) {
          case 1:
            m.round = fld.varint;
            break;
          case 2:
            m.lastLogRound = fld.varint;
            break;
          case 3:
            m.lastLsn = fld.varint;
            break;
          case 4:
            m.prevote = fld.asBool();
            break;
          default:
            break;
        }
    }
    return R::ok(std::move(m));
}

Bytes
VoteGrant::encodeTagged(const WireContext &) const
{
    WireWriter w;
    putOpt(w, 1, round);
    putOpt(w, 2, prevote);
    return w.take();
}

Result<VoteGrant>
VoteGrant::decodeTagged(const Bytes &data)
{
    using R = Result<VoteGrant>;
    WireReader r(data);
    VoteGrant m;
    while (!r.atEnd()) {
        auto f = r.next();
        if (!f)
            return R::error("VoteGrant: " + f.errorMessage());
        const WireField &fld = f.value();
        if (fld.type != WireType::Varint)
            continue;
        if (fld.number == 1)
            m.round = fld.varint;
        else if (fld.number == 2)
            m.prevote = fld.asBool();
    }
    return R::ok(std::move(m));
}

Bytes
NotLeader::encodeTagged(const WireContext &) const
{
    WireWriter w;
    putOpt(w, 1, requestId);
    putOpt(w, 2, isLaunch);
    putOpt(w, 3, leaderId);
    putOpt(w, 4, round);
    return w.take();
}

Result<NotLeader>
NotLeader::decodeTagged(const Bytes &data)
{
    using R = Result<NotLeader>;
    WireReader r(data);
    NotLeader m;
    while (!r.atEnd()) {
        auto f = r.next();
        if (!f)
            return R::error("NotLeader: " + f.errorMessage());
        const WireField &fld = f.value();
        switch (fld.number) {
          case 1:
            if (fld.type == WireType::Varint)
                m.requestId = fld.varint;
            break;
          case 2:
            if (fld.type == WireType::Varint)
                m.isLaunch = fld.asBool();
            break;
          case 3:
            if (fld.type == WireType::Len)
                m.leaderId = fld.asString();
            break;
          case 4:
            if (fld.type == WireType::Varint)
                m.round = fld.varint;
            break;
          default:
            break;
        }
    }
    return R::ok(std::move(m));
}

Bytes
MigrateOut::encodeTagged(const WireContext &) const
{
    WireWriter w;
    putOpt(w, 1, vid);
    putOpt(w, 2, targetServer);
    return w.take();
}

Result<MigrateOut>
MigrateOut::decodeTagged(const Bytes &data)
{
    using R = Result<MigrateOut>;
    WireReader r(data);
    MigrateOut m;
    while (!r.atEnd()) {
        auto f = r.next();
        if (!f)
            return R::error("MigrateOut: " + f.errorMessage());
        const WireField &fld = f.value();
        if (fld.type != WireType::Len)
            continue;
        if (fld.number == 1)
            m.vid = fld.asString();
        else if (fld.number == 2)
            m.targetServer = fld.asString();
    }
    return R::ok(std::move(m));
}

Bytes
MigrateIn::encodeTagged(const WireContext &) const
{
    WireWriter w;
    putOpt(w, 1, vid);
    putOpt(w, 2, name);
    if (numVcpus != 1)
        w.putVarint(3, numVcpus);
    if (ramMb != 512)
        w.putVarint(4, ramMb);
    if (diskGb != 1)
        w.putVarint(5, diskGb);
    putOpt(w, 6, imageSizeMb);
    putOpt(w, 7, image);
    if (weight != 256)
        w.putSigned(8, weight);
    for (const std::string &t : guestTasks)
        w.putString(9, t);
    for (const std::string &t : hiddenTasks)
        w.putString(10, t);
    for (const std::string &t : auditEntries)
        w.putString(11, t);
    return w.take();
}

Result<MigrateIn>
MigrateIn::decodeTagged(const Bytes &data)
{
    using R = Result<MigrateIn>;
    WireReader r(data);
    MigrateIn m;
    while (!r.atEnd()) {
        auto f = r.next();
        if (!f)
            return R::error("MigrateIn: " + f.errorMessage());
        const WireField &fld = f.value();
        switch (fld.number) {
          case 1:
            if (fld.type == WireType::Len)
                m.vid = fld.asString();
            break;
          case 2:
            if (fld.type == WireType::Len)
                m.name = fld.asString();
            break;
          case 3:
            if (fld.type == WireType::Varint)
                m.numVcpus = static_cast<std::uint32_t>(fld.varint);
            break;
          case 4:
            if (fld.type == WireType::Varint)
                m.ramMb = fld.varint;
            break;
          case 5:
            if (fld.type == WireType::Varint)
                m.diskGb = fld.varint;
            break;
          case 6:
            if (fld.type == WireType::Varint)
                m.imageSizeMb = fld.varint;
            break;
          case 7:
            if (fld.type == WireType::Len)
                m.image = fld.bytes;
            break;
          case 8:
            if (fld.type == WireType::Varint)
                m.weight = static_cast<int>(fld.asSigned());
            break;
          case 9:
            if (fld.type == WireType::Len) {
                if (m.guestTasks.size() >= 100000)
                    return R::error("MigrateIn: bad task count");
                m.guestTasks.push_back(fld.asString());
            }
            break;
          case 10:
            if (fld.type == WireType::Len) {
                if (m.hiddenTasks.size() >= 100000)
                    return R::error("MigrateIn: bad hidden count");
                m.hiddenTasks.push_back(fld.asString());
            }
            break;
          case 11:
            if (fld.type == WireType::Len) {
                if (m.auditEntries.size() >= 1000000)
                    return R::error("MigrateIn: bad audit count");
                m.auditEntries.push_back(fld.asString());
            }
            break;
          default:
            break;
        }
    }
    return R::ok(std::move(m));
}

} // namespace monatt::proto
