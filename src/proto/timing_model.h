/**
 * @file
 * Cloud timing model.
 *
 * First-order cost model of the paper's testbed (three Dell R210II
 * servers, quad-core 3.3 GHz Xeon, 1 Gbps LAN, OpenStack Havana +
 * OpenAttestation). Link latency and bandwidth live in the network
 * layer; everything else — OpenStack stage costs, per-hop REST/OAT
 * processing, TPM-emulator key generation, state save/restore rates —
 * is parameterized here. Defaults are calibrated so the launch
 * breakdown of Figure 9 ("the overhead of the Attestation stage is
 * about 20%") and the response times of Figure 11 reproduce the
 * paper's shape. EXPERIMENTS.md documents the calibration.
 */

#ifndef MONATT_PROTO_TIMING_MODEL_H
#define MONATT_PROTO_TIMING_MODEL_H

#include <cstdint>

#include "common/time_types.h"

namespace monatt::proto
{

/** Simulated processing-cost model. */
struct TimingModel
{
    // --- Attestation protocol processing (per hop) -------------------
    SimTime controllerProcessing = msec(60);  //!< nova api/attest_service.
    SimTime attestorProcessing = msec(80);    //!< oat appraiser.
    SimTime serverProcessing = msec(50);      //!< oat client dispatch.
    SimTime pcaProcessing = msec(40);         //!< Certificate issuance.
    SimTime aikGeneration = msec(200);        //!< Per-session {AVKs,ASKs}.
    SimTime interpretation = msec(100);       //!< Property interpretation.
    SimTime staticCollection = msec(80);      //!< PCR / task-list reads.
    SimTime runtimeWindow = seconds(2);       //!< Runtime measure window.

    // --- VM launch stages (Figure 9) ----------------------------------
    SimTime schedulingBase = msec(150);
    SimTime schedulingPerServer = msec(20);
    SimTime networking = msec(800);
    SimTime mappingBase = msec(200);
    SimTime mappingPerDiskGb = msec(8);
    SimTime spawnBase = msec(600);
    double imageReadMbPerSec = 400.0; //!< Image staging from storage.
    SimTime bootPerRamGb = msec(300);

    // --- Remediation responses (Figure 11) ----------------------------
    SimTime terminateBase = msec(600);
    SimTime terminatePerRamGb = msec(200);
    SimTime suspendBase = msec(500);
    double suspendSaveMbPerSec = 500.0;
    SimTime resumeBase = msec(400);
    double resumeLoadMbPerSec = 800.0;
    SimTime migrationResume = msec(300);

    /** Spawning stage: stage the image and boot the guest. */
    SimTime
    spawnTime(std::uint64_t imageSizeMb, std::uint64_t ramMb) const
    {
        const double fetchSec =
            static_cast<double>(imageSizeMb) / imageReadMbPerSec;
        return spawnBase + fromSeconds(fetchSec) +
               bootPerRamGb * static_cast<SimTime>(ramMb) / 1024;
    }

    /** Block_device_mapping stage. */
    SimTime
    mappingTime(std::uint64_t diskGb) const
    {
        return mappingBase +
               mappingPerDiskGb * static_cast<SimTime>(diskGb);
    }

    /** Termination response. */
    SimTime
    terminateTime(std::uint64_t ramMb) const
    {
        return terminateBase +
               terminatePerRamGb * static_cast<SimTime>(ramMb) / 1024;
    }

    /** Suspension response (state save to disk). */
    SimTime
    suspendTime(std::uint64_t ramMb) const
    {
        const double saveSec =
            static_cast<double>(ramMb) / suspendSaveMbPerSec;
        return suspendBase + fromSeconds(saveSec);
    }

    /** Resume from a saved state. */
    SimTime
    resumeTime(std::uint64_t ramMb) const
    {
        const double loadSec =
            static_cast<double>(ramMb) / resumeLoadMbPerSec;
        return resumeBase + fromSeconds(loadSec);
    }
};

} // namespace monatt::proto

#endif // MONATT_PROTO_TIMING_MODEL_H
