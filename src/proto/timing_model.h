/**
 * @file
 * Cloud timing model.
 *
 * First-order cost model of the paper's testbed (three Dell R210II
 * servers, quad-core 3.3 GHz Xeon, 1 Gbps LAN, OpenStack Havana +
 * OpenAttestation). Link latency and bandwidth live in the network
 * layer; everything else — OpenStack stage costs, per-hop REST/OAT
 * processing, TPM-emulator key generation, state save/restore rates —
 * is parameterized here. Defaults are calibrated so the launch
 * breakdown of Figure 9 ("the overhead of the Attestation stage is
 * about 20%") and the response times of Figure 11 reproduce the
 * paper's shape. EXPERIMENTS.md documents the calibration.
 */

#ifndef MONATT_PROTO_TIMING_MODEL_H
#define MONATT_PROTO_TIMING_MODEL_H

#include <cstdint>

#include "common/time_types.h"

namespace monatt::proto
{

/**
 * Per-hop round-trip-time estimator (RFC 6298 shape, integer
 * microseconds, keyed to simulated time).
 *
 * Smoothed RTT and RTT variance follow TCP's EWMAs:
 * first sample sets srtt = rtt, rttvar = rtt / 2; afterwards
 * rttvar = (3·rttvar + |srtt − rtt|) / 4 and
 * srtt = (7·srtt + rtt) / 8. Callers observe Karn's algorithm: never
 * feed a sample from an exchange that was retransmitted or failed
 * over, since the reply cannot be matched to a send attempt.
 */
struct RttEstimator
{
    SimTime srtt = 0;
    SimTime rttvar = 0;
    std::uint64_t samples = 0;

    void
    addSample(SimTime rtt)
    {
        if (rtt < 0)
            return;
        if (samples == 0)
        {
            srtt = rtt;
            rttvar = rtt / 2;
        }
        else
        {
            const SimTime delta = srtt > rtt ? srtt - rtt : rtt - srtt;
            rttvar = (3 * rttvar + delta) / 4;
            srtt = (7 * srtt + rtt) / 8;
        }
        ++samples;
    }
};

/**
 * Protocol reliability knobs: per-hop retransmission timers with
 * exponential backoff and bounded retry budgets, plus controller-side
 * health tracking / failover. Retry timers are schedule-then-cancel:
 * on the fault-free path every timer is cancelled before it fires, so
 * (with the PR 2 event-queue semantics — cancelled events neither run
 * nor advance the clock) enabling reliability does not perturb
 * fault-free runs. RTOs therefore sit well above the worst-case
 * fault-free round-trip of the hop they guard.
 */
struct ReliabilityModel
{
    /**
     * Master switch for all protocol timers. Off by default so
     * entities constructed standalone (unit fixtures, historic
     * deployments) keep their exact legacy behavior; the full-stack
     * Cloud opts in via enabledDefaults().
     */
    bool enabled = false;

    // --- SecureEndpoint handshake ------------------------------------
    SimTime handshakeRto = msec(250);
    int handshakeRetryLimit = 5;

    // --- Customer -> Controller (whole attestation) --------------------
    SimTime customerRto = seconds(10);
    int customerRetryLimit = 3;

    // --- Controller -> Attestation Server (AttestForward) --------------
    SimTime forwardRto = seconds(6);
    int forwardRetryLimit = 2;

    // --- Attestation Server -> Cloud Server (MeasureRequest) -----------
    SimTime measureRto = seconds(4);
    int measureRetryLimit = 2;

    // --- Cloud Server -> privacy CA (CertRequest) ----------------------
    SimTime certRto = seconds(2);
    int certRetryLimit = 3;

    // --- Controller health tracking / failover -------------------------
    int failoverLimit = 1;    //!< Max AS switches per request.
    int suspectThreshold = 2; //!< Timeouts before an AS is suspect.

    // --- Adaptive retry budgets ----------------------------------------
    /**
     * When set, hops that maintain an RttEstimator derive their RTO
     * from observed RTT (rto() below) instead of the fixed constants
     * above: a slow deployment stops spuriously failing over, a fast
     * one detects loss sooner. The fixed RTO still bounds the very
     * first exchange on a hop (no samples yet).
     */
    bool adaptiveRto = true;
    SimTime minRto = msec(200);  //!< Floor for the adaptive RTO.
    SimTime maxRto = seconds(30); //!< Ceiling for the adaptive RTO.

    /** Exponential backoff: rto << attempt, capped to avoid overflow. */
    SimTime
    backoff(SimTime rto, int attempt) const
    {
        const int shift = attempt < 6 ? attempt : 6;
        return rto << shift;
    }

    /**
     * Effective RTO for a hop: the fixed knob until the estimator has
     * a sample (or when adaptation is off), afterwards
     * 2·SRTT + 4·RTTVAR clamped to [minRto, maxRto]. The multipliers
     * are deliberately generous (above RFC 6298's srtt + 4·rttvar):
     * simulated hops have near-constant RTT, so rttvar decays toward
     * zero and a tight bound would retransmit on the first scheduling
     * wobble. With the generous bound the adaptive timer still only
     * fires when the reply is genuinely lost, keeping clean-wire runs
     * schedule-then-cancel and therefore byte-identical.
     */
    SimTime
    rto(SimTime fixedRto, const RttEstimator &est) const
    {
        if (!adaptiveRto || est.samples == 0)
            return fixedRto;
        SimTime adaptive = 2 * est.srtt + 4 * est.rttvar;
        if (adaptive < minRto)
            adaptive = minRto;
        if (adaptive > maxRto)
            adaptive = maxRto;
        return adaptive;
    }

    /** The default knob set with the master switch on. */
    static ReliabilityModel
    enabledDefaults()
    {
        ReliabilityModel model;
        model.enabled = true;
        return model;
    }
};

/** Simulated processing-cost model. */
struct TimingModel
{
    // --- Attestation protocol processing (per hop) -------------------
    SimTime controllerProcessing = msec(60);  //!< nova api/attest_service.
    SimTime attestorProcessing = msec(80);    //!< oat appraiser.
    SimTime serverProcessing = msec(50);      //!< oat client dispatch.
    SimTime pcaProcessing = msec(40);         //!< Certificate issuance.
    SimTime aikGeneration = msec(200);        //!< Per-session {AVKs,ASKs}.
    SimTime interpretation = msec(100);       //!< Property interpretation.
    SimTime staticCollection = msec(80);      //!< PCR / task-list reads.
    SimTime runtimeWindow = seconds(2);       //!< Runtime measure window.

    // --- VM launch stages (Figure 9) ----------------------------------
    SimTime schedulingBase = msec(150);
    SimTime schedulingPerServer = msec(20);
    SimTime networking = msec(800);
    SimTime mappingBase = msec(200);
    SimTime mappingPerDiskGb = msec(8);
    SimTime spawnBase = msec(600);
    double imageReadMbPerSec = 400.0; //!< Image staging from storage.
    SimTime bootPerRamGb = msec(300);

    // --- Remediation responses (Figure 11) ----------------------------
    SimTime terminateBase = msec(600);
    SimTime terminatePerRamGb = msec(200);
    SimTime suspendBase = msec(500);
    double suspendSaveMbPerSec = 500.0;
    SimTime resumeBase = msec(400);
    double resumeLoadMbPerSec = 800.0;
    SimTime migrationResume = msec(300);

    /** Spawning stage: stage the image and boot the guest. */
    SimTime
    spawnTime(std::uint64_t imageSizeMb, std::uint64_t ramMb) const
    {
        const double fetchSec =
            static_cast<double>(imageSizeMb) / imageReadMbPerSec;
        return spawnBase + fromSeconds(fetchSec) +
               bootPerRamGb * static_cast<SimTime>(ramMb) / 1024;
    }

    /** Block_device_mapping stage. */
    SimTime
    mappingTime(std::uint64_t diskGb) const
    {
        return mappingBase +
               mappingPerDiskGb * static_cast<SimTime>(diskGb);
    }

    /** Termination response. */
    SimTime
    terminateTime(std::uint64_t ramMb) const
    {
        return terminateBase +
               terminatePerRamGb * static_cast<SimTime>(ramMb) / 1024;
    }

    /** Suspension response (state save to disk). */
    SimTime
    suspendTime(std::uint64_t ramMb) const
    {
        const double saveSec =
            static_cast<double>(ramMb) / suspendSaveMbPerSec;
        return suspendBase + fromSeconds(saveSec);
    }

    /** Resume from a saved state. */
    SimTime
    resumeTime(std::uint64_t ramMb) const
    {
        const double loadSec =
            static_cast<double>(ramMb) / resumeLoadMbPerSec;
        return resumeBase + fromSeconds(loadSec);
    }
};

} // namespace monatt::proto

#endif // MONATT_PROTO_TIMING_MODEL_H
