/**
 * @file
 * Measurements: what the Monitor Module collects and the Trust Module
 * signs.
 *
 * §4.1: "The Attestation Server has a mapping of security property P
 * to measurements M. This gives a list of measurements M that can
 * indicate the security health with respect to the specified property
 * P." A `MeasurementType` names one collectable quantity; a
 * `Measurement` is one collected instance; a `MeasurementSet` is the
 * M of Figure 3, with a canonical byte encoding — the exact bytes
 * hashed into the quote Q3 = H(Vid || rM || M || N3).
 */

#ifndef MONATT_PROTO_MEASUREMENT_H
#define MONATT_PROTO_MEASUREMENT_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/time_types.h"
#include "proto/property.h"

namespace monatt::proto
{

/** Collectable measurement kinds (the rM vocabulary). */
enum class MeasurementType : std::uint8_t
{
    PlatformPcrs = 1,         //!< Hypervisor + host-OS PCR values.
    VmImageDigest = 2,        //!< SHA-256 of the VM image as launched.
    TaskListVmi = 3,          //!< Task list via VM introspection.
    TaskListGuest = 4,        //!< Task list as the guest reports it.
    UsageIntervalHistogram = 5, //!< 30 TERs of CPU-usage intervals.
    CpuMeasure = 6,           //!< Virtual runtime in the window.
    AuditLogDigest = 7,       //!< Hash-chain head + entry count.

    /**
     * The platform's firmware TCB version (values[0]), measured at
     * boot like the PCRs and covered by the signed quote Q3. The AS
     * requests it alongside any property when its minimum-TCB policy
     * is armed, so a rolled-back host cannot omit it silently.
     */
    TcbVersion = 8,
};

/** Human-readable measurement-type name. */
std::string measurementTypeName(MeasurementType t);

/** One collected measurement. */
struct Measurement
{
    MeasurementType type{};
    std::vector<std::string> strings;     //!< Task lists.
    std::vector<std::uint64_t> values;    //!< TER / counter values.
    Bytes digest;                         //!< Hash-valued payloads.
    SimTime windowLength = 0;             //!< Collection window.

    Bytes encode() const;
    static Result<Measurement> decode(const Bytes &data);

    /** Tagged-field encoding (schema-evolvable transport form). */
    Bytes encodeTagged() const;
    static Result<Measurement> decodeTagged(const Bytes &data);

    bool operator==(const Measurement &o) const;
};

/** The measurement vector M of Figure 3. */
struct MeasurementSet
{
    std::vector<Measurement> items;

    /** Find a measurement by type; nullptr when absent. */
    const Measurement *find(MeasurementType t) const;

    Bytes encode() const;
    static Result<MeasurementSet> decode(const Bytes &data);

    /** Tagged-field encoding (schema-evolvable transport form). */
    Bytes encodeTagged() const;
    static Result<MeasurementSet> decodeTagged(const Bytes &data);

    bool operator==(const MeasurementSet &o) const;
};

/** The requested-measurements list rM of Figure 3. */
using MeasurementRequestList = std::vector<MeasurementType>;

/** Canonical encoding of rM (hashed into Q3). */
Bytes encodeRequestList(const MeasurementRequestList &rm);

/** Decode rM. */
Result<MeasurementRequestList> decodeRequestList(const Bytes &data);

/** rM as a packed-varint payload (the tagged transport form). */
Bytes encodeRequestListPacked(const MeasurementRequestList &rm);

/** Decode a packed-varint rM payload. */
Result<MeasurementRequestList> decodeRequestListPacked(const Bytes &data);

/**
 * The property→measurement mapping of §4.1 (what the Attestation
 * Server asks a cloud server to collect for a given property).
 */
MeasurementRequestList measurementsForProperty(SecurityProperty p);

} // namespace monatt::proto

#endif // MONATT_PROTO_MEASUREMENT_H
