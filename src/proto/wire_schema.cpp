#include "proto/wire_schema.h"

#include "proto/messages.h"

namespace monatt::proto
{

namespace
{

using wire::WireType;

constexpr WireType V = WireType::Varint;
constexpr WireType I = WireType::I64;
constexpr WireType L = WireType::Len;

std::uint8_t
kindByte(MessageKind k)
{
    return static_cast<std::uint8_t>(k);
}

std::vector<MessageSchema>
buildSchemas()
{
    std::vector<MessageSchema> s;
    s.push_back({kindByte(MessageKind::AttestRequest), "AttestRequest",
                 {{1, V, "requestId", kWireV1},
                  {2, L, "vid", kWireV1},
                  {3, L, "properties", kWireV1},
                  {4, L, "nonce1", kWireV1},
                  {5, V, "mode", kWireV1},
                  {6, V, "period", kWireV1},
                  {kSenderBuildField, V, "senderBuild", kWireV2}}});
    s.push_back({kindByte(MessageKind::AttestForward), "AttestForward",
                 {{1, V, "requestId", kWireV1},
                  {2, L, "vid", kWireV1},
                  {3, L, "serverId", kWireV1},
                  {4, L, "properties", kWireV1},
                  {5, L, "nonce2", kWireV1},
                  {6, V, "mode", kWireV1},
                  {7, V, "period", kWireV1},
                  {kSenderBuildField, V, "senderBuild", kWireV2}}});
    s.push_back({kindByte(MessageKind::MeasureRequest), "MeasureRequest",
                 {{1, V, "requestId", kWireV1},
                  {2, L, "vid", kWireV1},
                  {3, L, "rm", kWireV1},
                  {4, L, "nonce3", kWireV1},
                  {5, V, "window", kWireV1},
                  {kSenderBuildField, V, "senderBuild", kWireV2}}});
    s.push_back({kindByte(MessageKind::MeasureResponse), "MeasureResponse",
                 {{1, V, "requestId", kWireV1},
                  {2, L, "vid", kWireV1},
                  {3, L, "rm", kWireV1},
                  {4, L, "m", kWireV1},
                  {5, L, "nonce3", kWireV1},
                  {6, L, "quote3", kWireV1},
                  {7, L, "signature", kWireV1},
                  {8, L, "certificate", kWireV1},
                  {9, V, "tcbVersion", kWireV3},
                  {kSenderBuildField, V, "senderBuild", kWireV2}}});
    s.push_back({kindByte(MessageKind::ReportToController),
                 "ReportToController",
                 {{1, V, "requestId", kWireV1},
                  {2, L, "vid", kWireV1},
                  {3, L, "serverId", kWireV1},
                  {4, L, "properties", kWireV1},
                  {5, L, "report", kWireV1},
                  {6, L, "nonce2", kWireV1},
                  {7, L, "quote2", kWireV1},
                  {8, L, "signature", kWireV1},
                  {9, V, "tcbVersion", kWireV3},
                  {kSenderBuildField, V, "senderBuild", kWireV2}}});
    s.push_back({kindByte(MessageKind::ReportToCustomer),
                 "ReportToCustomer",
                 {{1, V, "requestId", kWireV1},
                  {2, L, "vid", kWireV1},
                  {3, L, "properties", kWireV1},
                  {4, L, "report", kWireV1},
                  {5, L, "nonce1", kWireV1},
                  {6, L, "quote1", kWireV1},
                  {7, L, "signature", kWireV1},
                  {8, V, "finalPeriodic", kWireV1},
                  {9, V, "tcbVersion", kWireV3},
                  {kSenderBuildField, V, "senderBuild", kWireV2}}});
    s.push_back({kindByte(MessageKind::CertRequest), "CertRequest",
                 {{1, L, "serverId", kWireV1},
                  {2, L, "sessionLabel", kWireV1},
                  {3, L, "avk", kWireV1},
                  {4, L, "avkSignature", kWireV1}}});
    s.push_back({kindByte(MessageKind::CertResponse), "CertResponse",
                 {{1, L, "sessionLabel", kWireV1},
                  {2, V, "ok", kWireV1},
                  {3, L, "error", kWireV1},
                  {4, L, "certificate", kWireV1}}});
    s.push_back({kindByte(MessageKind::AttestFailure), "AttestFailure",
                 {{1, V, "requestId", kWireV1},
                  {2, L, "vid", kWireV1},
                  {3, V, "outcome", kWireV1},
                  {4, L, "reason", kWireV1}}});
    s.push_back({kindByte(MessageKind::LaunchVm), "LaunchVm",
                 {{1, L, "vid", kWireV1},
                  {2, L, "name", kWireV1},
                  {3, V, "numVcpus", kWireV1},
                  {4, V, "ramMb", kWireV1},
                  {5, V, "diskGb", kWireV1},
                  {6, V, "imageSizeMb", kWireV1},
                  {7, L, "image", kWireV1},
                  {8, V, "weight", kWireV1}}});
    s.push_back({kindByte(MessageKind::LaunchVmAck), "LaunchVmAck",
                 {{1, L, "vid", kWireV1},
                  {2, V, "ok", kWireV1},
                  {3, L, "error", kWireV1},
                  {4, L, "imageDigest", kWireV1}}});
    s.push_back({kindByte(MessageKind::TerminateVm), "VmCommand",
                 {{1, L, "vid", kWireV1}}});
    s.push_back({kindByte(MessageKind::TerminateVmAck), "VmCommandAck",
                 {{1, L, "vid", kWireV1},
                  {2, V, "ok", kWireV1},
                  {3, L, "error", kWireV1}}});
    s.push_back({kindByte(MessageKind::MigrateOut), "MigrateOut",
                 {{1, L, "vid", kWireV1},
                  {2, L, "targetServer", kWireV1}}});
    s.push_back({kindByte(MessageKind::MigrateIn), "MigrateIn",
                 {{1, L, "vid", kWireV1},
                  {2, L, "name", kWireV1},
                  {3, V, "numVcpus", kWireV1},
                  {4, V, "ramMb", kWireV1},
                  {5, V, "diskGb", kWireV1},
                  {6, V, "imageSizeMb", kWireV1},
                  {7, L, "image", kWireV1},
                  {8, V, "weight", kWireV1},
                  {9, L, "guestTasks", kWireV1},
                  {10, L, "hiddenTasks", kWireV1},
                  {11, L, "auditEntries", kWireV1}}});
    s.push_back({kindByte(MessageKind::LaunchRequest), "LaunchRequest",
                 {{1, V, "requestId", kWireV1},
                  {2, L, "name", kWireV1},
                  {3, L, "imageName", kWireV1},
                  {4, L, "flavorName", kWireV1},
                  {5, L, "properties", kWireV1},
                  {6, L, "image", kWireV1},
                  {7, V, "imageSizeMb", kWireV1}}});
    s.push_back({kindByte(MessageKind::LaunchResponse), "LaunchResponse",
                 {{1, V, "requestId", kWireV1},
                  {2, L, "vid", kWireV1},
                  {3, V, "ok", kWireV1},
                  {4, L, "error", kWireV1}}});
    s.push_back({kindByte(MessageKind::ReplicateEntries),
                 "ReplicateEntries",
                 {{1, V, "round", kWireV1},
                  {2, L, "leaderId", kWireV1},
                  {3, V, "prevLsn", kWireV1},
                  {4, L, "records", kWireV1},
                  {5, V, "commitLsn", kWireV1},
                  {6, V, "hasSnapshot", kWireV1},
                  {7, L, "snapshot", kWireV1},
                  {8, V, "snapshotLsn", kWireV1}}});
    s.push_back({kindByte(MessageKind::ReplicateAck), "ReplicateAck",
                 {{1, V, "round", kWireV1},
                  {2, V, "lastLsn", kWireV1}}});
    s.push_back({kindByte(MessageKind::VoteRequest), "VoteRequest",
                 {{1, V, "round", kWireV1},
                  {2, V, "lastLogRound", kWireV1},
                  {3, V, "lastLsn", kWireV1},
                  {4, V, "prevote", kWireV1}}});
    s.push_back({kindByte(MessageKind::VoteGrant), "VoteGrant",
                 {{1, V, "round", kWireV1},
                  {2, V, "prevote", kWireV1}}});
    s.push_back({kindByte(MessageKind::NotLeader), "NotLeader",
                 {{1, V, "requestId", kWireV1},
                  {2, V, "isLaunch", kWireV1},
                  {3, L, "leaderId", kWireV1},
                  {4, V, "round", kWireV1}}});
    (void)I; // I64 is reserved for doubles; no released field uses it yet.
    return s;
}

} // namespace

const std::vector<MessageSchema> &
wireSchemas()
{
    static const std::vector<MessageSchema> schemas = buildSchemas();
    return schemas;
}

const MessageSchema *
schemaFor(std::uint8_t kind)
{
    // The per-VM commands and their acks share the VmCommand /
    // VmCommandAck schema under the Terminate* entries (migrate acks
    // are VmCommandAck too; MigrateIn/MigrateOut carry their own).
    if (kind >= kindByte(MessageKind::TerminateVm) &&
        kind <= kindByte(MessageKind::ResumeVmAck)) {
        kind = (kind % 2 == 0) ? kindByte(MessageKind::TerminateVm)
                               : kindByte(MessageKind::TerminateVmAck);
    } else if (kind == kindByte(MessageKind::MigrateInAck) ||
               kind == kindByte(MessageKind::MigrateOutAck)) {
        kind = kindByte(MessageKind::TerminateVmAck);
    }
    for (const MessageSchema &m : wireSchemas()) {
        if (m.kind == kind)
            return &m;
    }
    return nullptr;
}

} // namespace monatt::proto
