#include "controller/cloud_controller.h"

#include <algorithm>

#include "common/codec.h"
#include "common/logging.h"
#include "common/wire.h"
#include "controller/hash_ring.h"
#include "sim/worker_pool.h"

namespace monatt::controller
{

using proto::AttestForward;
using proto::AttestMode;
using proto::AttestRequest;
using proto::MessageKind;
using proto::ReportToController;
using proto::ReportToCustomer;

namespace
{

Bytes
endpointSeed(const std::string &id, std::uint64_t seed)
{
    Bytes material = toBytes("cc-endpoint:" + id);
    for (int i = 0; i < 8; ++i)
        material.push_back(static_cast<std::uint8_t>(seed >> (8 * i)));
    return material;
}

} // namespace

crypto::RsaKeyPair
CloudController::deriveIdentityKeys(const std::string &id,
                                    std::uint64_t seed, std::size_t bits)
{
    Bytes material = toBytes("cc-identity:" + id);
    for (int i = 0; i < 8; ++i)
        material.push_back(static_cast<std::uint8_t>(seed >> (8 * i)));
    crypto::HmacDrbg drbg(material);
    Rng rng = drbg.forkRng();
    return crypto::rsaGenerateKeyPair(bits, rng);
}

std::string
responsePolicyName(ResponsePolicy p)
{
    switch (p) {
      case ResponsePolicy::None:
        return "none";
      case ResponsePolicy::Terminate:
        return "termination";
      case ResponsePolicy::Suspend:
        return "suspension";
      case ResponsePolicy::Migrate:
        return "migration";
    }
    return "unknown";
}

CloudController::CloudController(sim::EventQueue &eq,
                                 net::Network &network,
                                 net::KeyDirectory &directory,
                                 CloudControllerConfig config,
                                 std::uint64_t seed)
    : events(eq), cfg(std::move(config)),
      keys(cfg.presetIdentityKeys
               ? *std::move(cfg.presetIdentityKeys)
               : deriveIdentityKeys(cfg.id, seed, cfg.identityKeyBits)),
      signCtx(keys.priv), dir(directory),
      endpoint(network, cfg.id, keys, directory,
               endpointSeed(cfg.id, seed)),
      rng(seed ^ 0xcc), store(cfg.id), ckptPolicy(cfg.checkpointPolicy),
      election(cfg.id,
               cfg.groupIds.empty() ? std::vector<std::string>{cfg.id}
                                    : cfg.groupIds,
               cfg.election)
{
    endpoint.onMessage([this](const net::NodeId &from, const Bytes &msg) {
        handleMessage(from, msg);
    });
    endpoint.setReliability(net::EndpointReliability{
        cfg.reliability.enabled, cfg.reliability.handshakeRto,
        cfg.reliability.handshakeRetryLimit});

    // The primary replica boots as the round-1 leader so an
    // unreplicated (or freshly built) group needs no election.
    if (cfg.replicaIndex == 0)
        election.bootstrapLeader();
    knownLeader = groupId();
    if (replicated()) {
        ledger.reset(followerIds());
        if (election.role() == ReplicaRole::Leader)
            armHeartbeat();
        else
            armElectionTimer();
    }
}

void
CloudController::setResponsePolicy(const std::string &vid,
                                   ResponsePolicy policy)
{
    policies[vid] = policy;
    journalPolicy(vid);
    commitJournal();
}

void
CloudController::addFlavor(const std::string &name, std::uint32_t vcpus,
                           std::uint64_t ramMb, std::uint64_t diskGb)
{
    flavors[name] = FlavorSpec{vcpus, ramMb, diskGb};
}

void
CloudController::assignAttestationCluster(const std::string &serverId,
                                          const std::string &attestorId)
{
    clusters[serverId] = attestorId;
}

const std::string &
CloudController::attestorFor(const std::string &serverId) const
{
    const auto it = clusters.find(serverId);
    return it == clusters.end() ? cfg.attestationServerId : it->second;
}

const crypto::RsaPublicContext &
CloudController::attestorContext(const std::string &attestorId,
                                 const crypto::RsaPublicKey &key)
{
    auto it = attestorCtxCache.find(attestorId);
    if (it != attestorCtxCache.end() && !(it->second.key() == key)) {
        attestorCtxCache.erase(it);
        it = attestorCtxCache.end();
    }
    if (it == attestorCtxCache.end()) {
        it = attestorCtxCache
                 .emplace(attestorId, crypto::RsaPublicContext(key))
                 .first;
    }
    return it->second;
}

void
CloudController::handleMessage(const net::NodeId &from,
                               const Bytes &plaintext)
{
    auto unpacked = proto::unpackMessage(plaintext);
    if (!unpacked)
        return;
    const auto &[kind, format, body] = unpacked.value();
    // Handlers run synchronously inside this dispatch, so a member
    // carrying the frame's self-described format is race-free and
    // spares every handler signature a format parameter.
    rxFormat_ = format;
    // Replicated non-leaders are passive: customer requests get a
    // NotLeader redirect, protocol traffic for the leader is dropped
    // (the sender's retransmission reaches the leader), and only the
    // replication/election messages below are processed.
    const bool passive =
        replicated() && election.role() != ReplicaRole::Leader;
    switch (kind) {
      case MessageKind::LaunchRequest:
        if (passive) {
            auto req = proto::decodeAs<proto::LaunchRequest>(rxFormat_, body);
            if (req)
                sendNotLeader(from, req.value().requestId, true);
        } else {
            onLaunchRequest(from, body);
        }
        break;
      case MessageKind::AttestRequest:
        if (passive) {
            auto req = proto::decodeAs<AttestRequest>(rxFormat_, body);
            if (req)
                sendNotLeader(from, req.value().requestId, false);
        } else {
            onAttestRequest(from, body);
        }
        break;
      case MessageKind::LaunchVmAck:
        if (!passive)
            onLaunchVmAck(from, body);
        break;
      case MessageKind::ReportToController:
        if (!passive && isKnownAttestor(from))
            onReportToController(from, body);
        break;
      case MessageKind::TerminateVmAck:
      case MessageKind::SuspendVmAck:
      case MessageKind::ResumeVmAck:
      case MessageKind::MigrateOutAck:
        if (!passive)
            onCommandAck(kind, body);
        break;
      case MessageKind::ReplicateEntries:
        onReplicateEntries(from, body);
        break;
      case MessageKind::ReplicateAck:
        onReplicateAck(from, body);
        break;
      case MessageKind::VoteRequest:
        onVoteRequest(from, body);
        break;
      case MessageKind::VoteGrant:
        onVoteGrant(from, body);
        break;
      default:
        MONATT_LOG(Warn, "cc") << "unexpected message from " << from;
        break;
    }
    // WAL rule: every mutation the handlers above made is fsynced
    // before the event ends — crashes land between events, so no
    // externally visible state is ever lost.
    commitJournal();
}

std::string
CloudController::allocateVid()
{
    for (;;) {
        std::string vid = "vm-" + std::to_string(nextVmNumber++);
        // Ring ownership is by the shard's *base* id: every replica of
        // a group allocates from the same partition of the vid space.
        if (cfg.ring == nullptr || cfg.ring->empty() ||
            cfg.ring->owner(vid) == groupId())
            return vid;
    }
}

std::uint64_t
CloudController::makeAttestId(std::uint64_t counter) const
{
    return (static_cast<std::uint64_t>(
                static_cast<std::uint32_t>(cfg.shardIndex))
            << 48) |
           counter;
}

SimTime
CloudController::serviceDelay(SimTime cost)
{
    const SimTime start = std::max(events.now(), busyUntil);
    busyUntil = start + cost;
    return busyUntil - events.now();
}

void
CloudController::onLaunchRequest(const net::NodeId &from,
                                 const Bytes &body)
{
    auto reqR = proto::decodeAs<proto::LaunchRequest>(rxFormat_, body);
    if (!reqR)
        return;
    const proto::LaunchRequest req = reqR.take();
    ++counters.launchesRequested;

    const auto flavorIt = flavors.find(req.flavorName);
    if (flavorIt == flavors.end()) {
        proto::LaunchResponse resp;
        resp.requestId = req.requestId;
        resp.ok = false;
        resp.error = "unknown flavor " + req.flavorName;
        sendExternal(from,
                     pack(MessageKind::LaunchResponse, resp));
        return;
    }

    const std::string vid = allocateVid();

    VmRecord rec;
    rec.vid = vid;
    rec.name = req.name;
    rec.customer = from;
    rec.imageName = req.imageName;
    rec.flavorName = req.flavorName;
    rec.imageSizeMb = req.imageSizeMb;
    rec.image = req.image;
    rec.properties = req.properties;
    rec.vcpus = flavorIt->second.vcpus;
    rec.ramMb = flavorIt->second.ramMb;
    rec.diskGb = flavorIt->second.diskGb;
    rec.status = VmStatus::Scheduling;
    db.addVm(std::move(rec));

    PendingLaunch launch;
    launch.customerRequestId = req.requestId;
    launch.customer = from;
    launches[vid] = std::move(launch);
    journalMeta();
    journalVm(vid);
    journalLaunch(vid);

    runSchedulingStage(vid);
}

void
CloudController::runSchedulingStage(const std::string &vid)
{
    VmRecord *rec = db.vm(vid);
    if (!rec)
        return;
    rec->status = VmStatus::Scheduling;
    rec->launchTimer.beginStage("scheduling", events.now());
    ++rec->launchAttempts;
    journalVm(vid);

    const SimTime cost =
        cfg.timing.schedulingBase +
        cfg.timing.schedulingPerServer *
            static_cast<SimTime>(db.serverIds().size());

    events.scheduleAfter(cost, [this, vid, eraNow = era] {
        if (eraNow != era)
            return;
        VmRecord *rec = db.vm(vid);
        auto launchIt = launches.find(vid);
        if (!rec || launchIt == launches.end())
            return;

        PlacementRequirements req;
        req.ramMb = rec->ramMb;
        req.diskGb = rec->diskGb;
        req.properties = rec->properties;
        const auto candidates = PolicyValidationModule::qualifiedServers(
            db, req, launchIt->second.excludedServers);
        if (candidates.empty()) {
            finishLaunch(vid, false, "no qualified server available");
            commitJournal();
            return;
        }
        rec->serverId = candidates.front();
        db.allocate(rec->serverId, rec->ramMb, rec->diskGb);

        // Networking, then block device mapping, then spawn.
        rec->status = VmStatus::Networking;
        rec->launchTimer.beginStage("networking", events.now());
        journalVm(vid);
        journalServer(rec->serverId);
        commitJournal();
        events.scheduleAfter(cfg.timing.networking,
                             [this, vid, eraNow] {
            if (eraNow != era)
                return;
            VmRecord *rec = db.vm(vid);
            if (!rec)
                return;
            rec->status = VmStatus::Mapping;
            rec->launchTimer.beginStage("mapping", events.now());
            journalVm(vid);
            commitJournal();
            events.scheduleAfter(cfg.timing.mappingTime(rec->diskGb),
                                 [this, vid, eraNow] {
                                     if (eraNow != era)
                                         return;
                                     startSpawn(vid);
                                 });
        });
    }, "cc.scheduling");
}

void
CloudController::startSpawn(const std::string &vid)
{
    VmRecord *rec = db.vm(vid);
    if (!rec)
        return;
    rec->status = VmStatus::Spawning;
    rec->launchTimer.beginStage("spawning", events.now());
    journalVm(vid);

    proto::LaunchVm cmd;
    cmd.vid = vid;
    cmd.name = rec->name;
    cmd.numVcpus = rec->vcpus;
    cmd.ramMb = rec->ramMb;
    cmd.diskGb = rec->diskGb;
    cmd.imageSizeMb = rec->imageSizeMb;
    cmd.image = rec->image;
    // The image itself is staged by the server from the image store
    // (charged inside TimingModel::spawnTime); the command is small.
    sendExternal(rec->serverId,
                 pack(MessageKind::LaunchVm, cmd));
    // Commit after the send so the staged LaunchVm is gated on this
    // handler's own journal records (startSpawn runs from a timer, so
    // no enclosing handler commits for it).
    commitJournal();
}

void
CloudController::onLaunchVmAck(const net::NodeId &from, const Bytes &body)
{
    auto ackR = proto::decodeAs<proto::LaunchVmAck>(rxFormat_, body);
    if (!ackR)
        return;
    const proto::LaunchVmAck ack = ackR.take();
    VmRecord *rec = db.vm(ack.vid);
    // The status guard makes duplicate acks harmless (a late copy of
    // an ack already acted on finds the VM past Spawning).
    if (!rec || rec->serverId != from ||
        rec->status != VmStatus::Spawning)
        return;

    if (!ack.ok) {
        db.release(rec->serverId, rec->ramMb, rec->diskGb);
        journalServer(rec->serverId);
        rescheduleLaunch(ack.vid, "spawn failed: " + ack.error);
        return;
    }
    startStartupAttestation(ack.vid);
}

void
CloudController::startStartupAttestation(const std::string &vid)
{
    VmRecord *rec = db.vm(vid);
    if (!rec)
        return;
    rec->status = VmStatus::Attesting;
    rec->launchTimer.beginStage("attestation", events.now());
    journalVm(vid);

    AttestContext ctx;
    ctx.kind = AttestKind::StartupLaunch;
    ctx.vid = vid;
    ctx.properties = {proto::SecurityProperty::StartupIntegrity};
    ctx.mode = AttestMode::StartupOneTime;
    forwardAttestation(std::move(ctx));
}

std::uint64_t
CloudController::forwardAttestation(AttestContext ctx)
{
    const VmRecord *rec = db.vm(ctx.vid);
    if (!rec || rec->serverId.empty()) {
        // No hang: customers get a definitive failure even when the
        // VM vanished or was never placed.
        if (ctx.kind == AttestKind::CustomerRequest) {
            sendAttestFailure(ctx.customer, ctx.customerRequestId,
                              ctx.vid, proto::FailureOutcome::Failed,
                              "vm not placed");
        }
        return 0;
    }

    const std::uint64_t attestId = makeAttestId(nextAttestId++);
    ctx.nonce2 = rng.nextBytes(16);
    ctx.forwardedAt = events.now();
    ctx.periodic = ctx.mode == AttestMode::RuntimePeriodic;
    ctx.serverId = rec->serverId;
    ctx.attestorId = attestorFor(rec->serverId);
    const bool expectReply = ctx.mode != AttestMode::StopPeriodic;
    attests[attestId] = std::move(ctx);
    journalMeta();
    journalAttest(attestId);
    transmitForward(attestId);
    // StopPeriodic is unacknowledged fire-and-forget (idempotent at
    // the AS); everything else is retried until a report arrives.
    if (cfg.reliability.enabled && expectReply)
        scheduleForwardRetry(attestId);
    return attestId;
}

void
CloudController::transmitForward(std::uint64_t attestId)
{
    const auto it = attests.find(attestId);
    if (it == attests.end())
        return;
    const AttestContext &ctx = it->second;

    // Rebuilt from the context with the same nonce2 on every attempt,
    // so a report answering any copy (or any failover target) binds to
    // this attestation.
    AttestForward fwd;
    fwd.requestId = attestId;
    fwd.vid = ctx.vid;
    fwd.serverId = ctx.serverId;
    fwd.properties = ctx.properties;
    fwd.nonce2 = ctx.nonce2;
    fwd.mode = ctx.mode;
    fwd.period = ctx.period;
    sendExternal(ctx.attestorId,
                 pack(MessageKind::AttestForward, fwd));
}

void
CloudController::scheduleForwardRetry(std::uint64_t attestId)
{
    const auto it = attests.find(attestId);
    if (it == attests.end())
        return;
    AttestContext &ctx = it->second;
    // Adaptive RTO: track the attestor's observed round-trip once
    // samples exist; the fixed knob bounds the first exchange.
    proto::RttEstimator est;
    const auto rttIt = attestorRtt.find(ctx.attestorId);
    if (rttIt != attestorRtt.end())
        est = rttIt->second;
    const SimTime rto = cfg.reliability.rto(cfg.reliability.forwardRto,
                                            est);
    const SimTime delay = cfg.reliability.backoff(rto, ctx.retries);
    ctx.retryTimer = events.scheduleAfter(
        delay,
        [this, attestId, eraNow = era] {
            if (eraNow != era)
                return;
            forwardRetryFired(attestId);
            commitJournal();
        },
        "cc.forward.retry");
}

void
CloudController::forwardRetryFired(std::uint64_t attestId)
{
    const auto it = attests.find(attestId);
    if (it == attests.end())
        return;
    AttestContext &ctx = it->second;
    ctx.retryTimer = 0;
    if (ctx.acked)
        return;

    if (ctx.retries < cfg.reliability.forwardRetryLimit) {
        ++ctx.retries;
        ++counters.forwardRetries;
        journalAttest(attestId);
        transmitForward(attestId);
        scheduleForwardRetry(attestId);
        return;
    }

    // Retry budget exhausted: strike the attestor, then fail the
    // request over to another AS when one is available. Drop the
    // channel too — if the AS crashed and restarted, records sealed
    // under the old session keys would be rejected forever, so the
    // next contact must re-handshake.
    AsHealth &health = asHealth[ctx.attestorId];
    ++health.strikes;
    if (health.strikes >= cfg.reliability.suspectThreshold)
        health.suspect = true;
    journalAsHealth(ctx.attestorId);
    endpoint.resetPeer(ctx.attestorId);

    const std::string alt = alternativeAttestor(ctx.attestorId);
    if (ctx.failovers < cfg.reliability.failoverLimit && !alt.empty()) {
        MONATT_LOG(Warn, "cc")
            << "attestation " << attestId << " failing over from "
            << ctx.attestorId << " to " << alt;
        ++counters.failovers;
        ++ctx.failovers;
        ctx.retries = 0;
        ctx.attestorId = alt;
        journalAttest(attestId);
        transmitForward(attestId);
        scheduleForwardRetry(attestId);
        return;
    }
    giveUpAttestation(attestId);
}

void
CloudController::giveUpAttestation(std::uint64_t attestId)
{
    const auto it = attests.find(attestId);
    if (it == attests.end())
        return;
    const AttestContext ctx = std::move(it->second);
    attests.erase(it);
    journalAttest(attestId);
    ++counters.attestationsUnreachable;
    MONATT_LOG(Warn, "cc")
        << "attestation " << attestId << " for " << ctx.vid
        << " unreachable after retries and failover";

    switch (ctx.kind) {
      case AttestKind::CustomerRequest:
        sendAttestFailure(ctx.customer, ctx.customerRequestId, ctx.vid,
                          proto::FailureOutcome::Unreachable,
                          "attestation service unreachable");
        break;
      case AttestKind::StartupLaunch:
        finishLaunch(ctx.vid, false, "startup attestation unreachable");
        break;
      case AttestKind::SuspendRecheck:
        // Keep the VM suspended; re-check once the period elapses
        // again (the attestation plane may have recovered by then).
        scheduleSuspendRecheck(ctx.vid, ctx.customerRequestId);
        break;
    }
}

void
CloudController::sendAttestFailure(const net::NodeId &customer,
                                   std::uint64_t requestId,
                                   const std::string &vid,
                                   proto::FailureOutcome outcome,
                                   const std::string &reason)
{
    proto::AttestFailure failure;
    failure.requestId = requestId;
    failure.vid = vid;
    failure.outcome = outcome;
    failure.reason = reason;
    Bytes packed = pack(MessageKind::AttestFailure, failure);
    rememberRelay(CustomerKey{customer, requestId}, Bytes(packed));
    sendExternal(customer, std::move(packed));
}

std::vector<std::string>
CloudController::knownAttestors() const
{
    if (!cfg.attestorIds.empty())
        return cfg.attestorIds;
    return {cfg.attestationServerId};
}

bool
CloudController::isKnownAttestor(const net::NodeId &node) const
{
    if (node == cfg.attestationServerId)
        return true;
    for (const std::string &id : cfg.attestorIds)
        if (node == id)
            return true;
    for (const auto &[server, attestor] : clusters)
        if (node == attestor)
            return true;
    return false;
}

std::string
CloudController::alternativeAttestor(const std::string &current) const
{
    const std::vector<std::string> all = knownAttestors();
    // Prefer an AS not currently suspected of being down...
    for (const std::string &id : all) {
        if (id == current)
            continue;
        const auto it = asHealth.find(id);
        if (it == asHealth.end() || !it->second.suspect)
            return id;
    }
    // ...but a suspect AS beats giving up outright.
    for (const std::string &id : all)
        if (id != current)
            return id;
    return {};
}

void
CloudController::rememberRelay(const CustomerKey &key, Bytes packed)
{
    customerInFlight.erase(key);
    const auto [it, inserted] = relayCache.emplace(key, std::move(packed));
    if (inserted) {
        journalRelay(key, it->second);
        relayOrder.push_back(key);
        while (relayOrder.size() > cfg.relayCacheCapacity) {
            relayCache.erase(relayOrder.front());
            relayOrder.pop_front();
        }
    }
}

void
CloudController::onAttestRequest(const net::NodeId &from,
                                 const Bytes &body)
{
    auto reqR = proto::decodeAs<AttestRequest>(rxFormat_, body);
    if (!reqR)
        return;
    const AttestRequest req = reqR.take();

    // Receive-side dedup: swallow retransmissions of a request still
    // in flight; answer completed ones from the relay cache without
    // re-running the protocol or re-signing anything.
    const CustomerKey key{from, req.requestId};
    if (customerInFlight.count(key)) {
        ++counters.duplicateAttestRequests;
        return;
    }
    const auto cached = relayCache.find(key);
    if (cached != relayCache.end()) {
        ++counters.duplicateAttestRequests;
        sendExternal(from, Bytes(cached->second));
        return;
    }

    const VmRecord *rec = db.vm(req.vid);
    if (!rec || rec->customer != from) {
        MONATT_LOG(Warn, "cc")
            << "attestation request for unknown/foreign VM " << req.vid;
        // Identical definitive answer for "no such VM" and "someone
        // else's VM": the requester learns nothing about other
        // tenants, but no longer hangs either.
        sendAttestFailure(from, req.requestId, req.vid,
                          proto::FailureOutcome::Failed, "unknown vm");
        return;
    }

    // StopPeriodic never produces a reply that would clear the mark.
    if (req.mode != AttestMode::StopPeriodic)
        customerInFlight.insert(key);
    events.scheduleAfter(serviceDelay(cfg.timing.controllerProcessing),
                         [this, req, from, key, eraNow = era] {
        if (eraNow != era)
            return;
        const VmRecord *rec = db.vm(req.vid);
        if (!rec) {
            customerInFlight.erase(key);
            sendAttestFailure(from, req.requestId, req.vid,
                              proto::FailureOutcome::Failed,
                              "unknown vm");
            commitJournal();
            return;
        }

        AttestContext ctx;
        ctx.kind = AttestKind::CustomerRequest;
        ctx.vid = req.vid;
        ctx.customer = from;
        ctx.customerRequestId = req.requestId;
        ctx.nonce1 = req.nonce1;
        ctx.properties = req.properties;
        ctx.mode = req.mode;
        ctx.period = req.period;
        forwardAttestation(std::move(ctx));
        commitJournal();
    }, "cc.attest.forward");
}

void
CloudController::onReportToController(const net::NodeId &from,
                                      const Bytes &body)
{
    (void)from;
    auto msgR = proto::decodeAs<ReportToController>(rxFormat_, body);
    if (!msgR) {
        ++counters.reportVerificationFailures;
        return;
    }
    reportQueue.push_back(msgR.take());
    if (!reportFlushScheduled) {
        reportFlushScheduled = true;
        events.scheduleAfter(cfg.batchWindow,
                             [this, eraNow = era] {
                                 if (eraNow != era)
                                     return;
                                 flushReportBatch();
                                 commitJournal();
                             },
                             "cc.verify.flush");
    }
}

void
CloudController::flushReportBatch()
{
    reportFlushScheduled = false;
    std::vector<ReportToController> batch;
    batch.swap(reportQueue);

    // Serial pre-pass, in arrival order: bind to the outstanding
    // attestation and compile the attestor's verification key.
    struct Item
    {
        ReportToController msg;
        AttestContext ctx;
        const crypto::RsaPublicContext *asCtx = nullptr;
        bool ok = false;
    };
    std::vector<Item> items;
    items.reserve(batch.size());
    for (ReportToController &msg : batch) {
        const auto it = attests.find(msg.requestId);
        if (it == attests.end()) {
            ++counters.reportVerificationFailures;
            continue;
        }
        Item item;
        item.ctx = it->second;
        // Verify against the attestor this request currently targets
        // (tracked per context so failover re-binds the signer).
        const std::string &attestor = item.ctx.attestorId.empty()
                                          ? attestorFor(msg.serverId)
                                          : item.ctx.attestorId;
        auto asKey = dir.lookup(attestor);
        if (asKey)
            item.asCtx = &attestorContext(attestor, asKey.value());
        item.msg = std::move(msg);
        items.push_back(std::move(item));
    }

    // Verify the Attestation Server's signature and quote Q2 on the
    // compute plane — pure checks, one task per report. The signer is
    // the cluster attestor responsible for the VM's server.
    sim::WorkerPool::global().parallelFor(
        items.size(), [&](std::size_t i) {
            Item &item = items[i];
            if (!item.asCtx)
                return;
            const ReportToController &msg = item.msg;
            const Bytes expectedQ2 = ReportToController::quoteInput(
                msg.vid, msg.serverId, msg.properties, msg.report,
                msg.nonce2);
            item.ok =
                crypto::rsaVerify(*item.asCtx, msg.signedPortion(),
                                  msg.signature) &&
                constantTimeEqual(expectedQ2, msg.quote2) &&
                constantTimeEqual(msg.nonce2, item.ctx.nonce2) &&
                msg.vid == item.ctx.vid;
        });

    // Serial post-pass, in arrival order: counters, session retirement
    // and report handling.
    for (Item &item : items) {
        if (!item.ok) {
            ++counters.reportVerificationFailures;
            MONATT_LOG(Warn, "cc") << "report verification failed for "
                                   << item.msg.vid;
            continue;
        }
        const auto live = attests.find(item.msg.requestId);
        if (live != attests.end()) {
            AttestContext &stored = live->second;
            if (stored.retryTimer != 0) {
                events.cancel(stored.retryTimer);
                stored.retryTimer = 0;
            }
            // First reply to a clean (never retransmitted, never
            // failed-over, not crash-recovered) exchange: a valid RTT
            // sample per Karn's algorithm. Feeds the adaptive forward
            // RTO for this attestor.
            if (!stored.acked && stored.retries == 0 &&
                stored.failovers == 0 && !stored.recovered &&
                !stored.attestorId.empty()) {
                attestorRtt[stored.attestorId].addSample(
                    events.now() - stored.forwardedAt);
                ++counters.rttSamples;
            }
            stored.acked = true;
            if (!stored.periodic)
                attests.erase(live);
            journalAttest(item.msg.requestId);
        }
        // A verified report clears the attestor's strike record.
        if (!item.ctx.attestorId.empty()) {
            asHealth[item.ctx.attestorId] = AsHealth{};
            journalAsHealth(item.ctx.attestorId);
        }

        events.scheduleAfter(serviceDelay(cfg.timing.controllerProcessing),
                             [this, ctx = item.ctx, msg = item.msg,
                              attestId = item.msg.requestId,
                              eraNow = era] {
            if (eraNow != era)
                return;
            if (ctx.kind == AttestKind::StartupLaunch)
                handleStartupReport(ctx, msg);
            else if (ctx.kind == AttestKind::SuspendRecheck)
                handleRecheckReport(ctx, msg);
            else
                handleCustomerReport(attestId, ctx, msg);
            commitJournal();
        }, "cc.report");
    }
}

void
CloudController::handleStartupReport(const AttestContext &ctx,
                                     const ReportToController &msg)
{
    VmRecord *rec = db.vm(ctx.vid);
    if (!rec)
        return;

    // A rollback verdict condemns the *host*, not the image: evict it
    // from scheduling before picking the replacement server below.
    bool rollback = false;
    for (const proto::PropertyResult &pr : msg.report.results)
        rollback |= pr.status == proto::HealthStatus::TcbRollback;
    if (rollback) {
        ++counters.tcbRollbackReports;
        quarantineServer(rec->serverId,
                         "tcb rollback during startup attestation");
    }

    const proto::PropertyResult *integrity =
        msg.report.find(proto::SecurityProperty::StartupIntegrity);
    if (integrity && integrity->status == proto::HealthStatus::Healthy) {
        finishLaunch(ctx.vid, true, {});
        return;
    }

    const std::string detail = integrity ? integrity->detail
                                         : "no integrity result";
    if (detail.find("image") != std::string::npos) {
        // §5.1: compromised image — reject the launch.
        proto::VmCommand cmd;
        cmd.vid = ctx.vid;
        sendExternal(rec->serverId,
                     pack(MessageKind::TerminateVm, cmd));
        db.release(rec->serverId, rec->ramMb, rec->diskGb);
        journalServer(rec->serverId);
        ++counters.launchesRejected;
        finishLaunch(ctx.vid, false, "vm image integrity check failed");
    } else {
        // §5.1: compromised platform — select another server.
        proto::VmCommand cmd;
        cmd.vid = ctx.vid;
        sendExternal(rec->serverId,
                     pack(MessageKind::TerminateVm, cmd));
        db.release(rec->serverId, rec->ramMb, rec->diskGb);
        journalServer(rec->serverId);
        rescheduleLaunch(ctx.vid, detail);
    }
}

void
CloudController::rescheduleLaunch(const std::string &vid,
                                  const std::string &reason)
{
    VmRecord *rec = db.vm(vid);
    auto launchIt = launches.find(vid);
    if (!rec || launchIt == launches.end())
        return;

    if (rec->launchAttempts >= cfg.maxLaunchAttempts) {
        finishLaunch(vid, false,
                     "launch failed after retries: " + reason);
        return;
    }
    ++counters.launchesRescheduled;
    launchIt->second.excludedServers.insert(rec->serverId);
    rec->serverId.clear();
    journalLaunch(vid);
    MONATT_LOG(Info, "cc") << "rescheduling " << vid << ": " << reason;
    runSchedulingStage(vid);
}

void
CloudController::finishLaunch(const std::string &vid, bool ok,
                              const std::string &error)
{
    VmRecord *rec = db.vm(vid);
    auto launchIt = launches.find(vid);
    if (!rec || launchIt == launches.end())
        return;

    rec->launchTimer.endStage(events.now());
    rec->status = ok ? VmStatus::Running : VmStatus::Failed;
    if (ok) {
        rec->launchedAt = events.now();
        ++counters.launchesSucceeded;
    }

    proto::LaunchResponse resp;
    resp.requestId = launchIt->second.customerRequestId;
    resp.vid = vid;
    resp.ok = ok;
    resp.error = error;
    sendExternal(launchIt->second.customer,
                 pack(MessageKind::LaunchResponse, resp));
    launches.erase(launchIt);
    journalVm(vid);
    journalLaunch(vid);
}

void
CloudController::handleCustomerReport(std::uint64_t attestId,
                                      const AttestContext &ctx,
                                      const ReportToController &msg)
{
    (void)attestId;

    ReportToCustomer out;
    out.requestId = ctx.customerRequestId;
    out.vid = ctx.vid;
    out.properties = ctx.properties;
    out.report = msg.report;
    out.nonce1 = ctx.nonce1;
    out.quote1 = ReportToCustomer::quoteInput(ctx.vid, ctx.properties,
                                              msg.report, ctx.nonce1);
    out.tcbVersion = msg.tcbVersion; // Unsigned wire-v3 diagnostic.

    // Relays issued within one window share a signature fan-out.
    // One-time replies feed the dedup cache; periodic stream reports
    // share the customer request id and are never cached.
    relayQueue.push_back(
        PendingRelay{std::move(out), ctx.customer, !ctx.periodic});
    if (!relayFlushScheduled) {
        relayFlushScheduled = true;
        events.scheduleAfter(cfg.batchWindow,
                             [this, eraNow = era] {
                                 if (eraNow != era)
                                     return;
                                 flushRelayBatch();
                                 commitJournal();
                             },
                             "cc.relay.flush");
    }

    // nova response: act on a negative report.
    bool bad = false;
    bool rollback = false;
    for (const proto::PropertyResult &pr : msg.report.results) {
        bad |= pr.status == proto::HealthStatus::Compromised;
        rollback |= pr.status == proto::HealthStatus::TcbRollback;
    }
    if (rollback) {
        // Minimum-TCB response (§5): the *host's* firmware is stale,
        // so quarantine it fleet-wide first (it must not be anyone's
        // migration target), then force-migrate the affected VM off
        // it regardless of the customer's per-VM response policy.
        ++counters.tcbRollbackReports;
        quarantineServer(msg.serverId.empty() ? ctx.serverId
                                              : msg.serverId,
                         "tcb rollback attested");
        triggerResponse(ctx.vid, ctx.forwardedAt, "tcb rollback",
                        ctx.properties, /*forceMigrate=*/true);
    } else if (bad) {
        triggerResponse(ctx.vid, ctx.forwardedAt, "negative attestation",
                        ctx.properties);
    }
}

void
CloudController::flushRelayBatch()
{
    relayFlushScheduled = false;
    std::vector<PendingRelay> batch;
    batch.swap(relayQueue);

    // Customer-relay signatures are independent pure compute; each
    // task writes only its own slot.
    sim::WorkerPool::global().parallelFor(
        batch.size(), [&](std::size_t i) {
            batch[i].out.signature =
                crypto::rsaSign(signCtx, batch[i].out.signedPortion());
        });

    // Serial sends in issue order.
    for (PendingRelay &relay : batch) {
        ++counters.reportsRelayed;
        Bytes packed = pack(MessageKind::ReportToCustomer, relay.out);
        const CustomerKey key{relay.customer, relay.out.requestId};
        if (relay.cacheable)
            rememberRelay(key, Bytes(packed));
        else
            customerInFlight.erase(key);
        sendExternal(relay.customer, std::move(packed));
    }
}

void
CloudController::quarantineServer(const std::string &serverId,
                                  const std::string &why)
{
    ServerRecord *srv = db.server(serverId);
    if (!srv || srv->quarantined)
        return;
    srv->quarantined = true;
    ++counters.serversQuarantined;
    journalServer(serverId);
    MONATT_LOG(Warn, "cc") << "quarantining " << serverId << ": " << why;
}

void
CloudController::triggerResponse(
    const std::string &vid, SimTime attestStart, const std::string &why,
    const std::vector<proto::SecurityProperty> &triggerProperties,
    bool forceMigrate)
{
    const auto polIt = policies.find(vid);
    ResponsePolicy policy =
        polIt == policies.end() ? ResponsePolicy::None : polIt->second;
    if (forceMigrate)
        policy = ResponsePolicy::Migrate;
    if (policy == ResponsePolicy::None)
        return;
    if (outstandingResponses.count(vid))
        return; // A response is already in flight for this VM.

    VmRecord *rec = db.vm(vid);
    if (!rec || rec->status != VmStatus::Running)
        return;

    ++counters.responsesTriggered;
    ResponseRecord log;
    log.vid = vid;
    log.action = policy;
    log.attestStart = attestStart;
    log.reportAt = events.now();
    log.detail = why;
    log.triggerProperties = triggerProperties;
    responses.push_back(log);
    const std::size_t logIndex = responses.size() - 1;
    outstandingResponses[vid] = logIndex;
    journalResponse(logIndex);

    proto::VmCommand cmd;
    cmd.vid = vid;
    switch (policy) {
      case ResponsePolicy::Terminate:
        sendExternal(rec->serverId,
                     pack(MessageKind::TerminateVm, cmd));
        break;
      case ResponsePolicy::Suspend:
        rec->status = VmStatus::Suspended;
        journalVm(vid);
        sendExternal(rec->serverId,
                     pack(MessageKind::SuspendVm, cmd));
        break;
      case ResponsePolicy::Migrate:
        executeMigration(vid, logIndex);
        break;
      case ResponsePolicy::None:
        break;
    }
}

void
CloudController::executeMigration(const std::string &vid,
                                  std::size_t logIndex)
{
    VmRecord *rec = db.vm(vid);
    if (!rec)
        return;

    PlacementRequirements req;
    req.ramMb = rec->ramMb;
    req.diskGb = rec->diskGb;
    req.properties = rec->properties;
    const auto candidates = PolicyValidationModule::qualifiedServers(
        db, req, {rec->serverId});
    if (candidates.empty()) {
        // §5.3: no qualified server — the VM must be shut down.
        responses[logIndex].detail += "; no qualified target, terminating";
        responses[logIndex].action = ResponsePolicy::Terminate;
        journalResponse(logIndex);
        proto::VmCommand cmd;
        cmd.vid = vid;
        sendExternal(rec->serverId,
                     pack(MessageKind::TerminateVm, cmd));
        return;
    }

    rec->status = VmStatus::Migrating;
    proto::MigrateOut cmd;
    cmd.vid = vid;
    cmd.targetServer = candidates.front();
    db.allocate(cmd.targetServer, rec->ramMb, rec->diskGb);
    responses[logIndex].targetServer = cmd.targetServer;
    journalVm(vid);
    journalServer(cmd.targetServer);
    journalResponse(logIndex);
    sendExternal(rec->serverId,
                 pack(MessageKind::MigrateOut, cmd));
}

void
CloudController::onCommandAck(MessageKind kind, const Bytes &body)
{
    auto ackR = proto::decodeAs<proto::VmCommandAck>(rxFormat_, body);
    if (!ackR)
        return;
    const proto::VmCommandAck ack = ackR.take();

    const auto it = outstandingResponses.find(ack.vid);
    if (it == outstandingResponses.end())
        return;
    const std::size_t logIndex = it->second;
    ResponseRecord &log = responses[logIndex];
    outstandingResponses.erase(it);

    log.completed = true;
    log.succeeded = ack.ok;
    log.completedAt = events.now();
    journalResponse(logIndex);

    VmRecord *rec = db.vm(ack.vid);
    if (!rec)
        return;

    if (kind == MessageKind::TerminateVmAck && ack.ok) {
        db.release(rec->serverId, rec->ramMb, rec->diskGb);
        rec->status = VmStatus::Terminated;
        journalVm(ack.vid);
        journalServer(rec->serverId);
    } else if (kind == MessageKind::SuspendVmAck && ack.ok) {
        rec->status = VmStatus::Suspended;
        journalVm(ack.vid);
        scheduleSuspendRecheck(ack.vid, logIndex);
    } else if (kind == MessageKind::MigrateOutAck) {
        if (ack.ok) {
            // The source released its copy; the DB moves the VM.
            const std::string oldServer = rec->serverId;
            db.release(oldServer, rec->ramMb, rec->diskGb);
            rec->serverId = log.targetServer;
            rec->status = VmStatus::Running;
            journalVm(ack.vid);
            journalServer(oldServer);
            retargetPeriodicAttestations(ack.vid, oldServer);
        } else {
            // Resumed at the source; release the reserved target.
            db.release(log.targetServer, rec->ramMb, rec->diskGb);
            rec->status = VmStatus::Running;
            journalVm(ack.vid);
            journalServer(log.targetServer);
        }
    }
}

void
CloudController::retargetPeriodicAttestations(const std::string &vid,
                                              const std::string &oldServer)
{
    const VmRecord *rec = db.vm(vid);
    if (!rec)
        return;
    for (auto &[attestId, ctx] : attests) {
        if (!ctx.periodic || ctx.vid != vid)
            continue;

        // Replace the task on the new cluster's attestor. The AS keys
        // periodic tasks by (vid, properties), so re-forwarding with
        // the same mode replaces the stale target when the cluster is
        // unchanged.
        const std::string oldAttestor = ctx.attestorId.empty()
                                            ? attestorFor(oldServer)
                                            : ctx.attestorId;
        ctx.serverId = rec->serverId;
        ctx.attestorId = attestorFor(rec->serverId);
        journalAttest(attestId);

        AttestForward fwd;
        fwd.requestId = attestId;
        fwd.vid = vid;
        fwd.serverId = rec->serverId;
        fwd.properties = ctx.properties;
        fwd.nonce2 = ctx.nonce2;
        fwd.mode = AttestMode::RuntimePeriodic;
        fwd.period = ctx.period;
        sendExternal(
     ctx.attestorId,
     pack(MessageKind::AttestForward, fwd));

        // When the cluster changed, the old attestor still runs the
        // stale task: stop it explicitly.
        if (oldAttestor != ctx.attestorId) {
            AttestForward stop = fwd;
            stop.serverId = oldServer;
            stop.mode = AttestMode::StopPeriodic;
            sendExternal(
         oldAttestor,
         pack(MessageKind::AttestForward, stop));
        }
    }
}

void
CloudController::scheduleSuspendRecheck(const std::string &vid,
                                        std::size_t logIndex)
{
    if (cfg.suspendRecheckPeriod <= 0)
        return;
    events.scheduleAfter(cfg.suspendRecheckPeriod,
                         [this, vid, logIndex, eraNow = era] {
        if (eraNow != era)
            return;
        VmRecord *rec = db.vm(vid);
        if (!rec || rec->status != VmStatus::Suspended ||
            logIndex >= responses.size())
            return;
        AttestContext ctx;
        ctx.kind = AttestKind::SuspendRecheck;
        ctx.vid = vid;
        ctx.properties = responses[logIndex].triggerProperties;
        if (ctx.properties.empty()) {
            ctx.properties = {
                proto::SecurityProperty::RuntimeIntegrity};
        }
        ctx.mode = AttestMode::RuntimeOneTime;
        ctx.customerRequestId = logIndex; // Carries the log index.
        forwardAttestation(std::move(ctx));
        commitJournal();
    }, "cc.suspend.recheck");
}

void
CloudController::handleRecheckReport(const AttestContext &ctx,
                                     const ReportToController &msg)
{
    VmRecord *rec = db.vm(ctx.vid);
    if (!rec || rec->status != VmStatus::Suspended)
        return;
    const std::size_t logIndex = ctx.customerRequestId;

    if (msg.report.allHealthy()) {
        // §5.2 #2: "the controller can resume the VM from the saved
        // state".
        if (logIndex < responses.size()) {
            responses[logIndex].resumedAfterRecheck = true;
            journalResponse(logIndex);
        }
        proto::VmCommand cmd;
        cmd.vid = ctx.vid;
        rec->status = VmStatus::Running;
        journalVm(ctx.vid);
        sendExternal(rec->serverId,
                     pack(MessageKind::ResumeVm, cmd));
        MONATT_LOG(Info, "cc") << ctx.vid
                               << " healthy again; resuming";
    } else {
        // Still unhealthy: keep it suspended, check again later.
        scheduleSuspendRecheck(ctx.vid, logIndex);
    }
}

// --- Durability: serialization ----------------------------------------

Bytes
CloudController::encodeAttestContext(const AttestContext &ctx) const
{
    ByteWriter w;
    w.putU8(static_cast<std::uint8_t>(ctx.kind));
    w.putString(ctx.vid);
    w.putString(ctx.customer);
    w.putU64(ctx.customerRequestId);
    w.putBytes(ctx.nonce1);
    w.putBytes(ctx.nonce2);
    w.putU32(static_cast<std::uint32_t>(ctx.properties.size()));
    for (proto::SecurityProperty p : ctx.properties)
        w.putU8(static_cast<std::uint8_t>(p));
    w.putU8(static_cast<std::uint8_t>(ctx.mode));
    w.putI64(ctx.period);
    w.putI64(ctx.forwardedAt);
    w.putU8(ctx.periodic ? 1 : 0);
    w.putString(ctx.serverId);
    w.putString(ctx.attestorId);
    w.putI64(ctx.retries);
    w.putI64(ctx.failovers);
    w.putU8(ctx.acked ? 1 : 0);
    w.putU8(ctx.recovered ? 1 : 0);
    return w.take();
}

bool
CloudController::decodeAttestContext(const Bytes &data,
                                     AttestContext &out) const
{
    ByteReader r(data);
    auto kind = r.getU8();
    auto vid = r.getString();
    auto customer = r.getString();
    auto requestId = r.getU64();
    auto nonce1 = r.getBytes();
    auto nonce2 = r.getBytes();
    auto propCount = r.getU32();
    if (!kind || !vid || !customer || !requestId || !nonce1 || !nonce2 ||
        !propCount || propCount.value() > 64)
        return false;
    out.properties.clear();
    for (std::uint32_t i = 0; i < propCount.value(); ++i) {
        auto p = r.getU8();
        if (!p)
            return false;
        out.properties.push_back(
            static_cast<proto::SecurityProperty>(p.value()));
    }
    auto mode = r.getU8();
    auto period = r.getI64();
    auto forwardedAt = r.getI64();
    auto periodic = r.getU8();
    auto serverId = r.getString();
    auto attestorId = r.getString();
    auto retries = r.getI64();
    auto failovers = r.getI64();
    auto acked = r.getU8();
    auto recovered = r.getU8();
    if (!mode || !period || !forwardedAt || !periodic || !serverId ||
        !attestorId || !retries || !failovers || !acked || !recovered ||
        !r.atEnd())
        return false;
    out.kind = static_cast<AttestKind>(kind.value());
    out.vid = vid.value();
    out.customer = customer.value();
    out.customerRequestId = requestId.value();
    out.nonce1 = nonce1.value();
    out.nonce2 = nonce2.value();
    out.mode = static_cast<AttestMode>(mode.value());
    out.period = period.value();
    out.forwardedAt = forwardedAt.value();
    out.periodic = periodic.value() != 0;
    out.serverId = serverId.value();
    out.attestorId = attestorId.value();
    out.retries = static_cast<int>(retries.value());
    out.failovers = static_cast<int>(failovers.value());
    out.acked = acked.value() != 0;
    out.recovered = recovered.value() != 0;
    out.retryTimer = 0;
    return true;
}

Bytes
CloudController::encodePendingLaunch(const std::string &vid,
                                     const PendingLaunch &launch) const
{
    ByteWriter w;
    w.putString(vid);
    w.putU64(launch.customerRequestId);
    w.putString(launch.customer);
    w.putU32(static_cast<std::uint32_t>(launch.excludedServers.size()));
    for (const std::string &s : launch.excludedServers)
        w.putString(s);
    return w.take();
}

bool
CloudController::decodePendingLaunch(const Bytes &data, std::string &vid,
                                     PendingLaunch &out) const
{
    ByteReader r(data);
    auto v = r.getString();
    auto requestId = r.getU64();
    auto customer = r.getString();
    auto count = r.getU32();
    if (!v || !requestId || !customer || !count || count.value() > 4096)
        return false;
    out.excludedServers.clear();
    for (std::uint32_t i = 0; i < count.value(); ++i) {
        auto s = r.getString();
        if (!s)
            return false;
        out.excludedServers.insert(s.value());
    }
    if (!r.atEnd())
        return false;
    vid = v.value();
    out.customerRequestId = requestId.value();
    out.customer = customer.value();
    return true;
}

Bytes
CloudController::encodeResponseRecord(const ResponseRecord &rec) const
{
    ByteWriter w;
    w.putString(rec.vid);
    w.putU8(static_cast<std::uint8_t>(rec.action));
    w.putI64(rec.attestStart);
    w.putI64(rec.reportAt);
    w.putI64(rec.completedAt);
    w.putU8(rec.completed ? 1 : 0);
    w.putU8(rec.succeeded ? 1 : 0);
    w.putString(rec.detail);
    w.putString(rec.targetServer);
    w.putU32(static_cast<std::uint32_t>(rec.triggerProperties.size()));
    for (proto::SecurityProperty p : rec.triggerProperties)
        w.putU8(static_cast<std::uint8_t>(p));
    w.putU8(rec.resumedAfterRecheck ? 1 : 0);
    return w.take();
}

bool
CloudController::decodeResponseRecord(const Bytes &data,
                                      ResponseRecord &out) const
{
    ByteReader r(data);
    auto vid = r.getString();
    auto action = r.getU8();
    auto attestStart = r.getI64();
    auto reportAt = r.getI64();
    auto completedAt = r.getI64();
    auto completed = r.getU8();
    auto succeeded = r.getU8();
    auto detail = r.getString();
    auto target = r.getString();
    auto propCount = r.getU32();
    if (!vid || !action || !attestStart || !reportAt || !completedAt ||
        !completed || !succeeded || !detail || !target || !propCount ||
        propCount.value() > 64)
        return false;
    out.triggerProperties.clear();
    for (std::uint32_t i = 0; i < propCount.value(); ++i) {
        auto p = r.getU8();
        if (!p)
            return false;
        out.triggerProperties.push_back(
            static_cast<proto::SecurityProperty>(p.value()));
    }
    auto resumed = r.getU8();
    if (!resumed || !r.atEnd())
        return false;
    out.vid = vid.value();
    out.action = static_cast<ResponsePolicy>(action.value());
    out.attestStart = attestStart.value();
    out.reportAt = reportAt.value();
    out.completedAt = completedAt.value();
    out.completed = completed.value() != 0;
    out.succeeded = succeeded.value() != 0;
    out.detail = detail.value();
    out.targetServer = target.value();
    out.resumedAfterRecheck = resumed.value() != 0;
    return true;
}

// --- Durability: tagged-field serialization ---------------------------
//
// Field numbers are frozen (DESIGN.md §17). Encoders omit members
// equal to their default-constructed value; decoders fill a
// default-constructed struct and skip unknown fields.

namespace
{

Bytes
packedProps(const std::vector<proto::SecurityProperty> &props)
{
    Bytes out;
    for (proto::SecurityProperty p : props)
        wire::appendVarint(out, static_cast<std::uint64_t>(p));
    return out;
}

bool
unpackProps(const Bytes &packed,
            std::vector<proto::SecurityProperty> &out)
{
    wire::WireReader r(packed);
    out.clear();
    while (!r.atEnd()) {
        auto v = r.nextVarint();
        if (!v || out.size() >= 64)
            return false;
        out.push_back(static_cast<proto::SecurityProperty>(v.value()));
    }
    return true;
}

} // namespace

Bytes
CloudController::encodeAttestContextTagged(const AttestContext &ctx) const
{
    wire::WireWriter w;
    if (ctx.kind != AttestKind::CustomerRequest)
        w.putVarint(1, static_cast<std::uint64_t>(ctx.kind));
    if (!ctx.vid.empty())
        w.putString(2, ctx.vid);
    if (!ctx.customer.empty())
        w.putString(3, ctx.customer);
    if (ctx.customerRequestId != 0)
        w.putVarint(4, ctx.customerRequestId);
    if (!ctx.nonce1.empty())
        w.putLen(5, ctx.nonce1);
    if (!ctx.nonce2.empty())
        w.putLen(6, ctx.nonce2);
    if (!ctx.properties.empty())
        w.putLen(7, packedProps(ctx.properties));
    if (ctx.mode != proto::AttestMode::RuntimeOneTime)
        w.putVarint(8, static_cast<std::uint64_t>(ctx.mode));
    if (ctx.period != 0)
        w.putSigned(9, ctx.period);
    if (ctx.forwardedAt != 0)
        w.putSigned(10, ctx.forwardedAt);
    if (ctx.periodic)
        w.putBool(11, true);
    if (!ctx.serverId.empty())
        w.putString(12, ctx.serverId);
    if (!ctx.attestorId.empty())
        w.putString(13, ctx.attestorId);
    if (ctx.retries != 0)
        w.putSigned(14, ctx.retries);
    if (ctx.failovers != 0)
        w.putSigned(15, ctx.failovers);
    if (ctx.acked)
        w.putBool(16, true);
    if (ctx.recovered)
        w.putBool(17, true);
    return w.take();
}

bool
CloudController::decodeAttestContextTagged(const Bytes &data,
                                           AttestContext &out) const
{
    wire::WireReader r(data);
    out = AttestContext{};
    while (!r.atEnd()) {
        auto f = r.next();
        if (!f)
            return false;
        const wire::WireField &fld = f.value();
        switch (fld.number) {
          case 1:
            if (fld.type == wire::WireType::Varint)
                out.kind = static_cast<AttestKind>(fld.varint);
            break;
          case 2:
            if (fld.type == wire::WireType::Len)
                out.vid = fld.asString();
            break;
          case 3:
            if (fld.type == wire::WireType::Len)
                out.customer = fld.asString();
            break;
          case 4:
            if (fld.type == wire::WireType::Varint)
                out.customerRequestId = fld.varint;
            break;
          case 5:
            if (fld.type == wire::WireType::Len)
                out.nonce1 = fld.bytes;
            break;
          case 6:
            if (fld.type == wire::WireType::Len)
                out.nonce2 = fld.bytes;
            break;
          case 7:
            if (fld.type == wire::WireType::Len &&
                !unpackProps(fld.bytes, out.properties))
                return false;
            break;
          case 8:
            if (fld.type == wire::WireType::Varint)
                out.mode = static_cast<proto::AttestMode>(fld.varint);
            break;
          case 9:
            if (fld.type == wire::WireType::Varint)
                out.period = fld.asSigned();
            break;
          case 10:
            if (fld.type == wire::WireType::Varint)
                out.forwardedAt = fld.asSigned();
            break;
          case 11:
            if (fld.type == wire::WireType::Varint)
                out.periodic = fld.asBool();
            break;
          case 12:
            if (fld.type == wire::WireType::Len)
                out.serverId = fld.asString();
            break;
          case 13:
            if (fld.type == wire::WireType::Len)
                out.attestorId = fld.asString();
            break;
          case 14:
            if (fld.type == wire::WireType::Varint)
                out.retries = static_cast<int>(fld.asSigned());
            break;
          case 15:
            if (fld.type == wire::WireType::Varint)
                out.failovers = static_cast<int>(fld.asSigned());
            break;
          case 16:
            if (fld.type == wire::WireType::Varint)
                out.acked = fld.asBool();
            break;
          case 17:
            if (fld.type == wire::WireType::Varint)
                out.recovered = fld.asBool();
            break;
          default:
            break; // Unknown field: skip.
        }
    }
    out.retryTimer = 0;
    return true;
}

Bytes
CloudController::encodePendingLaunchTagged(const std::string &vid,
                                           const PendingLaunch &launch)
    const
{
    wire::WireWriter w;
    if (!vid.empty())
        w.putString(1, vid);
    if (launch.customerRequestId != 0)
        w.putVarint(2, launch.customerRequestId);
    if (!launch.customer.empty())
        w.putString(3, launch.customer);
    for (const std::string &s : launch.excludedServers)
        w.putString(4, s);
    return w.take();
}

bool
CloudController::decodePendingLaunchTagged(const Bytes &data,
                                           std::string &vid,
                                           PendingLaunch &out) const
{
    wire::WireReader r(data);
    vid.clear();
    out = PendingLaunch{};
    while (!r.atEnd()) {
        auto f = r.next();
        if (!f)
            return false;
        const wire::WireField &fld = f.value();
        switch (fld.number) {
          case 1:
            if (fld.type == wire::WireType::Len)
                vid = fld.asString();
            break;
          case 2:
            if (fld.type == wire::WireType::Varint)
                out.customerRequestId = fld.varint;
            break;
          case 3:
            if (fld.type == wire::WireType::Len)
                out.customer = fld.asString();
            break;
          case 4:
            if (fld.type == wire::WireType::Len) {
                if (out.excludedServers.size() >= 4096)
                    return false;
                out.excludedServers.insert(fld.asString());
            }
            break;
          default:
            break; // Unknown field: skip.
        }
    }
    return true;
}

Bytes
CloudController::encodeResponseRecordTagged(const ResponseRecord &rec)
    const
{
    wire::WireWriter w;
    if (!rec.vid.empty())
        w.putString(1, rec.vid);
    if (rec.action != ResponsePolicy::None)
        w.putVarint(2, static_cast<std::uint64_t>(rec.action));
    if (rec.attestStart != 0)
        w.putSigned(3, rec.attestStart);
    if (rec.reportAt != 0)
        w.putSigned(4, rec.reportAt);
    if (rec.completedAt != 0)
        w.putSigned(5, rec.completedAt);
    if (rec.completed)
        w.putBool(6, true);
    if (rec.succeeded)
        w.putBool(7, true);
    if (!rec.detail.empty())
        w.putString(8, rec.detail);
    if (!rec.targetServer.empty())
        w.putString(9, rec.targetServer);
    if (!rec.triggerProperties.empty())
        w.putLen(10, packedProps(rec.triggerProperties));
    if (rec.resumedAfterRecheck)
        w.putBool(11, true);
    return w.take();
}

bool
CloudController::decodeResponseRecordTagged(const Bytes &data,
                                            ResponseRecord &out) const
{
    wire::WireReader r(data);
    out = ResponseRecord{};
    while (!r.atEnd()) {
        auto f = r.next();
        if (!f)
            return false;
        const wire::WireField &fld = f.value();
        switch (fld.number) {
          case 1:
            if (fld.type == wire::WireType::Len)
                out.vid = fld.asString();
            break;
          case 2:
            if (fld.type == wire::WireType::Varint)
                out.action = static_cast<ResponsePolicy>(fld.varint);
            break;
          case 3:
            if (fld.type == wire::WireType::Varint)
                out.attestStart = fld.asSigned();
            break;
          case 4:
            if (fld.type == wire::WireType::Varint)
                out.reportAt = fld.asSigned();
            break;
          case 5:
            if (fld.type == wire::WireType::Varint)
                out.completedAt = fld.asSigned();
            break;
          case 6:
            if (fld.type == wire::WireType::Varint)
                out.completed = fld.asBool();
            break;
          case 7:
            if (fld.type == wire::WireType::Varint)
                out.succeeded = fld.asBool();
            break;
          case 8:
            if (fld.type == wire::WireType::Len)
                out.detail = fld.asString();
            break;
          case 9:
            if (fld.type == wire::WireType::Len)
                out.targetServer = fld.asString();
            break;
          case 10:
            if (fld.type == wire::WireType::Len &&
                !unpackProps(fld.bytes, out.triggerProperties))
                return false;
            break;
          case 11:
            if (fld.type == wire::WireType::Varint)
                out.resumedAfterRecheck = fld.asBool();
            break;
          default:
            break; // Unknown field: skip.
        }
    }
    return true;
}

// --- Durability: WAL helpers ------------------------------------------

void
CloudController::journalMeta()
{
    if (!cfg.durable || replaying)
        return;
    if (taggedJournal()) {
        wire::WireWriter w;
        w.putVarint(1, nextVmNumber);
        w.putVarint(2, nextAttestId);
        store.append(journalTag(JournalType::Meta), w.take());
        return;
    }
    ByteWriter w;
    w.putU64(nextVmNumber);
    w.putU64(nextAttestId);
    store.append(journalTag(JournalType::Meta), w.take());
}

void
CloudController::journalVm(const std::string &vid)
{
    if (!cfg.durable || replaying)
        return;
    const VmRecord *rec = db.vm(vid);
    if (rec) {
        store.append(journalTag(JournalType::VmUpsert),
                     taggedJournal() ? encodeVmRecordTagged(*rec)
                                     : encodeVmRecord(*rec));
    } else if (taggedJournal()) {
        wire::WireWriter w;
        w.putString(1, vid);
        store.append(journalTag(JournalType::VmRemove), w.take());
    } else {
        ByteWriter w;
        w.putString(vid);
        store.append(journalTag(JournalType::VmRemove), w.take());
    }
}

void
CloudController::journalServer(const std::string &serverId)
{
    if (!cfg.durable || replaying)
        return;
    const ServerRecord *rec = db.server(serverId);
    if (!rec)
        return;
    store.append(journalTag(JournalType::ServerUpsert),
                 taggedJournal() ? encodeServerRecordTagged(*rec)
                                 : encodeServerRecord(*rec));
}

void
CloudController::journalPolicy(const std::string &vid)
{
    if (!cfg.durable || replaying)
        return;
    const auto it = policies.find(vid);
    if (it == policies.end())
        return;
    if (taggedJournal()) {
        wire::WireWriter w;
        w.putString(1, vid);
        w.putVarint(2, static_cast<std::uint64_t>(it->second));
        store.append(journalTag(JournalType::PolicySet), w.take());
        return;
    }
    ByteWriter w;
    w.putString(vid);
    w.putU8(static_cast<std::uint8_t>(it->second));
    store.append(journalTag(JournalType::PolicySet), w.take());
}

void
CloudController::journalLaunch(const std::string &vid)
{
    if (!cfg.durable || replaying)
        return;
    const auto it = launches.find(vid);
    if (it != launches.end()) {
        store.append(journalTag(JournalType::LaunchUpsert),
                     taggedJournal()
                         ? encodePendingLaunchTagged(vid, it->second)
                         : encodePendingLaunch(vid, it->second));
    } else if (taggedJournal()) {
        wire::WireWriter w;
        w.putString(1, vid);
        store.append(journalTag(JournalType::LaunchRemove), w.take());
    } else {
        ByteWriter w;
        w.putString(vid);
        store.append(journalTag(JournalType::LaunchRemove), w.take());
    }
}

void
CloudController::journalAttest(std::uint64_t attestId)
{
    if (!cfg.durable || replaying)
        return;
    const auto it = attests.find(attestId);
    if (taggedJournal()) {
        wire::WireWriter w;
        w.putVarint(1, attestId);
        if (it != attests.end()) {
            w.putLen(2, encodeAttestContextTagged(it->second));
            store.append(journalTag(JournalType::AttestUpsert), w.take());
        } else {
            store.append(journalTag(JournalType::AttestRemove), w.take());
        }
        return;
    }
    ByteWriter w;
    w.putU64(attestId);
    if (it != attests.end()) {
        w.putBytes(encodeAttestContext(it->second));
        store.append(journalTag(JournalType::AttestUpsert), w.take());
    } else {
        store.append(journalTag(JournalType::AttestRemove), w.take());
    }
}

void
CloudController::journalResponse(std::size_t index)
{
    if (!cfg.durable || replaying)
        return;
    if (index >= responses.size())
        return;
    if (taggedJournal()) {
        wire::WireWriter w;
        w.putVarint(1, index);
        w.putLen(2, encodeResponseRecordTagged(responses[index]));
        store.append(journalTag(JournalType::ResponseUpsert), w.take());
        return;
    }
    ByteWriter w;
    w.putU64(index);
    w.putBytes(encodeResponseRecord(responses[index]));
    store.append(journalTag(JournalType::ResponseUpsert), w.take());
}

void
CloudController::journalAsHealth(const std::string &attestorId)
{
    if (!cfg.durable || replaying)
        return;
    const auto it = asHealth.find(attestorId);
    const int strikes = it == asHealth.end() ? 0 : it->second.strikes;
    const bool suspect = it != asHealth.end() && it->second.suspect;
    if (taggedJournal()) {
        wire::WireWriter w;
        w.putString(1, attestorId);
        if (strikes != 0)
            w.putSigned(2, strikes);
        if (suspect)
            w.putBool(3, true);
        store.append(journalTag(JournalType::AsHealthSet), w.take());
        return;
    }
    ByteWriter w;
    w.putString(attestorId);
    w.putI64(strikes);
    w.putU8(suspect ? 1 : 0);
    store.append(journalTag(JournalType::AsHealthSet), w.take());
}

void
CloudController::journalRelay(const CustomerKey &key, const Bytes &packed)
{
    if (!cfg.durable || replaying)
        return;
    if (taggedJournal()) {
        wire::WireWriter w;
        w.putString(1, key.first);
        w.putVarint(2, key.second);
        w.putLen(3, packed);
        store.append(journalTag(JournalType::RelayRemember), w.take());
        return;
    }
    ByteWriter w;
    w.putString(key.first);
    w.putU64(key.second);
    w.putBytes(packed);
    store.append(journalTag(JournalType::RelayRemember), w.take());
}

void
CloudController::commitJournal()
{
    if (replaying)
        return;
    if (replicated() && election.role() != ReplicaRole::Leader) {
        // Followers sync their mirror inside onReplicateEntries and
        // must never checkpoint here: their in-memory state is empty,
        // so snapshotState() would wipe the mirrored journal. Any
        // sends a stale code path staged are for a reign this replica
        // no longer holds.
        stagedSends.clear();
        return;
    }
    if (!cfg.durable)
        return;
    if (store.pendingRecords() > 0) {
        store.sync();
        mirrorRound = election.round();
    }
    // Everything staged by this handler is gated on the journal
    // records it just made durable: release only once that LSN is
    // majority-replicated. Unreplicated groups commit immediately.
    const std::uint64_t gateLsn = store.lastDurableLsn();
    for (StagedSend &s : stagedSends)
        outputGate.push_back({gateLsn, std::move(s.peer),
                              std::move(s.packed)});
    stagedSends.clear();
    // Stream before checkpointing so followers receive the tail as
    // records; a checkpoint here would force a snapshot install.
    if (replicated())
        replicateToFollowers();
    if (ckptPolicy.shouldCheckpoint(store, events.now())) {
        store.checkpoint(snapshotState());
        ckptPolicy.noteCheckpoint();
    }
    if (replicated())
        advanceCommit();
}

// --- Durability: snapshot + replay ------------------------------------

Bytes
CloudController::snapshotState() const
{
    ByteWriter w;
    w.putU64(nextVmNumber);
    w.putU64(nextAttestId);

    const auto vmIds = db.vmIds();
    w.putU32(static_cast<std::uint32_t>(vmIds.size()));
    for (const std::string &vid : vmIds)
        w.putBytes(encodeVmRecord(*db.vm(vid)));

    const auto serverIds = db.serverIds();
    w.putU32(static_cast<std::uint32_t>(serverIds.size()));
    for (const std::string &id : serverIds)
        w.putBytes(encodeServerRecord(*db.server(id)));

    w.putU32(static_cast<std::uint32_t>(policies.size()));
    for (const auto &[vid, policy] : policies) {
        w.putString(vid);
        w.putU8(static_cast<std::uint8_t>(policy));
    }

    w.putU32(static_cast<std::uint32_t>(launches.size()));
    for (const auto &[vid, launch] : launches)
        w.putBytes(encodePendingLaunch(vid, launch));

    w.putU32(static_cast<std::uint32_t>(attests.size()));
    for (const auto &[attestId, ctx] : attests) {
        w.putU64(attestId);
        w.putBytes(encodeAttestContext(ctx));
    }

    w.putU32(static_cast<std::uint32_t>(responses.size()));
    for (const ResponseRecord &rec : responses)
        w.putBytes(encodeResponseRecord(rec));

    w.putU32(static_cast<std::uint32_t>(asHealth.size()));
    for (const auto &[id, health] : asHealth) {
        w.putString(id);
        w.putI64(health.strikes);
        w.putU8(health.suspect ? 1 : 0);
    }

    // Relay cache in FIFO order so replay reproduces eviction order.
    w.putU32(static_cast<std::uint32_t>(relayOrder.size()));
    for (const CustomerKey &key : relayOrder) {
        w.putString(key.first);
        w.putU64(key.second);
        w.putBytes(relayCache.at(key));
    }
    return w.take();
}

void
CloudController::applySnapshot(const Bytes &snapshot)
{
    ByteReader r(snapshot);
    auto vmNumber = r.getU64();
    auto attestNumber = r.getU64();
    if (!vmNumber || !attestNumber)
        return;
    nextVmNumber = vmNumber.value();
    nextAttestId = attestNumber.value();

    auto vmCount = r.getU32();
    for (std::uint32_t i = 0; vmCount && i < vmCount.value(); ++i) {
        auto blob = r.getBytes();
        if (!blob)
            return;
        auto rec = decodeVmRecord(blob.value());
        if (rec)
            db.addVm(rec.take());
    }

    auto serverCount = r.getU32();
    for (std::uint32_t i = 0; serverCount && i < serverCount.value();
         ++i) {
        auto blob = r.getBytes();
        if (!blob)
            return;
        auto rec = decodeServerRecord(blob.value());
        if (rec)
            db.addServer(rec.take());
    }

    auto policyCount = r.getU32();
    for (std::uint32_t i = 0; policyCount && i < policyCount.value();
         ++i) {
        auto vid = r.getString();
        auto policy = r.getU8();
        if (!vid || !policy)
            return;
        policies[vid.value()] =
            static_cast<ResponsePolicy>(policy.value());
    }

    auto launchCount = r.getU32();
    for (std::uint32_t i = 0; launchCount && i < launchCount.value();
         ++i) {
        auto blob = r.getBytes();
        if (!blob)
            return;
        std::string vid;
        PendingLaunch launch;
        if (decodePendingLaunch(blob.value(), vid, launch))
            launches[vid] = std::move(launch);
    }

    auto attestCount = r.getU32();
    for (std::uint32_t i = 0; attestCount && i < attestCount.value();
         ++i) {
        auto attestId = r.getU64();
        auto blob = r.getBytes();
        if (!attestId || !blob)
            return;
        AttestContext ctx;
        if (decodeAttestContext(blob.value(), ctx))
            attests[attestId.value()] = std::move(ctx);
    }

    auto responseCount = r.getU32();
    for (std::uint32_t i = 0; responseCount && i < responseCount.value();
         ++i) {
        auto blob = r.getBytes();
        if (!blob)
            return;
        ResponseRecord rec;
        if (decodeResponseRecord(blob.value(), rec))
            responses.push_back(std::move(rec));
    }

    auto healthCount = r.getU32();
    for (std::uint32_t i = 0; healthCount && i < healthCount.value();
         ++i) {
        auto id = r.getString();
        auto strikes = r.getI64();
        auto suspect = r.getU8();
        if (!id || !strikes || !suspect)
            return;
        asHealth[id.value()] =
            AsHealth{static_cast<int>(strikes.value()),
                     suspect.value() != 0};
    }

    auto relayCount = r.getU32();
    for (std::uint32_t i = 0; relayCount && i < relayCount.value(); ++i) {
        auto customer = r.getString();
        auto requestId = r.getU64();
        auto packed = r.getBytes();
        if (!customer || !requestId || !packed)
            return;
        const CustomerKey key{customer.value(), requestId.value()};
        if (relayCache.emplace(key, packed.take()).second)
            relayOrder.push_back(key);
    }
}

namespace
{

/**
 * Generic parse of a small tagged journal payload: one optional string
 * (LEN) and up to three varints, keyed by field number. Returns false
 * on malformed bytes; absent fields keep their defaults.
 */
struct TaggedScalars
{
    std::string str;        //!< First LEN field (the id / vid / name).
    Bytes blob;             //!< Second LEN field (an embedded payload).
    std::uint64_t v[4] = {0, 0, 0, 0}; //!< Varints by field number - 1.
    bool seen[4] = {false, false, false, false};
};

bool
parseTaggedScalars(const Bytes &payload, std::uint32_t strField,
                   std::uint32_t blobField, TaggedScalars &out)
{
    wire::WireReader r(payload);
    while (!r.atEnd()) {
        auto f = r.next();
        if (!f)
            return false;
        const wire::WireField &fld = f.value();
        if (fld.number == strField &&
            fld.type == wire::WireType::Len) {
            out.str = fld.asString();
        } else if (fld.number == blobField &&
                   fld.type == wire::WireType::Len) {
            out.blob = fld.bytes;
        } else if (fld.number >= 1 && fld.number <= 4 &&
                   fld.type == wire::WireType::Varint) {
            out.v[fld.number - 1] = fld.varint;
            out.seen[fld.number - 1] = true;
        }
        // Anything else: unknown field, skip.
    }
    return true;
}

} // namespace

void
CloudController::applyJournalRecord(const sim::JournalRecord &rec)
{
    // The type word carries the payload's own format (set by whichever
    // node wrote the record — this one pre-upgrade, or the leader that
    // streamed it), so replay is independent of cfg.wire.
    const bool tagged = (rec.type & proto::kTaggedJournalBit) != 0;
    const auto type = static_cast<JournalType>(
        rec.type & ~proto::kTaggedJournalBit);
    ByteReader r(rec.payload);
    switch (type) {
      case JournalType::Meta: {
        if (tagged) {
            TaggedScalars s;
            if (parseTaggedScalars(rec.payload, 0, 0, s) && s.seen[0] &&
                s.seen[1]) {
                nextVmNumber = s.v[0];
                nextAttestId = s.v[1];
            }
            break;
        }
        auto vmNumber = r.getU64();
        auto attestNumber = r.getU64();
        if (vmNumber && attestNumber) {
            nextVmNumber = vmNumber.value();
            nextAttestId = attestNumber.value();
        }
        break;
      }
      case JournalType::VmUpsert: {
        auto decoded = tagged ? decodeVmRecordTagged(rec.payload)
                              : decodeVmRecord(rec.payload);
        if (decoded)
            db.addVm(decoded.take());
        break;
      }
      case JournalType::VmRemove: {
        if (tagged) {
            TaggedScalars s;
            if (parseTaggedScalars(rec.payload, 1, 0, s))
                db.removeVm(s.str);
            break;
        }
        auto vid = r.getString();
        if (vid)
            db.removeVm(vid.value());
        break;
      }
      case JournalType::ServerUpsert: {
        auto decoded = tagged ? decodeServerRecordTagged(rec.payload)
                              : decodeServerRecord(rec.payload);
        if (decoded)
            db.addServer(decoded.take());
        break;
      }
      case JournalType::PolicySet: {
        if (tagged) {
            TaggedScalars s;
            if (parseTaggedScalars(rec.payload, 1, 0, s))
                policies[s.str] = static_cast<ResponsePolicy>(s.v[1]);
            break;
        }
        auto vid = r.getString();
        auto policy = r.getU8();
        if (vid && policy)
            policies[vid.value()] =
                static_cast<ResponsePolicy>(policy.value());
        break;
      }
      case JournalType::LaunchUpsert: {
        std::string vid;
        PendingLaunch launch;
        const bool ok =
            tagged ? decodePendingLaunchTagged(rec.payload, vid, launch)
                   : decodePendingLaunch(rec.payload, vid, launch);
        if (ok)
            launches[vid] = std::move(launch);
        break;
      }
      case JournalType::LaunchRemove: {
        if (tagged) {
            TaggedScalars s;
            if (parseTaggedScalars(rec.payload, 1, 0, s))
                launches.erase(s.str);
            break;
        }
        auto vid = r.getString();
        if (vid)
            launches.erase(vid.value());
        break;
      }
      case JournalType::AttestUpsert: {
        if (tagged) {
            TaggedScalars s;
            if (!parseTaggedScalars(rec.payload, 0, 2, s) || !s.seen[0])
                break;
            AttestContext ctx;
            if (decodeAttestContextTagged(s.blob, ctx))
                attests[s.v[0]] = std::move(ctx);
            break;
        }
        auto attestId = r.getU64();
        auto blob = r.getBytes();
        if (!attestId || !blob)
            break;
        AttestContext ctx;
        if (decodeAttestContext(blob.value(), ctx))
            attests[attestId.value()] = std::move(ctx);
        break;
      }
      case JournalType::AttestRemove: {
        if (tagged) {
            TaggedScalars s;
            if (parseTaggedScalars(rec.payload, 0, 0, s) && s.seen[0])
                attests.erase(s.v[0]);
            break;
        }
        auto attestId = r.getU64();
        if (attestId)
            attests.erase(attestId.value());
        break;
      }
      case JournalType::ResponseUpsert: {
        std::uint64_t index = 0;
        ResponseRecord decoded;
        if (tagged) {
            TaggedScalars s;
            if (!parseTaggedScalars(rec.payload, 0, 2, s) || !s.seen[0])
                break;
            if (!decodeResponseRecordTagged(s.blob, decoded))
                break;
            index = s.v[0];
        } else {
            auto idx = r.getU64();
            auto blob = r.getBytes();
            if (!idx || !blob)
                break;
            if (!decodeResponseRecord(blob.value(), decoded))
                break;
            index = idx.value();
        }
        if (index >= responses.size())
            responses.resize(index + 1);
        responses[index] = std::move(decoded);
        break;
      }
      case JournalType::AsHealthSet: {
        if (tagged) {
            TaggedScalars s;
            if (parseTaggedScalars(rec.payload, 1, 0, s))
                asHealth[s.str] = AsHealth{
                    static_cast<int>(wire::zigzagDecode(s.v[1])),
                    s.v[2] != 0};
            break;
        }
        auto id = r.getString();
        auto strikes = r.getI64();
        auto suspect = r.getU8();
        if (id && strikes && suspect)
            asHealth[id.value()] =
                AsHealth{static_cast<int>(strikes.value()),
                         suspect.value() != 0};
        break;
      }
      case JournalType::RelayRemember: {
        std::string customer;
        std::uint64_t requestId = 0;
        Bytes packed;
        if (tagged) {
            TaggedScalars s;
            if (!parseTaggedScalars(rec.payload, 1, 3, s))
                break;
            customer = std::move(s.str);
            requestId = s.v[1];
            packed = std::move(s.blob);
        } else {
            auto cust = r.getString();
            auto reqId = r.getU64();
            auto blob = r.getBytes();
            if (!cust || !reqId || !blob)
                break;
            customer = cust.take();
            requestId = reqId.value();
            packed = blob.take();
        }
        const CustomerKey key{std::move(customer), requestId};
        if (relayCache.emplace(key, std::move(packed)).second) {
            relayOrder.push_back(key);
            while (relayOrder.size() > cfg.relayCacheCapacity) {
                relayCache.erase(relayOrder.front());
                relayOrder.pop_front();
            }
        }
        break;
      }
    }
}

// --- Durability: crash / restart / recovery ---------------------------

void
CloudController::crash()
{
    if (!endpoint.attached())
        return;
    MONATT_LOG(Info, "cc") << cfg.id << ": crash";
    ++era;
    endpoint.detach();
    for (auto &[attestId, ctx] : attests) {
        if (ctx.retryTimer != 0)
            events.cancel(ctx.retryTimer);
    }
    if (heartbeatTimer != 0) {
        events.cancel(heartbeatTimer);
        heartbeatTimer = 0;
    }
    if (electionTimer != 0) {
        events.cancel(electionTimer);
        electionTimer = 0;
    }
    stagedSends.clear();
    outputGate.clear();
    commitLsn_ = 0;
    lastStreamedLsn = 0;
    followerSilence.clear();
    lastLeaderContact = 0;
    if (replicated())
        election.resetToFollower();
    // The un-fsynced journal tail is the page cache: lost.
    store.crash();
    // Volatile and recoverable in-memory state dies. Operator
    // provisioning (flavors, clusters, server inventory rows) survives
    // like files on disk; allocation counters are restored from the
    // journal during recovery.
    for (const std::string &vid : db.vmIds())
        db.removeVm(vid);
    launches.clear();
    attests.clear();
    policies.clear();
    responses.clear();
    outstandingResponses.clear();
    reportQueue.clear();
    reportFlushScheduled = false;
    relayQueue.clear();
    relayFlushScheduled = false;
    asHealth.clear();
    customerInFlight.clear();
    relayCache.clear();
    relayOrder.clear();
    attestorRtt.clear();
    nextVmNumber = 1;
    nextAttestId = 1;
    busyUntil = 0;
}

void
CloudController::restart()
{
    if (endpoint.attached())
        return;
    MONATT_LOG(Info, "cc") << cfg.id << ": restart";
    endpoint.attach();
    if (replicated()) {
        // Verify the mirror before rejoining: the outage may have
        // torn or rotted the journal. Healing truncates the bad
        // suffix, so the next ack to the leader reports the verified
        // horizon and the leader re-streams the damaged range through
        // the normal replication path (snapshot install if the
        // mirror's own snapshot seal failed).
        if (cfg.durable) {
            const auto healed = store.verifyDurable();
            if (!healed.clean()) {
                ++counters.corruptRecoveries;
                MONATT_LOG(Info, "cc")
                    << cfg.id << ": mirror verification quarantined "
                    << healed.quarantinedRecords << " and truncated "
                    << healed.truncatedRecords
                    << " records; resyncing from leader at lsn "
                    << store.lastDurableLsn();
            }
        }
        // Rejoin as a follower: the mirror resynchronizes from the
        // current leader's stream (snapshot install if we fell behind
        // its checkpoint); promotion back to leader only via election.
        election.resetToFollower();
        ledger.reset(followerIds());
        armElectionTimer();
        return;
    }
    if (cfg.durable)
        recover();
}

void
CloudController::recover()
{
    ++counters.recoveries;
    replaying = true;
    auto image = store.replay();
    if (!image.clean) {
        // The disk came back damaged: replay healed it down to the
        // longest verified prefix. Whatever acknowledged state sat in
        // the dropped suffix is re-driven by customer retransmission
        // and the re-arm paths below, never silently replayed.
        ++counters.corruptRecoveries;
        MONATT_LOG(Info, "cc")
            << cfg.id << ": replay quarantined "
            << image.quarantinedRecords << " and truncated "
            << image.truncatedRecords << " corrupt journal records"
            << (image.snapshotQuarantined ? " (snapshot seal failed)"
                                          : "");
    }
    if (image.hasSnapshot)
        applySnapshot(image.snapshot);
    for (const sim::JournalRecord &rec : image.records)
        applyJournalRecord(rec);
    replaying = false;

    rearmRecoveredWork();

    // Recovery doubles as a checkpoint: the recovered (and re-armed)
    // state becomes the new snapshot and the journal restarts empty.
    store.checkpoint(snapshotState());
    ckptPolicy.noteCheckpoint();
    MONATT_LOG(Info, "cc")
        << cfg.id << ": recovered " << db.vmIds().size() << " vms, "
        << attests.size() << " in-flight attestations, "
        << launches.size() << " pending launches";
}

void
CloudController::rearmRecoveredWork()
{
    // Rebuild the derived in-flight marks from live customer requests.
    for (const auto &[attestId, ctx] : attests) {
        if (ctx.kind == AttestKind::CustomerRequest &&
            ctx.mode != AttestMode::StopPeriodic)
            customerInFlight.insert(
                CustomerKey{ctx.customer, ctx.customerRequestId});
    }

    // Incomplete remediation responses: the command (or its ack) may
    // have been lost in the outage — re-issue it. The server-side
    // handlers are idempotent, so a duplicate command just re-acks.
    for (std::size_t i = 0; i < responses.size(); ++i) {
        if (responses[i].completed)
            continue;
        outstandingResponses[responses[i].vid] = i;
        resendResponseCommand(i);
    }

    // Re-arm every in-flight attestation: re-send the forward rebuilt
    // from the journaled context (same nonce2, so a late pre-crash
    // reply still binds) with a fresh retry budget.
    for (auto &[attestId, ctx] : attests) {
        ctx.retryTimer = 0;
        if (ctx.mode == AttestMode::StopPeriodic) {
            // Fire-and-forget: repeat the stop, which is idempotent.
            transmitForward(attestId);
            continue;
        }
        ++counters.recoveredAttests;
        ctx.retries = 0;
        ctx.recovered = true;
        journalAttest(attestId);
        transmitForward(attestId);
        if (cfg.reliability.enabled && !ctx.acked)
            scheduleForwardRetry(attestId);
    }

    // Re-drive interrupted launches.
    std::vector<std::string> launchVids;
    launchVids.reserve(launches.size());
    for (const auto &[vid, launch] : launches)
        launchVids.push_back(vid);
    for (const std::string &vid : launchVids) {
        VmRecord *rec = db.vm(vid);
        if (!rec)
            continue;
        switch (rec->status) {
          case VmStatus::Scheduling:
          case VmStatus::Networking:
          case VmStatus::Mapping: {
            // Pre-spawn stages are controller-local: restart the
            // pipeline from scheduling (releasing a half-made
            // placement first).
            if (!rec->serverId.empty()) {
                db.release(rec->serverId, rec->ramMb, rec->diskGb);
                journalServer(rec->serverId);
                rec->serverId.clear();
            }
            ++counters.recoveredLaunches;
            runSchedulingStage(vid);
            break;
          }
          case VmStatus::Spawning: {
            // The LaunchVm command is with the server; its ack may
            // arrive normally, or may have been lost in the outage.
            // Give the spawn its full modeled duration (plus a retry
            // budget's slack) and terminally fail the launch if no
            // ack landed by then.
            const SimTime grace =
                cfg.timing.spawnTime(rec->imageSizeMb, rec->ramMb) +
                cfg.reliability.forwardRto;
            ++counters.recoveredLaunches;
            events.scheduleAfter(grace, [this, vid, eraNow = era] {
                if (eraNow != era)
                    return;
                VmRecord *rec = db.vm(vid);
                if (!rec || rec->status != VmStatus::Spawning ||
                    !launches.count(vid))
                    return;
                proto::VmCommand cmd;
                cmd.vid = vid;
                sendExternal(
             rec->serverId,
             pack(MessageKind::TerminateVm, cmd));
                db.release(rec->serverId, rec->ramMb, rec->diskGb);
                journalServer(rec->serverId);
                finishLaunch(vid, false,
                             "launch ack lost across controller restart");
                commitJournal();
            }, "cc.spawn.recover");
            break;
          }
          case VmStatus::Attesting: {
            // Only restart the attestation when no journaled context
            // survived (e.g. the report was verified and the context
            // retired, but the launch decision died with the crash).
            bool haveCtx = false;
            for (const auto &[attestId, ctx] : attests)
                haveCtx |= ctx.kind == AttestKind::StartupLaunch &&
                           ctx.vid == vid;
            if (!haveCtx) {
                ++counters.recoveredLaunches;
                startStartupAttestation(vid);
            }
            break;
          }
          default:
            break;
        }
    }

    // Suspended VMs with neither a pending suspend command nor a live
    // recheck attestation: re-arm the periodic recheck.
    for (const std::string &vid : db.vmIds()) {
        const VmRecord *rec = db.vm(vid);
        if (!rec || rec->status != VmStatus::Suspended ||
            outstandingResponses.count(vid))
            continue;
        bool haveRecheck = false;
        for (const auto &[attestId, ctx] : attests)
            haveRecheck |= ctx.kind == AttestKind::SuspendRecheck &&
                           ctx.vid == vid;
        if (haveRecheck)
            continue;
        for (std::size_t i = responses.size(); i-- > 0;) {
            if (responses[i].vid == vid &&
                responses[i].action == ResponsePolicy::Suspend &&
                responses[i].completed && responses[i].succeeded) {
                scheduleSuspendRecheck(vid, i);
                break;
            }
        }
    }
}

void
CloudController::resendResponseCommand(std::size_t logIndex)
{
    const ResponseRecord &log = responses[logIndex];
    const VmRecord *rec = db.vm(log.vid);
    if (!rec || rec->serverId.empty())
        return;
    switch (log.action) {
      case ResponsePolicy::Terminate: {
        proto::VmCommand cmd;
        cmd.vid = log.vid;
        sendExternal(rec->serverId,
                     pack(MessageKind::TerminateVm, cmd));
        break;
      }
      case ResponsePolicy::Suspend: {
        proto::VmCommand cmd;
        cmd.vid = log.vid;
        sendExternal(rec->serverId,
                     pack(MessageKind::SuspendVm, cmd));
        break;
      }
      case ResponsePolicy::Migrate: {
        if (log.targetServer.empty())
            break;
        proto::MigrateOut cmd;
        cmd.vid = log.vid;
        cmd.targetServer = log.targetServer;
        sendExternal(rec->serverId,
                     pack(MessageKind::MigrateOut, cmd));
        break;
      }
      case ResponsePolicy::None:
        break;
    }
}

// --- Replication + leader election ------------------------------------
//
// Control-plane traffic (ReplicateEntries/Ack, Vote*, NotLeader) goes
// out through endpoint.sendSecure directly: it must flow even while
// the externally visible output of the current handler is still gated
// on majority durability.

void
CloudController::sendExternal(const net::NodeId &peer, Bytes packed)
{
    if (!replicated()) {
        endpoint.sendSecure(peer, std::move(packed));
        return;
    }
    if (election.role() != ReplicaRole::Leader)
        return;
    // Stage until commitJournal tags the send with the LSN of the
    // records this handler produced; released once majority-durable.
    stagedSends.push_back({peer, std::move(packed)});
}

bool
CloudController::isGroupMember(const net::NodeId &node) const
{
    for (const std::string &id : cfg.groupIds) {
        if (id == node)
            return true;
    }
    return false;
}

std::vector<std::string>
CloudController::followerIds() const
{
    std::vector<std::string> out;
    for (const std::string &id : cfg.groupIds) {
        if (id != cfg.id)
            out.push_back(id);
    }
    return out;
}

void
CloudController::sendNotLeader(const net::NodeId &customer,
                               std::uint64_t requestId, bool isLaunch)
{
    proto::NotLeader redirect;
    redirect.requestId = requestId;
    redirect.isLaunch = isLaunch;
    // Only hint at a *different* replica; an empty hint tells the
    // customer to fall back to its retransmission rotation.
    redirect.leaderId = knownLeader == cfg.id ? "" : knownLeader;
    redirect.round = election.round();
    endpoint.sendSecure(customer,
                        pack(MessageKind::NotLeader, redirect));
}

void
CloudController::streamToFollower(const net::NodeId &follower)
{
    proto::ReplicateEntries msg;
    msg.round = election.round();
    msg.leaderId = cfg.id;
    msg.commitLsn = commitLsn_;
    std::uint64_t from = ledger.ackOf(follower);
    if (from < store.snapshotLsn()) {
        // The follower is behind our last checkpoint: the records it
        // misses no longer exist as records, ship the snapshot.
        msg.hasSnapshot = true;
        msg.snapshot = store.snapshotBytes();
        msg.snapshotLsn = store.snapshotLsn();
        from = msg.snapshotLsn;
    }
    msg.prevLsn = from;
    store.forEachDurableSince(from, [&msg](const sim::JournalRecord &rec) {
        msg.records.push_back({rec.lsn, rec.type, rec.payload});
    });
    endpoint.sendSecure(follower,
                        pack(MessageKind::ReplicateEntries, msg));
}

void
CloudController::replicateToFollowers()
{
    if (election.role() != ReplicaRole::Leader)
        return;
    if (store.lastDurableLsn() <= lastStreamedLsn)
        return;
    for (const std::string &follower : followerIds())
        streamToFollower(follower);
    lastStreamedLsn = store.lastDurableLsn();
}

void
CloudController::advanceCommit()
{
    const std::uint64_t c =
        ledger.commitLsn(store.lastDurableLsn(), election.groupSize());
    if (c > commitLsn_)
        commitLsn_ = c;
    releaseCommitted();
}

void
CloudController::releaseCommitted()
{
    while (!outputGate.empty() &&
           outputGate.front().lsn <= commitLsn_) {
        GatedSend send = std::move(outputGate.front());
        outputGate.pop_front();
        endpoint.sendSecure(send.peer, std::move(send.packed));
    }
}

void
CloudController::onReplicateEntries(const net::NodeId &from,
                                    const Bytes &body)
{
    if (!replicated() || !isGroupMember(from))
        return;
    auto decoded = proto::decodeAs<proto::ReplicateEntries>(rxFormat_, body);
    if (!decoded)
        return;
    const proto::ReplicateEntries &msg = decoded.value();
    if (msg.leaderId != from || msg.round < election.round())
        return;
    lastLeaderContact = events.now();

    const bool wasLeader = election.role() == ReplicaRole::Leader;
    if (election.observeLeader(msg.leaderId, msg.round) && wasLeader) {
        // Deposed by a higher-round leader: fence our reign's timers
        // and drop state we no longer own.
        stepDownToFollower();
    }
    knownLeader = msg.leaderId;
    armElectionTimer();

    if (msg.hasSnapshot &&
        (msg.round > mirrorRound ||
         msg.snapshotLsn > store.lastDurableLsn())) {
        store.installSnapshot(msg.snapshot, msg.snapshotLsn);
    } else if (!msg.hasSnapshot && msg.round > mirrorRound &&
               store.lastDurableLsn() > msg.prevLsn) {
        // A new leader's log is authoritative: drop any suffix the old
        // leader streamed to us but never got committed.
        store.truncateTo(msg.prevLsn);
    }

    // Adopt the contiguous prefix of the streamed tail in one batch.
    // (Tracking the expected LSN locally matters: adopted records sit
    // in the buffered tail until the sync below, so re-reading
    // lastDurableLsn() mid-loop would stall adoption at one record
    // per stream message.)
    std::vector<sim::JournalRecord> adopted;
    std::uint64_t next = store.lastDurableLsn() + 1;
    for (const proto::ReplicatedRecord &rec : msg.records) {
        if (rec.lsn < next)
            continue; // duplicate from a retransmission
        if (rec.lsn > next)
            break; // gap: wait for the leader's next (re)stream
        adopted.push_back({rec.lsn, rec.type, rec.payload});
        ++next;
    }
    store.adoptMany(std::move(adopted));
    if (store.pendingRecords() > 0)
        store.sync();
    mirrorRound = msg.round;
    if (msg.commitLsn > commitLsn_)
        commitLsn_ = std::min(msg.commitLsn, store.lastDurableLsn());

    proto::ReplicateAck ack;
    ack.round = msg.round;
    ack.lastLsn = store.lastDurableLsn();
    endpoint.sendSecure(from,
                        pack(MessageKind::ReplicateAck, ack));
}

void
CloudController::onReplicateAck(const net::NodeId &from,
                                const Bytes &body)
{
    if (!replicated() || !isGroupMember(from))
        return;
    auto decoded = proto::decodeAs<proto::ReplicateAck>(rxFormat_, body);
    if (!decoded)
        return;
    followerSilence[from] = 0;
    const proto::ReplicateAck &msg = decoded.value();
    if (election.role() != ReplicaRole::Leader ||
        msg.round != election.round())
        return;
    ledger.recordAck(from, msg.lastLsn);
    if (msg.lastLsn < store.lastDurableLsn())
        streamToFollower(from);
    advanceCommit();
}

void
CloudController::onVoteRequest(const net::NodeId &from, const Bytes &body)
{
    if (!replicated() || !isGroupMember(from))
        return;
    auto decoded = proto::decodeAs<proto::VoteRequest>(rxFormat_, body);
    if (!decoded)
        return;
    const proto::VoteRequest &msg = decoded.value();
    if (msg.prevote) {
        // A probe costs nothing to deny. Deny while the group
        // demonstrably has a leader — we are it, or we heard from it
        // within the minimum election timeout — so only a majority
        // that genuinely lost its leader can open an election.
        if (election.role() == ReplicaRole::Leader)
            return;
        if (lastLeaderContact != 0 &&
            events.now() - lastLeaderContact <
                cfg.election.electionTimeoutMin)
            return;
        if (!election.considerPrevote(msg.round, msg.lastLogRound,
                                      msg.lastLsn, mirrorRound,
                                      store.lastDurableLsn()))
            return;
        endpoint.resetPeer(from);
        proto::VoteGrant grant;
        grant.round = msg.round;
        grant.prevote = true;
        endpoint.sendSecure(from,
                            pack(MessageKind::VoteGrant, grant));
        return;
    }
    const bool wasLeader = election.role() == ReplicaRole::Leader;
    const bool granted =
        election.considerVote(msg.round, msg.lastLogRound, msg.lastLsn,
                              mirrorRound, store.lastDurableLsn());
    if (wasLeader && election.role() != ReplicaRole::Leader)
        stepDownToFollower();
    if (!granted)
        return;
    knownLeader.clear();
    armElectionTimer();
    // The candidate may have restarted since we last talked to it, in
    // which case it cannot open records sealed under the old session;
    // elections are rare enough to afford a fresh handshake per grant.
    endpoint.resetPeer(from);
    proto::VoteGrant grant;
    grant.round = msg.round;
    endpoint.sendSecure(from,
                        pack(MessageKind::VoteGrant, grant));
}

void
CloudController::onVoteGrant(const net::NodeId &from, const Bytes &body)
{
    if (!replicated() || !isGroupMember(from))
        return;
    auto decoded = proto::decodeAs<proto::VoteGrant>(rxFormat_, body);
    if (!decoded)
        return;
    const proto::VoteGrant &msg = decoded.value();
    if (msg.prevote) {
        if (election.role() == ReplicaRole::Leader ||
            msg.round != election.round() + 1)
            return;
        if (election.recordPrevote(from))
            openCandidacy();
        return;
    }
    if (election.recordVote(from, msg.round))
        becomeLeader();
}

void
CloudController::becomeLeader()
{
    MONATT_LOG(Info, "cc")
        << cfg.id << ": elected leader of " << groupId() << " in round "
        << election.round();
    if (electionTimer != 0) {
        events.cancel(electionTimer);
        electionTimer = 0;
    }
    knownLeader = cfg.id;
    commitLsn_ = 0;
    outputGate.clear();
    stagedSends.clear();
    ledger.reset(followerIds());
    followerSilence.clear();
    // Replay the mirrored journal into live state; rearmRecoveredWork
    // re-drives in-flight launches/attests, whose (re)sends are staged
    // and released once a majority mirrors the recovery checkpoint.
    recover();
    mirrorRound = election.round();
    lastStreamedLsn = store.lastDurableLsn();
    commitJournal();
    for (const std::string &follower : followerIds())
        streamToFollower(follower);
    armHeartbeat();
}

void
CloudController::stepDownToFollower()
{
    MONATT_LOG(Info, "cc")
        << cfg.id << ": stepping down to follower in round "
        << election.round();
    // Fence every lambda armed during the deposed reign.
    ++era;
    if (heartbeatTimer != 0) {
        events.cancel(heartbeatTimer);
        heartbeatTimer = 0;
    }
    if (electionTimer != 0) {
        events.cancel(electionTimer);
        electionTimer = 0;
    }
    for (auto &[attestId, ctx] : attests) {
        if (ctx.retryTimer != 0)
            events.cancel(ctx.retryTimer);
    }
    // Live state belongs to the leader now; this replica keeps only
    // its journal mirror. Operator provisioning survives, as in
    // crash().
    for (const std::string &vid : db.vmIds())
        db.removeVm(vid);
    launches.clear();
    attests.clear();
    policies.clear();
    responses.clear();
    outstandingResponses.clear();
    reportQueue.clear();
    reportFlushScheduled = false;
    relayQueue.clear();
    relayFlushScheduled = false;
    asHealth.clear();
    customerInFlight.clear();
    relayCache.clear();
    relayOrder.clear();
    attestorRtt.clear();
    nextVmNumber = 1;
    nextAttestId = 1;
    busyUntil = 0;
    stagedSends.clear();
    outputGate.clear();
    commitLsn_ = 0;
    lastStreamedLsn = 0;
    followerSilence.clear();
    armElectionTimer();
}

void
CloudController::armHeartbeat()
{
    if (heartbeatTimer != 0)
        events.cancel(heartbeatTimer);
    heartbeatTimer = events.scheduleAfter(
        cfg.election.heartbeatInterval,
        [this, eraNow = era] {
            if (eraNow != era)
                return;
            heartbeatFired();
        },
        "cc.heartbeat");
}

void
CloudController::armElectionTimer()
{
    if (electionTimer != 0)
        events.cancel(electionTimer);
    electionTimer = events.scheduleAfter(
        election.electionTimeout(),
        [this, eraNow = era] {
            if (eraNow != era)
                return;
            electionTimerFired();
        },
        "cc.election");
}

void
CloudController::heartbeatFired()
{
    heartbeatTimer = 0;
    if (!replicated() || election.role() != ReplicaRole::Leader ||
        !endpoint.attached())
        return;
    // The heartbeat doubles as retransmission: each follower gets the
    // suffix past its last ack (or a snapshot), and its re-ack repairs
    // any cursor state lost to the network.
    for (const std::string &follower : followerIds()) {
        if (++followerSilence[follower] >= kSilentBeatLimit) {
            // No ack for several beats: the follower likely restarted
            // and cannot open records sealed under the old session.
            // Tear the channel down so the next stream re-handshakes.
            endpoint.resetPeer(follower);
            followerSilence[follower] = 0;
        }
        streamToFollower(follower);
    }
    armHeartbeat();
}

void
CloudController::electionTimerFired()
{
    electionTimer = 0;
    if (!replicated() || election.role() == ReplicaRole::Leader ||
        !endpoint.attached())
        return;
    // Probe first: a candidacy only opens once a majority signals it
    // could win (pre-vote). The probe spends no round, so a replica
    // that is simply out of touch — resyncing after a restart, or cut
    // off by a lossy link — keeps probing harmlessly instead of
    // deposing a live leader with ever-higher rounds.
    election.startPrevote();
    proto::VoteRequest req;
    req.round = election.round() + 1;
    req.lastLogRound = mirrorRound;
    req.lastLsn = store.lastDurableLsn();
    req.prevote = true;
    const Bytes packed =
        pack(MessageKind::VoteRequest, req);
    for (const std::string &peer : followerIds())
        endpoint.sendSecure(peer, packed);
    armElectionTimer();
}

void
CloudController::openCandidacy()
{
    election.startCandidacy();
    knownLeader.clear();
    MONATT_LOG(Info, "cc")
        << cfg.id << ": starting election round " << election.round();
    proto::VoteRequest req;
    req.round = election.round();
    req.lastLogRound = mirrorRound;
    req.lastLsn = store.lastDurableLsn();
    const Bytes packed =
        pack(MessageKind::VoteRequest, req);
    for (const std::string &peer : followerIds())
        endpoint.sendSecure(peer, packed);
    armElectionTimer();
}

} // namespace monatt::controller
