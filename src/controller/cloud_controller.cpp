#include "controller/cloud_controller.h"

#include "common/logging.h"
#include "sim/worker_pool.h"

namespace monatt::controller
{

using proto::AttestForward;
using proto::AttestMode;
using proto::AttestRequest;
using proto::MessageKind;
using proto::ReportToController;
using proto::ReportToCustomer;

namespace
{

Bytes
endpointSeed(const std::string &id, std::uint64_t seed)
{
    Bytes material = toBytes("cc-endpoint:" + id);
    for (int i = 0; i < 8; ++i)
        material.push_back(static_cast<std::uint8_t>(seed >> (8 * i)));
    return material;
}

} // namespace

crypto::RsaKeyPair
CloudController::deriveIdentityKeys(const std::string &id,
                                    std::uint64_t seed, std::size_t bits)
{
    Bytes material = toBytes("cc-identity:" + id);
    for (int i = 0; i < 8; ++i)
        material.push_back(static_cast<std::uint8_t>(seed >> (8 * i)));
    crypto::HmacDrbg drbg(material);
    Rng rng = drbg.forkRng();
    return crypto::rsaGenerateKeyPair(bits, rng);
}

std::string
responsePolicyName(ResponsePolicy p)
{
    switch (p) {
      case ResponsePolicy::None:
        return "none";
      case ResponsePolicy::Terminate:
        return "termination";
      case ResponsePolicy::Suspend:
        return "suspension";
      case ResponsePolicy::Migrate:
        return "migration";
    }
    return "unknown";
}

CloudController::CloudController(sim::EventQueue &eq,
                                 net::Network &network,
                                 net::KeyDirectory &directory,
                                 CloudControllerConfig config,
                                 std::uint64_t seed)
    : events(eq), cfg(std::move(config)),
      keys(cfg.presetIdentityKeys
               ? *std::move(cfg.presetIdentityKeys)
               : deriveIdentityKeys(cfg.id, seed, cfg.identityKeyBits)),
      signCtx(keys.priv), dir(directory),
      endpoint(network, cfg.id, keys, directory,
               endpointSeed(cfg.id, seed)),
      rng(seed ^ 0xcc)
{
    endpoint.onMessage([this](const net::NodeId &from, const Bytes &msg) {
        handleMessage(from, msg);
    });
    endpoint.setReliability(net::EndpointReliability{
        cfg.reliability.enabled, cfg.reliability.handshakeRto,
        cfg.reliability.handshakeRetryLimit});
}

void
CloudController::setResponsePolicy(const std::string &vid,
                                   ResponsePolicy policy)
{
    policies[vid] = policy;
}

void
CloudController::addFlavor(const std::string &name, std::uint32_t vcpus,
                           std::uint64_t ramMb, std::uint64_t diskGb)
{
    flavors[name] = FlavorSpec{vcpus, ramMb, diskGb};
}

void
CloudController::assignAttestationCluster(const std::string &serverId,
                                          const std::string &attestorId)
{
    clusters[serverId] = attestorId;
}

const std::string &
CloudController::attestorFor(const std::string &serverId) const
{
    const auto it = clusters.find(serverId);
    return it == clusters.end() ? cfg.attestationServerId : it->second;
}

const crypto::RsaPublicContext &
CloudController::attestorContext(const std::string &attestorId,
                                 const crypto::RsaPublicKey &key)
{
    auto it = attestorCtxCache.find(attestorId);
    if (it != attestorCtxCache.end() && !(it->second.key() == key)) {
        attestorCtxCache.erase(it);
        it = attestorCtxCache.end();
    }
    if (it == attestorCtxCache.end()) {
        it = attestorCtxCache
                 .emplace(attestorId, crypto::RsaPublicContext(key))
                 .first;
    }
    return it->second;
}

void
CloudController::handleMessage(const net::NodeId &from,
                               const Bytes &plaintext)
{
    auto unpacked = proto::unpackMessage(plaintext);
    if (!unpacked)
        return;
    const auto &[kind, body] = unpacked.value();
    switch (kind) {
      case MessageKind::LaunchRequest:
        onLaunchRequest(from, body);
        break;
      case MessageKind::AttestRequest:
        onAttestRequest(from, body);
        break;
      case MessageKind::LaunchVmAck:
        onLaunchVmAck(from, body);
        break;
      case MessageKind::ReportToController:
        if (isKnownAttestor(from))
            onReportToController(from, body);
        break;
      case MessageKind::TerminateVmAck:
      case MessageKind::SuspendVmAck:
      case MessageKind::ResumeVmAck:
      case MessageKind::MigrateOutAck:
        onCommandAck(kind, body);
        break;
      default:
        MONATT_LOG(Warn, "cc") << "unexpected message from " << from;
        break;
    }
}

void
CloudController::onLaunchRequest(const net::NodeId &from,
                                 const Bytes &body)
{
    auto reqR = proto::LaunchRequest::decode(body);
    if (!reqR)
        return;
    const proto::LaunchRequest req = reqR.take();
    ++counters.launchesRequested;

    const auto flavorIt = flavors.find(req.flavorName);
    if (flavorIt == flavors.end()) {
        proto::LaunchResponse resp;
        resp.requestId = req.requestId;
        resp.ok = false;
        resp.error = "unknown flavor " + req.flavorName;
        endpoint.sendSecure(from,
                            proto::packMessage(MessageKind::LaunchResponse,
                                               resp.encode()));
        return;
    }

    const std::string vid = "vm-" + std::to_string(nextVmNumber++);

    VmRecord rec;
    rec.vid = vid;
    rec.name = req.name;
    rec.customer = from;
    rec.imageName = req.imageName;
    rec.flavorName = req.flavorName;
    rec.imageSizeMb = req.imageSizeMb;
    rec.image = req.image;
    rec.properties = req.properties;
    rec.vcpus = flavorIt->second.vcpus;
    rec.ramMb = flavorIt->second.ramMb;
    rec.diskGb = flavorIt->second.diskGb;
    rec.status = VmStatus::Scheduling;
    db.addVm(std::move(rec));

    PendingLaunch launch;
    launch.customerRequestId = req.requestId;
    launch.customer = from;
    launches[vid] = std::move(launch);

    runSchedulingStage(vid);
}

void
CloudController::runSchedulingStage(const std::string &vid)
{
    VmRecord *rec = db.vm(vid);
    if (!rec)
        return;
    rec->status = VmStatus::Scheduling;
    rec->launchTimer.beginStage("scheduling", events.now());
    ++rec->launchAttempts;

    const SimTime cost =
        cfg.timing.schedulingBase +
        cfg.timing.schedulingPerServer *
            static_cast<SimTime>(db.serverIds().size());

    events.scheduleAfter(cost, [this, vid] {
        VmRecord *rec = db.vm(vid);
        auto launchIt = launches.find(vid);
        if (!rec || launchIt == launches.end())
            return;

        PlacementRequirements req;
        req.ramMb = rec->ramMb;
        req.diskGb = rec->diskGb;
        req.properties = rec->properties;
        const auto candidates = PolicyValidationModule::qualifiedServers(
            db, req, launchIt->second.excludedServers);
        if (candidates.empty()) {
            finishLaunch(vid, false, "no qualified server available");
            return;
        }
        rec->serverId = candidates.front();
        db.allocate(rec->serverId, rec->ramMb, rec->diskGb);

        // Networking, then block device mapping, then spawn.
        rec->status = VmStatus::Networking;
        rec->launchTimer.beginStage("networking", events.now());
        events.scheduleAfter(cfg.timing.networking, [this, vid] {
            VmRecord *rec = db.vm(vid);
            if (!rec)
                return;
            rec->status = VmStatus::Mapping;
            rec->launchTimer.beginStage("mapping", events.now());
            events.scheduleAfter(cfg.timing.mappingTime(rec->diskGb),
                                 [this, vid] { startSpawn(vid); });
        });
    }, "cc.scheduling");
}

void
CloudController::startSpawn(const std::string &vid)
{
    VmRecord *rec = db.vm(vid);
    if (!rec)
        return;
    rec->status = VmStatus::Spawning;
    rec->launchTimer.beginStage("spawning", events.now());

    proto::LaunchVm cmd;
    cmd.vid = vid;
    cmd.name = rec->name;
    cmd.numVcpus = rec->vcpus;
    cmd.ramMb = rec->ramMb;
    cmd.diskGb = rec->diskGb;
    cmd.imageSizeMb = rec->imageSizeMb;
    cmd.image = rec->image;
    // The image itself is staged by the server from the image store
    // (charged inside TimingModel::spawnTime); the command is small.
    endpoint.sendSecure(rec->serverId,
                        proto::packMessage(MessageKind::LaunchVm,
                                           cmd.encode()));
}

void
CloudController::onLaunchVmAck(const net::NodeId &from, const Bytes &body)
{
    auto ackR = proto::LaunchVmAck::decode(body);
    if (!ackR)
        return;
    const proto::LaunchVmAck ack = ackR.take();
    VmRecord *rec = db.vm(ack.vid);
    if (!rec || rec->serverId != from)
        return;

    if (!ack.ok) {
        db.release(rec->serverId, rec->ramMb, rec->diskGb);
        rescheduleLaunch(ack.vid, "spawn failed: " + ack.error);
        return;
    }
    startStartupAttestation(ack.vid);
}

void
CloudController::startStartupAttestation(const std::string &vid)
{
    VmRecord *rec = db.vm(vid);
    if (!rec)
        return;
    rec->status = VmStatus::Attesting;
    rec->launchTimer.beginStage("attestation", events.now());

    AttestContext ctx;
    ctx.kind = AttestKind::StartupLaunch;
    ctx.vid = vid;
    ctx.properties = {proto::SecurityProperty::StartupIntegrity};
    ctx.mode = AttestMode::StartupOneTime;
    forwardAttestation(std::move(ctx));
}

std::uint64_t
CloudController::forwardAttestation(AttestContext ctx)
{
    const VmRecord *rec = db.vm(ctx.vid);
    if (!rec || rec->serverId.empty()) {
        // No hang: customers get a definitive failure even when the
        // VM vanished or was never placed.
        if (ctx.kind == AttestKind::CustomerRequest) {
            sendAttestFailure(ctx.customer, ctx.customerRequestId,
                              ctx.vid, proto::FailureOutcome::Failed,
                              "vm not placed");
        }
        return 0;
    }

    const std::uint64_t attestId = nextAttestId++;
    ctx.nonce2 = rng.nextBytes(16);
    ctx.forwardedAt = events.now();
    ctx.periodic = ctx.mode == AttestMode::RuntimePeriodic;
    ctx.serverId = rec->serverId;
    ctx.attestorId = attestorFor(rec->serverId);
    const bool expectReply = ctx.mode != AttestMode::StopPeriodic;
    attests[attestId] = std::move(ctx);
    transmitForward(attestId);
    // StopPeriodic is unacknowledged fire-and-forget (idempotent at
    // the AS); everything else is retried until a report arrives.
    if (cfg.reliability.enabled && expectReply)
        scheduleForwardRetry(attestId);
    return attestId;
}

void
CloudController::transmitForward(std::uint64_t attestId)
{
    const auto it = attests.find(attestId);
    if (it == attests.end())
        return;
    const AttestContext &ctx = it->second;

    // Rebuilt from the context with the same nonce2 on every attempt,
    // so a report answering any copy (or any failover target) binds to
    // this attestation.
    AttestForward fwd;
    fwd.requestId = attestId;
    fwd.vid = ctx.vid;
    fwd.serverId = ctx.serverId;
    fwd.properties = ctx.properties;
    fwd.nonce2 = ctx.nonce2;
    fwd.mode = ctx.mode;
    fwd.period = ctx.period;
    endpoint.sendSecure(ctx.attestorId,
                        proto::packMessage(MessageKind::AttestForward,
                                           fwd.encode()));
}

void
CloudController::scheduleForwardRetry(std::uint64_t attestId)
{
    const auto it = attests.find(attestId);
    if (it == attests.end())
        return;
    AttestContext &ctx = it->second;
    const SimTime delay =
        cfg.reliability.backoff(cfg.reliability.forwardRto, ctx.retries);
    ctx.retryTimer = events.scheduleAfter(
        delay, [this, attestId] { forwardRetryFired(attestId); },
        "cc.forward.retry");
}

void
CloudController::forwardRetryFired(std::uint64_t attestId)
{
    const auto it = attests.find(attestId);
    if (it == attests.end())
        return;
    AttestContext &ctx = it->second;
    ctx.retryTimer = 0;
    if (ctx.acked)
        return;

    if (ctx.retries < cfg.reliability.forwardRetryLimit) {
        ++ctx.retries;
        ++counters.forwardRetries;
        transmitForward(attestId);
        scheduleForwardRetry(attestId);
        return;
    }

    // Retry budget exhausted: strike the attestor, then fail the
    // request over to another AS when one is available. Drop the
    // channel too — if the AS crashed and restarted, records sealed
    // under the old session keys would be rejected forever, so the
    // next contact must re-handshake.
    AsHealth &health = asHealth[ctx.attestorId];
    ++health.strikes;
    if (health.strikes >= cfg.reliability.suspectThreshold)
        health.suspect = true;
    endpoint.resetPeer(ctx.attestorId);

    const std::string alt = alternativeAttestor(ctx.attestorId);
    if (ctx.failovers < cfg.reliability.failoverLimit && !alt.empty()) {
        MONATT_LOG(Warn, "cc")
            << "attestation " << attestId << " failing over from "
            << ctx.attestorId << " to " << alt;
        ++counters.failovers;
        ++ctx.failovers;
        ctx.retries = 0;
        ctx.attestorId = alt;
        transmitForward(attestId);
        scheduleForwardRetry(attestId);
        return;
    }
    giveUpAttestation(attestId);
}

void
CloudController::giveUpAttestation(std::uint64_t attestId)
{
    const auto it = attests.find(attestId);
    if (it == attests.end())
        return;
    const AttestContext ctx = std::move(it->second);
    attests.erase(it);
    ++counters.attestationsUnreachable;
    MONATT_LOG(Warn, "cc")
        << "attestation " << attestId << " for " << ctx.vid
        << " unreachable after retries and failover";

    switch (ctx.kind) {
      case AttestKind::CustomerRequest:
        sendAttestFailure(ctx.customer, ctx.customerRequestId, ctx.vid,
                          proto::FailureOutcome::Unreachable,
                          "attestation service unreachable");
        break;
      case AttestKind::StartupLaunch:
        finishLaunch(ctx.vid, false, "startup attestation unreachable");
        break;
      case AttestKind::SuspendRecheck:
        // Keep the VM suspended; re-check once the period elapses
        // again (the attestation plane may have recovered by then).
        scheduleSuspendRecheck(ctx.vid, ctx.customerRequestId);
        break;
    }
}

void
CloudController::sendAttestFailure(const net::NodeId &customer,
                                   std::uint64_t requestId,
                                   const std::string &vid,
                                   proto::FailureOutcome outcome,
                                   const std::string &reason)
{
    proto::AttestFailure failure;
    failure.requestId = requestId;
    failure.vid = vid;
    failure.outcome = outcome;
    failure.reason = reason;
    Bytes packed = proto::packMessage(MessageKind::AttestFailure,
                                      failure.encode());
    rememberRelay(CustomerKey{customer, requestId}, Bytes(packed));
    endpoint.sendSecure(customer, std::move(packed));
}

std::vector<std::string>
CloudController::knownAttestors() const
{
    if (!cfg.attestorIds.empty())
        return cfg.attestorIds;
    return {cfg.attestationServerId};
}

bool
CloudController::isKnownAttestor(const net::NodeId &node) const
{
    if (node == cfg.attestationServerId)
        return true;
    for (const std::string &id : cfg.attestorIds)
        if (node == id)
            return true;
    for (const auto &[server, attestor] : clusters)
        if (node == attestor)
            return true;
    return false;
}

std::string
CloudController::alternativeAttestor(const std::string &current) const
{
    const std::vector<std::string> all = knownAttestors();
    // Prefer an AS not currently suspected of being down...
    for (const std::string &id : all) {
        if (id == current)
            continue;
        const auto it = asHealth.find(id);
        if (it == asHealth.end() || !it->second.suspect)
            return id;
    }
    // ...but a suspect AS beats giving up outright.
    for (const std::string &id : all)
        if (id != current)
            return id;
    return {};
}

void
CloudController::rememberRelay(const CustomerKey &key, Bytes packed)
{
    customerInFlight.erase(key);
    if (relayCache.emplace(key, std::move(packed)).second) {
        relayOrder.push_back(key);
        while (relayOrder.size() > kRelayCacheSize) {
            relayCache.erase(relayOrder.front());
            relayOrder.pop_front();
        }
    }
}

void
CloudController::onAttestRequest(const net::NodeId &from,
                                 const Bytes &body)
{
    auto reqR = AttestRequest::decode(body);
    if (!reqR)
        return;
    const AttestRequest req = reqR.take();

    // Receive-side dedup: swallow retransmissions of a request still
    // in flight; answer completed ones from the relay cache without
    // re-running the protocol or re-signing anything.
    const CustomerKey key{from, req.requestId};
    if (customerInFlight.count(key)) {
        ++counters.duplicateAttestRequests;
        return;
    }
    const auto cached = relayCache.find(key);
    if (cached != relayCache.end()) {
        ++counters.duplicateAttestRequests;
        endpoint.sendSecure(from, Bytes(cached->second));
        return;
    }

    const VmRecord *rec = db.vm(req.vid);
    if (!rec || rec->customer != from) {
        MONATT_LOG(Warn, "cc")
            << "attestation request for unknown/foreign VM " << req.vid;
        // Identical definitive answer for "no such VM" and "someone
        // else's VM": the requester learns nothing about other
        // tenants, but no longer hangs either.
        sendAttestFailure(from, req.requestId, req.vid,
                          proto::FailureOutcome::Failed, "unknown vm");
        return;
    }

    // StopPeriodic never produces a reply that would clear the mark.
    if (req.mode != AttestMode::StopPeriodic)
        customerInFlight.insert(key);
    events.scheduleAfter(cfg.timing.controllerProcessing,
                         [this, req, from, key] {
        const VmRecord *rec = db.vm(req.vid);
        if (!rec) {
            customerInFlight.erase(key);
            sendAttestFailure(from, req.requestId, req.vid,
                              proto::FailureOutcome::Failed,
                              "unknown vm");
            return;
        }

        AttestContext ctx;
        ctx.kind = AttestKind::CustomerRequest;
        ctx.vid = req.vid;
        ctx.customer = from;
        ctx.customerRequestId = req.requestId;
        ctx.nonce1 = req.nonce1;
        ctx.properties = req.properties;
        ctx.mode = req.mode;
        ctx.period = req.period;
        forwardAttestation(std::move(ctx));
    }, "cc.attest.forward");
}

void
CloudController::onReportToController(const net::NodeId &from,
                                      const Bytes &body)
{
    (void)from;
    auto msgR = ReportToController::decode(body);
    if (!msgR) {
        ++counters.reportVerificationFailures;
        return;
    }
    reportQueue.push_back(msgR.take());
    if (!reportFlushScheduled) {
        reportFlushScheduled = true;
        events.scheduleAfter(cfg.batchWindow,
                             [this] { flushReportBatch(); },
                             "cc.verify.flush");
    }
}

void
CloudController::flushReportBatch()
{
    reportFlushScheduled = false;
    std::vector<ReportToController> batch;
    batch.swap(reportQueue);

    // Serial pre-pass, in arrival order: bind to the outstanding
    // attestation and compile the attestor's verification key.
    struct Item
    {
        ReportToController msg;
        AttestContext ctx;
        const crypto::RsaPublicContext *asCtx = nullptr;
        bool ok = false;
    };
    std::vector<Item> items;
    items.reserve(batch.size());
    for (ReportToController &msg : batch) {
        const auto it = attests.find(msg.requestId);
        if (it == attests.end()) {
            ++counters.reportVerificationFailures;
            continue;
        }
        Item item;
        item.ctx = it->second;
        // Verify against the attestor this request currently targets
        // (tracked per context so failover re-binds the signer).
        const std::string &attestor = item.ctx.attestorId.empty()
                                          ? attestorFor(msg.serverId)
                                          : item.ctx.attestorId;
        auto asKey = dir.lookup(attestor);
        if (asKey)
            item.asCtx = &attestorContext(attestor, asKey.value());
        item.msg = std::move(msg);
        items.push_back(std::move(item));
    }

    // Verify the Attestation Server's signature and quote Q2 on the
    // compute plane — pure checks, one task per report. The signer is
    // the cluster attestor responsible for the VM's server.
    sim::WorkerPool::global().parallelFor(
        items.size(), [&](std::size_t i) {
            Item &item = items[i];
            if (!item.asCtx)
                return;
            const ReportToController &msg = item.msg;
            const Bytes expectedQ2 = ReportToController::quoteInput(
                msg.vid, msg.serverId, msg.properties, msg.report,
                msg.nonce2);
            item.ok =
                crypto::rsaVerify(*item.asCtx, msg.signedPortion(),
                                  msg.signature) &&
                constantTimeEqual(expectedQ2, msg.quote2) &&
                constantTimeEqual(msg.nonce2, item.ctx.nonce2) &&
                msg.vid == item.ctx.vid;
        });

    // Serial post-pass, in arrival order: counters, session retirement
    // and report handling.
    for (Item &item : items) {
        if (!item.ok) {
            ++counters.reportVerificationFailures;
            MONATT_LOG(Warn, "cc") << "report verification failed for "
                                   << item.msg.vid;
            continue;
        }
        const auto live = attests.find(item.msg.requestId);
        if (live != attests.end()) {
            AttestContext &stored = live->second;
            if (stored.retryTimer != 0) {
                events.cancel(stored.retryTimer);
                stored.retryTimer = 0;
            }
            stored.acked = true;
            if (!stored.periodic)
                attests.erase(live);
        }
        // A verified report clears the attestor's strike record.
        if (!item.ctx.attestorId.empty())
            asHealth[item.ctx.attestorId] = AsHealth{};

        events.scheduleAfter(cfg.timing.controllerProcessing,
                             [this, ctx = item.ctx, msg = item.msg,
                              attestId = item.msg.requestId] {
            if (ctx.kind == AttestKind::StartupLaunch)
                handleStartupReport(ctx, msg);
            else if (ctx.kind == AttestKind::SuspendRecheck)
                handleRecheckReport(ctx, msg);
            else
                handleCustomerReport(attestId, ctx, msg);
        }, "cc.report");
    }
}

void
CloudController::handleStartupReport(const AttestContext &ctx,
                                     const ReportToController &msg)
{
    VmRecord *rec = db.vm(ctx.vid);
    if (!rec)
        return;

    const proto::PropertyResult *integrity =
        msg.report.find(proto::SecurityProperty::StartupIntegrity);
    if (integrity && integrity->status == proto::HealthStatus::Healthy) {
        finishLaunch(ctx.vid, true, {});
        return;
    }

    const std::string detail = integrity ? integrity->detail
                                         : "no integrity result";
    if (detail.find("image") != std::string::npos) {
        // §5.1: compromised image — reject the launch.
        proto::VmCommand cmd;
        cmd.vid = ctx.vid;
        endpoint.sendSecure(rec->serverId,
                            proto::packMessage(MessageKind::TerminateVm,
                                               cmd.encode()));
        db.release(rec->serverId, rec->ramMb, rec->diskGb);
        ++counters.launchesRejected;
        finishLaunch(ctx.vid, false, "vm image integrity check failed");
    } else {
        // §5.1: compromised platform — select another server.
        proto::VmCommand cmd;
        cmd.vid = ctx.vid;
        endpoint.sendSecure(rec->serverId,
                            proto::packMessage(MessageKind::TerminateVm,
                                               cmd.encode()));
        db.release(rec->serverId, rec->ramMb, rec->diskGb);
        rescheduleLaunch(ctx.vid, detail);
    }
}

void
CloudController::rescheduleLaunch(const std::string &vid,
                                  const std::string &reason)
{
    VmRecord *rec = db.vm(vid);
    auto launchIt = launches.find(vid);
    if (!rec || launchIt == launches.end())
        return;

    if (rec->launchAttempts >= cfg.maxLaunchAttempts) {
        finishLaunch(vid, false,
                     "launch failed after retries: " + reason);
        return;
    }
    ++counters.launchesRescheduled;
    launchIt->second.excludedServers.insert(rec->serverId);
    rec->serverId.clear();
    MONATT_LOG(Info, "cc") << "rescheduling " << vid << ": " << reason;
    runSchedulingStage(vid);
}

void
CloudController::finishLaunch(const std::string &vid, bool ok,
                              const std::string &error)
{
    VmRecord *rec = db.vm(vid);
    auto launchIt = launches.find(vid);
    if (!rec || launchIt == launches.end())
        return;

    rec->launchTimer.endStage(events.now());
    rec->status = ok ? VmStatus::Running : VmStatus::Failed;
    if (ok) {
        rec->launchedAt = events.now();
        ++counters.launchesSucceeded;
    }

    proto::LaunchResponse resp;
    resp.requestId = launchIt->second.customerRequestId;
    resp.vid = vid;
    resp.ok = ok;
    resp.error = error;
    endpoint.sendSecure(launchIt->second.customer,
                        proto::packMessage(MessageKind::LaunchResponse,
                                           resp.encode()));
    launches.erase(launchIt);
}

void
CloudController::handleCustomerReport(std::uint64_t attestId,
                                      const AttestContext &ctx,
                                      const ReportToController &msg)
{
    (void)attestId;

    ReportToCustomer out;
    out.requestId = ctx.customerRequestId;
    out.vid = ctx.vid;
    out.properties = ctx.properties;
    out.report = msg.report;
    out.nonce1 = ctx.nonce1;
    out.quote1 = ReportToCustomer::quoteInput(ctx.vid, ctx.properties,
                                              msg.report, ctx.nonce1);

    // Relays issued within one window share a signature fan-out.
    // One-time replies feed the dedup cache; periodic stream reports
    // share the customer request id and are never cached.
    relayQueue.push_back(
        PendingRelay{std::move(out), ctx.customer, !ctx.periodic});
    if (!relayFlushScheduled) {
        relayFlushScheduled = true;
        events.scheduleAfter(cfg.batchWindow,
                             [this] { flushRelayBatch(); },
                             "cc.relay.flush");
    }

    // nova response: act on a negative report.
    bool bad = false;
    for (const proto::PropertyResult &pr : msg.report.results)
        bad |= pr.status == proto::HealthStatus::Compromised;
    if (bad) {
        triggerResponse(ctx.vid, ctx.forwardedAt, "negative attestation",
                        ctx.properties);
    }
}

void
CloudController::flushRelayBatch()
{
    relayFlushScheduled = false;
    std::vector<PendingRelay> batch;
    batch.swap(relayQueue);

    // Customer-relay signatures are independent pure compute; each
    // task writes only its own slot.
    sim::WorkerPool::global().parallelFor(
        batch.size(), [&](std::size_t i) {
            batch[i].out.signature =
                crypto::rsaSign(signCtx, batch[i].out.signedPortion());
        });

    // Serial sends in issue order.
    for (PendingRelay &relay : batch) {
        ++counters.reportsRelayed;
        Bytes packed = proto::packMessage(MessageKind::ReportToCustomer,
                                          relay.out.encode());
        const CustomerKey key{relay.customer, relay.out.requestId};
        if (relay.cacheable)
            rememberRelay(key, Bytes(packed));
        else
            customerInFlight.erase(key);
        endpoint.sendSecure(relay.customer, std::move(packed));
    }
}

void
CloudController::triggerResponse(
    const std::string &vid, SimTime attestStart, const std::string &why,
    const std::vector<proto::SecurityProperty> &triggerProperties)
{
    const auto polIt = policies.find(vid);
    const ResponsePolicy policy =
        polIt == policies.end() ? ResponsePolicy::None : polIt->second;
    if (policy == ResponsePolicy::None)
        return;
    if (outstandingResponses.count(vid))
        return; // A response is already in flight for this VM.

    VmRecord *rec = db.vm(vid);
    if (!rec || rec->status != VmStatus::Running)
        return;

    ++counters.responsesTriggered;
    ResponseRecord log;
    log.vid = vid;
    log.action = policy;
    log.attestStart = attestStart;
    log.reportAt = events.now();
    log.detail = why;
    log.triggerProperties = triggerProperties;
    responses.push_back(log);
    const std::size_t logIndex = responses.size() - 1;
    outstandingResponses[vid] = logIndex;

    proto::VmCommand cmd;
    cmd.vid = vid;
    switch (policy) {
      case ResponsePolicy::Terminate:
        endpoint.sendSecure(rec->serverId,
                            proto::packMessage(MessageKind::TerminateVm,
                                               cmd.encode()));
        break;
      case ResponsePolicy::Suspend:
        rec->status = VmStatus::Suspended;
        endpoint.sendSecure(rec->serverId,
                            proto::packMessage(MessageKind::SuspendVm,
                                               cmd.encode()));
        break;
      case ResponsePolicy::Migrate:
        executeMigration(vid, logIndex);
        break;
      case ResponsePolicy::None:
        break;
    }
}

void
CloudController::executeMigration(const std::string &vid,
                                  std::size_t logIndex)
{
    VmRecord *rec = db.vm(vid);
    if (!rec)
        return;

    PlacementRequirements req;
    req.ramMb = rec->ramMb;
    req.diskGb = rec->diskGb;
    req.properties = rec->properties;
    const auto candidates = PolicyValidationModule::qualifiedServers(
        db, req, {rec->serverId});
    if (candidates.empty()) {
        // §5.3: no qualified server — the VM must be shut down.
        responses[logIndex].detail += "; no qualified target, terminating";
        responses[logIndex].action = ResponsePolicy::Terminate;
        proto::VmCommand cmd;
        cmd.vid = vid;
        endpoint.sendSecure(rec->serverId,
                            proto::packMessage(MessageKind::TerminateVm,
                                               cmd.encode()));
        return;
    }

    rec->status = VmStatus::Migrating;
    proto::MigrateOut cmd;
    cmd.vid = vid;
    cmd.targetServer = candidates.front();
    db.allocate(cmd.targetServer, rec->ramMb, rec->diskGb);
    responses[logIndex].targetServer = cmd.targetServer;
    endpoint.sendSecure(rec->serverId,
                        proto::packMessage(MessageKind::MigrateOut,
                                           cmd.encode()));
}

void
CloudController::onCommandAck(MessageKind kind, const Bytes &body)
{
    auto ackR = proto::VmCommandAck::decode(body);
    if (!ackR)
        return;
    const proto::VmCommandAck ack = ackR.take();

    const auto it = outstandingResponses.find(ack.vid);
    if (it == outstandingResponses.end())
        return;
    const std::size_t logIndex = it->second;
    ResponseRecord &log = responses[logIndex];
    outstandingResponses.erase(it);

    log.completed = true;
    log.succeeded = ack.ok;
    log.completedAt = events.now();

    VmRecord *rec = db.vm(ack.vid);
    if (!rec)
        return;

    if (kind == MessageKind::TerminateVmAck && ack.ok) {
        db.release(rec->serverId, rec->ramMb, rec->diskGb);
        rec->status = VmStatus::Terminated;
    } else if (kind == MessageKind::SuspendVmAck && ack.ok) {
        rec->status = VmStatus::Suspended;
        scheduleSuspendRecheck(ack.vid, logIndex);
    } else if (kind == MessageKind::MigrateOutAck) {
        if (ack.ok) {
            // The source released its copy; the DB moves the VM.
            const std::string oldServer = rec->serverId;
            db.release(oldServer, rec->ramMb, rec->diskGb);
            rec->serverId = log.targetServer;
            rec->status = VmStatus::Running;
            retargetPeriodicAttestations(ack.vid, oldServer);
        } else {
            // Resumed at the source; release the reserved target.
            db.release(log.targetServer, rec->ramMb, rec->diskGb);
            rec->status = VmStatus::Running;
        }
    }
}

void
CloudController::retargetPeriodicAttestations(const std::string &vid,
                                              const std::string &oldServer)
{
    const VmRecord *rec = db.vm(vid);
    if (!rec)
        return;
    for (auto &[attestId, ctx] : attests) {
        if (!ctx.periodic || ctx.vid != vid)
            continue;

        // Replace the task on the new cluster's attestor. The AS keys
        // periodic tasks by (vid, properties), so re-forwarding with
        // the same mode replaces the stale target when the cluster is
        // unchanged.
        const std::string oldAttestor = ctx.attestorId.empty()
                                            ? attestorFor(oldServer)
                                            : ctx.attestorId;
        ctx.serverId = rec->serverId;
        ctx.attestorId = attestorFor(rec->serverId);

        AttestForward fwd;
        fwd.requestId = attestId;
        fwd.vid = vid;
        fwd.serverId = rec->serverId;
        fwd.properties = ctx.properties;
        fwd.nonce2 = ctx.nonce2;
        fwd.mode = AttestMode::RuntimePeriodic;
        fwd.period = ctx.period;
        endpoint.sendSecure(
            ctx.attestorId,
            proto::packMessage(MessageKind::AttestForward, fwd.encode()));

        // When the cluster changed, the old attestor still runs the
        // stale task: stop it explicitly.
        if (oldAttestor != ctx.attestorId) {
            AttestForward stop = fwd;
            stop.serverId = oldServer;
            stop.mode = AttestMode::StopPeriodic;
            endpoint.sendSecure(
                oldAttestor,
                proto::packMessage(MessageKind::AttestForward,
                                   stop.encode()));
        }
    }
}

void
CloudController::scheduleSuspendRecheck(const std::string &vid,
                                        std::size_t logIndex)
{
    if (cfg.suspendRecheckPeriod <= 0)
        return;
    events.scheduleAfter(cfg.suspendRecheckPeriod,
                         [this, vid, logIndex] {
        VmRecord *rec = db.vm(vid);
        if (!rec || rec->status != VmStatus::Suspended)
            return;
        AttestContext ctx;
        ctx.kind = AttestKind::SuspendRecheck;
        ctx.vid = vid;
        ctx.properties = responses[logIndex].triggerProperties;
        if (ctx.properties.empty()) {
            ctx.properties = {
                proto::SecurityProperty::RuntimeIntegrity};
        }
        ctx.mode = AttestMode::RuntimeOneTime;
        ctx.customerRequestId = logIndex; // Carries the log index.
        forwardAttestation(std::move(ctx));
    }, "cc.suspend.recheck");
}

void
CloudController::handleRecheckReport(const AttestContext &ctx,
                                     const ReportToController &msg)
{
    VmRecord *rec = db.vm(ctx.vid);
    if (!rec || rec->status != VmStatus::Suspended)
        return;
    const std::size_t logIndex = ctx.customerRequestId;

    if (msg.report.allHealthy()) {
        // §5.2 #2: "the controller can resume the VM from the saved
        // state".
        if (logIndex < responses.size())
            responses[logIndex].resumedAfterRecheck = true;
        proto::VmCommand cmd;
        cmd.vid = ctx.vid;
        rec->status = VmStatus::Running;
        endpoint.sendSecure(rec->serverId,
                            proto::packMessage(MessageKind::ResumeVm,
                                               cmd.encode()));
        MONATT_LOG(Info, "cc") << ctx.vid
                               << " healthy again; resuming";
    } else {
        // Still unhealthy: keep it suspended, check again later.
        scheduleSuspendRecheck(ctx.vid, logIndex);
    }
}

} // namespace monatt::controller
