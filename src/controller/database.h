/**
 * @file
 * The controller's cloud database (nova database, §6.1).
 *
 * "We modify the controller's database to enable it to store the
 * customers' specifications about the security properties required
 * for their VMs... We also add new tables in the database, which
 * record each server's monitoring and attestation capabilities."
 * Those two extensions are first-class here: VmRecord carries the
 * requested properties, ServerRecord carries the capability set the
 * property_filter consults.
 */

#ifndef MONATT_CONTROLLER_DATABASE_H
#define MONATT_CONTROLLER_DATABASE_H

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/time_types.h"
#include "proto/property.h"
#include "sim/stage_timer.h"

namespace monatt::controller
{

/** VM lifecycle status. */
enum class VmStatus
{
    Scheduling,
    Networking,
    Mapping,
    Spawning,
    Attesting,
    Running,
    Suspended,
    Migrating,
    Terminated,
    Failed,
};

/** Human-readable status name. */
std::string vmStatusName(VmStatus s);

/** One VM's record. */
struct VmRecord
{
    std::string vid;
    std::string name;
    std::string customer; //!< Owning customer's node id.
    std::string imageName;
    std::string flavorName;
    std::uint64_t imageSizeMb = 0;
    Bytes image;
    std::uint32_t vcpus = 1;
    std::uint64_t ramMb = 0;
    std::uint64_t diskGb = 0;
    std::vector<proto::SecurityProperty> properties;
    std::string serverId;
    VmStatus status = VmStatus::Scheduling;
    sim::StageTimer launchTimer; //!< Figure 9 stage breakdown.
    int launchAttempts = 0;
    SimTime launchedAt = 0;
};

/** One cloud server's record. */
struct ServerRecord
{
    std::string id;
    std::set<proto::SecurityProperty> capabilities;
    std::uint64_t totalRamMb = 0;
    std::uint64_t totalDiskGb = 0;
    std::uint64_t allocatedRamMb = 0;
    std::uint64_t allocatedDiskGb = 0;

    /**
     * Host evicted from scheduling: a rollback/stale-TCB verdict (§5)
     * marked its firmware untrustworthy. Quarantined hosts keep their
     * existing allocations (in-flight migrations must still release
     * them) but never qualify as a placement or migration target until
     * the operator re-admits them.
     */
    bool quarantined = false;

    std::uint64_t freeRamMb() const { return totalRamMb - allocatedRamMb; }
    std::uint64_t freeDiskGb() const
    {
        return totalDiskGb - allocatedDiskGb;
    }
};

/** The database. */
class CloudDatabase
{
  public:
    /** Register a server (replaces an existing record). */
    void addServer(ServerRecord record);

    /** Server lookup; nullptr when unknown. */
    ServerRecord *server(const std::string &id);
    const ServerRecord *server(const std::string &id) const;

    /** All server ids. */
    std::vector<std::string> serverIds() const;

    /** Insert a VM record. */
    void addVm(VmRecord record);

    /** VM lookup; nullptr when unknown. */
    VmRecord *vm(const std::string &vid);
    const VmRecord *vm(const std::string &vid) const;

    /** Remove a VM record. */
    void removeVm(const std::string &vid);

    /** All VM ids. */
    std::vector<std::string> vmIds() const;

    /** Charge/release a VM's resources against a server. */
    void allocate(const std::string &serverId, std::uint64_t ramMb,
                  std::uint64_t diskGb);
    void release(const std::string &serverId, std::uint64_t ramMb,
                 std::uint64_t diskGb);

  private:
    std::map<std::string, ServerRecord> servers;
    std::map<std::string, VmRecord> vms;
};

// --- Journal serialization (common/codec byte layouts) -----------------
//
// Record payloads for the controller's StableStore. Encoders are
// total; decoders are strict (any truncated or trailing bytes is an
// error), matching the protocol codec's posture.

Bytes encodeVmRecord(const VmRecord &rec);
Result<VmRecord> decodeVmRecord(const Bytes &data);

Bytes encodeServerRecord(const ServerRecord &rec);
Result<ServerRecord> decodeServerRecord(const Bytes &data);

// Tagged-field variants (schema-evolvable journal form; see DESIGN.md
// §17). A journal record carrying a tagged payload sets
// proto::kTaggedJournalBit in its StableStore type word.

Bytes encodeVmRecordTagged(const VmRecord &rec);
Result<VmRecord> decodeVmRecordTagged(const Bytes &data);

Bytes encodeServerRecordTagged(const ServerRecord &rec);
Result<ServerRecord> decodeServerRecordTagged(const Bytes &data);

} // namespace monatt::controller

#endif // MONATT_CONTROLLER_DATABASE_H
