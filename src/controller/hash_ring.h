/**
 * @file
 * Consistent-hash ring used by the sharded control plane.
 *
 * The ControllerFabric places every controller shard on a ring of
 * 64-bit points (many virtual nodes per shard for balance) and routes
 * each VM id to the shard owning the first point at or after the key's
 * hash, wrapping around. SHA-256 — already the repo's single hash —
 * supplies the point distribution, so placement is deterministic
 * across platforms and build modes: a fixed shard set always yields
 * the same ownership map. Adding or removing one shard remaps only
 * ~1/N of the key space, which tests/controller/hash_ring_test.cpp
 * pins as a property test.
 */

#ifndef MONATT_CONTROLLER_HASH_RING_H
#define MONATT_CONTROLLER_HASH_RING_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace monatt::controller
{

/** Deterministic consistent-hash ring with virtual nodes. */
class HashRing
{
  public:
    /** Default virtual-node count per shard; plenty for ±20% balance. */
    static constexpr int kDefaultVirtualNodes = 128;

    /** Hash an arbitrary key to its 64-bit ring position. */
    static std::uint64_t hashKey(const std::string &key);

    /** Place a node on the ring under `virtualNodes` points. */
    void addNode(const std::string &nodeId,
                 int virtualNodes = kDefaultVirtualNodes);

    /** Remove a node and all of its virtual points. */
    void removeNode(const std::string &nodeId);

    /** True if the node currently sits on the ring. */
    bool contains(const std::string &nodeId) const;

    /** Owning node for a key; empty string on an empty ring. */
    const std::string &owner(const std::string &key) const;

    /** Distinct node ids on the ring, sorted. */
    std::vector<std::string> nodes() const;

    /** Number of distinct nodes. */
    std::size_t size() const { return perNode.size(); }

    bool empty() const { return points.empty(); }

  private:
    std::map<std::uint64_t, std::string> points;
    std::map<std::string, std::vector<std::uint64_t>> perNode;
};

} // namespace monatt::controller

#endif // MONATT_CONTROLLER_HASH_RING_H
