/**
 * @file
 * The sharded control plane: N CloudController shards behind one
 * consistent-hash ring.
 *
 * The paper's Cloud Controller is a single Nova-style node; to scale
 * the control plane past one event-loop node the fabric splits it into
 * independent shards. A consistent-hash ring over VM ids (with virtual
 * nodes for balance) gives every VM exactly one owning shard; that
 * shard holds the VM's database record, its in-flight AttestContexts,
 * its pending launch, its dedup entries and its response log, and owns
 * its own write-ahead journal — so the PR-4 crash/recovery machinery
 * applies per shard unchanged. Shards never talk to each other:
 * customers route each request to the owning shard client-side, and
 * every shard allocates only vids the ring maps to itself, so
 * ownership is an invariant from birth.
 *
 * A 1-shard fabric is bit-identical to the pre-sharding single
 * controller (same id, same seed, same message bytes and timings);
 * tests/controller/shard_conformance_test.cpp pins that equivalence
 * against a golden digest.
 */

#ifndef MONATT_CONTROLLER_CONTROLLER_FABRIC_H
#define MONATT_CONTROLLER_CONTROLLER_FABRIC_H

#include <memory>
#include <string>
#include <vector>

#include "controller/cloud_controller.h"
#include "controller/hash_ring.h"

namespace monatt::controller
{

/** N controller shards plus the ring that routes VM ownership. */
class ControllerFabric
{
  public:
    /**
     * Construct one shard per entry of `shardConfigs`. Each config
     * must carry a distinct id; the fabric fills in the shard index
     * and ring pointer before constructing the controller. `seeds`
     * supplies the per-shard RNG seed, parallel to `shardConfigs`.
     */
    ControllerFabric(sim::EventQueue &eq, net::Network &network,
                     net::KeyDirectory &directory,
                     std::vector<CloudControllerConfig> shardConfigs,
                     const std::vector<std::uint64_t> &seeds,
                     int virtualNodes = HashRing::kDefaultVirtualNodes);

    std::size_t numShards() const { return shards.size(); }

    CloudController &shard(std::size_t index)
    {
        return *shards.at(index);
    }
    const CloudController &shard(std::size_t index) const
    {
        return *shards.at(index);
    }

    /** Shard by node id; nullptr when `id` is not a shard. */
    CloudController *shardById(const std::string &id);

    /** The ownership ring (customers route requests with it). */
    const HashRing &ring() const { return ownership; }

    /** The shard owning a VM id. */
    CloudController &ownerOf(const std::string &vid);

    /** All shard node ids, in shard-index order. */
    std::vector<std::string> shardIds() const;

    // --- Provisioning fan-out (trusted operator path) -----------------

    /** Register a flavor on every shard. */
    void addFlavor(const std::string &name, std::uint32_t vcpus,
                   std::uint64_t ramMb, std::uint64_t diskGb);

    /** Add a server inventory record to every shard's database. */
    void addServerRecord(const ServerRecord &record);

    /** Map a server to its cluster attestor on every shard. */
    void assignAttestationCluster(const std::string &serverId,
                                  const std::string &attestorId);

    /** Set a VM's remediation policy on its owning shard. */
    void setResponsePolicy(const std::string &vid, ResponsePolicy policy);

    // --- Whole-plane operations ----------------------------------------

    /** Restart every crashed shard (each replays its own journal). */
    void restartAll();

    /** Counters summed across all shards. */
    ControllerStats aggregateStats() const;

  private:
    HashRing ownership; //!< Declared first: shards hold a pointer.
    std::vector<std::unique_ptr<CloudController>> shards;
};

} // namespace monatt::controller

#endif // MONATT_CONTROLLER_CONTROLLER_FABRIC_H
