/**
 * @file
 * The sharded, replicated control plane: N CloudController shards
 * behind one consistent-hash ring, each shard a replica group.
 *
 * The paper's Cloud Controller is a single Nova-style node; to scale
 * the control plane past one event-loop node the fabric splits it into
 * independent shards. A consistent-hash ring over VM ids (with virtual
 * nodes for balance) gives every VM exactly one owning shard; that
 * shard holds the VM's database record, its in-flight AttestContexts,
 * its pending launch, its dedup entries and its response log, and owns
 * its own write-ahead journal — so the PR-4 crash/recovery machinery
 * applies per shard unchanged. Shards never talk to each other:
 * customers route each request to the owning shard client-side, and
 * every shard allocates only vids the ring maps to itself, so
 * ownership is an invariant from birth.
 *
 * With `replicasPerShard` > 1 each shard becomes a replica group: the
 * leader streams its journal to the followers and commits (= releases
 * externally visible output) only once a majority holds the records
 * durably; a deterministic election promotes a follower when the
 * leader dies. The ring contains only the shards' *base* ids — replica
 * membership changes never remap VM ownership. Replica 0 keeps the
 * base id and boots as the round-1 leader, so a 1-replica group is the
 * classic unreplicated shard.
 *
 * A 1-shard, 1-replica fabric is bit-identical to the pre-sharding
 * single controller (same id, same seed, same message bytes and
 * timings); tests/controller/shard_conformance_test.cpp pins that
 * equivalence against a golden digest.
 */

#ifndef MONATT_CONTROLLER_CONTROLLER_FABRIC_H
#define MONATT_CONTROLLER_CONTROLLER_FABRIC_H

#include <memory>
#include <string>
#include <vector>

#include "controller/cloud_controller.h"
#include "controller/hash_ring.h"

namespace monatt::controller
{

/** N controller shards × R replicas plus the VM-ownership ring. */
class ControllerFabric
{
  public:
    /**
     * Construct `shardConfigs.size()` shards of `replicasPerShard`
     * replicas each. Each config must carry a distinct id (the shard's
     * base id); the fabric fills in the shard index, ring pointer and
     * replica-group membership before constructing each node. `seeds`
     * supplies the per-shard RNG seed, parallel to `shardConfigs`;
     * replica r derives its seed from the shard seed. Replication
     * requires a durable journal, so `durable` is forced on when
     * `replicasPerShard` > 1.
     */
    ControllerFabric(sim::EventQueue &eq, net::Network &network,
                     net::KeyDirectory &directory,
                     std::vector<CloudControllerConfig> shardConfigs,
                     const std::vector<std::uint64_t> &seeds,
                     int virtualNodes = HashRing::kDefaultVirtualNodes,
                     int replicasPerShard = 1,
                     ElectionTuning election = {});

    std::size_t numShards() const
    {
        return nodes.size() / replicas_;
    }
    std::size_t replicasPerShard() const { return replicas_; }
    std::size_t numNodes() const { return nodes.size(); }

    /** Shard primary (replica 0, base id) by shard index. */
    CloudController &shard(std::size_t index)
    {
        return *nodes.at(index * replicas_);
    }
    const CloudController &shard(std::size_t index) const
    {
        return *nodes.at(index * replicas_);
    }

    /** Any replica node, in shard-major order (shard 0's replicas,
     *  then shard 1's, ...). */
    CloudController &node(std::size_t index)
    {
        return *nodes.at(index);
    }
    const CloudController &node(std::size_t index) const
    {
        return *nodes.at(index);
    }

    /** Replica of a shard by (shard, replica) index. */
    CloudController &replica(std::size_t shardIndex,
                             std::size_t replicaIndex)
    {
        return *nodes.at(shardIndex * replicas_ + replicaIndex);
    }

    /** Node (any replica of any shard) by id; nullptr when unknown. */
    CloudController *shardById(const std::string &id);

    /**
     * The current leader of a shard's replica group: the up node in
     * role Leader, falling back to the primary when the group is
     * mid-election (callers inspecting state between elections).
     */
    CloudController &leaderOf(std::size_t shardIndex);

    /** The ownership ring (customers route requests with it).
     *  Contains only base shard ids — never replica ids. */
    const HashRing &ring() const { return ownership; }

    /** Current leader of the group owning a VM id. */
    CloudController &ownerOf(const std::string &vid);

    /** All shard base ids, in shard-index order. */
    std::vector<std::string> shardIds() const;

    /** All node ids (every replica of every shard), shard-major. */
    std::vector<std::string> allNodeIds() const;

    /** Replica-group member ids of one shard, replica-index order. */
    std::vector<std::string> groupIds(std::size_t shardIndex) const;

    // --- Provisioning fan-out (trusted operator path) -----------------

    /** Register a flavor on every node. */
    void addFlavor(const std::string &name, std::uint32_t vcpus,
                   std::uint64_t ramMb, std::uint64_t diskGb);

    /** Add a server inventory record to every node's database. */
    void addServerRecord(const ServerRecord &record);

    /** Map a server to its cluster attestor on every node. */
    void assignAttestationCluster(const std::string &serverId,
                                  const std::string &attestorId);

    /** Set a VM's remediation policy on its owning group's leader. */
    void setResponsePolicy(const std::string &vid, ResponsePolicy policy);

    // --- Whole-plane operations ----------------------------------------

    /** Restart every crashed node (leaders replay their journal,
     *  replicated nodes rejoin as followers). */
    void restartAll();

    /** Counters summed across all nodes. */
    ControllerStats aggregateStats() const;

  private:
    HashRing ownership; //!< Declared first: nodes hold a pointer.
    std::size_t replicas_ = 1;
    std::vector<std::unique_ptr<CloudController>> nodes;
};

} // namespace monatt::controller

#endif // MONATT_CONTROLLER_CONTROLLER_FABRIC_H
