#include "controller/controller_fabric.h"

#include <stdexcept>

namespace monatt::controller
{

ControllerFabric::ControllerFabric(
    sim::EventQueue &eq, net::Network &network,
    net::KeyDirectory &directory,
    std::vector<CloudControllerConfig> shardConfigs,
    const std::vector<std::uint64_t> &seeds, int virtualNodes)
{
    if (shardConfigs.empty())
        throw std::invalid_argument("fabric needs at least one shard");
    if (shardConfigs.size() != seeds.size())
        throw std::invalid_argument("one seed per shard required");

    // The full ring must exist before any shard runs: vid allocation
    // consults it from the first launch.
    for (const CloudControllerConfig &cfg : shardConfigs)
        ownership.addNode(cfg.id, virtualNodes);

    shards.reserve(shardConfigs.size());
    for (std::size_t i = 0; i < shardConfigs.size(); ++i) {
        CloudControllerConfig cfg = std::move(shardConfigs[i]);
        cfg.shardIndex = static_cast<int>(i);
        cfg.ring = &ownership;
        shards.push_back(std::make_unique<CloudController>(
            eq, network, directory, std::move(cfg), seeds[i]));
    }
}

CloudController *
ControllerFabric::shardById(const std::string &id)
{
    for (auto &shard : shards) {
        if (shard->id() == id)
            return shard.get();
    }
    return nullptr;
}

CloudController &
ControllerFabric::ownerOf(const std::string &vid)
{
    CloudController *shard = shardById(ownership.owner(vid));
    if (shard == nullptr)
        throw std::logic_error("ring names a node that is not a shard");
    return *shard;
}

std::vector<std::string>
ControllerFabric::shardIds() const
{
    std::vector<std::string> ids;
    ids.reserve(shards.size());
    for (const auto &shard : shards)
        ids.push_back(shard->id());
    return ids;
}

void
ControllerFabric::addFlavor(const std::string &name, std::uint32_t vcpus,
                            std::uint64_t ramMb, std::uint64_t diskGb)
{
    for (auto &shard : shards)
        shard->addFlavor(name, vcpus, ramMb, diskGb);
}

void
ControllerFabric::addServerRecord(const ServerRecord &record)
{
    for (auto &shard : shards) {
        ServerRecord copy = record;
        shard->database().addServer(std::move(copy));
    }
}

void
ControllerFabric::assignAttestationCluster(const std::string &serverId,
                                           const std::string &attestorId)
{
    for (auto &shard : shards)
        shard->assignAttestationCluster(serverId, attestorId);
}

void
ControllerFabric::setResponsePolicy(const std::string &vid,
                                    ResponsePolicy policy)
{
    ownerOf(vid).setResponsePolicy(vid, policy);
}

void
ControllerFabric::restartAll()
{
    for (auto &shard : shards) {
        if (!shard->isUp())
            shard->restart();
    }
}

ControllerStats
ControllerFabric::aggregateStats() const
{
    ControllerStats total;
    for (const auto &shard : shards) {
        const ControllerStats &s = shard->stats();
        total.launchesRequested += s.launchesRequested;
        total.launchesSucceeded += s.launchesSucceeded;
        total.launchesRejected += s.launchesRejected;
        total.launchesRescheduled += s.launchesRescheduled;
        total.reportsRelayed += s.reportsRelayed;
        total.reportVerificationFailures += s.reportVerificationFailures;
        total.responsesTriggered += s.responsesTriggered;
        total.forwardRetries += s.forwardRetries;
        total.failovers += s.failovers;
        total.attestationsUnreachable += s.attestationsUnreachable;
        total.duplicateAttestRequests += s.duplicateAttestRequests;
        total.recoveries += s.recoveries;
        total.recoveredAttests += s.recoveredAttests;
        total.recoveredLaunches += s.recoveredLaunches;
        total.rttSamples += s.rttSamples;
    }
    return total;
}

} // namespace monatt::controller
