#include "controller/controller_fabric.h"

#include <stdexcept>

namespace monatt::controller
{

namespace
{
/** Golden-ratio stream splitter for per-replica RNG seeds. */
constexpr std::uint64_t kReplicaSeedStride = 0x9E3779B97F4A7C15ULL;
} // namespace

ControllerFabric::ControllerFabric(
    sim::EventQueue &eq, net::Network &network,
    net::KeyDirectory &directory,
    std::vector<CloudControllerConfig> shardConfigs,
    const std::vector<std::uint64_t> &seeds, int virtualNodes,
    int replicasPerShard, ElectionTuning election)
{
    if (shardConfigs.empty())
        throw std::invalid_argument("fabric needs at least one shard");
    if (shardConfigs.size() != seeds.size())
        throw std::invalid_argument("one seed per shard required");
    if (replicasPerShard < 1)
        throw std::invalid_argument("replicasPerShard must be >= 1");
    replicas_ = static_cast<std::size_t>(replicasPerShard);

    // The full ring must exist before any shard runs: vid allocation
    // consults it from the first launch. Only base ids go on the ring,
    // so replica membership never influences VM ownership.
    for (const CloudControllerConfig &cfg : shardConfigs)
        ownership.addNode(cfg.id, virtualNodes);

    nodes.reserve(shardConfigs.size() * replicas_);
    for (std::size_t k = 0; k < shardConfigs.size(); ++k) {
        std::vector<std::string> group;
        group.reserve(replicas_);
        for (std::size_t r = 0; r < replicas_; ++r)
            group.push_back(replicaId(shardConfigs[k].id,
                                      static_cast<int>(r)));
        for (std::size_t r = 0; r < replicas_; ++r) {
            CloudControllerConfig cfg = shardConfigs[k];
            cfg.id = group[r];
            cfg.shardIndex = static_cast<int>(k);
            cfg.ring = &ownership;
            cfg.groupIds = group;
            cfg.replicaIndex = static_cast<int>(r);
            cfg.election = election;
            if (replicas_ > 1)
                cfg.durable = true; // the journal is what streams
            if (r > 0) {
                // Preset keys were derived for the base id; secondary
                // replicas derive their own in the constructor.
                cfg.presetIdentityKeys.reset();
            }
            const std::uint64_t seed =
                seeds[k] ^ (static_cast<std::uint64_t>(r) *
                            kReplicaSeedStride);
            nodes.push_back(std::make_unique<CloudController>(
                eq, network, directory, std::move(cfg), seed));
        }
    }
}

CloudController *
ControllerFabric::shardById(const std::string &id)
{
    for (auto &node : nodes) {
        if (node->id() == id)
            return node.get();
    }
    return nullptr;
}

CloudController &
ControllerFabric::leaderOf(std::size_t shardIndex)
{
    const std::size_t base = shardIndex * replicas_;
    for (std::size_t r = 0; r < replicas_; ++r) {
        CloudController &node = *nodes.at(base + r);
        if (node.isUp() && node.role() == ReplicaRole::Leader)
            return node;
    }
    return *nodes.at(base); // mid-election: fall back to the primary
}

CloudController &
ControllerFabric::ownerOf(const std::string &vid)
{
    const std::string base = ownership.owner(vid);
    for (std::size_t k = 0; k < numShards(); ++k) {
        if (shard(k).groupId() == base)
            return leaderOf(k);
    }
    throw std::logic_error("ring names a node that is not a shard");
}

std::vector<std::string>
ControllerFabric::shardIds() const
{
    std::vector<std::string> ids;
    ids.reserve(numShards());
    for (std::size_t k = 0; k < numShards(); ++k)
        ids.push_back(shard(k).id());
    return ids;
}

std::vector<std::string>
ControllerFabric::allNodeIds() const
{
    std::vector<std::string> ids;
    ids.reserve(nodes.size());
    for (const auto &node : nodes)
        ids.push_back(node->id());
    return ids;
}

std::vector<std::string>
ControllerFabric::groupIds(std::size_t shardIndex) const
{
    std::vector<std::string> ids;
    ids.reserve(replicas_);
    const std::size_t base = shardIndex * replicas_;
    for (std::size_t r = 0; r < replicas_; ++r)
        ids.push_back(nodes.at(base + r)->id());
    return ids;
}

void
ControllerFabric::addFlavor(const std::string &name, std::uint32_t vcpus,
                            std::uint64_t ramMb, std::uint64_t diskGb)
{
    for (auto &node : nodes)
        node->addFlavor(name, vcpus, ramMb, diskGb);
}

void
ControllerFabric::addServerRecord(const ServerRecord &record)
{
    for (auto &node : nodes) {
        ServerRecord copy = record;
        node->database().addServer(std::move(copy));
    }
}

void
ControllerFabric::assignAttestationCluster(const std::string &serverId,
                                           const std::string &attestorId)
{
    for (auto &node : nodes)
        node->assignAttestationCluster(serverId, attestorId);
}

void
ControllerFabric::setResponsePolicy(const std::string &vid,
                                    ResponsePolicy policy)
{
    ownerOf(vid).setResponsePolicy(vid, policy);
}

void
ControllerFabric::restartAll()
{
    for (auto &node : nodes) {
        if (!node->isUp())
            node->restart();
    }
}

ControllerStats
ControllerFabric::aggregateStats() const
{
    ControllerStats total;
    for (const auto &node : nodes) {
        const ControllerStats &s = node->stats();
        total.launchesRequested += s.launchesRequested;
        total.launchesSucceeded += s.launchesSucceeded;
        total.launchesRejected += s.launchesRejected;
        total.launchesRescheduled += s.launchesRescheduled;
        total.reportsRelayed += s.reportsRelayed;
        total.reportVerificationFailures += s.reportVerificationFailures;
        total.responsesTriggered += s.responsesTriggered;
        total.forwardRetries += s.forwardRetries;
        total.failovers += s.failovers;
        total.attestationsUnreachable += s.attestationsUnreachable;
        total.duplicateAttestRequests += s.duplicateAttestRequests;
        total.recoveries += s.recoveries;
        total.recoveredAttests += s.recoveredAttests;
        total.recoveredLaunches += s.recoveredLaunches;
        total.rttSamples += s.rttSamples;
    }
    return total;
}

} // namespace monatt::controller
