#include "controller/election.h"

namespace monatt::controller
{

namespace
{

/** FNV-1a over (id, round) for the deterministic timeout jitter. */
std::uint64_t
fnvIdRound(const std::string &id, std::uint64_t round)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : id)
        h = (h ^ static_cast<std::uint8_t>(c)) * 0x100000001b3ULL;
    for (int i = 0; i < 8; ++i) {
        h = (h ^ (round & 0xff)) * 0x100000001b3ULL;
        round >>= 8;
    }
    return h;
}

} // namespace

ElectionState::ElectionState(std::string self,
                             std::vector<std::string> group,
                             ElectionTuning tuning)
    : self_(std::move(self)), group_(std::move(group)), tuning_(tuning)
{
}

SimTime
ElectionState::electionTimeout() const
{
    const SimTime window =
        tuning_.electionTimeoutMax > tuning_.electionTimeoutMin
            ? tuning_.electionTimeoutMax - tuning_.electionTimeoutMin
            : 1;
    const std::uint64_t jitter =
        fnvIdRound(self_, round_ + 1) %
        static_cast<std::uint64_t>(window);
    return tuning_.electionTimeoutMin +
           static_cast<SimTime>(jitter);
}

void
ElectionState::bootstrapLeader()
{
    round_ = 1;
    votedRound_ = 1;
    role_ = ReplicaRole::Leader;
    votes_.clear();
    prevotes_.clear();
}

void
ElectionState::startCandidacy()
{
    ++round_;
    votedRound_ = round_;
    role_ = ReplicaRole::PotentialLeader;
    votes_.clear();
    prevotes_.clear();
    votes_.insert(self_);
}

void
ElectionState::startPrevote()
{
    prevotes_.clear();
    prevotes_.insert(self_);
}

bool
ElectionState::considerPrevote(std::uint64_t candRound,
                               std::uint64_t candLastLogRound,
                               std::uint64_t candLastLsn,
                               std::uint64_t ownLastLogRound,
                               std::uint64_t ownLastLsn) const
{
    if (candRound <= round_)
        return false;
    return candLastLogRound > ownLastLogRound ||
           (candLastLogRound == ownLastLogRound &&
            candLastLsn >= ownLastLsn);
}

bool
ElectionState::recordPrevote(const std::string &voter)
{
    if (role_ == ReplicaRole::Leader)
        return false;
    prevotes_.insert(voter);
    return prevotes_.size() >= majority();
}

bool
ElectionState::considerVote(std::uint64_t candRound,
                            std::uint64_t candLastLogRound,
                            std::uint64_t candLastLsn,
                            std::uint64_t ownLastLogRound,
                            std::uint64_t ownLastLsn)
{
    if (candRound < round_ || candRound <= votedRound_)
        return false;
    const bool upToDate =
        candLastLogRound > ownLastLogRound ||
        (candLastLogRound == ownLastLogRound &&
         candLastLsn >= ownLastLsn);
    if (!upToDate) {
        // Still adopt the round so our next candidacy outbids it.
        observeRound(candRound);
        return false;
    }
    round_ = candRound;
    votedRound_ = candRound;
    role_ = ReplicaRole::Follower;
    votes_.clear();
    prevotes_.clear();
    return true;
}

bool
ElectionState::recordVote(const std::string &voter, std::uint64_t round)
{
    if (role_ != ReplicaRole::PotentialLeader || round != round_)
        return false;
    votes_.insert(voter);
    if (votes_.size() < majority())
        return false;
    role_ = ReplicaRole::Leader;
    return true;
}

bool
ElectionState::observeLeader(const std::string &leaderId,
                             std::uint64_t round)
{
    if (round < round_ || leaderId == self_)
        return false;
    const bool changed =
        round > round_ || role_ != ReplicaRole::Follower;
    round_ = round;
    if (role_ != ReplicaRole::Follower) {
        role_ = ReplicaRole::Follower;
        votes_.clear();
        prevotes_.clear();
    }
    return changed;
}

bool
ElectionState::observeRound(std::uint64_t round)
{
    if (round <= round_)
        return false;
    round_ = round;
    if (role_ != ReplicaRole::Follower) {
        role_ = ReplicaRole::Follower;
        votes_.clear();
        prevotes_.clear();
    }
    return true;
}

void
ElectionState::resetToFollower()
{
    role_ = ReplicaRole::Follower;
    votes_.clear();
    prevotes_.clear();
}

std::string
replicaId(const std::string &baseId, int index)
{
    if (index <= 0)
        return baseId;
    return baseId + "-replica-" + std::to_string(index);
}

} // namespace monatt::controller
