/**
 * @file
 * The Cloud Controller — the cloud manager (§3.2.2, §6.1).
 *
 * Implements the modified nova stack of the prototype: nova api
 * (customer launch + the four attestation commands of Table 1), nova
 * database (controller/database.h), the modified nova scheduler with
 * its property_filter (controller/policy.h), nova attest_service
 * (forwarding to the Attestation Server, report verification and
 * relay), and nova response (the remediation strategies of §5).
 *
 * VM launch runs the five stages of §7.1.1 — Scheduling, Networking,
 * Block_device_mapping, Spawning, and the new Attestation stage —
 * against the simulated clock, recording a per-stage StageTimer that
 * the Figure 9 bench reads back. Startup attestation outcomes drive
 * the §5.1 responses: platform integrity failure → reschedule to
 * another qualified server; image integrity failure → reject the
 * launch.
 */

#ifndef MONATT_CONTROLLER_CLOUD_CONTROLLER_H
#define MONATT_CONTROLLER_CLOUD_CONTROLLER_H

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "controller/database.h"
#include "controller/election.h"
#include "controller/policy.h"
#include "controller/replica_group.h"
#include "net/secure_endpoint.h"
#include "proto/messages.h"
#include "proto/timing_model.h"
#include "sim/checkpoint_policy.h"
#include "sim/event_queue.h"
#include "sim/stable_store.h"

namespace monatt::controller
{

class HashRing;

/** Remediation response policies (§5.2). */
enum class ResponsePolicy : std::uint8_t
{
    None = 0,       //!< Report only.
    Terminate = 1,  //!< #1: shut the VM down.
    Suspend = 2,    //!< #2: pause pending further checking.
    Migrate = 3,    //!< #3: move to another qualified server.
};

/** Human-readable policy name. */
std::string responsePolicyName(ResponsePolicy p);

/** One executed (or executing) remediation response. */
struct ResponseRecord
{
    std::string vid;
    ResponsePolicy action = ResponsePolicy::None;
    SimTime attestStart = 0;   //!< Attestation request forwarded.
    SimTime reportAt = 0;      //!< Negative report received.
    SimTime completedAt = 0;   //!< Response acknowledged.
    bool completed = false;
    bool succeeded = false;
    std::string detail;
    std::string targetServer; //!< Migration target (when applicable).
    std::vector<proto::SecurityProperty> triggerProperties;
    bool resumedAfterRecheck = false; //!< Suspension lifted (§5.2 #2).
};

/** Controller configuration. */
struct CloudControllerConfig
{
    std::string id = "cloud-controller";
    std::string attestationServerId = "attestation-server";
    proto::TimingModel timing;
    proto::ReliabilityModel reliability;
    std::size_t identityKeyBits = 512;
    int maxLaunchAttempts = 3;

    /**
     * Every Attestation Server in the cloud, in failover preference
     * order. When an AS exhausts its forward-retry budget the request
     * fails over to the next non-suspect AS here. Empty = just
     * attestationServerId (no failover possible).
     */
    std::vector<std::string> attestorIds;

    /**
     * §5.2 #2: after suspending a VM the controller "can initiate
     * further checking and also continue to attest the platform"; if
     * the health recovers it resumes the VM from the saved state.
     * Interval between re-checks of a suspended VM; 0 disables.
     */
    SimTime suspendRecheckPeriod = seconds(30);

    /**
     * Fan-in batching window for report crypto. Attestor reports
     * arriving within the window of the first one verify as one batch
     * on the compute plane, and customer relays issued within one
     * window share one signature fan-out; decisions and sends stay
     * serial in arrival order. 0 still batches work landing at the
     * same simulated timestamp.
     */
    SimTime batchWindow = 0;

    /**
     * Pre-generated identity keys (must equal
     * deriveIdentityKeys(id, seed, identityKeyBits)); empty derives
     * them in the constructor.
     */
    std::optional<crypto::RsaKeyPair> presetIdentityKeys;

    /**
     * Durable control plane: journal every database and protocol-state
     * mutation to a write-ahead StableStore and recover from it after
     * a crash. Journal appends cost zero simulated time and every
     * recovery action happens only after a crash, so clean-wire runs
     * are byte-identical with durability on or off.
     */
    bool durable = true;

    /**
     * Journal-compaction triggers (count / size / age); all axes 0 =
     * never checkpoint (journal grows without bound). Evaluated by a
     * shared sim::CheckpointPolicy at the end of every mutating
     * event handler.
     */
    sim::CheckpointPolicyConfig checkpointPolicy;

    /** Capacity of the customer relay dedup cache (bounded FIFO). */
    std::size_t relayCacheCapacity = 128;

    /**
     * Sharded control plane (set by ControllerFabric). `ring` is the
     * fabric's consistent-hash ownership ring — non-owning, must
     * outlive the controller; nullptr runs the classic unsharded
     * controller. A sharded controller allocates only vids the ring
     * maps to itself and tags attest ids with the shard index so they
     * stay globally unique across shards. Shard 0 keeps the untagged
     * legacy id space, which is what makes a 1-shard fabric
     * bit-identical to the single controller.
     */
    int shardIndex = 0;
    const HashRing *ring = nullptr;

    /**
     * Replica group this controller belongs to (set by
     * ControllerFabric): every replica id of the shard, index 0 = the
     * primary, whose id is the shard's base id and who boots as the
     * round-1 leader. `replicaIndex` is this node's position. Empty
     * or size-1 runs the classic unreplicated controller — no
     * replication traffic, no timers, byte-identical behavior.
     * Replication requires `durable` (the journal is what streams).
     */
    std::vector<std::string> groupIds;
    int replicaIndex = 0;
    ElectionTuning election;

    /**
     * Wire codec this node speaks (DESIGN.md §17). Legacy is the
     * canonical fixed-width codec and the default; Tagged is the
     * schema-evolvable opt-in. Receivers decode either format from
     * the frame itself, so nodes can be upgraded one at a time.
     */
    proto::WireContext wire;
};

/** Observable counters. */
struct ControllerStats
{
    std::uint64_t launchesRequested = 0;
    std::uint64_t launchesSucceeded = 0;
    std::uint64_t launchesRejected = 0;
    std::uint64_t launchesRescheduled = 0;
    std::uint64_t reportsRelayed = 0;
    std::uint64_t reportVerificationFailures = 0;
    std::uint64_t responsesTriggered = 0;
    std::uint64_t forwardRetries = 0;       //!< AttestForward resends.
    std::uint64_t failovers = 0;            //!< Requests moved to another AS.
    std::uint64_t attestationsUnreachable = 0; //!< Terminal give-ups.
    std::uint64_t duplicateAttestRequests = 0; //!< Dedup'd customer sends.
    std::uint64_t recoveries = 0;          //!< Journal replays completed.
    std::uint64_t corruptRecoveries = 0;   //!< Recoveries that healed a
                                           //!< torn/rotted durable image.
    std::uint64_t recoveredAttests = 0;    //!< Attestations re-armed.
    std::uint64_t recoveredLaunches = 0;   //!< Launches re-driven.
    std::uint64_t rttSamples = 0;          //!< Per-attestor RTT samples.
    std::uint64_t tcbRollbackReports = 0;  //!< Reports with a TcbRollback
                                           //!< verdict (stale firmware).
    std::uint64_t serversQuarantined = 0;  //!< Hosts evicted for stale TCB.
};

/** The Cloud Controller entity. */
class CloudController
{
  public:
    CloudController(sim::EventQueue &eq, net::Network &network,
                    net::KeyDirectory &directory,
                    CloudControllerConfig config, std::uint64_t seed);

    /** Deterministic identity-key derivation (see presetIdentityKeys). */
    static crypto::RsaKeyPair deriveIdentityKeys(const std::string &id,
                                                 std::uint64_t seed,
                                                 std::size_t bits);

    const std::string &id() const { return cfg.id; }

    /** Identity public key VKc. */
    const crypto::RsaPublicKey &identityPublic() const
    {
        return keys.pub;
    }

    /** The cloud database (provisioned by the cloud operator). */
    CloudDatabase &database() { return db; }
    const CloudDatabase &database() const { return db; }

    /** Set the remediation policy applied to a VM's bad reports. */
    void setResponsePolicy(const std::string &vid, ResponsePolicy policy);

    /** Register a flavor (vCPUs / RAM / disk) customers may request. */
    void addFlavor(const std::string &name, std::uint32_t vcpus,
                   std::uint64_t ramMb, std::uint64_t diskGb);

    /**
     * Map a cloud server to the Attestation Server of its cluster
     * (§3.2.3: "There can be different Attestation Servers for
     * different clusters of cloud servers, enabling scalability").
     * Unmapped servers use the default attestation server.
     */
    void assignAttestationCluster(const std::string &serverId,
                                  const std::string &attestorId);

    /** Executed responses (Figure 11 reads the timings). */
    const std::vector<ResponseRecord> &responseLog() const
    {
        return responses;
    }

    const ControllerStats &stats() const { return counters; }

    /**
     * Simulated crash: detach from the network and drop all volatile
     * state plus the un-fsynced journal tail. Provisioned operator
     * config (flavors, clusters, the server inventory rows) survives
     * like files on disk; everything else must come back via
     * restart() -> recover().
     */
    void crash();

    /** Restart after crash(): re-attach and replay the journal. */
    void restart();

    /** True while attached to the network (false between crash and
     * restart). */
    bool isUp() const { return endpoint.attached(); }

    /** The controller's durable store (journal + checkpoints). */
    const sim::StableStore &stableStore() const { return store; }

    /** Install the disk-failure model on the store (nullptr = clean
     * disk). Wired by core::Cloud when a fault plan is installed. */
    void setStorageFaults(const sim::StorageFaultModel *model)
    {
        store.setFaultModel(model);
    }

    /** Replica-group introspection. */
    bool replicated() const { return cfg.groupIds.size() > 1; }
    ReplicaRole role() const { return election.role(); }
    std::uint64_t electionRound() const { return election.round(); }

    /** The shard's base id (== cfg.id on the primary / unreplicated). */
    const std::string &groupId() const
    {
        return cfg.groupIds.empty() ? cfg.id : cfg.groupIds.front();
    }

    /** Majority-durable output cursor (leader side). */
    std::uint64_t committedLsn() const { return commitLsn_; }

    /** Relay dedup cache introspection (bounds tests). */
    std::size_t relayCacheSize() const { return relayCache.size(); }

    /** Cached customer request ids in FIFO eviction order. */
    std::vector<std::uint64_t> relayCacheRequestIds() const
    {
        std::vector<std::uint64_t> ids;
        ids.reserve(relayOrder.size());
        for (const CustomerKey &key : relayOrder)
            ids.push_back(key.second);
        return ids;
    }

    /** Wire codec this node emits (mixed-version tests flip it at
     * runtime to simulate a rolling upgrade; received frames are
     * always decoded by their own self-described format). */
    const proto::WireContext &wireContext() const { return cfg.wire; }
    void setWireContext(const proto::WireContext &ctx) { cfg.wire = ctx; }

    /** Observed RTT estimate toward an attestor; nullptr when none. */
    const proto::RttEstimator *
    attestorRttEstimate(const std::string &attestorId) const
    {
        const auto it = attestorRtt.find(attestorId);
        return it == attestorRtt.end() ? nullptr : &it->second;
    }

  private:
    /** Why an attestation was initiated. */
    enum class AttestKind { StartupLaunch, CustomerRequest,
                            SuspendRecheck };

    struct AttestContext
    {
        AttestKind kind = AttestKind::CustomerRequest;
        std::string vid;
        net::NodeId customer;
        std::uint64_t customerRequestId = 0;
        Bytes nonce1;
        Bytes nonce2;
        std::vector<proto::SecurityProperty> properties;
        proto::AttestMode mode = proto::AttestMode::RuntimeOneTime;
        SimTime period = 0;
        SimTime forwardedAt = 0;
        bool periodic = false;
        std::string serverId;   //!< Server the forward targeted.
        std::string attestorId; //!< AS currently responsible.
        int retries = 0;
        int failovers = 0;
        bool acked = false;          //!< A verified report arrived.
        bool recovered = false;      //!< Re-armed after a crash (skip
                                     //!< RTT sampling: the send time
                                     //!< spans the outage).
        sim::EventId retryTimer = 0; //!< 0 = none pending.
    };

    /** Per-AS responsiveness tracking (suspects are skipped for
     * failover targets until they answer again). */
    struct AsHealth
    {
        int strikes = 0;
        bool suspect = false;
    };

    struct PendingLaunch
    {
        std::uint64_t customerRequestId = 0;
        net::NodeId customer;
        std::set<std::string> excludedServers;
    };

    void handleMessage(const net::NodeId &from, const Bytes &plaintext);

    /** Pack an outgoing message in this node's configured format. */
    template <typename M>
    Bytes pack(proto::MessageKind kind, const M &msg) const
    {
        return proto::packFor(cfg.wire, kind, msg);
    }

    /** Format of the frame currently being dispatched. handleMessage
     * sets it before the synchronous handler call, so every decode
     * inside the handler reads the sender's self-described format. */
    proto::WireFormat rxFormat_ = proto::WireFormat::Legacy;

    // --- Replication (replica groups) ------------------------------

    /**
     * Send an externally visible protocol message. Unreplicated:
     * sends immediately (byte-identical to the classic controller).
     * Replicated leader: stages the send; commitJournal() tags it
     * with the journal LSN it depends on and it leaves the node only
     * once that LSN is durable on a majority — the output-commit rule
     * that makes customer-visible state crash-proof. Replicated
     * non-leaders drop the send (only the leader speaks).
     */
    void sendExternal(const net::NodeId &peer, Bytes packed);

    /** True when `node` is a member of this controller's group. */
    bool isGroupMember(const net::NodeId &node) const;

    /** Group members except this node. */
    std::vector<std::string> followerIds() const;

    void onReplicateEntries(const net::NodeId &from, const Bytes &body);
    void onReplicateAck(const net::NodeId &from, const Bytes &body);
    void onVoteRequest(const net::NodeId &from, const Bytes &body);
    void onVoteGrant(const net::NodeId &from, const Bytes &body);

    /** Reply NotLeader to a customer request landing on a non-leader. */
    void sendNotLeader(const net::NodeId &customer,
                       std::uint64_t requestId, bool isLaunch);

    /** Stream the journal suffix (or a snapshot) to one follower. */
    void streamToFollower(const std::string &follower);

    /** Stream any un-streamed durable suffix to every follower. */
    void replicateToFollowers();

    /** Recompute the majority cursor; release gated sends up to it. */
    void advanceCommit();
    void releaseCommitted();

    void becomeLeader();

    /** Leader deposed by a higher round: era-fence pending work,
     *  drop volatile state and gated output, rejoin as follower. */
    void stepDownToFollower();

    void armHeartbeat();
    void armElectionTimer();
    void heartbeatFired();
    void electionTimerFired();

    /** Pre-vote majority reached: bump the round and run for real. */
    void openCandidacy();

    void onLaunchRequest(const net::NodeId &from, const Bytes &body);
    void onAttestRequest(const net::NodeId &from, const Bytes &body);
    void onLaunchVmAck(const net::NodeId &from, const Bytes &body);
    void onReportToController(const net::NodeId &from, const Bytes &body);
    void flushReportBatch();
    void flushRelayBatch();
    void onCommandAck(proto::MessageKind kind, const Bytes &body);

    void runSchedulingStage(const std::string &vid);
    void startSpawn(const std::string &vid);
    void startStartupAttestation(const std::string &vid);

    /**
     * Next vid owned by this shard: scans the global "vm-N" sequence
     * and claims only numbers the ring maps here. Shards partition the
     * vid space, so allocation never collides; unsharded (or 1-shard)
     * controllers claim every number, exactly like the pre-sharding
     * allocator.
     */
    std::string allocateVid();

    /** Tag a fresh attest counter value with the shard index (high 16
     * bits) so attest ids are globally unique across shards. Shard 0
     * ids are the untagged legacy counter. */
    std::uint64_t makeAttestId(std::uint64_t counter) const;

    /**
     * Serialize `cost` through this node's single service cursor and
     * return the delay until completion. Models the controller as one
     * event-loop node of finite capacity: work arriving while earlier
     * work is still being processed queues behind it. With at most one
     * request outstanding the delay equals `cost`, so sequential
     * scenarios are identical to the pre-queueing flat charge.
     */
    SimTime serviceDelay(SimTime cost);

    /** (Re)send the AttestForward of an outstanding attestation to its
     * current attestor, rebuilt from the stored context (same nonce2,
     * so a late reply to any copy verifies). */
    void transmitForward(std::uint64_t attestId);

    /** Arm the forward retransmission timer. */
    void scheduleForwardRetry(std::uint64_t attestId);

    /** Timer body: retry, fail over, or give up. */
    void forwardRetryFired(std::uint64_t attestId);

    /** Terminal give-up: deliver a definitive non-verdict. */
    void giveUpAttestation(std::uint64_t attestId);

    /** Send (and cache) an AttestFailure to a customer. */
    void sendAttestFailure(const net::NodeId &customer,
                           std::uint64_t requestId,
                           const std::string &vid,
                           proto::FailureOutcome outcome,
                           const std::string &reason);

    /** All Attestation Servers this controller may use. */
    std::vector<std::string> knownAttestors() const;

    /** True when `node` is one of the cloud's Attestation Servers. */
    bool isKnownAttestor(const net::NodeId &node) const;

    /** Next failover target: first non-suspect AS != `current` (any
     * AS != current when all are suspect); empty when none exists. */
    std::string alternativeAttestor(const std::string &current) const;
    void finishLaunch(const std::string &vid, bool ok,
                      const std::string &error);
    void rescheduleLaunch(const std::string &vid,
                          const std::string &reason);
    std::uint64_t forwardAttestation(AttestContext ctx);
    void handleStartupReport(const AttestContext &ctx,
                             const proto::ReportToController &msg);
    void handleCustomerReport(std::uint64_t attestId,
                              const AttestContext &ctx,
                              const proto::ReportToController &msg);
    /**
     * Start a §5 remediation for a negative report. `forceMigrate`
     * overrides the per-VM policy with Migrate — the rollback response:
     * a VM on firmware the appraiser refuses must leave the host even
     * when its customer never opted into a response policy.
     */
    void triggerResponse(const std::string &vid, SimTime attestStart,
                         const std::string &why,
                         const std::vector<proto::SecurityProperty>
                             &triggerProperties,
                         bool forceMigrate = false);

    /** Evict a host from scheduling after a rollback verdict. The
     * flag rides the journaled ServerRecord, so the decision survives
     * crash/recovery and replicates to shard followers. */
    void quarantineServer(const std::string &serverId,
                          const std::string &why);
    void executeMigration(const std::string &vid, std::size_t logIndex);
    void scheduleSuspendRecheck(const std::string &vid,
                                std::size_t logIndex);
    void handleRecheckReport(const AttestContext &ctx,
                             const proto::ReportToController &msg);

    /** Attestation Server responsible for a cloud server (clusters,
     * §3.2.3); falls back to cfg.attestationServerId. */
    const std::string &attestorFor(const std::string &serverId) const;

    /** Compiled attestor verification key, rebuilt on rotation. */
    const crypto::RsaPublicContext &attestorContext(
        const std::string &attestorId, const crypto::RsaPublicKey &key);

    /**
     * Seamless monitoring across migration (§1: "A seamless
     * monitoring mechanism throughout the VMs' lifetime is therefore
     * highly desirable"): re-target every active periodic attestation
     * of `vid` from `oldServer` to the VM's new server, stopping the
     * stale task on the old cluster's attestor when the cluster
     * changed.
     */
    void retargetPeriodicAttestations(const std::string &vid,
                                      const std::string &oldServer);

    sim::EventQueue &events;
    CloudControllerConfig cfg;
    crypto::RsaKeyPair keys;
    /** Compiled identity key for customer-relay signatures. */
    crypto::RsaPrivateContext signCtx;
    const net::KeyDirectory &dir;
    net::SecureEndpoint endpoint;
    CloudDatabase db;
    Rng rng;
    std::map<std::string, crypto::RsaPublicContext> attestorCtxCache;

    struct FlavorSpec
    {
        std::uint32_t vcpus;
        std::uint64_t ramMb;
        std::uint64_t diskGb;
    };

    std::map<std::string, FlavorSpec> flavors;
    std::map<std::string, std::string> clusters; //!< server -> AS id.
    std::map<std::string, PendingLaunch> launches; //!< By vid.
    std::map<std::uint64_t, AttestContext> attests; //!< By attest id.
    std::map<std::string, ResponsePolicy> policies; //!< By vid.
    std::vector<ResponseRecord> responses;

    /** Outstanding response command: vid -> response log index. */
    std::map<std::string, std::size_t> outstandingResponses;

    /** Fan-in batches (see CloudControllerConfig::batchWindow). */
    std::vector<proto::ReportToController> reportQueue;
    bool reportFlushScheduled = false;
    struct PendingRelay
    {
        proto::ReportToCustomer out;
        net::NodeId customer;
        bool cacheable = false; //!< One-time request: cache the relay.
    };
    std::vector<PendingRelay> relayQueue;
    bool relayFlushScheduled = false;

    /** AS responsiveness, keyed by attestor id. */
    std::map<std::string, AsHealth> asHealth;

    /**
     * Receive-side dedup for customer AttestRequests, keyed by
     * (customer, customer request id): in-flight requests swallow
     * retransmissions; completed ones are answered by re-sending the
     * cached packed reply (ReportToCustomer or AttestFailure) without
     * re-signing. Bounded FIFO.
     */
    using CustomerKey = std::pair<net::NodeId, std::uint64_t>;
    std::set<CustomerKey> customerInFlight;
    std::map<CustomerKey, Bytes> relayCache;
    std::deque<CustomerKey> relayOrder; //!< FIFO eviction order; bounded
                                        //!< by cfg.relayCacheCapacity.

    /** Cache a packed customer reply and clear its in-flight mark. */
    void rememberRelay(const CustomerKey &key, Bytes packed);

    // --- Durability (write-ahead journal) ------------------------------

    /** Journal record types (StableStore payload tags). */
    enum class JournalType : std::uint16_t
    {
        Meta = 1,         //!< nextVmNumber / nextAttestId counters.
        VmUpsert = 2,     //!< Full VmRecord (or remove when absent).
        VmRemove = 3,
        ServerUpsert = 4, //!< Full ServerRecord (allocation changes).
        PolicySet = 5,
        LaunchUpsert = 6, //!< PendingLaunch (or remove when absent).
        LaunchRemove = 7,
        AttestUpsert = 8, //!< AttestContext (or remove when absent).
        AttestRemove = 9,
        ResponseUpsert = 10, //!< Response log entry by index.
        AsHealthSet = 11,
        RelayRemember = 12, //!< Cached customer reply (FIFO on replay).
    };

    /** WAL helpers: append the current value of one state item. Each
     * upsert helper journals a remove when the item no longer exists,
     * so one call site covers both mutations. No-ops when durability
     * is off or during replay. */
    void journalMeta();
    void journalVm(const std::string &vid);
    void journalServer(const std::string &serverId);
    void journalPolicy(const std::string &vid);
    void journalLaunch(const std::string &vid);
    void journalAttest(std::uint64_t attestId);
    void journalResponse(std::size_t index);
    void journalAsHealth(const std::string &attestorId);
    void journalRelay(const CustomerKey &key, const Bytes &packed);

    /** Fsync barrier + checkpoint policy; called at the end of every
     * event-handler body so no externally visible state is lost. */
    void commitJournal();

    /** Full-state snapshot for checkpoints. */
    Bytes snapshotState() const;
    void applySnapshot(const Bytes &snapshot);
    void applyJournalRecord(const sim::JournalRecord &rec);

    /** Replay snapshot + journal, then re-arm recovered work. */
    void recover();
    void rearmRecoveredWork();

    /** Re-send the remediation command of an incomplete response. */
    void resendResponseCommand(std::size_t logIndex);

    Bytes encodeAttestContext(const AttestContext &ctx) const;
    bool decodeAttestContext(const Bytes &data, AttestContext &out) const;
    Bytes encodePendingLaunch(const std::string &vid,
                              const PendingLaunch &launch) const;
    bool decodePendingLaunch(const Bytes &data, std::string &vid,
                             PendingLaunch &out) const;
    Bytes encodeResponseRecord(const ResponseRecord &rec) const;
    bool decodeResponseRecord(const Bytes &data, ResponseRecord &out) const;

    // Tagged-field variants (journal records written by a Tagged-format
    // node; the record's type word carries proto::kTaggedJournalBit).
    Bytes encodeAttestContextTagged(const AttestContext &ctx) const;
    bool decodeAttestContextTagged(const Bytes &data,
                                   AttestContext &out) const;
    Bytes encodePendingLaunchTagged(const std::string &vid,
                                    const PendingLaunch &launch) const;
    bool decodePendingLaunchTagged(const Bytes &data, std::string &vid,
                                   PendingLaunch &out) const;
    Bytes encodeResponseRecordTagged(const ResponseRecord &rec) const;
    bool decodeResponseRecordTagged(const Bytes &data,
                                    ResponseRecord &out) const;

    /** True when this node writes tagged journal payloads. */
    bool taggedJournal() const
    {
        return cfg.wire.format == proto::WireFormat::Tagged;
    }

    /** StableStore type word for a record in this node's format. */
    std::uint16_t journalTag(JournalType t) const
    {
        return static_cast<std::uint16_t>(t) |
               (taggedJournal() ? proto::kTaggedJournalBit
                                : std::uint16_t{0});
    }

    sim::StableStore store;
    sim::CheckpointPolicy ckptPolicy;
    /** Incremented on every crash; scheduled lambdas capture the era
     * they were created in and bail when it changed, so pre-crash
     * callbacks cannot double-act on recovered state. */
    std::uint64_t era = 0;
    bool replaying = false; //!< recover() in progress: journal muted.

    // --- Replication (replica groups) ------------------------------

    ElectionState election;
    ReplicaLedger ledger;       //!< Leader-side follower ack cursors.
    std::string knownLeader;    //!< Best-known group leader id.
    std::uint64_t commitLsn_ = 0;       //!< Majority-durable cursor.
    std::uint64_t lastStreamedLsn = 0;  //!< Leader stream high-water.
    /** Round that produced the last durable journal entry (leader:
     * its own round on append; follower: the streaming leader's). */
    std::uint64_t mirrorRound = 0;
    sim::EventId heartbeatTimer = 0; //!< 0 = none pending.
    sim::EventId electionTimer = 0;  //!< 0 = none pending.
    /** Consecutive heartbeats per follower without any ReplicateAck.
     * A restarted follower loses its channel session keys and rejects
     * records sealed under the old ones; after kSilentBeatLimit silent
     * beats the leader resets the channel and re-handshakes. */
    std::map<std::string, int> followerSilence;
    static constexpr int kSilentBeatLimit = 3;

    /** When we last accepted a stream from the group leader. Recent
     *  contact (within electionTimeoutMin) denies pre-vote probes, so
     *  a replica that is merely resyncing after a restart can never
     *  depose a live leader. */
    SimTime lastLeaderContact = 0;

    struct StagedSend
    {
        net::NodeId peer;
        Bytes packed;
    };
    /** Sends made by the current handler, awaiting commitJournal(). */
    std::vector<StagedSend> stagedSends;

    struct GatedSend
    {
        std::uint64_t lsn = 0;
        net::NodeId peer;
        Bytes packed;
    };
    /** FIFO of sends awaiting majority ack of their LSN. */
    std::deque<GatedSend> outputGate;

    /** Per-attestor observed round-trip estimate (volatile; adaptive
     * RTOs fall back to the fixed knob until fresh samples arrive). */
    std::map<std::string, proto::RttEstimator> attestorRtt;

    std::uint64_t nextVmNumber = 1;
    std::uint64_t nextAttestId = 1;

    /** Busy-until cursor backing serviceDelay(); volatile (reset on
     * crash — a rebooted node starts idle). */
    SimTime busyUntil = 0;
    ControllerStats counters;
};

} // namespace monatt::controller

#endif // MONATT_CONTROLLER_CLOUD_CONTROLLER_H
