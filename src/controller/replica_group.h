/**
 * @file
 * Leader-side replication ledger for a controller replica group.
 *
 * The shard leader tracks, per follower, the highest journal LSN the
 * follower has acknowledged as durable. The commit rule is the
 * standard majority cursor: a record at LSN L is committed once a
 * strict majority of the group (leader included) holds L durably —
 * i.e. commitLsn is the majority-th largest of {leader's durable LSN}
 * ∪ {follower acks}. With two of three replicas down the set of
 * durable copies can never reach a majority, so the cursor refuses to
 * advance — the property tests/controller/replica_group_test.cpp
 * pins.
 *
 * The ledger is pure bookkeeping (no timers, no messages); the
 * CloudController leader drives it from its replication handlers and
 * gates externally visible output on the cursor.
 */

#ifndef MONATT_CONTROLLER_REPLICA_GROUP_H
#define MONATT_CONTROLLER_REPLICA_GROUP_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace monatt::controller
{

/** Per-follower ack cursors + the majority commit rule. */
class ReplicaLedger
{
  public:
    ReplicaLedger() = default;

    /** @param followers All group members except the leader. */
    explicit ReplicaLedger(std::vector<std::string> followers);

    /** Forget all progress (leadership change / restart). */
    void reset(std::vector<std::string> followers);

    /** Record a cumulative ack; acks never move backwards. */
    void recordAck(const std::string &follower, std::uint64_t lastLsn);

    /** Highest LSN `follower` has acknowledged (0 when unknown). */
    std::uint64_t ackOf(const std::string &follower) const;

    /**
     * Majority-durable cursor for a group of `groupSize` replicas,
     * where the leader itself holds `leaderLsn` durably. Returns the
     * majority-th largest durable LSN across the group; 0 until a
     * majority holds anything.
     */
    std::uint64_t commitLsn(std::uint64_t leaderLsn,
                            std::size_t groupSize) const;

    const std::map<std::string, std::uint64_t> &acks() const
    {
        return acks_;
    }

  private:
    std::map<std::string, std::uint64_t> acks_;
};

} // namespace monatt::controller

#endif // MONATT_CONTROLLER_REPLICA_GROUP_H
