#include "controller/hash_ring.h"

#include "crypto/sha256.h"

namespace monatt::controller
{

std::uint64_t
HashRing::hashKey(const std::string &key)
{
    Bytes data(key.begin(), key.end());
    const Bytes digest = crypto::Sha256::hash(data);
    std::uint64_t h = 0;
    for (int i = 0; i < 8; ++i)
        h = (h << 8) | digest[static_cast<std::size_t>(i)];
    return h;
}

void
HashRing::addNode(const std::string &nodeId, int virtualNodes)
{
    if (perNode.count(nodeId) != 0)
        return;
    std::vector<std::uint64_t> placed;
    placed.reserve(static_cast<std::size_t>(virtualNodes));
    for (int i = 0; i < virtualNodes; ++i) {
        std::uint64_t point =
            hashKey(nodeId + "#" + std::to_string(i));
        // Ties across nodes are astronomically unlikely but must not
        // silently change ownership of an existing point; probe to the
        // next free slot so insertion order cannot matter.
        while (points.count(point) != 0)
            ++point;
        points.emplace(point, nodeId);
        placed.push_back(point);
    }
    perNode.emplace(nodeId, std::move(placed));
}

void
HashRing::removeNode(const std::string &nodeId)
{
    auto it = perNode.find(nodeId);
    if (it == perNode.end())
        return;
    for (std::uint64_t point : it->second)
        points.erase(point);
    perNode.erase(it);
}

bool
HashRing::contains(const std::string &nodeId) const
{
    return perNode.count(nodeId) != 0;
}

const std::string &
HashRing::owner(const std::string &key) const
{
    static const std::string kEmpty;
    if (points.empty())
        return kEmpty;
    auto it = points.lower_bound(hashKey(key));
    if (it == points.end())
        it = points.begin();
    return it->second;
}

std::vector<std::string>
HashRing::nodes() const
{
    std::vector<std::string> out;
    out.reserve(perNode.size());
    for (const auto &[id, placed] : perNode)
        out.push_back(id);
    return out;
}

} // namespace monatt::controller
