/**
 * @file
 * The Policy Validation Module (§3.2.2, §6.1).
 *
 * "The Policy Validation Module in the Controller selects qualified
 * servers for customers' requested VMs. These servers need to both
 * satisfy the VMs' demanded physical resources, as well as support
 * the requested security properties and their property monitoring
 * services." The prototype's `property_filter` is the capability
 * check; the resource filter mirrors OpenStack's RAM/disk filters;
 * qualified servers are ranked by free RAM (the default OpenStack
 * spread policy the paper mentions: "choose the server with the most
 * remaining physical resources, to achieve workload balance").
 */

#ifndef MONATT_CONTROLLER_POLICY_H
#define MONATT_CONTROLLER_POLICY_H

#include <set>
#include <string>
#include <vector>

#include "controller/database.h"

namespace monatt::controller
{

/** A VM's placement requirements. */
struct PlacementRequirements
{
    std::uint64_t ramMb = 0;
    std::uint64_t diskGb = 0;
    std::vector<proto::SecurityProperty> properties;
};

/** The policy validation module. */
class PolicyValidationModule
{
  public:
    /**
     * Servers qualified to host the VM, best (most free RAM) first.
     *
     * @param db The cloud database (capability + resource tables).
     * @param req Resource and security-property requirements.
     * @param exclude Server ids to skip (e.g. the compromised source
     *        during a migration response).
     */
    static std::vector<std::string> qualifiedServers(
        const CloudDatabase &db, const PlacementRequirements &req,
        const std::set<std::string> &exclude = {});

    /** True when one server satisfies the requirements. */
    static bool qualifies(const ServerRecord &server,
                          const PlacementRequirements &req);
};

} // namespace monatt::controller

#endif // MONATT_CONTROLLER_POLICY_H
