#include "controller/database.h"

#include <stdexcept>

namespace monatt::controller
{

std::string
vmStatusName(VmStatus s)
{
    switch (s) {
      case VmStatus::Scheduling:
        return "scheduling";
      case VmStatus::Networking:
        return "networking";
      case VmStatus::Mapping:
        return "block_device_mapping";
      case VmStatus::Spawning:
        return "spawning";
      case VmStatus::Attesting:
        return "attestation";
      case VmStatus::Running:
        return "running";
      case VmStatus::Suspended:
        return "suspended";
      case VmStatus::Migrating:
        return "migrating";
      case VmStatus::Terminated:
        return "terminated";
      case VmStatus::Failed:
        return "failed";
    }
    return "unknown";
}

void
CloudDatabase::addServer(ServerRecord record)
{
    servers[record.id] = std::move(record);
}

ServerRecord *
CloudDatabase::server(const std::string &id)
{
    const auto it = servers.find(id);
    return it == servers.end() ? nullptr : &it->second;
}

const ServerRecord *
CloudDatabase::server(const std::string &id) const
{
    const auto it = servers.find(id);
    return it == servers.end() ? nullptr : &it->second;
}

std::vector<std::string>
CloudDatabase::serverIds() const
{
    std::vector<std::string> ids;
    ids.reserve(servers.size());
    for (const auto &[id, rec] : servers)
        ids.push_back(id);
    return ids;
}

void
CloudDatabase::addVm(VmRecord record)
{
    vms[record.vid] = std::move(record);
}

VmRecord *
CloudDatabase::vm(const std::string &vid)
{
    const auto it = vms.find(vid);
    return it == vms.end() ? nullptr : &it->second;
}

const VmRecord *
CloudDatabase::vm(const std::string &vid) const
{
    const auto it = vms.find(vid);
    return it == vms.end() ? nullptr : &it->second;
}

void
CloudDatabase::removeVm(const std::string &vid)
{
    vms.erase(vid);
}

std::vector<std::string>
CloudDatabase::vmIds() const
{
    std::vector<std::string> ids;
    ids.reserve(vms.size());
    for (const auto &[vid, rec] : vms)
        ids.push_back(vid);
    return ids;
}

void
CloudDatabase::allocate(const std::string &serverId, std::uint64_t ramMb,
                        std::uint64_t diskGb)
{
    ServerRecord *rec = server(serverId);
    if (!rec)
        throw std::out_of_range("allocate: unknown server " + serverId);
    rec->allocatedRamMb += ramMb;
    rec->allocatedDiskGb += diskGb;
}

void
CloudDatabase::release(const std::string &serverId, std::uint64_t ramMb,
                       std::uint64_t diskGb)
{
    ServerRecord *rec = server(serverId);
    if (!rec)
        return;
    rec->allocatedRamMb -= std::min(rec->allocatedRamMb, ramMb);
    rec->allocatedDiskGb -= std::min(rec->allocatedDiskGb, diskGb);
}

} // namespace monatt::controller
