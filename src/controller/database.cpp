#include "controller/database.h"

#include <stdexcept>

#include "common/codec.h"
#include "common/wire.h"

namespace monatt::controller
{

std::string
vmStatusName(VmStatus s)
{
    switch (s) {
      case VmStatus::Scheduling:
        return "scheduling";
      case VmStatus::Networking:
        return "networking";
      case VmStatus::Mapping:
        return "block_device_mapping";
      case VmStatus::Spawning:
        return "spawning";
      case VmStatus::Attesting:
        return "attestation";
      case VmStatus::Running:
        return "running";
      case VmStatus::Suspended:
        return "suspended";
      case VmStatus::Migrating:
        return "migrating";
      case VmStatus::Terminated:
        return "terminated";
      case VmStatus::Failed:
        return "failed";
    }
    return "unknown";
}

void
CloudDatabase::addServer(ServerRecord record)
{
    servers[record.id] = std::move(record);
}

ServerRecord *
CloudDatabase::server(const std::string &id)
{
    const auto it = servers.find(id);
    return it == servers.end() ? nullptr : &it->second;
}

const ServerRecord *
CloudDatabase::server(const std::string &id) const
{
    const auto it = servers.find(id);
    return it == servers.end() ? nullptr : &it->second;
}

std::vector<std::string>
CloudDatabase::serverIds() const
{
    std::vector<std::string> ids;
    ids.reserve(servers.size());
    for (const auto &[id, rec] : servers)
        ids.push_back(id);
    return ids;
}

void
CloudDatabase::addVm(VmRecord record)
{
    vms[record.vid] = std::move(record);
}

VmRecord *
CloudDatabase::vm(const std::string &vid)
{
    const auto it = vms.find(vid);
    return it == vms.end() ? nullptr : &it->second;
}

const VmRecord *
CloudDatabase::vm(const std::string &vid) const
{
    const auto it = vms.find(vid);
    return it == vms.end() ? nullptr : &it->second;
}

void
CloudDatabase::removeVm(const std::string &vid)
{
    vms.erase(vid);
}

std::vector<std::string>
CloudDatabase::vmIds() const
{
    std::vector<std::string> ids;
    ids.reserve(vms.size());
    for (const auto &[vid, rec] : vms)
        ids.push_back(vid);
    return ids;
}

void
CloudDatabase::allocate(const std::string &serverId, std::uint64_t ramMb,
                        std::uint64_t diskGb)
{
    ServerRecord *rec = server(serverId);
    if (!rec)
        throw std::out_of_range("allocate: unknown server " + serverId);
    rec->allocatedRamMb += ramMb;
    rec->allocatedDiskGb += diskGb;
}

void
CloudDatabase::release(const std::string &serverId, std::uint64_t ramMb,
                       std::uint64_t diskGb)
{
    ServerRecord *rec = server(serverId);
    if (!rec)
        return;
    rec->allocatedRamMb -= std::min(rec->allocatedRamMb, ramMb);
    rec->allocatedDiskGb -= std::min(rec->allocatedDiskGb, diskGb);
}

namespace
{

void
putProperties(ByteWriter &w,
              const std::vector<proto::SecurityProperty> &props)
{
    w.putU32(static_cast<std::uint32_t>(props.size()));
    for (proto::SecurityProperty p : props)
        w.putU8(static_cast<std::uint8_t>(p));
}

bool
getProperties(ByteReader &r, std::vector<proto::SecurityProperty> &props)
{
    auto count = r.getU32();
    if (!count || count.value() > 64)
        return false;
    for (std::uint32_t i = 0; i < count.value(); ++i) {
        auto p = r.getU8();
        if (!p)
            return false;
        props.push_back(static_cast<proto::SecurityProperty>(p.value()));
    }
    return true;
}

} // namespace

Bytes
encodeVmRecord(const VmRecord &rec)
{
    ByteWriter w;
    w.reserve(128 + rec.image.size());
    w.putString(rec.vid);
    w.putString(rec.name);
    w.putString(rec.customer);
    w.putString(rec.imageName);
    w.putString(rec.flavorName);
    w.putU64(rec.imageSizeMb);
    w.putBytes(rec.image);
    w.putU32(rec.vcpus);
    w.putU64(rec.ramMb);
    w.putU64(rec.diskGb);
    putProperties(w, rec.properties);
    w.putString(rec.serverId);
    w.putU8(static_cast<std::uint8_t>(rec.status));
    const auto &stages = rec.launchTimer.stages();
    w.putU32(static_cast<std::uint32_t>(stages.size()));
    for (const sim::StageRecord &s : stages) {
        w.putString(s.name);
        w.putI64(s.start);
        w.putI64(s.end);
    }
    w.putU8(rec.launchTimer.hasOpenStage() ? 1 : 0);
    if (rec.launchTimer.hasOpenStage()) {
        w.putString(rec.launchTimer.openStageName());
        w.putI64(rec.launchTimer.openStageStart());
    }
    w.putI64(rec.launchAttempts);
    w.putI64(rec.launchedAt);
    return w.take();
}

Result<VmRecord>
decodeVmRecord(const Bytes &data)
{
    ByteReader r(data);
    VmRecord rec;
    auto vid = r.getString();
    auto name = r.getString();
    auto customer = r.getString();
    auto imageName = r.getString();
    auto flavorName = r.getString();
    auto imageSizeMb = r.getU64();
    auto image = r.getBytes();
    auto vcpus = r.getU32();
    auto ramMb = r.getU64();
    auto diskGb = r.getU64();
    if (!vid || !name || !customer || !imageName || !flavorName ||
        !imageSizeMb || !image || !vcpus || !ramMb || !diskGb)
        return Result<VmRecord>::error("bad vm record header");
    if (!getProperties(r, rec.properties))
        return Result<VmRecord>::error("bad vm record properties");
    auto serverId = r.getString();
    auto status = r.getU8();
    auto stageCount = r.getU32();
    if (!serverId || !status || !stageCount ||
        stageCount.value() > 4096)
        return Result<VmRecord>::error("bad vm record status");
    for (std::uint32_t i = 0; i < stageCount.value(); ++i) {
        auto sname = r.getString();
        auto start = r.getI64();
        auto end = r.getI64();
        if (!sname || !start || !end)
            return Result<VmRecord>::error("bad vm record stage");
        rec.launchTimer.record(sname.value(), start.value(), end.value());
    }
    auto hasOpen = r.getU8();
    if (!hasOpen)
        return Result<VmRecord>::error("bad vm record open stage flag");
    if (hasOpen.value() != 0) {
        auto oname = r.getString();
        auto ostart = r.getI64();
        if (!oname || !ostart)
            return Result<VmRecord>::error("bad vm record open stage");
        rec.launchTimer.beginStage(oname.value(), ostart.value());
    }
    auto launchAttempts = r.getI64();
    auto launchedAt = r.getI64();
    if (!launchAttempts || !launchedAt || !r.atEnd())
        return Result<VmRecord>::error("bad vm record tail");
    rec.vid = vid.value();
    rec.name = name.value();
    rec.customer = customer.value();
    rec.imageName = imageName.value();
    rec.flavorName = flavorName.value();
    rec.imageSizeMb = imageSizeMb.value();
    rec.image = image.value();
    rec.vcpus = vcpus.value();
    rec.ramMb = ramMb.value();
    rec.diskGb = diskGb.value();
    rec.serverId = serverId.value();
    rec.status = static_cast<VmStatus>(status.value());
    rec.launchAttempts = static_cast<int>(launchAttempts.value());
    rec.launchedAt = launchedAt.value();
    return Result<VmRecord>::ok(std::move(rec));
}

Bytes
encodeServerRecord(const ServerRecord &rec)
{
    ByteWriter w;
    w.putString(rec.id);
    w.putU32(static_cast<std::uint32_t>(rec.capabilities.size()));
    for (proto::SecurityProperty p : rec.capabilities)
        w.putU8(static_cast<std::uint8_t>(p));
    w.putU64(rec.totalRamMb);
    w.putU64(rec.totalDiskGb);
    w.putU64(rec.allocatedRamMb);
    w.putU64(rec.allocatedDiskGb);
    // Appended after the original release; written only when set so
    // records for healthy servers stay byte-identical to the frozen
    // layout (and old journals decode via the optional-tail read).
    if (rec.quarantined)
        w.putU8(1);
    return w.take();
}

Result<ServerRecord>
decodeServerRecord(const Bytes &data)
{
    ByteReader r(data);
    ServerRecord rec;
    auto id = r.getString();
    auto capCount = r.getU32();
    if (!id || !capCount || capCount.value() > 64)
        return Result<ServerRecord>::error("bad server record header");
    for (std::uint32_t i = 0; i < capCount.value(); ++i) {
        auto p = r.getU8();
        if (!p)
            return Result<ServerRecord>::error("bad server capability");
        rec.capabilities.insert(
            static_cast<proto::SecurityProperty>(p.value()));
    }
    auto totalRamMb = r.getU64();
    auto totalDiskGb = r.getU64();
    auto allocatedRamMb = r.getU64();
    auto allocatedDiskGb = r.getU64();
    if (!totalRamMb || !totalDiskGb || !allocatedRamMb || !allocatedDiskGb)
        return Result<ServerRecord>::error("bad server record tail");
    if (!r.atEnd()) {
        auto quarantined = r.getU8();
        if (!quarantined || !r.atEnd())
            return Result<ServerRecord>::error("bad server record tail");
        rec.quarantined = quarantined.value() != 0;
    }
    rec.id = id.value();
    rec.totalRamMb = totalRamMb.value();
    rec.totalDiskGb = totalDiskGb.value();
    rec.allocatedRamMb = allocatedRamMb.value();
    rec.allocatedDiskGb = allocatedDiskGb.value();
    return Result<ServerRecord>::ok(std::move(rec));
}

// --- Tagged-field journal codecs ---------------------------------------
//
// Field numbers are frozen (DESIGN.md §17). Encoders omit
// default-constructed member values; decoders start from a
// default-constructed record and skip unknown fields.

namespace
{

template <typename Container>
Bytes
packedPropertyBytes(const Container &props)
{
    Bytes out;
    for (proto::SecurityProperty p : props)
        wire::appendVarint(out, static_cast<std::uint64_t>(p));
    return out;
}

bool
unpackPackedProperties(const Bytes &packed, std::size_t limit,
                       std::vector<std::uint64_t> &out)
{
    wire::WireReader r(packed);
    while (!r.atEnd()) {
        auto v = r.nextVarint();
        if (!v || out.size() >= limit)
            return false;
        out.push_back(v.value());
    }
    return true;
}

} // namespace

Bytes
encodeVmRecordTagged(const VmRecord &rec)
{
    wire::WireWriter w;
    w.reserve(128 + rec.image.size());
    if (!rec.vid.empty())
        w.putString(1, rec.vid);
    if (!rec.name.empty())
        w.putString(2, rec.name);
    if (!rec.customer.empty())
        w.putString(3, rec.customer);
    if (!rec.imageName.empty())
        w.putString(4, rec.imageName);
    if (!rec.flavorName.empty())
        w.putString(5, rec.flavorName);
    if (rec.imageSizeMb != 0)
        w.putVarint(6, rec.imageSizeMb);
    if (!rec.image.empty())
        w.putLen(7, rec.image);
    if (rec.vcpus != 1)
        w.putVarint(8, rec.vcpus);
    if (rec.ramMb != 0)
        w.putVarint(9, rec.ramMb);
    if (rec.diskGb != 0)
        w.putVarint(10, rec.diskGb);
    if (!rec.properties.empty())
        w.putLen(11, packedPropertyBytes(rec.properties));
    if (!rec.serverId.empty())
        w.putString(12, rec.serverId);
    if (rec.status != VmStatus::Scheduling)
        w.putVarint(13, static_cast<std::uint64_t>(rec.status));
    for (const sim::StageRecord &s : rec.launchTimer.stages()) {
        wire::WireWriter stage;
        stage.putString(1, s.name);
        stage.putSigned(2, s.start);
        stage.putSigned(3, s.end);
        w.putLen(14, stage.take());
    }
    if (rec.launchTimer.hasOpenStage()) {
        wire::WireWriter open;
        open.putString(1, rec.launchTimer.openStageName());
        open.putSigned(2, rec.launchTimer.openStageStart());
        w.putLen(15, open.take());
    }
    if (rec.launchAttempts != 0)
        w.putSigned(16, rec.launchAttempts);
    if (rec.launchedAt != 0)
        w.putSigned(17, rec.launchedAt);
    return w.take();
}

Result<VmRecord>
decodeVmRecordTagged(const Bytes &data)
{
    using R = Result<VmRecord>;
    wire::WireReader r(data);
    VmRecord rec;
    while (!r.atEnd()) {
        auto f = r.next();
        if (!f)
            return R::error("VmRecord: " + f.errorMessage());
        const wire::WireField &fld = f.value();
        switch (fld.number) {
          case 1:
            if (fld.type == wire::WireType::Len)
                rec.vid = fld.asString();
            break;
          case 2:
            if (fld.type == wire::WireType::Len)
                rec.name = fld.asString();
            break;
          case 3:
            if (fld.type == wire::WireType::Len)
                rec.customer = fld.asString();
            break;
          case 4:
            if (fld.type == wire::WireType::Len)
                rec.imageName = fld.asString();
            break;
          case 5:
            if (fld.type == wire::WireType::Len)
                rec.flavorName = fld.asString();
            break;
          case 6:
            if (fld.type == wire::WireType::Varint)
                rec.imageSizeMb = fld.varint;
            break;
          case 7:
            if (fld.type == wire::WireType::Len)
                rec.image = fld.bytes;
            break;
          case 8:
            if (fld.type == wire::WireType::Varint)
                rec.vcpus = static_cast<std::uint32_t>(fld.varint);
            break;
          case 9:
            if (fld.type == wire::WireType::Varint)
                rec.ramMb = fld.varint;
            break;
          case 10:
            if (fld.type == wire::WireType::Varint)
                rec.diskGb = fld.varint;
            break;
          case 11:
            if (fld.type == wire::WireType::Len) {
                std::vector<std::uint64_t> raw;
                if (!unpackPackedProperties(fld.bytes, 64, raw))
                    return R::error("VmRecord: bad properties");
                rec.properties.clear();
                for (std::uint64_t v : raw)
                    rec.properties.push_back(
                        static_cast<proto::SecurityProperty>(v));
            }
            break;
          case 12:
            if (fld.type == wire::WireType::Len)
                rec.serverId = fld.asString();
            break;
          case 13:
            if (fld.type == wire::WireType::Varint)
                rec.status = static_cast<VmStatus>(fld.varint);
            break;
          case 14:
            if (fld.type == wire::WireType::Len) {
                wire::WireReader stage(fld.bytes);
                std::string name;
                SimTime start = 0, end = 0;
                while (!stage.atEnd()) {
                    auto sf = stage.next();
                    if (!sf)
                        return R::error("VmRecord: bad stage");
                    const wire::WireField &s = sf.value();
                    if (s.number == 1 && s.type == wire::WireType::Len)
                        name = s.asString();
                    else if (s.number == 2 &&
                             s.type == wire::WireType::Varint)
                        start = s.asSigned();
                    else if (s.number == 3 &&
                             s.type == wire::WireType::Varint)
                        end = s.asSigned();
                }
                rec.launchTimer.record(name, start, end);
            }
            break;
          case 15:
            if (fld.type == wire::WireType::Len) {
                wire::WireReader open(fld.bytes);
                std::string name;
                SimTime start = 0;
                while (!open.atEnd()) {
                    auto of = open.next();
                    if (!of)
                        return R::error("VmRecord: bad open stage");
                    const wire::WireField &o = of.value();
                    if (o.number == 1 && o.type == wire::WireType::Len)
                        name = o.asString();
                    else if (o.number == 2 &&
                             o.type == wire::WireType::Varint)
                        start = o.asSigned();
                }
                rec.launchTimer.beginStage(name, start);
            }
            break;
          case 16:
            if (fld.type == wire::WireType::Varint)
                rec.launchAttempts =
                    static_cast<int>(fld.asSigned());
            break;
          case 17:
            if (fld.type == wire::WireType::Varint)
                rec.launchedAt = fld.asSigned();
            break;
          default:
            break; // Unknown field: skip.
        }
    }
    return R::ok(std::move(rec));
}

Bytes
encodeServerRecordTagged(const ServerRecord &rec)
{
    wire::WireWriter w;
    if (!rec.id.empty())
        w.putString(1, rec.id);
    if (!rec.capabilities.empty())
        w.putLen(2, packedPropertyBytes(rec.capabilities));
    if (rec.totalRamMb != 0)
        w.putVarint(3, rec.totalRamMb);
    if (rec.totalDiskGb != 0)
        w.putVarint(4, rec.totalDiskGb);
    if (rec.allocatedRamMb != 0)
        w.putVarint(5, rec.allocatedRamMb);
    if (rec.allocatedDiskGb != 0)
        w.putVarint(6, rec.allocatedDiskGb);
    if (rec.quarantined)
        w.putVarint(7, 1);
    return w.take();
}

Result<ServerRecord>
decodeServerRecordTagged(const Bytes &data)
{
    using R = Result<ServerRecord>;
    wire::WireReader r(data);
    ServerRecord rec;
    while (!r.atEnd()) {
        auto f = r.next();
        if (!f)
            return R::error("ServerRecord: " + f.errorMessage());
        const wire::WireField &fld = f.value();
        switch (fld.number) {
          case 1:
            if (fld.type == wire::WireType::Len)
                rec.id = fld.asString();
            break;
          case 2:
            if (fld.type == wire::WireType::Len) {
                std::vector<std::uint64_t> raw;
                if (!unpackPackedProperties(fld.bytes, 64, raw))
                    return R::error("ServerRecord: bad capabilities");
                rec.capabilities.clear();
                for (std::uint64_t v : raw)
                    rec.capabilities.insert(
                        static_cast<proto::SecurityProperty>(v));
            }
            break;
          case 3:
            if (fld.type == wire::WireType::Varint)
                rec.totalRamMb = fld.varint;
            break;
          case 4:
            if (fld.type == wire::WireType::Varint)
                rec.totalDiskGb = fld.varint;
            break;
          case 5:
            if (fld.type == wire::WireType::Varint)
                rec.allocatedRamMb = fld.varint;
            break;
          case 6:
            if (fld.type == wire::WireType::Varint)
                rec.allocatedDiskGb = fld.varint;
            break;
          case 7:
            if (fld.type == wire::WireType::Varint)
                rec.quarantined = fld.varint != 0;
            break;
          default:
            break; // Unknown field: skip.
        }
    }
    return R::ok(std::move(rec));
}

} // namespace monatt::controller
