#include "controller/database.h"

#include <stdexcept>

#include "common/codec.h"

namespace monatt::controller
{

std::string
vmStatusName(VmStatus s)
{
    switch (s) {
      case VmStatus::Scheduling:
        return "scheduling";
      case VmStatus::Networking:
        return "networking";
      case VmStatus::Mapping:
        return "block_device_mapping";
      case VmStatus::Spawning:
        return "spawning";
      case VmStatus::Attesting:
        return "attestation";
      case VmStatus::Running:
        return "running";
      case VmStatus::Suspended:
        return "suspended";
      case VmStatus::Migrating:
        return "migrating";
      case VmStatus::Terminated:
        return "terminated";
      case VmStatus::Failed:
        return "failed";
    }
    return "unknown";
}

void
CloudDatabase::addServer(ServerRecord record)
{
    servers[record.id] = std::move(record);
}

ServerRecord *
CloudDatabase::server(const std::string &id)
{
    const auto it = servers.find(id);
    return it == servers.end() ? nullptr : &it->second;
}

const ServerRecord *
CloudDatabase::server(const std::string &id) const
{
    const auto it = servers.find(id);
    return it == servers.end() ? nullptr : &it->second;
}

std::vector<std::string>
CloudDatabase::serverIds() const
{
    std::vector<std::string> ids;
    ids.reserve(servers.size());
    for (const auto &[id, rec] : servers)
        ids.push_back(id);
    return ids;
}

void
CloudDatabase::addVm(VmRecord record)
{
    vms[record.vid] = std::move(record);
}

VmRecord *
CloudDatabase::vm(const std::string &vid)
{
    const auto it = vms.find(vid);
    return it == vms.end() ? nullptr : &it->second;
}

const VmRecord *
CloudDatabase::vm(const std::string &vid) const
{
    const auto it = vms.find(vid);
    return it == vms.end() ? nullptr : &it->second;
}

void
CloudDatabase::removeVm(const std::string &vid)
{
    vms.erase(vid);
}

std::vector<std::string>
CloudDatabase::vmIds() const
{
    std::vector<std::string> ids;
    ids.reserve(vms.size());
    for (const auto &[vid, rec] : vms)
        ids.push_back(vid);
    return ids;
}

void
CloudDatabase::allocate(const std::string &serverId, std::uint64_t ramMb,
                        std::uint64_t diskGb)
{
    ServerRecord *rec = server(serverId);
    if (!rec)
        throw std::out_of_range("allocate: unknown server " + serverId);
    rec->allocatedRamMb += ramMb;
    rec->allocatedDiskGb += diskGb;
}

void
CloudDatabase::release(const std::string &serverId, std::uint64_t ramMb,
                       std::uint64_t diskGb)
{
    ServerRecord *rec = server(serverId);
    if (!rec)
        return;
    rec->allocatedRamMb -= std::min(rec->allocatedRamMb, ramMb);
    rec->allocatedDiskGb -= std::min(rec->allocatedDiskGb, diskGb);
}

namespace
{

void
putProperties(ByteWriter &w,
              const std::vector<proto::SecurityProperty> &props)
{
    w.putU32(static_cast<std::uint32_t>(props.size()));
    for (proto::SecurityProperty p : props)
        w.putU8(static_cast<std::uint8_t>(p));
}

bool
getProperties(ByteReader &r, std::vector<proto::SecurityProperty> &props)
{
    auto count = r.getU32();
    if (!count || count.value() > 64)
        return false;
    for (std::uint32_t i = 0; i < count.value(); ++i) {
        auto p = r.getU8();
        if (!p)
            return false;
        props.push_back(static_cast<proto::SecurityProperty>(p.value()));
    }
    return true;
}

} // namespace

Bytes
encodeVmRecord(const VmRecord &rec)
{
    ByteWriter w;
    w.reserve(128 + rec.image.size());
    w.putString(rec.vid);
    w.putString(rec.name);
    w.putString(rec.customer);
    w.putString(rec.imageName);
    w.putString(rec.flavorName);
    w.putU64(rec.imageSizeMb);
    w.putBytes(rec.image);
    w.putU32(rec.vcpus);
    w.putU64(rec.ramMb);
    w.putU64(rec.diskGb);
    putProperties(w, rec.properties);
    w.putString(rec.serverId);
    w.putU8(static_cast<std::uint8_t>(rec.status));
    const auto &stages = rec.launchTimer.stages();
    w.putU32(static_cast<std::uint32_t>(stages.size()));
    for (const sim::StageRecord &s : stages) {
        w.putString(s.name);
        w.putI64(s.start);
        w.putI64(s.end);
    }
    w.putU8(rec.launchTimer.hasOpenStage() ? 1 : 0);
    if (rec.launchTimer.hasOpenStage()) {
        w.putString(rec.launchTimer.openStageName());
        w.putI64(rec.launchTimer.openStageStart());
    }
    w.putI64(rec.launchAttempts);
    w.putI64(rec.launchedAt);
    return w.take();
}

Result<VmRecord>
decodeVmRecord(const Bytes &data)
{
    ByteReader r(data);
    VmRecord rec;
    auto vid = r.getString();
    auto name = r.getString();
    auto customer = r.getString();
    auto imageName = r.getString();
    auto flavorName = r.getString();
    auto imageSizeMb = r.getU64();
    auto image = r.getBytes();
    auto vcpus = r.getU32();
    auto ramMb = r.getU64();
    auto diskGb = r.getU64();
    if (!vid || !name || !customer || !imageName || !flavorName ||
        !imageSizeMb || !image || !vcpus || !ramMb || !diskGb)
        return Result<VmRecord>::error("bad vm record header");
    if (!getProperties(r, rec.properties))
        return Result<VmRecord>::error("bad vm record properties");
    auto serverId = r.getString();
    auto status = r.getU8();
    auto stageCount = r.getU32();
    if (!serverId || !status || !stageCount ||
        stageCount.value() > 4096)
        return Result<VmRecord>::error("bad vm record status");
    for (std::uint32_t i = 0; i < stageCount.value(); ++i) {
        auto sname = r.getString();
        auto start = r.getI64();
        auto end = r.getI64();
        if (!sname || !start || !end)
            return Result<VmRecord>::error("bad vm record stage");
        rec.launchTimer.record(sname.value(), start.value(), end.value());
    }
    auto hasOpen = r.getU8();
    if (!hasOpen)
        return Result<VmRecord>::error("bad vm record open stage flag");
    if (hasOpen.value() != 0) {
        auto oname = r.getString();
        auto ostart = r.getI64();
        if (!oname || !ostart)
            return Result<VmRecord>::error("bad vm record open stage");
        rec.launchTimer.beginStage(oname.value(), ostart.value());
    }
    auto launchAttempts = r.getI64();
    auto launchedAt = r.getI64();
    if (!launchAttempts || !launchedAt || !r.atEnd())
        return Result<VmRecord>::error("bad vm record tail");
    rec.vid = vid.value();
    rec.name = name.value();
    rec.customer = customer.value();
    rec.imageName = imageName.value();
    rec.flavorName = flavorName.value();
    rec.imageSizeMb = imageSizeMb.value();
    rec.image = image.value();
    rec.vcpus = vcpus.value();
    rec.ramMb = ramMb.value();
    rec.diskGb = diskGb.value();
    rec.serverId = serverId.value();
    rec.status = static_cast<VmStatus>(status.value());
    rec.launchAttempts = static_cast<int>(launchAttempts.value());
    rec.launchedAt = launchedAt.value();
    return Result<VmRecord>::ok(std::move(rec));
}

Bytes
encodeServerRecord(const ServerRecord &rec)
{
    ByteWriter w;
    w.putString(rec.id);
    w.putU32(static_cast<std::uint32_t>(rec.capabilities.size()));
    for (proto::SecurityProperty p : rec.capabilities)
        w.putU8(static_cast<std::uint8_t>(p));
    w.putU64(rec.totalRamMb);
    w.putU64(rec.totalDiskGb);
    w.putU64(rec.allocatedRamMb);
    w.putU64(rec.allocatedDiskGb);
    return w.take();
}

Result<ServerRecord>
decodeServerRecord(const Bytes &data)
{
    ByteReader r(data);
    ServerRecord rec;
    auto id = r.getString();
    auto capCount = r.getU32();
    if (!id || !capCount || capCount.value() > 64)
        return Result<ServerRecord>::error("bad server record header");
    for (std::uint32_t i = 0; i < capCount.value(); ++i) {
        auto p = r.getU8();
        if (!p)
            return Result<ServerRecord>::error("bad server capability");
        rec.capabilities.insert(
            static_cast<proto::SecurityProperty>(p.value()));
    }
    auto totalRamMb = r.getU64();
    auto totalDiskGb = r.getU64();
    auto allocatedRamMb = r.getU64();
    auto allocatedDiskGb = r.getU64();
    if (!totalRamMb || !totalDiskGb || !allocatedRamMb ||
        !allocatedDiskGb || !r.atEnd())
        return Result<ServerRecord>::error("bad server record tail");
    rec.id = id.value();
    rec.totalRamMb = totalRamMb.value();
    rec.totalDiskGb = totalDiskGb.value();
    rec.allocatedRamMb = allocatedRamMb.value();
    rec.allocatedDiskGb = allocatedDiskGb.value();
    return Result<ServerRecord>::ok(std::move(rec));
}

} // namespace monatt::controller
