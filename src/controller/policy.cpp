#include "controller/policy.h"

#include <algorithm>

namespace monatt::controller
{

bool
PolicyValidationModule::qualifies(const ServerRecord &server,
                                  const PlacementRequirements &req)
{
    // A quarantined host (stale TCB verdict, §5) is never a target,
    // whatever capacity it advertises.
    if (server.quarantined)
        return false;
    if (server.freeRamMb() < req.ramMb ||
        server.freeDiskGb() < req.diskGb) {
        return false;
    }
    // property_filter: every requested property must be monitorable.
    for (proto::SecurityProperty p : req.properties) {
        if (!server.capabilities.count(p))
            return false;
    }
    return true;
}

std::vector<std::string>
PolicyValidationModule::qualifiedServers(
    const CloudDatabase &db, const PlacementRequirements &req,
    const std::set<std::string> &exclude)
{
    std::vector<const ServerRecord *> candidates;
    for (const std::string &id : db.serverIds()) {
        if (exclude.count(id))
            continue;
        const ServerRecord *rec = db.server(id);
        if (rec && qualifies(*rec, req))
            candidates.push_back(rec);
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const ServerRecord *a, const ServerRecord *b) {
                  if (a->freeRamMb() != b->freeRamMb())
                      return a->freeRamMb() > b->freeRamMb();
                  return a->id < b->id; // Deterministic tie break.
              });
    std::vector<std::string> out;
    out.reserve(candidates.size());
    for (const ServerRecord *rec : candidates)
        out.push_back(rec->id);
    return out;
}

} // namespace monatt::controller
