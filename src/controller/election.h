/**
 * @file
 * Deterministic leader election for a controller replica group.
 *
 * Each replica runs the classic leader / potential-leader / follower
 * state machine over monotone round numbers:
 *
 *  - A follower that misses heartbeats for its election timeout
 *    becomes a potential leader: it bumps the round, votes for
 *    itself, and solicits votes from the group.
 *  - A voter grants at most one vote per round, and only to a
 *    candidate whose mirrored journal is at least as up to date as
 *    its own — compared first by the round that produced the last
 *    mirrored entry, then by LSN — so a deposed leader's divergent,
 *    never-committed tail can never win.
 *  - A candidate collecting a majority (counting itself) becomes the
 *    leader for that round; everyone who observes a higher round
 *    steps down to follower.
 *
 * Timeouts are *deterministic*: each replica's timeout for a given
 * round is the configured minimum plus an FNV-1a hash of (replica id,
 * round) modulo the window. Distinct replicas thus never tie, the
 * same replica never picks the same point twice in a row, and a fixed
 * seed always elects the same leader in the same number of rounds —
 * the property tests/controller/replica_group_test.cpp pins.
 *
 * ElectionState is pure bookkeeping: it owns no timers and sends no
 * messages. CloudController drives it from the event loop and the
 * replication message handlers.
 */

#ifndef MONATT_CONTROLLER_ELECTION_H
#define MONATT_CONTROLLER_ELECTION_H

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/time_types.h"

namespace monatt::controller
{

/** Replica role in the group's consensus state machine. */
enum class ReplicaRole
{
    Follower,
    PotentialLeader,
    Leader,
};

/** Election timing knobs (per CloudControllerConfig). */
struct ElectionTuning
{
    /** Leader → follower heartbeat / replication cadence. */
    SimTime heartbeatInterval = msec(500);
    /** Election timeout window: [min, max). Must satisfy min < max
     *  and min well above the heartbeat interval. */
    SimTime electionTimeoutMin = msec(1500);
    SimTime electionTimeoutMax = msec(3000);
};

/** Per-replica election bookkeeping; see file header. */
class ElectionState
{
  public:
    ElectionState() = default;

    /**
     * @param self  This replica's node id.
     * @param group All replica ids in the group, index 0 = primary.
     */
    ElectionState(std::string self, std::vector<std::string> group,
                  ElectionTuning tuning);

    ReplicaRole role() const { return role_; }
    std::uint64_t round() const { return round_; }
    const std::string &self() const { return self_; }
    std::size_t groupSize() const { return group_.size(); }
    const std::vector<std::string> &group() const { return group_; }

    /** Votes needed to win: strict majority of the group. */
    std::size_t majority() const { return group_.size() / 2 + 1; }

    /**
     * Deterministic election timeout for (self, round + 1): min +
     * fnv(self, round + 1) % (max - min).
     */
    SimTime electionTimeout() const;

    /**
     * Seed the group: the primary replica starts as the round-1
     * leader so an unreplicated boot needs no election.
     */
    void bootstrapLeader();

    /**
     * Become a candidate for the next round, voting for self.
     */
    void startCandidacy();

    /**
     * Begin a pre-vote probe for round() + 1: no round is bumped and
     * no vote is spent, so a probe that fails (or whose initiator is
     * simply out of touch) disturbs nothing. Counts self.
     */
    void startPrevote();

    /**
     * Pre-vote rule, side-effect free: would we vote for this
     * candidate if it ran for `candRound`? The caller additionally
     * denies while it has recent leader contact — the check that
     * keeps a resyncing replica from disrupting a live group.
     */
    bool considerPrevote(std::uint64_t candRound,
                         std::uint64_t candLastLogRound,
                         std::uint64_t candLastLsn,
                         std::uint64_t ownLastLogRound,
                         std::uint64_t ownLastLsn) const;

    /**
     * Record a pre-vote granted by `voter` for round() + 1. Returns
     * true when this completes a majority: the caller should then
     * open a real candidacy with startCandidacy().
     */
    bool recordPrevote(const std::string &voter);

    /**
     * Vote rule: grant iff the candidate's round is beyond anything
     * this replica voted in AND the candidate's log is at least as up
     * to date as ours (by lastLogRound, then LSN). A granted vote
     * adopts the candidate's round.
     */
    bool considerVote(std::uint64_t candRound,
                      std::uint64_t candLastLogRound,
                      std::uint64_t candLastLsn,
                      std::uint64_t ownLastLogRound,
                      std::uint64_t ownLastLsn);

    /**
     * Record a vote granted by `voter` for `round`. Returns true when
     * this vote completes a majority and the replica just became
     * leader (exactly once per round).
     */
    bool recordVote(const std::string &voter, std::uint64_t round);

    /**
     * A message from `leaderId` at `round` proves a leader exists.
     * Adopts the round and steps down to follower if the round is at
     * least ours and we are not that leader. Returns true if the
     * round or role changed.
     */
    bool observeLeader(const std::string &leaderId, std::uint64_t round);

    /** Adopt a higher round seen in any message; step down. */
    bool observeRound(std::uint64_t round);

    /** Reset to follower at the current round (restart path). */
    void resetToFollower();

  private:
    std::string self_;
    std::vector<std::string> group_;
    ElectionTuning tuning_;
    ReplicaRole role_ = ReplicaRole::Follower;
    std::uint64_t round_ = 0;
    std::uint64_t votedRound_ = 0; //!< Highest round we voted in.
    std::set<std::string> votes_;  //!< Voters for our candidacy.
    std::set<std::string> prevotes_; //!< Pre-voters for round_ + 1.
};

/** Replica id for (base shard id, replica index): index 0 keeps the
 *  base id, replica r > 0 appends "-replica-r". */
std::string replicaId(const std::string &baseId, int index);

} // namespace monatt::controller

#endif // MONATT_CONTROLLER_ELECTION_H
