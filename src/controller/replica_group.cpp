#include "controller/replica_group.h"

#include <algorithm>

namespace monatt::controller
{

ReplicaLedger::ReplicaLedger(std::vector<std::string> followers)
{
    reset(std::move(followers));
}

void
ReplicaLedger::reset(std::vector<std::string> followers)
{
    acks_.clear();
    for (std::string &f : followers)
        acks_[std::move(f)] = 0;
}

void
ReplicaLedger::recordAck(const std::string &follower,
                         std::uint64_t lastLsn)
{
    std::uint64_t &cursor = acks_[follower];
    cursor = std::max(cursor, lastLsn);
}

std::uint64_t
ReplicaLedger::ackOf(const std::string &follower) const
{
    const auto it = acks_.find(follower);
    return it == acks_.end() ? 0 : it->second;
}

std::uint64_t
ReplicaLedger::commitLsn(std::uint64_t leaderLsn,
                         std::size_t groupSize) const
{
    std::vector<std::uint64_t> cursors;
    cursors.reserve(acks_.size() + 1);
    cursors.push_back(leaderLsn);
    for (const auto &[follower, lsn] : acks_)
        cursors.push_back(lsn);
    std::sort(cursors.begin(), cursors.end(),
              std::greater<std::uint64_t>());
    const std::size_t needed = groupSize / 2 + 1;
    if (cursors.size() < needed)
        return 0;
    return cursors[needed - 1];
}

} // namespace monatt::controller
