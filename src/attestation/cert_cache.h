/**
 * @file
 * Attestation-key certificate verification cache.
 *
 * §3.4 requires the Attestation Server to check the pCA certificate
 * carried by every MeasureResponse before trusting the session key
 * AVKs inside it. With AVK-session reuse on the cloud servers (one
 * attestation key serving several periodic rounds), the same
 * certificate bytes arrive many times; re-running the RSA chain check
 * each time is pure waste. This cache memoizes *successful*
 * verifications, keyed by the SHA-256 digest of the exact certificate
 * bytes: a hit returns the same AVK the cold path extracted, so the
 * verification decision is byte-identical to an uncached check.
 * Failures are never cached — a tampered certificate has a different
 * digest, misses, and takes the cold path to its Unknown verdict, so
 * an attacker cannot poison the cache or dodge re-verification.
 */

#ifndef MONATT_ATTESTATION_CERT_CACHE_H
#define MONATT_ATTESTATION_CERT_CACHE_H

#include <cstdint>
#include <deque>
#include <map>

#include "common/bytes.h"
#include "crypto/rsa.h"

namespace monatt::attestation
{

/** Observable cache counters. */
struct CertCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
};

/** Bounded FIFO cache: certificate digest -> verified AVK. */
class CertVerificationCache
{
  public:
    explicit CertVerificationCache(std::size_t capacity = 256);

    /**
     * Verified AVK for a certificate digest; nullptr on miss. Counts
     * a hit or a miss.
     */
    const crypto::RsaPublicKey *lookup(const Bytes &digest);

    /**
     * Like lookup() but without touching the hit/miss counters. The
     * batched verifier peeks to decide which chain checks to fan out,
     * then replays the real lookup/insert sequence serially so the
     * observable stats stay identical to per-response verification.
     */
    const crypto::RsaPublicKey *peek(const Bytes &digest) const;

    /** Record a successful verification (evicts oldest when full). */
    void insert(const Bytes &digest, crypto::RsaPublicKey avk);

    std::size_t size() const { return entries.size(); }
    std::size_t capacity() const { return cap; }
    const CertCacheStats &stats() const { return counters; }

    /** Digests in FIFO insertion order (journal checkpointing). */
    const std::deque<Bytes> &insertionOrder() const { return order; }

    /** Drop everything (pCA key rotation). */
    void clear();

  private:
    std::size_t cap;
    std::map<Bytes, crypto::RsaPublicKey> entries;
    std::deque<Bytes> order; //!< Insertion order for FIFO eviction.
    CertCacheStats counters;
};

} // namespace monatt::attestation

#endif // MONATT_ATTESTATION_CERT_CACHE_H
