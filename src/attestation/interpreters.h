/**
 * @file
 * The Property Interpretation Module's interpreters (§4).
 *
 * Each interpreter closes the semantic gap for one security property:
 * it receives the raw measurements M collected on the cloud server
 * plus the Attestation Server's reference data, and renders a
 * HealthStatus the customer can understand. The registry is open —
 * "the CloudMonatt architecture is flexible and allows the
 * integration of an arbitrary number of security properties and
 * monitoring mechanisms" — so new properties plug in by registering
 * an interpreter and a property→measurement mapping.
 */

#ifndef MONATT_ATTESTATION_INTERPRETERS_H
#define MONATT_ATTESTATION_INTERPRETERS_H

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "proto/measurement.h"
#include "proto/messages.h"

namespace monatt::attestation
{

/** Per-VM reference data held in the AS database. */
struct VmReference
{
    Bytes expectedImageDigest;

    /** Expected guest services; empty = rely on VMI/guest diffing. */
    std::vector<std::string> expectedTasks;

    /** SLA floor on the VM's relative CPU usage while it demands CPU
     * (fair share with one CPU-bound co-tenant is 0.5). */
    double slaMinCpuShare = 0.30;
};

/** Per-server reference data (known-good platform configuration). */
struct ServerReference
{
    Bytes expectedPlatformDigest; //!< PCR0 || PCR1 for pristine software.
};

/**
 * Minimum-TCB policy (DESIGN.md §18): the appraiser refuses evidence
 * produced by firmware older than a floor version, turning a
 * rollback/downgrade attack into an explicit TcbRollback verdict
 * instead of a trusted-looking Healthy one.
 *
 * `fleetFloor` applies to every property; individual properties can
 * demand a newer build via `propertyFloors` (e.g. a covert-channel
 * detector that needs a fixed side-channel patch). A floor of 0
 * disarms the policy. A verified response carrying *no* TCB version
 * measurement is treated as below-floor — absence of evidence is how
 * a pre-upgrade host looks, and trusting it would let an attacker
 * strip the field.
 */
struct TcbPolicy
{
    std::uint64_t fleetFloor = 0;
    std::map<proto::SecurityProperty, std::uint64_t> propertyFloors;

    bool enabled() const
    {
        return fleetFloor > 0 || !propertyFloors.empty();
    }

    /** Effective floor for one property (override beats fleet). */
    std::uint64_t floorFor(proto::SecurityProperty p) const
    {
        const auto it = propertyFloors.find(p);
        return it != propertyFloors.end() ? it->second : fleetFloor;
    }
};

/** Everything an interpreter may consult. */
struct InterpretationContext
{
    const VmReference *vmRef = nullptr;
    const ServerReference *serverRef = nullptr;

    /** IMA-style appraiser knowledge: digests of pristine catalog
     * images ("The Attestation Server can have full knowledge of the
     * attested software, and the correct pre-calculated hash values",
     * §4.2.2). */
    const std::set<Bytes> *knownGoodImages = nullptr;

    /** The previous verified measurements of the same VM from the
     * measurement archive (nullptr for a first attestation). Used by
     * history-sensitive interpreters such as audit-log integrity. */
    const proto::MeasurementSet *previous = nullptr;
};

/** Interpreter interface. */
class PropertyInterpreter
{
  public:
    virtual ~PropertyInterpreter() = default;

    /** The property this interpreter appraises. */
    virtual proto::SecurityProperty property() const = 0;

    /** Appraise measurements against references. */
    virtual proto::PropertyResult interpret(
        const proto::MeasurementSet &m,
        const InterpretationContext &ctx) const = 0;
};

/** §4.2: platform PCRs + VM image digest vs known-good values. */
class StartupIntegrityInterpreter : public PropertyInterpreter
{
  public:
    proto::SecurityProperty property() const override;
    proto::PropertyResult interpret(
        const proto::MeasurementSet &m,
        const InterpretationContext &ctx) const override;
};

/** §4.3: VMI task list vs guest-reported task list (hidden-process
 * detection), plus optional expected-service checking. */
class RuntimeIntegrityInterpreter : public PropertyInterpreter
{
  public:
    proto::SecurityProperty property() const override;
    proto::PropertyResult interpret(
        const proto::MeasurementSet &m,
        const InterpretationContext &ctx) const override;
};

/** Tuning knobs for the covert-channel detector (§4.4.3). */
struct CovertChannelDetectorParams
{
    double peakMinMass = 0.15;   //!< Neighborhood mass to count a peak.
    double minSeparationBins = 8; //!< k-means centroid separation.
    double minClusterMass = 0.15; //!< Both clusters must carry mass.
    std::uint64_t minSamples = 10; //!< Below this: Unknown.
};

/** §4.4: two-peak / 2-means analysis of the usage-interval TERs. */
class CovertChannelInterpreter : public PropertyInterpreter
{
  public:
    explicit CovertChannelInterpreter(
        CovertChannelDetectorParams params = {})
        : cfg(params)
    {}

    proto::SecurityProperty property() const override;
    proto::PropertyResult interpret(
        const proto::MeasurementSet &m,
        const InterpretationContext &ctx) const override;

    /**
     * The raw classifier, exposed for the Figure 5 bench: true when
     * the per-bin counts look like covert-channel activity.
     */
    bool looksCovert(const std::vector<std::uint64_t> &counts,
                     std::string *why = nullptr) const;

  private:
    CovertChannelDetectorParams cfg;
};

/**
 * Extension property: audit-log integrity via hash-chain comparison
 * across successive attestations. The log may only grow; a shrinking
 * entry count means truncation, an equal count with a different chain
 * head means rewriting. (A rollback followed by regrowth to at least
 * the previous length is not detectable from head+count alone; a
 * production deployment would spot-check entries — documented
 * limitation of this extension.)
 */
class AuditLogIntegrityInterpreter : public PropertyInterpreter
{
  public:
    proto::SecurityProperty property() const override;
    proto::PropertyResult interpret(
        const proto::MeasurementSet &m,
        const InterpretationContext &ctx) const override;
};

/** §4.5: relative CPU usage (CPU_measure / window) vs the SLA floor. */
class CpuAvailabilityInterpreter : public PropertyInterpreter
{
  public:
    proto::SecurityProperty property() const override;
    proto::PropertyResult interpret(
        const proto::MeasurementSet &m,
        const InterpretationContext &ctx) const override;
};

/** Registry of interpreters, keyed by property. */
class InterpreterRegistry
{
  public:
    /** Build a registry pre-loaded with the four paper interpreters. */
    static InterpreterRegistry withDefaults();

    /** Register (or replace) an interpreter. */
    void add(std::unique_ptr<PropertyInterpreter> interpreter);

    /** Interpreter for a property; nullptr when unregistered. */
    const PropertyInterpreter *find(proto::SecurityProperty p) const;

    /** Appraise one property (Unknown when unregistered). */
    proto::PropertyResult interpret(proto::SecurityProperty p,
                                    const proto::MeasurementSet &m,
                                    const InterpretationContext &ctx)
        const;

  private:
    std::map<proto::SecurityProperty,
             std::unique_ptr<PropertyInterpreter>> interpreters;
};

} // namespace monatt::attestation

#endif // MONATT_ATTESTATION_INTERPRETERS_H
