#include "attestation/interpreters.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/stats.h"

namespace monatt::attestation
{

using proto::HealthStatus;
using proto::Measurement;
using proto::MeasurementSet;
using proto::MeasurementType;
using proto::PropertyResult;
using proto::SecurityProperty;

namespace
{

PropertyResult
makeResult(SecurityProperty p, HealthStatus s, std::string detail)
{
    PropertyResult r;
    r.property = p;
    r.status = s;
    r.detail = std::move(detail);
    return r;
}

} // namespace

SecurityProperty
StartupIntegrityInterpreter::property() const
{
    return SecurityProperty::StartupIntegrity;
}

PropertyResult
StartupIntegrityInterpreter::interpret(
    const MeasurementSet &m, const InterpretationContext &ctx) const
{
    const SecurityProperty p = property();
    const Measurement *pcrs = m.find(MeasurementType::PlatformPcrs);
    const Measurement *image = m.find(MeasurementType::VmImageDigest);
    if (!pcrs || !image)
        return makeResult(p, HealthStatus::Unknown,
                          "missing integrity measurements");
    if (!ctx.serverRef)
        return makeResult(p, HealthStatus::Unknown,
                          "no platform reference on record");

    // Platform first: §5.1 treats a bad platform differently (pick
    // another server) from a bad image (reject the launch).
    if (!constantTimeEqual(pcrs->digest,
                           ctx.serverRef->expectedPlatformDigest)) {
        return makeResult(p, HealthStatus::Compromised,
                          "platform configuration hash mismatch");
    }

    // Image: either the per-VM reference digest or the appraiser's
    // known-good catalog vouches for it.
    bool imageOk = false;
    if (ctx.vmRef && !ctx.vmRef->expectedImageDigest.empty()) {
        imageOk = constantTimeEqual(image->digest,
                                    ctx.vmRef->expectedImageDigest);
    } else if (ctx.knownGoodImages) {
        imageOk = ctx.knownGoodImages->count(image->digest) != 0;
    }
    if (!imageOk) {
        return makeResult(p, HealthStatus::Compromised,
                          "vm image hash mismatch");
    }
    return makeResult(p, HealthStatus::Healthy,
                      "platform and image match known-good hashes");
}

SecurityProperty
RuntimeIntegrityInterpreter::property() const
{
    return SecurityProperty::RuntimeIntegrity;
}

PropertyResult
RuntimeIntegrityInterpreter::interpret(
    const MeasurementSet &m, const InterpretationContext &ctx) const
{
    const SecurityProperty p = property();
    const Measurement *vmi = m.find(MeasurementType::TaskListVmi);
    const Measurement *guest = m.find(MeasurementType::TaskListGuest);
    if (!vmi || !guest)
        return makeResult(p, HealthStatus::Unknown,
                          "missing task-list measurements");

    // Hidden processes: present in the memory truth (VMI) but absent
    // from what the guest admits to — the rootkit signature of §4.3.
    const std::set<std::string> guestSet(guest->strings.begin(),
                                         guest->strings.end());
    std::vector<std::string> hidden;
    for (const std::string &task : vmi->strings) {
        if (!guestSet.count(task))
            hidden.push_back(task);
    }
    if (!hidden.empty()) {
        std::ostringstream oss;
        oss << "hidden process(es) detected:";
        for (const std::string &task : hidden)
            oss << " " << task;
        return makeResult(p, HealthStatus::Compromised, oss.str());
    }

    // Optional allow-list check against the customer's declared
    // services.
    if (ctx.vmRef && !ctx.vmRef->expectedTasks.empty()) {
        const std::set<std::string> expected(
            ctx.vmRef->expectedTasks.begin(),
            ctx.vmRef->expectedTasks.end());
        for (const std::string &task : vmi->strings) {
            if (!expected.count(task)) {
                return makeResult(p, HealthStatus::Compromised,
                                  "unexpected process: " + task);
            }
        }
    }
    return makeResult(p, HealthStatus::Healthy,
                      "VMI and guest task lists consistent");
}

SecurityProperty
CovertChannelInterpreter::property() const
{
    return SecurityProperty::CovertChannelFreedom;
}

bool
CovertChannelInterpreter::looksCovert(
    const std::vector<std::uint64_t> &counts, std::string *why) const
{
    Histogram h(0.0, 30.0, counts.size());
    for (std::size_t i = 0; i < counts.size(); ++i)
        h.addCount(i, counts[i]);

    const std::vector<double> dist = h.distribution();
    const std::vector<Peak> peaks = findPeaks(dist, cfg.peakMinMass);

    std::vector<double> centers(counts.size());
    for (std::size_t i = 0; i < counts.size(); ++i)
        centers[i] = h.binCenter(i);
    const KMeans1DResult km = kMeans2(centers, dist);

    const bool twoPeaks = peaks.size() >= 2;
    const bool separatedClusters =
        km.separation >= cfg.minSeparationBins &&
        km.mass[0] >= cfg.minClusterMass &&
        km.mass[1] >= cfg.minClusterMass;

    if (why) {
        std::ostringstream oss;
        oss << peaks.size() << " peak(s), cluster centers "
            << km.centroid[0] << "/" << km.centroid[1] << " ms, masses "
            << km.mass[0] << "/" << km.mass[1];
        *why = oss.str();
    }
    return twoPeaks || separatedClusters;
}

PropertyResult
CovertChannelInterpreter::interpret(const MeasurementSet &m,
                                    const InterpretationContext &ctx) const
{
    (void)ctx;
    const SecurityProperty p = property();
    const Measurement *hist =
        m.find(MeasurementType::UsageIntervalHistogram);
    if (!hist || hist->values.empty())
        return makeResult(p, HealthStatus::Unknown,
                          "missing usage-interval histogram");

    std::uint64_t total = 0;
    for (std::uint64_t c : hist->values)
        total += c;
    if (total < cfg.minSamples)
        return makeResult(p, HealthStatus::Unknown,
                          "too few usage-interval samples");

    std::string why;
    if (looksCovert(hist->values, &why)) {
        return makeResult(p, HealthStatus::Compromised,
                          "bimodal CPU usage intervals indicate covert "
                          "channel activity: " + why);
    }
    return makeResult(p, HealthStatus::Healthy,
                      "unimodal CPU usage intervals: " + why);
}

SecurityProperty
AuditLogIntegrityInterpreter::property() const
{
    return SecurityProperty::AuditLogIntegrity;
}

PropertyResult
AuditLogIntegrityInterpreter::interpret(
    const MeasurementSet &m, const InterpretationContext &ctx) const
{
    const SecurityProperty p = property();
    const Measurement *log = m.find(MeasurementType::AuditLogDigest);
    if (!log || log->values.empty())
        return makeResult(p, HealthStatus::Unknown,
                          "missing audit-log measurement");

    const Measurement *prev =
        ctx.previous ? ctx.previous->find(MeasurementType::AuditLogDigest)
                     : nullptr;
    if (!prev || prev->values.empty()) {
        // First observation: record-keeping baseline.
        return makeResult(p, HealthStatus::Healthy,
                          "audit-log baseline recorded (" +
                              std::to_string(log->values[0]) +
                              " entries)");
    }

    const std::uint64_t count = log->values[0];
    const std::uint64_t prevCount = prev->values[0];
    if (count < prevCount) {
        return makeResult(p, HealthStatus::Compromised,
                          "audit log truncated: " +
                              std::to_string(prevCount) + " -> " +
                              std::to_string(count) + " entries");
    }
    if (count == prevCount &&
        !constantTimeEqual(log->digest, prev->digest)) {
        return makeResult(p, HealthStatus::Compromised,
                          "audit log rewritten: chain head changed at "
                          "constant length");
    }
    return makeResult(p, HealthStatus::Healthy,
                      "audit log grew monotonically (" +
                          std::to_string(prevCount) + " -> " +
                          std::to_string(count) + " entries)");
}

SecurityProperty
CpuAvailabilityInterpreter::property() const
{
    return SecurityProperty::CpuAvailability;
}

PropertyResult
CpuAvailabilityInterpreter::interpret(
    const MeasurementSet &m, const InterpretationContext &ctx) const
{
    const SecurityProperty p = property();
    const Measurement *cpu = m.find(MeasurementType::CpuMeasure);
    if (!cpu || cpu->values.empty() || cpu->windowLength <= 0)
        return makeResult(p, HealthStatus::Unknown,
                          "missing CPU usage measurement");

    const double share =
        static_cast<double>(cpu->values[0]) /
        static_cast<double>(cpu->windowLength);
    const double floor = ctx.vmRef ? ctx.vmRef->slaMinCpuShare : 0.30;

    std::ostringstream oss;
    oss << "relative CPU usage " << share << " vs SLA floor " << floor;
    if (share < floor) {
        return makeResult(p, HealthStatus::Compromised,
                          "CPU availability degraded: " + oss.str());
    }
    return makeResult(p, HealthStatus::Healthy, oss.str());
}

InterpreterRegistry
InterpreterRegistry::withDefaults()
{
    InterpreterRegistry reg;
    reg.add(std::make_unique<StartupIntegrityInterpreter>());
    reg.add(std::make_unique<RuntimeIntegrityInterpreter>());
    reg.add(std::make_unique<CovertChannelInterpreter>());
    reg.add(std::make_unique<CpuAvailabilityInterpreter>());
    reg.add(std::make_unique<AuditLogIntegrityInterpreter>());
    return reg;
}

void
InterpreterRegistry::add(std::unique_ptr<PropertyInterpreter> interpreter)
{
    interpreters[interpreter->property()] = std::move(interpreter);
}

const PropertyInterpreter *
InterpreterRegistry::find(SecurityProperty p) const
{
    const auto it = interpreters.find(p);
    return it == interpreters.end() ? nullptr : it->second.get();
}

PropertyResult
InterpreterRegistry::interpret(SecurityProperty p, const MeasurementSet &m,
                               const InterpretationContext &ctx) const
{
    const PropertyInterpreter *interp = find(p);
    if (!interp) {
        return makeResult(p, HealthStatus::Unknown,
                          "no interpreter registered for " +
                          propertyName(p));
    }
    return interp->interpret(m, ctx);
}

} // namespace monatt::attestation
