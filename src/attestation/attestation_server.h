/**
 * @file
 * The Attestation Server — requester and appraiser (§3.2.3).
 *
 * Hosts the Property Interpretation Module (validate measurements,
 * interpret properties, make attestation decisions) and the Property
 * Certification Module (issue the signed attestation report that the
 * Cloud Controller relays to the customer). Holds the oat-style
 * databases: per-server and per-VM reference data, plus an archive of
 * verified measurements.
 *
 * Verification of a MeasureResponse follows §3.4: check the pCA
 * certificate for the session attestation key AVKs, check the ASKs
 * signature over [Vid, rM, M, N3, Q3], recompute and compare the
 * quote Q3 = H(Vid || rM || M || N3), and check the nonce N3 against
 * the outstanding session (replay rejection). Only then are the
 * measurements interpreted. A response failing any check yields an
 * authentic report with status Unknown — the customer learns that
 * measurements could not be verified, and the attacker gains no way
 * to forge a positive report.
 *
 * Periodic attestation (§3.2.1) runs rounds on a fixed or random
 * interval until stopped.
 */

#ifndef MONATT_ATTESTATION_ATTESTATION_SERVER_H
#define MONATT_ATTESTATION_ATTESTATION_SERVER_H

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "attestation/cert_cache.h"
#include "attestation/interpreters.h"
#include "net/secure_endpoint.h"
#include "proto/messages.h"
#include "proto/timing_model.h"
#include "sim/checkpoint_policy.h"
#include "sim/event_queue.h"
#include "sim/stable_store.h"

namespace monatt::attestation
{

/** Configuration. */
struct AttestationServerConfig
{
    std::string id = "attestation-server";
    std::string controllerId = "cloud-controller";

    /**
     * Every controller shard allowed to forward attestations here.
     * Under a sharded control plane any shard may own VMs on any
     * cluster, so forwards arrive from all of them; each report is
     * answered to the shard that forwarded the request. Empty = just
     * controllerId (the classic single controller).
     */
    std::set<std::string> controllerIds;
    std::string pcaId = "privacy-ca";
    proto::TimingModel timing;
    proto::ReliabilityModel reliability;
    std::size_t identityKeyBits = 512;

    /** Bounds for randomized periodic attestation intervals. */
    SimTime randomPeriodMin = seconds(5);
    SimTime randomPeriodMax = seconds(60);

    /**
     * Memoize successful pCA certificate verifications by certificate
     * digest, so a reused AVK session is chain-checked once instead of
     * once per MeasureResponse. Cache hits are byte-identical
     * decisions to cold verification; failures are never cached.
     */
    bool enableVerificationCaches = true;
    std::size_t certCacheCapacity = 256;

    /** Receive-side AttestForward dedup cache bound (FIFO eviction). */
    std::size_t reportCacheCapacity = 128;

    /**
     * Minimum-TCB policy (interpreters.h). When armed the AS requests
     * the TcbVersion measurement with every rM and renders
     * TcbRollback for evidence from below-floor (or version-less)
     * firmware, and for stale-quote replays caught by the N3
     * freshness check. Disarmed by default: legacy golden traces are
     * byte-identical with the policy off.
     */
    TcbPolicy tcbPolicy;

    /**
     * Durable appraiser state: journal dedup-cache and verified-chain
     * insertions to a write-ahead StableStore so a restarted AS keeps
     * answering retransmitted forwards idempotently instead of
     * double-signing reports it already issued.
     */
    bool durable = true;

    /** Journal-compaction triggers (count / size / age); all 0 =
     * never checkpoint. */
    sim::CheckpointPolicyConfig checkpointPolicy;

    /**
     * Fan-in batching window for MeasureResponse verification. All
     * responses arriving within the window of the first one verify as
     * one batch on the compute plane (certificate chains, quote
     * signatures in parallel; decisions and counters applied serially
     * in arrival order). 0 still batches responses delivered at the
     * same simulated timestamp — batch composition depends only on
     * sim time, never on the host thread count.
     */
    SimTime batchWindow = 0;

    /**
     * Pre-generated identity keys (must equal
     * deriveIdentityKeys(id, seed, identityKeyBits)); empty derives
     * them in the constructor. Cloud construction uses this to fan the
     * per-entity keygen out across the compute plane.
     */
    std::optional<crypto::RsaKeyPair> presetIdentityKeys;

    /**
     * Wire codec this node speaks (DESIGN.md §17). Legacy is the
     * canonical default; Tagged is the schema-evolvable opt-in.
     * Received frames always decode by their own self-described
     * format, so mixed fleets interoperate.
     */
    proto::WireContext wire;
};

/** Observable counters. */
struct AttestationServerStats
{
    std::uint64_t measurementRequestsSent = 0;
    std::uint64_t responsesVerified = 0;
    std::uint64_t verificationFailures = 0;
    std::uint64_t reportsIssued = 0;
    std::uint64_t periodicRoundsRun = 0;
    std::uint64_t certCacheHits = 0;
    std::uint64_t certCacheMisses = 0;
    std::uint64_t measureRetries = 0;  //!< MeasureRequest resends.
    std::uint64_t measureTimeouts = 0; //!< Sessions given up on.
    std::uint64_t duplicateForwards = 0; //!< Dedup'd AttestForwards.
    std::uint64_t recoveries = 0;      //!< Journal replays completed.
    std::uint64_t corruptRecoveries = 0; //!< Replays that healed a
                                         //!< torn/rotted durable image.
    std::uint64_t rttSamples = 0;      //!< Karn-valid RTT samples taken.
    std::uint64_t tcbRollbackVerdicts = 0; //!< Properties failed by the
                                           //!< minimum-TCB policy.
    std::uint64_t staleReplaysDetected = 0; //!< N3-freshness failures
                                            //!< classified as replays.
};

/** The Attestation Server entity. */
class AttestationServer
{
  public:
    AttestationServer(sim::EventQueue &eq, net::Network &network,
                      net::KeyDirectory &directory,
                      AttestationServerConfig config, std::uint64_t seed);

    /** Deterministic identity-key derivation (see presetIdentityKeys). */
    static crypto::RsaKeyPair deriveIdentityKeys(const std::string &id,
                                                 std::uint64_t seed,
                                                 std::size_t bits);

    const std::string &id() const { return cfg.id; }

    /** Identity public key SKa's verification half (VKa). */
    const crypto::RsaPublicKey &identityPublic() const
    {
        return keys.pub;
    }

    // --- oat database provisioning (trusted admin path) ---------------

    /** Record a server's known-good platform configuration. */
    void setServerReference(const std::string &serverId,
                            ServerReference ref);

    /** Record a VM's reference data. */
    void setVmReference(const std::string &vid, VmReference ref);

    /** Register a pristine catalog image digest (IMA appraiser DB). */
    void addKnownGoodImage(const Bytes &digest);

    /** Per-VM reference (nullptr when absent). */
    const VmReference *vmReference(const std::string &vid) const;

    /** The interpreter registry (extensible, §4.1). */
    InterpreterRegistry &interpreters() { return registry; }

    /** Last verified measurements for a VM (nullptr when none). */
    const proto::MeasurementSet *lastMeasurements(
        const std::string &vid) const;

    /** Number of active periodic attestation tasks. */
    std::size_t activePeriodicTasks() const;

    const AttestationServerStats &stats() const { return counters; }

    /** The certificate verification cache (bench/test introspection). */
    const CertVerificationCache &certificateCache() const
    {
        return certCache;
    }

    /**
     * Simulate a crash: detach from the network and drop all volatile
     * state (sessions, periodic tasks, archives, caches). Reference
     * databases survive — they are the oat databases on disk,
     * re-provisioned by the trusted admin path anyway.
     */
    void crash();

    /** Rejoin the network after a crash (replays the journal). */
    void restart();

    /** True while attached to the network. */
    bool isUp() const { return endpoint.attached(); }

    /** The appraiser's durable store (journal + checkpoints). */
    const sim::StableStore &stableStore() const { return store; }

    /** Install the disk-failure model on the store (nullptr = clean
     * disk). Wired by core::Cloud when a fault plan is installed. */
    void setStorageFaults(const sim::StorageFaultModel *model)
    {
        store.setFaultModel(model);
    }

    /** Dedup-cache introspection (bounds/eviction tests). */
    std::size_t reportCacheSize() const { return reportCache.size(); }

    /** Cached report request ids in FIFO eviction order. */
    std::vector<std::uint64_t> reportCacheRequestIds() const
    {
        return {reportOrder.begin(), reportOrder.end()};
    }

    /** Wire codec this node emits (mixed-version tests flip it at
     * runtime to simulate a rolling upgrade). */
    const proto::WireContext &wireContext() const { return cfg.wire; }
    void setWireContext(const proto::WireContext &ctx) { cfg.wire = ctx; }

    /** Observed RTT to a cloud server (nullptr before any sample). */
    const proto::RttEstimator *serverRttEstimate(
        const std::string &serverId) const
    {
        const auto it = serverRtt.find(serverId);
        return it == serverRtt.end() ? nullptr : &it->second;
    }

  private:
    struct Session
    {
        proto::AttestForward forward;
        net::NodeId controller;      //!< Shard the report goes back to.
        Bytes nonce3;
        Bytes requestBytes;          //!< For identical retransmission.
        SimTime sentAt = 0;          //!< First send (RTT sampling).
        int retries = 0;
        sim::EventId retryTimer = 0; //!< 0 = none pending.
    };

    struct PeriodicTask
    {
        proto::AttestForward forward;
        net::NodeId controller; //!< Shard that owns the stream.
        bool active = true;
    };

    /** Outcome of one pure certificate chain check. */
    struct ChainCheck
    {
        bool ok = false;
        crypto::RsaPublicKey avk;
        std::string error;
    };

    void handleMessage(const net::NodeId &from, const Bytes &plaintext);

    /** Pack an outgoing message in this node's configured format. */
    template <typename M>
    Bytes pack(proto::MessageKind kind, const M &msg) const
    {
        return proto::packFor(cfg.wire, kind, msg);
    }

    /** Format of the frame currently being dispatched (set by
     * handleMessage before the synchronous handler call). */
    proto::WireFormat rxFormat_ = proto::WireFormat::Legacy;

    /** True when `node` is a controller shard we serve. */
    bool isKnownController(const net::NodeId &node) const;
    void onAttestForward(const net::NodeId &from, const Bytes &body);
    void processForward(const net::NodeId &from,
                        const proto::AttestForward &fwd);

    /** Arm the MeasureRequest retransmission timer for a session. */
    void scheduleMeasureRetry(std::uint64_t sessionId);

    /** Remember a signed report for idempotent retransmission. */
    void rememberReport(std::uint64_t requestId, Bytes encoded);
    void onMeasureResponse(const Bytes &body);
    void startMeasurement(const proto::AttestForward &forward,
                          const net::NodeId &controller);
    void runPeriodicRound(const std::string &key);
    void issueReport(const Session &session,
                     proto::AttestationReport report,
                     std::uint64_t tcbVersion = 0);
    void flushVerifyBatch();
    void flushSignBatch();
    void applyVerified(const Session &session,
                       Result<proto::MeasurementSet> verified);
    static ChainCheck checkCertificate(const Bytes &certBytes,
                                       const std::string &pcaId,
                                       const crypto::RsaPublicContext &pca);
    static Result<proto::MeasurementSet> verifyWithAvk(
        const Session &session, const proto::MeasureResponse &resp,
        const crypto::RsaPublicContext &avk);
    static std::string periodicKey(const proto::AttestForward &fwd);

    /** Compiled pCA key, rebuilt if the directory rotates it. */
    const crypto::RsaPublicContext &pcaContext(
        const crypto::RsaPublicKey &key);

    sim::EventQueue &events;
    AttestationServerConfig cfg;
    crypto::RsaKeyPair keys;
    /** Compiled identity key for report signatures. */
    crypto::RsaPrivateContext signCtx;
    const net::KeyDirectory &dir;
    net::SecureEndpoint endpoint;
    InterpreterRegistry registry;
    Rng rng;
    CertVerificationCache certCache;
    std::optional<crypto::RsaPublicContext> pcaCtx;

    std::map<std::string, ServerReference> serverRefs;
    std::map<std::string, VmReference> vmRefs;
    std::set<Bytes> knownGoodImages;
    std::map<std::uint64_t, Session> sessions;
    std::map<std::string, PeriodicTask> periodic;
    std::map<std::string, proto::MeasurementSet> measurementArchive;

    /** Fan-in batches (see AttestationServerConfig::batchWindow). */
    std::vector<proto::MeasureResponse> verifyQueue;
    bool verifyFlushScheduled = false;
    /** Reports awaiting signature; `cacheable` marks one-time requests
     * whose signed bytes feed the dedup cache. */
    struct SignItem
    {
        proto::ReportToController msg;
        net::NodeId controller; //!< Shard this report is sent to.
        bool cacheable = false;
    };
    std::vector<SignItem> signQueue;
    bool signFlushScheduled = false;

    /**
     * Receive-side dedup for AttestForward: one-time requests in
     * flight (started, report not yet signed) are ignored on
     * retransmission; completed ones are answered by re-sending the
     * cached signed report — never by double-signing. Bounded FIFO.
     */
    std::set<std::uint64_t> forwardInFlight;
    std::map<std::uint64_t, Bytes> reportCache;
    std::deque<std::uint64_t> reportOrder;

    // --- Durability (write-ahead journal) ------------------------------

    /** Journal record types (StableStore payload tags). */
    enum class JournalType : std::uint16_t
    {
        ReportRemember = 1, //!< requestId + signed report bytes.
        CertInsert = 2,     //!< cert digest + verified AVK.
    };

    void journalReport(std::uint64_t requestId, const Bytes &encoded);
    void journalCert(const Bytes &digest, const crypto::RsaPublicKey &avk);

    /** True when this node writes tagged journal payloads. */
    bool taggedJournal() const
    {
        return cfg.wire.format == proto::WireFormat::Tagged;
    }

    /** StableStore type word for a record in this node's format. */
    std::uint16_t journalTag(JournalType t) const
    {
        return static_cast<std::uint16_t>(t) |
               (taggedJournal() ? proto::kTaggedJournalBit
                                : std::uint16_t{0});
    }
    /** fsync + checkpoint policy; end of every mutating event. */
    void commitJournal();
    Bytes snapshotState() const;
    void applySnapshot(const Bytes &snapshot);
    void applyJournalRecord(const sim::JournalRecord &rec);
    void recover();

    sim::StableStore store;
    sim::CheckpointPolicy ckptPolicy;
    bool replaying = false; //!< recover() in progress: journal muted.

    /** Per-server RTT estimators feeding the adaptive measureRto. */
    std::map<std::string, proto::RttEstimator> serverRtt;

    std::uint64_t nextSession = 1;
    AttestationServerStats counters;
};

} // namespace monatt::attestation

#endif // MONATT_ATTESTATION_ATTESTATION_SERVER_H
