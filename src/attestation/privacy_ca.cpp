#include "attestation/privacy_ca.h"

#include "common/logging.h"
#include "tpm/certificate.h"

namespace monatt::attestation
{

using proto::MessageKind;

namespace
{

crypto::RsaKeyPair
makeKeys(const std::string &id, std::uint64_t seed)
{
    Bytes material = toBytes("pca-identity:" + id);
    for (int i = 0; i < 8; ++i)
        material.push_back(static_cast<std::uint8_t>(seed >> (8 * i)));
    crypto::HmacDrbg drbg(material);
    Rng rng = drbg.forkRng();
    return crypto::rsaGenerateKeyPair(512, rng);
}

Bytes
endpointSeed(const std::string &id, std::uint64_t seed)
{
    Bytes material = toBytes("pca-endpoint:" + id);
    for (int i = 0; i < 8; ++i)
        material.push_back(static_cast<std::uint8_t>(seed >> (8 * i)));
    return material;
}

} // namespace

PrivacyCa::PrivacyCa(sim::EventQueue &eq, net::Network &network,
                     net::KeyDirectory &directory, std::string id,
                     proto::TimingModel timingModel, std::uint64_t seed)
    : events(eq), self(std::move(id)), keys(makeKeys(self, seed)),
      dir(directory), timing(timingModel),
      endpoint(network, self, keys, directory, endpointSeed(self, seed))
{
    endpoint.onMessage([this](const net::NodeId &from, const Bytes &msg) {
        handleMessage(from, msg);
    });
}

void
PrivacyCa::handleMessage(const net::NodeId &from, const Bytes &plaintext)
{
    auto unpacked = proto::unpackMessage(plaintext);
    if (!unpacked || unpacked.value().first != MessageKind::CertRequest)
        return;
    auto reqR = proto::CertRequest::decode(unpacked.value().second);
    if (!reqR)
        return;
    const proto::CertRequest req = reqR.take();

    events.scheduleAfter(timing.pcaProcessing, [this, req, from] {
        proto::CertResponse resp;
        resp.sessionLabel = req.sessionLabel;

        // The requester must be the server whose identity key signed
        // the AVK: verify [AVKs]_SKs against the directory's VKs.
        auto serverKey = dir.lookup(req.serverId);
        const bool fromOwner = from == req.serverId;
        if (!serverKey || !fromOwner ||
            !crypto::rsaVerify(serverKey.value(), req.avk,
                               req.avkSignature)) {
            ++rejections;
            resp.ok = false;
            resp.error = "identity verification failed";
            MONATT_LOG(Warn, "pca")
                << "refused certification for " << req.serverId;
        } else {
            auto avk = crypto::RsaPublicKey::decode(req.avk);
            if (!avk) {
                ++rejections;
                resp.ok = false;
                resp.error = "malformed attestation key";
            } else {
                const tpm::Certificate cert = tpm::issueCertificate(
                    req.sessionLabel, avk.value(), self, ++serial,
                    keys.priv);
                resp.ok = true;
                resp.certificate = cert.encode();
            }
        }
        endpoint.sendSecure(from,
                            proto::packMessage(MessageKind::CertResponse,
                                               resp.encode()));
    }, "pca.issue");
}

} // namespace monatt::attestation
