#include "attestation/privacy_ca.h"

#include "common/logging.h"
#include "sim/worker_pool.h"
#include "tpm/certificate.h"

namespace monatt::attestation
{

using proto::MessageKind;

namespace
{

Bytes
endpointSeed(const std::string &id, std::uint64_t seed)
{
    Bytes material = toBytes("pca-endpoint:" + id);
    for (int i = 0; i < 8; ++i)
        material.push_back(static_cast<std::uint8_t>(seed >> (8 * i)));
    return material;
}

} // namespace

crypto::RsaKeyPair
PrivacyCa::deriveKeys(const std::string &id, std::uint64_t seed)
{
    Bytes material = toBytes("pca-identity:" + id);
    for (int i = 0; i < 8; ++i)
        material.push_back(static_cast<std::uint8_t>(seed >> (8 * i)));
    crypto::HmacDrbg drbg(material);
    Rng rng = drbg.forkRng();
    return crypto::rsaGenerateKeyPair(512, rng);
}

PrivacyCa::PrivacyCa(sim::EventQueue &eq, net::Network &network,
                     net::KeyDirectory &directory, std::string id,
                     proto::TimingModel timingModel, std::uint64_t seed,
                     SimTime batchWindow,
                     std::optional<crypto::RsaKeyPair> presetKeys)
    : events(eq), self(std::move(id)),
      keys(presetKeys ? *std::move(presetKeys) : deriveKeys(self, seed)),
      signCtx(keys.priv), dir(directory), timing(timingModel),
      window(batchWindow),
      endpoint(network, self, keys, directory, endpointSeed(self, seed))
{
    endpoint.onMessage([this](const net::NodeId &from, const Bytes &msg) {
        handleMessage(from, msg);
    });
}

void
PrivacyCa::handleMessage(const net::NodeId &from, const Bytes &plaintext)
{
    auto unpacked = proto::unpackMessage(plaintext);
    if (!unpacked || unpacked.value().first != MessageKind::CertRequest)
        return;
    auto reqR = proto::CertRequest::decode(unpacked.value().second);
    if (!reqR)
        return;

    // Idempotent issuance: answer a retransmission with the cached
    // response; swallow duplicates of a request still being processed.
    const CertKey key{from, reqR.value().sessionLabel};
    const auto cached = issuedCache.find(key);
    if (cached != issuedCache.end()) {
        endpoint.sendSecure(from,
                            proto::packMessage(MessageKind::CertResponse,
                                               Bytes(cached->second)));
        return;
    }
    if (!inFlight.insert(key).second)
        return;

    // Model the per-request processing delay, then batch every request
    // that matured within the window for the compute plane.
    events.scheduleAfter(timing.pcaProcessing,
                         [this, req = reqR.take(), from]() mutable {
        pending.push_back(Pending{std::move(req), from});
        if (!flushScheduled) {
            flushScheduled = true;
            events.scheduleAfter(window, [this] { flushBatch(); },
                                 "pca.flush");
        }
    }, "pca.issue");
}

void
PrivacyCa::flushBatch()
{
    flushScheduled = false;
    std::vector<Pending> batch;
    batch.swap(pending);

    struct Item
    {
        Pending p;
        std::optional<crypto::RsaPublicKey> serverKey;
        bool identityOk = false;
        std::optional<crypto::RsaPublicKey> avk;
        std::uint64_t serialNo = 0;
        proto::CertResponse resp;
    };
    std::vector<Item> items;
    items.reserve(batch.size());

    // Serial pre-pass, in arrival order: directory lookups and
    // requester checks (shared state reads stay on the driver thread).
    for (Pending &p : batch) {
        Item item;
        if (p.from == p.req.serverId) {
            if (auto key = dir.lookup(p.req.serverId))
                item.serverKey = key.take();
        }
        item.p = std::move(p);
        item.resp.sessionLabel = item.p.req.sessionLabel;
        items.push_back(std::move(item));
    }

    // Pure compute: the identity signature over [AVKs]_SKs and the
    // AVK decode, one task per request.
    sim::WorkerPool::global().parallelFor(
        items.size(), [&](std::size_t i) {
            Item &item = items[i];
            if (!item.serverKey)
                return;
            if (!crypto::rsaVerify(*item.serverKey, item.p.req.avk,
                                   item.p.req.avkSignature)) {
                return;
            }
            item.identityOk = true;
            if (auto avk = crypto::RsaPublicKey::decode(item.p.req.avk))
                item.avk = avk.take();
        });

    // Serial mid-pass, in arrival order: rejections and serial-number
    // assignment — the issue order any serial pCA would produce.
    for (Item &item : items) {
        if (!item.identityOk) {
            ++rejections;
            item.resp.ok = false;
            item.resp.error = "identity verification failed";
            MONATT_LOG(Warn, "pca")
                << "refused certification for " << item.p.req.serverId;
        } else if (!item.avk) {
            ++rejections;
            item.resp.ok = false;
            item.resp.error = "malformed attestation key";
        } else {
            item.serialNo = ++serial;
        }
    }

    // Pure compute: certificate signatures for the accepted requests.
    sim::WorkerPool::global().parallelFor(
        items.size(), [&](std::size_t i) {
            Item &item = items[i];
            if (item.serialNo == 0)
                return;
            const tpm::Certificate cert = tpm::issueCertificate(
                item.p.req.sessionLabel, *item.avk, self, item.serialNo,
                signCtx);
            item.resp.ok = true;
            item.resp.certificate = cert.encode();
        });

    // Serial responses in arrival order.
    for (Item &item : items) {
        Bytes encoded = item.resp.encode();
        const CertKey key{item.p.from, item.p.req.sessionLabel};
        inFlight.erase(key);
        if (issuedCache.emplace(key, encoded).second) {
            issuedOrder.push_back(key);
            while (issuedOrder.size() > kIssuedCacheSize) {
                issuedCache.erase(issuedOrder.front());
                issuedOrder.pop_front();
            }
        }
        endpoint.sendSecure(item.p.from,
                            proto::packMessage(MessageKind::CertResponse,
                                               std::move(encoded)));
    }
}

} // namespace monatt::attestation
