#include "attestation/privacy_ca.h"

#include "common/codec.h"
#include "common/wire.h"
#include "common/logging.h"
#include "sim/worker_pool.h"
#include "tpm/certificate.h"

namespace monatt::attestation
{

using proto::MessageKind;

namespace
{

Bytes
endpointSeed(const std::string &id, std::uint64_t seed)
{
    Bytes material = toBytes("pca-endpoint:" + id);
    for (int i = 0; i < 8; ++i)
        material.push_back(static_cast<std::uint8_t>(seed >> (8 * i)));
    return material;
}

} // namespace

crypto::RsaKeyPair
PrivacyCa::deriveKeys(const std::string &id, std::uint64_t seed)
{
    Bytes material = toBytes("pca-identity:" + id);
    for (int i = 0; i < 8; ++i)
        material.push_back(static_cast<std::uint8_t>(seed >> (8 * i)));
    crypto::HmacDrbg drbg(material);
    Rng rng = drbg.forkRng();
    return crypto::rsaGenerateKeyPair(512, rng);
}

PrivacyCa::PrivacyCa(sim::EventQueue &eq, net::Network &network,
                     net::KeyDirectory &directory, std::string id,
                     proto::TimingModel timingModel, std::uint64_t seed,
                     SimTime batchWindow,
                     std::optional<crypto::RsaKeyPair> presetKeys)
    : events(eq), self(std::move(id)),
      keys(presetKeys ? *std::move(presetKeys) : deriveKeys(self, seed)),
      signCtx(keys.priv), dir(directory), timing(timingModel),
      window(batchWindow),
      endpoint(network, self, keys, directory, endpointSeed(self, seed)),
      store(self)
{
    endpoint.onMessage([this](const net::NodeId &from, const Bytes &msg) {
        handleMessage(from, msg);
    });
}

void
PrivacyCa::handleMessage(const net::NodeId &from, const Bytes &plaintext)
{
    auto unpacked = proto::unpackMessage(plaintext);
    if (!unpacked || unpacked.value().kind != MessageKind::CertRequest)
        return;
    rxFormat_ = unpacked.value().format;
    auto reqR = proto::decodeAs<proto::CertRequest>(rxFormat_,
                                                    unpacked.value().body);
    if (!reqR)
        return;

    // Idempotent issuance: answer a retransmission with the cached
    // response; swallow duplicates of a request still being processed.
    const CertKey key{from, reqR.value().sessionLabel};
    const auto cached = issuedCache.find(key);
    if (cached != issuedCache.end()) {
        endpoint.sendSecure(from,
                            proto::packMessage(MessageKind::CertResponse,
                                               Bytes(cached->second)));
        return;
    }
    if (!inFlight.insert(key).second)
        return;

    // Model the per-request processing delay, then batch every request
    // that matured within the window for the compute plane.
    events.scheduleAfter(timing.pcaProcessing,
                         [this, req = reqR.take(), from,
                          eraNow = era]() mutable {
        if (eraNow != era)
            return;
        pending.push_back(Pending{std::move(req), from});
        if (!flushScheduled) {
            flushScheduled = true;
            events.scheduleAfter(window, [this, eraNow] {
                if (eraNow != era)
                    return;
                flushBatch();
            }, "pca.flush");
        }
    }, "pca.issue");
}

void
PrivacyCa::flushBatch()
{
    flushScheduled = false;
    std::vector<Pending> batch;
    batch.swap(pending);

    struct Item
    {
        Pending p;
        std::optional<crypto::RsaPublicKey> serverKey;
        bool identityOk = false;
        std::optional<crypto::RsaPublicKey> avk;
        std::uint64_t serialNo = 0;
        proto::CertResponse resp;
    };
    std::vector<Item> items;
    items.reserve(batch.size());

    // Serial pre-pass, in arrival order: directory lookups and
    // requester checks (shared state reads stay on the driver thread).
    for (Pending &p : batch) {
        Item item;
        if (p.from == p.req.serverId) {
            if (auto key = dir.lookup(p.req.serverId))
                item.serverKey = key.take();
        }
        item.p = std::move(p);
        item.resp.sessionLabel = item.p.req.sessionLabel;
        items.push_back(std::move(item));
    }

    // Pure compute: the identity signature over [AVKs]_SKs and the
    // AVK decode, one task per request.
    sim::WorkerPool::global().parallelFor(
        items.size(), [&](std::size_t i) {
            Item &item = items[i];
            if (!item.serverKey)
                return;
            if (!crypto::rsaVerify(*item.serverKey, item.p.req.avk,
                                   item.p.req.avkSignature)) {
                return;
            }
            item.identityOk = true;
            if (auto avk = crypto::RsaPublicKey::decode(item.p.req.avk))
                item.avk = avk.take();
        });

    // Serial mid-pass, in arrival order: rejections and serial-number
    // assignment — the issue order any serial pCA would produce.
    for (Item &item : items) {
        if (!item.identityOk) {
            ++rejections;
            item.resp.ok = false;
            item.resp.error = "identity verification failed";
            MONATT_LOG(Warn, "pca")
                << "refused certification for " << item.p.req.serverId;
        } else if (!item.avk) {
            ++rejections;
            item.resp.ok = false;
            item.resp.error = "malformed attestation key";
        } else {
            item.serialNo = ++serial;
        }
    }

    // Pure compute: certificate signatures for the accepted requests.
    sim::WorkerPool::global().parallelFor(
        items.size(), [&](std::size_t i) {
            Item &item = items[i];
            if (item.serialNo == 0)
                return;
            const tpm::Certificate cert = tpm::issueCertificate(
                item.p.req.sessionLabel, *item.avk, self, item.serialNo,
                signCtx);
            item.resp.ok = true;
            item.resp.certificate = cert.encode();
        });

    // Serial responses in arrival order. The whole batch journals as
    // one appendMany (same record sequence and LSNs as per-item
    // appends, one bulk buffer splice) before the group-commit sync.
    // The dedup cache and journal hold the canonical legacy body
    // (cache hits are resent legacy-framed); only the fresh send uses
    // this node's configured wire format.
    std::vector<Bytes> issuedJournal;
    for (Item &item : items) {
        Bytes encoded = item.resp.encode();
        const CertKey key{item.p.from, item.p.req.sessionLabel};
        inFlight.erase(key);
        const auto [cacheIt, inserted] =
            issuedCache.emplace(key, std::move(encoded));
        if (inserted) {
            if (durable && !replaying)
                issuedJournal.push_back(encodeIssued(key, cacheIt->second));
            issuedOrder.push_back(key);
            while (issuedOrder.size() > issuedCacheCapacity) {
                issuedCache.erase(issuedOrder.front());
                issuedOrder.pop_front();
            }
        }
        endpoint.sendSecure(item.p.from,
                            pack(MessageKind::CertResponse, item.resp));
    }
    store.appendMany(journalTag(JournalType::CertIssued),
                     std::move(issuedJournal));
    commitJournal();
}

// --- Durability: WAL + recovery ---------------------------------------

Bytes
PrivacyCa::encodeIssued(const CertKey &key, const Bytes &encoded) const
{
    // The serial counter rides along so replay restores it without a
    // separate record type (rejected responses mint no serial but
    // still carry the current counter). Serials for a batch are all
    // assigned before any response encodes, so deferring the batch's
    // journal records to one appendMany writes identical bytes.
    if (taggedJournal()) {
        wire::WireWriter w;
        if (serial != 0)
            w.putVarint(1, serial);
        if (rejections != 0)
            w.putVarint(2, rejections);
        w.putString(3, key.first);
        w.putString(4, key.second);
        w.putLen(5, encoded);
        return w.take();
    }
    ByteWriter w;
    w.putU64(serial);
    w.putU64(rejections);
    w.putString(key.first);
    w.putString(key.second);
    w.putBytes(encoded);
    return w.take();
}

void
PrivacyCa::commitJournal()
{
    if (!durable || replaying)
        return;
    if (store.pendingRecords() > 0)
        store.sync();
    if (ckptPolicy.shouldCheckpoint(store, events.now())) {
        store.checkpoint(snapshotState());
        ckptPolicy.noteCheckpoint();
    }
}

Bytes
PrivacyCa::snapshotState() const
{
    ByteWriter w;
    w.putU64(serial);
    w.putU64(rejections);
    w.putU32(static_cast<std::uint32_t>(issuedOrder.size()));
    for (const CertKey &key : issuedOrder) {
        w.putString(key.first);
        w.putString(key.second);
        w.putBytes(issuedCache.at(key));
    }
    return w.take();
}

void
PrivacyCa::applySnapshot(const Bytes &snapshot)
{
    ByteReader r(snapshot);
    auto serialNo = r.getU64();
    auto rejectionCount = r.getU64();
    auto count = r.getU32();
    if (!serialNo || !rejectionCount || !count)
        return;
    serial = serialNo.value();
    rejections = rejectionCount.value();
    for (std::uint32_t i = 0; i < count.value(); ++i) {
        auto from = r.getString();
        auto label = r.getString();
        auto encoded = r.getBytes();
        if (!from || !label || !encoded)
            return;
        const CertKey key{from.value(), label.value()};
        if (issuedCache.emplace(key, encoded.take()).second) {
            issuedOrder.push_back(key);
            while (issuedOrder.size() > issuedCacheCapacity) {
                issuedCache.erase(issuedOrder.front());
                issuedOrder.pop_front();
            }
        }
    }
}

void
PrivacyCa::applyJournalRecord(const sim::JournalRecord &rec)
{
    const bool tagged = (rec.type & proto::kTaggedJournalBit) != 0;
    if (static_cast<JournalType>(rec.type & ~proto::kTaggedJournalBit) !=
        JournalType::CertIssued)
        return;
    std::uint64_t serialNo = 0;
    std::uint64_t rejectionCount = 0;
    std::string fromId;
    std::string label;
    Bytes encoded;
    if (tagged) {
        wire::WireReader tr(rec.payload);
        while (!tr.atEnd()) {
            auto f = tr.next();
            if (!f)
                return;
            const wire::WireField &fld = f.value();
            switch (fld.number) {
              case 1:
                if (fld.type == wire::WireType::Varint)
                    serialNo = fld.varint;
                break;
              case 2:
                if (fld.type == wire::WireType::Varint)
                    rejectionCount = fld.varint;
                break;
              case 3:
                if (fld.type == wire::WireType::Len)
                    fromId = fld.asString();
                break;
              case 4:
                if (fld.type == wire::WireType::Len)
                    label = fld.asString();
                break;
              case 5:
                if (fld.type == wire::WireType::Len)
                    encoded = fld.bytes;
                break;
              default:
                break; // Unknown field: skip.
            }
        }
    } else {
        ByteReader r(rec.payload);
        auto s = r.getU64();
        auto rej = r.getU64();
        auto from = r.getString();
        auto lab = r.getString();
        auto enc = r.getBytes();
        if (!s || !rej || !from || !lab || !enc)
            return;
        serialNo = s.value();
        rejectionCount = rej.value();
        fromId = from.take();
        label = lab.take();
        encoded = enc.take();
    }
    serial = serialNo;
    rejections = rejectionCount;
    const CertKey key{std::move(fromId), std::move(label)};
    if (issuedCache.emplace(key, std::move(encoded)).second) {
        issuedOrder.push_back(key);
        while (issuedOrder.size() > issuedCacheCapacity) {
            issuedCache.erase(issuedOrder.front());
            issuedOrder.pop_front();
        }
    }
}

void
PrivacyCa::recover()
{
    replaying = true;
    auto image = store.replay();
    if (!image.clean) {
        // Healed replay: issuances in the dropped suffix are gone
        // from the dedup cache, so their retransmissions mint fresh
        // certificates instead of being answered from cache.
        ++corruptRecoveries_;
        MONATT_LOG(Info, "pca")
            << self << ": replay quarantined "
            << image.quarantinedRecords << " and truncated "
            << image.truncatedRecords << " corrupt journal records"
            << (image.snapshotQuarantined ? " (snapshot seal failed)"
                                          : "");
    }
    if (image.hasSnapshot)
        applySnapshot(image.snapshot);
    for (const sim::JournalRecord &rec : image.records)
        applyJournalRecord(rec);
    replaying = false;
    // Recovery doubles as a checkpoint.
    store.checkpoint(snapshotState());
    ckptPolicy.noteCheckpoint();
    MONATT_LOG(Info, "pca")
        << self << ": recovered serial " << serial << ", "
        << issuedCache.size() << " cached responses";
}

void
PrivacyCa::crash()
{
    if (!endpoint.attached())
        return;
    MONATT_LOG(Info, "pca") << self << ": crash";
    ++era;
    endpoint.detach();
    pending.clear();
    flushScheduled = false;
    inFlight.clear();
    issuedCache.clear();
    issuedOrder.clear();
    serial = 0;
    rejections = 0;
    // The un-fsynced journal tail is the page cache: lost.
    store.crash();
}

void
PrivacyCa::restart()
{
    if (endpoint.attached())
        return;
    MONATT_LOG(Info, "pca") << self << ": restart";
    endpoint.attach();
    if (durable)
        recover();
}

} // namespace monatt::attestation
