/**
 * @file
 * The privacy Certificate Authority (§3.2.3, §3.4.2).
 *
 * "The public attestation key AVKs is signed by the Cloud Server's
 * SKs and sent to the pCA for certification. The pCA verifies the
 * signature via VKs and issues the certificate for AVKs for that
 * server. This certificate enables the Attestation Server to
 * authenticate the Cloud Server 'anonymously' for this attestation."
 *
 * The certificate subject is the session label, never the server id:
 * the pCA knows which machine asked (it verified VKs), but nothing
 * downstream of the certificate can link the attestation to the
 * machine — the property that stops an attacker from using the
 * attestation service to locate a victim VM for co-residence [31].
 */

#ifndef MONATT_ATTESTATION_PRIVACY_CA_H
#define MONATT_ATTESTATION_PRIVACY_CA_H

#include <cstdint>
#include <string>

#include "net/secure_endpoint.h"
#include "proto/messages.h"
#include "proto/timing_model.h"
#include "sim/event_queue.h"

namespace monatt::attestation
{

/** The pCA entity. */
class PrivacyCa
{
  public:
    PrivacyCa(sim::EventQueue &eq, net::Network &network,
              net::KeyDirectory &directory, std::string id,
              proto::TimingModel timing, std::uint64_t seed);

    /** Node id. */
    const std::string &id() const { return self; }

    /** Public signing key (verifiers fetch it from the directory). */
    const crypto::RsaPublicKey &publicKey() const { return keys.pub; }

    /** Certificates issued so far. */
    std::uint64_t issued() const { return serial; }

    /** Requests rejected (bad identity signature etc). */
    std::uint64_t rejected() const { return rejections; }

  private:
    void handleMessage(const net::NodeId &from, const Bytes &plaintext);

    sim::EventQueue &events;
    std::string self;
    crypto::RsaKeyPair keys;
    const net::KeyDirectory &dir;
    proto::TimingModel timing;
    net::SecureEndpoint endpoint;
    std::uint64_t serial = 0;
    std::uint64_t rejections = 0;
};

} // namespace monatt::attestation

#endif // MONATT_ATTESTATION_PRIVACY_CA_H
