/**
 * @file
 * The privacy Certificate Authority (§3.2.3, §3.4.2).
 *
 * "The public attestation key AVKs is signed by the Cloud Server's
 * SKs and sent to the pCA for certification. The pCA verifies the
 * signature via VKs and issues the certificate for AVKs for that
 * server. This certificate enables the Attestation Server to
 * authenticate the Cloud Server 'anonymously' for this attestation."
 *
 * The certificate subject is the session label, never the server id:
 * the pCA knows which machine asked (it verified VKs), but nothing
 * downstream of the certificate can link the attestation to the
 * machine — the property that stops an attacker from using the
 * attestation service to locate a victim VM for co-residence [31].
 */

#ifndef MONATT_ATTESTATION_PRIVACY_CA_H
#define MONATT_ATTESTATION_PRIVACY_CA_H

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "net/secure_endpoint.h"
#include "proto/messages.h"
#include "proto/timing_model.h"
#include "sim/checkpoint_policy.h"
#include "sim/event_queue.h"
#include "sim/stable_store.h"

namespace monatt::attestation
{

/** The pCA entity. */
class PrivacyCa
{
  public:
    /**
     * `batchWindow` fans certification requests maturing within the
     * window of the first into one batch: identity checks and
     * certificate signatures run on the compute plane, serial numbers
     * and responses are assigned serially in arrival order. 0 still
     * batches requests maturing at the same simulated timestamp.
     * `presetKeys` must equal deriveKeys(id, seed) when supplied;
     * Cloud construction uses it to parallelize entity keygen.
     */
    PrivacyCa(sim::EventQueue &eq, net::Network &network,
              net::KeyDirectory &directory, std::string id,
              proto::TimingModel timing, std::uint64_t seed,
              SimTime batchWindow = 0,
              std::optional<crypto::RsaKeyPair> presetKeys = {});

    /** Deterministic identity-key derivation (see presetKeys). */
    static crypto::RsaKeyPair deriveKeys(const std::string &id,
                                         std::uint64_t seed);

    /** Node id. */
    const std::string &id() const { return self; }

    /** Public signing key (verifiers fetch it from the directory). */
    const crypto::RsaPublicKey &publicKey() const { return keys.pub; }

    /** Certificates issued so far. */
    std::uint64_t issued() const { return serial; }

    /** Requests rejected (bad identity signature etc). */
    std::uint64_t rejected() const { return rejections; }

    /**
     * Simulate a crash: detach, drop volatile state and the un-fsynced
     * journal tail. The signing key survives (it is provisioned
     * material, like a key file on disk).
     */
    void crash();

    /** Rejoin the network and replay the journal. */
    void restart();

    /** True while attached to the network. */
    bool isUp() const { return endpoint.attached(); }

    /** Durable issuance state: journal issued certificates so a
     * restarted pCA answers retransmissions idempotently and never
     * reuses a serial number. On by default. */
    void setDurable(bool on) { durable = on; }

    /** Issued-certificate dedup cache bound (FIFO eviction). */
    void setIssuedCacheCapacity(std::size_t capacity)
    {
        issuedCacheCapacity = capacity;
    }

    /** Journal-compaction triggers (count / size / age). */
    void setCheckpointPolicy(sim::CheckpointPolicyConfig config)
    {
        ckptPolicy = sim::CheckpointPolicy(config);
    }

    /** Install the disk-failure model on the store (nullptr = clean
     * disk). Wired by core::Cloud when a fault plan is installed. */
    void setStorageFaults(const sim::StorageFaultModel *model)
    {
        store.setFaultModel(model);
    }

    /** Recoveries that had to heal a torn/rotted durable image. */
    std::uint64_t corruptRecoveries() const { return corruptRecoveries_; }

    /** Dedup-cache introspection (bounds/eviction tests). */
    std::size_t issuedCacheSize() const { return issuedCache.size(); }

    /** Cached session labels in FIFO eviction order. */
    std::vector<std::string> issuedCacheLabels() const
    {
        std::vector<std::string> labels;
        labels.reserve(issuedOrder.size());
        for (const CertKey &key : issuedOrder)
            labels.push_back(key.second);
        return labels;
    }

    /** The pCA's durable store (journal + checkpoints). */
    const sim::StableStore &stableStore() const { return store; }

    /** Wire codec this node emits (DESIGN.md §17); received frames
     * always decode by their own self-described format. */
    const proto::WireContext &wireContext() const { return wire_; }
    void setWireContext(const proto::WireContext &ctx) { wire_ = ctx; }

  private:
    struct Pending
    {
        proto::CertRequest req;
        net::NodeId from;
    };

    void handleMessage(const net::NodeId &from, const Bytes &plaintext);
    void flushBatch();

    /** Pack an outgoing message in this node's configured format. */
    template <typename M>
    Bytes pack(proto::MessageKind kind, const M &msg) const
    {
        return proto::packFor(wire_, kind, msg);
    }

    /** True when this node writes tagged journal payloads. */
    bool taggedJournal() const
    {
        return wire_.format == proto::WireFormat::Tagged;
    }

    proto::WireContext wire_;
    /** Format of the frame currently being dispatched. */
    proto::WireFormat rxFormat_ = proto::WireFormat::Legacy;

    sim::EventQueue &events;
    std::string self;
    crypto::RsaKeyPair keys;
    /** Compiled signing key for certificate issuance. */
    crypto::RsaPrivateContext signCtx;
    const net::KeyDirectory &dir;
    proto::TimingModel timing;
    SimTime window;
    net::SecureEndpoint endpoint;
    std::vector<Pending> pending;
    bool flushScheduled = false;
    std::uint64_t serial = 0;
    std::uint64_t rejections = 0;

    /**
     * Idempotent issuance: a retransmitted CertRequest is answered
     * with the already-issued response instead of minting a fresh
     * serial number. Keyed by (requester, session label); bounded
     * FIFO. `inFlight` suppresses duplicates that arrive while the
     * first copy is still inside the processing/batch window.
     */
    using CertKey = std::pair<net::NodeId, std::string>;
    std::map<CertKey, Bytes> issuedCache;
    std::deque<CertKey> issuedOrder;
    std::set<CertKey> inFlight;
    std::size_t issuedCacheCapacity = 128;

    // --- Durability (write-ahead journal) ------------------------------

    /** Journal record types (StableStore payload tags). */
    enum class JournalType : std::uint16_t
    {
        CertIssued = 1, //!< serial counter + requester + label + resp.
    };

    /** StableStore type word for a record in this node's format. */
    std::uint16_t journalTag(JournalType t) const
    {
        return static_cast<std::uint16_t>(t) |
               (taggedJournal() ? proto::kTaggedJournalBit
                                : std::uint16_t{0});
    }

    Bytes encodeIssued(const CertKey &key, const Bytes &encoded) const;
    /** fsync + checkpoint policy; end of every mutating event. */
    void commitJournal();
    Bytes snapshotState() const;
    void applySnapshot(const Bytes &snapshot);
    void applyJournalRecord(const sim::JournalRecord &rec);
    void recover();

    sim::StableStore store;
    sim::CheckpointPolicy ckptPolicy;
    bool durable = true;
    bool replaying = false;  //!< recover() in progress: journal muted.
    std::uint64_t corruptRecoveries_ = 0;
    /** Crash epoch; stale pre-crash callbacks bail (see controller). */
    std::uint64_t era = 0;
};

} // namespace monatt::attestation

#endif // MONATT_ATTESTATION_PRIVACY_CA_H
