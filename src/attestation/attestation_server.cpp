#include "attestation/attestation_server.h"

#include "common/codec.h"
#include "common/wire.h"
#include "common/logging.h"
#include "crypto/sha256.h"
#include "sim/worker_pool.h"
#include "tpm/certificate.h"

namespace monatt::attestation
{

using proto::AttestationReport;
using proto::AttestForward;
using proto::AttestMode;
using proto::HealthStatus;
using proto::MeasureRequest;
using proto::MeasureResponse;
using proto::MessageKind;
using proto::PropertyResult;
using proto::ReportToController;

namespace
{

Bytes
endpointSeed(const std::string &id, std::uint64_t seed)
{
    Bytes material = toBytes("as-endpoint:" + id);
    for (int i = 0; i < 8; ++i)
        material.push_back(static_cast<std::uint8_t>(seed >> (8 * i)));
    return material;
}

/**
 * Deterministic per-AS session-id base. Under failover two ASes may
 * measure the same cloud server concurrently; disjoint id spaces keep
 * MeasureRequest ids (the server's pending-map key) from colliding.
 */
std::uint64_t
sessionBase(const std::string &id)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : id)
        h = (h ^ c) * 0x100000001b3ULL;
    return ((h & 0xffffffULL) << 32) + 1;
}

} // namespace

crypto::RsaKeyPair
AttestationServer::deriveIdentityKeys(const std::string &id,
                                      std::uint64_t seed, std::size_t bits)
{
    Bytes material = toBytes("as-identity:" + id);
    for (int i = 0; i < 8; ++i)
        material.push_back(static_cast<std::uint8_t>(seed >> (8 * i)));
    crypto::HmacDrbg drbg(material);
    Rng rng = drbg.forkRng();
    return crypto::rsaGenerateKeyPair(bits, rng);
}

AttestationServer::AttestationServer(sim::EventQueue &eq,
                                     net::Network &network,
                                     net::KeyDirectory &directory,
                                     AttestationServerConfig config,
                                     std::uint64_t seed)
    : events(eq), cfg(std::move(config)),
      keys(cfg.presetIdentityKeys
               ? *std::move(cfg.presetIdentityKeys)
               : deriveIdentityKeys(cfg.id, seed, cfg.identityKeyBits)),
      signCtx(keys.priv), dir(directory),
      endpoint(network, cfg.id, keys, directory,
               endpointSeed(cfg.id, seed)),
      registry(InterpreterRegistry::withDefaults()), rng(seed ^ 0xa5a5),
      certCache(cfg.certCacheCapacity), store(cfg.id),
      ckptPolicy(cfg.checkpointPolicy), nextSession(sessionBase(cfg.id))
{
    endpoint.onMessage([this](const net::NodeId &from, const Bytes &msg) {
        handleMessage(from, msg);
    });
    endpoint.setReliability(net::EndpointReliability{
        cfg.reliability.enabled, cfg.reliability.handshakeRto,
        cfg.reliability.handshakeRetryLimit});
}

void
AttestationServer::setServerReference(const std::string &serverId,
                                      ServerReference ref)
{
    serverRefs[serverId] = std::move(ref);
}

void
AttestationServer::setVmReference(const std::string &vid, VmReference ref)
{
    vmRefs[vid] = std::move(ref);
}

void
AttestationServer::addKnownGoodImage(const Bytes &digest)
{
    knownGoodImages.insert(digest);
}

const VmReference *
AttestationServer::vmReference(const std::string &vid) const
{
    const auto it = vmRefs.find(vid);
    return it == vmRefs.end() ? nullptr : &it->second;
}

const proto::MeasurementSet *
AttestationServer::lastMeasurements(const std::string &vid) const
{
    const auto it = measurementArchive.find(vid);
    return it == measurementArchive.end() ? nullptr : &it->second;
}

std::size_t
AttestationServer::activePeriodicTasks() const
{
    std::size_t n = 0;
    for (const auto &[key, task] : periodic)
        n += task.active;
    return n;
}

std::string
AttestationServer::periodicKey(const AttestForward &fwd)
{
    std::string key = fwd.vid;
    for (proto::SecurityProperty p : fwd.properties)
        key += "|" + propertyName(p);
    return key;
}

void
AttestationServer::handleMessage(const net::NodeId &from,
                                 const Bytes &plaintext)
{
    auto unpacked = proto::unpackMessage(plaintext);
    if (!unpacked)
        return;
    const auto &[kind, format, body] = unpacked.value();
    rxFormat_ = format;
    switch (kind) {
      case MessageKind::AttestForward:
        if (isKnownController(from))
            onAttestForward(from, body);
        break;
      case MessageKind::MeasureResponse:
        onMeasureResponse(body);
        break;
      default:
        MONATT_LOG(Warn, "as") << cfg.id
                               << ": unexpected message from " << from;
        break;
    }
}

bool
AttestationServer::isKnownController(const net::NodeId &node) const
{
    if (cfg.controllerIds.empty())
        return node == cfg.controllerId;
    return cfg.controllerIds.count(node) != 0;
}

void
AttestationServer::onAttestForward(const net::NodeId &from,
                                   const Bytes &body)
{
    auto fwdR = proto::decodeAs<AttestForward>(rxFormat_, body);
    if (!fwdR)
        return;
    const AttestForward fwd = fwdR.take();

    events.scheduleAfter(cfg.timing.attestorProcessing,
                         [this, from, fwd] { processForward(from, fwd); },
                         "as.forward");
}

void
AttestationServer::processForward(const net::NodeId &from,
                                  const AttestForward &fwd)
{
    // Idempotent receive: a retransmitted forward must not start a
    // second measurement pipeline or double-sign a finished report.
    if (fwd.mode == AttestMode::StartupOneTime ||
        fwd.mode == AttestMode::RuntimeOneTime) {
        if (forwardInFlight.count(fwd.requestId)) {
            ++counters.duplicateForwards;
            return;
        }
        const auto cached = reportCache.find(fwd.requestId);
        if (cached != reportCache.end()) {
            ++counters.duplicateForwards;
            // Answer the shard that asked: after a controller-side
            // failover or crash the retransmission may come from a
            // different node than the original forward.
            endpoint.sendSecure(from,
                                proto::packMessage(
                                    MessageKind::ReportToController,
                                    Bytes(cached->second)));
            return;
        }
        forwardInFlight.insert(fwd.requestId);
        startMeasurement(fwd, from);
        return;
    }

    switch (fwd.mode) {
      case AttestMode::RuntimePeriodic: {
        const std::string key = periodicKey(fwd);
        const auto it = periodic.find(key);
        // A duplicate of the already-running task is a no-op; a new
        // requestId (or retargeted server) replaces the task.
        if (it != periodic.end() && it->second.active &&
            it->second.forward.requestId == fwd.requestId &&
            it->second.forward.serverId == fwd.serverId) {
            ++counters.duplicateForwards;
            return;
        }
        periodic[key] = PeriodicTask{fwd, from, true};
        runPeriodicRound(key);
        break;
      }
      case AttestMode::StopPeriodic: {
        const std::string key = periodicKey(fwd);
        auto it = periodic.find(key);
        if (it != periodic.end())
            it->second.active = false;
        break;
      }
      default:
        break;
    }
}

void
AttestationServer::runPeriodicRound(const std::string &key)
{
    auto it = periodic.find(key);
    if (it == periodic.end() || !it->second.active)
        return;
    ++counters.periodicRoundsRun;
    startMeasurement(it->second.forward, it->second.controller);

    const SimTime period =
        it->second.forward.period > 0
            ? it->second.forward.period
            : cfg.randomPeriodMin +
                  static_cast<SimTime>(rng.nextBounded(
                      static_cast<std::uint64_t>(cfg.randomPeriodMax -
                                                 cfg.randomPeriodMin)));
    events.scheduleAfter(period, [this, key] { runPeriodicRound(key); },
                         "as.periodic");
}

void
AttestationServer::startMeasurement(const AttestForward &fwd,
                                    const net::NodeId &controller)
{
    const std::uint64_t sessionId = nextSession++;
    Session session;
    session.forward = fwd;
    session.controller = controller;
    session.nonce3 = rng.nextBytes(16);
    session.sentAt = events.now();

    MeasureRequest req;
    req.requestId = sessionId;
    req.vid = fwd.vid;
    for (proto::SecurityProperty p : fwd.properties) {
        for (proto::MeasurementType t : measurementsForProperty(p))
            req.rm.push_back(t);
    }
    // Minimum-TCB policy: every challenge also demands the platform
    // firmware version, so the appraisal below can hold it against
    // the configured floor.
    if (cfg.tcbPolicy.enabled())
        req.rm.push_back(proto::MeasurementType::TcbVersion);
    req.nonce3 = session.nonce3;
    req.window = 0; // Let the server apply its configured window.

    Bytes packed =
        pack(MessageKind::MeasureRequest, req);
    session.requestBytes = packed;
    sessions[sessionId] = std::move(session);
    ++counters.measurementRequestsSent;
    if (cfg.reliability.enabled)
        scheduleMeasureRetry(sessionId);
    endpoint.sendSecure(fwd.serverId, std::move(packed));
}

void
AttestationServer::scheduleMeasureRetry(std::uint64_t sessionId)
{
    Session &s = sessions.at(sessionId);
    proto::RttEstimator est;
    const auto rttIt = serverRtt.find(s.forward.serverId);
    if (rttIt != serverRtt.end())
        est = rttIt->second;
    const SimTime rto = cfg.reliability.rto(cfg.reliability.measureRto,
                                            est);
    const SimTime delay = cfg.reliability.backoff(rto, s.retries);
    s.retryTimer = events.scheduleAfter(delay, [this, sessionId] {
        auto it = sessions.find(sessionId);
        if (it == sessions.end())
            return;
        Session &s = it->second;
        s.retryTimer = 0;
        if (s.retries >= cfg.reliability.measureRetryLimit) {
            // Exhausted: the session terminates with an authentic
            // Unknown report — the customer learns the measurement
            // could not be collected, never a forged verdict.
            ++counters.measureTimeouts;
            MONATT_LOG(Warn, "as")
                << cfg.id << ": server " << s.forward.serverId
                << " unresponsive, session " << sessionId
                << " abandoned";
            const Session copy = std::move(s);
            sessions.erase(it);
            // A crashed-and-restarted server lost its session keys;
            // force a fresh handshake on the next contact.
            endpoint.resetPeer(copy.forward.serverId);
            applyVerified(copy, Result<proto::MeasurementSet>::error(
                                    "cloud server unreachable"));
            return;
        }
        ++s.retries;
        ++counters.measureRetries;
        // Identical retransmission: the server's dedup cache answers
        // a duplicate without re-executing the quote.
        endpoint.sendSecure(s.forward.serverId, Bytes(s.requestBytes));
        scheduleMeasureRetry(sessionId);
    }, "as.measure.retry");
}

void
AttestationServer::rememberReport(std::uint64_t requestId, Bytes encoded)
{
    const auto [it, inserted] =
        reportCache.emplace(requestId, std::move(encoded));
    if (inserted) {
        journalReport(requestId, it->second);
        reportOrder.push_back(requestId);
        while (reportOrder.size() > cfg.reportCacheCapacity) {
            reportCache.erase(reportOrder.front());
            reportOrder.pop_front();
        }
    }
}

const crypto::RsaPublicContext &
AttestationServer::pcaContext(const crypto::RsaPublicKey &key)
{
    if (!pcaCtx || !(pcaCtx->key() == key)) {
        pcaCtx.emplace(key);
        // A rotated pCA key invalidates every cached chain check.
        certCache.clear();
    }
    return *pcaCtx;
}

AttestationServer::ChainCheck
AttestationServer::checkCertificate(const Bytes &certBytes,
                                    const std::string &pcaId,
                                    const crypto::RsaPublicContext &pca)
{
    ChainCheck out;
    auto certR = tpm::Certificate::decode(certBytes);
    if (!certR) {
        out.error = "malformed attestation-key certificate";
        return out;
    }
    const tpm::Certificate cert = certR.take();
    if (cert.issuer != pcaId || !cert.verify(pca)) {
        out.error = "attestation-key certificate verification failed";
        return out;
    }
    auto avk = cert.publicKey();
    if (!avk) {
        out.error = "malformed attestation key in certificate";
        return out;
    }
    out.ok = true;
    out.avk = avk.take();
    return out;
}

Result<proto::MeasurementSet>
AttestationServer::verifyWithAvk(const Session &session,
                                 const MeasureResponse &resp,
                                 const crypto::RsaPublicContext &avk)
{
    using R = Result<proto::MeasurementSet>;

    // 2. Session-key signature over [Vid, rM, M, N3, Q3].
    if (!crypto::rsaVerify(avk, resp.signedPortion(), resp.signature))
        return R::error("measurement signature verification failed");

    // 3. Quote recomputation.
    const Bytes expectedQ3 = MeasureResponse::quoteInput(
        resp.vid, resp.rm, resp.m, resp.nonce3);
    if (!constantTimeEqual(expectedQ3, resp.quote3))
        return R::error("quote Q3 mismatch");

    // 4. Binding to the outstanding session (nonce freshness).
    if (!constantTimeEqual(resp.nonce3, session.nonce3))
        return R::error("nonce N3 mismatch (replay?)");
    if (resp.vid != session.forward.vid)
        return R::error("vid mismatch");

    return R::ok(resp.m);
}

void
AttestationServer::onMeasureResponse(const Bytes &body)
{
    auto respR = proto::decodeAs<MeasureResponse>(rxFormat_, body);
    if (!respR) {
        ++counters.verificationFailures;
        return;
    }
    verifyQueue.push_back(respR.take());
    if (!verifyFlushScheduled) {
        verifyFlushScheduled = true;
        events.scheduleAfter(cfg.batchWindow,
                             [this] { flushVerifyBatch(); },
                             "as.verify.flush");
    }
}

void
AttestationServer::flushVerifyBatch()
{
    verifyFlushScheduled = false;
    std::vector<MeasureResponse> batch;
    batch.swap(verifyQueue);

    // Serial pre-pass, in arrival order: bind responses to their
    // outstanding sessions and compute the certificate digests.
    struct Item
    {
        MeasureResponse resp;
        Session session;
        Bytes digest;
        std::optional<crypto::RsaPublicContext> avkCtx;
        Result<proto::MeasurementSet> verified =
            Result<proto::MeasurementSet>::error("not verified");
    };
    std::vector<Item> items;
    items.reserve(batch.size());
    for (MeasureResponse &resp : batch) {
        const auto it = sessions.find(resp.requestId);
        if (it == sessions.end()) {
            ++counters.verificationFailures;
            MONATT_LOG(Warn, "as") << "response for unknown session "
                                   << resp.requestId;
            continue;
        }
        if (it->second.retryTimer != 0) {
            events.cancel(it->second.retryTimer);
            it->second.retryTimer = 0;
        }
        // Karn's algorithm: only un-retransmitted exchanges yield an
        // unambiguous send-to-reply pairing.
        if (it->second.retries == 0) {
            serverRtt[it->second.forward.serverId].addSample(
                events.now() - it->second.sentAt);
            ++counters.rttSamples;
        }
        Item item;
        item.resp = std::move(resp);
        item.session = it->second;
        sessions.erase(it);
        items.push_back(std::move(item));
    }
    if (items.empty())
        return;

    auto pcaKey = dir.lookup(cfg.pcaId);
    if (!pcaKey) {
        for (Item &item : items) {
            applyVerified(item.session,
                          Result<proto::MeasurementSet>::error(
                              "no pCA key available"));
        }
        return;
    }
    const crypto::RsaPublicContext &pca = pcaContext(pcaKey.value());

    // 1. Certificate chains, deduplicated by digest: each distinct
    // certificate not already memoized is chain-checked once, on the
    // compute plane. With caches disabled every response still pays
    // exactly one (parallel) chain check, like the serial path did.
    std::map<Bytes, ChainCheck> chains;
    for (Item &item : items) {
        item.digest = crypto::Sha256::hash(item.resp.certificate);
        if (cfg.enableVerificationCaches && certCache.peek(item.digest))
            continue;
        chains.emplace(item.digest, ChainCheck{});
    }
    {
        std::vector<std::pair<const Bytes *, ChainCheck *>> work;
        work.reserve(chains.size());
        std::map<Bytes, const Bytes *> certByDigest;
        for (Item &item : items)
            certByDigest.emplace(item.digest, &item.resp.certificate);
        for (auto &[digest, check] : chains)
            work.emplace_back(certByDigest.at(digest), &check);
        sim::WorkerPool::global().parallelFor(
            work.size(), [&](std::size_t i) {
                *work[i].second =
                    checkCertificate(*work[i].first, cfg.pcaId, pca);
            });
    }

    // Serial replay, in arrival order: the exact lookup/insert and
    // counter sequence of per-response verification, substituting the
    // parallel chain results for the cold checks.
    for (Item &item : items) {
        crypto::RsaPublicKey avkKey;
        bool haveAvk = false;
        if (cfg.enableVerificationCaches) {
            if (const crypto::RsaPublicKey *hit =
                    certCache.lookup(item.digest)) {
                avkKey = *hit;
                haveAvk = true;
                ++counters.certCacheHits;
            } else {
                ++counters.certCacheMisses;
            }
        }
        if (!haveAvk) {
            const auto chainIt = chains.find(item.digest);
            const ChainCheck &chain = chainIt->second;
            if (!chain.ok) {
                item.verified =
                    Result<proto::MeasurementSet>::error(chain.error);
                continue;
            }
            avkKey = chain.avk;
            if (cfg.enableVerificationCaches) {
                certCache.insert(item.digest, avkKey);
                journalCert(item.digest, avkKey);
            }
        }
        item.avkCtx.emplace(avkKey);
    }

    // 2-4. Per-response signature, quote and binding checks — pure
    // compute, one task per response.
    sim::WorkerPool::global().parallelFor(
        items.size(), [&](std::size_t i) {
            Item &item = items[i];
            if (!item.avkCtx)
                return; // Chain check already failed.
            item.verified =
                verifyWithAvk(item.session, item.resp, *item.avkCtx);
        });

    // Serial post-pass, in arrival order: counters, archive updates
    // and interpretation scheduling.
    for (Item &item : items)
        applyVerified(item.session, std::move(item.verified));
    commitJournal();
}

void
AttestationServer::applyVerified(const Session &session,
                                 Result<proto::MeasurementSet> verified)
{
    AttestationReport report;
    report.vid = session.forward.vid;
    if (!verified) {
        ++counters.verificationFailures;
        MONATT_LOG(Warn, "as") << "measurement verification failed: "
                               << verified.errorMessage();
        // An N3 freshness failure means validly-signed but *old*
        // evidence answered a fresh challenge. With the minimum-TCB
        // policy armed that is attributed as a rollback-adjacent
        // attack (stale-quote replay), not mere verification noise:
        // the controller must treat the host as compromised.
        const bool staleReplay =
            cfg.tcbPolicy.enabled() &&
            verified.errorMessage() == "nonce N3 mismatch (replay?)";
        if (staleReplay)
            ++counters.staleReplaysDetected;
        for (proto::SecurityProperty p : session.forward.properties) {
            PropertyResult pr;
            pr.property = p;
            if (staleReplay) {
                pr.status = HealthStatus::TcbRollback;
                pr.detail = "stale quote replayed for fresh challenge";
                ++counters.tcbRollbackVerdicts;
            } else {
                pr.status = HealthStatus::Unknown;
                pr.detail = "measurement verification failed: " +
                            verified.errorMessage();
            }
            report.results.push_back(std::move(pr));
        }
        events.scheduleAfter(cfg.timing.interpretation,
                             [this, session, report]() mutable {
            report.issuedAt = events.now();
            issueReport(session, std::move(report));
        }, "as.report");
        return;
    }

    ++counters.responsesVerified;
    const proto::MeasurementSet m = verified.take();
    // Capture the previous archived measurements before overwriting:
    // history-sensitive interpreters compare against them.
    proto::MeasurementSet previous;
    bool havePrevious = false;
    const auto archIt = measurementArchive.find(session.forward.vid);
    if (archIt != measurementArchive.end()) {
        previous = archIt->second;
        havePrevious = true;
    }
    measurementArchive[session.forward.vid] = m;

    events.scheduleAfter(cfg.timing.interpretation,
                         [this, session, m, previous,
                          havePrevious]() mutable {
        InterpretationContext ctx;
        if (havePrevious)
            ctx.previous = &previous;
        const auto serverIt = serverRefs.find(session.forward.serverId);
        if (serverIt != serverRefs.end())
            ctx.serverRef = &serverIt->second;
        const auto vmIt = vmRefs.find(session.forward.vid);
        if (vmIt != vmRefs.end())
            ctx.vmRef = &vmIt->second;
        ctx.knownGoodImages = &knownGoodImages;

        // Minimum-TCB appraisal: the verified (signed) TCB version
        // measurement, held against each property's floor. Absence
        // counts as version 0 — a host that strips the measurement
        // must not out-trust one that honestly reports an old build.
        std::uint64_t reportedTcb = 0;
        bool haveTcb = false;
        if (const proto::Measurement *tv =
                m.find(proto::MeasurementType::TcbVersion);
            tv != nullptr && !tv->values.empty()) {
            reportedTcb = tv->values[0];
            haveTcb = true;
        }

        AttestationReport report;
        report.vid = session.forward.vid;
        for (proto::SecurityProperty p : session.forward.properties) {
            PropertyResult pr = registry.interpret(p, m, ctx);
            const std::uint64_t floor = cfg.tcbPolicy.floorFor(p);
            if (floor > 0 && reportedTcb < floor) {
                pr.status = HealthStatus::TcbRollback;
                pr.detail =
                    haveTcb
                        ? "TCB version " + std::to_string(reportedTcb) +
                              " below minimum " + std::to_string(floor)
                        : "no TCB version measurement (floor " +
                              std::to_string(floor) + ")";
                ++counters.tcbRollbackVerdicts;
            }
            report.results.push_back(std::move(pr));
        }
        report.issuedAt = events.now();
        issueReport(session, std::move(report), reportedTcb);
    }, "as.interpret");
}

void
AttestationServer::issueReport(const Session &session,
                               AttestationReport report,
                               std::uint64_t tcbVersion)
{
    ReportToController out;
    out.requestId = session.forward.requestId;
    out.vid = session.forward.vid;
    out.serverId = session.forward.serverId;
    out.properties = session.forward.properties;
    out.tcbVersion = tcbVersion; // Unsigned wire-v3 diagnostic mirror.
    out.report = std::move(report);
    out.nonce2 = session.forward.nonce2;
    out.quote2 = ReportToController::quoteInput(
        out.vid, out.serverId, out.properties, out.report, out.nonce2);

    const bool cacheable =
        session.forward.mode == AttestMode::StartupOneTime ||
        session.forward.mode == AttestMode::RuntimeOneTime;
    signQueue.push_back(
        SignItem{std::move(out), session.controller, cacheable});
    if (!signFlushScheduled) {
        signFlushScheduled = true;
        events.scheduleAfter(cfg.batchWindow,
                             [this] { flushSignBatch(); },
                             "as.sign.flush");
    }
}

void
AttestationServer::flushSignBatch()
{
    signFlushScheduled = false;
    std::vector<SignItem> batch;
    batch.swap(signQueue);

    // Report signatures are independent pure compute; each task writes
    // only its own slot.
    sim::WorkerPool::global().parallelFor(
        batch.size(), [&](std::size_t i) {
            batch[i].msg.signature =
                crypto::rsaSign(signCtx, batch[i].msg.signedPortion());
        });

    // Serial sends in issue order. The dedup cache and its journal
    // record always hold the canonical legacy body (resends are framed
    // legacy too, which any receiver decodes); only the fresh send
    // uses this node's configured wire format.
    for (SignItem &item : batch) {
        ++counters.reportsIssued;
        if (item.cacheable) {
            forwardInFlight.erase(item.msg.requestId);
            rememberReport(item.msg.requestId, item.msg.encode());
        }
        endpoint.sendSecure(item.controller.empty() ? cfg.controllerId
                                                    : item.controller,
                            pack(MessageKind::ReportToController,
                                 item.msg));
    }
    commitJournal();
}

void
AttestationServer::crash()
{
    if (!endpoint.attached())
        return;
    MONATT_LOG(Info, "as") << cfg.id << ": crash";
    endpoint.detach();
    for (auto &[id, s] : sessions) {
        if (s.retryTimer != 0)
            events.cancel(s.retryTimer);
    }
    // Volatile state dies: in-flight sessions, periodic tasks, batch
    // queues, archives and dedup caches. The oat reference databases
    // (serverRefs, vmRefs, knownGoodImages) are on disk and survive.
    sessions.clear();
    periodic.clear();
    verifyQueue.clear();
    signQueue.clear();
    measurementArchive.clear();
    certCache.clear();
    forwardInFlight.clear();
    reportCache.clear();
    reportOrder.clear();
    serverRtt.clear();
    // The un-fsynced journal tail is the page cache: lost.
    store.crash();
}

void
AttestationServer::restart()
{
    if (endpoint.attached())
        return;
    MONATT_LOG(Info, "as") << cfg.id << ": restart";
    endpoint.attach();
    if (cfg.durable)
        recover();
}

// --- Durability: WAL + recovery ---------------------------------------

void
AttestationServer::journalReport(std::uint64_t requestId,
                                 const Bytes &encoded)
{
    if (!cfg.durable || replaying)
        return;
    if (taggedJournal()) {
        wire::WireWriter w;
        w.putVarint(1, requestId);
        w.putLen(2, encoded);
        store.append(journalTag(JournalType::ReportRemember), w.take());
        return;
    }
    ByteWriter w;
    w.putU64(requestId);
    w.putBytes(encoded);
    store.append(journalTag(JournalType::ReportRemember), w.take());
}

void
AttestationServer::journalCert(const Bytes &digest,
                               const crypto::RsaPublicKey &avk)
{
    if (!cfg.durable || replaying)
        return;
    if (taggedJournal()) {
        wire::WireWriter w;
        w.putLen(1, digest);
        w.putLen(2, avk.encode());
        store.append(journalTag(JournalType::CertInsert), w.take());
        return;
    }
    ByteWriter w;
    w.putBytes(digest);
    w.putBytes(avk.encode());
    store.append(journalTag(JournalType::CertInsert), w.take());
}

void
AttestationServer::commitJournal()
{
    if (!cfg.durable || replaying)
        return;
    if (store.pendingRecords() > 0)
        store.sync();
    if (ckptPolicy.shouldCheckpoint(store, events.now())) {
        store.checkpoint(snapshotState());
        ckptPolicy.noteCheckpoint();
    }
}

Bytes
AttestationServer::snapshotState() const
{
    ByteWriter w;
    // Report dedup cache in FIFO order so eviction replays identically.
    w.putU32(static_cast<std::uint32_t>(reportOrder.size()));
    for (std::uint64_t requestId : reportOrder) {
        w.putU64(requestId);
        w.putBytes(reportCache.at(requestId));
    }
    // Verified certificate chains, same ordering rule.
    const auto &digests = certCache.insertionOrder();
    w.putU32(static_cast<std::uint32_t>(digests.size()));
    for (const Bytes &digest : digests) {
        const crypto::RsaPublicKey *avk = certCache.peek(digest);
        w.putBytes(digest);
        w.putBytes(avk ? avk->encode() : Bytes{});
    }
    return w.take();
}

void
AttestationServer::applySnapshot(const Bytes &snapshot)
{
    ByteReader r(snapshot);
    auto reportCount = r.getU32();
    for (std::uint32_t i = 0; reportCount && i < reportCount.value();
         ++i) {
        auto requestId = r.getU64();
        auto encoded = r.getBytes();
        if (!requestId || !encoded)
            return;
        if (reportCache.emplace(requestId.value(), encoded.take())
                .second) {
            reportOrder.push_back(requestId.value());
            while (reportOrder.size() > cfg.reportCacheCapacity) {
                reportCache.erase(reportOrder.front());
                reportOrder.pop_front();
            }
        }
    }
    auto certCount = r.getU32();
    for (std::uint32_t i = 0; certCount && i < certCount.value(); ++i) {
        auto digest = r.getBytes();
        auto avkBytes = r.getBytes();
        if (!digest || !avkBytes)
            return;
        auto avk = crypto::RsaPublicKey::decode(avkBytes.value());
        if (avk)
            certCache.insert(digest.take(), avk.take());
    }
}

void
AttestationServer::applyJournalRecord(const sim::JournalRecord &rec)
{
    // The type word carries the payload's own format, so replay is
    // independent of this node's current cfg.wire setting.
    const bool tagged = (rec.type & proto::kTaggedJournalBit) != 0;
    const auto type = static_cast<JournalType>(
        rec.type & ~proto::kTaggedJournalBit);
    ByteReader r(rec.payload);
    switch (type) {
      case JournalType::ReportRemember: {
        if (tagged) {
            wire::WireReader tr(rec.payload);
            std::uint64_t requestId = 0;
            bool haveId = false;
            Bytes encoded;
            while (!tr.atEnd()) {
                auto f = tr.next();
                if (!f)
                    return;
                const wire::WireField &fld = f.value();
                if (fld.number == 1 &&
                    fld.type == wire::WireType::Varint) {
                    requestId = fld.varint;
                    haveId = true;
                } else if (fld.number == 2 &&
                           fld.type == wire::WireType::Len) {
                    encoded = fld.bytes;
                }
            }
            if (haveId)
                rememberReport(requestId, std::move(encoded));
            break;
        }
        auto requestId = r.getU64();
        auto encoded = r.getBytes();
        if (requestId && encoded)
            rememberReport(requestId.value(), encoded.take());
        break;
      }
      case JournalType::CertInsert: {
        Bytes digest;
        Bytes avkBytes;
        if (tagged) {
            wire::WireReader tr(rec.payload);
            while (!tr.atEnd()) {
                auto f = tr.next();
                if (!f)
                    return;
                const wire::WireField &fld = f.value();
                if (fld.number == 1 && fld.type == wire::WireType::Len)
                    digest = fld.bytes;
                else if (fld.number == 2 &&
                         fld.type == wire::WireType::Len)
                    avkBytes = fld.bytes;
            }
        } else {
            auto d = r.getBytes();
            auto a = r.getBytes();
            if (!d || !a)
                break;
            digest = d.take();
            avkBytes = a.take();
        }
        auto avk = crypto::RsaPublicKey::decode(avkBytes);
        if (avk)
            certCache.insert(std::move(digest), avk.take());
        break;
      }
    }
}

void
AttestationServer::recover()
{
    ++counters.recoveries;
    replaying = true;
    auto image = store.replay();
    if (!image.clean) {
        // Replay healed a torn/rotted image down to its verified
        // prefix. Lost dedup-cache entries only cost idempotency (a
        // retransmitted forward re-verifies instead of re-serving),
        // never correctness.
        ++counters.corruptRecoveries;
        MONATT_LOG(Info, "as")
            << cfg.id << ": replay quarantined "
            << image.quarantinedRecords << " and truncated "
            << image.truncatedRecords << " corrupt journal records"
            << (image.snapshotQuarantined ? " (snapshot seal failed)"
                                          : "");
    }
    if (image.hasSnapshot)
        applySnapshot(image.snapshot);
    for (const sim::JournalRecord &rec : image.records)
        applyJournalRecord(rec);
    replaying = false;
    // Recovery doubles as a checkpoint.
    store.checkpoint(snapshotState());
    ckptPolicy.noteCheckpoint();
    MONATT_LOG(Info, "as")
        << cfg.id << ": recovered " << reportCache.size()
        << " cached reports, " << certCache.size()
        << " verified chains";
}

} // namespace monatt::attestation
