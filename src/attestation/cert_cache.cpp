#include "attestation/cert_cache.h"

#include <algorithm>

namespace monatt::attestation
{

CertVerificationCache::CertVerificationCache(std::size_t capacity)
    : cap(std::max<std::size_t>(capacity, 1))
{
}

const crypto::RsaPublicKey *
CertVerificationCache::lookup(const Bytes &digest)
{
    const auto it = entries.find(digest);
    if (it == entries.end()) {
        ++counters.misses;
        return nullptr;
    }
    ++counters.hits;
    return &it->second;
}

const crypto::RsaPublicKey *
CertVerificationCache::peek(const Bytes &digest) const
{
    const auto it = entries.find(digest);
    return it == entries.end() ? nullptr : &it->second;
}

void
CertVerificationCache::insert(const Bytes &digest,
                              crypto::RsaPublicKey avk)
{
    const auto it = entries.find(digest);
    if (it != entries.end()) {
        it->second = std::move(avk);
        return;
    }
    while (entries.size() >= cap) {
        entries.erase(order.front());
        order.pop_front();
        ++counters.evictions;
    }
    entries.emplace(digest, std::move(avk));
    order.push_back(digest);
    ++counters.insertions;
}

void
CertVerificationCache::clear()
{
    entries.clear();
    order.clear();
}

} // namespace monatt::attestation
