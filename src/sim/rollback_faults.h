/**
 * @file
 * Deterministic TCB/firmware-rollback attacker model — the
 * measured-state counterpart of the network FaultPlan.
 *
 * "Insecure Until Proven Updated" (Buhren et al.) shows that remote
 * attestation is only as strong as the firmware version that produced
 * the quote: an attacker who downgrades a host to a
 * vulnerable-but-validly-signed firmware build, or who replays a
 * stale quote captured before an upgrade, defeats a verifier that
 * never checks TCB freshness. This model injects both attacks:
 *
 *  - *Rollback*: the node genuinely runs the old firmware again, so
 *    its quotes honestly report the downgraded TCB version (valid
 *    signature, stale content).
 *  - *Stale replay*: a compromised node re-signs a previously sent
 *    measurement set under its current session key, presenting old
 *    evidence for a fresh challenge. The signature and quote verify;
 *    only the verifier's nonce-freshness check can catch it.
 *
 * Every verdict is a pure function of (seed, node id): no mutable
 * state, no host randomness, no dependence on simulated time or
 * thread count. Two runs with the same seed compromise the same
 * nodes at any MONATT_THREADS width, which is what keeps the
 * rollback-chaos sweeps bit-identical.
 */

#ifndef MONATT_SIM_ROLLBACK_FAULTS_H
#define MONATT_SIM_ROLLBACK_FAULTS_H

#include <cstdint>
#include <string>

namespace monatt::sim
{

/** Per-node attack probabilities (all default off). */
struct RollbackFaultConfig
{
    /**
     * Firmware rollback: the node runs (and honestly measures) the
     * downgraded firmware build, reporting `rollbackVersion` instead
     * of its configured TCB version. Per node.
     */
    double rollbackProbability = 0;

    /** TCB version a rolled-back node reports (the vulnerable build
     * the attacker downgraded to). */
    std::uint64_t rollbackVersion = 1;

    /**
     * Stale-quote replay: the node answers fresh measurement
     * challenges by re-signing its previously sent measurement set
     * (old nonce N3 and all) under the current session key. Per node.
     */
    double staleReplayProbability = 0;

    /** True when any axis is armed. */
    bool any() const
    {
        return rollbackProbability > 0 || staleReplayProbability > 0;
    }
};

/** Compiled model: pure verdicts over (seed, node). */
class RollbackFaultModel
{
  public:
    RollbackFaultModel(std::uint64_t seed, RollbackFaultConfig config);

    bool enabled() const { return cfg.any(); }
    const RollbackFaultConfig &config() const { return cfg; }

    /** Is this node rolled back to the vulnerable firmware build? */
    bool rollsBack(const std::string &node) const;

    /** Does this node replay stale measurements for fresh nonces? */
    bool replaysStale(const std::string &node) const;

    /** The downgraded TCB version a rolled-back node reports. */
    std::uint64_t rollbackVersion() const { return cfg.rollbackVersion; }

  private:
    /** One pure 64-bit draw for a (node, purpose) pair. */
    std::uint64_t draw(const std::string &node, std::uint64_t salt) const;

    RollbackFaultConfig cfg;
    std::uint64_t seed;
};

} // namespace monatt::sim

#endif // MONATT_SIM_ROLLBACK_FAULTS_H
