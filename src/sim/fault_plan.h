/**
 * @file
 * Deterministic fault-injection plan for the simulated fabric.
 *
 * The paper assumes a reliable data-center LAN and only models an
 * *active* adversary (§3.3). A FaultPlan adds the missing *failure*
 * model: seeded, simulated-time-driven message loss (iid and bursty),
 * extra delay, duplication, link partitions between named node pairs,
 * and scheduled crash/restart of whole nodes.
 *
 * Every verdict is a pure function of (seed, simulated time,
 * datagram identity): no hidden mutable state, no host randomness.
 * Two runs with the same seed and the same traffic make identical
 * decisions regardless of MONATT_THREADS, which preserves the
 * bit-identical-simulation contract of the compute plane.
 *
 * This layer deliberately knows nothing about net::Envelope — the
 * network calls decide() with plain strings — so monatt_net can keep
 * linking monatt_sim without a dependency cycle.
 */

#ifndef MONATT_SIM_FAULT_PLAN_H
#define MONATT_SIM_FAULT_PLAN_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/time_types.h"
#include "sim/event_queue.h"
#include "sim/rollback_faults.h"
#include "sim/storage_faults.h"

namespace monatt::sim
{

/** Per-datagram fault probabilities (applied to every link). */
struct LinkFaults
{
    /** iid drop probability per datagram, in [0, 1]. */
    double dropProbability = 0;

    /** Probability a datagram is delivered twice. */
    double duplicateProbability = 0;

    /** Extra one-way delay, uniform in [0, extraDelayMax]. */
    SimTime extraDelayMax = 0;

    /**
     * Bursty loss: simulated time is cut into windows of
     * `burstWindow`; each window is independently "bursty" with
     * probability `burstProbability` (a pure hash of seed and window
     * index, so the burst schedule carries no mutable state). Within
     * a bursty window every datagram is additionally dropped with
     * probability `burstDropProbability`.
     */
    double burstProbability = 0;
    SimTime burstWindow = msec(50);
    double burstDropProbability = 1.0;
};

/** A link partition between two named nodes (unordered pair). */
struct Partition
{
    std::string a;
    std::string b;
    SimTime from = 0;
    SimTime until = kTimeNever;
};

/** A scheduled crash (and optional restart) of one node. */
struct CrashEvent
{
    std::string node;
    SimTime crashAt = 0;
    SimTime restartAt = kTimeNever; //!< kTimeNever = never restarts.
};

/** The full plan. */
struct FaultPlanConfig
{
    std::uint64_t seed = 1;
    LinkFaults faults;
    std::vector<Partition> partitions;
    std::vector<CrashEvent> crashes;

    /** Disk-side failure axes (torn writes, bit-rot); shares `seed`
     * but draws with independent salts. Applied by the StableStores,
     * not the network — core::Cloud wires the compiled model into
     * every entity's store when the plan is installed. */
    StorageFaultConfig storage;

    /** TCB/firmware-rollback attacker axes (downgrade, stale-quote
     * replay); shares `seed` but draws with independent salts.
     * Applied by the cloud servers' measurement path, not the
     * network — core::Cloud wires the compiled model into every
     * server when the plan is installed. */
    RollbackFaultConfig rollback;

    /** Faults apply only inside [activeFrom, activeUntil). */
    SimTime activeFrom = 0;
    SimTime activeUntil = kTimeNever;
};

/** Fate of one datagram. */
struct FaultDecision
{
    bool drop = false;        //!< Lost (iid or burst loss).
    bool partitioned = false; //!< Lost to a link partition.
    SimTime extraDelay = 0;   //!< Added to the transfer time.
    int duplicates = 0;       //!< Extra copies delivered.
};

/**
 * A compiled fault plan. Install on net::Network with setFaultPlan();
 * the plan composes with (runs after) the adversary hook.
 */
class FaultPlan
{
  public:
    explicit FaultPlan(FaultPlanConfig config);

    /**
     * Decide the fate of one datagram. Pure: the verdict depends only
     * on the constructor seed and the arguments.
     *
     * @param src,dst,channel,seq Datagram identity (envelope header).
     * @param now Simulated send time.
     */
    FaultDecision decide(const std::string &src, const std::string &dst,
                         const std::string &channel, std::uint64_t seq,
                         SimTime now) const;

    /**
     * Schedule the plan's crash/restart events on `events`. The
     * callbacks receive the node id; wiring them to actual node
     * teardown/re-registration is the caller's job (core::Cloud).
     */
    void installCrashSchedule(
        EventQueue &events,
        std::function<void(const std::string &)> crash,
        std::function<void(const std::string &)> restart) const;

    const FaultPlanConfig &config() const { return cfg; }

    /** Compiled storage-failure model, or nullptr when no storage
     * axis is armed (stores then keep the zero-overhead clean path). */
    const StorageFaultModel *storage() const
    {
        return storageModel.enabled() ? &storageModel : nullptr;
    }

    /** Compiled rollback-attacker model, or nullptr when no rollback
     * axis is armed (servers then keep the clean measurement path). */
    const RollbackFaultModel *rollback() const
    {
        return rollbackModel.enabled() ? &rollbackModel : nullptr;
    }

  private:
    bool active(SimTime now) const
    {
        return now >= cfg.activeFrom && now < cfg.activeUntil;
    }

    /** One pure 64-bit draw for a (datagram, purpose) pair. */
    std::uint64_t draw(const std::string &src, const std::string &dst,
                       const std::string &channel, std::uint64_t seq,
                       std::uint64_t salt) const;

    FaultPlanConfig cfg;
    StorageFaultModel storageModel;
    RollbackFaultModel rollbackModel;
};

} // namespace monatt::sim

#endif // MONATT_SIM_FAULT_PLAN_H
