/**
 * @file
 * Shared journal-compaction policy for the durable control-plane
 * entities (CloudController, AttestationServer, PrivacyCa).
 *
 * PR 4–7 each entity hand-rolled the same "checkpoint once the
 * journal holds N records" check; this class owns the trigger and
 * adds two more axes from ROADMAP's journal-compaction SLO item:
 *  - size:  checkpoint once the durable journal's payload bytes
 *           exceed a bound (bounds replay *bytes* scanned, not just
 *           record count — records vary from tens of bytes to KBs);
 *  - age:   checkpoint once the oldest un-checkpointed record has
 *           been sitting in the journal longer than a bound (bounds
 *           how much history a recovery must re-read after a mostly
 *           idle period).
 *
 * Triggers are evaluated at commit points (the end of a mutating
 * event handler) and depend only on journal state and simulated
 * time, so checkpoint cadence is bit-identical at any MONATT_THREADS
 * width. An idle node whose journal never grows is never woken just
 * to checkpoint — age is a bound on history replayed, not a timer.
 */

#ifndef MONATT_SIM_CHECKPOINT_POLICY_H
#define MONATT_SIM_CHECKPOINT_POLICY_H

#include <cstddef>

#include "common/time_types.h"
#include "sim/stable_store.h"

namespace monatt::sim
{

/** Trigger thresholds; 0 disables an axis. */
struct CheckpointPolicyConfig
{
    /** Checkpoint once the durable journal holds this many records. */
    std::size_t everyRecords = 512;

    /** Checkpoint once the durable journal's payload exceeds this
     * many bytes (excludes the snapshot itself). */
    std::size_t everyBytes = 0;

    /** Checkpoint once the oldest un-checkpointed record is older
     * than this much simulated time. */
    SimTime maxAge = 0;
};

/** Per-entity trigger state (the age baseline). */
class CheckpointPolicy
{
  public:
    CheckpointPolicy() = default;
    explicit CheckpointPolicy(CheckpointPolicyConfig config)
        : cfg(config)
    {
    }

    const CheckpointPolicyConfig &config() const { return cfg; }

    /**
     * Evaluate the triggers against the store's durable journal.
     * Call at a commit point (after sync); when it returns true the
     * caller checkpoints and then calls noteCheckpoint().
     */
    bool shouldCheckpoint(const StableStore &store, SimTime now)
    {
        if (store.durableRecords() == 0) {
            oldestAt = kTimeNever;
            return false;
        }
        if (oldestAt == kTimeNever)
            oldestAt = now;
        if (cfg.everyRecords > 0 &&
            store.durableRecords() >= cfg.everyRecords)
            return true;
        if (cfg.everyBytes > 0 &&
            store.journalBytes() >= cfg.everyBytes)
            return true;
        if (cfg.maxAge > 0 && now - oldestAt >= cfg.maxAge)
            return true;
        return false;
    }

    /** Reset the age baseline after any checkpoint (policy-triggered
     * or not — recovery checkpoints too). */
    void noteCheckpoint() { oldestAt = kTimeNever; }

  private:
    CheckpointPolicyConfig cfg;
    /** Commit time at which the journal was first seen non-empty
     * since the last checkpoint; kTimeNever = journal empty. */
    SimTime oldestAt = kTimeNever;
};

} // namespace monatt::sim

#endif // MONATT_SIM_CHECKPOINT_POLICY_H
