#include "sim/stage_timer.h"

namespace monatt::sim
{

void
StageTimer::beginStage(const std::string &name, SimTime now)
{
    if (open)
        endStage(now);
    openName = name;
    openStart = now;
    open = true;
}

void
StageTimer::endStage(SimTime now)
{
    if (!open)
        return;
    done.push_back(StageRecord{openName, openStart, now});
    open = false;
}

void
StageTimer::record(const std::string &name, SimTime start, SimTime end)
{
    done.push_back(StageRecord{name, start, end});
}

SimTime
StageTimer::total() const
{
    SimTime sum = 0;
    for (const auto &stage : done)
        sum += stage.duration();
    return sum;
}

SimTime
StageTimer::durationOf(const std::string &name) const
{
    SimTime sum = 0;
    for (const auto &stage : done) {
        if (stage.name == name)
            sum += stage.duration();
    }
    return sum;
}

void
StageTimer::clear()
{
    done.clear();
    open = false;
}

} // namespace monatt::sim
