#include "sim/event_queue.h"

#include <stdexcept>

namespace monatt::sim
{

EventId
EventQueue::schedule(SimTime when, Callback callback, const char *label)
{
    if (when < currentTime)
        throw std::invalid_argument("EventQueue: scheduling in the past");
    const EventId id = nextId++;
    queue.push(Event{when, id, std::move(callback), label});
    ++livePending;
    return id;
}

EventId
EventQueue::scheduleAfter(SimTime delay, Callback callback,
                          const char *label)
{
    return schedule(currentTime + delay, std::move(callback), label);
}

void
EventQueue::cancel(EventId id)
{
    cancelled.insert(id);
}

bool
EventQueue::dropCancelledTop()
{
    while (!queue.empty()) {
        if (!cancelled.erase(queue.top().id))
            return true;
        queue.pop();
        --livePending;
    }
    return false;
}

bool
EventQueue::runOne()
{
    if (!dropCancelledTop())
        return false;
    Event ev = queue.top();
    queue.pop();
    currentTime = ev.when;
    --livePending;
    ++executedCount;
    ev.callback();
    return true;
}

SimTime
EventQueue::nextEventTime()
{
    return dropCancelledTop() ? queue.top().when : kTimeNever;
}

std::size_t
EventQueue::run(SimTime until)
{
    std::size_t n = 0;
    // Tombstones of cancelled events are dropped eagerly as they reach
    // the top, whether or not the next live event is due yet.
    while (dropCancelledTop() && queue.top().when <= until) {
        if (runOne())
            ++n;
    }
    if (currentTime < until && until != kTimeNever)
        currentTime = until;
    return n;
}

std::size_t
EventQueue::runAll(std::size_t maxEvents)
{
    std::size_t n = 0;
    while (n < maxEvents && runOne())
        ++n;
    return n;
}

void
EventQueue::advance(SimTime delta)
{
    if (delta < 0)
        throw std::invalid_argument("EventQueue: negative advance");
    run(currentTime + delta);
}

} // namespace monatt::sim
