#include "sim/event_queue.h"

#include <stdexcept>

namespace monatt::sim
{

EventId
EventQueue::schedule(SimTime when, Callback callback, std::string label)
{
    if (when < currentTime)
        throw std::invalid_argument("EventQueue: scheduling in the past");
    const EventId id = nextId++;
    queue.push(Event{when, id, std::move(callback), std::move(label)});
    ++livePending;
    return id;
}

EventId
EventQueue::scheduleAfter(SimTime delay, Callback callback,
                          std::string label)
{
    return schedule(currentTime + delay, std::move(callback),
                    std::move(label));
}

void
EventQueue::cancel(EventId id)
{
    cancelled.insert(id);
}

bool
EventQueue::runOne()
{
    while (!queue.empty()) {
        Event ev = queue.top();
        queue.pop();
        if (cancelled.erase(ev.id)) {
            --livePending;
            continue;
        }
        currentTime = ev.when;
        --livePending;
        ++executedCount;
        ev.callback();
        return true;
    }
    return false;
}

SimTime
EventQueue::nextEventTime()
{
    while (!queue.empty()) {
        const Event &top = queue.top();
        if (cancelled.count(top.id)) {
            cancelled.erase(top.id);
            queue.pop();
            --livePending;
            continue;
        }
        return top.when;
    }
    return kTimeNever;
}

std::size_t
EventQueue::run(SimTime until)
{
    std::size_t n = 0;
    while (!queue.empty()) {
        // Peek past cancelled events without executing.
        const Event &top = queue.top();
        if (cancelled.count(top.id)) {
            cancelled.erase(top.id);
            queue.pop();
            --livePending;
            continue;
        }
        if (top.when > until)
            break;
        if (runOne())
            ++n;
    }
    if (currentTime < until && until != kTimeNever)
        currentTime = until;
    return n;
}

std::size_t
EventQueue::runAll(std::size_t maxEvents)
{
    std::size_t n = 0;
    while (n < maxEvents && runOne())
        ++n;
    return n;
}

void
EventQueue::advance(SimTime delta)
{
    if (delta < 0)
        throw std::invalid_argument("EventQueue: negative advance");
    run(currentTime + delta);
}

} // namespace monatt::sim
