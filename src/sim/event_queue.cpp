#include "sim/event_queue.h"

#include <algorithm>
#include <stdexcept>

namespace monatt::sim
{

std::uint32_t
EventQueue::acquireSlot(Callback callback, const char *label)
{
    std::uint32_t s;
    if (!freeList.empty()) {
        s = freeList.back();
        freeList.pop_back();
    } else {
        s = static_cast<std::uint32_t>(slots.size());
        slots.emplace_back();
    }
    Slot &slot = slots[s];
    slot.callback = std::move(callback);
    slot.label = label;
    return s;
}

void
EventQueue::releaseSlot(std::uint32_t s)
{
    Slot &slot = slots[s];
    slot.callback = Callback();
    slot.label = nullptr;
    slot.heapPos = kNotInHeap;
    // Bump the generation so every outstanding id for this slot goes
    // stale; a wrap skips 0 so no issued id ever equals the sentinel.
    if (++slot.generation == 0)
        slot.generation = 1;
    freeList.push_back(s);
}

void
EventQueue::siftUp(std::size_t pos)
{
    const HeapNode node = heap[pos];
    while (pos > 0) {
        const std::size_t parent = (pos - 1) / kArity;
        if (!before(node, heap[parent]))
            break;
        heap[pos] = heap[parent];
        slots[heap[pos].slot].heapPos = static_cast<std::uint32_t>(pos);
        pos = parent;
    }
    heap[pos] = node;
    slots[node.slot].heapPos = static_cast<std::uint32_t>(pos);
}

void
EventQueue::siftDown(std::size_t pos)
{
    const HeapNode node = heap[pos];
    const std::size_t n = heap.size();
    for (;;) {
        const std::size_t first = kArity * pos + 1;
        if (first >= n)
            break;
        const std::size_t last = std::min(first + kArity, n);
        std::size_t best = first;
        for (std::size_t c = first + 1; c < last; ++c)
            if (before(heap[c], heap[best]))
                best = c;
        if (!before(heap[best], node))
            break;
        heap[pos] = heap[best];
        slots[heap[pos].slot].heapPos = static_cast<std::uint32_t>(pos);
        pos = best;
    }
    heap[pos] = node;
    slots[node.slot].heapPos = static_cast<std::uint32_t>(pos);
}

void
EventQueue::removeAt(std::size_t pos)
{
    const HeapNode last = heap.back();
    heap.pop_back();
    if (pos >= heap.size())
        return; // removed the tail itself
    heap[pos] = last;
    slots[last.slot].heapPos = static_cast<std::uint32_t>(pos);
    if (pos > 0 && before(heap[pos], heap[(pos - 1) / kArity]))
        siftUp(pos);
    else
        siftDown(pos);
}

EventId
EventQueue::schedule(SimTime when, Callback callback, const char *label)
{
    if (when < currentTime)
        throw std::invalid_argument("EventQueue: scheduling in the past");
    const std::uint32_t s = acquireSlot(std::move(callback), label);
    heap.push_back(HeapNode{when, nextSeq++, s});
    siftUp(heap.size() - 1);
    return (static_cast<EventId>(slots[s].generation) << 32) | s;
}

EventId
EventQueue::scheduleAfter(SimTime delay, Callback callback,
                          const char *label)
{
    return schedule(currentTime + delay, std::move(callback), label);
}

void
EventQueue::cancel(EventId id)
{
    const std::uint32_t s = static_cast<std::uint32_t>(id);
    const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
    if (gen == 0 || s >= slots.size())
        return; // never-issued id (including the 0 sentinel)
    Slot &slot = slots[s];
    if (slot.generation != gen || slot.heapPos == kNotInHeap)
        return; // already fired or cancelled
    removeAt(slot.heapPos);
    releaseSlot(s);
}

bool
EventQueue::runOne()
{
    if (heap.empty())
        return false;
    const HeapNode top = heap.front();
    const HeapNode last = heap.back();
    heap.pop_back();
    if (!heap.empty()) {
        heap[0] = last;
        slots[last.slot].heapPos = 0;
        siftDown(0);
    }
    currentTime = top.when;
    // Move the callback out and retire the slot *before* invoking:
    // a handler cancelling its own (now stale) id must be a no-op,
    // and the handler may reallocate the slot table by scheduling.
    Callback callback = std::move(slots[top.slot].callback);
    releaseSlot(top.slot);
    ++executedCount;
    callback();
    return true;
}

SimTime
EventQueue::nextEventTime() const
{
    return heap.empty() ? kTimeNever : heap.front().when;
}

std::size_t
EventQueue::run(SimTime until)
{
    std::size_t n = 0;
    while (!heap.empty() && heap.front().when <= until) {
        if (runOne())
            ++n;
    }
    if (currentTime < until && until != kTimeNever)
        currentTime = until;
    return n;
}

std::size_t
EventQueue::runAll(std::size_t maxEvents)
{
    std::size_t n = 0;
    while (n < maxEvents && runOne())
        ++n;
    return n;
}

void
EventQueue::advance(SimTime delta)
{
    if (delta < 0)
        throw std::invalid_argument("EventQueue: negative advance");
    run(currentTime + delta);
}

} // namespace monatt::sim
