/**
 * @file
 * Stage timing instrumentation (the role OpenStack Ceilometer plays in
 * the paper's evaluation, §7: "OpenStack Ceilometer is exploited for
 * timing measurements").
 *
 * A StageTimer records named, ordered stages against the simulated
 * clock; benches read the per-stage durations to print the Figure 9
 * and Figure 11 breakdowns.
 */

#ifndef MONATT_SIM_STAGE_TIMER_H
#define MONATT_SIM_STAGE_TIMER_H

#include <string>
#include <vector>

#include "common/time_types.h"

namespace monatt::sim
{

/** One completed stage. */
struct StageRecord
{
    std::string name;
    SimTime start;
    SimTime end;

    SimTime duration() const { return end - start; }
};

/** Accumulates named stage durations against a simulated clock. */
class StageTimer
{
  public:
    /** Begin a stage at simulated time `now`; implicitly ends any open
     * stage at the same instant. */
    void beginStage(const std::string &name, SimTime now);

    /** End the currently open stage at `now`. */
    void endStage(SimTime now);

    /** Record a complete stage in one call. */
    void record(const std::string &name, SimTime start, SimTime end);

    /** All completed stages, in order. */
    const std::vector<StageRecord> &stages() const { return done; }

    /** Total duration across all completed stages. */
    SimTime total() const;

    /** Duration of the named stage (sums duplicates); 0 if absent. */
    SimTime durationOf(const std::string &name) const;

    /** Drop all records. */
    void clear();

    /** True when a stage is currently open. */
    bool hasOpenStage() const { return open; }

    /** Name of the open stage (valid only when hasOpenStage()). */
    const std::string &openStageName() const { return openName; }

    /** Start time of the open stage (valid only when hasOpenStage()). */
    SimTime openStageStart() const { return openStart; }

  private:
    std::vector<StageRecord> done;
    std::string openName;
    SimTime openStart = 0;
    bool open = false;
};

} // namespace monatt::sim

#endif // MONATT_SIM_STAGE_TIMER_H
