/**
 * @file
 * Deterministic parallel compute plane.
 *
 * The simulation kernel is single-clocked: every event executes on the
 * driver thread in a deterministic order. The WorkerPool lets crypto-
 * dominant phases (RSA keygen, quote signing, certificate-chain
 * verification) fan out across host threads *without* perturbing that
 * order, under one contract:
 *
 *  - Only pure compute runs on the pool. A task may read state the
 *    driver thread published before the fork and write only its own
 *    index-addressed output slot. All shared-state mutation (caches,
 *    counters, DRBG forks, event scheduling, message sends) happens on
 *    the driver thread in serial pre-/post-passes, in submission
 *    order.
 *  - Join order is submission order: parallelFor() returns only after
 *    every task completed, and map() yields results indexed exactly
 *    like the inputs. The first failing index wins when rethrowing.
 *  - Every task always runs, even after another task threw, so a run
 *    with threads=1 and a run with threads=8 perform the identical
 *    work.
 *
 * With `threads <= 1` no worker threads exist and tasks run inline on
 * the caller — the legacy serial path, bit-identical to any other
 * thread count by construction.
 */

#ifndef MONATT_SIM_WORKER_POOL_H
#define MONATT_SIM_WORKER_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace monatt::sim
{

/** Fixed-size thread pool with deterministic fork/join semantics. */
class WorkerPool
{
  public:
    /**
     * @param threads Pool size. 0 selects std::thread::hardware_concurrency();
     *                1 (or a 1-core host) runs everything inline on the
     *                caller with no worker threads.
     */
    explicit WorkerPool(std::size_t threads = 0);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Effective thread count (>= 1; 1 means inline serial execution). */
    std::size_t threadCount() const { return threadsWanted; }

    /**
     * Run fn(0..n-1), blocking until all complete (fork/join barrier).
     * The caller participates in executing tasks. Exceptions are
     * captured per index; after the join the exception of the lowest
     * failing index is rethrown, regardless of thread count.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /**
     * Deterministic parallel map: out[i] = fn(i), joined in submission
     * order. T must be default-constructible and movable.
     */
    template <typename T, typename Fn>
    std::vector<T>
    map(std::size_t n, Fn &&fn)
    {
        std::vector<T> out(n);
        parallelFor(n, [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

    /**
     * Process-wide pool used by the simulation entities.
     *
     * Cloud construction calls configureGlobal() with
     * CloudConfig::computeThreads (the MONATT_THREADS environment
     * variable, when set, overrides the requested size). Reconfiguring
     * joins the old workers first; call it only between simulations,
     * never from inside a task.
     */
    static WorkerPool &global();
    static void configureGlobal(std::size_t threads);

    /** Requested size after the MONATT_THREADS override, 0 untouched. */
    static std::size_t resolveThreads(std::size_t requested);

  private:
    struct Job
    {
        const std::function<void(std::size_t)> *fn = nullptr;
        std::size_t n = 0;
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> done{0};
        std::vector<std::exception_ptr> errors;
        std::mutex mu;
        std::condition_variable cv;
        bool complete = false;
    };

    void workerLoop();
    static void drain(Job &job);
    static void runInline(std::size_t n,
                          const std::function<void(std::size_t)> &fn);
    static void rethrowFirst(const std::vector<std::exception_ptr> &errors);

    std::size_t threadsWanted = 1;
    std::vector<std::thread> workers;

    std::mutex mu;
    std::condition_variable cv;
    std::shared_ptr<Job> current; //!< guarded by mu
    std::uint64_t generation = 0; //!< guarded by mu
    bool stopping = false;        //!< guarded by mu
};

} // namespace monatt::sim

#endif // MONATT_SIM_WORKER_POOL_H
