#include "sim/stable_store.h"

#include <iterator>

namespace monatt::sim
{

namespace
{

/** FNV-1a 64-bit, folded over a byte range. */
std::uint64_t
fnvBytes(std::uint64_t h, const std::uint8_t *p, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        h = (h ^ p[i]) * 0x100000001b3ULL;
    return h;
}

std::uint64_t
fnvU64(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
    {
        h = (h ^ (v & 0xff)) * 0x100000001b3ULL;
        v >>= 8;
    }
    return h;
}

} // namespace

StableStore::StableStore(std::string nodeId) : nodeId(std::move(nodeId)) {}

std::uint64_t
StableStore::append(std::uint16_t type, Bytes payload)
{
    JournalRecord rec;
    rec.lsn = nextLsn++;
    rec.type = type;
    rec.payload = std::move(payload);
    buffered.push_back(std::move(rec));
    ++counters.appends;
    return buffered.back().lsn;
}

std::uint64_t
StableStore::appendMany(std::uint16_t type, std::vector<Bytes> payloads)
{
    if (payloads.empty())
        return 0;
    ++counters.appendBatches;
    counters.appends += payloads.size();
    buffered.reserve(buffered.size() + payloads.size());
    for (Bytes &payload : payloads)
    {
        JournalRecord rec;
        rec.lsn = nextLsn++;
        rec.type = type;
        rec.payload = std::move(payload);
        buffered.push_back(std::move(rec));
    }
    return buffered.back().lsn;
}

void
StableStore::sync()
{
    ++counters.syncs;
    durable.insert(durable.end(),
                   std::make_move_iterator(buffered.begin()),
                   std::make_move_iterator(buffered.end()));
    buffered.clear();
}

void
StableStore::checkpoint(Bytes snap)
{
    ++counters.checkpoints;
    snapshot = std::move(snap);
    snapshotValid = true;
    snapshotLsn_ = nextLsn - 1;
    // The snapshot captures current in-memory state, which already
    // includes any buffered mutations — both journals are superseded.
    durable.clear();
    buffered.clear();
}

void
StableStore::crash()
{
    ++counters.crashes;
    counters.recordsLost += buffered.size();
    buffered.clear();
}

StableStore::RecoveryImage
StableStore::replay()
{
    RecoveryImage image;
    image.hasSnapshot = snapshotValid;
    image.snapshot = snapshot;
    image.records.assign(durable.begin(), durable.end());
    counters.recordsReplayed += image.records.size();
    return image;
}

std::vector<JournalRecord>
StableStore::durableSince(std::uint64_t lsn) const
{
    return {firstAfter(lsn), durable.end()};
}

void
StableStore::adoptRecord(JournalRecord rec)
{
    nextLsn = rec.lsn + 1;
    buffered.push_back(std::move(rec));
    ++counters.appends;
}

void
StableStore::adoptMany(std::vector<JournalRecord> records)
{
    if (records.empty())
        return;
    ++counters.appendBatches;
    counters.appends += records.size();
    nextLsn = records.back().lsn + 1;
    buffered.insert(buffered.end(),
                    std::make_move_iterator(records.begin()),
                    std::make_move_iterator(records.end()));
}

void
StableStore::installSnapshot(Bytes snap, std::uint64_t lsn)
{
    ++counters.checkpoints;
    snapshot = std::move(snap);
    snapshotValid = true;
    snapshotLsn_ = lsn;
    nextLsn = lsn + 1;
    durable.clear();
    buffered.clear();
}

void
StableStore::truncateTo(std::uint64_t lsn)
{
    buffered.clear();
    while (!durable.empty() && durable.back().lsn > lsn)
        durable.pop_back();
    nextLsn = lastDurableLsn() + 1;
}

std::size_t
StableStore::durableBytes() const
{
    std::size_t total = snapshotValid ? snapshot.size() : 0;
    for (const JournalRecord &rec : durable)
        total += rec.payload.size();
    return total;
}

std::uint64_t
StableStore::digest() const
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    h = fnvBytes(h,
                 reinterpret_cast<const std::uint8_t *>(nodeId.data()),
                 nodeId.size());
    h = fnvU64(h, snapshotValid ? 1 : 0);
    if (snapshotValid)
        h = fnvBytes(h, snapshot.data(), snapshot.size());
    for (const JournalRecord &rec : durable)
    {
        h = fnvU64(h, rec.lsn);
        h = fnvU64(h, rec.type);
        h = fnvBytes(h, rec.payload.data(), rec.payload.size());
    }
    return h;
}

} // namespace monatt::sim
