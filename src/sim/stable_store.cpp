#include "sim/stable_store.h"

#include <iterator>

#include "common/crc32c.h"

namespace monatt::sim
{

namespace
{

/** FNV-1a 64-bit, folded over a byte range. */
std::uint64_t
fnvBytes(std::uint64_t h, const std::uint8_t *p, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        h = (h ^ p[i]) * 0x100000001b3ULL;
    return h;
}

std::uint64_t
fnvU64(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
    {
        h = (h ^ (v & 0xff)) * 0x100000001b3ULL;
        v >>= 8;
    }
    return h;
}

/** XOR mask used to corrupt a stored CRC so it cannot verify. */
constexpr std::uint32_t kCrcSpoil = 0xA5A5A5A5u;

} // namespace

StableStore::StableStore(std::string nodeId) : nodeId(std::move(nodeId)) {}

std::uint32_t
StableStore::frameCrc(const JournalRecord &rec)
{
    std::uint32_t c = crc32cU64(0, rec.lsn);
    c = crc32cU64(c, rec.type);
    return crc32c(c, rec.payload.data(), rec.payload.size());
}

std::uint32_t
StableStore::snapshotCrc(const Bytes &snap, std::uint64_t coveredLsn)
{
    std::uint32_t c = crc32cU64(0, coveredLsn);
    return crc32c(c, snap.data(), snap.size());
}

StableStore::Frame
StableStore::seal(JournalRecord rec)
{
    Frame frame;
    frame.crc = frameCrc(rec);
    frame.rec = std::move(rec);
    return frame;
}

std::uint64_t
StableStore::append(std::uint16_t type, Bytes payload)
{
    JournalRecord rec;
    rec.lsn = nextLsn++;
    rec.type = type;
    rec.payload = std::move(payload);
    const std::uint64_t prev = chainTail();
    buffered.push_back(seal(std::move(rec)));
    buffered.back().prevLsn = prev;
    ++counters.appends;
    return buffered.back().rec.lsn;
}

std::uint64_t
StableStore::appendMany(std::uint16_t type, std::vector<Bytes> payloads)
{
    if (payloads.empty())
        return 0;
    ++counters.appendBatches;
    counters.appends += payloads.size();
    buffered.reserve(buffered.size() + payloads.size());
    for (Bytes &payload : payloads)
    {
        JournalRecord rec;
        rec.lsn = nextLsn++;
        rec.type = type;
        rec.payload = std::move(payload);
        const std::uint64_t prev = chainTail();
        buffered.push_back(seal(std::move(rec)));
        buffered.back().prevLsn = prev;
    }
    return buffered.back().rec.lsn;
}

void
StableStore::sync()
{
    ++counters.syncs;
    for (const Frame &frame : buffered)
        journalBytes_ += frame.rec.payload.size();
    durable.insert(durable.end(),
                   std::make_move_iterator(buffered.begin()),
                   std::make_move_iterator(buffered.end()));
    buffered.clear();
}

void
StableStore::checkpoint(Bytes snap)
{
    ++counters.checkpoints;
    snapshot = std::move(snap);
    snapshotValid = true;
    snapshotRotted = false;
    snapshotLsn_ = nextLsn - 1;
    snapshotCrc_ = snapshotCrc(snapshot, snapshotLsn_);
    // The snapshot captures current in-memory state, which already
    // includes any buffered mutations — both journals are superseded.
    durable.clear();
    buffered.clear();
    journalBytes_ = 0;
}

void
StableStore::crash()
{
    if (faults != nullptr)
    {
        crashWithFaults();
        return;
    }
    ++counters.crashes;
    counters.recordsLost += buffered.size();
    buffered.clear();
}

void
StableStore::rotFrame(Frame &frame)
{
    // Flip one byte of the frame: a payload byte, or — when the draw
    // lands past the payload (always, for empty payloads) — a byte of
    // the stored CRC, so even a zero-length record cannot verify.
    const std::size_t span = frame.rec.payload.size() + 4;
    const std::size_t idx =
        faults->corruptByte(nodeId, frame.rec.lsn, span);
    if (idx < frame.rec.payload.size())
        frame.rec.payload[idx] ^= 0xA5;
    else
        frame.crc ^= 0xA5u << (8 * (idx - frame.rec.payload.size()));
    frame.rotted = true;
    ++counters.recordsRotted;
}

void
StableStore::crashWithFaults()
{
    ++counters.crashes;

    // Torn tail-write: walk the un-synced page cache in LSN order.
    // A prefix of it may have reached the platter before the power
    // cut; the prefix ends at the first record that misses.
    std::size_t i = 0;
    for (; i < buffered.size(); ++i)
    {
        if (!faults->tailPersists(nodeId, buffered[i].rec.lsn))
            break;
        journalBytes_ += buffered[i].rec.payload.size();
        durable.push_back(std::move(buffered[i]));
        ++counters.recordsTornPersisted;
    }

    // The boundary record may land half-written: payload torn in the
    // middle, frame CRC unable to verify.
    if (i < buffered.size())
    {
        Frame &boundary = buffered[i];
        if (faults->halfWrites(nodeId, boundary.rec.lsn))
        {
            boundary.rec.payload.resize(boundary.rec.payload.size() / 2);
            boundary.crc ^= kCrcSpoil;
            journalBytes_ += boundary.rec.payload.size();
            durable.push_back(std::move(boundary));
            ++counters.recordsHalfWritten;
        }
        else
        {
            ++counters.recordsLost;
        }
        ++i;
    }

    // Lost-sync reordering: a record past the boundary may persist
    // out of order, leaving an LSN gap in front of it that replay
    // cannot bridge.
    for (; i < buffered.size(); ++i)
    {
        Frame &orphan = buffered[i];
        if (faults->reorderPersists(nodeId, orphan.rec.lsn))
        {
            journalBytes_ += orphan.rec.payload.size();
            durable.push_back(std::move(orphan));
            ++counters.recordsReordered;
        }
        else
        {
            ++counters.recordsLost;
        }
    }
    buffered.clear();

    // Media bit-rot over the outage. The verdict for a (node, LSN)
    // never changes, so the per-frame `rotted` guard is what keeps a
    // second crash from flipping the corruption back out.
    for (Frame &frame : durable)
        if (!frame.rotted && faults->rots(nodeId, frame.rec.lsn))
            rotFrame(frame);

    if (snapshotValid && !snapshotRotted &&
        faults->snapshotRots(nodeId, snapshotLsn_))
    {
        const std::size_t span = snapshot.size() + 4;
        const std::size_t idx =
            faults->corruptByte(nodeId, snapshotLsn_, span);
        if (idx < snapshot.size())
            snapshot[idx] ^= 0xA5;
        else
            snapshotCrc_ ^= 0xA5u << (8 * (idx - snapshot.size()));
        snapshotRotted = true;
        ++counters.snapshotsRotted;
    }
}

StableStore::HealSummary
StableStore::heal()
{
    HealSummary summary;

    // The snapshot seal first: the journal is a delta on top of the
    // snapshot, so a corrupt base makes every journal frame
    // unusable no matter how intact. Dropping both resets the store
    // to a fresh disk; a replica mirror in this state acks LSN 0 and
    // the leader re-streams from scratch.
    if (snapshotValid &&
        snapshotCrc(snapshot, snapshotLsn_) != snapshotCrc_)
    {
        summary.snapshotQuarantined = true;
        summary.truncatedRecords += durable.size();
        ++counters.snapshotsQuarantined;
        counters.recordsTruncated += durable.size();
        snapshot.clear();
        snapshotValid = false;
        snapshotRotted = false;
        snapshotCrc_ = 0;
        snapshotLsn_ = 0;
        durable.clear();
        journalBytes_ = 0;
        return summary;
    }

    // Longest verified prefix: every frame must checksum AND chain
    // onto the record actually in front of it. LSN *values* may skip
    // (records lost to an earlier crash burn LSNs, and the writer
    // knowingly chained past them) — what must hold is that each
    // frame's back-pointer names the surviving predecessor. A reorder
    // orphan back-points at its lost sync-mate instead, so the chain
    // breaks exactly at real corruption.
    std::size_t keep = 0;
    std::uint64_t prev = snapshotLsn_;
    while (keep < durable.size())
    {
        const Frame &frame = durable[keep];
        if (frame.prevLsn != prev || frameCrc(frame.rec) != frame.crc)
            break;
        prev = frame.rec.lsn;
        ++keep;
    }

    if (keep == durable.size())
        return summary;

    // Classify the dropped suffix: a frame is *quarantined* when it
    // is itself unusable (bad CRC, or a broken back-pointer) and
    // *truncated* when it is intact but stranded behind a bad frame.
    for (std::size_t i = keep; i < durable.size(); ++i)
    {
        const Frame &frame = durable[i];
        const std::uint64_t prevLsn =
            i == 0 ? snapshotLsn_ : durable[i - 1].rec.lsn;
        const bool crcOk = frameCrc(frame.rec) == frame.crc;
        const bool contiguous = frame.prevLsn == prevLsn;
        if (!crcOk || !contiguous)
        {
            ++summary.quarantinedRecords;
            ++counters.recordsQuarantined;
        }
        else
        {
            ++summary.truncatedRecords;
            ++counters.recordsTruncated;
        }
        journalBytes_ -= frame.rec.payload.size();
    }
    durable.resize(keep);
    // nextLsn never regresses on heal: LSNs handed out before the
    // crash must not be reissued for different records.
    return summary;
}

StableStore::RecoveryImage
StableStore::replay()
{
    const HealSummary summary = heal();
    RecoveryImage image;
    image.hasSnapshot = snapshotValid;
    image.snapshot = snapshot;
    image.records.reserve(durable.size());
    for (const Frame &frame : durable)
        image.records.push_back(frame.rec);
    image.clean = summary.clean();
    image.quarantinedRecords = summary.quarantinedRecords;
    image.truncatedRecords = summary.truncatedRecords;
    image.snapshotQuarantined = summary.snapshotQuarantined;
    counters.recordsReplayed += image.records.size();
    return image;
}

StableStore::HealSummary
StableStore::verifyDurable()
{
    return heal();
}

std::vector<JournalRecord>
StableStore::durableSince(std::uint64_t lsn) const
{
    std::vector<JournalRecord> records;
    for (auto it = firstAfter(lsn); it != durable.end(); ++it)
        records.push_back(it->rec);
    return records;
}

void
StableStore::adoptRecord(JournalRecord rec)
{
    nextLsn = rec.lsn + 1;
    const std::uint64_t prev = chainTail();
    buffered.push_back(seal(std::move(rec)));
    buffered.back().prevLsn = prev;
    ++counters.appends;
}

void
StableStore::adoptMany(std::vector<JournalRecord> records)
{
    if (records.empty())
        return;
    ++counters.appendBatches;
    counters.appends += records.size();
    nextLsn = records.back().lsn + 1;
    buffered.reserve(buffered.size() + records.size());
    for (JournalRecord &rec : records)
    {
        const std::uint64_t prev = chainTail();
        buffered.push_back(seal(std::move(rec)));
        buffered.back().prevLsn = prev;
    }
}

void
StableStore::installSnapshot(Bytes snap, std::uint64_t lsn)
{
    ++counters.checkpoints;
    snapshot = std::move(snap);
    snapshotValid = true;
    snapshotRotted = false;
    snapshotLsn_ = lsn;
    snapshotCrc_ = snapshotCrc(snapshot, snapshotLsn_);
    nextLsn = lsn + 1;
    durable.clear();
    buffered.clear();
    journalBytes_ = 0;
}

void
StableStore::truncateTo(std::uint64_t lsn)
{
    buffered.clear();
    while (!durable.empty() && durable.back().rec.lsn > lsn)
    {
        journalBytes_ -= durable.back().rec.payload.size();
        durable.pop_back();
    }
    nextLsn = lastDurableLsn() + 1;
}

std::uint64_t
StableStore::digest() const
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    h = fnvBytes(h,
                 reinterpret_cast<const std::uint8_t *>(nodeId.data()),
                 nodeId.size());
    h = fnvU64(h, snapshotValid ? 1 : 0);
    if (snapshotValid)
        h = fnvBytes(h, snapshot.data(), snapshot.size());
    for (const Frame &frame : durable)
    {
        h = fnvU64(h, frame.rec.lsn);
        h = fnvU64(h, frame.rec.type);
        h = fnvBytes(h, frame.rec.payload.data(),
                     frame.rec.payload.size());
    }
    return h;
}

} // namespace monatt::sim
