#include "sim/fault_plan.h"

namespace monatt::sim
{

namespace
{

/** splitmix64 finalizer: cheap, well-mixed, dependency-free. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** FNV-1a over a string, folded through the running state. */
std::uint64_t
absorb(std::uint64_t state, const std::string &s)
{
    std::uint64_t h = state ^ 0xcbf29ce484222325ULL;
    for (unsigned char c : s)
        h = (h ^ c) * 0x100000001b3ULL;
    return mix64(h);
}

/** Map a draw to a [0, 1) probability comparison. */
bool
below(std::uint64_t v, double probability)
{
    if (probability <= 0)
        return false;
    if (probability >= 1)
        return true;
    // 53-bit mantissa: exact enough for fault probabilities.
    const double unit =
        static_cast<double>(v >> 11) * (1.0 / 9007199254740992.0);
    return unit < probability;
}

} // namespace

FaultPlan::FaultPlan(FaultPlanConfig config)
    : cfg(std::move(config)), storageModel(cfg.seed, cfg.storage),
      rollbackModel(cfg.seed, cfg.rollback)
{
}

std::uint64_t
FaultPlan::draw(const std::string &src, const std::string &dst,
                const std::string &channel, std::uint64_t seq,
                std::uint64_t salt) const
{
    std::uint64_t h = mix64(cfg.seed ^ salt);
    h = absorb(h, src);
    h = absorb(h, dst);
    h = absorb(h, channel);
    return mix64(h ^ seq);
}

FaultDecision
FaultPlan::decide(const std::string &src, const std::string &dst,
                  const std::string &channel, std::uint64_t seq,
                  SimTime now) const
{
    FaultDecision d;
    if (!active(now))
        return d;

    for (const Partition &p : cfg.partitions) {
        const bool match = (p.a == src && p.b == dst) ||
                           (p.a == dst && p.b == src);
        if (match && now >= p.from && now < p.until) {
            d.partitioned = true;
            return d;
        }
    }

    const LinkFaults &f = cfg.faults;
    if (below(draw(src, dst, channel, seq, 0x11), f.dropProbability)) {
        d.drop = true;
        return d;
    }
    if (f.burstProbability > 0 && f.burstWindow > 0) {
        const std::uint64_t window =
            static_cast<std::uint64_t>(now / f.burstWindow);
        const bool bursty =
            below(mix64(cfg.seed ^ mix64(window ^ 0x22)),
                  f.burstProbability);
        if (bursty && below(draw(src, dst, channel, seq, 0x33),
                            f.burstDropProbability)) {
            d.drop = true;
            return d;
        }
    }
    if (f.extraDelayMax > 0) {
        d.extraDelay = static_cast<SimTime>(
            draw(src, dst, channel, seq, 0x44) %
            static_cast<std::uint64_t>(f.extraDelayMax + 1));
    }
    if (below(draw(src, dst, channel, seq, 0x55),
              f.duplicateProbability)) {
        d.duplicates = 1;
    }
    return d;
}

void
FaultPlan::installCrashSchedule(
    EventQueue &events, std::function<void(const std::string &)> crash,
    std::function<void(const std::string &)> restart) const
{
    for (const CrashEvent &c : cfg.crashes) {
        if (c.crashAt >= events.now()) {
            events.schedule(c.crashAt,
                            [crash, node = c.node] { crash(node); },
                            "fault.crash");
        }
        if (c.restartAt != kTimeNever && c.restartAt >= events.now()) {
            events.schedule(c.restartAt,
                            [restart, node = c.node] { restart(node); },
                            "fault.restart");
        }
    }
}

} // namespace monatt::sim
