/**
 * @file
 * Small-buffer callable for the event kernel.
 *
 * `std::function<void()>` heap-allocates for any capture larger than
 * two pointers, and the event kernel schedules millions of callbacks
 * whose captures are just a `this` pointer plus a couple of ids —
 * 24 to 48 bytes. InlineFunction stores such captures inline (no
 * allocation, no pointer chase on invoke) and falls back to a heap
 * box only for captures that are oversized, over-aligned, or whose
 * move constructor may throw.
 *
 * Move-only by design: event callbacks are scheduled once and invoked
 * once, so copyability would only invite accidental capture copies.
 */

#ifndef MONATT_SIM_INLINE_FUNCTION_H
#define MONATT_SIM_INLINE_FUNCTION_H

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace monatt::sim
{

/** Move-only `void()` callable with `Capacity` bytes of inline storage. */
template <std::size_t Capacity = 48>
class InlineFunction
{
  public:
    InlineFunction() noexcept = default;
    InlineFunction(std::nullptr_t) noexcept {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    InlineFunction(F &&f)
    {
        using Fn = std::decay_t<F>;
        heapBoxed = !fitsInline<Fn>();
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(storage)) Fn(std::forward<F>(f));
            invokeFn = [](void *s) {
                (*std::launder(reinterpret_cast<Fn *>(s)))();
            };
            manageFn = [](Op op, void *s, void *dst) {
                Fn *self = std::launder(reinterpret_cast<Fn *>(s));
                if (op == Op::MoveTo)
                    ::new (dst) Fn(std::move(*self));
                self->~Fn();
            };
        } else {
            ::new (static_cast<void *>(storage))
                Fn *(new Fn(std::forward<F>(f)));
            invokeFn = [](void *s) {
                (**std::launder(reinterpret_cast<Fn **>(s)))();
            };
            manageFn = [](Op op, void *s, void *dst) {
                Fn **self = std::launder(reinterpret_cast<Fn **>(s));
                if (op == Op::MoveTo)
                    ::new (dst) Fn *(*self); // ownership transfers
                else
                    delete *self;
            };
        }
    }

    InlineFunction(InlineFunction &&other) noexcept { adopt(other); }

    InlineFunction &
    operator=(InlineFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            adopt(other);
        }
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { reset(); }

    void
    operator()()
    {
        invokeFn(storage);
    }

    explicit operator bool() const noexcept { return invokeFn != nullptr; }

    /** True when the held capture lives in the inline buffer (for
     * tests and allocation accounting). Empty functions count inline. */
    bool
    isInline() const noexcept
    {
        return heapBoxed == false;
    }

    /** Compile-time predicate: would capture type `Fn` fit inline? */
    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= Capacity &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

  private:
    enum class Op
    {
        Destroy,
        MoveTo,
    };

    using InvokeFn = void (*)(void *);
    using ManageFn = void (*)(Op, void *, void *);

    void
    reset() noexcept
    {
        if (manageFn != nullptr)
            manageFn(Op::Destroy, storage, nullptr);
        invokeFn = nullptr;
        manageFn = nullptr;
        heapBoxed = false;
    }

    /** Steal `other`'s payload; assumes *this is empty. */
    void
    adopt(InlineFunction &other) noexcept
    {
        if (other.invokeFn == nullptr)
            return;
        other.manageFn(Op::MoveTo, other.storage, storage);
        invokeFn = other.invokeFn;
        manageFn = other.manageFn;
        heapBoxed = other.heapBoxed;
        other.invokeFn = nullptr;
        other.manageFn = nullptr;
        other.heapBoxed = false;
    }

    alignas(std::max_align_t) unsigned char storage[Capacity];
    InvokeFn invokeFn = nullptr;
    ManageFn manageFn = nullptr;
    bool heapBoxed = false;

    template <std::size_t C>
    friend class InlineFunction;
};

} // namespace monatt::sim

#endif // MONATT_SIM_INLINE_FUNCTION_H
