/**
 * @file
 * Simulated durable storage: a write-ahead journal with fsync
 * barriers, CRC32C-framed records, and a sealed checkpoint snapshot.
 *
 * Every stateful control-plane entity (CloudController, the
 * Attestation Servers, the PrivacyCA) owns one StableStore modelling
 * its local disk. The store survives `crash()` the way a disk
 * survives a power cut: records appended since the last `sync()` are
 * the in-flight page cache and are lost; everything synced before the
 * crash — plus the last `checkpoint()` snapshot — replays on
 * recovery in LSN order.
 *
 * Each journal record is framed with a CRC32C over (lsn, type,
 * payload) and the snapshot is sealed with a CRC32C over (covered
 * LSN, blob). With a StorageFaultModel installed, `crash()` applies
 * disk-side failures: part of the un-synced tail may persist anyway
 * (torn write), the boundary record may land half-written, records
 * past the boundary may persist out of order (LSN gap), and durable
 * frames may bit-rot. `replay()` then *verifies*: it finds the
 * longest checksummed, chain-linked prefix (every frame back-points
 * at the LSN it was written on top of, so gaps left by legitimately
 * lost un-synced records verify while reorder gaps do not), truncates
 * everything behind the first bad frame (self-healing), and reports
 * what it dropped in the RecoveryImage verdict instead of silently
 * handing out garbage.
 *
 * The store is deliberately simulation-friendly:
 *  - appends cost zero simulated time, so a clean-wire run with
 *    journaling enabled is byte-identical to one without;
 *  - all operations run on the driver thread (the event loop), never
 *    on the worker pool, so any `MONATT_THREADS` width sees the same
 *    LSN sequence — and every storage-fault verdict is a pure
 *    function of (seed, node, LSN), so corruption is bit-identical
 *    across pool widths too;
 *  - `digest()` folds the durable image into one 64-bit value so
 *    determinism tests can compare stores across pool widths.
 *
 * Record payloads are opaque `Bytes` produced by `common/codec`
 * writers; the store itself never interprets them.
 */

#ifndef MONATT_SIM_STABLE_STORE_H
#define MONATT_SIM_STABLE_STORE_H

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "sim/storage_faults.h"

namespace monatt::sim
{

/** One journal entry: monotone LSN, entity-defined type tag, payload. */
struct JournalRecord
{
    std::uint64_t lsn = 0;
    std::uint16_t type = 0;
    Bytes payload;
};

/** Operation counters, exposed for tests and benches. */
struct StableStoreStats
{
    std::uint64_t appends = 0;      //!< records appended (volatile)
    std::uint64_t appendBatches = 0; //!< appendMany/adoptMany calls
    std::uint64_t syncs = 0;        //!< fsync barriers issued
    std::uint64_t checkpoints = 0;  //!< snapshots taken
    std::uint64_t crashes = 0;      //!< simulated power cuts
    std::uint64_t recordsLost = 0;  //!< un-synced records dropped by crashes
    std::uint64_t recordsReplayed = 0; //!< records handed out by replay()

    // Storage-fault injection (what crash() did to the disk).
    std::uint64_t recordsTornPersisted = 0; //!< un-synced records that
                                            //!< reached the platter
    std::uint64_t recordsHalfWritten = 0; //!< boundary records landed torn
    std::uint64_t recordsReordered = 0; //!< orphans persisted past a gap
    std::uint64_t recordsRotted = 0;    //!< durable frames bit-rotted
    std::uint64_t snapshotsRotted = 0;  //!< snapshot seals bit-rotted

    // Verification (what replay()/verifyDurable() refused to serve).
    std::uint64_t recordsQuarantined = 0; //!< bad frame: CRC or LSN gap
    std::uint64_t recordsTruncated = 0; //!< intact but behind a bad frame
    std::uint64_t snapshotsQuarantined = 0; //!< snapshot seal failures
};

/**
 * Write-ahead journal + snapshot for one simulated node.
 *
 * Discipline expected of callers (the WAL rule): append a record for
 * every externally observable state mutation, and `sync()` before any
 * message that makes that mutation visible leaves the node. Crashes in
 * the simulator land between event-handler invocations, so a handler
 * that syncs at its end never loses acknowledged state.
 */
class StableStore
{
  public:
    /** Replay image: last snapshot (if any) plus post-snapshot
     * journal, with a verification verdict. */
    struct RecoveryImage
    {
        bool hasSnapshot = false;
        Bytes snapshot;
        std::vector<JournalRecord> records; //!< LSN order, verified

        /** True when the durable image verified end to end. */
        bool clean = true;
        /** Frames dropped because they were unusable (bad CRC, or an
         * LSN gap in front of them). */
        std::uint64_t quarantinedRecords = 0;
        /** Intact frames dropped only because they sat behind a
         * quarantined one. */
        std::uint64_t truncatedRecords = 0;
        /** The snapshot seal failed; snapshot AND journal dropped. */
        bool snapshotQuarantined = false;
    };

    /** What verifyDurable() dropped from the durable image. */
    struct HealSummary
    {
        std::uint64_t quarantinedRecords = 0;
        std::uint64_t truncatedRecords = 0;
        bool snapshotQuarantined = false;

        bool clean() const
        {
            return quarantinedRecords == 0 && truncatedRecords == 0 &&
                   !snapshotQuarantined;
        }
    };

    /**
     * @param nodeId Owning node's id, used for the digest salt, the
     *               storage-fault draws, and diagnostics.
     */
    explicit StableStore(std::string nodeId = "");

    /**
     * Install the storage-failure model (nullptr disables). The model
     * is consulted by crash(); clean-path operations never touch it.
     * The pointer must outlive the store (core::Cloud owns the plan).
     */
    void setFaultModel(const StorageFaultModel *model)
    {
        faults = (model != nullptr && model->enabled()) ? model : nullptr;
    }

    /**
     * Append a record to the journal tail. The record is *volatile*
     * (page cache) until the next sync()/checkpoint(); a crash before
     * then loses it.
     *
     * @return The record's LSN (monotone, starts at 1).
     */
    std::uint64_t append(std::uint16_t type, Bytes payload);

    /**
     * Append a batch of same-type records in one call: one reserve,
     * consecutive LSNs, identical digest to the equivalent sequence of
     * append() calls. This is the bulk-journal path for fan-outs that
     * mutate many records in one handler (controller launch waves, pCA
     * certification batches, the soak bench's provisioning waves).
     *
     * @return The LSN of the *last* record (0 when `payloads` is
     *         empty).
     */
    std::uint64_t appendMany(std::uint16_t type,
                             std::vector<Bytes> payloads);

    /** Fsync barrier: make every appended record durable. The whole
     * buffered tail moves in one bulk splice (group commit), not
     * record by record. */
    void sync();

    /**
     * Atomically replace snapshot + journal with one snapshot blob.
     *
     * The snapshot is expected to capture the entity's *current*
     * in-memory state, which already reflects any still-buffered
     * journal tail — so both the durable journal and the buffered
     * tail are superseded and discarded. Durable immediately (a
     * checkpoint is itself a sync). The blob is sealed with a CRC32C
     * so replay can detect snapshot rot.
     */
    void checkpoint(Bytes snapshot);

    /**
     * Simulated power cut: drop the un-synced journal tail. With a
     * fault model installed this is where the disk misbehaves — torn
     * tail persistence, half-writes, reordered orphans, and bit-rot
     * of durable frames are all applied here, each a pure function of
     * (seed, node, LSN).
     */
    void crash();

    /**
     * Verified durable image for recovery; counts replayed records.
     * Self-healing: corrupt or unreachable frames are truncated from
     * the durable journal (so lastDurableLsn() regresses to the
     * verified horizon and replication re-streams the gap) and
     * reported via the verdict fields — never silently replayed.
     */
    RecoveryImage replay();

    /**
     * Verify and heal the durable image without materializing a
     * replay copy. A restarting replica mirror runs this before
     * acking its position to the leader: truncating a corrupt suffix
     * lowers lastDurableLsn(), which makes the leader re-stream the
     * damaged range through the normal replication path.
     */
    HealSummary verifyDurable();

    /**
     * Streaming hooks for journal replication. A shard leader streams
     * its durable suffix to followers; a follower adopts records with
     * the leader's LSNs, or installs a full snapshot when it has
     * fallen behind the leader's checkpoint horizon.
     */

    /** LSN covered by the current snapshot (0 when none). */
    std::uint64_t snapshotLsn() const { return snapshotLsn_; }

    /** Highest durable LSN, counting the snapshot horizon. */
    std::uint64_t lastDurableLsn() const
    {
        return durable.empty() ? snapshotLsn_ : durable.back().rec.lsn;
    }

    /** Current snapshot blob (empty when none was taken). */
    const Bytes &snapshotBytes() const { return snapshot; }

    /** Durable records with LSN strictly greater than `lsn`. */
    std::vector<JournalRecord> durableSince(std::uint64_t lsn) const;

    /**
     * Visit durable records with LSN strictly greater than `lsn`
     * without materializing a copy. Starts at the right offset by
     * binary search (LSNs are strictly increasing), so a leader
     * streaming its tail pays O(log n + tail) instead of O(journal).
     */
    template <typename Fn>
    void
    forEachDurableSince(std::uint64_t lsn, Fn &&fn) const
    {
        for (auto it = firstAfter(lsn); it != durable.end(); ++it)
            fn(it->rec);
    }

    /**
     * Adopt a replicated record verbatim, preserving the leader's
     * LSN. Volatile until the next sync(), like append().
     */
    void adoptRecord(JournalRecord rec);

    /** Adopt a contiguous batch of replicated records in one call
     * (a follower applying a leader's streamed tail). */
    void adoptMany(std::vector<JournalRecord> records);

    /**
     * Replace the entire durable image with a leader snapshot that
     * covers everything up to `lsn`. Durable immediately.
     */
    void installSnapshot(Bytes snap, std::uint64_t lsn);

    /**
     * Drop durable records with LSN greater than `lsn` (and any
     * buffered tail): a follower truncating a divergent suffix before
     * adopting the new leader's log.
     */
    void truncateTo(std::uint64_t lsn);

    /** Records appended but not yet synced. */
    std::size_t pendingRecords() const { return buffered.size(); }

    /** Durable journal records (excludes the snapshot). */
    std::size_t durableRecords() const { return durable.size(); }

    /** Durable journal payload bytes, O(1) (excludes the snapshot);
     * this is the CheckpointPolicy size-trigger input. */
    std::size_t journalBytes() const { return journalBytes_; }

    /** Total durable payload bytes (journal + snapshot). */
    std::size_t durableBytes() const
    {
        return journalBytes_ + (snapshotValid ? snapshot.size() : 0);
    }

    /** True when nothing durable exists (fresh disk). */
    bool empty() const { return durable.empty() && !snapshotValid; }

    /** FNV-1a digest of the durable image (snapshot + journal). */
    std::uint64_t digest() const;

    const StableStoreStats &stats() const { return counters; }

    const std::string &node() const { return nodeId; }

  private:
    /**
     * A journal record as it sits on the simulated platter: payload
     * plus the stored frame CRC and the back-pointer to the LSN this
     * record was written on top of. The back-pointer is what lets
     * verification tell a legitimate gap (un-synced records lost in
     * an earlier crash; the writer knowingly chained past them) from
     * a reorder gap (the writer believed the missing record was in
     * the same sync). `rotted` guards idempotency — the fault model's
     * verdict for a given (node, LSN) never changes, so without the
     * guard a second crash would XOR the corruption back out and
     * resurrect the record.
     */
    struct Frame
    {
        JournalRecord rec;
        std::uint64_t prevLsn = 0; //!< LSN this record chains onto.
        std::uint32_t crc = 0;
        bool rotted = false;
    };

    static Frame seal(JournalRecord rec);

    /** LSN a record appended right now would chain onto. */
    std::uint64_t chainTail() const
    {
        return buffered.empty() ? lastDurableLsn()
                                : buffered.back().rec.lsn;
    }
    static std::uint32_t frameCrc(const JournalRecord &rec);
    static std::uint32_t snapshotCrc(const Bytes &snap,
                                     std::uint64_t coveredLsn);

    /** Apply the installed fault model to a power cut. */
    void crashWithFaults();

    /** Bit-rot one byte of a durable frame (or its stored CRC). */
    void rotFrame(Frame &frame);

    /** Verify seal + frames; truncate everything unreachable. */
    HealSummary heal();

    /** First durable frame with LSN strictly greater than `lsn`. */
    std::vector<Frame>::const_iterator
    firstAfter(std::uint64_t lsn) const
    {
        return std::upper_bound(durable.begin(), durable.end(), lsn,
                                [](std::uint64_t v, const Frame &f) {
                                    return v < f.rec.lsn;
                                });
    }

    std::string nodeId;
    std::uint64_t nextLsn = 1;
    std::vector<Frame> buffered; //!< appended, not yet synced
    std::vector<Frame> durable;  //!< synced, survives crashes
    std::size_t journalBytes_ = 0; //!< durable payload bytes, incremental
    Bytes snapshot;
    bool snapshotValid = false;
    bool snapshotRotted = false;
    std::uint32_t snapshotCrc_ = 0; //!< Seal over (covered LSN, blob).
    std::uint64_t snapshotLsn_ = 0; //!< Highest LSN the snapshot covers.
    const StorageFaultModel *faults = nullptr;
    StableStoreStats counters;
};

} // namespace monatt::sim

#endif // MONATT_SIM_STABLE_STORE_H
