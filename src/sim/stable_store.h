/**
 * @file
 * Simulated durable storage: a write-ahead journal with fsync
 * barriers.
 *
 * Every stateful control-plane entity (CloudController, the
 * Attestation Servers, the PrivacyCA) owns one StableStore modelling
 * its local disk. The store survives `crash()` the way a disk
 * survives a power cut: records appended since the last `sync()` are
 * the in-flight page cache and are lost; everything synced before the
 * crash — plus the last `checkpoint()` snapshot — replays on
 * recovery in LSN order.
 *
 * The store is deliberately simulation-friendly:
 *  - appends cost zero simulated time, so a clean-wire run with
 *    journaling enabled is byte-identical to one without;
 *  - all operations run on the driver thread (the event loop), never
 *    on the worker pool, so any `MONATT_THREADS` width sees the same
 *    LSN sequence;
 *  - `digest()` folds the durable image into one 64-bit value so
 *    determinism tests can compare stores across pool widths.
 *
 * Record payloads are opaque `Bytes` produced by `common/codec`
 * writers; the store itself never interprets them.
 */

#ifndef MONATT_SIM_STABLE_STORE_H
#define MONATT_SIM_STABLE_STORE_H

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace monatt::sim
{

/** One journal entry: monotone LSN, entity-defined type tag, payload. */
struct JournalRecord
{
    std::uint64_t lsn = 0;
    std::uint16_t type = 0;
    Bytes payload;
};

/** Operation counters, exposed for tests and benches. */
struct StableStoreStats
{
    std::uint64_t appends = 0;      //!< records appended (volatile)
    std::uint64_t appendBatches = 0; //!< appendMany/adoptMany calls
    std::uint64_t syncs = 0;        //!< fsync barriers issued
    std::uint64_t checkpoints = 0;  //!< snapshots taken
    std::uint64_t crashes = 0;      //!< simulated power cuts
    std::uint64_t recordsLost = 0;  //!< un-synced records dropped by crashes
    std::uint64_t recordsReplayed = 0; //!< records handed out by replay()
};

/**
 * Write-ahead journal + snapshot for one simulated node.
 *
 * Discipline expected of callers (the WAL rule): append a record for
 * every externally observable state mutation, and `sync()` before any
 * message that makes that mutation visible leaves the node. Crashes in
 * the simulator land between event-handler invocations, so a handler
 * that syncs at its end never loses acknowledged state.
 */
class StableStore
{
  public:
    /** Replay image: last snapshot (if any) plus post-snapshot journal. */
    struct RecoveryImage
    {
        bool hasSnapshot = false;
        Bytes snapshot;
        std::vector<JournalRecord> records; //!< LSN order
    };

    /**
     * @param nodeId Owning node's id, used only for the digest salt
     *               and diagnostics.
     */
    explicit StableStore(std::string nodeId = "");

    /**
     * Append a record to the journal tail. The record is *volatile*
     * (page cache) until the next sync()/checkpoint(); a crash before
     * then loses it.
     *
     * @return The record's LSN (monotone, starts at 1).
     */
    std::uint64_t append(std::uint16_t type, Bytes payload);

    /**
     * Append a batch of same-type records in one call: one reserve,
     * consecutive LSNs, identical digest to the equivalent sequence of
     * append() calls. This is the bulk-journal path for fan-outs that
     * mutate many records in one handler (controller launch waves, pCA
     * certification batches, the soak bench's provisioning waves).
     *
     * @return The LSN of the *last* record (0 when `payloads` is
     *         empty).
     */
    std::uint64_t appendMany(std::uint16_t type,
                             std::vector<Bytes> payloads);

    /** Fsync barrier: make every appended record durable. The whole
     * buffered tail moves in one bulk splice (group commit), not
     * record by record. */
    void sync();

    /**
     * Atomically replace snapshot + journal with one snapshot blob.
     *
     * The snapshot is expected to capture the entity's *current*
     * in-memory state, which already reflects any still-buffered
     * journal tail — so both the durable journal and the buffered
     * tail are superseded and discarded. Durable immediately (a
     * checkpoint is itself a sync).
     */
    void checkpoint(Bytes snapshot);

    /** Simulated power cut: drop the un-synced journal tail. */
    void crash();

    /** Durable image for recovery; counts replayed records. */
    RecoveryImage replay();

    /**
     * Streaming hooks for journal replication. A shard leader streams
     * its durable suffix to followers; a follower adopts records with
     * the leader's LSNs, or installs a full snapshot when it has
     * fallen behind the leader's checkpoint horizon.
     */

    /** LSN covered by the current snapshot (0 when none). */
    std::uint64_t snapshotLsn() const { return snapshotLsn_; }

    /** Highest durable LSN, counting the snapshot horizon. */
    std::uint64_t lastDurableLsn() const
    {
        return durable.empty() ? snapshotLsn_ : durable.back().lsn;
    }

    /** Current snapshot blob (empty when none was taken). */
    const Bytes &snapshotBytes() const { return snapshot; }

    /** Durable records with LSN strictly greater than `lsn`. */
    std::vector<JournalRecord> durableSince(std::uint64_t lsn) const;

    /**
     * Visit durable records with LSN strictly greater than `lsn`
     * without materializing a copy. Starts at the right offset by
     * binary search (LSNs are strictly increasing), so a leader
     * streaming its tail pays O(log n + tail) instead of O(journal).
     */
    template <typename Fn>
    void
    forEachDurableSince(std::uint64_t lsn, Fn &&fn) const
    {
        for (auto it = firstAfter(lsn); it != durable.end(); ++it)
            fn(*it);
    }

    /**
     * Adopt a replicated record verbatim, preserving the leader's
     * LSN. Volatile until the next sync(), like append().
     */
    void adoptRecord(JournalRecord rec);

    /** Adopt a contiguous batch of replicated records in one call
     * (a follower applying a leader's streamed tail). */
    void adoptMany(std::vector<JournalRecord> records);

    /**
     * Replace the entire durable image with a leader snapshot that
     * covers everything up to `lsn`. Durable immediately.
     */
    void installSnapshot(Bytes snap, std::uint64_t lsn);

    /**
     * Drop durable records with LSN greater than `lsn` (and any
     * buffered tail): a follower truncating a divergent suffix before
     * adopting the new leader's log.
     */
    void truncateTo(std::uint64_t lsn);

    /** Records appended but not yet synced. */
    std::size_t pendingRecords() const { return buffered.size(); }

    /** Durable journal records (excludes the snapshot). */
    std::size_t durableRecords() const { return durable.size(); }

    /** Total durable payload bytes (journal + snapshot). */
    std::size_t durableBytes() const;

    /** True when nothing durable exists (fresh disk). */
    bool empty() const { return durable.empty() && !snapshotValid; }

    /** FNV-1a digest of the durable image (snapshot + journal). */
    std::uint64_t digest() const;

    const StableStoreStats &stats() const { return counters; }

    const std::string &node() const { return nodeId; }

  private:
    /** First durable record with LSN strictly greater than `lsn`. */
    std::vector<JournalRecord>::const_iterator
    firstAfter(std::uint64_t lsn) const
    {
        return std::upper_bound(durable.begin(), durable.end(), lsn,
                                [](std::uint64_t v,
                                   const JournalRecord &rec) {
                                    return v < rec.lsn;
                                });
    }

    std::string nodeId;
    std::uint64_t nextLsn = 1;
    std::vector<JournalRecord> buffered; //!< appended, not yet synced
    std::vector<JournalRecord> durable;  //!< synced, survives crashes
    Bytes snapshot;
    bool snapshotValid = false;
    std::uint64_t snapshotLsn_ = 0; //!< Highest LSN the snapshot covers.
    StableStoreStats counters;
};

} // namespace monatt::sim

#endif // MONATT_SIM_STABLE_STORE_H
