#include "sim/storage_faults.h"

namespace monatt::sim
{

namespace
{

/** splitmix64 finalizer: cheap, well-mixed, dependency-free. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** FNV-1a over a string, folded through the running state. */
std::uint64_t
absorb(std::uint64_t state, const std::string &s)
{
    std::uint64_t h = state ^ 0xcbf29ce484222325ULL;
    for (unsigned char c : s)
        h = (h ^ c) * 0x100000001b3ULL;
    return mix64(h);
}

/** Map a draw to a [0, 1) probability comparison. */
bool
below(std::uint64_t v, double probability)
{
    if (probability <= 0)
        return false;
    if (probability >= 1)
        return true;
    const double unit =
        static_cast<double>(v >> 11) * (1.0 / 9007199254740992.0);
    return unit < probability;
}

// Salts keep the per-purpose draws independent of each other and of
// the network FaultPlan's datagram draws.
constexpr std::uint64_t kSaltTail = 0xD15C0001;
constexpr std::uint64_t kSaltHalf = 0xD15C0002;
constexpr std::uint64_t kSaltReorder = 0xD15C0003;
constexpr std::uint64_t kSaltRot = 0xD15C0004;
constexpr std::uint64_t kSaltSnapRot = 0xD15C0005;
constexpr std::uint64_t kSaltRotByte = 0xD15C0006;

} // namespace

StorageFaultModel::StorageFaultModel(std::uint64_t seed,
                                     StorageFaultConfig config)
    : cfg(config), seed(seed)
{
}

std::uint64_t
StorageFaultModel::draw(const std::string &node, std::uint64_t lsn,
                        std::uint64_t salt) const
{
    std::uint64_t h = mix64(seed ^ salt);
    h = absorb(h, node);
    return mix64(h ^ lsn);
}

bool
StorageFaultModel::tailPersists(const std::string &node,
                                std::uint64_t lsn) const
{
    return below(draw(node, lsn, kSaltTail),
                 cfg.tornTailPersistProbability);
}

bool
StorageFaultModel::halfWrites(const std::string &node,
                              std::uint64_t lsn) const
{
    return below(draw(node, lsn, kSaltHalf), cfg.halfWriteProbability);
}

bool
StorageFaultModel::reorderPersists(const std::string &node,
                                   std::uint64_t lsn) const
{
    return below(draw(node, lsn, kSaltReorder),
                 cfg.reorderPersistProbability);
}

bool
StorageFaultModel::rots(const std::string &node, std::uint64_t lsn) const
{
    return below(draw(node, lsn, kSaltRot), cfg.bitRotProbability);
}

bool
StorageFaultModel::snapshotRots(const std::string &node,
                                std::uint64_t snapshotLsn) const
{
    return below(draw(node, snapshotLsn, kSaltSnapRot),
                 cfg.snapshotRotProbability);
}

std::size_t
StorageFaultModel::corruptByte(const std::string &node,
                               std::uint64_t lsn, std::size_t n) const
{
    return static_cast<std::size_t>(draw(node, lsn, kSaltRotByte) %
                                    static_cast<std::uint64_t>(n));
}

} // namespace monatt::sim
