/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The simulated cloud is single-clocked: the hypervisor's scheduler
 * ticks, network message deliveries, periodic attestation timers and
 * VM lifecycle stage completions are all events on one EventQueue.
 * Events at equal timestamps execute in scheduling order (FIFO via a
 * monotone sequence id), which keeps every simulation deterministic.
 */

#ifndef MONATT_SIM_EVENT_QUEUE_H
#define MONATT_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/time_types.h"

namespace monatt::sim
{

/** Handle identifying a scheduled event (for cancellation). */
using EventId = std::uint64_t;

/** Deterministic discrete-event queue with a simulated clock. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    SimTime now() const { return currentTime; }

    /**
     * Schedule `callback` at absolute time `when`.
     *
     * @param label Optional debugging label; must point at storage that
     *              outlives the event (string literals in practice).
     *              Stored as a raw pointer so scheduling never
     *              heap-allocates for it.
     * @throws std::invalid_argument when `when` is in the past.
     */
    EventId schedule(SimTime when, Callback callback,
                     const char *label = nullptr);

    /** Schedule `callback` after a relative delay. */
    EventId scheduleAfter(SimTime delay, Callback callback,
                          const char *label = nullptr);

    /** Cancel a pending event; no-op when already fired or cancelled. */
    void cancel(EventId id);

    /** Execute the next pending event. @return false when empty. */
    bool runOne();

    /**
     * Run all events with timestamps <= `until`, then advance the
     * clock to `until` (unless `until` is kTimeNever).
     * @return Number of events executed.
     */
    std::size_t run(SimTime until);

    /** Run until the queue drains (bounded by maxEvents as a runaway
     * backstop). @return Number of events executed. */
    std::size_t runAll(std::size_t maxEvents = 100000000);

    /** Advance the clock by `delta`, executing everything due. */
    void advance(SimTime delta);

    /**
     * Timestamp of the next pending event, or kTimeNever when the
     * queue is empty. Skips cancelled events (and drops them).
     */
    SimTime nextEventTime();

    /** Number of pending (non-cancelled) events. */
    std::size_t pending() const { return livePending; }

    /** Total events executed since construction. */
    std::size_t executed() const { return executedCount; }

  private:
    struct Event
    {
        SimTime when;
        EventId id;
        Callback callback;
        const char *label;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.id > b.id; // FIFO among equal timestamps.
        }
    };

    /** Drop cancelled events sitting at the top of the heap.
     * @return false when the queue is empty afterwards. */
    bool dropCancelledTop();

    std::priority_queue<Event, std::vector<Event>, Later> queue;
    std::unordered_set<EventId> cancelled;
    SimTime currentTime = 0;
    EventId nextId = 1;
    std::size_t livePending = 0;
    std::size_t executedCount = 0;
};

} // namespace monatt::sim

#endif // MONATT_SIM_EVENT_QUEUE_H
