/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The simulated cloud is single-clocked: the hypervisor's scheduler
 * ticks, network message deliveries, periodic attestation timers and
 * VM lifecycle stage completions are all events on one EventQueue.
 * Events at equal timestamps execute in scheduling order (FIFO via a
 * monotone sequence number), which keeps every simulation
 * deterministic.
 *
 * Layout (the million-VM soak hot path):
 *  - The pending set is a flat 4-ary min-heap of 24-byte nodes
 *    (timestamp, sequence, slot index). Sift operations move small
 *    PODs and touch 4 children per cache line-ish level, never the
 *    callbacks themselves.
 *  - Callbacks live in a parallel slot table and never move while
 *    pending. Each slot carries a generation counter; an EventId is
 *    (generation << 32) | slot, so cancel() is a generation check
 *    plus one indexed heap removal — O(log n), no tombstone set, and
 *    cancelling an already-fired or never-issued id is a true no-op
 *    (the old kernel leaked such ids into a tombstone set forever).
 *  - Callbacks are InlineFunction<48>: captures up to 48 bytes (a
 *    `this` pointer plus a few ids — every timer in the codebase)
 *    store inline, so scheduling does not heap-allocate.
 */

#ifndef MONATT_SIM_EVENT_QUEUE_H
#define MONATT_SIM_EVENT_QUEUE_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/time_types.h"
#include "sim/inline_function.h"

namespace monatt::sim
{

/**
 * Handle identifying a scheduled event (for cancellation).
 *
 * Encodes (slot generation << 32) | slot index. Generations start at
 * 1, so 0 is never a valid id — `EventId x = 0` is the idiomatic
 * "none pending" sentinel and cancel(0) is a no-op. Ids are never
 * reissued: a reused slot carries a bumped generation, so a stale id
 * held across a slot's reuse can never cancel the newer event.
 */
using EventId = std::uint64_t;

/** Deterministic discrete-event queue with a simulated clock. */
class EventQueue
{
  public:
    using Callback = InlineFunction<48>;

    /** Current simulated time. */
    SimTime now() const { return currentTime; }

    /**
     * Schedule `callback` at absolute time `when`.
     *
     * @param label Optional debugging label; must point at storage that
     *              outlives the event (string literals in practice).
     *              Stored as a raw pointer so scheduling never
     *              heap-allocates for it.
     * @throws std::invalid_argument when `when` is in the past.
     */
    EventId schedule(SimTime when, Callback callback,
                     const char *label = nullptr);

    /** Schedule `callback` after a relative delay. */
    EventId scheduleAfter(SimTime delay, Callback callback,
                          const char *label = nullptr);

    /**
     * Cancel a pending event. No-op when the event already fired, was
     * already cancelled, or the id was never issued (including 0).
     */
    void cancel(EventId id);

    /** Execute the next pending event. @return false when empty. */
    bool runOne();

    /**
     * Run all events with timestamps <= `until`, then advance the
     * clock to `until` (unless `until` is kTimeNever).
     * @return Number of events executed.
     */
    std::size_t run(SimTime until);

    /** Run until the queue drains (bounded by maxEvents as a runaway
     * backstop). @return Number of events executed. */
    std::size_t runAll(std::size_t maxEvents = 100000000);

    /** Advance the clock by `delta`, executing everything due. */
    void advance(SimTime delta);

    /** Timestamp of the next pending event, or kTimeNever when the
     * queue is empty. */
    SimTime nextEventTime() const;

    /** Number of pending (non-cancelled) events. */
    std::size_t pending() const { return heap.size(); }

    /** Total events executed since construction. */
    std::size_t executed() const { return executedCount; }

    // --- Introspection (tests, soak bench) -----------------------------

    /** Slots ever allocated: peak concurrent pending events. Bounded
     * by the workload's high-water mark, never by cancel history. */
    std::size_t slotCapacity() const { return slots.size(); }

    /** Slots currently on the free list. */
    std::size_t freeSlots() const { return freeList.size(); }

  private:
    static constexpr std::uint32_t kNotInHeap = 0xffffffffu;
    static constexpr std::size_t kArity = 4;

    /** One pending entry on the flat heap; small so sifts stay cheap. */
    struct HeapNode
    {
        SimTime when;
        std::uint64_t seq; //!< FIFO tie-break among equal timestamps.
        std::uint32_t slot;
    };

    /** Stationary per-event state, indexed by HeapNode::slot. */
    struct Slot
    {
        Callback callback;
        const char *label = nullptr;
        std::uint32_t generation = 1;
        std::uint32_t heapPos = kNotInHeap;
    };

    static bool
    before(const HeapNode &a, const HeapNode &b)
    {
        return a.when != b.when ? a.when < b.when : a.seq < b.seq;
    }

    std::uint32_t acquireSlot(Callback callback, const char *label);
    void releaseSlot(std::uint32_t slot);
    void siftUp(std::size_t pos);
    void siftDown(std::size_t pos);
    void removeAt(std::size_t pos);

    std::vector<HeapNode> heap; //!< Flat 4-ary min-heap.
    std::vector<Slot> slots;
    std::vector<std::uint32_t> freeList; //!< Reusable slot indices.
    SimTime currentTime = 0;
    std::uint64_t nextSeq = 1;
    std::size_t executedCount = 0;
};

} // namespace monatt::sim

#endif // MONATT_SIM_EVENT_QUEUE_H
