#include "sim/worker_pool.h"

#include <cstdlib>
#include <memory>
#include <string>

namespace monatt::sim
{

namespace
{

std::size_t
defaultThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

} // namespace

WorkerPool::WorkerPool(std::size_t threads)
{
    threadsWanted = threads ? threads : defaultThreads();
    if (threadsWanted <= 1)
        return;
    workers.reserve(threadsWanted - 1);
    for (std::size_t i = 0; i + 1 < threadsWanted; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lk(mu);
        stopping = true;
    }
    cv.notify_all();
    for (std::thread &t : workers)
        t.join();
}

void
WorkerPool::runInline(std::size_t n,
                      const std::function<void(std::size_t)> &fn)
{
    // Run every task even after a failure, matching pooled execution,
    // so the amount of work done never depends on the thread count.
    std::vector<std::exception_ptr> errors(n);
    for (std::size_t i = 0; i < n; ++i) {
        try {
            fn(i);
        } catch (...) {
            errors[i] = std::current_exception();
        }
    }
    rethrowFirst(errors);
}

void
WorkerPool::rethrowFirst(const std::vector<std::exception_ptr> &errors)
{
    for (const std::exception_ptr &e : errors)
        if (e)
            std::rethrow_exception(e);
}

void
WorkerPool::drain(Job &job)
{
    for (;;) {
        const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= job.n)
            return;
        try {
            (*job.fn)(i);
        } catch (...) {
            job.errors[i] = std::current_exception();
        }
        if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.n) {
            std::lock_guard<std::mutex> lk(job.mu);
            job.complete = true;
            job.cv.notify_all();
        }
    }
}

void
WorkerPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lk(mu);
            cv.wait(lk, [&] { return stopping || generation != seen; });
            if (stopping)
                return;
            seen = generation;
            job = current;
        }
        if (job)
            drain(*job);
    }
}

void
WorkerPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (workers.empty() || n == 1) {
        runInline(n, fn);
        return;
    }
    auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->n = n;
    job->errors.resize(n);
    {
        std::lock_guard<std::mutex> lk(mu);
        current = job;
        ++generation;
    }
    cv.notify_all();
    drain(*job); // The caller participates.
    {
        std::unique_lock<std::mutex> lk(job->mu);
        job->cv.wait(lk, [&] { return job->complete; });
    }
    {
        // Retire the job so late-waking workers see an exhausted task
        // counter at most once and nothing else.
        std::lock_guard<std::mutex> lk(mu);
        if (current == job)
            current.reset();
    }
    rethrowFirst(job->errors);
}

std::size_t
WorkerPool::resolveThreads(std::size_t requested)
{
    if (const char *env = std::getenv("MONATT_THREADS")) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end && end != env && *end == '\0' && v > 0)
            return static_cast<std::size_t>(v);
    }
    return requested;
}

namespace
{

std::unique_ptr<WorkerPool> &
globalSlot()
{
    static std::unique_ptr<WorkerPool> pool;
    return pool;
}

} // namespace

WorkerPool &
WorkerPool::global()
{
    std::unique_ptr<WorkerPool> &slot = globalSlot();
    if (!slot)
        slot = std::make_unique<WorkerPool>(resolveThreads(0));
    return *slot;
}

void
WorkerPool::configureGlobal(std::size_t threads)
{
    const std::size_t want = resolveThreads(threads);
    std::unique_ptr<WorkerPool> &slot = globalSlot();
    const std::size_t effective = want ? want : defaultThreads();
    if (slot && slot->threadCount() == effective)
        return;
    slot = std::make_unique<WorkerPool>(want);
}

} // namespace monatt::sim
