/**
 * @file
 * Deterministic storage-failure model for the simulated durable
 * stores — the disk-side counterpart of the network FaultPlan.
 *
 * The paper (§3.3) models an active adversary but assumes nodes come
 * back from a crash with intact storage. Real machines lose power
 * mid-write (the un-synced tail is torn: a prefix reached the
 * platter, the boundary sector may be half-written) and suffer media
 * bit-rot over an outage. This model injects both, plus lost-sync
 * reordering (a record past the torn boundary that persisted out of
 * order, leaving an LSN gap in front of it).
 *
 * Every verdict is a pure function of (seed, node id, LSN): no
 * mutable state, no host randomness, no dependence on simulated time
 * or thread count. Two runs with the same seed make identical
 * storage-fault decisions at any MONATT_THREADS width, which is what
 * keeps the storage-chaos sweeps bit-identical. A record doomed to
 * rot is doomed from birth — re-evaluating the verdict at a later
 * crash returns the same answer, so applying it is idempotent.
 */

#ifndef MONATT_SIM_STORAGE_FAULTS_H
#define MONATT_SIM_STORAGE_FAULTS_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace monatt::sim
{

/** Per-store failure probabilities (all default off). */
struct StorageFaultConfig
{
    /**
     * Torn tail-write: when the node crashes, each un-synced record —
     * walked in LSN order — reaches the platter anyway with this
     * probability; the persisted prefix ends at the first record that
     * misses. 0 reproduces the classic model (the whole page-cache
     * tail is lost).
     */
    double tornTailPersistProbability = 0;

    /**
     * The first record past the persisted prefix lands half-written
     * with this probability: a truncated frame whose checksum cannot
     * verify. Replay truncates it as part of the torn tail.
     */
    double halfWriteProbability = 0;

    /**
     * Lost-sync reordering: a record past the torn boundary persists
     * out of order with this probability, leaving an LSN gap before
     * it. Replay cannot order such orphans and quarantines them.
     */
    double reorderPersistProbability = 0;

    /**
     * Media bit-rot: a durable journal record's frame is corrupted by
     * the time the node power-cycles, with this probability per
     * (node, LSN). Applied at crash — rot only ever surfaces across a
     * power cycle, which is when replay runs.
     */
    double bitRotProbability = 0;

    /** Bit-rot of the sealed checkpoint snapshot, per (node,
     * snapshot LSN). A corrupt seal invalidates the snapshot and
     * everything journaled on top of it. */
    double snapshotRotProbability = 0;

    /** True when any axis is armed. */
    bool any() const
    {
        return tornTailPersistProbability > 0 ||
               halfWriteProbability > 0 ||
               reorderPersistProbability > 0 || bitRotProbability > 0 ||
               snapshotRotProbability > 0;
    }
};

/** Compiled model: pure verdicts over (seed, node, LSN). */
class StorageFaultModel
{
  public:
    StorageFaultModel(std::uint64_t seed, StorageFaultConfig config);

    bool enabled() const { return cfg.any(); }
    const StorageFaultConfig &config() const { return cfg; }

    /** Did this un-synced tail record reach the platter at the crash? */
    bool tailPersists(const std::string &node, std::uint64_t lsn) const;

    /** Is the boundary record (first one past the persisted prefix)
     * half-written rather than cleanly absent? */
    bool halfWrites(const std::string &node, std::uint64_t lsn) const;

    /** Did this post-boundary record persist out of order? */
    bool reorderPersists(const std::string &node,
                         std::uint64_t lsn) const;

    /** Has this durable record's frame rotted on the media? */
    bool rots(const std::string &node, std::uint64_t lsn) const;

    /** Has the sealed snapshot covering `snapshotLsn` rotted? */
    bool snapshotRots(const std::string &node,
                      std::uint64_t snapshotLsn) const;

    /** Which byte of an `n`-byte frame the rot flips (n > 0). */
    std::size_t corruptByte(const std::string &node, std::uint64_t lsn,
                            std::size_t n) const;

  private:
    /** One pure 64-bit draw for a (node, lsn, purpose) triple. */
    std::uint64_t draw(const std::string &node, std::uint64_t lsn,
                       std::uint64_t salt) const;

    StorageFaultConfig cfg;
    std::uint64_t seed;
};

} // namespace monatt::sim

#endif // MONATT_SIM_STORAGE_FAULTS_H
